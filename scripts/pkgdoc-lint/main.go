// Command pkgdoc-lint enforces the repository's documentation floor:
// every Go package in the module — the public library, every
// internal/* package, every cmd/* binary and every example — must
// carry a package (godoc) comment attached to a package clause. It
// walks the tree, parses only package clauses and their doc comments,
// and fails listing the offenders. `make lint` runs it, so a new
// package cannot land undocumented.
//
// Usage: pkgdoc-lint [root]   (root defaults to ".")
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "bin", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkgdoc-lint:", err)
		os.Exit(2)
	}

	var bad []string
	for dir := range dirs {
		ok, err := hasPackageDoc(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pkgdoc-lint:", err)
			os.Exit(2)
		}
		if !ok {
			bad = append(bad, dir)
		}
	}
	sort.Strings(bad)
	if len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "pkgdoc-lint: packages without a package comment:")
		for _, d := range bad {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		os.Exit(1)
	}
	fmt.Printf("pkgdoc-lint: %d packages documented\n", len(dirs))
}

// hasPackageDoc reports whether any non-test .go file in dir carries
// a non-empty doc comment on its package clause.
func hasPackageDoc(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, nil
		}
	}
	return false, nil
}
