package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	path := write(t, `{"package": "./x", "trajectory": [
		{"commit": "aaa", "benchmarks": [{"name": "BenchmarkA", "ns_per_op": 100}]},
		{"commit": "bbb", "benchmarks": [{"name": "BenchmarkA", "ns_per_op": 250}]}
	]}`)
	if err := diff(path, 3.0); err != nil {
		t.Fatalf("2.5x under a 3x tolerance failed: %v", err)
	}
}

func TestDiffFailsOnRegression(t *testing.T) {
	path := write(t, `{"package": "./x", "trajectory": [
		{"commit": "aaa", "benchmarks": [{"name": "BenchmarkA", "ns_per_op": 100}]},
		{"commit": "bbb", "benchmarks": [{"name": "BenchmarkA", "ns_per_op": 500}]}
	]}`)
	if err := diff(path, 3.0); err == nil {
		t.Fatal("5x regression passed a 3x tolerance")
	}
}

// TestDiffSkipsInterleavedEntries pins the reason benchdiff searches
// backwards per name: a loadgen entry between two micro-bench entries
// shares no benchmark names, and must be looked through rather than
// making the comparison vacuous (or a false baseline of 0).
func TestDiffSkipsInterleavedEntries(t *testing.T) {
	path := write(t, `{"package": "./x", "trajectory": [
		{"commit": "aaa", "benchmarks": [{"name": "BenchmarkA", "ns_per_op": 100}]},
		{"commit": "aaa-loadgen", "benchmarks": [{"name": "LoadgenMixed", "ns_per_op": 7}]},
		{"commit": "bbb", "benchmarks": [{"name": "BenchmarkA", "ns_per_op": 500}]}
	]}`)
	if err := diff(path, 3.0); err == nil {
		t.Fatal("regression hidden by an interleaved loadgen entry")
	}
}

func TestDiffToleratesNewAndMissing(t *testing.T) {
	// A brand-new benchmark has no baseline; a short trajectory has
	// nothing to compare; a missing file is not an error (first run
	// in a fresh clone).
	path := write(t, `{"package": "./x", "trajectory": [
		{"commit": "aaa", "benchmarks": [{"name": "BenchmarkA", "ns_per_op": 100}]},
		{"commit": "bbb", "benchmarks": [{"name": "BenchmarkNew", "ns_per_op": 999999}]}
	]}`)
	if err := diff(path, 3.0); err != nil {
		t.Fatalf("new benchmark treated as regression: %v", err)
	}
	short := write(t, `{"package": "./x", "trajectory": [
		{"commit": "aaa", "benchmarks": [{"name": "BenchmarkA", "ns_per_op": 100}]}
	]}`)
	if err := diff(short, 3.0); err != nil {
		t.Fatalf("single-entry trajectory failed: %v", err)
	}
	if err := diff(filepath.Join(t.TempDir(), "absent.json"), 3.0); err != nil {
		t.Fatalf("missing file failed: %v", err)
	}
}
