// Command benchdiff guards the perf trajectory: for each BENCH_*.json
// file given, it compares every benchmark's most recent occurrence
// against its previous one and fails when ns_per_op regressed by more
// than -max-ratio. Comparing per benchmark name (rather than diffing
// the last two entries wholesale) keeps the gate meaningful when
// micro-bench and loadgen entries interleave in one trajectory and
// share no benchmark names — and when a same-commit rerun replaces an
// entry mid-trajectory instead of at the tail.
//
// One-iteration trajectory markers on shared CI hosts are noisy, so
// the default tolerance is deliberately loose: the gate exists to
// catch order-of-magnitude regressions (an accidental O(n²), a lost
// parallel path), not single-digit-percent drift. A benchmark with
// only one occurrence is reported and skipped — a new benchmark
// cannot regress.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type mark struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

type entry struct {
	Commit     string `json:"commit"`
	Benchmarks []mark `json:"benchmarks"`
}

type trajectory struct {
	Package    string  `json:"package"`
	Trajectory []entry `json:"trajectory"`
}

func main() {
	maxRatio := flag.Float64("max-ratio", 3.0, "fail when a benchmark's latest ns_per_op exceeds its previous run by more than this factor")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-ratio N] BENCH_x.json ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := diff(path, *maxRatio); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// sample is one benchmark occurrence, stamped with its entry's commit.
type sample struct {
	nsPerOp float64
	commit  string
}

func diff(path string, maxRatio float64) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		fmt.Printf("benchdiff: %s: no trajectory yet, nothing to compare\n", path)
		return nil
	}
	if err != nil {
		return err
	}
	var traj trajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		return err
	}
	// Gather each benchmark's occurrences in trajectory order; names
	// are reported in first-seen order so output is stable.
	occ := make(map[string][]sample)
	var names []string
	for _, e := range traj.Trajectory {
		for _, m := range e.Benchmarks {
			if _, seen := occ[m.Name]; !seen {
				names = append(names, m.Name)
			}
			occ[m.Name] = append(occ[m.Name], sample{m.NsPerOp, e.Commit})
		}
	}
	var regressed []string
	for _, name := range names {
		s := occ[name]
		if len(s) < 2 {
			fmt.Printf("benchdiff: %s: %s: single run, no baseline\n", path, name)
			continue
		}
		prev, last := s[len(s)-2], s[len(s)-1]
		ratio := 0.0
		if prev.nsPerOp > 0 {
			ratio = last.nsPerOp / prev.nsPerOp
		}
		fmt.Printf("benchdiff: %s: %s: %.0f -> %.0f ns/op (%.2fx, %s -> %s)\n",
			path, name, prev.nsPerOp, last.nsPerOp, ratio, prev.commit, last.commit)
		if ratio > maxRatio {
			regressed = append(regressed, fmt.Sprintf("%s %.2fx > %.2fx", name, ratio, maxRatio))
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("regressions: %v", regressed)
	}
	return nil
}
