package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readTraj(t *testing.T, path string) trajectory {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var traj trajectory
	if err := json.Unmarshal(raw, &traj); err != nil {
		t.Fatalf("output is not a trajectory: %v\n%s", err, raw)
	}
	return traj
}

const runEntry = `{"go": "go1.24.0", "package": "./x", "benchmarks": [{"name": "BenchmarkA", "iterations": 1, "ns_per_op": 42}]}`

// TestTrajectoryAccumulates covers the whole lifecycle: a fresh file,
// an append from a later commit, and the legacy single-run migration.
func TestTrajectoryAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")

	if err := run(path, "aaa", "2026-08-08", strings.NewReader(runEntry)); err != nil {
		t.Fatal(err)
	}
	if traj := readTraj(t, path); len(traj.Trajectory) != 1 || traj.Package != "./x" {
		t.Fatalf("fresh file: got %+v", traj)
	}

	if err := run(path, "bbb", "2026-08-09", strings.NewReader(runEntry)); err != nil {
		t.Fatal(err)
	}
	traj := readTraj(t, path)
	if len(traj.Trajectory) != 2 || traj.Trajectory[0].Commit != "aaa" || traj.Trajectory[1].Commit != "bbb" {
		t.Fatalf("append: got %+v", traj)
	}

	// Same commit again: replaced, not duplicated.
	if err := run(path, "bbb", "2026-08-10", strings.NewReader(runEntry)); err != nil {
		t.Fatal(err)
	}
	traj = readTraj(t, path)
	if len(traj.Trajectory) != 2 || traj.Trajectory[1].Date != "2026-08-10" {
		t.Fatalf("same-commit rerun: got %+v", traj)
	}

	// A rerun replaces its own entry even when later entries (a
	// loadgen run stamping a distinct commit id) were appended after
	// it — position in the trajectory must not matter.
	if err := run(path, "aaa", "2026-08-11", strings.NewReader(runEntry)); err != nil {
		t.Fatal(err)
	}
	traj = readTraj(t, path)
	if len(traj.Trajectory) != 2 || traj.Trajectory[0].Date != "2026-08-11" || traj.Trajectory[1].Commit != "bbb" {
		t.Fatalf("mid-trajectory rerun: got %+v", traj)
	}
}

// TestLegacyMigration feeds a pre-trajectory single-run file and
// checks it becomes the first entry rather than being clobbered.
func TestLegacyMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(runEntry), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "ccc", "2026-08-08", strings.NewReader(runEntry)); err != nil {
		t.Fatal(err)
	}
	traj := readTraj(t, path)
	if len(traj.Trajectory) != 2 || traj.Trajectory[0].Commit != "" || traj.Trajectory[1].Commit != "ccc" {
		t.Fatalf("migration: got %+v", traj)
	}
	if traj.Package != "./x" || traj.Trajectory[0].Package != "" {
		t.Fatalf("package field should hoist to the top level: %+v", traj)
	}
}

// TestRejectsGarbage pins the error paths: junk stdin, an empty run,
// and an unrecognizable existing file.
func TestRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	if err := run(path, "c", "d", strings.NewReader("not json")); err == nil {
		t.Error("junk stdin accepted")
	}
	if err := run(path, "c", "d", strings.NewReader(`{"benchmarks": []}`)); err == nil {
		t.Error("empty run accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"what": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "c", "d", strings.NewReader(runEntry)); err == nil {
		t.Error("unrecognizable existing file accepted")
	}
}
