// Command benchmerge appends one benchmark run to a BENCH_*.json
// trajectory file, so the perf numbers accumulate across PRs instead
// of each run overwriting the last.
//
// It reads a single run entry (the object bench-json.sh emits) on
// stdin and rewrites -out as
//
//	{"package": "...", "trajectory": [entry, entry, ...]}
//
// A legacy single-run file (top-level "benchmarks") is migrated into
// the first trajectory entry. Re-running on the same commit replaces
// that commit's entry rather than appending a duplicate, so `make
// bench` is idempotent within one PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// entry is one benchmark run. Benchmarks stays raw: benchmerge only
// orders entries, it never reinterprets the numbers.
type entry struct {
	Commit     string          `json:"commit,omitempty"`
	Date       string          `json:"date,omitempty"`
	Go         string          `json:"go,omitempty"`
	Package    string          `json:"package,omitempty"`
	Benchmarks json.RawMessage `json:"benchmarks"`
}

type trajectory struct {
	Package    string  `json:"package"`
	Trajectory []entry `json:"trajectory"`
}

func main() {
	out := flag.String("out", "", "trajectory file to update (required)")
	commit := flag.String("commit", "", "commit id to stamp on this run")
	date := flag.String("date", "", "date to stamp on this run (YYYY-MM-DD)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchmerge: -out is required")
		os.Exit(2)
	}
	if err := run(*out, *commit, *date, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
}

func run(path, commit, date string, in io.Reader) error {
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return fmt.Errorf("stdin is not a run entry: %w", err)
	}
	var marks []json.RawMessage
	if err := json.Unmarshal(e.Benchmarks, &marks); err != nil || len(marks) == 0 {
		return fmt.Errorf("run entry has no benchmarks")
	}
	e.Commit, e.Date = commit, date

	traj, err := load(path)
	if err != nil {
		return err
	}
	if traj.Package == "" {
		traj.Package = e.Package
	}
	e.Package = "" // lives at the top level, not per entry
	replaced := false
	if commit != "" {
		// Replace wherever this commit's entry sits, not just at the
		// tail: micro-bench and loadgen runs stamp distinct commit ids
		// into one trajectory, so a rerun's entry may not be last.
		for i := range traj.Trajectory {
			if traj.Trajectory[i].Commit == commit {
				traj.Trajectory[i] = e
				replaced = true
				break
			}
		}
	}
	if !replaced {
		traj.Trajectory = append(traj.Trajectory, e)
	}

	enc, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// load reads an existing trajectory file, migrating the legacy
// single-run layout ({"go", "package", "benchmarks"}) into a
// one-entry trajectory. A missing file starts an empty one.
func load(path string) (*trajectory, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &trajectory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var traj trajectory
	if err := json.Unmarshal(raw, &traj); err == nil && traj.Trajectory != nil {
		return &traj, nil
	}
	var legacy entry
	if err := json.Unmarshal(raw, &legacy); err != nil || len(legacy.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s is neither a trajectory nor a legacy run file", path)
	}
	pkg := legacy.Package
	legacy.Package = ""
	return &trajectory{Package: pkg, Trajectory: []entry{legacy}}, nil
}
