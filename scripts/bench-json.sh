#!/usr/bin/env bash
# bench-json: run the tracked benchmarks once each, echo the raw
# `go test -bench` output for CI logs, and append an entry to the
# machine-readable BENCH_train.json / BENCH_serve.json trajectories so
# the perf history accumulates across PRs (scripts/benchmerge handles
# the append and the legacy single-run migration). One iteration per
# benchmark keeps the gate fast; the numbers are trajectory markers,
# not microbenchmarks.
set -euo pipefail

GO=${GO:-go}
cd "$(dirname "$0")/.."

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%d)

# bench_to_json PKG PATTERN OUT — run the benchmarks and convert each
# result line ("BenchmarkName-8  1  123 ns/op  0.95 recall@10") into
# {"name", "iterations", "ns_per_op", "metrics": {...}}.
bench_to_json() {
    local pkg=$1 pattern=$2 out=$3
    local raw
    raw=$($GO test -run '^$' -bench "$pattern" -benchtime 1x -count 1 "$pkg")
    printf '%s\n' "$raw"
    printf '%s\n' "$raw" | awk -v go_version="$($GO env GOVERSION)" -v pkg="$pkg" '
        BEGIN { n = 0 }
        /^Benchmark/ {
            name = $1; iters = $2; ns = ""
            extras = ""
            for (i = 3; i + 1 <= NF; i += 2) {
                if ($(i + 1) == "ns/op") { ns = $i; continue }
                gsub(/"/, "", $(i + 1))
                extras = extras sprintf("%s\"%s\": %s", (extras == "" ? "" : ", "), $(i + 1), $i)
            }
            if (ns == "") next
            lines[n++] = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}",
                name, iters, ns, (extras == "" ? "" : sprintf(", \"metrics\": {%s}", extras)))
        }
        END {
            printf "{\n  \"go\": \"%s\",\n  \"package\": \"%s\",\n  \"benchmarks\": [\n", go_version, pkg
            for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
            printf "  ]\n}\n"
        }
    ' | $GO run ./scripts/benchmerge -out "$out" -commit "$COMMIT" -date "$DATE"
    echo "updated $out"
}

bench_to_json . 'Epoch' BENCH_train.json
bench_to_json ./internal/serve 'ServeEmbed|TopKAnnVsExact|WarmVsColdStart|WarmStartMmap|ObsOverhead' BENCH_serve.json
bench_to_json ./internal/ann 'AnnScanDtype' BENCH_ann.json
