#!/usr/bin/env bash
# serve-smoke: end-to-end check of the serving pipeline —
# datagen → short train → save checkpoint → launch gsgcn-serve →
# curl /embed and /predict → assert HTTP 200 and sane shapes.
# Binaries are expected in ./bin (built by `make serve-smoke`).
set -euo pipefail

BIN=${BIN:-./bin}
PORT=${PORT:-18473}
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== datagen"
"$BIN/gsgcn-datagen" -dataset ppi -scale 0.02 -out "$TMP/g.gsg" -stats=false

echo "== train (2 epochs)"
"$BIN/gsgcn-train" -data "$TMP/g.gsg" -epochs 2 -hidden 16 -save "$TMP/m.ckpt" >/dev/null

echo "== serve"
"$BIN/gsgcn-serve" -data "$TMP/g.gsg" -load "$TMP/m.ckpt" -addr "127.0.0.1:$PORT" -ann &
SERVER_PID=$!

base="http://127.0.0.1:$PORT"
for i in $(seq 1 50); do
    if curl -sf "$base/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "serve-smoke: server exited early" >&2; exit 1
    fi
    sleep 0.2
done

check() {
    local path=$1 field=$2
    local out code
    out=$(curl -s -w '\n%{http_code}' "$base$path")
    code=${out##*$'\n'}
    body=${out%$'\n'*}
    if [ "$code" != 200 ]; then
        echo "serve-smoke: GET $path returned $code: $body" >&2; exit 1
    fi
    if ! printf '%s' "$body" | grep -q "\"$field\""; then
        echo "serve-smoke: GET $path response lacks \"$field\": $body" >&2; exit 1
    fi
}

echo "== query"
check "/healthz" "model_version"
check "/embed?ids=0,1" "embeddings"
check "/predict?ids=0,1" "labels"
check "/topk?id=0&k=3" "neighbors"
# -ann makes the HNSW index the default mode; both per-request
# overrides must answer too.
check "/topk?id=0&k=3" "ann"
check "/topk?id=0&k=3&mode=exact" "neighbors"
check "/topk?id=0&k=3&mode=ann&ef=32" "neighbors"

# Shape sanity: two embedding vectors for two ids.
vectors=$(curl -s "$base/embed?ids=0,1" | grep -o '\[\[' | wc -l)
if [ "$vectors" -lt 1 ]; then
    echo "serve-smoke: /embed returned no vector array" >&2; exit 1
fi

echo "serve-smoke: OK"
