#!/usr/bin/env bash
# serve-smoke: end-to-end check of the serving pipeline —
# datagen → short train → save checkpoint → launch gsgcn-serve →
# curl /embed, /predict, /topk → assert HTTP 200 and sane shapes —
# then the warm path: gsgcn-index builds a snapshot artifact, the
# server restarts against it, /healthz must report warm_start:true and
# every /topk answer must match the cold run byte-for-byte (the
# artifact determinism contract, asserted over HTTP).
# The memory-plane phase rebuilds the artifact quantized (-dtype
# i8pq), restarts the server memory-mapped (-mmap), and asserts the
# contract both ways: exact answers byte-identical to the f64 run,
# private working set (gsgcn_resident_bytes) at least 3x smaller.
# The final phase shards the same graph 3 ways: gsgcn-index -shards
# builds per-shard artifacts, the sharded server must answer /embed,
# /predict and exact /topk byte-identically to the single process,
# and stopping one shard must degrade /healthz (still HTTP 200) while
# ids on live shards keep answering unchanged.
# Each phase also scrapes /metrics and asserts the exposition tracks
# it: cold boots gauge warm_start 0, warm boots 1, multi-model rows
# scope by model label, and a stopped shard flips gsgcn_shard_up and
# grows the degraded-query counter.
# The sharded server also opens the binary wire transport
# (-wire-addr): /v1 aliases must answer byte-identically to the legacy
# routes, gsgcn-probe must decode identical answers over JSON,
# negotiated-binary HTTP and framed TCP (one TCP connection surviving
# a reload storm), and a JSON-vs-wire embed-only loadgen pair records
# the transport's percentile win in BENCH_serve.json.
# Binaries are expected in ./bin (built by `make serve-smoke`).
set -euo pipefail

BIN=${BIN:-./bin}
GO=${GO:-go}
PORT=${PORT:-18473}
TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    stop_server
    rm -rf "$TMP"
}
stop_server() {
    if [ -n "$SERVER_PID" ]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
        SERVER_PID=""
    fi
}
trap cleanup EXIT

# start_server ARGS... — launch gsgcn-serve, retrying on the next
# port only when the failure really was a bind collision (another
# process may own the default port on a shared CI host), and wait for
# /healthz to answer. Any other startup crash fails fast with the
# server's own output.
start_server() {
    local attempt
    for attempt in 1 2 3 4 5; do
        "$BIN/gsgcn-serve" "$@" -addr "127.0.0.1:$PORT" 2>"$TMP/server.log" &
        SERVER_PID=$!
        base="http://127.0.0.1:$PORT"
        local i
        for i in $(seq 1 50); do
            if curl -sf "$base/healthz" >/dev/null 2>&1; then
                cat "$TMP/server.log" >&2
                return 0
            fi
            if ! kill -0 "$SERVER_PID" 2>/dev/null; then
                break
            fi
            sleep 0.2
        done
        if kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "serve-smoke: server up but /healthz never answered" >&2
            cat "$TMP/server.log" >&2
            exit 1
        fi
        SERVER_PID=""
        if ! grep -q "address already in use" "$TMP/server.log"; then
            echo "serve-smoke: server crashed at startup:" >&2
            cat "$TMP/server.log" >&2
            exit 1
        fi
        PORT=$((PORT + 1))
        echo "serve-smoke: port collision, retrying on $PORT" >&2
    done
    echo "serve-smoke: no free port after 5 attempts" >&2
    exit 1
}

check() {
    local path=$1 field=$2
    local out code body
    out=$(curl -s -w '\n%{http_code}' "$base$path")
    code=${out##*$'\n'}
    body=${out%$'\n'*}
    if [ "$code" != 200 ]; then
        echo "serve-smoke: GET $path returned $code: $body" >&2; exit 1
    fi
    if ! printf '%s' "$body" | grep -q "\"$field\""; then
        echo "serve-smoke: GET $path response lacks \"$field\": $body" >&2; exit 1
    fi
}

# metrics_grep EXPR [PATH] — assert the scrape at PATH (default the
# global /metrics) matches the extended regex EXPR. The body is
# buffered first: grep -q quitting on an early match would otherwise
# hand curl a closed pipe, and pipefail would read that as a failure.
metrics_grep() {
    local expr=$1 path=${2:-/metrics} body
    body=$(curl -sf "$base$path")
    if ! printf '%s\n' "$body" | grep -Eq "$expr"; then
        echo "serve-smoke: GET $path lacks $expr" >&2
        printf '%s\n' "$body" | head -60 >&2
        exit 1
    fi
}

echo "== datagen"
"$BIN/gsgcn-datagen" -dataset ppi -scale 0.02 -out "$TMP/g.gsg" -stats=false

echo "== train (2 epochs)"
"$BIN/gsgcn-train" -data "$TMP/g.gsg" -epochs 2 -hidden 16 -save "$TMP/m.ckpt" >/dev/null

echo "== serve (cold)"
start_server -data "$TMP/g.gsg" -load "$TMP/m.ckpt" -ann

echo "== query"
check "/healthz" "model_version"
check "/embed?ids=0,1" "embeddings"
check "/predict?ids=0,1" "labels"
check "/topk?id=0&k=3" "neighbors"
# -ann makes the HNSW index the default mode; both per-request
# overrides must answer too.
check "/topk?id=0&k=3" "ann"
check "/topk?id=0&k=3&mode=exact" "neighbors"
check "/topk?id=0&k=3&mode=ann&ef=32" "neighbors"

# Shape sanity: two embedding vectors for two ids.
vectors=$(curl -s "$base/embed?ids=0,1" | grep -o '\[\[' | wc -l)
if [ "$vectors" -lt 1 ]; then
    echo "serve-smoke: /embed returned no vector array" >&2; exit 1
fi

# A cold start must not claim a warm one.
if curl -s "$base/healthz" | grep -q '"warm_start":true'; then
    echo "serve-smoke: cold start reports warm_start:true" >&2; exit 1
fi

echo "== scrape (cold)"
# The queries above must have landed in the exposition: every tracked
# family present, the served requests counted, and the warm-start
# gauge agreeing with /healthz that this boot computed from scratch.
for family in gsgcn_http_requests_total gsgcn_http_request_duration_seconds \
    gsgcn_batcher_queue_depth gsgcn_batcher_batches_total gsgcn_batcher_batch_size \
    gsgcn_batcher_flush_duration_seconds gsgcn_snapshot_version \
    gsgcn_snapshot_warm_start gsgcn_index_resident; do
    metrics_grep "^# TYPE $family "
done
metrics_grep '^gsgcn_http_requests_total\{code="2xx",endpoint="/embed",model="default"\} [1-9]'
metrics_grep '^gsgcn_snapshot_warm_start\{model="default"\} 0$'
metrics_grep '^gsgcn_snapshot_version\{model="default"\} 1$'

# Capture cold answers for the byte-for-byte warm comparison.
topk_queries="/topk?id=0&k=3 /topk?id=1&k=5&mode=ann /topk?id=2&k=4&mode=exact"
for q in $topk_queries; do
    curl -s "$base$q" > "$TMP/cold$(printf '%s' "$q" | tr '/?&=' '____')"
done

echo "== index (build snapshot artifact)"
"$BIN/gsgcn-index" -load "$TMP/m.ckpt" -data "$TMP/g.gsg" -out "$TMP/m.ckpt.art"
if [ ! -s "$TMP/m.ckpt.art" ] || [ ! -s "$TMP/m.ckpt.art.json" ]; then
    echo "serve-smoke: gsgcn-index left no artifact or manifest" >&2; exit 1
fi

echo "== serve (warm restart)"
stop_server
start_server -data "$TMP/g.gsg" -load "$TMP/m.ckpt" -ann -artifact "$TMP/m.ckpt.art"

if ! curl -s "$base/healthz" | grep -q '"warm_start":true'; then
    echo "serve-smoke: warm restart does not report warm_start:true:" >&2
    curl -s "$base/healthz" >&2; exit 1
fi

echo "== scrape (warm): the gauge must flip with the artifact boot"
metrics_grep '^gsgcn_snapshot_warm_start\{model="default"\} 1$'
metrics_grep '^gsgcn_index_resident\{model="default"\} 1$'

echo "== warm answers must equal cold answers byte-for-byte"
for q in $topk_queries; do
    f="$TMP/cold$(printf '%s' "$q" | tr '/?&=' '____')"
    curl -s "$base$q" > "$f.warm"
    if ! cmp -s "$f" "$f.warm"; then
        echo "serve-smoke: warm $q differs from cold:" >&2
        diff "$f" "$f.warm" >&2 || true
        exit 1
    fi
done

# Capture exact-mode answers for the memory-plane phase now, while
# the snapshot is still at version 1 — a fresh quantized server starts
# there too, so the comparison is byte-for-byte including the version.
mem_queries="/topk?id=0&k=3&mode=exact /topk?id=3&k=5&mode=exact /embed?ids=0,4,9 /predict?ids=2,6"
for q in $mem_queries; do
    curl -s "$base$q" > "$TMP/memf64$(printf '%s' "$q" | tr '/?&,=' '_____')"
done

# /reload against the unchanged artifact must stay warm.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/reload")
if [ "$code" != 200 ]; then
    echo "serve-smoke: POST /reload returned $code" >&2; exit 1
fi
if ! curl -s "$base/healthz" | grep -q '"warm_start":true'; then
    echo "serve-smoke: reload lost the warm start" >&2; exit 1
fi

echo "== memory plane (i8pq artifact, mmap-backed serving)"
# The warm f64 server still running above is the baseline (its
# exact-mode answers were captured pre-reload): scrape its private
# working set, then swap the resident representation to mmap-backed
# int8-PQ. Exact answers must not move by a byte, and the working set
# must shrink at least 3x.
metric_value() {
    curl -sf "$base/metrics" | sed -n "s/^$1 \([0-9][0-9]*\)\$/\1/p" | head -1
}
if ! curl -s "$base/healthz" | grep -q '"dtype":"f64"'; then
    echo "serve-smoke: f64 baseline healthz does not report its dtype:" >&2
    curl -s "$base/healthz" >&2; exit 1
fi
R64=$(metric_value 'gsgcn_resident_bytes{dtype="f64",model="default"}')
if [ -z "$R64" ] || [ "$R64" -le 0 ]; then
    echo "serve-smoke: no f64 gsgcn_resident_bytes gauge:" >&2
    curl -sf "$base/metrics" | grep resident_bytes >&2 || true
    exit 1
fi
metrics_grep '^gsgcn_mapped_bytes\{dtype="f64",model="default"\} 0$'

"$BIN/gsgcn-index" -load "$TMP/m.ckpt" -data "$TMP/g.gsg" -dtype i8pq -out "$TMP/m8.art"
if ! grep -q '"dtype": "i8pq"' "$TMP/m8.art.json"; then
    echo "serve-smoke: i8pq manifest does not record its dtype:" >&2
    cat "$TMP/m8.art.json" >&2; exit 1
fi

stop_server
start_server -data "$TMP/g.gsg" -load "$TMP/m.ckpt" -ann \
    -artifact "$TMP/m8.art" -dtype i8pq -mmap
for field in '"warm_start":true' '"dtype":"i8pq"' '"mapped_bytes":'; do
    if ! curl -s "$base/healthz" | grep -q "$field"; then
        echo "serve-smoke: mmap i8pq healthz lacks $field:" >&2
        curl -s "$base/healthz" >&2; exit 1
    fi
done

# Exact answers at the quantized dtype are byte-identical to f64.
for q in $mem_queries; do
    f="$TMP/memf64$(printf '%s' "$q" | tr '/?&,=' '_____')"
    curl -s "$base$q" > "$f.i8pq"
    if ! cmp -s "$f" "$f.i8pq"; then
        echo "serve-smoke: i8pq $q differs from the f64 baseline:" >&2
        diff "$f" "$f.i8pq" >&2 || true
        exit 1
    fi
done
# ANN mode still answers (recall-bounded, so only shape-checked here).
check "/topk?id=0&k=3&mode=ann" "neighbors"

R8=$(metric_value 'gsgcn_resident_bytes{dtype="i8pq",model="default"}')
M8=$(metric_value 'gsgcn_mapped_bytes{dtype="i8pq",model="default"}')
if [ -z "$R8" ] || [ -z "$M8" ] || [ "$M8" -le 0 ]; then
    echo "serve-smoke: mmap i8pq gauges missing (resident=$R8 mapped=$M8):" >&2
    curl -sf "$base/metrics" | grep -E 'resident_bytes|mapped_bytes' >&2 || true
    exit 1
fi
echo "serve-smoke: resident f64=${R64}B i8pq+mmap=${R8}B (mapped ${M8}B)"
if [ $((3 * R8)) -gt "$R64" ]; then
    echo "serve-smoke: mmap i8pq resident ${R8}B is not 3x under the f64 ${R64}B" >&2
    exit 1
fi

echo "== train second model (for the multi-model phase)"
"$BIN/gsgcn-train" -data "$TMP/g.gsg" -epochs 1 -hidden 16 -seed 7 -save "$TMP/m2.ckpt" >/dev/null

echo "== serve (multi-model: warm prod + cold canary in one process)"
stop_server
start_server -data "$TMP/g.gsg" \
    -model "prod=$TMP/m.ckpt,artifact=$TMP/m.ckpt.art,ann=true" \
    -model "canary=$TMP/m2.ckpt"

check "/models" "default"
check "/models/prod/healthz" "checkpoint"
check "/models/prod/embed?ids=0,1" "embeddings"
check "/models/canary/predict?ids=0,1" "labels"
check "/models/canary/topk?id=0&k=3" "neighbors"

# Per-model warm state: prod restarted from the artifact, canary cold.
if ! curl -s "$base/models/prod/healthz" | grep -q '"warm_start":true'; then
    echo "serve-smoke: multi-model prod is not warm:" >&2
    curl -s "$base/models/prod/healthz" >&2; exit 1
fi
if ! curl -s "$base/models/canary/healthz" | grep -q '"warm_start":false'; then
    echo "serve-smoke: multi-model canary claims a warm start" >&2; exit 1
fi

# prod is the default model: the legacy unprefixed routes and the
# prefixed spelling must both answer byte-identically to the
# dedicated single-model server's answers captured above.
for q in $topk_queries; do
    f="$TMP/cold$(printf '%s' "$q" | tr '/?&=' '____')"
    curl -s "$base$q" > "$f.multi"
    if ! cmp -s "$f" "$f.multi"; then
        echo "serve-smoke: multi-model legacy $q differs from single-model:" >&2
        diff "$f" "$f.multi" >&2 || true
        exit 1
    fi
    curl -s "$base/models/prod$q" > "$f.multip"
    if ! cmp -s "$f" "$f.multip"; then
        echo "serve-smoke: /models/prod$q differs from single-model:" >&2
        diff "$f" "$f.multip" >&2 || true
        exit 1
    fi
done

echo "== scrape (multi-model): one shared registry, rows scoped by model"
metrics_grep '^gsgcn_snapshot_warm_start\{model="prod"\} 1$'
metrics_grep '^gsgcn_snapshot_warm_start\{model="canary"\} 0$'
metrics_grep 'endpoint="/embed",model="prod"'
# The per-model scrape filters to that model's series only.
metrics_grep '^gsgcn_snapshot_version\{model="canary"\} 1$' /models/canary/metrics
if curl -sf "$base/models/canary/metrics" | grep 'model="prod"' >/dev/null; then
    echo "serve-smoke: canary's scoped scrape leaks prod series" >&2; exit 1
fi

# Per-model reload: canary bumps to version 2, prod stays at 1.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/models/canary/reload")
if [ "$code" != 200 ]; then
    echo "serve-smoke: POST /models/canary/reload returned $code" >&2; exit 1
fi
if ! curl -s "$base/models/canary/healthz" | grep -q '"version":2'; then
    echo "serve-smoke: canary reload did not advance its version" >&2; exit 1
fi
if ! curl -s "$base/models/prod/healthz" | grep -q '"version":1'; then
    echo "serve-smoke: canary reload disturbed prod's version" >&2; exit 1
fi

# Unknown model names come back as clean 404s.
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/models/nope/embed?ids=0")
if [ "$code" != 404 ]; then
    echo "serve-smoke: unknown model returned $code, want 404" >&2; exit 1
fi

echo "== serve (single process: baseline for the sharded phase)"
stop_server
start_server -data "$TMP/g.gsg" -load "$TMP/m.ckpt" -ann

# Capture unsharded answers for the sharded byte-equality phase:
# /embed, /predict and exact /topk are the deployment-independent
# contract (ann answers are only pinned at a fixed shard count).
exact_queries="/embed?ids=0,1,2 /predict?ids=0,1 /topk?id=0&k=3&mode=exact /topk?id=5&k=4&mode=exact"
for q in $exact_queries; do
    curl -s "$base$q" > "$TMP/unsharded$(printf '%s' "$q" | tr '/?&,=' '_____')"
done

echo "== index (per-shard artifacts, 3 shards)"
"$BIN/gsgcn-index" -load "$TMP/m.ckpt" -data "$TMP/g.gsg" -out "$TMP/sh.art" \
    -shards 3 -shard-seed 42
for i in 0 1 2; do
    if [ ! -s "$TMP/sh.art.s${i}of3" ] || [ ! -s "$TMP/sh.art.s${i}of3.json" ]; then
        echo "serve-smoke: missing shard artifact s${i}of3 or its manifest" >&2; exit 1
    fi
done

echo "== serve (sharded: 3 shards, warm from per-shard artifacts)"
stop_server
start_server -data "$TMP/g.gsg" -load "$TMP/m.ckpt" -ann \
    -artifact "$TMP/sh.art" -shards 3 -shard-seed 42 \
    -deadline 2s -shed-queue 256 \
    -wire-addr 127.0.0.1:0

# The wire listener bound an ephemeral port; the server logs the real
# address in its wire_listening event.
WADDR=$(sed -n 's/.*"event":"wire_listening","addr":"\([^"]*\)".*/\1/p' "$TMP/server.log" | head -1)
if [ -z "$WADDR" ]; then
    echo "serve-smoke: server log has no wire_listening event:" >&2
    cat "$TMP/server.log" >&2; exit 1
fi
echo "serve-smoke: wire transport on $WADDR"

check "/shards" "shard_seed"
# The /v1 spelling is the canonical surface; the legacy alias above
# and the versioned route must both answer.
check "/v1/healthz" "model_version"
if ! curl -s "$base/healthz" | grep -q '"shards":3'; then
    echo "serve-smoke: sharded healthz does not report 3 shards:" >&2
    curl -s "$base/healthz" >&2; exit 1
fi
if ! curl -s "$base/healthz" | grep -q '"warm_start":true'; then
    echo "serve-smoke: sharded fleet did not warm-start from its artifacts:" >&2
    curl -s "$base/healthz" >&2; exit 1
fi

echo "== sharded answers must equal unsharded answers byte-for-byte"
for q in $exact_queries; do
    f="$TMP/unsharded$(printf '%s' "$q" | tr '/?&,=' '_____')"
    curl -s "$base$q" > "$f.sharded"
    if ! cmp -s "$f" "$f.sharded"; then
        echo "serve-smoke: sharded $q differs from unsharded:" >&2
        diff "$f" "$f.sharded" >&2 || true
        exit 1
    fi
done

echo "== kill one shard: degraded, not dead"
# Pre-outage answers for a spread of ids, to prove live shards keep
# answering byte-identically during the outage.
for id in 0 1 2 3 4 5 6 7 8 9; do
    curl -s "$base/embed?ids=$id" > "$TMP/pre$id"
done
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/shards/1/stop")
if [ "$code" != 200 ]; then
    echo "serve-smoke: POST /shards/1/stop returned $code" >&2; exit 1
fi

# /healthz stays HTTP 200 but reports the degradation.
code=$(curl -s -o "$TMP/degraded.json" -w '%{http_code}' "$base/healthz")
if [ "$code" != 200 ]; then
    echo "serve-smoke: degraded /healthz returned $code, want 200" >&2; exit 1
fi
if ! grep -q '"status":"degraded"' "$TMP/degraded.json"; then
    echo "serve-smoke: /healthz with a shard down is not degraded:" >&2
    cat "$TMP/degraded.json" >&2; exit 1
fi
if ! grep -q '"shards_down":1' "$TMP/degraded.json"; then
    echo "serve-smoke: /healthz does not count the down shard:" >&2
    cat "$TMP/degraded.json" >&2; exit 1
fi

# Ids on live shards answer byte-identically; ids owned by the dead
# shard fail 503. With 10 ids over 3 shards both classes must occur.
live=0 dead=0
for id in 0 1 2 3 4 5 6 7 8 9; do
    code=$(curl -s -o "$TMP/during$id" -w '%{http_code}' "$base/embed?ids=$id")
    case "$code" in
    200)
        live=$((live + 1))
        if ! cmp -s "$TMP/pre$id" "$TMP/during$id"; then
            echo "serve-smoke: live-shard id $id changed during the outage:" >&2
            diff "$TMP/pre$id" "$TMP/during$id" >&2 || true
            exit 1
        fi
        ;;
    503)
        dead=$((dead + 1))
        if ! grep -q "stopped shard 1" "$TMP/during$id"; then
            echo "serve-smoke: 503 for id $id does not name the stopped shard:" >&2
            cat "$TMP/during$id" >&2; exit 1
        fi
        ;;
    *)
        echo "serve-smoke: id $id during outage returned $code:" >&2
        cat "$TMP/during$id" >&2; exit 1
        ;;
    esac
done
if [ "$live" -eq 0 ] || [ "$dead" -eq 0 ]; then
    echo "serve-smoke: outage split live=$live dead=$dead over 10 ids — expected both" >&2; exit 1
fi

echo "== scrape (shard down): health gauges and degraded counters"
metrics_grep '^gsgcn_shard_up\{model="default",shard="0"\} 1$'
metrics_grep '^gsgcn_shard_up\{model="default",shard="1"\} 0$'
metrics_grep '^gsgcn_shard_up\{model="default",shard="2"\} 1$'
metrics_grep '^gsgcn_degraded_queries_total\{model="default"\} [1-9]'
metrics_grep '^gsgcn_snapshot_warm_start\{model="default",shard="0"\} 1$'

echo "== restart the shard: fully recovered"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/shards/1/start")
if [ "$code" != 200 ]; then
    echo "serve-smoke: POST /shards/1/start returned $code" >&2; exit 1
fi
if ! curl -s "$base/healthz" | grep -q '"status":"ok"'; then
    echo "serve-smoke: fleet not ok after shard restart" >&2; exit 1
fi
for q in $exact_queries; do
    f="$TMP/unsharded$(printf '%s' "$q" | tr '/?&,=' '_____')"
    curl -s "$base$q" > "$f.recovered"
    if ! cmp -s "$f" "$f.recovered"; then
        echo "serve-smoke: post-recovery $q differs from unsharded:" >&2
        diff "$f" "$f.recovered" >&2 || true
        exit 1
    fi
done

echo "== v1 aliases answer byte-identically to the legacy routes"
for q in $exact_queries; do
    f="$TMP/unsharded$(printf '%s' "$q" | tr '/?&,=' '_____')"
    curl -s "$base/v1$q" > "$f.v1"
    if ! cmp -s "$f" "$f.v1"; then
        echo "serve-smoke: /v1$q differs from $q:" >&2
        diff "$f" "$f.v1" >&2 || true
        exit 1
    fi
done

echo "== probe (JSON / negotiated binary / framed TCP must decode identically)"
# gsgcn-probe issues the same queries over all three transports via
# pkg/client and requires bit-identical decoded answers, then holds
# one TCP connection across 5 hot reloads.
"$BIN/gsgcn-probe" -addr "$base" -wire-addr "$WADDR" \
    -ids 0,1,2 -topk-id 0 -topk-k 3 -reload-storm 5

echo "== scrape (wire): the TCP frames must be billed to their transport"
metrics_grep '^gsgcn_requests_total\{model="default",transport="wire"\} [1-9]'
metrics_grep '^gsgcn_requests_total\{model="default",transport="http"\} [1-9]'

echo "== loadgen (mixed load + reload storm + shard churn)"
# The sharded server is still up with -deadline 2s -shed-queue 256.
# Reloads and shard kill/restart cycles run mid-traffic; the only
# acceptable outcomes are answers, sheds (429) and degraded 503s from
# the killed shard — any client_error/server_error/transport fails
# the gate (-fail-on-errors), as does an empty success sample.
"$BIN/gsgcn-loadgen" -addr "$base" -rate 150 -duration 4s \
    -reload-every 1s -churn-shard 1 -churn-every 1s \
    -fail-on-errors -bench LoadgenMixed > "$TMP/loadgen.json"

# The run entry must carry a real latency distribution before it is
# allowed into the trajectory.
if ! grep -Eq '"p99_ns": [1-9]' "$TMP/loadgen.json"; then
    echo "serve-smoke: loadgen entry has an empty p99 sample:" >&2
    cat "$TMP/loadgen.json" >&2; exit 1
fi

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
$GO run ./scripts/benchmerge -out BENCH_serve.json \
    -commit "${COMMIT}-loadgen" -date "$(date -u +%Y-%m-%d)" < "$TMP/loadgen.json"
echo "serve-smoke: loadgen entry appended to BENCH_serve.json"

echo "== loadgen (embed-only, JSON vs wire: the transport's percentile win)"
# The same embed-only load at the same rate, once over JSON HTTP and
# once over the persistent framed TCP connection — no reloads or
# churn, so the percentile gap isolates the transport itself.
"$BIN/gsgcn-loadgen" -addr "$base" -transport json -rate 150 -duration 4s \
    -mix 1:0:0 -fail-on-errors -bench LoadgenEmbedJSON > "$TMP/loadgen-json.json"
"$BIN/gsgcn-loadgen" -addr "$base" -wire-addr "$WADDR" -transport tcp \
    -rate 150 -duration 4s -mix 1:0:0 -fail-on-errors \
    -bench LoadgenEmbedWire > "$TMP/loadgen-wire.json"

p99_of() { sed -n 's/.*"p99_ns": \([0-9][0-9]*\).*/\1/p' "$1"; }
jp99=$(p99_of "$TMP/loadgen-json.json")
wp99=$(p99_of "$TMP/loadgen-wire.json")
if [ -z "$jp99" ] || [ -z "$wp99" ] || [ "$jp99" -le 0 ] || [ "$wp99" -le 0 ]; then
    echo "serve-smoke: embed-only loadgen pair lacks p99 samples:" >&2
    cat "$TMP/loadgen-json.json" "$TMP/loadgen-wire.json" >&2; exit 1
fi
echo "serve-smoke: /embed p99 json=${jp99}ns wire=${wp99}ns"
if [ "$wp99" -ge "$jp99" ]; then
    # Report, don't gate: on loaded CI hosts a 4s sample is too noisy
    # to hard-fail, but the trajectory in BENCH_serve.json keeps the
    # comparison on record for every PR.
    echo "serve-smoke: WARNING: wire p99 did not beat JSON on this run" >&2
fi

$GO run ./scripts/benchmerge -out BENCH_serve.json \
    -commit "${COMMIT}-loadgen-json" -date "$(date -u +%Y-%m-%d)" < "$TMP/loadgen-json.json"
$GO run ./scripts/benchmerge -out BENCH_serve.json \
    -commit "${COMMIT}-loadgen-wire" -date "$(date -u +%Y-%m-%d)" < "$TMP/loadgen-wire.json"
echo "serve-smoke: JSON/wire embed entries appended to BENCH_serve.json"

echo "serve-smoke: OK"
