package gsgcn

import (
	"fmt"
	"strings"

	"gsgcn/internal/core"
)

// SamplerAblationRow reports one sampling algorithm's behaviour: the
// connectivity its subgraphs preserve and the accuracy a GCN trained
// on them reaches. This implements the paper's stated future work
// ("evaluating impact on accuracy using various sampling
// algorithms", Section VII) and validates the Section III-C argument
// that connectivity-preserving samplers yield accurate models.
type SamplerAblationRow struct {
	Sampler  string
	Subgraph int     // vertices in one sampled subgraph
	LCCFrac  float64 // largest-connected-component fraction
	ValF1    float64 // validation micro-F1 after Epochs epochs
}

// SamplerAblationResult is the sampler-family comparison on one
// dataset.
type SamplerAblationResult struct {
	Dataset string
	Epochs  int
	Rows    []SamplerAblationRow
}

// RunSamplerAblation trains one model per sampling algorithm on the
// first configured dataset.
func RunSamplerAblation(o ExpOptions) (*SamplerAblationResult, error) {
	o = o.normalized()
	cache := newDatasetCache(o)
	ds, err := cache.get(o.Datasets[0])
	if err != nil {
		return nil, err
	}
	m, budget := trainParams(ds, o)
	lr := 0.01
	if ds.MultiLabel {
		lr = 0.04
	}
	res := &SamplerAblationResult{Dataset: ds.Name, Epochs: o.Epochs}
	family := Samplers(ds.G, budget)
	for _, name := range sortedKeys(family) {
		s := family[name]
		sub := Sample(ds.G, s, o.Seed+1)
		model := core.NewModel(ds, core.Config{
			Layers: 2, Hidden: o.Hidden, LR: lr,
			FrontierM: m, Budget: budget, Workers: o.Workers, Seed: o.Seed,
		})
		tr := core.NewTrainerWithSampler(ds, model, s)
		for e := 0; e < o.Epochs; e++ {
			tr.Epoch()
		}
		res.Rows = append(res.Rows, SamplerAblationRow{
			Sampler:  name,
			Subgraph: sub.N,
			LCCFrac:  sub.LargestComponentFraction(),
			ValF1:    tr.Evaluate(ds.ValIdx),
		})
	}
	return res, nil
}

// String renders the comparison.
func (r *SamplerAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampler ablation (%s, %d epochs): connectivity preservation vs accuracy\n", r.Dataset, r.Epochs)
	fmt.Fprintf(&b, "  %-14s %10s %10s %10s\n", "sampler", "subgraph", "LCC-frac", "val-F1")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-14s %10d %10.3f %10.4f\n", row.Sampler, row.Subgraph, row.LCCFrac, row.ValF1)
	}
	return b.String()
}
