package gsgcn_test

// The Go-native twin of scripts/serve-smoke.sh: the full pipeline —
// datagen → train → save a v2 checkpoint → dataset-free model
// reconstruction → serving engine → live HTTP queries — in one
// process, with golden assertions the shell script cannot make: the
// served /embed vectors are bit-identical to the training-side
// forward pass, and /predict agrees with the training prediction rule
// applied to the training-side logits.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"gsgcn"
	"gsgcn/internal/nn"
	"gsgcn/internal/serve"
)

func e2eGet(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestEndToEndServingPipeline(t *testing.T) {
	// Datagen: a small synthetic graph, fully seeded.
	ds := gsgcn.GenerateDataset(gsgcn.DatasetConfig{
		Name: "e2e", Vertices: 300, TargetEdges: 2400,
		FeatureDim: 12, NumClasses: 4,
		Homophily: 0.8, NoiseStd: 0.5, Seed: 23,
	})

	// Train 2 epochs and stamp the optimizer-step count.
	m := gsgcn.NewModel(ds, gsgcn.Config{
		Layers: 2, Hidden: 8, Workers: 1, Seed: 5,
		FrontierM: 30, Budget: 120, PInter: 1,
	})
	tr := gsgcn.NewTrainer(ds, m)
	for epoch := 0; epoch < 2; epoch++ {
		tr.Epoch()
	}
	m.ModelVersion = uint64(tr.Steps())

	// Save the v2 checkpoint and reconstruct a model from the file
	// alone — the dataset-free serving path.
	ckpt := filepath.Join(t.TempDir(), "e2e.ckpt")
	if err := m.SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}
	loaded, err := gsgcn.LoadModelFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ModelVersion != m.ModelVersion {
		t.Fatalf("reloaded ModelVersion = %d, want %d", loaded.ModelVersion, m.ModelVersion)
	}

	// Golden references from the TRAINING side: the full-graph
	// forward pass of the trained model (embeddings and logits) and
	// the training prediction rule.
	wantEmb := serve.FullEmbeddings(m, ds.G, ds.Features, 1, 256)
	ctx := m.CtxForGraph(ds.G, ds.FeatureDim(), nil)
	wantLogits := m.Forward(ctx, ds.Features)
	wantLabels := nn.PredictSingle(wantLogits)

	// Serve over HTTP.
	srv := gsgcn.NewInferenceServer(ds, gsgcn.ServeOptions{Workers: 2})
	defer srv.Close()
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// /healthz reflects the loaded snapshot.
	var health struct {
		Status       string `json:"status"`
		Version      uint64 `json:"version"`
		ModelVersion uint64 `json:"model_version"`
		Vertices     int    `json:"vertices"`
		Dim          int    `json:"dim"`
	}
	if code := e2eGet(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "ok" || health.Version != 1 ||
		health.ModelVersion != m.ModelVersion || health.Vertices != 300 {
		t.Fatalf("healthz = %+v", health)
	}
	if health.Dim != wantEmb.Cols {
		t.Fatalf("served dim %d, training emb dim %d", health.Dim, wantEmb.Cols)
	}

	// /embed: shape and bit-identity with the training forward pass.
	ids := []int{0, 7, 150, 299}
	var emb serve.EmbedResult
	url := fmt.Sprintf("%s/embed?ids=0,7,150,299", ts.URL)
	if code := e2eGet(t, url, &emb); code != 200 {
		t.Fatalf("embed = %d", code)
	}
	if emb.Dim != wantEmb.Cols || len(emb.Vectors) != len(ids) {
		t.Fatalf("embed shape: dim %d, %d vectors", emb.Dim, len(emb.Vectors))
	}
	for i, id := range ids {
		if len(emb.Vectors[i]) != wantEmb.Cols {
			t.Fatalf("vector %d has %d dims", i, len(emb.Vectors[i]))
		}
		for j, x := range emb.Vectors[i] {
			if x != wantEmb.At(id, j) {
				t.Fatalf("served embedding[%d][%d] = %g differs from training forward pass %g",
					id, j, x, wantEmb.At(id, j))
			}
		}
	}

	// /predict: labels equal the training prediction rule on the
	// training-side logits, probabilities well-formed.
	var pred serve.PredictResult
	if code := e2eGet(t, ts.URL+"/predict?ids=0,7,150,299", &pred); code != 200 {
		t.Fatalf("predict = %d", code)
	}
	if pred.Classes != ds.NumClasses || pred.MultiLabel {
		t.Fatalf("predict meta = %+v", pred)
	}
	for i, id := range ids {
		if len(pred.Labels[i]) != 1 || len(pred.Probs[i]) != ds.NumClasses {
			t.Fatalf("vertex %d: %d labels, %d probs", id, len(pred.Labels[i]), len(pred.Probs[i]))
		}
		if got := pred.Labels[i][0]; wantLabels.At(id, got) != 1 {
			t.Fatalf("vertex %d served label %d disagrees with training rule", id, got)
		}
		sum := 0.0
		for _, p := range pred.Probs[i] {
			if p < 0 || p > 1 {
				t.Fatalf("vertex %d prob %g out of range", id, p)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("vertex %d probs sum to %g", id, sum)
		}
	}

	// /topk in both modes: valid shapes, the ann answer drawn from the
	// same snapshot, and an explicit exact/ann agreement check at the
	// top rank (identical on this small graph's strongest neighbor).
	var exact, approx serve.TopKResult
	if code := e2eGet(t, ts.URL+"/topk?id=7&k=5", &exact); code != 200 {
		t.Fatalf("topk exact = %d", code)
	}
	if code := e2eGet(t, ts.URL+"/topk?id=7&k=5&mode=ann", &approx); code != 200 {
		t.Fatalf("topk ann = %d", code)
	}
	if exact.Mode != serve.ModeExact || approx.Mode != serve.ModeANN {
		t.Fatalf("modes: %q / %q", exact.Mode, approx.Mode)
	}
	if len(exact.Neighbors) != 5 || len(approx.Neighbors) != 5 {
		t.Fatalf("topk lengths: %d / %d", len(exact.Neighbors), len(approx.Neighbors))
	}
	if exact.Version != approx.Version || exact.Version != health.Version {
		t.Fatalf("topk versions: %d / %d", exact.Version, approx.Version)
	}
	if exact.Neighbors[0] != approx.Neighbors[0] {
		t.Fatalf("rank-1 neighbor differs: exact %+v vs ann %+v", exact.Neighbors[0], approx.Neighbors[0])
	}
	for _, nb := range approx.Neighbors {
		if nb.ID == 7 || nb.ID < 0 || nb.ID >= 300 {
			t.Fatalf("ann neighbor id %d invalid", nb.ID)
		}
	}
}
