// Command gsgcn-datagen generates a synthetic dataset preset and
// writes it to disk in a simple text container (one file with graph,
// features, labels and splits), for inspection or consumption by
// external tools.
//
// Usage:
//
//	gsgcn-datagen -dataset reddit -scale 0.01 -out reddit.gsg
package main

import (
	"flag"
	"fmt"
	"os"

	"gsgcn"
)

func main() {
	var (
		dataset = flag.String("dataset", "ppi", "preset: ppi|reddit|yelp|amazon")
		scale   = flag.Float64("scale", 0.01, "dataset scale relative to Table I")
		out     = flag.String("out", "", "output path (default <dataset>.gsg)")
		seed    = flag.Uint64("seed", 1, "seed")
		statsOn = flag.Bool("stats", true, "print dataset statistics")
	)
	flag.Parse()

	ds, err := gsgcn.LoadPreset(*dataset, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-datagen:", err)
		os.Exit(1)
	}
	if *statsOn {
		s := ds.G.ComputeStats(true)
		fmt.Printf("%s: |V|=%d |E|=%d avg-deg=%.2f max-deg=%d components=%d lcc=%.3f\n",
			ds.Name, s.Vertices, s.Edges, s.AvgDegree, s.MaxDegree, s.Components, s.LCCFrac)
	}
	path := *out
	if path == "" {
		path = ds.Name + ".gsg"
	}
	if err := gsgcn.WriteDataset(ds, path); err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-datagen:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
