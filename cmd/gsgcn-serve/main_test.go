package main

import (
	"strings"
	"testing"
)

// TestParseModelFlag pins the -model value grammar: name=checkpoint
// first, then key=value settings overriding the global-flag defaults.
func TestParseModelFlag(t *testing.T) {
	defaults := modelSpec{ANN: false, ANNM: 8, Workers: 4}

	spec, err := parseModelFlag("prod=prod.ckpt", defaults)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "prod" || spec.Checkpoint != "prod.ckpt" {
		t.Errorf("minimal spec = %+v", spec)
	}
	if spec.ANNM != 8 || spec.Workers != 4 {
		t.Errorf("global defaults not inherited: %+v", spec)
	}

	spec, err = parseModelFlag(
		"canary=c.ckpt,data=g.gsg,artifact=c.art,ann=true,ann-m=32,ann-ef=128,workers=2,block=64,batch=16",
		defaults)
	if err != nil {
		t.Fatal(err)
	}
	want := modelSpec{
		Name: "canary", Checkpoint: "c.ckpt", Data: "g.gsg", Artifact: "c.art",
		ANN: true, ANNM: 32, ANNEf: 128, Workers: 2, Block: 64, Batch: 16,
	}
	if spec != want {
		t.Errorf("full spec = %+v, want %+v", spec, want)
	}

	// Bare "ann" reads as ann=true.
	spec, err = parseModelFlag("a=a.ckpt,ann", defaults)
	if err != nil || !spec.ANN {
		t.Errorf("bare ann: spec=%+v err=%v", spec, err)
	}

	// Sub-millisecond deadlines must survive the ms conversion, not
	// silently truncate to "no deadline".
	spec, err = parseModelFlag("a=a.ckpt,deadline=500us,shed-queue=64,qps=2.5", defaults)
	if err != nil {
		t.Fatal(err)
	}
	if spec.DeadlineMS != 0.5 || spec.ShedQueue != 64 || spec.QPS != 2.5 {
		t.Errorf("overload spec: deadline=%vms shed=%d qps=%v, want 0.5ms 64 2.5",
			spec.DeadlineMS, spec.ShedQueue, spec.QPS)
	}

	for _, bad := range []string{
		"",                    // nothing
		"justaname",           // no checkpoint
		"=ckpt",               // empty name
		"name=",               // empty checkpoint
		"a=a.ckpt,nope=1",     // unknown key
		"a=a.ckpt,ann=maybe",  // bad bool
		"a=a.ckpt,ann-m=lots", // bad int
		"a=a.ckpt,garbage",    // bare token that is not ann
	} {
		if _, err := parseModelFlag(bad, defaults); err == nil {
			t.Errorf("parseModelFlag(%q) accepted", bad)
		}
	}
}

// TestParseFleetConfig pins the -config schema validation and the
// global-flag inheritance: settings absent from a model's JSON object
// take the command-line defaults, present ones override them — the
// same semantics as -model.
func TestParseFleetConfig(t *testing.T) {
	defaults := modelSpec{ANN: true, ANNM: 8, Workers: 4}
	fc, err := parseFleetConfig([]byte(`{
	  "default": "b",
	  "models": [
	    {"name": "a", "checkpoint": "a.ckpt", "data": "g.gsg", "ann_ef": 32},
	    {"name": "b", "checkpoint": "b.ckpt", "ann": false}
	  ]
	}`), defaults)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Default != "b" || len(fc.Models) != 2 {
		t.Fatalf("config = %+v", fc)
	}
	a, b := fc.Models[0], fc.Models[1]
	if a.ANNEf != 32 || !a.ANN || a.ANNM != 8 || a.Workers != 4 {
		t.Errorf("model a did not inherit global defaults: %+v", a)
	}
	if b.ANN || b.Checkpoint != "b.ckpt" {
		t.Errorf("model b could not override an inherited default: %+v", b)
	}

	for name, bad := range map[string]string{
		"malformed":       `{"models": [`,
		"no-models":       `{"default": "x"}`,
		"empty-models":    `{"models": []}`,
		"unknown-field":   `{"models": [{"name": "a", "checkpoint": "a.ckpt", "annn": true}]}`,
		"missing-name":    `{"models": [{"checkpoint": "a.ckpt"}]}`,
		"missing-ckpt":    `{"models": [{"name": "a"}]}`,
		"top-level-typo":  `{"defualt": "a", "models": [{"name": "a", "checkpoint": "a.ckpt"}]}`,
		"not-even-object": `[1, 2]`,
	} {
		if _, err := parseFleetConfig([]byte(bad), defaults); err == nil {
			t.Errorf("%s: parseFleetConfig accepted %s", name, bad)
		}
	}
}

// TestModelFlagsCollect pins the repeatable-flag plumbing.
func TestModelFlagsCollect(t *testing.T) {
	var m modelFlags
	if err := m.Set("a=a.ckpt"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b=b.ckpt,ann=true"); err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || !strings.Contains(m.String(), "a=a.ckpt") {
		t.Errorf("modelFlags = %v (%q)", m, m.String())
	}
}
