// Command gsgcn-serve answers online embedding, prediction and
// similar-node queries from a trained graph-sampling GCN checkpoint.
// It loads the serving graph (either a .gsg file written by
// gsgcn-datagen or a regenerated synthetic preset), computes exact
// full-graph embeddings layer-by-layer, and serves HTTP/JSON:
//
//	GET  /embed?ids=0,1,2     embedding vectors
//	GET  /predict?ids=0,1,2   class labels + probabilities
//	GET  /topk?id=7&k=10      most cosine-similar vertices
//	     &mode=exact|ann&ef=64   exact scan vs HNSW beam search
//	GET  /healthz             liveness + serving stats
//	POST /reload              hot-swap a new checkpoint
//
// SIGHUP also triggers a hot reload of the checkpoint file; in-flight
// requests finish against the snapshot they started with.
//
// Usage:
//
//	gsgcn-serve -data reddit.gsg -load model.ckpt -addr :8080
//	gsgcn-serve -dataset ppi -scale 0.05 -load model.ckpt
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gsgcn"
)

func main() {
	var (
		load    = flag.String("load", "", "model checkpoint to serve (required)")
		data    = flag.String("data", "", "serving graph in .gsg format (overrides -dataset)")
		dataset = flag.String("dataset", "ppi", "preset to regenerate when -data is unset: ppi|reddit|yelp|amazon")
		scale   = flag.Float64("scale", 0.05, "preset scale relative to Table I")
		seed    = flag.Uint64("seed", 1, "preset generation seed (must match training)")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "goroutines for embedding computation and top-K scans (0 = GOMAXPROCS)")
		block   = flag.Int("block", 0, "vertices per streamed inference block (0 = 256)")
		batch   = flag.Int("batch", 0, "max queries coalesced per micro-batch (0 = 64, 1 = off)")
		annOn   = flag.Bool("ann", false, "answer /topk with the approximate HNSW index by default (per-request mode=exact|ann overrides)")
		annM    = flag.Int("ann-m", 0, "HNSW connectivity: links per vertex per layer, 2x on the base layer (0 = 16)")
		annEf   = flag.Int("ann-ef", 0, "default HNSW query beam width; higher = better recall, slower (0 = 64)")
		art     = flag.String("artifact", "", "snapshot artifact (gsgcn-index output) to warm-start from; \"auto\" tries <load>.art; mismatch or absence falls back to the full compute")
	)
	flag.Parse()
	if *load == "" {
		fmt.Fprintln(os.Stderr, "gsgcn-serve: -load is required")
		os.Exit(2)
	}

	var (
		ds  *gsgcn.Dataset
		err error
	)
	if *data != "" {
		ds, err = gsgcn.ReadDataset(*data)
	} else {
		ds, err = gsgcn.LoadPreset(*dataset, *scale, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-serve:", err)
		os.Exit(1)
	}
	log.Printf("%s: |V|=%d |E|=%d attrs=%d classes=%d",
		ds.Name, ds.G.NumVertices(), ds.G.NumEdges(), ds.FeatureDim(), ds.NumClasses)

	if *art == "auto" {
		*art = *load + ".art"
	}
	srv := gsgcn.NewInferenceServer(ds, gsgcn.ServeOptions{
		Workers: *workers, BlockSize: *block, MaxBatch: *batch,
		ANN: *annOn, ANNM: *annM, ANNEf: *annEf,
		ArtifactPath: *art,
	})
	defer srv.Close()
	start := time.Now()
	version, err := srv.Load(*load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-serve:", err)
		os.Exit(1)
	}
	st, _ := srv.Engine().Snapshot()
	how := "computed"
	if st.WarmStart {
		how = "warm-started from " + *art
	} else if st.WarmNote != "" {
		log.Printf("artifact %s unusable (%s), fell back to the full compute", *art, st.WarmNote)
	}
	log.Printf("serving %s (model_version %d, embedding dim %d, %s in %v)",
		*load, st.ModelVersion, st.Dim(), how, time.Since(start).Round(time.Millisecond))
	_ = version

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	go func() {
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				v, err := srv.Reload()
				if err != nil {
					log.Printf("reload failed: %v", err)
					continue
				}
				log.Printf("hot-reloaded %s as version %d", *load, v)
				continue
			}
			log.Printf("shutting down on %v", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			httpSrv.Shutdown(ctx)
			cancel()
			return
		}
	}()

	log.Printf("listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "gsgcn-serve:", err)
		os.Exit(1)
	}
}
