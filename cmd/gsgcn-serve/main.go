// Command gsgcn-serve answers online embedding, prediction and
// similar-node queries from trained graph-sampling GCN checkpoints.
// It serves one model (the PR 2–4 surface) or a fleet of independent
// models behind one process; see docs/API.md for the full HTTP
// reference and docs/ARCHITECTURE.md for how the pieces fit.
//
//	GET  /embed?ids=0,1,2       embedding vectors (default model)
//	GET  /predict?ids=0,1,2     class labels + probabilities
//	GET  /topk?id=7&k=10        most cosine-similar vertices
//	     &mode=exact|ann&ef=64    exact scan vs HNSW beam search
//	GET  /healthz               liveness + serving stats
//	POST /reload                hot-swap checkpoint (and artifact)
//	GET  /models                per-model status listing
//	*    /models/{name}/…       any endpoint above, per model
//	GET  /shards                per-shard status (sharded models)
//	POST /shards/{i}/stop       take one shard down (degraded, not dead)
//	POST /shards/{i}/start      bring it back, bit-exact
//
// With -shards N each model is served as N vertex shards behind a
// scatter-gather router: queries fan out to the owning shards and the
// merged exact answers are byte-identical to the unsharded server at
// every shard count. Per-shard warm-start artifacts come from
// gsgcn-index -shards (the -artifact flag then names the base path).
//
// SIGHUP hot-reloads every model's checkpoint file; in-flight
// requests finish against the snapshot they started with.
//
// Single model:
//
//	gsgcn-serve -data reddit.gsg -load model.ckpt -addr :8080
//	gsgcn-serve -dataset ppi -scale 0.05 -load model.ckpt
//
// Multiple models, one per -model flag (first one is the default
// unless -default says otherwise). The value is name=checkpoint
// followed by optional comma-separated key=value settings — data,
// artifact, dtype, mmap, ann, ann-m, ann-ef, workers, block, batch,
// shards, shard-seed, deadline, shed-queue, qps — which fall back to
// the matching global flags when absent:
//
//	gsgcn-serve -data g.gsg \
//	    -model prod=prod.ckpt,artifact=prod.ckpt.art,ann=true \
//	    -model canary=canary.ckpt
//
// Fleets can also be described in a JSON config file; settings absent
// from a model's JSON object inherit the matching global flags, just
// like -model:
//
//	gsgcn-serve -config fleet.json
//	{
//	  "default": "prod",
//	  "models": [
//	    {"name": "prod", "checkpoint": "prod.ckpt", "data": "g.gsg",
//	     "artifact": "prod.ckpt.art", "ann": true},
//	    {"name": "canary", "checkpoint": "canary.ckpt", "data": "g.gsg"}
//	  ]
//	}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gsgcn"
)

// logger emits every lifecycle event (startup, reload, shutdown) as a
// structured JSON line on stderr, and doubles as the access logger:
// request lines and lifecycle lines share one stream and one
// monotonic id space, so an operator can correlate them.
var logger = gsgcn.NewStructuredLogger(os.Stderr)

// modelSpec is one model's serving configuration — the JSON config
// schema and the parsed form of a -model flag.
type modelSpec struct {
	Name       string `json:"name"`
	Checkpoint string `json:"checkpoint"`
	// Data names a .gsg dataset file; empty uses the process-wide
	// dataset (-data / -dataset). Models naming bit-identical data
	// share one in-memory graph.
	Data string `json:"data"`
	// Artifact warm-starts this model ("auto" tries checkpoint+".art").
	// For a sharded model it is the artifact base path; shard i warms
	// from <base>.s<i>of<N> (gsgcn-index -shards output).
	Artifact string `json:"artifact"`
	// Dtype names the resident representation of the embedding table —
	// f64 (default), f32 or i8pq. Exact answers always read float64
	// rows; quantized tables only steer the ANN candidate scan.
	Dtype string `json:"dtype"`
	// Mmap serves the float64 table straight from the memory-mapped
	// artifact instead of decoding it onto the heap (requires Artifact).
	Mmap    bool `json:"mmap"`
	ANN     bool `json:"ann"`
	ANNM    int  `json:"ann_m"`
	ANNEf   int  `json:"ann_ef"`
	Workers int  `json:"workers"`
	Block   int  `json:"block"`
	Batch   int  `json:"batch"`
	// Shards > 1 serves the model as a sharded fleet behind a
	// scatter-gather router; ShardSeed keys the deterministic
	// vertex-shard assignment and must match the artifact build.
	Shards    int    `json:"shards"`
	ShardSeed uint64 `json:"shard_seed"`
	// DeadlineMS bounds each query's total wait (queue + answer) in
	// milliseconds (fractional for sub-millisecond bounds); expired
	// queries answer 504. 0 = no deadline.
	DeadlineMS float64 `json:"deadline_ms"`
	// ShedQueue is the micro-batch queue-depth high-water mark above
	// which new queries are shed with 429. 0 = never shed.
	ShedQueue int `json:"shed_queue"`
	// QPS is this model's admission quota in queries/sec (token
	// bucket, one second of burst). 0 = unlimited.
	QPS float64 `json:"qps"`
}

// fleetConfig is the -config file schema.
type fleetConfig struct {
	Default string      `json:"default"`
	Models  []modelSpec `json:"models"`
}

// parseFleetConfig decodes and validates a -config document. Each
// model is decoded over a copy of the global-flag defaults, so
// settings absent from the JSON inherit the matching command-line
// flags — the same semantics as -model. Unknown fields are rejected
// so a typoed setting fails loudly instead of silently serving
// defaults.
func parseFleetConfig(raw []byte, defaults modelSpec) (fleetConfig, error) {
	var doc struct {
		Default string            `json:"default"`
		Models  []json.RawMessage `json:"models"`
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fleetConfig{}, err
	}
	if len(doc.Models) == 0 {
		return fleetConfig{}, fmt.Errorf("config lists no models")
	}
	fc := fleetConfig{Default: doc.Default}
	for _, rm := range doc.Models {
		spec := defaults
		d := json.NewDecoder(strings.NewReader(string(rm)))
		d.DisallowUnknownFields()
		if err := d.Decode(&spec); err != nil {
			return fleetConfig{}, err
		}
		if spec.Name == "" || spec.Checkpoint == "" {
			return fleetConfig{}, fmt.Errorf("config model %s needs both name and checkpoint", rm)
		}
		fc.Models = append(fc.Models, spec)
	}
	return fc, nil
}

// modelFlags collects repeated -model values.
type modelFlags []string

func (m *modelFlags) String() string     { return strings.Join(*m, " ") }
func (m *modelFlags) Set(v string) error { *m = append(*m, v); return nil }

// parseModelFlag parses "name=ckpt[,key=value…]" into a spec seeded
// from the global-flag defaults.
func parseModelFlag(v string, def modelSpec) (modelSpec, error) {
	spec := def
	parts := strings.Split(v, ",")
	name, ckpt, ok := strings.Cut(parts[0], "=")
	if !ok || name == "" || ckpt == "" {
		return spec, fmt.Errorf("-model %q: want name=checkpoint[,key=value…]", v)
	}
	spec.Name, spec.Checkpoint = name, ckpt
	for _, p := range parts[1:] {
		key, val, ok := strings.Cut(p, "=")
		if !ok {
			// A bare "ann" reads naturally as ann=true.
			if p == "ann" {
				spec.ANN = true
				continue
			}
			return spec, fmt.Errorf("-model %q: bad setting %q (want key=value)", v, p)
		}
		var err error
		switch key {
		case "data":
			spec.Data = val
		case "artifact":
			spec.Artifact = val
		case "dtype":
			_, err = gsgcn.ParseServingDtype(val)
			spec.Dtype = val
		case "mmap":
			spec.Mmap, err = strconv.ParseBool(val)
		case "ann":
			spec.ANN, err = strconv.ParseBool(val)
		case "ann-m":
			spec.ANNM, err = strconv.Atoi(val)
		case "ann-ef":
			spec.ANNEf, err = strconv.Atoi(val)
		case "workers":
			spec.Workers, err = strconv.Atoi(val)
		case "block":
			spec.Block, err = strconv.Atoi(val)
		case "batch":
			spec.Batch, err = strconv.Atoi(val)
		case "shards":
			spec.Shards, err = strconv.Atoi(val)
		case "shard-seed":
			spec.ShardSeed, err = strconv.ParseUint(val, 10, 64)
		case "deadline":
			var d time.Duration
			if d, err = time.ParseDuration(val); err == nil {
				spec.DeadlineMS = float64(d) / float64(time.Millisecond)
			}
		case "shed-queue":
			spec.ShedQueue, err = strconv.Atoi(val)
		case "qps":
			spec.QPS, err = strconv.ParseFloat(val, 64)
		default:
			return spec, fmt.Errorf("-model %q: unknown setting %q", v, key)
		}
		if err != nil {
			return spec, fmt.Errorf("-model %q: bad %s value %q: %v", v, key, val, err)
		}
	}
	return spec, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsgcn-serve:", err)
	os.Exit(1)
}

func main() {
	var models modelFlags
	var (
		load    = flag.String("load", "", "model checkpoint to serve (single-model mode)")
		config  = flag.String("config", "", "JSON fleet config file (see package docs); overrides -load and -model")
		defName = flag.String("default", "", "model answering the unprefixed legacy routes (default: the first model)")
		data    = flag.String("data", "", "serving graph in .gsg format (overrides -dataset)")
		dataset = flag.String("dataset", "ppi", "preset to regenerate when -data is unset: ppi|reddit|yelp|amazon")
		scale   = flag.Float64("scale", 0.05, "preset scale relative to Table I")
		seed    = flag.Uint64("seed", 1, "preset generation seed (must match training)")
		addr    = flag.String("addr", ":8080", "listen address")
		wireAt  = flag.String("wire-addr", "", "also serve the persistent binary wire transport on this TCP address (e.g. :9001); off when empty — see docs/API.md for the framing")
		workers = flag.Int("workers", 0, "goroutines for embedding computation and top-K scans (0 = GOMAXPROCS)")
		block   = flag.Int("block", 0, "vertices per streamed inference block (0 = 256)")
		batch   = flag.Int("batch", 0, "max queries coalesced per micro-batch (0 = 64, 1 = off)")
		annOn   = flag.Bool("ann", false, "answer /topk with the approximate HNSW index by default (per-request mode=exact|ann overrides)")
		annM    = flag.Int("ann-m", 0, "HNSW connectivity: links per vertex per layer, 2x on the base layer (0 = 16)")
		annEf   = flag.Int("ann-ef", 0, "default HNSW query beam width; higher = better recall, slower (0 = 64)")
		art     = flag.String("artifact", "", "snapshot artifact (gsgcn-index output) to warm-start from; \"auto\" tries <load>.art; mismatch or absence falls back to the full compute")
		dtype   = flag.String("dtype", "", "resident representation of the embedding table: f64|f32|i8pq (default f64; exact answers always read f64 rows)")
		useMmap = flag.Bool("mmap", false, "serve the float64 table from the memory-mapped artifact instead of decoding it onto the heap (needs -artifact)")
		shards  = flag.Int("shards", 0, "serve each model as N vertex shards behind a scatter-gather router (0 or 1 = unsharded)")
		shSeed  = flag.Uint64("shard-seed", 0, "seed keying the deterministic vertex-shard assignment (must match gsgcn-index -shard-seed)")
		dline   = flag.Duration("deadline", 0, "per-query deadline covering queue wait and answer; expired queries get 504 (0 = none)")
		shedQ   = flag.Int("shed-queue", 0, "micro-batch queue-depth high-water mark; deeper queues shed new queries with 429 (0 = never)")
		qps     = flag.Float64("qps", 0, "per-model admission quota in queries/sec, token bucket with one second of burst (0 = unlimited)")
		pprofAt = flag.String("pprof-addr", "", "serve net/http/pprof on this extra address (e.g. 127.0.0.1:6060); off when empty, and never on the serving listener")
		noLog   = flag.Bool("no-access-log", false, "disable the per-request JSON access log (lifecycle events still log)")
	)
	flag.Var(&models, "model", "serve an extra model: name=checkpoint[,data=…][,artifact=…][,dtype=…][,mmap=…][,ann=…][,ann-m=…][,ann-ef=…][,workers=…][,block=…][,batch=…][,shards=…][,shard-seed=…][,deadline=…][,shed-queue=…][,qps=…] (repeatable; first is the default model)")
	flag.Parse()

	// Global flags double as the per-model defaults.
	defaults := modelSpec{
		Artifact: *art, Dtype: *dtype, Mmap: *useMmap,
		ANN: *annOn, ANNM: *annM, ANNEf: *annEf,
		Workers: *workers, Block: *block, Batch: *batch,
		Shards: *shards, ShardSeed: *shSeed,
		DeadlineMS: float64(*dline) / float64(time.Millisecond), ShedQueue: *shedQ, QPS: *qps,
	}

	var specs []modelSpec
	wantDefault := *defName
	switch {
	case *config != "":
		raw, err := os.ReadFile(*config)
		if err != nil {
			fatal(err)
		}
		fc, err := parseFleetConfig(raw, defaults)
		if err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *config, err))
		}
		specs = fc.Models
		if wantDefault == "" {
			wantDefault = fc.Default
		}
	case len(models) > 0:
		for _, v := range models {
			spec, err := parseModelFlag(v, defaults)
			if err != nil {
				fatal(err)
			}
			specs = append(specs, spec)
		}
	default:
		if *load == "" {
			fmt.Fprintln(os.Stderr, "gsgcn-serve: -load, -model or -config is required")
			os.Exit(2)
		}
		spec := defaults
		spec.Name, spec.Checkpoint = "default", *load
		specs = []modelSpec{spec}
	}

	// Datasets: the process-wide one (global flags) is loaded lazily;
	// per-model data files are read once per distinct path. The
	// registry additionally dedupes by content fingerprint.
	dsCache := make(map[string]*gsgcn.Dataset)
	datasetFor := func(path string) (*gsgcn.Dataset, error) {
		if path == "" {
			// Normalize so an explicit data=g.gsg and the global -data
			// g.gsg hit the same cache entry ("" keys the preset case).
			path = *data
		}
		if ds, ok := dsCache[path]; ok {
			return ds, nil
		}
		var (
			ds  *gsgcn.Dataset
			err error
		)
		if path != "" {
			ds, err = gsgcn.ReadDataset(path)
		} else {
			ds, err = gsgcn.LoadPreset(*dataset, *scale, *seed)
		}
		if err != nil {
			return nil, err
		}
		logger.Event("dataset",
			gsgcn.Log("name", ds.Name),
			gsgcn.Log("vertices", ds.G.NumVertices()),
			gsgcn.Log("edges", ds.G.NumEdges()),
			gsgcn.Log("attrs", ds.FeatureDim()),
			gsgcn.Log("classes", ds.NumClasses))
		dsCache[path] = ds
		return ds, nil
	}

	reg := gsgcn.NewModelRegistry()
	defer reg.Close()
	if !*noLog {
		// Before the Add loop: models capture the access logger at
		// registration time.
		reg.SetAccessLog(logger)
	}
	for _, spec := range specs {
		if spec.Artifact == "auto" {
			spec.Artifact = spec.Checkpoint + ".art"
		}
		ds, err := datasetFor(spec.Data)
		if err != nil {
			fatal(err)
		}
		dt, err := gsgcn.ParseServingDtype(spec.Dtype)
		if err != nil {
			fatal(fmt.Errorf("model %q: %w", spec.Name, err))
		}
		if spec.Mmap && spec.Artifact == "" {
			fatal(fmt.Errorf("model %q: mmap needs an artifact to map", spec.Name))
		}
		opts := gsgcn.ServeOptions{
			Workers: spec.Workers, BlockSize: spec.Block, MaxBatch: spec.Batch,
			ANN: spec.ANN, ANNM: spec.ANNM, ANNEf: spec.ANNEf,
			ArtifactPath: spec.Artifact, Dtype: dt, Mmap: spec.Mmap,
			Deadline:    time.Duration(spec.DeadlineMS * float64(time.Millisecond)),
			ShedQueueHW: spec.ShedQueue,
			QPSLimit:    spec.QPS,
		}
		var (
			ms  gsgcn.ModelServer
			eng *gsgcn.InferenceEngine
		)
		if spec.Shards > 1 {
			rt, err := reg.AddSharded(spec.Name, ds, opts, spec.Shards, spec.ShardSeed)
			if err != nil {
				fatal(err)
			}
			ms, eng = rt, rt.Engine(0)
		} else {
			srv, err := reg.Add(spec.Name, ds, opts)
			if err != nil {
				fatal(err)
			}
			ms, eng = srv, srv.Engine()
		}
		start := time.Now()
		if _, err := ms.Load(spec.Checkpoint); err != nil {
			fatal(fmt.Errorf("model %q: %w", spec.Name, err))
		}
		st, _ := eng.Snapshot()
		how := "computed"
		if st.WarmStart {
			how = "warm-started from " + spec.Artifact
		} else if st.WarmNote != "" {
			logger.Event("artifact_fallback",
				gsgcn.Log("model", spec.Name),
				gsgcn.Log("artifact", spec.Artifact),
				gsgcn.Log("reason", st.WarmNote))
		}
		logger.Event("model_loaded",
			gsgcn.Log("model", spec.Name),
			gsgcn.Log("checkpoint", spec.Checkpoint),
			gsgcn.Log("model_version", st.ModelVersion),
			gsgcn.Log("dim", st.Dim()),
			gsgcn.Log("shards", spec.Shards),
			gsgcn.Log("snapshot", how),
			gsgcn.Log("dur_ms", time.Since(start)))
	}
	if wantDefault != "" {
		if err := reg.SetDefault(wantDefault); err != nil {
			fatal(err)
		}
	}
	logger.Event("default_model", gsgcn.Log("model", reg.Default()))

	if *pprofAt != "" {
		go servePprof(*pprofAt)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: reg}

	// The wire listener rides the same registry: frames run through
	// the same admission, deadline and batching as HTTP requests.
	var wireLn net.Listener
	if *wireAt != "" {
		var err error
		if wireLn, err = net.Listen("tcp", *wireAt); err != nil {
			fatal(err)
		}
		go func() {
			if err := reg.ServeWire(wireLn); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Event("wire_error", gsgcn.Log("error", err.Error()))
			}
		}()
		logger.Event("wire_listening", gsgcn.Log("addr", wireLn.Addr().String()))
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	done := make(chan struct{})
	go handleSignals(sigs, httpSrv, wireLn, reg, 10*time.Second, done)

	logger.Event("listening", gsgcn.Log("addr", *addr), gsgcn.Log("models", len(specs)))
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	// ListenAndServe returns the moment Shutdown closes the listener —
	// while in-flight requests are still draining. Wait for the signal
	// handler to finish the drain and close the registry before exiting.
	<-done
}

// handleSignals is the process lifecycle loop: SIGHUP hot-reloads the
// whole fleet, SIGINT/SIGTERM drains and exits. It closes done when
// shutdown is fully sequenced.
//
// The shutdown order is load-bearing: Shutdown must finish (all
// in-flight requests drained, or the timeout expired) before
// reg.Close stops the micro-batch dispatchers — closing them first
// would answer still-draining requests with spurious 503s. Its error
// is logged, not dropped: a deadline expiry means requests really
// were cut off, and silence there cost us a dropped-work bug.
func handleSignals(sigs <-chan os.Signal, httpSrv *http.Server, wireLn net.Listener, reg *gsgcn.ModelRegistry, drainTimeout time.Duration, done chan<- struct{}) {
	defer close(done)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			reloadFleet(reg)
			continue
		}
		logger.Event("shutdown", gsgcn.Log("signal", sig.String()))
		// Stop accepting wire connections before the HTTP drain; wire
		// requests already dispatched keep answering until reg.Close.
		if wireLn != nil {
			wireLn.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		err := httpSrv.Shutdown(ctx)
		cancel()
		if err != nil {
			logger.Event("shutdown_error",
				gsgcn.Log("error", err.Error()),
				gsgcn.Log("note", "in-flight requests may have been dropped"))
		}
		reg.Close()
		return
	}
}

// reloadFleet hot-reloads every model and logs the aggregate outcome:
// each failure individually (that model keeps serving its previous
// snapshot untouched), then the fleet-level tally. One model's
// corrupt checkpoint never stops the others from advancing.
func reloadFleet(reg *gsgcn.ModelRegistry) {
	names := reg.Names()
	failures := reg.ReloadAll()
	for _, name := range names {
		if err, failed := failures[name]; failed {
			logger.Event("reload",
				gsgcn.Log("model", name),
				gsgcn.Log("ok", false),
				gsgcn.Log("error", err.Error()),
				gsgcn.Log("note", "still serving the previous snapshot"))
		} else {
			logger.Event("reload", gsgcn.Log("model", name), gsgcn.Log("ok", true))
		}
	}
	if len(failures) > 0 {
		logger.Event("fleet_reload",
			gsgcn.Log("failed", len(failures)),
			gsgcn.Log("models", len(names)))
	}
}

// servePprof exposes net/http/pprof on its own listener, never on the
// serving address: profiling is an operator tool, and keeping it off
// the public mux means enabling it cannot widen the serving surface.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Event("pprof", gsgcn.Log("addr", addr))
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Event("pprof_error", gsgcn.Log("error", err.Error()))
	}
}
