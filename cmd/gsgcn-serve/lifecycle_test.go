package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"gsgcn"
)

// trainCkpt trains a tiny model on ds and writes a checkpoint.
func trainCkpt(t *testing.T, ds *gsgcn.Dataset, dir string) string {
	t.Helper()
	m := gsgcn.NewModel(ds, gsgcn.Config{
		Layers: 2, Hidden: 8, Workers: 1, Seed: 17,
		FrontierM: 30, Budget: 120, PInter: 1,
	})
	tr := gsgcn.NewTrainer(ds, m)
	for i := 0; i < 2; i++ {
		tr.Step()
	}
	m.ModelVersion = uint64(tr.Steps())
	path := filepath.Join(dir, "m.ckpt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestHandleSignalsDrainsBeforeClose is the shutdown-sequencing
// regression test. The old lifecycle closed the registry concurrently
// with the HTTP drain, so requests still in flight when SIGTERM
// arrived were answered 503 from closed micro-batchers. The fixed
// sequence — Shutdown (drain) first, registry Close after — must
// answer every in-flight request 200, and only then tear the
// registry down. SIGHUP along the way must hot-reload the fleet
// without ending the lifecycle loop.
func TestHandleSignalsDrainsBeforeClose(t *testing.T) {
	ds := gsgcn.GenerateDataset(gsgcn.DatasetConfig{
		Name: "sig-test", Vertices: 200, TargetEdges: 1500,
		FeatureDim: 8, NumClasses: 3, Homophily: 0.8, NoiseStd: 0.5, Seed: 7,
	})
	ckpt := trainCkpt(t, ds, t.TempDir())
	reg := gsgcn.NewModelRegistry()
	srv, err := reg.Add("m", ds, gsgcn.ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}

	// Hold every request in the handler long enough that SIGTERM always
	// catches them mid-flight.
	hold := 150 * time.Millisecond
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(hold)
		reg.ServeHTTP(w, r)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: slow}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	sigs := make(chan os.Signal, 1)
	done := make(chan struct{})
	go handleSignals(sigs, httpSrv, nil, reg, 5*time.Second, done)

	var health struct {
		Version uint64 `json:"version"`
	}
	get := func(path string) (int, uint64) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		health.Version = 0
		_ = json.Unmarshal(body, &health)
		return resp.StatusCode, health.Version
	}
	if code, v := get("/healthz"); code != 200 || v != 1 {
		t.Fatalf("baseline healthz = %d version %d", code, v)
	}

	// SIGHUP: the fleet hot-reloads (version advances) and the
	// lifecycle loop keeps running.
	sigs <- syscall.SIGHUP
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, v := get("/healthz"); v >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP did not reload the fleet")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("SIGHUP ended the lifecycle loop")
	default:
	}

	// SIGTERM with requests in flight: every one of them must drain to
	// a 200 — none answered 503 by a prematurely closed registry.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/embed?ids=%d", base, g))
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("in-flight request during shutdown: %d %s", resp.StatusCode, body)
			}
		}(g)
	}
	time.Sleep(hold / 3) // let the requests reach the handler
	sigs <- syscall.SIGTERM
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never completed")
	}

	// Only after the drain is the registry actually closed.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/embed?ids=0", nil)
	reg.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("registry after shutdown = %d, want 503", rec.Code)
	}
}

// TestReloadFleetPartialFailure pins the SIGHUP aggregation contract
// at the process level: a fleet where one model's checkpoint is
// corrupt reloads every other model and leaves the broken one serving
// its previous snapshot.
func TestReloadFleetPartialFailure(t *testing.T) {
	ds := gsgcn.GenerateDataset(gsgcn.DatasetConfig{
		Name: "sig-test", Vertices: 200, TargetEdges: 1500,
		FeatureDim: 8, NumClasses: 3, Homophily: 0.8, NoiseStd: 0.5, Seed: 7,
	})
	dir := t.TempDir()
	ckptA := trainCkpt(t, ds, dir)
	ckptB := filepath.Join(dir, "b.ckpt")
	if err := copyFile(ckptA, ckptB); err != nil {
		t.Fatal(err)
	}
	reg := gsgcn.NewModelRegistry()
	defer reg.Close()
	srvA, err := reg.Add("a", ds, gsgcn.ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := reg.Add("b", ds, gsgcn.ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Load(ckptA); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Load(ckptB); err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(ckptB, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	reloadFleet(reg)

	stA, err := srvA.Engine().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	stB, err := srvB.Engine().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if stA.Version != 2 {
		t.Errorf("healthy model a version = %d, want 2", stA.Version)
	}
	if stB.Version != 1 {
		t.Errorf("broken model b version = %d, want 1 (previous snapshot)", stB.Version)
	}
}

func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}
