package main

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gsgcn"
	"gsgcn/pkg/client"
)

func TestClassify(t *testing.T) {
	api := func(status int) error { return &client.APIError{Status: status, Message: "x"} }
	cases := []struct {
		err  error
		want class
	}{
		{nil, clsOK},
		{api(429), clsShed},
		{api(503), clsUnavailable},
		{api(504), clsDeadline},
		{api(400), clsClient},
		{api(404), clsClient},
		{api(500), clsServer},
		{api(502), clsServer},
		{errors.New("dial refused"), clsTransport},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %s, want %s", c.err, classNames[got], classNames[c.want])
		}
	}
}

func TestPercentile(t *testing.T) {
	if p := percentile(nil, 99); p != 0 {
		t.Errorf("percentile of empty sample = %v, want 0", p)
	}
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{99.9, 100 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{1, 1 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(1..100ms, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(sorted[:1], 99.9); got != time.Millisecond {
		t.Errorf("percentile of single sample = %v, want 1ms", got)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("2:1:1")
	if err != nil || mix != [3]int{2, 1, 1} {
		t.Errorf("parseMix(2:1:1) = %v, %v", mix, err)
	}
	if _, err := parseMix("0:0:1"); err != nil {
		t.Errorf("parseMix(0:0:1) should allow zero weights: %v", err)
	}
	for _, bad := range []string{"1:2", "1:2:3:4", "a:1:1", "-1:1:1", "0:0:0", ""} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) should fail", bad)
		}
	}
}

func TestCollectorRecordsLatencyOnlyForOK(t *testing.T) {
	c := &collector{}
	c.record(clsOK, 5*time.Millisecond)
	c.record(clsShed, time.Microsecond)
	c.record(clsTransport, time.Second)
	c.record(clsOK, 7*time.Millisecond)
	if c.count[clsOK] != 2 || c.count[clsShed] != 1 || c.count[clsTransport] != 1 {
		t.Errorf("counts = %v", c.count)
	}
	if len(c.lat) != 2 {
		t.Fatalf("latency samples = %d, want 2 (only ok answers sampled)", len(c.lat))
	}
}

func TestSummaryHardFailures(t *testing.T) {
	var s summary
	s.count[clsOK] = 10
	s.count[clsShed] = 4
	s.count[clsUnavailable] = 2
	if s.hardFailures() != 0 {
		t.Errorf("sheds and degraded 503s must not count as hard failures: %d", s.hardFailures())
	}
	s.count[clsClient] = 1
	s.count[clsServer] = 2
	s.count[clsTransport] = 3
	if s.hardFailures() != 6 {
		t.Errorf("hardFailures = %d, want 6", s.hardFailures())
	}
}

func TestBenchEntryIsValidRunEntry(t *testing.T) {
	var s summary
	s.count[clsOK] = 42
	s.count[clsShed] = 3
	s.p50, s.p99, s.p999 = time.Millisecond, 2*time.Millisecond, 3*time.Millisecond
	s.qps = 100.5
	var buf strings.Builder
	benchEntry(&buf, "LoadgenMixed", s)
	var e struct {
		Go         string `json:"go"`
		Package    string `json:"package"`
		Benchmarks []struct {
			Name       string             `json:"name"`
			Iterations int                `json:"iterations"`
			NsPerOp    float64            `json:"ns_per_op"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &e); err != nil {
		t.Fatalf("benchEntry emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if e.Package != "cmd/gsgcn-loadgen" || len(e.Benchmarks) != 1 {
		t.Fatalf("entry = %+v", e)
	}
	b := e.Benchmarks[0]
	if b.Name != "LoadgenMixed" || b.Iterations != 42 || b.NsPerOp != 1e6 {
		t.Errorf("benchmark = %+v", b)
	}
	for _, key := range []string{"p99_ns", "p999_ns", "ok_per_sec", "ok", "shed", "transport"} {
		if _, ok := b.Metrics[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, b.Metrics)
		}
	}
}

func TestReportListsOnlyNonZeroClasses(t *testing.T) {
	var s summary
	s.count[clsOK] = 9
	s.count[clsShed] = 1
	s.elapsed = time.Second
	var buf strings.Builder
	report(&buf, config{rate: 50, transport: "json", models: []string{""}}, s)
	out := buf.String()
	for _, want := range []string{"ok", "shed", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "transport 0") {
		t.Errorf("report lists a zero class:\n%s", out)
	}
}

// loadgenRegistry stands up a real single-model registry serving both
// the HTTP surface and the framed TCP listener, trained just enough
// to answer queries. Returns the HTTP base URL and the TCP address.
func loadgenRegistry(t *testing.T) (string, string) {
	t.Helper()
	ds := gsgcn.GenerateDataset(gsgcn.DatasetConfig{
		Name: "loadgen-test", Vertices: 200, TargetEdges: 1500,
		FeatureDim: 8, NumClasses: 3, Homophily: 0.8, NoiseStd: 0.5, Seed: 7,
	})
	m := gsgcn.NewModel(ds, gsgcn.Config{
		Layers: 2, Hidden: 8, Workers: 1, Seed: 17,
		FrontierM: 30, Budget: 120, PInter: 1,
	})
	tr := gsgcn.NewTrainer(ds, m)
	tr.Step()
	m.ModelVersion = uint64(tr.Steps())
	ckpt := filepath.Join(t.TempDir(), "m.ckpt")
	if err := m.SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}
	reg := gsgcn.NewModelRegistry()
	srv, err := reg.Add("m", ds, gsgcn.ServeOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go reg.ServeWire(ln)
	t.Cleanup(func() {
		ts.Close()
		ln.Close()
		reg.Close()
	})
	return ts.URL, ln.Addr().String()
}

// TestRunAgainstRegistry drives the full open-loop generator against a
// real serving registry over every transport, reloads included: every
// request must come back 200 and the percentiles must be populated.
func TestRunAgainstRegistry(t *testing.T) {
	httpURL, tcpAddr := loadgenRegistry(t)
	for _, transport := range []string{"json", "wire", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			s, err := run(config{
				addr: httpURL, wireAddr: tcpAddr, transport: transport,
				rate: 200, duration: 500 * time.Millisecond,
				timeout: 5 * time.Second, mix: [3]int{2, 1, 1}, models: []string{""},
				seed: 1, reloadEvery: 150 * time.Millisecond, churnShard: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if s.count[clsOK] == 0 {
				t.Fatalf("no request succeeded: %v", s.count)
			}
			if bad := s.hardFailures(); bad != 0 {
				t.Fatalf("%d hard failures against a healthy registry: %v", bad, s.count)
			}
			if s.p50 <= 0 || s.p99 < s.p50 || s.p999 < s.p99 {
				t.Errorf("percentiles not ordered: p50=%v p99=%v p999=%v", s.p50, s.p99, s.p999)
			}
			if s.qps <= 0 {
				t.Errorf("qps = %v", s.qps)
			}
		})
	}
}

// TestRunChurnFlipsShard covers the churn goroutine against a fake
// fleet: stop/start posts must alternate and the final flip must leave
// the shard started.
func TestRunChurnFlipsShard(t *testing.T) {
	var mu sync.Mutex
	var flips []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/healthz":
			w.Write([]byte(`{"vertices": 50}`))
		case strings.HasPrefix(r.URL.Path, "/v1/shards/2/"):
			mu.Lock()
			flips = append(flips, strings.TrimPrefix(r.URL.Path, "/v1/shards/2/"))
			mu.Unlock()
			w.Write([]byte(`{}`))
		default:
			w.Write([]byte(`{}`))
		}
	}))
	defer ts.Close()
	s, err := run(config{
		addr: ts.URL, transport: "json", rate: 50, duration: 350 * time.Millisecond,
		timeout: time.Second, mix: [3]int{1, 1, 1}, models: []string{""},
		seed: 2, churnShard: 2, churnEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.count[clsOK] == 0 {
		t.Fatalf("no request succeeded: %v", s.count)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flips) < 2 {
		t.Fatalf("churn flips = %v, want at least one stop plus the final start", flips)
	}
	if flips[0] != "stop" {
		t.Errorf("first flip = %q, want stop", flips[0])
	}
	if flips[len(flips)-1] != "start" {
		t.Errorf("last flip = %q, want start (fleet must be left healthy)", flips[len(flips)-1])
	}
}

func TestRunRejectsUndiscoverableTargets(t *testing.T) {
	base := config{
		transport: "json", rate: 10, duration: 50 * time.Millisecond, timeout: time.Second,
		mix: [3]int{1, 1, 1}, models: []string{""},
	}
	cfg := base
	cfg.addr = "http://127.0.0.1:1"
	if _, err := run(cfg); err == nil {
		t.Error("unreachable target should fail before generating load")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"vertices": 1}`))
	}))
	defer ts.Close()
	cfg = base
	cfg.addr = ts.URL
	if _, err := run(cfg); err == nil {
		t.Error("a 1-vertex model cannot serve topk; run should refuse it")
	}
	cfg = base
	cfg.transport = "tcp"
	cfg.addr = ts.URL
	if _, err := run(cfg); err == nil {
		t.Error("-transport tcp without -wire-addr should be rejected")
	}
}
