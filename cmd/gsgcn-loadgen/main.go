// Command gsgcn-loadgen replays an open-loop mixed workload against a
// running gsgcn-serve process and reports latency percentiles,
// throughput and error classes. Open-loop means arrivals are paced by
// -rate alone — a slow server does not slow the generator down, so
// queueing and shedding behavior show up in the numbers instead of
// being hidden by back-pressure on the client.
//
// Requests are issued through pkg/client, so the generator exercises
// exactly the SDK code paths, over any of the three transports
// (-transport): "json" (HTTP), "wire" (HTTP negotiated to the binary
// encoding) or "tcp" (the persistent framed transport on -wire-addr).
//
// The mix interleaves embed, predict and topk queries (weights from
// -mix) across one or more models (-models, empty = the default
// model), and can stir in the two operational events a production
// fleet sees under load: periodic hot reloads (-reload-every) and
// shard kill/restart cycles (-churn-shard/-churn-every). The
// vertex-id space is discovered from the health endpoint.
//
// Results go to stderr as a human-readable summary; -bench emits a
// benchmerge run entry on stdout so a run can be appended to the
// BENCH_serve.json trajectory:
//
//	gsgcn-loadgen -addr http://127.0.0.1:8080 -rate 200 -duration 5s \
//	    -bench LoadgenMixed | go run ./scripts/benchmerge \
//	    -out BENCH_serve.json \
//	    -commit "$(git rev-parse --short HEAD)-loadgen" -date "$(date -u +%F)"
//
// Error classes: ok (200), shed (429), unavailable (503, includes
// requests owned by a killed shard — expected during churn), deadline
// (504), client_error (other 4xx), server_error (other 5xx) and
// transport (the request never completed). -fail-on-errors exits
// nonzero when any client_error, server_error or transport occurred,
// or when nothing succeeded at all — shed and unavailable are the
// overload-protection layer doing its job, not failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gsgcn/pkg/client"
)

// class buckets every request outcome; see the package comment for
// the HTTP-status mapping.
type class int

const (
	clsOK class = iota
	clsShed
	clsUnavailable
	clsDeadline
	clsClient
	clsServer
	clsTransport
	numClasses
)

var classNames = [numClasses]string{
	"ok", "shed", "unavailable", "deadline",
	"client_error", "server_error", "transport",
}

// classify buckets one SDK outcome. Server rejections arrive as
// *client.APIError carrying the HTTP status on every transport, so
// the classification is transport-independent; anything else that
// failed is a transport error.
func classify(err error) class {
	if err == nil {
		return clsOK
	}
	var ae *client.APIError
	if !errors.As(err, &ae) {
		return clsTransport
	}
	switch {
	case ae.Status == http.StatusTooManyRequests:
		return clsShed
	case ae.Status == http.StatusServiceUnavailable:
		return clsUnavailable
	case ae.Status == http.StatusGatewayTimeout:
		return clsDeadline
	case ae.Status >= 400 && ae.Status < 500:
		return clsClient
	}
	return clsServer
}

// collector accumulates outcomes from the request goroutines. Only
// successful answers contribute latency samples: a shed request's
// sub-millisecond 429 would otherwise drag the percentiles down and
// make an overloaded run look fast.
type collector struct {
	mu    sync.Mutex
	lat   []time.Duration
	count [numClasses]int
}

func (c *collector) record(cl class, d time.Duration) {
	c.mu.Lock()
	c.count[cl]++
	if cl == clsOK {
		c.lat = append(c.lat, d)
	}
	c.mu.Unlock()
}

// percentile returns the pth percentile (0 < p <= 100) of the sorted
// sample by nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// parseMix parses "embed:predict:topk" integer weights.
func parseMix(s string) ([3]int, error) {
	var mix [3]int
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return mix, fmt.Errorf("-mix %q: want embed:predict:topk weights", s)
	}
	total := 0
	for i, p := range parts {
		w, err := strconv.Atoi(p)
		if err != nil || w < 0 {
			return mix, fmt.Errorf("-mix %q: bad weight %q", s, p)
		}
		mix[i] = w
		total += w
	}
	if total == 0 {
		return mix, fmt.Errorf("-mix %q: all weights are zero", s)
	}
	return mix, nil
}

// config is the parsed flag set; run is pure with respect to it.
type config struct {
	addr        string // HTTP base URL (queries on json/wire, control plane always)
	wireAddr    string // host:port of the framed TCP listener (tcp transport)
	transport   string // json | wire | tcp
	rate        float64
	duration    time.Duration
	timeout     time.Duration
	mix         [3]int
	models      []string // model names; "" targets the default model
	seed        int64
	reloadEvery time.Duration
	churnShard  int // -1 = off
	churnEvery  time.Duration
}

// summary is one run's aggregate outcome.
type summary struct {
	elapsed        time.Duration
	p50, p99, p999 time.Duration
	qps            float64 // successful answers per second
	count          [numClasses]int
}

// hardFailures counts the outcomes -fail-on-errors treats as bugs:
// everything except answers, sheds and degraded 503s.
func (s summary) hardFailures() int {
	return s.count[clsClient] + s.count[clsServer] + s.count[clsTransport]
}

// run generates the load and collects the summary. The arrival clock
// is open-loop: one request per tick, each on its own goroutine, so a
// slow server piles up concurrency instead of slowing the clock. The
// rng is only touched on the ticker goroutine — every query is fully
// decided (model, op, ids) before it is handed to a worker — keeping
// the workload sequence deterministic for a fixed seed regardless of
// response timing or transport.
func run(cfg config) (summary, error) {
	ctx := context.Background()
	queryAddr := cfg.addr
	if cfg.transport == "tcp" {
		if cfg.wireAddr == "" {
			return summary{}, fmt.Errorf("-transport tcp needs -wire-addr")
		}
		queryAddr = cfg.wireAddr
	}
	clients := make([]client.Client, len(cfg.models))
	ops := make([]*client.Ops, len(cfg.models))
	vertices := make([]int, len(cfg.models))
	opsHTTP := &http.Client{Timeout: cfg.timeout}
	for i, m := range cfg.models {
		c, err := client.New(client.Config{
			Transport: cfg.transport, Addr: queryAddr, Model: m, Timeout: cfg.timeout,
		})
		if err != nil {
			return summary{}, err
		}
		defer c.Close()
		clients[i] = c
		ops[i] = client.NewOps(cfg.addr, m, opsHTTP)
		h, err := ops[i].Health(ctx)
		if err != nil {
			return summary{}, fmt.Errorf("model %q: %w", m, err)
		}
		if h.Vertices < 2 {
			return summary{}, fmt.Errorf("model %q serves %d vertices; need at least 2", m, h.Vertices)
		}
		vertices[i] = h.Vertices
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	col := &collector{}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	if cfg.reloadEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.reloadEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					for _, o := range ops {
						o.Reload(ctx)
					}
				}
			}
		}()
	}
	if cfg.churnShard >= 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.churnEvery)
			defer t.Stop()
			stopNext := true
			for {
				select {
				case <-stop:
					// Leave the fleet healthy however the cycle ended.
					for _, o := range ops {
						o.StartShard(ctx, cfg.churnShard)
					}
					return
				case <-t.C:
					for _, o := range ops {
						if stopNext {
							o.StopShard(ctx, cfg.churnShard)
						} else {
							o.StartShard(ctx, cfg.churnShard)
						}
					}
					stopNext = !stopNext
				}
			}
		}()
	}

	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	start := time.Now()
	tick := time.NewTicker(interval)
	for time.Since(start) < cfg.duration {
		<-tick.C
		mi := rng.Intn(len(cfg.models))
		c, total := clients[mi], vertices[mi]
		w := rng.Intn(cfg.mix[0] + cfg.mix[1] + cfg.mix[2])
		var query func() error
		switch {
		case w < cfg.mix[0]:
			ids := make([]int, 1+rng.Intn(3))
			for i := range ids {
				ids[i] = rng.Intn(total)
			}
			query = func() error { _, err := c.Embed(ctx, ids); return err }
		case w < cfg.mix[0]+cfg.mix[1]:
			ids := []int{rng.Intn(total)}
			query = func() error { _, err := c.Predict(ctx, ids); return err }
		default:
			k := 1 + rng.Intn(5)
			if k > total-1 {
				k = total - 1
			}
			q := client.TopKQuery{ID: rng.Intn(total), K: k}
			query = func() error { _, err := c.TopK(ctx, q); return err }
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			err := query()
			col.record(classify(err), time.Since(t0))
		}()
	}
	tick.Stop()
	close(stop)
	wg.Wait()

	col.mu.Lock()
	lat, count := col.lat, col.count
	col.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	s := summary{
		elapsed: time.Since(start),
		p50:     percentile(lat, 50),
		p99:     percentile(lat, 99),
		p999:    percentile(lat, 99.9),
		count:   count,
	}
	s.qps = float64(count[clsOK]) / s.elapsed.Seconds()
	return s, nil
}

// benchEntry writes the run as a benchmerge run entry (the shape
// bench-json.sh emits): p50 as ns/op, the rest of the distribution
// and the error classes as named metrics.
func benchEntry(w io.Writer, name string, s summary) {
	metrics := fmt.Sprintf(`"p99_ns": %d, "p999_ns": %d, "ok_per_sec": %.1f`,
		s.p99.Nanoseconds(), s.p999.Nanoseconds(), s.qps)
	for cl := clsOK; cl < numClasses; cl++ {
		metrics += fmt.Sprintf(`, "%s": %d`, classNames[cl], s.count[cl])
	}
	fmt.Fprintf(w, `{"go": %q, "package": "cmd/gsgcn-loadgen", "benchmarks": [{"name": %q, "iterations": %d, "ns_per_op": %d, "metrics": {%s}}]}`+"\n",
		runtime.Version(), name, s.count[clsOK], s.p50.Nanoseconds(), metrics)
}

// report writes the human-readable summary.
func report(w io.Writer, cfg config, s summary) {
	fmt.Fprintf(w, "gsgcn-loadgen: %v at %.0f req/s over %d model(s), transport %s\n",
		s.elapsed.Round(time.Millisecond), cfg.rate, len(cfg.models), cfg.transport)
	fmt.Fprintf(w, "  latency p50=%v p99=%v p999=%v (ok answers only)\n", s.p50, s.p99, s.p999)
	fmt.Fprintf(w, "  throughput %.1f ok/s\n", s.qps)
	for cl := clsOK; cl < numClasses; cl++ {
		if s.count[cl] > 0 {
			fmt.Fprintf(w, "  %-12s %d\n", classNames[cl], s.count[cl])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsgcn-loadgen:", err)
	os.Exit(1)
}

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "base URL of the gsgcn-serve process")
		wireAddr  = flag.String("wire-addr", "", "host:port of the server's framed TCP listener (required by -transport tcp)")
		transport = flag.String("transport", "json", "query transport: json, wire (negotiated binary over HTTP) or tcp (persistent framed connection)")
		rate      = flag.Float64("rate", 100, "open-loop arrival rate in requests/sec")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-request client timeout (counts as transport on expiry)")
		mixFlag   = flag.String("mix", "2:1:1", "embed:predict:topk weights")
		models    = flag.String("models", "", "comma-separated model names to spread load over (empty = the default model)")
		seed      = flag.Int64("seed", 1, "workload RNG seed (id choices and endpoint mix)")
		reload    = flag.Duration("reload-every", 0, "hot-reload every model at this interval mid-traffic (0 = off)")
		churn     = flag.Int("churn-shard", -1, "shard index to repeatedly stop and restart mid-traffic (-1 = off)")
		churnDur  = flag.Duration("churn-every", time.Second, "interval between shard stop/start flips when -churn-shard is set")
		bench     = flag.String("bench", "", "emit a benchmerge run entry on stdout naming the benchmark (empty = off)")
		failErrs  = flag.Bool("fail-on-errors", false, "exit 1 when any client_error/server_error/transport occurred, or nothing succeeded")
	)
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}
	names := []string{""}
	if *models != "" {
		names = strings.Split(*models, ",")
	}
	cfg := config{
		addr: *addr, wireAddr: *wireAddr, transport: *transport,
		rate: *rate, duration: *duration, timeout: *timeout,
		mix: mix, models: names, seed: *seed,
		reloadEvery: *reload, churnShard: *churn, churnEvery: *churnDur,
	}
	s, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	report(os.Stderr, cfg, s)
	if *bench != "" {
		benchEntry(os.Stdout, *bench, s)
	}
	if *failErrs {
		if bad := s.hardFailures(); bad > 0 {
			fatal(fmt.Errorf("%d hard failures (client_error=%d server_error=%d transport=%d)",
				bad, s.count[clsClient], s.count[clsServer], s.count[clsTransport]))
		}
		if s.count[clsOK] == 0 {
			fatal(fmt.Errorf("no request succeeded"))
		}
	}
}
