package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"gsgcn"
	"gsgcn/internal/serve"
	"gsgcn/pkg/client"
)

func TestParseIDs(t *testing.T) {
	ids, err := parseIDs("0,7,42")
	if err != nil || len(ids) != 3 || ids[0] != 0 || ids[1] != 7 || ids[2] != 42 {
		t.Errorf("parseIDs(0,7,42) = %v, %v", ids, err)
	}
	for _, bad := range []string{"", "a", "1,,2", "1;2"} {
		if _, err := parseIDs(bad); err == nil {
			t.Errorf("parseIDs(%q) should fail", bad)
		}
	}
}

func TestOutcomeFlattensAPIErrors(t *testing.T) {
	res := &serve.EmbedResult{Dim: 4}
	if got, err := outcome(res, nil); err != nil || got != any(res) {
		t.Errorf("outcome(res, nil) = %v, %v", got, err)
	}
	ae := &client.APIError{Status: 400, Message: "bad"}
	got, err := outcome(nil, ae)
	if err != nil || got != any(*ae) {
		t.Errorf("outcome(nil, APIError) = %v, %v", got, err)
	}
	if _, err := outcome(nil, errors.New("dial refused")); err == nil {
		t.Error("transport errors must stay fatal, not become outcomes")
	}
}

func TestEqualOutcomePinsFloatBits(t *testing.T) {
	a := &serve.EmbedResult{Vectors: [][]float64{{0}}}
	b := &serve.EmbedResult{Vectors: [][]float64{{0}}}
	if !equalOutcome(a, b) {
		t.Error("identical results must compare equal")
	}
	b.Vectors[0][0] = 1
	if equalOutcome(a, b) {
		t.Error("different vectors must compare unequal")
	}
	if !equalOutcome(client.APIError{Status: 404}, client.APIError{Status: 404}) {
		t.Error("identical rejections must compare equal")
	}
	if equalOutcome(client.APIError{Status: 404}, client.APIError{Status: 400}) {
		t.Error("different rejections must compare unequal")
	}
}

// probeFleet serves one trained model over HTTP and the wire listener.
func probeFleet(t *testing.T) (string, string) {
	t.Helper()
	ds := gsgcn.GenerateDataset(gsgcn.DatasetConfig{
		Name: "probe-test", Vertices: 150, TargetEdges: 1100,
		FeatureDim: 8, NumClasses: 3, Homophily: 0.8, NoiseStd: 0.5, Seed: 5,
	})
	m := gsgcn.NewModel(ds, gsgcn.Config{
		Layers: 2, Hidden: 8, Workers: 1, Seed: 13,
		FrontierM: 30, Budget: 120, PInter: 1,
	})
	tr := gsgcn.NewTrainer(ds, m)
	tr.Step()
	m.ModelVersion = uint64(tr.Steps())
	ckpt := filepath.Join(t.TempDir(), "m.ckpt")
	if err := m.SaveFile(ckpt); err != nil {
		t.Fatal(err)
	}
	reg := gsgcn.NewModelRegistry()
	srv, err := reg.Add("m", ds, gsgcn.ServeOptions{Workers: 1, ANN: true, ANNEf: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go reg.ServeWire(ln)
	t.Cleanup(func() {
		ts.Close()
		ln.Close()
		reg.Close()
	})
	return ts.URL, ln.Addr().String()
}

// TestProbeChecksAgainstFleet runs the probe's own check functions —
// transport equivalence and the TCP reload storm — against a real
// fleet, exactly as the smoke suite invokes them.
func TestProbeChecksAgainstFleet(t *testing.T) {
	httpURL, tcpAddr := probeFleet(t)
	ctx := context.Background()
	cs := make(map[string]client.Client)
	for tr, addr := range map[string]string{"json": httpURL, "wire": httpURL, "tcp": tcpAddr} {
		c, err := client.New(client.Config{Transport: tr, Addr: addr, Model: "m", Timeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cs[tr] = c
	}
	if err := checkEquivalence(ctx, cs, []int{0, 1, 2}, client.TopKQuery{ID: 0, K: 3}); err != nil {
		t.Fatal(err)
	}
	ops := client.NewOps(httpURL, "m", http.DefaultClient)
	if err := reloadStorm(ctx, cs["tcp"], ops, []int{0, 1}, 3); err != nil {
		t.Fatal(err)
	}
}
