// Command gsgcn-probe checks the cross-transport contract of a live
// gsgcn-serve process: the same queries are issued over JSON HTTP,
// binary-negotiated HTTP and (when -wire-addr is given) the
// persistent framed TCP transport, and every answer must decode to
// identical results — float64s bit for bit — with identical error
// envelopes on rejections. It is the smoke suite's transport gate,
// built on pkg/client so the probe exercises exactly the SDK paths a
// real consumer would.
//
// With -reload-storm N the probe additionally holds one TCP
// connection open across N back-to-back hot reloads, interleaving
// queries: the connection must survive every swap, answers must keep
// coming, and the snapshot version must advance.
//
//	gsgcn-probe -addr http://127.0.0.1:8080 -wire-addr 127.0.0.1:9001 \
//	    -ids 0,1,2 -topk-id 0 -topk-k 3 -reload-storm 5
//
// Exit status 0 means every check passed; any mismatch or transport
// failure reports to stderr and exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"reflect"
	"strconv"
	"strings"
	"time"

	"gsgcn/internal/serve"
	"gsgcn/pkg/client"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsgcn-probe:", err)
	os.Exit(1)
}

// parseIDs parses the -ids flag.
func parseIDs(s string) ([]int, error) {
	var ids []int
	for _, tok := range strings.Split(s, ",") {
		id, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("-ids %q: bad id %q", s, tok)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// outcome flattens a result or API rejection for comparison; other
// errors are fatal (the probe targets a healthy server).
func outcome(res any, err error) (any, error) {
	if err == nil {
		return res, nil
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		return *ae, nil
	}
	return nil, err
}

// bitsOf canonicalizes float64 rows to their IEEE-754 bits so the
// comparison cannot be fooled by -0 == 0.
func bitsOf(rows [][]float64) [][]uint64 {
	out := make([][]uint64, len(rows))
	for i, r := range rows {
		out[i] = make([]uint64, len(r))
		for j, v := range r {
			out[i][j] = math.Float64bits(v)
		}
	}
	return out
}

// equalOutcome compares two flattened outcomes including exact float
// bits.
func equalOutcome(a, b any) bool {
	if !reflect.DeepEqual(a, b) {
		return false
	}
	switch ra := a.(type) {
	case *serve.EmbedResult:
		return reflect.DeepEqual(bitsOf(ra.Vectors), bitsOf(b.(*serve.EmbedResult).Vectors))
	case *serve.PredictResult:
		return reflect.DeepEqual(bitsOf(ra.Probs), bitsOf(b.(*serve.PredictResult).Probs))
	}
	return true
}

// checkEquivalence runs the query set over every transport and
// requires identical outcomes, using the first transport as the
// reference.
func checkEquivalence(ctx context.Context, cs map[string]client.Client, ids []int, tq client.TopKQuery) error {
	queries := []struct {
		label string
		run   func(client.Client) (any, error)
	}{
		{"embed", func(c client.Client) (any, error) { return c.Embed(ctx, ids) }},
		{"predict", func(c client.Client) (any, error) { return c.Predict(ctx, ids) }},
		{"topk", func(c client.Client) (any, error) { return c.TopK(ctx, tq) }},
		{"topk-exact", func(c client.Client) (any, error) {
			q := tq
			q.Mode, q.Ef = "exact", 0
			return c.TopK(ctx, q)
		}},
		// 1<<30 is 10 decimal digits: within the HTTP parser's token
		// guard, so every transport reaches the same range check and
		// rejects with the same envelope.
		{"embed-bad-id", func(c client.Client) (any, error) { return c.Embed(ctx, []int{1 << 30}) }},
	}
	for _, q := range queries {
		ref, refName := any(nil), ""
		for name, c := range cs {
			res, err := q.run(c)
			got, err := outcome(res, err)
			if err != nil {
				return fmt.Errorf("%s over %s: %w", q.label, name, err)
			}
			if refName == "" {
				ref, refName = got, name
				continue
			}
			if !equalOutcome(ref, got) {
				return fmt.Errorf("%s: %s answer differs from %s:\n %s: %#v\n %s: %#v",
					q.label, name, refName, refName, ref, name, got)
			}
		}
		fmt.Fprintf(os.Stderr, "gsgcn-probe: %-12s identical across %d transports\n", q.label, len(cs))
	}
	return nil
}

// reloadStorm holds one TCP connection across n hot reloads with
// queries interleaved, proving the persistent transport survives
// snapshot swaps without a reconnect.
func reloadStorm(ctx context.Context, tcp client.Client, ops *client.Ops, ids []int, n int) error {
	before, err := tcp.Embed(ctx, ids)
	if err != nil {
		return fmt.Errorf("pre-storm query: %w", err)
	}
	for i := 0; i < n; i++ {
		if err := ops.Reload(ctx); err != nil {
			return fmt.Errorf("reload %d: %w", i+1, err)
		}
		res, err := tcp.Embed(ctx, ids)
		if err != nil {
			return fmt.Errorf("query after reload %d: connection did not survive: %w", i+1, err)
		}
		if !equalOutcome(before, res) {
			// Same checkpoint reloaded: only the version may move.
			res2 := *res
			res2.Version = before.Version
			if !equalOutcome(before, &res2) {
				return fmt.Errorf("answer changed across reload %d of the same checkpoint", i+1)
			}
		}
	}
	after, err := tcp.Embed(ctx, ids)
	if err != nil {
		return err
	}
	if after.Version < before.Version+uint64(n) {
		return fmt.Errorf("snapshot version only advanced %d -> %d across %d reloads",
			before.Version, after.Version, n)
	}
	fmt.Fprintf(os.Stderr, "gsgcn-probe: TCP connection survived %d reloads (version %d -> %d)\n",
		n, before.Version, after.Version)
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the gsgcn-serve process")
		wireAddr = flag.String("wire-addr", "", "host:port of the framed TCP listener (adds the tcp transport to the checks)")
		model    = flag.String("model", "", "model to probe (empty = the default model)")
		idsFlag  = flag.String("ids", "0,1,2", "vertex ids for the embed/predict probes")
		topkID   = flag.Int("topk-id", 0, "query vertex for the topk probe")
		topkK    = flag.Int("topk-k", 3, "k for the topk probe")
		storm    = flag.Int("reload-storm", 0, "hold one TCP connection across this many hot reloads (0 = off; needs -wire-addr)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	flag.Parse()

	ids, err := parseIDs(*idsFlag)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()

	cs := make(map[string]client.Client)
	for _, tr := range []string{"json", "wire"} {
		c, err := client.New(client.Config{Transport: tr, Addr: *addr, Model: *model, Timeout: *timeout})
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		cs[tr] = c
	}
	if *wireAddr != "" {
		c, err := client.New(client.Config{Transport: "tcp", Addr: *wireAddr, Model: *model, Timeout: *timeout})
		if err != nil {
			fatal(fmt.Errorf("dialing %s: %w", *wireAddr, err))
		}
		defer c.Close()
		cs["tcp"] = c
	}

	if err := checkEquivalence(ctx, cs, ids, client.TopKQuery{ID: *topkID, K: *topkK}); err != nil {
		fatal(err)
	}
	if *storm > 0 {
		tcp, ok := cs["tcp"]
		if !ok {
			fatal(fmt.Errorf("-reload-storm needs -wire-addr"))
		}
		ops := client.NewOps(*addr, *model, nil)
		if err := reloadStorm(ctx, tcp, ops, ids, *storm); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintln(os.Stderr, "gsgcn-probe: OK")
}
