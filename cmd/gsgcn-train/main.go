// Command gsgcn-train trains a graph-sampling GCN on a synthetic
// preset and reports per-epoch loss and validation F1, ending with
// test F1.
//
// Usage:
//
//	gsgcn-train -dataset ppi -scale 0.05 -layers 2 -hidden 128 -epochs 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gsgcn"
)

func main() {
	var (
		data    = flag.String("data", "", "train on a .gsg dataset file (overrides -dataset; pair with gsgcn-serve -data)")
		dataset = flag.String("dataset", "ppi", "preset: ppi|reddit|yelp|amazon")
		scale   = flag.Float64("scale", 0.05, "dataset scale relative to Table I")
		layers  = flag.Int("layers", 2, "GCN depth")
		hidden  = flag.Int("hidden", 128, "hidden dimension")
		epochs  = flag.Int("epochs", 10, "training epochs")
		lr      = flag.Float64("lr", 0.01, "Adam learning rate")
		m       = flag.Int("frontier", 0, "frontier size m (0 = auto)")
		budget  = flag.Int("budget", 0, "subgraph vertex budget n (0 = auto)")
		degCap  = flag.Int("degcap", 0, "Dashboard degree cap (0 = uncapped; paper uses 30 for amazon)")
		workers = flag.Int("workers", 0, "real goroutines for sampling and dense kernels (0 = GOMAXPROCS; the loss trace is identical at any setting)")
		pinter  = flag.Int("pinter", 0, "sampler instances per pool wave, p_inter (0 = GOMAXPROCS)")
		prefet  = flag.Int("prefetch", 0, "sampler pipeline depth in waves (0 = default 2)")
		seed    = flag.Uint64("seed", 1, "seed")
		sampler = flag.String("sampler", "frontier", "sampler: frontier|random-node|random-edge|random-walk|forest-fire")
		save    = flag.String("save", "", "write model checkpoint to this path after training")
		load    = flag.String("load", "", "restore model checkpoint from this path before training")
		metrics = flag.String("metrics-out", "", "dump training metrics (epoch wall time, loss, F1) to this file in Prometheus text format")
	)
	flag.Parse()

	var (
		ds  *gsgcn.Dataset
		err error
	)
	if *data != "" {
		ds, err = gsgcn.ReadDataset(*data)
	} else {
		ds, err = gsgcn.LoadPreset(*dataset, *scale, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-train:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: |V|=%d |E|=%d attrs=%d classes=%d multi=%v\n",
		ds.Name, ds.G.NumVertices(), ds.G.NumEdges(), ds.FeatureDim(), ds.NumClasses, ds.MultiLabel)

	cfg := gsgcn.Config{
		Layers: *layers, Hidden: *hidden, LR: *lr,
		FrontierM: *m, Budget: *budget, DegCap: *degCap,
		Workers: *workers, PInter: *pinter, Prefetch: *prefet, Seed: *seed,
	}
	model := gsgcn.NewModel(ds, cfg)
	fmt.Println(model)
	if *load != "" {
		if err := model.LoadFile(*load); err != nil {
			fmt.Fprintln(os.Stderr, "gsgcn-train:", err)
			os.Exit(1)
		}
		fmt.Println("restored checkpoint", *load)
	}

	var tr *gsgcn.Trainer
	if *sampler == "frontier" {
		tr = gsgcn.NewTrainer(ds, model)
	} else {
		fam := gsgcn.Samplers(ds.G, model.Config().Budget)
		s, ok := fam[*sampler]
		if !ok {
			fmt.Fprintf(os.Stderr, "gsgcn-train: unknown sampler %q\n", *sampler)
			os.Exit(1)
		}
		tr = gsgcn.NewTrainerWithSampler(ds, model, s)
	}

	// The same metrics core that backs /metrics in gsgcn-serve records
	// the training run; -metrics-out dumps it in the same text format,
	// so one toolchain parses both. Observation only — the loss trace
	// is bit-identical with or without it.
	mreg := gsgcn.NewMetricsRegistry()
	labels := map[string]string{"dataset": ds.Name}
	var (
		epochSecs = mreg.Histogram("gsgcn_train_epoch_seconds",
			"Wall time per training epoch.", labels, gsgcn.DurationBuckets)
		epochsRun = mreg.Counter("gsgcn_train_epochs_total",
			"Training epochs completed.", labels)
		lastLoss = mreg.Gauge("gsgcn_train_loss",
			"Training loss after the most recent epoch.", labels)
		lastF1 = mreg.Gauge("gsgcn_train_val_f1",
			"Validation micro-F1 after the most recent epoch.", labels)
	)

	start := time.Now()
	for e := 1; e <= *epochs; e++ {
		epochStart := time.Now()
		loss := tr.Epoch()
		epochSecs.Observe(time.Since(epochStart).Seconds())
		epochsRun.Inc()
		f1 := tr.Evaluate(ds.ValIdx)
		lastLoss.Set(loss)
		lastF1.Set(f1)
		fmt.Printf("epoch %3d  loss %.4f  val-F1 %.4f  elapsed %.1fs\n",
			e, loss, f1, time.Since(start).Seconds())
	}
	fmt.Printf("test-F1 %.4f\n", tr.Evaluate(ds.TestIdx))
	if *metrics != "" {
		if err := writeMetrics(*metrics, mreg); err != nil {
			fmt.Fprintln(os.Stderr, "gsgcn-train:", err)
			os.Exit(1)
		}
		fmt.Println("wrote metrics", *metrics)
	}
	seg := tr.Timer.Segments()
	fmt.Printf("time breakdown: sampling %.2fs  featprop %.2fs  weight %.2fs\n",
		seg["sampling"].Seconds(), seg["featprop"].Seconds(), seg["weight"].Seconds())
	if *save != "" {
		// Tag the checkpoint with the optimizer step count so serving
		// processes can report which weights generation they answer
		// from.
		model.ModelVersion = uint64(tr.Steps())
		if err := model.SaveFile(*save); err != nil {
			fmt.Fprintln(os.Stderr, "gsgcn-train:", err)
			os.Exit(1)
		}
		fmt.Printf("saved checkpoint %s (model_version %d)\n", *save, model.ModelVersion)
	}
}

// writeMetrics dumps the registry in Prometheus text format.
func writeMetrics(path string, reg *gsgcn.MetricsRegistry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
