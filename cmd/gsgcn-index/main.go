// Command gsgcn-index produces serving snapshot artifacts offline: it
// loads a trained v2 checkpoint and the serving graph, computes the
// full-graph embedding table (the same layer-wise pass gsgcn-serve
// runs on a cold start) and the deterministic HNSW index, and persists
// both as a versioned, checksummed artifact file plus a JSON manifest.
// A server started with -artifact pointing at the output skips the
// entire embedding recompute and index build: cold start becomes a
// disk read, and /reload against an unchanged artifact reuses the
// in-memory tables outright.
//
// Because both the embedding pass and the HNSW construction are
// bit-deterministic, the artifact is byte-equal to what the server
// would have computed itself — the warm path changes latency, never
// answers.
//
// Usage:
//
//	gsgcn-index -load model.ckpt -data reddit.gsg -out model.ckpt.art
//	gsgcn-index -load model.ckpt -dataset ppi -scale 0.05
//
// The index is built with the same -ann-m default as gsgcn-serve; use
// a matching -ann-m on both sides — a structural mismatch (M) makes
// the server keep the warm embeddings but rebuild the index lazily.
// -ann-ef is not structural: query beam width is always resolved from
// the server's own flags, so it never affects index adoption.
//
// With -dtype f32 or i8pq the artifact also carries that quantized
// table; the exact float64 table is always present, so exact answers
// never change. A server started with the same -dtype adopts the
// persisted payload instead of re-quantizing, and -mmap then serves
// the float64 rows straight from the mapped file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gsgcn"
)

func main() {
	var (
		load    = flag.String("load", "", "model checkpoint to index (required)")
		data    = flag.String("data", "", "serving graph in .gsg format (overrides -dataset)")
		dataset = flag.String("dataset", "ppi", "preset to regenerate when -data is unset: ppi|reddit|yelp|amazon")
		scale   = flag.Float64("scale", 0.05, "preset scale relative to Table I")
		seed    = flag.Uint64("seed", 1, "preset generation seed (must match training)")
		out     = flag.String("out", "", "artifact output path (default <load>.art)")
		workers = flag.Int("workers", 0, "goroutines for the embedding pass and index build (0 = GOMAXPROCS)")
		block   = flag.Int("block", 0, "vertices per streamed inference block (0 = 256)")
		dtype   = flag.String("dtype", "f64", "resident representation to quantize into the artifact: f64|f32|i8pq (exact answers always stay f64)")
		index   = flag.Bool("index", true, "include the HNSW index (false = embeddings only)")
		annM    = flag.Int("ann-m", 0, "HNSW connectivity, must match the server's -ann-m (0 = 16)")
		annEf   = flag.Int("ann-ef", 0, "default query beam width stored with the index (0 = 64)")
		shards  = flag.Int("shards", 0, "build per-shard artifacts for an N-shard serving fleet: -out becomes the base path, shard i lands at <out>.s<i>ofN (0 or 1 = one whole-graph artifact)")
		shSeed  = flag.Uint64("shard-seed", 0, "seed keying the vertex-shard assignment (must match gsgcn-serve -shard-seed)")
	)
	flag.Parse()
	if *load == "" {
		fmt.Fprintln(os.Stderr, "gsgcn-index: -load is required")
		os.Exit(2)
	}
	dt, err := gsgcn.ParseServingDtype(*dtype)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-index:", err)
		os.Exit(2)
	}
	if *out == "" {
		*out = *load + ".art"
	}

	var ds *gsgcn.Dataset
	if *data != "" {
		ds, err = gsgcn.ReadDataset(*data)
	} else {
		ds, err = gsgcn.LoadPreset(*dataset, *scale, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-index:", err)
		os.Exit(1)
	}
	m, err := gsgcn.LoadModelFile(*load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-index:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: |V|=%d |E|=%d, model_version %d\n",
		ds.Name, ds.G.NumVertices(), ds.G.NumEdges(), m.ModelVersion)

	opts := gsgcn.ServeOptions{
		Workers: *workers, BlockSize: *block, ANNM: *annM, ANNEf: *annEf,
		Dtype: dt,
	}
	nShards := *shards
	if nShards < 1 {
		nShards = 1
	}
	start := time.Now()
	snaps, err := gsgcn.BuildShardServingArtifacts(ds, m, opts, *index, nShards, *shSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-index:", err)
		os.Exit(1)
	}
	built := time.Since(start)

	for i, snap := range snaps {
		path := *out
		if nShards > 1 {
			path = gsgcn.ShardArtifactPath(*out, i, nShards)
		}
		sum, err := gsgcn.WriteServingArtifact(path, snap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsgcn-index:", err)
			os.Exit(1)
		}
		mfPath, err := gsgcn.WriteArtifactManifest(path, *load, snap, sum)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsgcn-index:", err)
			os.Exit(1)
		}
		info, _ := os.Stat(path)
		size := int64(0)
		if info != nil {
			size = info.Size()
		}
		fmt.Printf("wrote %s (%d bytes, crc64 %016x, computed in %v) + %s\n",
			path, size, sum, built.Round(time.Millisecond), mfPath)
	}
}
