// Command gsgcn-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gsgcn-bench -exp fig2 -scale 0.05 -epochs 8
//	gsgcn-bench -exp all
//
// Each experiment prints the rows/series of the corresponding table
// or figure (see EXPERIMENTS.md for the mapping and the expected
// shapes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gsgcn"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: "+strings.Join(gsgcn.ExperimentNames(), "|"))
		scale    = flag.Float64("scale", 0.05, "dataset scale relative to the paper's Table I sizes")
		epochs   = flag.Int("epochs", 8, "training epochs for Fig. 2")
		hidden   = flag.Int("hidden", 64, "hidden dimension for training experiments")
		datasets = flag.String("datasets", "", "comma-separated preset subset (default: all four)")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		workers  = flag.Int("workers", 0, "real goroutines for experiments that honor ExpOptions.Workers (currently the samplers ablation; the scaling figures sweep simulated cores, and fig2 trains serially by design). 0 = GOMAXPROCS; results are identical at any setting")
		quick    = flag.Bool("quick", false, "tiny smoke-test configuration")
	)
	flag.Parse()

	o := gsgcn.DefaultOptions()
	if *quick {
		o = gsgcn.QuickOptions()
	}
	o.Scale = *scale
	o.Epochs = *epochs
	o.Hidden = *hidden
	o.Seed = *seed
	o.Workers = *workers
	if *datasets != "" {
		o.Datasets = strings.Split(*datasets, ",")
	}

	fmt.Println(gsgcn.About())
	if err := gsgcn.RunExperiment(*exp, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gsgcn-bench:", err)
		os.Exit(1)
	}
}
