package gsgcn

import (
	"fmt"
	"strings"

	"gsgcn/internal/partition"
	"gsgcn/internal/rng"
	"gsgcn/internal/sampler"
)

// Theorem1Result validates the sampler cost model of Theorem 1
// against measured Dashboard statistics: the expected probes per pop
// (the COSTrand term) and the guaranteed-scalability bound
// p <= eps*d*(4 + 3/(eta-1)) - eta.
type Theorem1Result struct {
	Dataset       string
	AvgDegree     float64
	Etas          []float64
	ProbeRate     []float64 // measured probes per pop at each eta
	PredictedRate []float64 // model: used/valid ≈ eta
	BoundP        []float64 // Theorem 1 max p at eps = 0.5
	Cleanups      []int
}

// RunTheorem1 samples with several enlargement factors and compares
// measured probe rates and cleanup counts with the analysis.
func RunTheorem1(o ExpOptions) (*Theorem1Result, error) {
	o = o.normalized()
	cache := newDatasetCache(o)
	ds, err := cache.get(o.Datasets[0])
	if err != nil {
		return nil, err
	}
	m, budget := trainParams(ds, o)
	res := &Theorem1Result{
		Dataset:   ds.Name,
		AvgDegree: ds.G.AvgDegree(),
		Etas:      []float64{1.25, 1.5, 2, 3, 4},
	}
	for i, eta := range res.Etas {
		fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: eta}
		_, stats := fr.SampleVerticesStats(rng.NewStream(o.Seed, 7000+i))
		rate := 0.0
		if stats.Pops > 0 {
			rate = float64(stats.Probes) / float64(stats.Pops)
		}
		res.ProbeRate = append(res.ProbeRate, rate)
		res.PredictedRate = append(res.PredictedRate, eta)
		res.BoundP = append(res.BoundP, sampler.TheoreticalSpeedupBound(0.5, res.AvgDegree, eta))
		res.Cleanups = append(res.Cleanups, stats.Cleanups)
	}
	return res, nil
}

// String renders the comparison.
func (r *Theorem1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 1 validation (%s, avg degree %.1f): probe cost and scalability bound\n", r.Dataset, r.AvgDegree)
	fmt.Fprintf(&b, "  %6s %14s %15s %14s %10s\n", "eta", "probes/pop", "model(≈eta)", "bound p(ε=.5)", "cleanups")
	for i, eta := range r.Etas {
		fmt.Fprintf(&b, "  %6.2f %14.2f %15.2f %14.1f %10d\n",
			eta, r.ProbeRate[i], r.PredictedRate[i], r.BoundP[i], r.Cleanups[i])
	}
	return b.String()
}

// Theorem2Result validates the feature-partitioning analysis: the
// communication volume of the feature-only (P=1) schedule against the
// exhaustive optimum and the 8nf lower bound, plus the measured
// propagation-time ratio of 1-D (feature) vs 2-D (graph x feature)
// partitioning on a sampled subgraph.
type Theorem2Result struct {
	Dataset     string
	N           int
	AvgDeg      float64
	F           int
	VolumeFOnly float64
	VolumeBest  float64
	BestP       int
	BestQ       int
	LowerBound  float64
	ApproxRatio float64
	Feasible    bool
}

// RunTheorem2 evaluates the communication model on one sampled
// subgraph per the paper's typical parameters.
func RunTheorem2(o ExpOptions) (*Theorem2Result, error) {
	o = o.normalized()
	cache := newDatasetCache(o)
	ds, err := cache.get(o.Datasets[0])
	if err != nil {
		return nil, err
	}
	m, budget := trainParams(ds, o)
	fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: 2}
	sub := sampler.SampleSubgraph(ds.G, fr, rng.NewStream(o.Seed, 0x7E02))
	cm := partition.CommModel{
		N: sub.N, AvgDeg: sub.AvgDegree(), F: ds.FeatureDim(),
		Cores: maxInt(o.Cores), CacheBytes: 256 << 10,
	}
	bestP, bestQ, best := cm.BestVolume(sub.CSR, 16)
	return &Theorem2Result{
		Dataset:     ds.Name,
		N:           sub.N,
		AvgDeg:      sub.AvgDegree(),
		F:           ds.FeatureDim(),
		VolumeFOnly: cm.Volume(1, cm.OptimalQ(), 1),
		VolumeBest:  best,
		BestP:       bestP,
		BestQ:       bestQ,
		LowerBound:  cm.LowerBound(),
		ApproxRatio: cm.ApproxRatio(),
		Feasible:    cm.FeasibleTheorem2(),
	}, nil
}

// String renders the analysis.
func (r *Theorem2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 2 validation (%s subgraph: n=%d, d=%.1f, f=%d)\n", r.Dataset, r.N, r.AvgDeg, r.F)
	fmt.Fprintf(&b, "  lower bound 8nf            : %.3e bytes\n", r.LowerBound)
	fmt.Fprintf(&b, "  feature-only (P=1) volume  : %.3e bytes (ratio %.3f, feasible=%v)\n", r.VolumeFOnly, r.ApproxRatio, r.Feasible)
	fmt.Fprintf(&b, "  exhaustive best (P=%d,Q=%d) : %.3e bytes\n", r.BestP, r.BestQ, r.VolumeBest)
	if r.VolumeBest > 0 {
		fmt.Fprintf(&b, "  feature-only / best        : %.3f (Theorem 2 guarantees <= 2)\n", r.VolumeFOnly/r.VolumeBest)
	}
	return b.String()
}
