module gsgcn

go 1.21
