package gsgcn

// This file is deliverable (d): a benchmark per table and figure of
// the paper's evaluation section, each printing the regenerated
// rows/series on its first iteration, plus ablation benches for the
// design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers will differ from the paper (different hardware,
// synthetic data, simulated cores — see EXPERIMENTS.md); the shapes
// (who wins, how speedups trend with cores/depth) are the
// reproduction target.

import (
	"fmt"
	"os"
	"testing"

	"gsgcn/internal/partition"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
	"gsgcn/internal/sampler"
)

// benchOptions sizes the experiments for a laptop-scale bench run.
func benchOptions() ExpOptions {
	o := DefaultOptions()
	o.Scale = 0.02
	o.Epochs = 8
	o.Hidden = 48
	return o
}

func printOnce(i int, s fmt.Stringer) {
	if i == 0 {
		fmt.Fprintln(os.Stdout, s.String())
	}
}

// BenchmarkTableI regenerates Table I (dataset statistics).
func BenchmarkTableI(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := RunTable1(o)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, r)
	}
}

// BenchmarkFig2 regenerates Figure 2 (sequential time-accuracy,
// proposed vs GraphSAGE vs batched GCN) and the Section VI-B serial
// speedups.
func BenchmarkFig2(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := RunFig2(o)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, r)
	}
}

// BenchmarkFig3 regenerates Figure 3 (iteration / feature-propagation
// / weight-application scaling and the execution-time breakdown) for
// the paper's hidden dimensions 512 and 1024.
func BenchmarkFig3(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := RunFig3(o)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, r)
	}
}

// BenchmarkFig4 regenerates Figure 4 (sampling speedup vs p_inter and
// the lane/AVX gain).
func BenchmarkFig4(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := RunFig4(o)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, r)
	}
}

// BenchmarkTableII regenerates Table II (speedup over the
// parallelized layer-sampling baseline across depths and cores).
func BenchmarkTableII(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := RunTable2(o)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, r)
	}
}

// BenchmarkSamplerScalability regenerates the Theorem 1 validation
// (probe-cost model and scalability bound).
func BenchmarkSamplerScalability(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := RunTheorem1(o)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, r)
	}
}

// BenchmarkPartitionAblation regenerates the Theorem 2 validation
// (feature-only partitioning as a 2-approximation) and measures 1-D
// vs 2-D partitioned propagation on a sampled subgraph.
func BenchmarkPartitionAblation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := RunTheorem2(o)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, r)
	}
}

// BenchmarkDashboardEta sweeps the Dashboard enlargement factor: a
// small eta saves memory but forces frequent cleanups; a large eta
// wastes probes. One subgraph sampled per iteration.
func BenchmarkDashboardEta(b *testing.B) {
	ds, err := LoadPreset("ppi", 0.05, 0)
	if err != nil {
		b.Fatal(err)
	}
	m, budget := trainParams(ds, DefaultOptions())
	for _, eta := range []float64{1.25, 1.5, 2, 3, 4} {
		b.Run(fmt.Sprintf("eta=%.2f", eta), func(b *testing.B) {
			fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: eta}
			r := rng.New(1)
			for i := 0; i < b.N; i++ {
				fr.SampleVertices(r)
			}
		})
	}
}

// BenchmarkFrontierVsNaive quantifies the Dashboard's advantage over
// the straightforward O(m) -per-pop Algorithm 2 implementation.
func BenchmarkFrontierVsNaive(b *testing.B) {
	ds, err := LoadPreset("ppi", 0.05, 0)
	if err != nil {
		b.Fatal(err)
	}
	m, budget := trainParams(ds, DefaultOptions())
	b.Run("dashboard", func(b *testing.B) {
		fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: 2}
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			fr.SampleVertices(r)
		}
	})
	b.Run("naive", func(b *testing.B) {
		fr := &sampler.NaiveFrontier{G: ds.G, M: m, N: budget}
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			fr.SampleVertices(r)
		}
	})
}

// BenchmarkPoolSchedule measures one Algorithm 5 pool refill at
// several p_inter values with real goroutines.
func BenchmarkPoolSchedule(b *testing.B) {
	ds, err := LoadPreset("ppi", 0.05, 0)
	if err != nil {
		b.Fatal(err)
	}
	m, budget := trainParams(ds, DefaultOptions())
	for _, pinter := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("pinter=%d", pinter), func(b *testing.B) {
			fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: 2}
			pool := sampler.NewPool(ds.G, fr, pinter, 1)
			for i := 0; i < b.N; i++ {
				for j := 0; j < pinter; j++ {
					pool.Next()
				}
			}
		})
	}
}

// BenchmarkPropagationPartitioning compares feature-only (P=1)
// against 2-D (graph x feature) partitioned propagation — the
// Theorem 2 design choice — on a frontier-sampled subgraph.
func BenchmarkPropagationPartitioning(b *testing.B) {
	ds, err := LoadPreset("reddit", 0.01, 0)
	if err != nil {
		b.Fatal(err)
	}
	m, budget := trainParams(ds, DefaultOptions())
	fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: 2}
	sub := sampler.SampleSubgraph(ds.G, fr, rng.New(2))
	f := ds.FeatureDim()
	src := randomDense(rng.New(3), sub.N, f)
	dst := src.Clone()
	workers := perf.NumWorkers()
	b.Run("feature-only-P1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.Propagate(dst, src, sub.CSR, partition.NormDst, 16, workers)
		}
	})
	b.Run("2D-P4xQ4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.Propagate2D(dst, src, sub.CSR, partition.NormDst, 4, 4, workers)
		}
	})
}

// BenchmarkTrainEpoch measures one end-to-end training epoch on the
// scaled PPI preset through the public API.
func BenchmarkTrainEpoch(b *testing.B) {
	ds, err := LoadPreset("ppi", 0.05, 0)
	if err != nil {
		b.Fatal(err)
	}
	model := NewModel(ds, Config{Layers: 2, Hidden: 64, Seed: 4})
	tr := NewTrainer(ds, model)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Epoch()
	}
}

// BenchmarkTrainEpochWorkers benchmarks serial vs parallel training
// epochs side by side on the PPI preset. Every kernel and the sampler
// pool are worker-invariant, so all sub-benchmarks perform the exact
// same arithmetic — the ratio of their ns/op is the real wall-clock
// speedup of the goroutine-parallel engine (the measured counterpart
// of the paper's Fig. 3A). Future PRs track the speedup trajectory
// with `make bench`.
func BenchmarkTrainEpochWorkers(b *testing.B) {
	ds, err := LoadPreset("ppi", 0.05, 0)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if n := perf.NumWorkers(); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			model := NewModel(ds, Config{Layers: 2, Hidden: 64, Workers: w, PInter: 4, Seed: 4})
			tr := NewTrainer(ds, model)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Epoch()
			}
		})
	}
}

// BenchmarkFullGraphInference measures validation-time full-graph
// inference.
func BenchmarkFullGraphInference(b *testing.B) {
	ds, err := LoadPreset("ppi", 0.05, 0)
	if err != nil {
		b.Fatal(err)
	}
	model := NewModel(ds, Config{Layers: 2, Hidden: 64, Seed: 4})
	tr := NewTrainer(ds, model)
	tr.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Evaluate(ds.ValIdx)
	}
}
