package gsgcn

import (
	"fmt"
	"strings"
	"time"

	"gsgcn/internal/baseline"
	"gsgcn/internal/mat"
	"gsgcn/internal/partition"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
	"gsgcn/internal/sampler"
)

// Table2Result reproduces Table II: per-epoch training-time speedup
// of the graph-sampling GCN over a parallelized layer-sampling
// (GraphSAGE-style) baseline, across GCN depths and core counts, on
// the Reddit preset.
//
// The paper compares its C++ implementation against a Python/
// Tensorflow implementation of the baseline; FrameworkOverhead is the
// constant multiplier standing in for the interpreter/framework cost
// of the original comparator (calibrated to the paper's 1-layer,
// 1-core cell of ~2x, where algorithmic redundancy is minimal).
type Table2Result struct {
	Dataset           string
	Layers            []int
	Cores             []int
	Speedups          [][]float64 // [layer][core]
	PaperSpeedups     [][]float64
	FrameworkOverhead float64
	BatchNodes        []int // baseline node count per batch, per depth (neighbor explosion)
}

var table2Paper = [][]float64{
	{2.03, 4.77, 9.34, 17.25, 23.93},
	{7.74, 12.95, 18.50, 28.43, 37.44},
	{335.36, 568.93, 828.25, 1164.45, 1306.21},
}

// RunTable2 measures one training iteration of each method per depth
// and models parallel execution: our iteration uses the Fig. 3 shard
// decomposition; the baseline's GEMM segment scales with cores while
// its gather segment (memory-bound data movement of d_LS-times
// redundant features — the communication the paper blames in Section
// VI-D) saturates at the memory-channel limit.
func RunTable2(o ExpOptions) (*Table2Result, error) {
	o = o.normalized()
	name := "reddit"
	found := false
	for _, d := range o.Datasets {
		if d == name {
			found = true
		}
	}
	if !found && len(o.Datasets) > 0 {
		name = o.Datasets[0]
	}
	cache := newDatasetCache(o)
	ds, err := cache.get(name)
	if err != nil {
		return nil, err
	}
	layers := []int{1, 2, 3}
	if o.Quick {
		layers = []int{1, 2}
	}
	res := &Table2Result{
		Dataset:           name,
		Layers:            layers,
		Cores:             o.Cores,
		PaperSpeedups:     table2Paper,
		FrameworkOverhead: 2.0,
	}

	// Baseline configuration. d_LS = 10 keeps the 3-layer explosion
	// (batch * 11^3 nodes) within memory on reduced-scale runs; the
	// paper's d_LS = 25 only makes the baseline slower.
	const dls, batch = 10, 64
	maxP := maxInt(o.Cores)

	for _, L := range layers {
		// --- Ours: per-iteration shard times (sampling + featprop +
		// weight application), as in Fig. 3. ------------------------
		oursIter := oursIterShards(ds, o, L, maxP)

		// --- Baseline: one real instrumented step. ------------------
		cfg := baseline.SAGEConfig{
			Layers: L, Hidden: o.Hidden, DLS: dls, Batch: batch,
			LR: 0.01, Seed: o.Seed, Workers: 1,
		}
		sage := baseline.NewSAGE(ds, cfg)
		sage.Timer = perf.NewTimer()
		sage.Step()
		seg := sage.Timer.Segments()
		gather, gemm, sample := seg["gather"], seg["gemm"], seg["sample"]
		res.BatchNodes = append(res.BatchNodes, sage.LastBatchNodes)

		// Per-epoch normalization: iterations per epoch.
		_, budget := trainParams(ds, o)
		oursIters := float64(ds.G.NumVertices()) / float64(budget)
		if oursIters < 1 {
			oursIters = 1
		}
		sageIters := float64(len(ds.TrainIdx)) / float64(batch)
		if sageIters < 1 {
			sageIters = 1
		}

		row := make([]float64, 0, len(o.Cores))
		for _, p := range o.Cores {
			ours := oursIterWall(oursIter, p, o.Sim)
			base := baselineWall(gather, gemm, sample, p)
			oursEpoch := float64(ours) * oursIters
			baseEpoch := float64(base) * sageIters * res.FrameworkOverhead
			if oursEpoch <= 0 {
				row = append(row, 0)
				continue
			}
			row = append(row, baseEpoch/oursEpoch)
		}
		res.Speedups = append(res.Speedups, row)
	}
	return res, nil
}

// iterShards bundles the three phase decompositions of one of our
// training iterations.
type iterShards struct {
	sample, feat, weight []time.Duration
}

// oursIterShards measures one graph-sampling GCN iteration decomposed
// for simulation, with L layers.
func oursIterShards(ds *Dataset, o ExpOptions, L, maxP int) iterShards {
	m, budget := trainParams(ds, o)
	if budget > fig3Budget && !o.Quick {
		budget = fig3Budget
	}
	if m > budget/4 {
		m = budget / 4
	}
	fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: 2}
	r := rng.NewStream(o.Seed, 0x7AB2)
	sub := sampler.SampleSubgraph(ds.G, fr, r)
	n := sub.N
	f0 := ds.FeatureDim()

	sh := iterShards{}
	sh.sample = perf.SimShardTimes(maxP, func(i int) {
		rr := rng.NewStream(o.Seed, 6000+i)
		_ = sampler.SampleSubgraph(ds.G, fr, rr)
	})

	dims := layerDims(f0, o.Hidden, L)
	cm := partition.CommModel{N: n, AvgDeg: sub.AvgDegree(), F: f0, Cores: maxP, CacheBytes: 256 << 10}
	q := cm.OptimalQ()
	if q < maxP {
		q = maxP
	}
	sh.feat = make([]time.Duration, q)
	for _, in := range dims {
		src := randomDense(r, n, in)
		dst := mat.New(n, in)
		for _, norm := range []partition.Norm{partition.NormDst, partition.NormSrc} {
			ts := perf.SimShardTimes(q, func(i int) {
				lo := i * in / q
				hi := (i + 1) * in / q
				if lo < hi {
					partition.PropagateRange(dst, src, sub.CSR, norm, lo, hi)
				}
			})
			for i, t := range ts {
				sh.feat[i] += t
			}
		}
	}
	sh.weight = make([]time.Duration, maxP)
	for _, in := range dims {
		addGEMM(sh.weight, r, maxP, n, in, o.Hidden)
		addGEMM(sh.weight, r, maxP, n, in, o.Hidden)
		addGEMM(sh.weight, r, maxP, in, n, o.Hidden)
		addGEMM(sh.weight, r, maxP, in, n, o.Hidden)
		addGEMM(sh.weight, r, maxP, n, o.Hidden, in)
		addGEMM(sh.weight, r, maxP, n, o.Hidden, in)
	}
	headIn := 2 * o.Hidden
	addGEMM(sh.weight, r, maxP, n, headIn, ds.NumClasses)
	addGEMM(sh.weight, r, maxP, headIn, n, ds.NumClasses)
	addGEMM(sh.weight, r, maxP, n, ds.NumClasses, headIn)
	return sh
}

// oursIterWall folds the shard times into a simulated per-iteration
// wall time at p cores.
func oursIterWall(sh iterShards, p int, cfg perf.SimConfig) time.Duration {
	feat := perf.GroupWall(sh.feat, p, cfg).Wall
	weight := perf.GroupWall(sh.weight, p, cfg).Wall
	sample := samplePerIter(sh.sample, p, cfg)
	return feat + weight + sample
}

// memBandwidthCap is the maximum effective parallelism of the
// baseline's gather/scatter phase: moving d_LS-times redundant
// feature rows is DRAM-bandwidth-bound, and a dual-socket Xeon
// saturates its channels at roughly this many cores' worth of
// streaming traffic.
const memBandwidthCap = 6

// baselineGemmEff is the parallel efficiency of the comparator's
// dense kernels: the paper's baseline runs under a Python/Tensorflow
// runtime whose inter-op scheduling costs eat a large share of the
// added cores (this is what makes the paper's Table II ratios *grow*
// with core count even at one layer).
const baselineGemmEff = 0.6

// baselineWall models the layer-sampling baseline at p cores: dense
// kernels scale with the framework's parallel efficiency, gathers cap
// at the memory bandwidth limit, and the per-batch neighbor sampling
// stays serial (it runs in the host interpreter, outside the
// framework's thread pool).
func baselineWall(gather, gemm, sample time.Duration, p int) time.Duration {
	gEff := p
	if gEff > memBandwidthCap {
		gEff = memBandwidthCap
	}
	gemmScaled := time.Duration(float64(gemm) / (baselineGemmEff * float64(p)))
	if p == 1 {
		gemmScaled = gemm
	}
	return gather/time.Duration(gEff) + gemmScaled + sample
}

// String renders the speedup grid next to the paper's numbers.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: per-epoch speedup vs parallelized layer-sampling baseline (%s, framework overhead %.1fx)\n",
		r.Dataset, r.FrameworkOverhead)
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range r.Cores {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("%d-core", c))
	}
	fmt.Fprintln(&b)
	for i, L := range r.Layers {
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%d-layer", L))
		for _, s := range r.Speedups[i] {
			fmt.Fprintf(&b, " %8.2fx", s)
		}
		if i < len(r.BatchNodes) {
			fmt.Fprintf(&b, "   [baseline batch nodes: %d]", r.BatchNodes[i])
		}
		fmt.Fprintln(&b)
		if i < len(r.PaperSpeedups) {
			fmt.Fprintf(&b, "%-10s", "  (paper)")
			for j := range r.Cores {
				if j < len(r.PaperSpeedups[i]) {
					fmt.Fprintf(&b, " %8.2fx", r.PaperSpeedups[i][j])
				}
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}
