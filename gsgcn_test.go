package gsgcn

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestLoadPreset(t *testing.T) {
	ds, err := LoadPreset("ppi", 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Name != "ppi" || !ds.MultiLabel {
		t.Errorf("preset mismatch: %s multi=%v", ds.Name, ds.MultiLabel)
	}
}

func TestLoadPresetErrors(t *testing.T) {
	if _, err := LoadPreset("nope", 1, 0); err == nil {
		t.Error("unknown preset should error")
	}
	if _, err := LoadPreset("ppi", -1, 0); err == nil {
		t.Error("negative scale should error")
	}
}

func TestPublicTrainingRoundTrip(t *testing.T) {
	ds := GenerateDataset(DatasetConfig{
		Name: "pub", Vertices: 500, TargetEdges: 5000,
		FeatureDim: 12, NumClasses: 4, Homophily: 0.85, Seed: 2,
	})
	model := NewModel(ds, Config{Layers: 2, Hidden: 12, FrontierM: 30, Budget: 150, Workers: 1, Seed: 3})
	tr := NewTrainer(ds, model)
	for e := 0; e < 8; e++ {
		tr.Epoch()
	}
	if f1 := tr.Evaluate(ds.ValIdx); f1 < 0.5 {
		t.Errorf("public API training reached F1 %.3f only", f1)
	}
}

func TestSamplersFamily(t *testing.T) {
	ds, err := LoadPreset("ppi", 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	fam := Samplers(ds.G, 200)
	want := []string{"frontier", "random-node", "random-edge", "random-walk", "forest-fire", "node2vec", "edge-induced"}
	for _, name := range want {
		s, ok := fam[name]
		if !ok {
			t.Fatalf("missing sampler %q", name)
		}
		sub := Sample(ds.G, s, 7)
		if sub.N == 0 {
			t.Errorf("%s sampled empty subgraph", name)
		}
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", quickOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Errorf("table1 output missing header: %q", buf.String())
	}
	if err := RunExperiment("bogus", quickOptions(), &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestTable1Quick(t *testing.T) {
	r, err := RunTable1(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].Name != "ppi" {
		t.Fatalf("rows = %+v", r.Rows)
	}
	row := r.Rows[0]
	if row.PaperV != 14755 || row.PaperE != 225270 {
		t.Errorf("paper reference wrong: %+v", row)
	}
	if row.GenV <= 0 || row.GenE <= 0 || row.AttrDim != 50 || row.Classes != 121 {
		t.Errorf("generated stats wrong: %+v", row)
	}
	if !strings.Contains(r.String(), "ppi") {
		t.Error("String() missing dataset name")
	}
}

func TestFig2Quick(t *testing.T) {
	o := quickOptions()
	o.Epochs = 3
	r, err := RunFig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Datasets) != 1 {
		t.Fatalf("datasets = %d", len(r.Datasets))
	}
	d := r.Datasets[0]
	if len(d.Series) != 3 {
		t.Fatalf("series = %d, want 3 methods", len(d.Series))
	}
	for _, s := range d.Series {
		if len(s.Points) != o.Epochs {
			t.Errorf("%s has %d points, want %d", s.Method, len(s.Points), o.Epochs)
		}
		last := 0.0
		for _, p := range s.Points {
			if p.Seconds < last {
				t.Errorf("%s time not monotone", s.Method)
			}
			last = p.Seconds
			if p.F1 < 0 || p.F1 > 1 {
				t.Errorf("%s F1 %v out of range", s.Method, p.F1)
			}
		}
	}
	if d.PaperSpeedup != 1.9 {
		t.Errorf("paper speedup for ppi = %v", d.PaperSpeedup)
	}
	if !strings.Contains(r.String(), "proposed") {
		t.Error("String() missing method name")
	}
}

func TestFig3Quick(t *testing.T) {
	r, err := RunFig3(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 1 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	c := r.Curves[0]
	if len(c.Points) != 2 {
		t.Fatalf("points = %d", len(c.Points))
	}
	p1, p4 := c.Points[0], c.Points[1]
	if p1.Cores != 1 || p4.Cores != 4 {
		t.Fatalf("cores = %d,%d", p1.Cores, p4.Cores)
	}
	if math.Abs(p1.IterSpeedup-1) > 0.05 {
		t.Errorf("1-core iteration speedup = %.3f, want ~1", p1.IterSpeedup)
	}
	if p4.IterSpeedup < 1.5 {
		t.Errorf("4-core iteration speedup = %.3f, want > 1.5", p4.IterSpeedup)
	}
	if p4.FeatSpeedup < 1.5 || p4.WeightSpeedup < 1.5 {
		t.Errorf("component speedups too low: feat %.2f weight %.2f", p4.FeatSpeedup, p4.WeightSpeedup)
	}
	var sum float64
	for _, f := range p4.Breakdown {
		if f < 0 || f > 1 {
			t.Errorf("breakdown fraction %v out of range", f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("breakdown sums to %v", sum)
	}
}

func TestFig4Quick(t *testing.T) {
	r, err := RunFig4(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.A) != 1 || len(r.B) != 1 {
		t.Fatalf("series A=%d B=%d", len(r.A), len(r.B))
	}
	a := r.A[0]
	if a.Speedups[0] < 0.5 || a.Speedups[0] > 1.5 {
		t.Errorf("p_inter=1 speedup = %.2f, want ~1", a.Speedups[0])
	}
	if a.Speedups[1] <= a.Speedups[0] {
		t.Errorf("speedup not increasing with p_inter: %v", a.Speedups)
	}
	for _, g := range r.B[0].Gains {
		if g < 1 || g > 8 {
			t.Errorf("lane gain %v outside (1, 8]", g)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	r, err := RunTable2(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Speedups) != len(r.Layers) {
		t.Fatalf("rows = %d, layers = %d", len(r.Speedups), len(r.Layers))
	}
	// Deeper GCN must widen the gap (neighbor explosion).
	lastLayerRow := r.Speedups[len(r.Speedups)-1]
	firstLayerRow := r.Speedups[0]
	if lastLayerRow[0] <= firstLayerRow[0] {
		t.Errorf("speedup does not grow with depth: L1 %.2f vs L%d %.2f",
			firstLayerRow[0], r.Layers[len(r.Layers)-1], lastLayerRow[0])
	}
	// Explosion is visible in the baseline batch node counts.
	if len(r.BatchNodes) >= 2 && r.BatchNodes[1] <= r.BatchNodes[0] {
		t.Errorf("batch nodes not exploding: %v", r.BatchNodes)
	}
	if !strings.Contains(r.String(), "Table II") {
		t.Error("String() missing header")
	}
}

func TestTheorem1Quick(t *testing.T) {
	r, err := RunTheorem1(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ProbeRate) != len(r.Etas) {
		t.Fatalf("probe rates = %d", len(r.ProbeRate))
	}
	// Probe rate should grow with eta (sparser dashboard).
	if r.ProbeRate[len(r.ProbeRate)-1] < r.ProbeRate[0] {
		t.Errorf("probe rate not increasing with eta: %v", r.ProbeRate)
	}
	// Cleanups should shrink with eta.
	if r.Cleanups[0] < r.Cleanups[len(r.Cleanups)-1] {
		t.Errorf("cleanups not decreasing with eta: %v", r.Cleanups)
	}
}

func TestTheorem2Quick(t *testing.T) {
	r, err := RunTheorem2(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.ApproxRatio > 2+1e-9 && r.Feasible {
		t.Errorf("feasible config with approx ratio %.3f > 2", r.ApproxRatio)
	}
	if r.VolumeFOnly < r.LowerBound {
		t.Errorf("volume %.0f below lower bound %.0f", r.VolumeFOnly, r.LowerBound)
	}
	if r.VolumeBest > 0 && r.VolumeFOnly > 2*r.VolumeBest*(1+1e-9) {
		t.Errorf("feature-only exceeds 2x optimum: %.0f vs %.0f", r.VolumeFOnly, r.VolumeBest)
	}
}

func TestMeasureSamplerComparison(t *testing.T) {
	ds, err := LoadPreset("ppi", 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := MeasureSamplerComparison(ds, 3)
	if fast <= 0 || slow <= 0 {
		t.Fatalf("non-positive timings: %v %v", fast, slow)
	}
	// The Dashboard should beat the naive O(m*n) implementation.
	if fast > slow {
		t.Logf("note: dashboard %v slower than naive %v on this tiny graph", fast, slow)
	}
}

func TestExperimentNamesRunAll(t *testing.T) {
	names := ExperimentNames()
	if len(names) < 7 {
		t.Fatalf("names = %v", names)
	}
	var buf bytes.Buffer
	o := quickOptions()
	o.Epochs = 1
	if err := RunExperiment("all", o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, h := range []string{"Table I", "Figure 2", "Figure 3", "Figure 4", "Table II", "Theorem 1", "Theorem 2"} {
		if !strings.Contains(out, h) {
			t.Errorf("'all' output missing %q", h)
		}
	}
}

func TestAbout(t *testing.T) {
	if !strings.Contains(About(), Version) {
		t.Error("About() missing version")
	}
}

func TestSamplerAblationQuick(t *testing.T) {
	o := quickOptions()
	o.Epochs = 2
	r, err := RunSamplerAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 samplers", len(r.Rows))
	}
	var frontier, randomNode *SamplerAblationRow
	for i := range r.Rows {
		if r.Rows[i].ValF1 < 0 || r.Rows[i].ValF1 > 1 {
			t.Errorf("%s F1 out of range: %v", r.Rows[i].Sampler, r.Rows[i].ValF1)
		}
		switch r.Rows[i].Sampler {
		case "frontier":
			frontier = &r.Rows[i]
		case "random-node":
			randomNode = &r.Rows[i]
		}
	}
	if frontier == nil || randomNode == nil {
		t.Fatal("expected frontier and random-node rows")
	}
	// Section III-C: frontier preserves connectivity better than
	// uniform vertex sampling.
	if frontier.LCCFrac <= randomNode.LCCFrac {
		t.Errorf("frontier LCC %.3f <= random-node %.3f", frontier.LCCFrac, randomNode.LCCFrac)
	}
}

func TestTrainUntil(t *testing.T) {
	ds := GenerateDataset(DatasetConfig{
		Name: "tu", Vertices: 500, TargetEdges: 5000,
		FeatureDim: 12, NumClasses: 4, Homophily: 0.85, Seed: 5,
	})
	model := NewModel(ds, Config{Layers: 2, Hidden: 12, FrontierM: 30, Budget: 150, Workers: 1, Seed: 3})
	tr := NewTrainer(ds, model)
	epochs, elapsed, f1 := tr.TrainUntil(0.5, 30)
	if f1 < 0.5 {
		t.Fatalf("TrainUntil stopped at F1 %.3f after %d epochs", f1, epochs)
	}
	if epochs >= 30 {
		t.Errorf("needed all %d epochs to reach 0.5", epochs)
	}
	if elapsed <= 0 {
		t.Error("non-positive training time")
	}
	// Unreachable target exhausts the budget.
	epochs, _, _ = tr.TrainUntil(2.0, 3)
	if epochs != 3 {
		t.Errorf("unreachable target ran %d epochs, want 3", epochs)
	}
}

func TestDatasetWriteReadFacade(t *testing.T) {
	ds, err := LoadPreset("ppi", 0.005, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ds.gsg"
	if err := WriteDataset(ds, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.NumEdges() != ds.G.NumEdges() {
		t.Error("facade round trip lost edges")
	}
}
