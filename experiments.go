package gsgcn

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
)

// ExpOptions controls the experiment drivers that regenerate the
// paper's tables and figures. The defaults run every experiment at a
// reduced dataset scale so the full suite completes on a laptop; set
// Scale to 1 (and accept hours of runtime plus tens of GB of memory)
// to run at the paper's full Table I sizes.
type ExpOptions struct {
	// Scale multiplies the Table I vertex/edge budgets.
	Scale float64
	// Datasets restricts which presets run (default: all four).
	Datasets []string
	// Cores is the simulated-core sweep of the scaling figures.
	Cores []int
	// HiddenDims is Fig. 3's hidden-dimension sweep (paper: 512, 1024).
	HiddenDims []int
	// Epochs bounds Fig. 2 training.
	Epochs int
	// Hidden is the hidden dimension for training experiments (Fig. 2).
	Hidden int
	// Sim configures the simulated multicore executor.
	Sim perf.SimConfig
	// Workers is the real goroutine budget for training experiments
	// (0 = GOMAXPROCS). The scaling figures still sweep *simulated*
	// cores via Cores; Workers controls actual wall-clock parallelism.
	// Every kernel is worker-invariant, so results are identical at
	// any setting — only speed changes.
	Workers int
	// Seed makes the whole suite reproducible.
	Seed uint64
	// Quick shrinks everything further for unit tests.
	Quick bool
}

// DefaultOptions returns the bench-sized configuration.
func DefaultOptions() ExpOptions {
	return ExpOptions{
		Scale:      0.05,
		Datasets:   PresetNames(),
		Cores:      []int{1, 5, 10, 20, 40},
		HiddenDims: []int{512, 1024},
		Epochs:     8,
		Hidden:     64,
		Sim:        perf.DefaultSim,
		Seed:       1,
	}
}

// quickOptions returns the test-sized configuration.
func quickOptions() ExpOptions {
	o := DefaultOptions()
	o.Scale = 0.004
	o.Datasets = []string{"ppi"}
	o.Cores = []int{1, 4}
	o.HiddenDims = []int{32}
	o.Epochs = 2
	o.Hidden = 16
	o.Quick = true
	return o
}

// QuickOptions exposes the test-sized configuration for examples and
// smoke runs.
func QuickOptions() ExpOptions { return quickOptions() }

func (o ExpOptions) normalized() ExpOptions {
	d := DefaultOptions()
	if o.Scale == 0 {
		o.Scale = d.Scale
	}
	if len(o.Datasets) == 0 {
		o.Datasets = d.Datasets
	}
	if len(o.Cores) == 0 {
		o.Cores = d.Cores
	}
	if len(o.HiddenDims) == 0 {
		o.HiddenDims = d.HiddenDims
	}
	if o.Epochs == 0 {
		o.Epochs = d.Epochs
	}
	if o.Hidden == 0 {
		o.Hidden = d.Hidden
	}
	if o.Sim.BarrierNS == 0 && o.Sim.SocketCores == 0 {
		o.Sim = d.Sim
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// loadDataset memoizes dataset generation per (name, scale, seed)
// within one experiment run.
type datasetCache struct {
	opts ExpOptions
	m    map[string]*Dataset
}

func newDatasetCache(o ExpOptions) *datasetCache {
	return &datasetCache{opts: o, m: map[string]*Dataset{}}
}

func (c *datasetCache) get(name string) (*Dataset, error) {
	if d, ok := c.m[name]; ok {
		return d, nil
	}
	d, err := LoadPreset(name, c.opts.Scale, c.opts.Seed)
	if err != nil {
		return nil, err
	}
	c.m[name] = d
	return d, nil
}

// trainParams derives sampler sizes proportional to the (scaled)
// graph so experiments behave uniformly across presets.
func trainParams(ds *Dataset, o ExpOptions) (frontierM, budget int) {
	v := ds.G.NumVertices()
	frontierM = v / 50
	if frontierM < 25 {
		frontierM = 25
	}
	if frontierM > 1000 {
		frontierM = 1000 // the paper's m
	}
	budget = v / 8
	if budget < 8*frontierM {
		budget = 8 * frontierM
	}
	if budget > v {
		budget = v
	}
	return
}

// RunExperiment dispatches an experiment by name ("table1", "fig2",
// "fig3", "fig4", "table2", "theorem1", "theorem2", "all") and writes
// its report to w.
func RunExperiment(name string, o ExpOptions, w io.Writer) error {
	o = o.normalized()
	switch strings.ToLower(name) {
	case "table1":
		r, err := RunTable1(o)
		if err != nil {
			return err
		}
		fmt.Fprint(w, r.String())
	case "fig2":
		r, err := RunFig2(o)
		if err != nil {
			return err
		}
		fmt.Fprint(w, r.String())
	case "fig3":
		r, err := RunFig3(o)
		if err != nil {
			return err
		}
		fmt.Fprint(w, r.String())
	case "fig4":
		r, err := RunFig4(o)
		if err != nil {
			return err
		}
		fmt.Fprint(w, r.String())
	case "table2":
		r, err := RunTable2(o)
		if err != nil {
			return err
		}
		fmt.Fprint(w, r.String())
	case "theorem1":
		r, err := RunTheorem1(o)
		if err != nil {
			return err
		}
		fmt.Fprint(w, r.String())
	case "theorem2":
		r, err := RunTheorem2(o)
		if err != nil {
			return err
		}
		fmt.Fprint(w, r.String())
	case "samplers":
		r, err := RunSamplerAblation(o)
		if err != nil {
			return err
		}
		fmt.Fprint(w, r.String())
	case "all":
		for _, e := range ExperimentNames() {
			if e == "all" {
				continue
			}
			fmt.Fprintf(w, "=== %s ===\n", e)
			if err := RunExperiment(e, o, w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	default:
		return fmt.Errorf("gsgcn: unknown experiment %q (want %s)",
			name, strings.Join(ExperimentNames(), "|"))
	}
	return nil
}

// ExperimentNames lists the runnable experiments.
func ExperimentNames() []string {
	return []string{"table1", "fig2", "fig3", "fig4", "table2", "theorem1", "theorem2", "samplers", "all"}
}

// rngFor builds a deterministic RNG from a seed.
func rngFor(seed uint64) *rng.RNG { return rng.New(seed) }

// seconds formats a duration as fractional seconds.
func seconds(d time.Duration) float64 { return d.Seconds() }

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
