package gsgcn

import (
	"fmt"
	"math"
	"strings"
	"time"

	"gsgcn/internal/baseline"
	"gsgcn/internal/core"
)

// Fig2Point is one (cumulative training time, validation F1) sample.
type Fig2Point struct {
	Seconds float64
	F1      float64
}

// Fig2Series is one method's time-accuracy curve.
type Fig2Series struct {
	Method string
	Points []Fig2Point
}

// Fig2Dataset holds one dataset's curves and the derived serial
// training-time speedup (paper Section VI-B: 1.9x / 7.8x / 4.7x /
// 2.1x on PPI / Reddit / Yelp / Amazon).
type Fig2Dataset struct {
	Dataset      string
	Series       []Fig2Series
	Threshold    float64 // best-baseline F1 minus 0.0025
	Speedup      float64 // baseline-to-threshold time / ours-to-threshold time
	PaperSpeedup float64
}

// Fig2Result reproduces Figure 2: sequential time-accuracy curves for
// the proposed graph-sampling GCN vs GraphSAGE-style layer sampling
// vs full-batch ("Batched") GCN.
type Fig2Result struct {
	Datasets []Fig2Dataset
	Epochs   int
	Hidden   int
}

var fig2PaperSpeedups = map[string]float64{
	"ppi": 1.9, "reddit": 7.8, "yelp": 4.7, "amazon": 2.1,
}

// RunFig2 trains all three methods sequentially (Workers = 1, as in
// the paper's single-thread comparison) and records time-accuracy
// curves.
func RunFig2(o ExpOptions) (*Fig2Result, error) {
	o = o.normalized()
	cache := newDatasetCache(o)
	res := &Fig2Result{Epochs: o.Epochs, Hidden: o.Hidden}
	for _, name := range o.Datasets {
		ds, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		dr := Fig2Dataset{Dataset: name, PaperSpeedup: fig2PaperSpeedups[name]}

		// One learning rate per dataset, shared by all three methods
		// so the comparison isolates the batching policy. Multi-label
		// BCE over 100+ sparse classes needs a hotter rate to make
		// progress within the epoch budget.
		lr := 0.01
		if ds.MultiLabel {
			lr = 0.04
		}
		dr.Series = append(dr.Series, runProposedCurve(ds, o, lr))
		dr.Series = append(dr.Series, runSAGECurve(ds, o, lr))
		dr.Series = append(dr.Series, runFullBatchCurve(ds, o, lr))

		dr.Threshold, dr.Speedup = fig2Speedup(dr.Series)
		res.Datasets = append(res.Datasets, dr)
	}
	return res, nil
}

func runProposedCurve(ds *Dataset, o ExpOptions, lr float64) Fig2Series {
	m, budget := trainParams(ds, o)
	cfg := core.Config{
		Layers: 2, Hidden: o.Hidden, LR: lr,
		FrontierM: m, Budget: budget,
		PInter: 1, Workers: 1, Seed: o.Seed,
	}
	model := core.NewModel(ds, cfg)
	tr := core.NewTrainer(ds, model)
	s := Fig2Series{Method: "proposed"}
	var elapsed time.Duration
	for e := 0; e < o.Epochs; e++ {
		start := time.Now()
		tr.Epoch()
		elapsed += time.Since(start)
		s.Points = append(s.Points, Fig2Point{seconds(elapsed), tr.Evaluate(ds.ValIdx)})
	}
	return s
}

func runSAGECurve(ds *Dataset, o ExpOptions, lr float64) Fig2Series {
	cfg := baseline.SAGEConfig{
		Layers: 2, Hidden: o.Hidden, DLS: 10,
		Batch: 256, LR: lr, Seed: o.Seed, Workers: 1,
	}
	if cfg.Batch > len(ds.TrainIdx) {
		cfg.Batch = len(ds.TrainIdx)
	}
	s := baseline.NewSAGE(ds, cfg)
	series := Fig2Series{Method: "graphsage"}
	stepsPerEpoch := (len(ds.TrainIdx) + cfg.Batch - 1) / cfg.Batch
	var elapsed time.Duration
	for e := 0; e < o.Epochs; e++ {
		start := time.Now()
		for i := 0; i < stepsPerEpoch; i++ {
			s.Step()
		}
		elapsed += time.Since(start)
		series.Points = append(series.Points, Fig2Point{seconds(elapsed), s.Evaluate(ds.ValIdx)})
	}
	return series
}

func runFullBatchCurve(ds *Dataset, o ExpOptions, lr float64) Fig2Series {
	fb := baseline.NewFullBatch(ds, core.Config{
		Layers: 2, Hidden: o.Hidden, LR: lr, Workers: 1, Seed: o.Seed,
	})
	series := Fig2Series{Method: "batched-gcn"}
	var elapsed time.Duration
	for e := 0; e < o.Epochs; e++ {
		start := time.Now()
		fb.Step()
		elapsed += time.Since(start)
		series.Points = append(series.Points, Fig2Point{seconds(elapsed), fb.Evaluate(ds.ValIdx)})
	}
	return series
}

// fig2Speedup derives the paper's serial-speedup metric: let a0 be
// the highest F1 any baseline reaches; the threshold is a0 - 0.0025;
// the speedup is (earliest baseline time to threshold) / (earliest
// proposed time to threshold). Returns speedup 0 when the proposed
// method never reaches the threshold.
func fig2Speedup(series []Fig2Series) (threshold, speedup float64) {
	var a0 float64
	for _, s := range series {
		if s.Method == "proposed" {
			continue
		}
		for _, p := range s.Points {
			if p.F1 > a0 {
				a0 = p.F1
			}
		}
	}
	threshold = a0 - 0.0025
	timeTo := func(s Fig2Series) float64 {
		for _, p := range s.Points {
			if p.F1 >= threshold {
				return p.Seconds
			}
		}
		return math.Inf(1)
	}
	baselineBest := math.Inf(1)
	oursTime := math.Inf(1)
	for _, s := range series {
		t := timeTo(s)
		if s.Method == "proposed" {
			oursTime = t
		} else if t < baselineBest {
			baselineBest = t
		}
	}
	if math.IsInf(oursTime, 1) || math.IsInf(baselineBest, 1) {
		return threshold, 0
	}
	if oursTime <= 0 {
		oursTime = 1e-9
	}
	return threshold, baselineBest / oursTime
}

// String renders the curves and derived speedups.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: sequential time-accuracy (2-layer GCN, hidden=%d, %d epochs)\n", r.Hidden, r.Epochs)
	for _, d := range r.Datasets {
		fmt.Fprintf(&b, "\n[%s]  threshold=%.4f  serial speedup ours-vs-best-baseline=%.2fx (paper: %.1fx)\n",
			d.Dataset, d.Threshold, d.Speedup, d.PaperSpeedup)
		for _, s := range d.Series {
			fmt.Fprintf(&b, "  %-12s", s.Method)
			for _, p := range s.Points {
				fmt.Fprintf(&b, " (%.2fs, %.3f)", p.Seconds, p.F1)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}
