package gsgcn

import (
	"fmt"
	"strings"
)

// Table1Row pairs the paper's published dataset statistics with the
// statistics of the generated stand-in at the requested scale.
type Table1Row struct {
	Name       string
	PaperV     int
	PaperE     int64
	GenV       int
	GenE       int64
	AttrDim    int
	Classes    int
	MultiLabel bool
	AvgDegree  float64
	MaxDegree  int
	LCCFrac    float64
}

// Table1Result reproduces Table I: dataset statistics.
type Table1Result struct {
	Scale float64
	Rows  []Table1Row
}

// paper's Table I reference values.
var table1Paper = map[string]struct {
	v int
	e int64
}{
	"ppi":    {14755, 225270},
	"reddit": {232965, 11606919},
	"yelp":   {716847, 6977410},
	"amazon": {1598960, 132169734},
}

// RunTable1 generates each preset at o.Scale and gathers statistics.
func RunTable1(o ExpOptions) (*Table1Result, error) {
	o = o.normalized()
	cache := newDatasetCache(o)
	res := &Table1Result{Scale: o.Scale}
	for _, name := range o.Datasets {
		ds, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		stats := ds.G.ComputeStats(true)
		ref := table1Paper[name]
		res.Rows = append(res.Rows, Table1Row{
			Name:       name,
			PaperV:     ref.v,
			PaperE:     ref.e,
			GenV:       stats.Vertices,
			GenE:       stats.Edges,
			AttrDim:    ds.FeatureDim(),
			Classes:    ds.NumClasses,
			MultiLabel: ds.MultiLabel,
			AvgDegree:  stats.AvgDegree,
			MaxDegree:  stats.MaxDegree,
			LCCFrac:    stats.LCCFrac,
		})
	}
	return res, nil
}

// String renders the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: dataset statistics (synthetic stand-ins at scale %.3g)\n", r.Scale)
	fmt.Fprintf(&b, "%-8s %12s %14s %10s %12s %6s %8s %6s %8s %8s %8s\n",
		"Dataset", "Paper |V|", "Paper |E|", "Gen |V|", "Gen |E|", "Attr", "Classes", "Label", "AvgDeg", "MaxDeg", "LCC")
	for _, row := range r.Rows {
		label := "(S)"
		if row.MultiLabel {
			label = "(M)"
		}
		fmt.Fprintf(&b, "%-8s %12d %14d %10d %12d %6d %8d %6s %8.2f %8d %8.3f\n",
			row.Name, row.PaperV, row.PaperE, row.GenV, row.GenE,
			row.AttrDim, row.Classes, label, row.AvgDegree, row.MaxDegree, row.LCCFrac)
	}
	return b.String()
}
