package gsgcn

import (
	"fmt"
	"strings"
	"time"

	"gsgcn/internal/mat"
	"gsgcn/internal/partition"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
	"gsgcn/internal/sampler"
)

// Fig3Point is one simulated-core-count measurement.
type Fig3Point struct {
	Cores         int
	IterSpeedup   float64 // Fig. 3A: whole-iteration speedup
	FeatSpeedup   float64 // Fig. 3B: feature-propagation speedup
	WeightSpeedup float64 // Fig. 3C: weight-application speedup
	// Breakdown is the share of iteration time spent in
	// [sampling, feature propagation, weight application] (Fig. 3D).
	Breakdown [3]float64
}

// Fig3Curve is one (dataset, hidden-dimension) scaling series.
type Fig3Curve struct {
	Dataset string
	Hidden  int
	Points  []Fig3Point
}

// Fig3Result reproduces Figure 3: training-step scaling and its
// execution-time breakdown, for each hidden dimension.
type Fig3Result struct {
	Curves []Fig3Curve
	Cores  []int
}

// fig3Budget caps the subgraph size for the scaling runs; Fig. 3
// measures per-iteration kernel scaling, which is size-stationary, so
// a moderate subgraph keeps the sweep tractable while preserving the
// paper's matrix shapes (hidden 512/1024, real attribute widths).
const fig3Budget = 2000

// RunFig3 measures one training iteration's three phases — sampling,
// feature propagation, weight application — decomposed into
// max(Cores) shards, then reports the simulated speedup at every
// requested core count (see perf.GroupWall for the model).
func RunFig3(o ExpOptions) (*Fig3Result, error) {
	o = o.normalized()
	cache := newDatasetCache(o)
	res := &Fig3Result{Cores: o.Cores}
	maxP := maxInt(o.Cores)
	for _, name := range o.Datasets {
		ds, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		for _, hidden := range o.HiddenDims {
			curve := fig3Curve(ds, hidden, o, maxP)
			res.Curves = append(res.Curves, curve)
		}
	}
	return res, nil
}

func fig3Curve(ds *Dataset, hidden int, o ExpOptions, maxP int) Fig3Curve {
	m, budget := trainParams(ds, o)
	if budget > fig3Budget && !o.Quick {
		budget = fig3Budget
	}
	if o.Quick && budget > 400 {
		budget = 400
	}
	if m > budget/4 {
		m = budget / 4
	}
	fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: 2}
	r := rng.NewStream(o.Seed, 0xF163)
	sub := sampler.SampleSubgraph(ds.G, fr, r)
	n := sub.N
	f0 := ds.FeatureDim()

	// --- Sampling: one instance per simulated core. -----------------
	sampleTimes := perf.SimShardTimes(maxP, func(i int) {
		rr := rng.NewStream(o.Seed, 1000+i)
		_ = sampler.SampleSubgraph(ds.G, fr, rr)
	})

	// --- Feature propagation: Q feature chunks per layer, forward
	// (NormDst) and backward (NormSrc). Chunk count fixed at the
	// Theorem 2 value for maxP cores; GroupWall folds chunks onto
	// fewer cores. ------------------------------------------------
	layers := 2
	dims := layerDims(f0, hidden, layers)
	cm := partition.CommModel{N: n, AvgDeg: sub.AvgDegree(), F: f0, Cores: maxP, CacheBytes: 256 << 10}
	q := cm.OptimalQ()
	if q < maxP {
		q = maxP
	}
	featTimes := make([]time.Duration, q)
	for _, in := range dims {
		src := randomDense(r, n, in)
		dst := mat.New(n, in)
		for _, norm := range []partition.Norm{partition.NormDst, partition.NormSrc} {
			ts := perf.SimShardTimes(q, func(i int) {
				lo := i * in / q
				hi := (i + 1) * in / q
				if lo < hi {
					partition.PropagateRange(dst, src, sub.CSR, norm, lo, hi)
				}
			})
			for i, t := range ts {
				featTimes[i] += t
			}
		}
	}

	// --- Weight application: every GEMM of forward + backward,
	// row-sharded into maxP pieces. ---------------------------------
	weightTimes := make([]time.Duration, maxP)
	classes := ds.NumClasses
	for _, in := range dims {
		// Forward: two GEMMs (self, neigh) of shape (n,in)x(in,h).
		addGEMM(weightTimes, r, maxP, n, in, hidden)
		addGEMM(weightTimes, r, maxP, n, in, hidden)
		// Backward: two dW GEMMs (in,n)x(n,h) and two dH GEMMs
		// (n,h)x(h,in) modeled at identical FLOP counts.
		addGEMM(weightTimes, r, maxP, in, n, hidden)
		addGEMM(weightTimes, r, maxP, in, n, hidden)
		addGEMM(weightTimes, r, maxP, n, hidden, in)
		addGEMM(weightTimes, r, maxP, n, hidden, in)
	}
	headIn := 2 * hidden
	addGEMM(weightTimes, r, maxP, n, headIn, classes) // logits
	addGEMM(weightTimes, r, maxP, headIn, n, classes) // dW
	addGEMM(weightTimes, r, maxP, n, classes, headIn) // dH

	// --- Fold into per-core-count results. --------------------------
	curve := Fig3Curve{Dataset: ds.Name, Hidden: hidden}
	featSerial := perf.GroupWall(featTimes, 1, o.Sim).Wall
	weightSerial := perf.GroupWall(weightTimes, 1, o.Sim).Wall
	sampleSerial := samplePerIter(sampleTimes, 1, o.Sim)
	iterSerial := featSerial + weightSerial + sampleSerial
	for _, p := range o.Cores {
		feat := perf.GroupWall(featTimes, p, o.Sim).Wall
		weight := perf.GroupWall(weightTimes, p, o.Sim).Wall
		sample := samplePerIter(sampleTimes, p, o.Sim)
		iter := feat + weight + sample
		pt := Fig3Point{
			Cores:         p,
			IterSpeedup:   ratio(iterSerial, iter),
			FeatSpeedup:   ratio(featSerial, feat),
			WeightSpeedup: ratio(weightSerial, weight),
		}
		total := float64(iter)
		if total > 0 {
			pt.Breakdown = [3]float64{
				float64(sample) / total,
				float64(feat) / total,
				float64(weight) / total,
			}
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve
}

// samplePerIter returns the amortized per-iteration sampling wall
// time when p sampler instances refill the pool concurrently: the
// refill produces p subgraphs in max-instance time, one consumed per
// iteration.
func samplePerIter(times []time.Duration, p int, cfg perf.SimConfig) time.Duration {
	if p > len(times) {
		p = len(times)
	}
	if p < 1 {
		p = 1
	}
	res := perf.GroupWall(times[:p], p, cfg)
	return res.Wall / time.Duration(p)
}

// layerDims returns the input width of each GCN layer.
func layerDims(f0, hidden, layers int) []int {
	dims := make([]int, layers)
	in := f0
	for l := 0; l < layers; l++ {
		dims[l] = in
		in = 2 * hidden
	}
	return dims
}

// addGEMM measures a (rows x k) x (k x cols) GEMM decomposed into
// maxP row shards and accumulates per-shard times.
func addGEMM(times []time.Duration, r *rng.RNG, maxP, rows, k, cols int) {
	a := randomDense(r, rows, k)
	b := randomDense(r, k, cols)
	dst := mat.New(rows, cols)
	ts := perf.SimShardTimes(maxP, func(i int) {
		lo := i * rows / maxP
		hi := (i + 1) * rows / maxP
		if lo < hi {
			mat.MulRange(dst, a, b, lo, hi)
		}
	})
	for i, t := range ts {
		times[i] += t
	}
}

func randomDense(r *rng.RNG, rows, cols int) *mat.Dense {
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Float64() + 0.1 // strictly positive: no zero-skip shortcuts
	}
	return m
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func maxInt(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// String renders the four panels per hidden dimension.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 3: training scaling (simulated cores; A=iteration, B=feat-prop, C=weight-app speedup; D=breakdown)")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "\n[%s hidden=%d]\n", c.Dataset, c.Hidden)
		fmt.Fprintf(&b, "  %6s %10s %10s %10s   %s\n", "cores", "A:iter", "B:feat", "C:weight", "D:breakdown sample/feat/weight")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  %6d %9.2fx %9.2fx %9.2fx   %.2f / %.2f / %.2f\n",
				p.Cores, p.IterSpeedup, p.FeatSpeedup, p.WeightSpeedup,
				p.Breakdown[0], p.Breakdown[1], p.Breakdown[2])
		}
	}
	return b.String()
}
