// Package gsgcn is the public API of the graph-sampling GCN library,
// a reproduction of "Accurate, Efficient and Scalable Graph
// Embedding" (Zeng, Zhou, Srivastava, Kannan, Prasanna — IPDPS 2019).
//
// The library trains graph convolutional networks by sampling small
// induced subgraphs and building a complete GCN on each one, avoiding
// the neighbor explosion of layer-sampling methods. It bundles:
//
//   - the Dashboard-based parallel frontier sampler (paper §IV),
//   - cache-aware feature-partitioned propagation (paper §V),
//   - the subgraph-pool training scheduler (Algorithm 5),
//   - layer-sampling baselines (GraphSAGE-style, full-batch GCN,
//     FastGCN-style) for comparison,
//   - synthetic dataset presets matching the paper's Table I, and
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation (see RunExperiment).
//
// Quickstart:
//
//	ds, _ := gsgcn.LoadPreset("ppi", 0.05, 0)
//	model := gsgcn.NewModel(ds, gsgcn.Config{Layers: 2, Hidden: 128})
//	tr := gsgcn.NewTrainer(ds, model)
//	for epoch := 0; epoch < 10; epoch++ {
//	    loss := tr.Epoch()
//	    f1 := tr.Evaluate(ds.ValIdx)
//	    fmt.Printf("epoch %d: loss %.4f val-F1 %.4f\n", epoch, loss, f1)
//	}
package gsgcn

import (
	"fmt"
	"io"

	"gsgcn/internal/artifact"
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/obs"
	"gsgcn/internal/sampler"
	"gsgcn/internal/serve"
)

// Re-exported core types. The aliases give downstream users a single
// import while keeping implementation packages internal.
type (
	// Dataset is an attributed, labeled graph with train/val/test splits.
	Dataset = datasets.Dataset
	// DatasetConfig parameterizes synthetic dataset generation.
	DatasetConfig = datasets.Config
	// Config parameterizes model architecture and training.
	Config = core.Config
	// Model is an L-layer graph-sampling GCN.
	Model = core.Model
	// Trainer drives minibatch training via the subgraph pool.
	Trainer = core.Trainer
	// Graph is an undirected CSR graph.
	Graph = graph.CSR
	// Subgraph is a vertex-induced subgraph with original-id mapping.
	Subgraph = graph.Subgraph
	// VertexSampler draws vertex sets for minibatch subgraphs.
	VertexSampler = sampler.VertexSampler
	// FrontierSampler is the paper's Dashboard-based frontier sampler.
	FrontierSampler = sampler.Frontier
	// ServeOptions parameterizes the online inference subsystem.
	ServeOptions = serve.Options
	// InferenceEngine computes and serves full-graph embeddings from a
	// checkpointed model, with atomic hot reload.
	InferenceEngine = serve.Engine
	// InferenceServer is the HTTP/JSON request layer (micro-batching,
	// /embed /predict /topk /healthz /reload) over an InferenceEngine.
	InferenceServer = serve.Server
	// ModelRegistry serves several independent models from one process:
	// each registered model is a full InferenceServer (or a sharded
	// ShardedServer) reached as /models/{name}/…, with the unprefixed
	// routes answering from a configured default model. See docs/API.md
	// for the HTTP surface.
	ModelRegistry = serve.Registry
	// ModelServer is what the registry requires of one registered
	// model; both InferenceServer and ShardedServer implement it.
	ModelServer = serve.ModelServer
	// ShardedServer is the scatter-gather router over N vertex-shard
	// engines: the same HTTP surface as InferenceServer (plus /shards
	// operations), with exact-mode answers byte-identical to a single
	// process at every shard count.
	ShardedServer = serve.Router
	// ServingArtifact is a decoded snapshot artifact: precomputed
	// full-graph embedding table, norms and (optionally) the
	// deterministic HNSW index, with the metadata to validate them
	// against a checkpoint and dataset.
	ServingArtifact = artifact.Snapshot
	// ArtifactMeta identifies what a serving artifact was computed from.
	ArtifactMeta = artifact.Meta
	// MetricsRegistry is the observability plane's metric store:
	// atomic counters, gauges and fixed-bucket histograms rendered in
	// Prometheus text exposition format (served at /metrics). Every
	// model in a ModelRegistry reports into one shared instance.
	MetricsRegistry = obs.Registry
	// StructuredLogger emits JSON-line logs with a process-wide
	// monotonic request-id sequence; wire one into a ModelRegistry
	// with SetAccessLog for per-request access logging.
	StructuredLogger = obs.Logger
	// LogField is one key/value pair of a structured log line.
	LogField = obs.Field
	// ServingDtype selects the resident representation of the serving
	// embedding table (ServeOptions.Dtype): exact answers always read
	// float64 rows regardless of dtype; quantized tables only steer the
	// ANN candidate scan, whose beam is reranked with exact scores.
	ServingDtype = mat.Dtype
)

// The resident representations a serving table can hold.
const (
	// ServingDtypeF64 is the full-precision table (the default).
	ServingDtypeF64 = mat.DtypeF64
	// ServingDtypeF32 adds a half-size float32 copy for ANN scans.
	ServingDtypeF32 = mat.DtypeF32
	// ServingDtypeI8PQ adds an int8 product-quantized codebook —
	// ~one byte per two table columns — for ANN scans.
	ServingDtypeI8PQ = mat.DtypeI8PQ
)

// ParseServingDtype parses a dtype name as the CLIs spell it:
// "f64", "f32" or "i8pq" ("" = f64).
func ParseServingDtype(s string) (ServingDtype, error) { return mat.ParseDtype(s) }

// BuildServingArtifact computes the serving tables for (ds, m) offline
// — exactly the arithmetic a cold server start would run — so they can
// be persisted with WriteServingArtifact and warm-loaded later via
// ServeOptions.ArtifactPath. withIndex additionally builds the
// deterministic HNSW index with the parameters opts implies.
func BuildServingArtifact(ds *Dataset, m *Model, opts ServeOptions, withIndex bool) (*ServingArtifact, error) {
	return serve.BuildSnapshot(ds, m, opts, withIndex)
}

// BuildShardServingArtifacts computes the per-shard artifacts of an
// N-shard serving fleet: one whole-graph table pass, compacted to
// each shard's seed-keyed owned rows, each with its own HNSW index
// when withIndex is set. Write shard i's snapshot to
// ShardArtifactPath(base, i, shards) for a sharded server started
// with ServeOptions.ArtifactPath = base to warm-start from.
func BuildShardServingArtifacts(ds *Dataset, m *Model, opts ServeOptions, withIndex bool, shards int, shardSeed uint64) ([]*ServingArtifact, error) {
	return serve.BuildShardSnapshots(ds, m, opts, withIndex, shards, shardSeed)
}

// ShardArtifactPath is the conventional file path of one shard's
// artifact under a fleet-wide base path: <base>.s<i>of<N>.
func ShardArtifactPath(base string, shard, shards int) string {
	return artifact.ShardPath(base, shard, shards)
}

// WriteServingArtifact atomically writes a serving artifact to path
// and returns its CRC-64/ECMA checksum.
func WriteServingArtifact(path string, s *ServingArtifact) (uint64, error) {
	return artifact.WriteFile(path, s)
}

// WriteArtifactManifest writes the human-readable JSON sidecar next to
// a just-written artifact and returns the manifest path.
func WriteArtifactManifest(artifactPath, checkpointPath string, s *ServingArtifact, checksum uint64) (string, error) {
	return artifact.WriteManifest(artifactPath, checkpointPath, s, checksum)
}

// ReadServingArtifact loads and validates the artifact at path,
// returning the snapshot and its checksum.
func ReadServingArtifact(path string) (*ServingArtifact, uint64, error) {
	return artifact.ReadFile(path)
}

// LoadPreset generates a synthetic dataset matching one of the
// paper's Table I presets ("ppi", "reddit", "yelp", "amazon"), with
// vertex and edge budgets multiplied by scale (1 = full size). A
// non-zero seed overrides the preset's default.
func LoadPreset(name string, scale float64, seed uint64) (*Dataset, error) {
	cfg, err := datasets.Preset(name, scale)
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	return datasets.Generate(cfg), nil
}

// GenerateDataset builds a synthetic dataset from an explicit config.
func GenerateDataset(cfg DatasetConfig) *Dataset { return datasets.Generate(cfg) }

// WriteDataset serializes a dataset to path in the text .gsg format.
func WriteDataset(ds *Dataset, path string) error { return datasets.WriteFile(ds, path) }

// ReadDataset parses a dataset previously written by WriteDataset.
func ReadDataset(path string) (*Dataset, error) { return datasets.ReadFile(path) }

// PresetNames lists the available dataset presets in Table I order.
func PresetNames() []string { return datasets.PresetNames() }

// NewModel constructs a graph-sampling GCN shaped for the dataset.
func NewModel(ds *Dataset, cfg Config) *Model { return core.NewModel(ds, cfg) }

// LoadModel reconstructs a model from a format-v2 checkpoint stream —
// architecture metadata plus weights — without the training dataset.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// LoadModelFile is LoadModel over a checkpoint file.
func LoadModelFile(path string) (*Model, error) { return core.LoadModelFile(path) }

// NewInferenceEngine wires an online inference engine over the
// dataset's graph and features; Install or LoadCheckpoint publishes a
// model before queries can be answered.
func NewInferenceEngine(ds *Dataset, opts ServeOptions) *InferenceEngine {
	return serve.NewEngine(ds, opts)
}

// NewInferenceServer builds the batched HTTP serving layer over ds.
// Call Load with a checkpoint path, then mount it as an http.Handler.
func NewInferenceServer(ds *Dataset, opts ServeOptions) *InferenceServer {
	return serve.NewServer(ds, opts)
}

// NewShardedServer builds a sharded serving fleet over ds: shards
// engines each owning a deterministic, seed-keyed subset of the
// vertices, behind a scatter-gather router with the InferenceServer
// HTTP surface. Call Load with a checkpoint path, then mount it as an
// http.Handler (or register it in a ModelRegistry with AddSharded).
func NewShardedServer(ds *Dataset, opts ServeOptions, shards int, seed uint64) (*ShardedServer, error) {
	return serve.NewRouter(ds, opts, shards, seed)
}

// NewModelRegistry returns an empty multi-model serving registry.
// Register models with Add (datasets with identical content are
// shared between them automatically), pick a default, and mount the
// registry as an http.Handler.
func NewModelRegistry() *ModelRegistry { return serve.NewRegistry() }

// NewMetricsRegistry returns an empty metrics registry — for training
// or embedding use; serving code normally uses the registry a
// ModelRegistry creates itself (ModelRegistry.Metrics).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewStructuredLogger returns a logger writing JSON lines to w.
func NewStructuredLogger(w io.Writer) *StructuredLogger { return obs.NewLogger(w) }

// Log builds one field of a structured log line.
func Log(key string, val any) LogField { return obs.F(key, val) }

// DurationBuckets are histogram bounds suited to long-running work
// (training epochs, index builds): 0.1s to 10 minutes.
var DurationBuckets = obs.DurationBuckets

// DatasetFingerprint hashes a dataset's content — graph structure,
// feature bits and label regime. Models registered over datasets with
// equal fingerprints share one in-memory graph (see ModelRegistry).
func DatasetFingerprint(ds *Dataset) uint64 { return core.DataFingerprint(ds) }

// NewTrainer wires a trainer using the Dashboard frontier sampler.
func NewTrainer(ds *Dataset, m *Model) *Trainer { return core.NewTrainer(ds, m) }

// NewTrainerWithSampler wires a trainer around a custom sampler — the
// hook for studying alternative graph-sampling algorithms (the
// paper's stated future work).
func NewTrainerWithSampler(ds *Dataset, m *Model, s VertexSampler) *Trainer {
	return core.NewTrainerWithSampler(ds, m, s)
}

// NewFrontierSampler returns the paper's Dashboard frontier sampler
// over g with frontier size m and vertex budget n.
func NewFrontierSampler(g *Graph, m, n int) *FrontierSampler {
	return &sampler.Frontier{G: g, M: m, N: n, Eta: 2}
}

// Sample draws one induced subgraph from g using s with the given
// seed.
func Sample(g *Graph, s VertexSampler, seed uint64) *Subgraph {
	return sampler.SampleSubgraph(g, s, rngFor(seed))
}

// Samplers returns the full family of vertex samplers configured for
// graph g with the given budget, keyed by name.
func Samplers(g *Graph, budget int) map[string]VertexSampler {
	m := budget / 8
	if m < 1 {
		m = 1
	}
	return map[string]VertexSampler{
		"frontier":     &sampler.Frontier{G: g, M: m, N: budget, Eta: 2},
		"random-node":  &sampler.RandomNode{G: g, Budget: budget},
		"random-edge":  &sampler.RandomEdge{G: g, Budget: budget},
		"random-walk":  &sampler.RandomWalk{G: g, Walkers: budget / 10, Depth: 9},
		"forest-fire":  &sampler.ForestFire{G: g, Budget: budget},
		"node2vec":     &sampler.Node2VecWalk{G: g, Walkers: budget / 10, Depth: 9, P: 1, Q: 0.5},
		"edge-induced": &sampler.EdgeInduced{G: g, Edges: budget / 2},
	}
}

// Version identifies the library release.
const Version = "1.0.0"

// About returns a one-line description for CLI banners.
func About() string {
	return fmt.Sprintf("gsgcn %s — graph-sampling GCN (IPDPS'19 reproduction)", Version)
}
