// Samplers: the paper's future-work direction — compare graph
// sampling algorithms (frontier, random node/edge/walk, forest fire)
// on two axes: the connectivity they preserve (Section III-C's
// accuracy requirement) and the validation F1 a GCN trained on their
// subgraphs reaches.
package main

import (
	"fmt"
	"log"
	"sort"

	"gsgcn"
)

func main() {
	ds, err := gsgcn.LoadPreset("ppi", 0.05, 0)
	if err != nil {
		log.Fatal(err)
	}
	budget := ds.G.NumVertices() / 4
	family := gsgcn.Samplers(ds.G, budget)

	names := make([]string, 0, len(family))
	for name := range family {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-14s %10s %10s %12s\n", "sampler", "subgraph", "LCC-frac", "val-F1@10ep")
	for _, name := range names {
		s := family[name]

		// Connectivity preservation: fraction of the sampled
		// subgraph inside its largest connected component.
		sub := gsgcn.Sample(ds.G, s, 7)
		lcc := sub.LargestComponentFraction()

		// Train a small GCN with this sampler for a few epochs.
		model := gsgcn.NewModel(ds, gsgcn.Config{
			Layers: 2, Hidden: 64, Budget: budget, FrontierM: budget / 8, Seed: 11,
		})
		tr := gsgcn.NewTrainerWithSampler(ds, model, s)
		for e := 0; e < 10; e++ {
			tr.Epoch()
		}
		f1 := tr.Evaluate(ds.ValIdx)
		fmt.Printf("%-14s %10d %10.3f %12.4f\n", name, sub.N, lcc, f1)
	}
	fmt.Println("\nconnectivity-preserving samplers (frontier, walk, fire) keep LCC-frac high;")
	fmt.Println("uniform random-node sampling fragments the subgraph (Section III-C).")
}
