// Reddit-deep: the paper's Section VI-D "Deeper Learning" scenario —
// train 1-, 2- and 3-layer GCNs on the (scaled) Reddit preset. Layer
// sampling becomes exponentially more expensive with depth; graph
// sampling stays linear, which is why the paper reports a 1306x
// speedup at 3 layers. This example shows our per-epoch time growing
// only linearly with depth while accuracy holds or improves.
package main

import (
	"fmt"
	"log"
	"time"

	"gsgcn"
)

func main() {
	ds, err := gsgcn.LoadPreset("reddit", 0.01, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d vertices, %d edges (single-label, %d classes)\n",
		ds.Name, ds.G.NumVertices(), ds.G.NumEdges(), ds.NumClasses)

	const epochs = 6
	fmt.Printf("%-8s %14s %10s\n", "layers", "sec/epoch", "val-F1")
	for _, layers := range []int{1, 2, 3} {
		model := gsgcn.NewModel(ds, gsgcn.Config{
			Layers: layers, Hidden: 96, Seed: 21,
		})
		tr := gsgcn.NewTrainer(ds, model)
		start := time.Now()
		for e := 0; e < epochs; e++ {
			tr.Epoch()
		}
		perEpoch := time.Since(start).Seconds() / epochs
		f1 := tr.Evaluate(ds.ValIdx)
		fmt.Printf("%-8d %13.2fs %10.4f\n", layers, perEpoch, f1)
	}
	fmt.Println("\nper-epoch cost grows ~linearly with depth: no neighbor explosion.")
}
