// Amazon-skewed: the paper's Section VI-C2 side note — on graphs with
// highly skewed degree distributions (the Amazon co-purchase graph),
// hub vertices dominate the degree-biased frontier sampler, so every
// subgraph contains mostly the same high-degree vertices. Capping the
// Dashboard entries per vertex (the paper uses 30) bounds each hub's
// pop probability, restoring subgraph diversity. This example
// measures hub occupancy across subgraphs and the training effect.
package main

import (
	"fmt"
	"log"
	"sort"

	"gsgcn"
	"gsgcn/internal/rng"
)

func main() {
	ds, err := gsgcn.LoadPreset("amazon", 0.008, 0)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.G.ComputeStats(false)
	fmt.Printf("dataset %s: %d vertices, %d edges, avg degree %.1f, max degree %d (skew %.0fx)\n",
		ds.Name, stats.Vertices, stats.Edges, stats.AvgDegree, stats.MaxDegree,
		float64(stats.MaxDegree)/stats.AvgDegree)

	// The 50 highest-degree vertices.
	type dv struct {
		v   int32
		deg int
	}
	hubs := make([]dv, ds.G.NumVertices())
	for v := range hubs {
		hubs[v] = dv{int32(v), ds.G.Degree(int32(v))}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].deg > hubs[j].deg })
	topHubs := map[int32]bool{}
	for _, h := range hubs[:50] {
		topHubs[h.v] = true
	}

	budget := ds.G.NumVertices() / 8
	const trials = 20
	fmt.Printf("\n%-10s %18s %12s\n", "deg-cap", "hub-mass", "val-F1@6ep")
	for _, cap := range []int{0, 30} {
		s := gsgcn.NewFrontierSampler(ds.G, budget/8, budget)
		s.DegCap = cap

		// Hub mass: across `trials` runs, the fraction of sampled
		// vertex slots (the pre-induction multiset) occupied by the
		// top-50 hubs. High mass means the sampler keeps re-popping
		// the same few vertices, so subgraphs repeat content.
		occ := 0.0
		for t := 0; t < trials; t++ {
			vs := s.SampleVertices(rngFor(uint64(t + 1)))
			hit := 0
			for _, v := range vs {
				if topHubs[v] {
					hit++
				}
			}
			occ += float64(hit) / float64(len(vs))
		}
		occ /= trials

		model := gsgcn.NewModel(ds, gsgcn.Config{
			Layers: 2, Hidden: 64, LR: 0.04, Budget: budget, FrontierM: budget / 8,
			DegCap: cap, Seed: 31,
		})
		tr := gsgcn.NewTrainer(ds, model)
		for e := 0; e < 6; e++ {
			tr.Epoch()
		}
		f1 := tr.Evaluate(ds.ValIdx)
		capLabel := "none"
		if cap > 0 {
			capLabel = fmt.Sprint(cap)
		}
		fmt.Printf("%-10s %17.1f%% %12.4f\n", capLabel, occ*100, f1)
	}
	fmt.Println("\nthe cap bounds how often hubs are re-popped, so subgraphs stop repeating content (Section VI-C2).")
}

// rngFor builds the deterministic RNG the sampler consumes.
func rngFor(seed uint64) *rng.RNG { return rng.New(seed) }
