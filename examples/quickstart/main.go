// Quickstart: train a 2-layer graph-sampling GCN on the scaled PPI
// preset and print per-epoch progress — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"gsgcn"
)

func main() {
	// Load a synthetic stand-in for the PPI protein-interaction graph
	// (multi-label, 121 classes) at 5% of the paper's Table I size.
	ds, err := gsgcn.LoadPreset("ppi", 0.05, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d vertices, %d edges, %d attrs, %d classes\n",
		ds.Name, ds.G.NumVertices(), ds.G.NumEdges(), ds.FeatureDim(), ds.NumClasses)

	// A 2-layer GCN; every minibatch is a frontier-sampled subgraph.
	model := gsgcn.NewModel(ds, gsgcn.Config{Layers: 2, Hidden: 128, LR: 0.02})
	fmt.Println(model)

	tr := gsgcn.NewTrainer(ds, model)
	for epoch := 1; epoch <= 30; epoch++ {
		loss := tr.Epoch()
		f1 := tr.Evaluate(ds.ValIdx)
		fmt.Printf("epoch %d: loss %.4f, val micro-F1 %.4f\n", epoch, loss, f1)
	}
	fmt.Printf("final test micro-F1: %.4f\n", tr.Evaluate(ds.TestIdx))
}
