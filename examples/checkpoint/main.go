// Checkpoint: train, save, restore and resume a graph-sampling GCN —
// the persistence workflow a downstream user needs for long training
// runs on Table-I-scale graphs.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gsgcn"
)

func main() {
	ds, err := gsgcn.LoadPreset("ppi", 0.05, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gsgcn.Config{
		Layers: 2, Hidden: 96, LR: 0.03,
		DropRate: 0.1, WeightDecay: 1e-5, Seed: 7,
	}

	// Phase 1: train half the budget and checkpoint.
	model := gsgcn.NewModel(ds, cfg)
	tr := gsgcn.NewTrainer(ds, model)
	for e := 0; e < 10; e++ {
		tr.Epoch()
	}
	mid := tr.Evaluate(ds.ValIdx)
	dir, err := os.MkdirTemp("", "gsgcn-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")
	if err := model.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint after 10 epochs: val-F1 %.4f -> %s\n", mid, path)

	// Phase 2: a fresh process restores the weights and continues.
	restored := gsgcn.NewModel(ds, cfg)
	if err := restored.LoadFile(path); err != nil {
		log.Fatal(err)
	}
	tr2 := gsgcn.NewTrainer(ds, restored)
	if f1 := tr2.Evaluate(ds.ValIdx); f1 != mid {
		log.Fatalf("restored model evaluates to %.4f, expected %.4f", f1, mid)
	}
	fmt.Println("restored model reproduces the checkpointed accuracy exactly")

	for e := 0; e < 10; e++ {
		tr2.Epoch()
	}
	final := tr2.Evaluate(ds.ValIdx)
	fmt.Printf("resumed training: val-F1 %.4f -> %.4f (test %.4f)\n",
		mid, final, tr2.Evaluate(ds.TestIdx))
	if final <= mid {
		fmt.Println("note: resumed run did not improve further on this tiny preset")
	}
}
