// Serve: the full train → checkpoint → serve → hot-reload loop in one
// process — the online-inference counterpart of examples/quickstart.
//
// It trains a small model, saves a checkpoint, mounts the batched
// HTTP serving layer on an ephemeral port, queries /embed, /predict
// and /topk, then trains further, saves again and hot-reloads the
// server, showing the snapshot version advance without restarting.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"gsgcn"
)

func main() {
	ds, err := gsgcn.LoadPreset("ppi", 0.02, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gsgcn.Config{Layers: 2, Hidden: 32, LR: 0.02, Seed: 7}
	model := gsgcn.NewModel(ds, cfg)
	tr := gsgcn.NewTrainer(ds, model)
	for e := 0; e < 5; e++ {
		tr.Epoch()
	}
	fmt.Printf("trained 5 epochs: val-F1 %.4f\n", tr.Evaluate(ds.ValIdx))

	dir, err := os.MkdirTemp("", "gsgcn-serve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "model.ckpt")
	model.ModelVersion = uint64(tr.Steps())
	if err := model.SaveFile(ckpt); err != nil {
		log.Fatal(err)
	}

	// Mount the serving layer on an ephemeral port.
	srv := gsgcn.NewInferenceServer(ds, gsgcn.ServeOptions{})
	defer srv.Close()
	if _, err := srv.Load(ckpt); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()

	get := func(path string) map[string]any {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			log.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			log.Fatal(err)
		}
		return out
	}

	health := get("/healthz")
	fmt.Printf("healthz: status=%v version=%v model_version=%v dim=%v\n",
		health["status"], health["version"], health["model_version"], health["dim"])

	emb := get("/embed?ids=0,1,2")
	vecs := emb["embeddings"].([]any)
	fmt.Printf("embed: %d vectors of dim %v (version %v)\n", len(vecs), emb["dim"], emb["version"])

	pred := get("/predict?ids=0,1,2")
	fmt.Printf("predict: labels=%v (multi_label=%v)\n", pred["labels"], pred["multi_label"])

	tk := get("/topk?id=0&k=5")
	fmt.Printf("topk(0): %v\n", tk["neighbors"])

	// Train further and hot-reload: in-flight queries keep their old
	// snapshot, new queries see the new version.
	for e := 0; e < 5; e++ {
		tr.Epoch()
	}
	model.ModelVersion = uint64(tr.Steps())
	if err := model.SaveFile(ckpt); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/reload", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	health = get("/healthz")
	fmt.Printf("after hot reload: version=%v model_version=%v val-F1 %.4f\n",
		health["version"], health["model_version"], tr.Evaluate(ds.ValIdx))
}
