package gsgcn

import (
	"fmt"
	"math"
	"strings"
	"time"

	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
	"gsgcn/internal/sampler"
)

// Fig4ASeries is one dataset's sampling-speedup curve over p_inter
// (inter-subgraph parallelism), with p_intra fixed at the AVX lane
// width.
type Fig4ASeries struct {
	Dataset  string
	PInter   []int
	Speedups []float64
}

// Fig4BSeries is one dataset's lane-parallel ("performance gain by
// AVX") gain at each p_inter.
type Fig4BSeries struct {
	Dataset string
	PInter  []int
	Gains   []float64
}

// Fig4Result reproduces Figure 4: (A) frontier-sampling speedup from
// inter-subgraph parallelism, including the NUMA bend past one
// socket; (B) the gain from intra-sampler lane parallelism (AVX on
// the paper's platform, 8 lanes).
type Fig4Result struct {
	A      []Fig4ASeries
	B      []Fig4BSeries
	PIntra int
}

// RunFig4 measures per-instance sampling times once at the largest
// p_inter and folds them into speedups for every requested point; the
// lane gain is derived from the Dashboard operation statistics (see
// sampler.Stats.LaneSpeedup).
func RunFig4(o ExpOptions) (*Fig4Result, error) {
	o = o.normalized()
	cache := newDatasetCache(o)
	const pintra = 8 // AVX2 lanes on the paper's platform
	res := &Fig4Result{PIntra: pintra}
	maxP := maxInt(o.Cores)
	for _, name := range o.Datasets {
		ds, err := cache.get(name)
		if err != nil {
			return nil, err
		}
		m, budget := trainParams(ds, o)
		if budget > fig3Budget && !o.Quick {
			budget = fig3Budget
		}
		if m > budget/4 {
			m = budget / 4
		}
		fr := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: 2}

		// Panel A: measure maxP independent instances once.
		times := perf.SimShardTimes(maxP, func(i int) {
			r := rng.NewStream(o.Seed, 4000+i)
			_ = sampler.SampleSubgraph(ds.G, fr, r)
		})
		a := Fig4ASeries{Dataset: name}
		for _, p := range o.Cores {
			pp := p
			if pp > len(times) {
				pp = len(times)
			}
			var total float64
			maxT := 0.0
			for i := 0; i < pp; i++ {
				t := float64(times[i])
				total += t
				if o.Sim.SocketCores > 0 && o.Sim.NUMAPenalty > 1 && i >= o.Sim.SocketCores {
					t *= o.Sim.NUMAPenalty
				}
				if t > maxT {
					maxT = t
				}
			}
			barrier := o.Sim.BarrierNS
			if barrier == 0 {
				barrier = 1500
			}
			wall := maxT + barrier*math.Log2(float64(pp)+1)
			a.PInter = append(a.PInter, p)
			a.Speedups = append(a.Speedups, total/wall)
		}
		res.A = append(res.A, a)

		// Panel B: lane gain from Dashboard operation statistics.
		// Scalar cost: one unit per probe plus one per entry write or
		// invalidation (the paper assumes COSTrand = COSTmem).
		// Vectorized cost: probe rounds shrink to the Theorem 1
		// expectation 1/(1-(1-1/eta)^lanes); block memory operations
		// shrink to ceil(len/lanes) rounds.
		b := Fig4BSeries{Dataset: name}
		for i, p := range o.Cores {
			r := rng.NewStream(o.Seed, 5000+i)
			_, stats := fr.SampleVerticesStats(r)
			scalar := float64(stats.Probes) + float64(stats.LaneRounds(1))
			eta := 2.0
			probeRoundsVec := float64(stats.Pops) / (1 - math.Pow(1-1/eta, float64(pintra)))
			vec := probeRoundsVec + float64(stats.LaneRounds(pintra))
			b.PInter = append(b.PInter, p)
			if vec > 0 {
				b.Gains = append(b.Gains, scalar/vec)
			} else {
				b.Gains = append(b.Gains, 1)
			}
		}
		res.B = append(res.B, b)
	}
	return res, nil
}

// MeasureSamplerComparison times the Dashboard sampler against the
// naive O(m) -per-pop Algorithm 2 implementation (the Section IV-A
// motivation for the Dashboard data structure) and returns
// (dashboard, naive) durations for one subgraph.
func MeasureSamplerComparison(ds *Dataset, seed uint64) (dashboard, naive time.Duration) {
	m, budget := trainParams(ds, DefaultOptions())
	fast := &sampler.Frontier{G: ds.G, M: m, N: budget, Eta: 2}
	slow := &sampler.NaiveFrontier{G: ds.G, M: m, N: budget}
	start := time.Now()
	fast.SampleVertices(rng.New(seed))
	dashboard = time.Since(start)
	start = time.Now()
	slow.SampleVertices(rng.New(seed))
	naive = time.Since(start)
	return dashboard, naive
}

// String renders both panels.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4A: sampling speedup vs p_inter (p_intra=%d)\n", r.PIntra)
	for _, s := range r.A {
		fmt.Fprintf(&b, "  %-8s", s.Dataset)
		for i, p := range s.PInter {
			fmt.Fprintf(&b, "  p=%d: %.2fx", p, s.Speedups[i])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "Figure 4B: performance gain by %d-lane (AVX) intra-sampler parallelism\n", r.PIntra)
	for _, s := range r.B {
		fmt.Fprintf(&b, "  %-8s", s.Dataset)
		for i, p := range s.PInter {
			fmt.Fprintf(&b, "  p=%d: %.2fx", p, s.Gains[i])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
