# CI entry points. `make ci` is the gate future PRs run; `make bench`
# tracks the serial-vs-parallel epoch speedup trajectory and
# `make serve-smoke` exercises the datagen→train→serve pipeline
# end-to-end over HTTP.

GO ?= go

.PHONY: ci vet build test race cover bench serve-smoke

ci: vet build race cover bench serve-smoke

# ./... covers every package, including internal/serve.
vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -p 1 serializes packages: the perf package asserts on real
# wall-clock shard measurements, which cross-package contention on
# small CI hosts would otherwise skew. -shuffle=on randomizes test
# order so determinism contracts (bit-identical ANN/topk results
# across Workers settings and rebuilds) cannot hide behind incidental
# execution order.
race:
	$(GO) test -race -shuffle=on -p 1 ./...

# Coverage summary, printed in `make ci` logs. The profile is left in
# coverage.out for `go tool cover -html` drill-downs. -p 1 for the
# same reason as race: the perf package's wall-clock assertions must
# not share the host with other packages' test binaries.
cover:
	$(GO) test -p 1 -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -n 1

# One iteration per Epoch benchmark: prints ns/op for Workers=1 vs
# parallel so the speedup of the goroutine-parallel engine is visible
# in CI logs without a long run.
bench:
	$(GO) test -run=NONE -bench=Epoch -benchtime=1x .

# End-to-end serving smoke: generate a dataset, train briefly, save a
# checkpoint, launch gsgcn-serve against it and assert /embed and
# /predict answer 200 with sane shapes.
serve-smoke:
	@mkdir -p bin
	$(GO) build -o bin/gsgcn-datagen ./cmd/gsgcn-datagen
	$(GO) build -o bin/gsgcn-train ./cmd/gsgcn-train
	$(GO) build -o bin/gsgcn-serve ./cmd/gsgcn-serve
	bash scripts/serve-smoke.sh
