# CI entry points. `make ci` is the gate future PRs run; `make bench`
# tracks the serial-vs-parallel epoch speedup trajectory.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -p 1 serializes packages: the perf package asserts on real
# wall-clock shard measurements, which cross-package contention on
# small CI hosts would otherwise skew.
race:
	$(GO) test -race -p 1 ./...

# One iteration per Epoch benchmark: prints ns/op for Workers=1 vs
# parallel so the speedup of the goroutine-parallel engine is visible
# in CI logs without a long run.
bench:
	$(GO) test -run=NONE -bench=Epoch -benchtime=1x .
