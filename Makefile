# CI entry points. `make ci` is the gate future PRs run (and what the
# GitHub Actions workflow executes); `make bench` tracks the perf
# trajectory — speedups land both in the log and machine-readable in
# BENCH_train.json / BENCH_serve.json — and `make serve-smoke`
# exercises the datagen→train→index→serve pipeline end-to-end over
# HTTP, cold and warm.

GO ?= go

# Coverage ratchet: `make cover` fails when total statement coverage
# drops below this floor. The floor trails the measured total by a
# small slack (85.7% when set); raise it as coverage rises, never
# lower it.
COVER_FLOOR ?= 84.5

# Bench-trajectory regression tolerance: `make bench` fails when a
# benchmark's ns_per_op exceeds its previous trajectory entry by more
# than this factor. Loose on purpose — one-iteration markers on shared
# CI hosts are noisy; the gate is for order-of-magnitude regressions.
BENCH_TOL ?= 3.0

.PHONY: ci lint vet build test race cover bench serve-smoke

ci: lint build race cover bench serve-smoke

# lint subsumes vet: formatting drift fails the gate, every package
# must carry a godoc package comment (scripts/pkgdoc-lint), and
# staticcheck runs when the host has it (the offline CI image does not
# vendor it).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./scripts/pkgdoc-lint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipped"; \
	fi

# ./... covers every package, including internal/serve.
vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -p 1 serializes packages: the perf package asserts on real
# wall-clock shard measurements, which cross-package contention on
# small CI hosts would otherwise skew. -shuffle=on randomizes test
# order so determinism contracts (bit-identical ANN/topk results
# across Workers settings and rebuilds) cannot hide behind incidental
# execution order.
race:
	$(GO) test -race -shuffle=on -p 1 ./...

# Coverage summary with a ratchet: the profile is left in coverage.out
# for `go tool cover -html` drill-downs, and the total must clear
# COVER_FLOOR. -p 1 for the same reason as race: the perf package's
# wall-clock assertions must not share the host with other packages'
# test binaries.
cover:
	$(GO) test -p 1 -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{print $$NF}' | tr -d '%'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' \
		|| { echo "cover: total $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

# One iteration per benchmark: ns/op for the training epoch
# (serial-vs-parallel engine speedup), serving throughput, ANN-vs-exact
# top-K and warm-vs-cold start, printed in CI logs AND written as
# machine-readable BENCH_train.json / BENCH_serve.json so the perf
# trajectory is tracked across PRs.
bench:
	GO="$(GO)" bash scripts/bench-json.sh
	$(GO) run ./scripts/benchdiff -max-ratio $(BENCH_TOL) BENCH_train.json BENCH_serve.json

# End-to-end serving smoke: generate a dataset, train briefly, save a
# checkpoint, launch gsgcn-serve and assert /embed, /predict and /topk
# answer with sane shapes — then build a snapshot artifact with
# gsgcn-index, restart warm, and assert /healthz reports warm_start
# and /topk answers match the cold run byte-for-byte. The sharded
# phase also exposes the binary wire transport: gsgcn-probe asserts
# JSON, negotiated-binary and framed-TCP answers decode identically
# (and that one TCP connection survives a reload storm). The final
# phase runs gsgcn-loadgen against the sharded server (reload storm +
# shard churn mid-traffic) and appends its latency/throughput entries
# — JSON and wire — to BENCH_serve.json.
serve-smoke:
	@mkdir -p bin
	$(GO) build -o bin/gsgcn-datagen ./cmd/gsgcn-datagen
	$(GO) build -o bin/gsgcn-train ./cmd/gsgcn-train
	$(GO) build -o bin/gsgcn-serve ./cmd/gsgcn-serve
	$(GO) build -o bin/gsgcn-index ./cmd/gsgcn-index
	$(GO) build -o bin/gsgcn-loadgen ./cmd/gsgcn-loadgen
	$(GO) build -o bin/gsgcn-probe ./cmd/gsgcn-probe
	GO="$(GO)" bash scripts/serve-smoke.sh
