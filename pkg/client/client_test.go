package client

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/serve"
)

// fleet is one running server reachable over all three transports.
type fleet struct {
	httpURL  string
	tcpAddr  string
	vertices int
}

// startFleet builds a registry with one trained model (sharded when
// shards > 1), serving HTTP via httptest and the framed transport on
// a loopback listener.
func startFleet(tb testing.TB, workers, shards int) *fleet {
	tb.Helper()
	ds := datasets.Generate(datasets.Config{
		Name: "client-test", Vertices: 120, TargetEdges: 900,
		FeatureDim: 10, NumClasses: 4,
		Homophily: 0.8, NoiseStd: 0.5, Seed: 11,
	})
	m := core.NewModel(ds, core.Config{
		Layers: 2, Hidden: 8, Workers: 1, Seed: 7,
		FrontierM: 30, Budget: 120, PInter: 1,
	})
	tr := core.NewTrainer(ds, m)
	for i := 0; i < 3; i++ {
		tr.Step()
	}
	m.ModelVersion = 3
	ckpt := filepath.Join(tb.TempDir(), "m.ckpt")
	if err := m.SaveFile(ckpt); err != nil {
		tb.Fatal(err)
	}

	reg := serve.NewRegistry()
	tb.Cleanup(reg.Close)
	opts := serve.Options{Workers: workers, ANN: true, ANNEf: 16}
	var ms serve.ModelServer
	var err error
	if shards > 1 {
		ms, err = reg.AddSharded("m", ds, opts, shards, 42)
	} else {
		ms, err = reg.Add("m", ds, opts)
	}
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := ms.Load(ckpt); err != nil {
		tb.Fatal(err)
	}

	ts := httptest.NewServer(reg)
	tb.Cleanup(ts.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { ln.Close() })
	go reg.ServeWire(ln)
	return &fleet{httpURL: ts.URL, tcpAddr: ln.Addr().String(), vertices: ds.G.NumVertices()}
}

// clients builds one client per transport against f, all targeting
// the model by name so every dispatch layer is exercised.
func clients(tb testing.TB, f *fleet) map[string]Client {
	tb.Helper()
	out := make(map[string]Client, 3)
	for _, tr := range []string{"json", "wire", "tcp"} {
		addr := f.httpURL
		if tr == "tcp" {
			addr = f.tcpAddr
		}
		c, err := New(Config{Transport: tr, Addr: addr, Model: "m"})
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() { c.Close() })
		out[tr] = c
	}
	return out
}

// outcome flattens a (result, error) pair for cross-transport
// comparison: an *APIError compares by value, any other error is a
// test failure upstream.
func outcome(tb testing.TB, res any, err error) any {
	tb.Helper()
	if err == nil {
		return res
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		tb.Fatalf("non-API error: %v", err)
	}
	return *ae
}

// bitsOf canonicalizes a result for exact comparison: identical
// structure plus identical float64 bits (DeepEqual alone would let
// -0 == 0 slip through on the float fields).
func bitsOf(rows [][]float64) [][]uint64 {
	out := make([][]uint64, len(rows))
	for i, r := range rows {
		out[i] = make([]uint64, len(r))
		for j, v := range r {
			out[i][j] = math.Float64bits(v)
		}
	}
	return out
}

func compareOutcomes(t *testing.T, label string, got map[string]any) {
	t.Helper()
	ref := got["json"]
	for _, tr := range []string{"wire", "tcp"} {
		if !reflect.DeepEqual(ref, got[tr]) {
			t.Errorf("%s: %s outcome differs from json:\n json: %#v\n %s: %#v", label, tr, ref, tr, got[tr])
		}
	}
	// DeepEqual passed; additionally pin the float bits.
	switch r := ref.(type) {
	case *serve.EmbedResult:
		for _, tr := range []string{"wire", "tcp"} {
			if o := got[tr].(*serve.EmbedResult); !reflect.DeepEqual(bitsOf(r.Vectors), bitsOf(o.Vectors)) {
				t.Errorf("%s: %s embedding bits differ from json", label, tr)
			}
		}
	case *serve.PredictResult:
		for _, tr := range []string{"wire", "tcp"} {
			if o := got[tr].(*serve.PredictResult); !reflect.DeepEqual(bitsOf(r.Probs), bitsOf(o.Probs)) {
				t.Errorf("%s: %s probability bits differ from json", label, tr)
			}
		}
	}
}

// TestTransportsBitIdentical is the SDK's core contract (referenced
// from docs/API.md): for the same query, the three transports return
// identical results — float64s bit for bit — and identical *APIError
// rejections, at every workers and shard setting.
func TestTransportsBitIdentical(t *testing.T) {
	for _, cfg := range []struct{ workers, shards int }{{1, 1}, {3, 1}, {2, 2}} {
		t.Run(fmt.Sprintf("workers=%d,shards=%d", cfg.workers, cfg.shards), func(t *testing.T) {
			f := startFleet(t, cfg.workers, cfg.shards)
			cs := clients(t, f)
			ctx := context.Background()

			queries := []struct {
				label string
				run   func(Client) (any, error)
			}{
				{"embed", func(c Client) (any, error) { return c.Embed(ctx, []int{0, 1, 2, 7}) }},
				{"embed-single", func(c Client) (any, error) { return c.Embed(ctx, []int{42}) }},
				{"embed-oob", func(c Client) (any, error) { return c.Embed(ctx, []int{0, 9999}) }},
				{"predict", func(c Client) (any, error) { return c.Predict(ctx, []int{3, 5}) }},
				{"topk-default", func(c Client) (any, error) { return c.TopK(ctx, TopKQuery{ID: 7}) }},
				{"topk-exact", func(c Client) (any, error) { return c.TopK(ctx, TopKQuery{ID: 7, K: 5, Mode: "exact"}) }},
				{"topk-ann", func(c Client) (any, error) { return c.TopK(ctx, TopKQuery{ID: 7, K: 5, Mode: "ann", Ef: 32}) }},
				{"topk-bad-ef", func(c Client) (any, error) { return c.TopK(ctx, TopKQuery{ID: 7, Mode: "exact", Ef: 8}) }},
				{"topk-bad-id", func(c Client) (any, error) { return c.TopK(ctx, TopKQuery{ID: 100000}) }},
				{"topk-big-k", func(c Client) (any, error) { return c.TopK(ctx, TopKQuery{ID: 1, K: 100000}) }},
			}
			for _, q := range queries {
				got := make(map[string]any, 3)
				for tr, c := range cs {
					res, err := q.run(c)
					got[tr] = outcome(t, res, err)
				}
				compareOutcomes(t, q.label, got)
			}
		})
	}
}

// TestTransportEquivalenceRandomized drives the three transports with
// a seeded stream of random queries — ids, k, ef and mode drawn to
// straddle the valid/invalid boundary — and requires identical
// outcomes on every draw: identical float64 bits on answers,
// identical status/reason/message on rejections.
func TestTransportEquivalenceRandomized(t *testing.T) {
	f := startFleet(t, 2, 2)
	cs := clients(t, f)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	modes := []string{"", "", "exact", "ann"}

	for i := 0; i < 150; i++ {
		var run func(Client) (any, error)
		label := ""
		switch rng.Intn(3) {
		case 0:
			n := 1 + rng.Intn(4)
			ids := make([]int, n)
			for j := range ids {
				// Mostly valid, occasionally out of range.
				ids[j] = rng.Intn(f.vertices + f.vertices/10)
			}
			label = fmt.Sprintf("embed%v", ids)
			run = func(c Client) (any, error) { return c.Embed(ctx, ids) }
		case 1:
			id := rng.Intn(f.vertices + 5)
			label = fmt.Sprintf("predict[%d]", id)
			run = func(c Client) (any, error) { return c.Predict(ctx, []int{id}) }
		default:
			q := TopKQuery{
				ID:   rng.Intn(f.vertices + 5),
				K:    rng.Intn(f.vertices + 10),
				Mode: modes[rng.Intn(len(modes))],
			}
			if rng.Intn(3) == 0 {
				q.Ef = 1 + rng.Intn(40) // sometimes invalid (non-ANN mode)
			}
			label = fmt.Sprintf("topk%+v", q)
			run = func(c Client) (any, error) { return c.TopK(ctx, q) }
		}
		got := make(map[string]any, 3)
		for tr, c := range cs {
			res, err := run(c)
			got[tr] = outcome(t, res, err)
		}
		compareOutcomes(t, label, got)
	}
}

// TestTCPPipelining hammers one persistent connection from many
// goroutines: the FIFO response matching must hand every caller its
// own answer (the embedding of its own id, not a neighbor's).
func TestTCPPipelining(t *testing.T) {
	f := startFleet(t, 2, 1)
	c, err := New(Config{Transport: "tcp", Addr: f.tcpAddr, Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref, err := New(Config{Transport: "json", Addr: f.httpURL, Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	ctx := context.Background()
	want := make([][][]float64, f.vertices)
	for id := 0; id < f.vertices; id++ {
		r, err := ref.Embed(ctx, []int{id})
		if err != nil {
			t.Fatal(err)
		}
		want[id] = r.Vectors
	}
	var wg sync.WaitGroup
	errs := make(chan error, f.vertices)
	for id := 0; id < f.vertices; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r, err := c.Embed(ctx, []int{id})
			if err != nil {
				errs <- fmt.Errorf("id %d: %w", id, err)
				return
			}
			if len(r.IDs) != 1 || r.IDs[0] != id || !reflect.DeepEqual(bitsOf(r.Vectors), bitsOf(want[id])) {
				errs <- fmt.Errorf("id %d: got someone else's answer", id)
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTCPSurvivesReload pins the persistent connection across a hot
// reload: in-flight and subsequent queries keep answering, and the
// snapshot version advances without a reconnect.
func TestTCPSurvivesReload(t *testing.T) {
	f := startFleet(t, 2, 1)
	c, err := New(Config{Transport: "tcp", Addr: f.tcpAddr, Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ops := NewOps(f.httpURL, "m", nil)
	ctx := context.Background()

	before, err := c.Embed(ctx, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ops.Reload(ctx); err != nil {
			t.Fatal(err)
		}
	}
	after, err := c.Embed(ctx, []int{1})
	if err != nil {
		t.Fatalf("connection did not survive reloads: %v", err)
	}
	if after.Version <= before.Version {
		t.Errorf("snapshot version did not advance across reload: %d -> %d", before.Version, after.Version)
	}
	if !reflect.DeepEqual(bitsOf(before.Vectors), bitsOf(after.Vectors)) {
		t.Errorf("same checkpoint reloaded; embedding bits changed")
	}
}

// TestOpsControlPlane covers the SDK's operational surface end to
// end on a sharded model.
func TestOpsControlPlane(t *testing.T) {
	f := startFleet(t, 1, 2)
	ops := NewOps(f.httpURL, "m", nil)
	ctx := context.Background()

	h, err := ops.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Vertices != f.vertices {
		t.Fatalf("health = %+v", h)
	}
	if err := ops.StopShard(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if h, err = ops.Health(ctx); err != nil || h.Status != "degraded" {
		t.Fatalf("after stop: health %+v err %v", h, err)
	}
	if err := ops.StartShard(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if h, err = ops.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("after start: health %+v err %v", h, err)
	}
	// Errors surface as APIError with the server's exact message.
	var ae *APIError
	if err := ops.StopShard(ctx, 99); !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("bad shard stop: %v", err)
	}
}
