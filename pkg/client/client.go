// Package client is the Go SDK for the gsgcn serving plane. One
// Client interface answers embedding, prediction and top-K similarity
// queries over any of the three transports the server speaks:
//
//   - "json": plain HTTP with JSON bodies against the /v1 routes —
//     the reference encoding, lossless for float64.
//   - "wire": the same HTTP requests negotiated (via Accept) to the
//     deterministic binary encoding of internal/wire.
//   - "tcp": a persistent framed TCP connection (gsgcn-serve
//     -wire-addr) carrying pipelined wire frames; no HTTP at all.
//
// Answers are bit-identical across the three transports — every
// float64 crosses each of them as its exact IEEE-754 bits
// (test-enforced by TestTransportsBitIdentical) — so a caller can
// switch transports for latency without revalidating numerics.
// Server-side rejections surface as *APIError carrying the HTTP
// status, the machine-readable overload reason, and the exact error
// message the JSON envelope carries, again identical on every
// transport.
//
// cmd/gsgcn-loadgen and cmd/gsgcn-probe are built on this package,
// so there is exactly one request-building implementation in the
// repo.
package client

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"gsgcn/internal/serve"
)

// TopKQuery names a similar-vertices query. Zero values mean "server
// default": K=0 lets the server pick (10, clamped on tiny graphs),
// Mode="" uses the model's configured default, Ef=0 uses the default
// beam width (and must stay 0 unless Mode is "ann").
type TopKQuery struct {
	ID   int
	K    int
	Mode string // "", "exact" or "ann"
	Ef   int
}

// Client answers serving-plane queries for one model over one
// transport. Implementations are safe for concurrent use; Close
// releases the underlying connection(s).
type Client interface {
	Embed(ctx context.Context, ids []int) (*serve.EmbedResult, error)
	Predict(ctx context.Context, ids []int) (*serve.PredictResult, error)
	TopK(ctx context.Context, q TopKQuery) (*serve.TopKResult, error)
	Close() error
}

// APIError is a rejection the server itself produced (as opposed to
// a transport failure): Status is the HTTP status code, Reason the
// machine-readable overload class ("shed", "quota", "deadline",
// "canceled"; empty otherwise), Message the exact human-readable
// error string — identical across transports for the same request.
type APIError struct {
	Status  int
	Reason  string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server rejected request (HTTP %d): %s", e.Status, e.Message)
}

// Config selects a transport and target.
type Config struct {
	// Transport is "json" (default), "wire" or "tcp".
	Transport string
	// Addr is the server address: a base URL ("http://host:8080") for
	// the json and wire transports, a host:port for tcp.
	Addr string
	// Model routes requests to a named model; empty uses the server's
	// default model.
	Model string
	// HTTPClient overrides the http.Client used by the json and wire
	// transports (nil = a fresh client with Timeout).
	HTTPClient *http.Client
	// Timeout bounds each request when HTTPClient is nil (http) and
	// each round trip on the tcp transport. 0 = no client-side bound.
	Timeout time.Duration
}

// New builds a Client for cfg. The tcp transport dials eagerly so a
// bad address fails here, not on the first query.
func New(cfg Config) (Client, error) {
	switch cfg.Transport {
	case "", "json":
		return newHTTPClient(cfg, false), nil
	case "wire":
		return newHTTPClient(cfg, true), nil
	case "tcp":
		return dialTCP(cfg)
	}
	return nil, fmt.Errorf("client: unknown transport %q (want json, wire or tcp)", cfg.Transport)
}
