package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"gsgcn/internal/serve"
	"gsgcn/internal/wire"
)

// tcpClient speaks the persistent framed transport. Requests from
// any number of goroutines are pipelined onto one connection; the
// server guarantees responses in request order, so a FIFO of pending
// reply slots pairs every answer with its caller. A caller that gives
// up (context expiry) leaves its buffered slot behind — the reader
// still fills it, keeping the FIFO aligned.
type tcpClient struct {
	model   string
	timeout time.Duration

	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex // serializes write+enqueue so frame order == FIFO order

	pending chan chan wire.Message

	done    chan struct{} // closed when the reader exits
	readErr error         // valid after done; the error that killed the connection
}

// dialTCP connects and starts the reader. cfg.Addr is host:port.
func dialTCP(cfg Config) (*tcpClient, error) {
	conn, err := net.DialTimeout("tcp", cfg.Addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &tcpClient{
		model:   cfg.Model,
		timeout: cfg.Timeout,
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(chan chan wire.Message, 1024),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop pairs incoming frames with waiting callers in FIFO order.
// Every pending slot is buffered, so delivery never blocks on an
// abandoned caller. On read error the loop exits; roundTrip observes
// done and reports readErr.
func (c *tcpClient) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			c.readErr = fmt.Errorf("client: wire connection lost: %w", err)
			close(c.done)
			return
		}
		select {
		case slot := <-c.pending:
			slot <- msg
		default:
			// A frame nobody asked for: protocol violation.
			c.readErr = fmt.Errorf("client: unsolicited frame %T from server", msg)
			close(c.done)
			return
		}
	}
}

// roundTrip writes one request frame and waits for its answer.
func (c *tcpClient) roundTrip(ctx context.Context, req wire.Message) (wire.Message, error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	slot := make(chan wire.Message, 1)
	c.wmu.Lock()
	select {
	case <-c.done:
		c.wmu.Unlock()
		return nil, c.readErr
	default:
	}
	select {
	case c.pending <- slot:
	default:
		c.wmu.Unlock()
		return nil, fmt.Errorf("client: too many in-flight requests on one connection")
	}
	err := wire.WriteMessage(c.bw, req)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("client: writing request frame: %w", err)
	}
	select {
	case msg := <-slot:
		if e, ok := msg.(*wire.ErrorResponse); ok {
			return nil, &APIError{Status: e.Status, Reason: e.Reason, Message: e.Message}
		}
		return msg, nil
	case <-c.done:
		return nil, c.readErr
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *tcpClient) Embed(ctx context.Context, ids []int) (*serve.EmbedResult, error) {
	msg, err := c.roundTrip(ctx, &wire.EmbedRequest{Model: c.model, IDs: ids})
	if err != nil {
		return nil, err
	}
	return embedResult(msg)
}

func (c *tcpClient) Predict(ctx context.Context, ids []int) (*serve.PredictResult, error) {
	msg, err := c.roundTrip(ctx, &wire.PredictRequest{Model: c.model, IDs: ids})
	if err != nil {
		return nil, err
	}
	return predictResult(msg)
}

func (c *tcpClient) TopK(ctx context.Context, q TopKQuery) (*serve.TopKResult, error) {
	mode, ok := wire.ModeByte(q.Mode)
	if !ok {
		// Send the invalid mode anyway? No: the wire grammar cannot
		// carry it, so reject with the server's exact wording to keep
		// error surfaces aligned across transports.
		return nil, &APIError{Status: 400,
			Message: fmt.Sprintf("serve: bad mode parameter %q (want exact or ann)", q.Mode)}
	}
	msg, err := c.roundTrip(ctx, &wire.TopKRequest{
		Model: c.model, ID: q.ID, K: q.K, Mode: mode, Ef: q.Ef,
	})
	if err != nil {
		return nil, err
	}
	return topkResult(msg)
}

func (c *tcpClient) Close() error {
	err := c.conn.Close()
	<-c.done // reader exits once the connection is closed
	return err
}
