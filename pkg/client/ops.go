package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Health is the subset of the /healthz body the SDK's callers need —
// enough to size a workload and watch a reload land.
type Health struct {
	Status       string `json:"status"`
	Version      uint64 `json:"version"`
	ModelVersion uint64 `json:"model_version"`
	Vertices     int    `json:"vertices"`
	Dim          int    `json:"dim"`
	Classes      int    `json:"classes"`
}

// Ops drives a model's control plane — health, reload, shard
// lifecycle — over plain HTTP. The control plane is JSON-only by
// design, so Ops is transport-independent: pair it with any Client.
type Ops struct {
	base string
	hc   *http.Client
}

// NewOps builds a control-plane handle. addr is the server base URL,
// model the target model name ("" = the default model); hc nil uses
// http.DefaultClient.
func NewOps(addr, model string, hc *http.Client) *Ops {
	if hc == nil {
		hc = http.DefaultClient
	}
	base := strings.TrimSuffix(addr, "/") + "/v1"
	if model != "" {
		base += "/models/" + model
	}
	return &Ops{base: base, hc: hc}
}

// do issues one request and decodes a JSON answer into out (out nil
// drains the body for connection reuse). Non-200s surface as
// *APIError.
func (o *Ops) do(ctx context.Context, method, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, o.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := o.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		if json.Unmarshal(raw, &eb) != nil || eb.Error == "" {
			return fmt.Errorf("client: HTTP %d: %s", resp.StatusCode, raw)
		}
		return &APIError{Status: resp.StatusCode, Reason: eb.Reason, Message: eb.Error}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Health fetches the model's /healthz status.
func (o *Ops) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := o.do(ctx, http.MethodGet, "/healthz", &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Reload hot-swaps the model's serving snapshot from its current
// checkpoint path.
func (o *Ops) Reload(ctx context.Context) error {
	return o.do(ctx, http.MethodPost, "/reload", nil)
}

// StopShard takes shard i out of service (sharded models only).
func (o *Ops) StopShard(ctx context.Context, i int) error {
	return o.do(ctx, http.MethodPost, fmt.Sprintf("/shards/%d/stop", i), nil)
}

// StartShard returns shard i to service.
func (o *Ops) StartShard(ctx context.Context, i int) error {
	return o.do(ctx, http.MethodPost, fmt.Sprintf("/shards/%d/start", i), nil)
}
