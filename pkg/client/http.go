package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"gsgcn/internal/serve"
	"gsgcn/internal/wire"
)

// httpClient speaks the HTTP surface — JSON bodies by default, the
// negotiated binary encoding when wantWire is set. Stateless beyond
// the underlying http.Client, so it is trivially concurrency-safe.
type httpClient struct {
	base     string // URL prefix up to and including the model scope
	model    string
	hc       *http.Client
	wantWire bool
}

func newHTTPClient(cfg Config, wantWire bool) *httpClient {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: cfg.Timeout}
	}
	base := strings.TrimSuffix(cfg.Addr, "/") + "/v1"
	if cfg.Model != "" {
		base += "/models/" + cfg.Model
	}
	return &httpClient{base: base, model: cfg.Model, hc: hc, wantWire: wantWire}
}

// idsParam renders ids as the ?ids= query value.
func idsParam(ids []int) string {
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
	}
	return b.String()
}

// topkPath renders q as the /topk query string, omitting unset
// parameters so the server applies its own defaults.
func topkPath(q TopKQuery) string {
	path := "/topk?id=" + strconv.Itoa(q.ID)
	if q.K != 0 {
		path += "&k=" + strconv.Itoa(q.K)
	}
	if q.Mode != "" {
		path += "&mode=" + q.Mode
	}
	if q.Ef != 0 {
		path += "&ef=" + strconv.Itoa(q.Ef)
	}
	return path
}

// get issues one GET and decodes the answer into out (a pointer to
// the JSON result struct) or, on the wire transport, returns the
// decoded frame for the caller to convert. Server rejections come
// back as *APIError on both encodings.
func (c *httpClient) get(ctx context.Context, path string, out any) (wire.Message, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if c.wantWire {
		req.Header.Set("Accept", wire.ContentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.Header.Get("Content-Type") == wire.ContentType {
		msg, _, err := wire.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("client: bad wire frame from server: %w", err)
		}
		if e, ok := msg.(*wire.ErrorResponse); ok {
			return nil, &APIError{Status: e.Status, Reason: e.Reason, Message: e.Message}
		}
		return msg, nil
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		if json.Unmarshal(raw, &eb) != nil || eb.Error == "" {
			return nil, fmt.Errorf("client: HTTP %d: %s", resp.StatusCode, raw)
		}
		return nil, &APIError{Status: resp.StatusCode, Reason: eb.Reason, Message: eb.Error}
	}
	return nil, json.Unmarshal(raw, out)
}

func (c *httpClient) Embed(ctx context.Context, ids []int) (*serve.EmbedResult, error) {
	var res serve.EmbedResult
	msg, err := c.get(ctx, "/embed?ids="+idsParam(ids), &res)
	if err != nil {
		return nil, err
	}
	if msg != nil {
		return embedResult(msg)
	}
	return &res, nil
}

func (c *httpClient) Predict(ctx context.Context, ids []int) (*serve.PredictResult, error) {
	var res serve.PredictResult
	msg, err := c.get(ctx, "/predict?ids="+idsParam(ids), &res)
	if err != nil {
		return nil, err
	}
	if msg != nil {
		return predictResult(msg)
	}
	return &res, nil
}

func (c *httpClient) TopK(ctx context.Context, q TopKQuery) (*serve.TopKResult, error) {
	var res serve.TopKResult
	msg, err := c.get(ctx, topkPath(q), &res)
	if err != nil {
		return nil, err
	}
	if msg != nil {
		return topkResult(msg)
	}
	return &res, nil
}

func (c *httpClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// embedResult converts a decoded wire frame into the JSON-equivalent
// result struct. Conversion is pure field copying — floats stay the
// same bits they crossed the wire as.
func embedResult(msg wire.Message) (*serve.EmbedResult, error) {
	m, ok := msg.(*wire.EmbedResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected frame %T for an embed query", msg)
	}
	return &serve.EmbedResult{
		Version:      m.Version,
		ModelVersion: m.ModelVersion,
		Dim:          m.Dim,
		IDs:          m.IDs,
		Vectors:      m.Vectors,
	}, nil
}

func predictResult(msg wire.Message) (*serve.PredictResult, error) {
	m, ok := msg.(*wire.PredictResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected frame %T for a predict query", msg)
	}
	return &serve.PredictResult{
		Version:      m.Version,
		ModelVersion: m.ModelVersion,
		Classes:      m.Classes,
		MultiLabel:   m.MultiLabel,
		IDs:          m.IDs,
		Labels:       m.Labels,
		Probs:        m.Probs,
	}, nil
}

func topkResult(msg wire.Message) (*serve.TopKResult, error) {
	m, ok := msg.(*wire.TopKResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected frame %T for a topk query", msg)
	}
	mode, ok := wire.ModeString(m.Mode)
	if !ok {
		return nil, fmt.Errorf("client: bad mode byte 0x%02x in topk answer", m.Mode)
	}
	res := &serve.TopKResult{
		Version:      m.Version,
		ModelVersion: m.ModelVersion,
		ID:           m.ID,
		K:            m.K,
		Mode:         mode,
		Ef:           m.Ef,
		Degraded:     m.Degraded,
		Neighbors:    make([]serve.Neighbor, len(m.Neighbors)),
	}
	for i, n := range m.Neighbors {
		res.Neighbors[i] = serve.Neighbor{ID: n.ID, Score: n.Score}
	}
	return res, nil
}
