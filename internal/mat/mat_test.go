package mat

import (
	"math"
	"testing"
	"testing/quick"

	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
)

// naiveMul is the reference triple loop used to validate the
// optimized kernels.
func naiveMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomMat(r *rng.RNG, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func TestMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {17, 31, 13}, {64, 32, 48}, {100, 1, 100},
	}
	for _, s := range shapes {
		a := randomMat(r, s.m, s.k)
		b := randomMat(r, s.k, s.n)
		want := naiveMul(a, b)
		for _, workers := range []int{1, 2, 4} {
			got := New(s.m, s.n)
			Mul(got, a, b, workers)
			if !got.Equal(want, 1e-10) {
				t.Errorf("Mul %dx%dx%d workers=%d: max diff %g", s.m, s.k, s.n, workers, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestMulATMatchesNaive(t *testing.T) {
	r := rng.New(2)
	for _, s := range []struct{ m, k, n int }{{3, 4, 5}, {65, 7, 9}, {128, 16, 32}} {
		a := randomMat(r, s.m, s.k)
		b := randomMat(r, s.m, s.n)
		want := naiveMul(Transpose(a), b)
		for _, workers := range []int{1, 3} {
			got := New(s.k, s.n)
			MulAT(got, a, b, workers)
			if !got.Equal(want, 1e-9) {
				t.Errorf("MulAT %v workers=%d: max diff %g", s, workers, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestMulBTMatchesNaive(t *testing.T) {
	r := rng.New(3)
	for _, s := range []struct{ m, k, n int }{{3, 4, 5}, {33, 8, 21}} {
		a := randomMat(r, s.m, s.k)
		b := randomMat(r, s.n, s.k)
		want := naiveMul(a, Transpose(b))
		for _, workers := range []int{1, 4} {
			got := New(s.m, s.n)
			MulBT(got, a, b, workers)
			if !got.Equal(want, 1e-10) {
				t.Errorf("MulBT %v workers=%d: max diff %g", s, workers, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestMulShardsMatchesMul(t *testing.T) {
	r := rng.New(4)
	a := randomMat(r, 40, 16)
	b := randomMat(r, 16, 24)
	want := New(40, 24)
	Mul(want, a, b, 1)
	for _, p := range []int{1, 2, 5, 40, 64} {
		got := New(40, 24)
		res := MulShards(got, a, b, p, perf.SimConfig{})
		if !got.Equal(want, 0) {
			t.Errorf("MulShards p=%d differs from Mul", p)
		}
		if res.Wall <= 0 {
			t.Errorf("MulShards p=%d reported non-positive wall time", p)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched shapes did not panic")
		}
	}()
	Mul(New(2, 2), New(2, 3), New(2, 2), 1)
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(5)
	a := randomMat(r, 7, 11)
	if !Transpose(Transpose(a)).Equal(a, 0) {
		t.Error("transpose of transpose differs from original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromData(2, 2, []float64{1, 2, 3, 4})
	b := FromData(2, 2, []float64{10, 20, 30, 40})
	sum := New(2, 2)
	Add(sum, a, b)
	if sum.At(1, 1) != 44 {
		t.Errorf("Add: got %v", sum.Data)
	}
	diff := New(2, 2)
	Sub(diff, b, a)
	if diff.At(0, 0) != 9 {
		t.Errorf("Sub: got %v", diff.Data)
	}
	diff.Scale(2)
	if diff.At(0, 0) != 18 {
		t.Errorf("Scale: got %v", diff.Data)
	}
	AddScaled(sum, a, -1)
	if sum.At(0, 0) != 10 {
		t.Errorf("AddScaled: got %v", sum.Data)
	}
}

func TestApply(t *testing.T) {
	a := FromData(1, 3, []float64{-1, 0, 2})
	out := New(1, 3)
	Apply(out, a, func(v float64) float64 { return math.Max(v, 0) })
	want := []float64{0, 0, 2}
	for i, v := range want {
		if out.Data[i] != v {
			t.Errorf("Apply relu: got %v", out.Data)
			break
		}
	}
	// In-place application.
	Apply(a, a, func(v float64) float64 { return v * v })
	if a.Data[0] != 1 || a.Data[2] != 4 {
		t.Errorf("Apply in place: got %v", a.Data)
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	r := rng.New(6)
	a := randomMat(r, 5, 3)
	b := randomMat(r, 5, 4)
	cat := New(5, 7)
	ConcatCols(cat, a, b)
	a2, b2 := New(5, 3), New(5, 4)
	SplitCols(a2, b2, cat)
	if !a2.Equal(a, 0) || !b2.Equal(b, 0) {
		t.Error("ConcatCols/SplitCols round trip failed")
	}
	if cat.At(2, 0) != a.At(2, 0) || cat.At(2, 3) != b.At(2, 0) {
		t.Error("ConcatCols misplaced columns")
	}
}

func TestGatherRows(t *testing.T) {
	a := FromData(4, 2, []float64{0, 1, 10, 11, 20, 21, 30, 31})
	dst := New(3, 2)
	GatherRows(dst, a, []int{3, 0, 2})
	want := []float64{30, 31, 0, 1, 20, 21}
	for i, v := range want {
		if dst.Data[i] != v {
			t.Fatalf("GatherRows: got %v want %v", dst.Data, want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromData(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestDotAxpyQuick(t *testing.T) {
	// Property: dot(x, y) computed by the unrolled kernel matches a
	// plain accumulation, and axpy is linear.
	f := func(seed uint32, ln uint8) bool {
		n := int(ln)%67 + 1
		r := rng.New(uint64(seed))
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		plain := 0.0
		for i := range x {
			plain += x[i] * y[i]
		}
		if math.Abs(Dot(x, y)-plain) > 1e-9*(1+math.Abs(plain)) {
			return false
		}
		dst := make([]float64, n)
		copy(dst, y)
		Axpy(dst, x, 2.5)
		for i := range dst {
			if math.Abs(dst[i]-(y[i]+2.5*x[i])) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulLinearityQuick(t *testing.T) {
	// Property: (a1+a2)*b == a1*b + a2*b.
	r := rng.New(8)
	f := func(seed uint16) bool {
		m, k, n := int(seed)%6+1, int(seed/7)%6+1, int(seed/49)%6+1
		a1 := randomMat(r, m, k)
		a2 := randomMat(r, m, k)
		b := randomMat(r, k, n)
		sum := New(m, k)
		Add(sum, a1, a2)
		left := New(m, n)
		Mul(left, sum, b, 1)
		r1, r2 := New(m, n), New(m, n)
		Mul(r1, a1, b, 1)
		Mul(r2, a2, b, 1)
		right := New(m, n)
		Add(right, r1, r2)
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFrobeniusAndSum(t *testing.T) {
	a := FromData(2, 2, []float64{3, 4, 0, 0})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", got)
	}
	if got := a.Sum(); got != 7 {
		t.Errorf("Sum = %v, want 7", got)
	}
}

func BenchmarkMul256(b *testing.B) {
	r := rng.New(1)
	a := randomMat(r, 256, 256)
	c := randomMat(r, 256, 256)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(dst, a, c, perf.NumWorkers())
	}
}

func BenchmarkMulAT256(b *testing.B) {
	r := rng.New(1)
	a := randomMat(r, 256, 256)
	c := randomMat(r, 256, 256)
	dst := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAT(dst, a, c, perf.NumWorkers())
	}
}

func TestMulRangeMatchesMul(t *testing.T) {
	r := rng.New(21)
	a := randomMat(r, 20, 12)
	b := randomMat(r, 12, 9)
	want := New(20, 9)
	Mul(want, a, b, 1)
	got := New(20, 9)
	// Compute in three uneven row chunks.
	MulRange(got, a, b, 0, 7)
	MulRange(got, a, b, 7, 8)
	MulRange(got, a, b, 8, 20)
	if !got.Equal(want, 0) {
		t.Error("piecewise MulRange differs from Mul")
	}
}

func TestMulBTRangeMatchesMulBT(t *testing.T) {
	r := rng.New(22)
	a := randomMat(r, 15, 8)
	b := randomMat(r, 11, 8)
	want := New(15, 11)
	MulBT(want, a, b, 1)
	got := New(15, 11)
	MulBTRange(got, a, b, 0, 6)
	MulBTRange(got, a, b, 6, 15)
	if !got.Equal(want, 0) {
		t.Error("piecewise MulBTRange differs from MulBT")
	}
}

func TestMulRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulRange shape mismatch did not panic")
		}
	}()
	MulRange(New(2, 2), New(2, 3), New(2, 2), 0, 2)
}

func TestReuse(t *testing.T) {
	m := Reuse(nil, 3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("Reuse(nil) shape = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	base := &m.Data[0]
	// Shrinking reuses the backing array.
	s := Reuse(m, 2, 3)
	if s != m || &s.Data[0] != base {
		t.Error("shrinking Reuse reallocated")
	}
	if s.Rows != 2 || s.Cols != 3 || len(s.Data) != 6 {
		t.Errorf("shrunk shape = %dx%d len %d", s.Rows, s.Cols, len(s.Data))
	}
	// Growing within capacity reuses too.
	g := Reuse(s, 4, 3)
	if g != s || &g.Data[0] != base {
		t.Error("growth within capacity reallocated")
	}
	// Growing beyond capacity allocates fresh storage of the right shape.
	big := Reuse(g, 10, 10)
	if big == g {
		t.Error("growth beyond capacity did not reallocate")
	}
	if big.Rows != 10 || big.Cols != 10 || len(big.Data) != 100 {
		t.Errorf("big shape = %dx%d len %d", big.Rows, big.Cols, len(big.Data))
	}
}
