package mat

// Bit-exactness suite for the sharded dense kernels (ISSUE 1): for
// every kernel, the parallel execution must equal the serial one
// element-for-element (==, not within tolerance), across odd shapes —
// 1x1, prime dimensions, fewer rows than workers, and empty matrices.
// This is what lets training produce identical loss traces at every
// Workers setting.

import (
	"sync"
	"testing"

	"gsgcn/internal/rng"
)

func randMat(r *rng.RNG, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// exactCases are (m, k, n) triples for dst(m x n) = a(m x k) * b(k x n).
var exactCases = []struct {
	name    string
	m, k, n int
}{
	{"1x1", 1, 1, 1},
	{"prime-rows", 7, 13, 5},
	{"rows-lt-workers", 3, 17, 3},
	{"empty-rows", 0, 5, 4},
	{"single-col", 31, 1, 1},
	{"tall", 257, 19, 23},
	{"wide", 5, 3, 127},
}

var workerSweep = []int{2, 3, 8, 64}

func requireIdentical(t *testing.T, tag string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) != (%d,%d)", tag, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d differs: %v != %v", tag, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMulBitExactAcrossWorkers(t *testing.T) {
	for _, tc := range exactCases {
		r := rng.New(17)
		a := randMat(r, tc.m, tc.k)
		b := randMat(r, tc.k, tc.n)
		want := New(tc.m, tc.n)
		Mul(want, a, b, 1)
		for _, w := range workerSweep {
			got := New(tc.m, tc.n)
			got.Fill(99) // catch rows a sharding bug might skip
			Mul(got, a, b, w)
			requireIdentical(t, tc.name, got, want)
		}
	}
}

func TestMulBTBitExactAcrossWorkers(t *testing.T) {
	for _, tc := range exactCases {
		r := rng.New(23)
		a := randMat(r, tc.m, tc.k)
		b := randMat(r, tc.n, tc.k) // dst = a * bᵀ is m x n
		want := New(tc.m, tc.n)
		MulBT(want, a, b, 1)
		for _, w := range workerSweep {
			got := New(tc.m, tc.n)
			got.Fill(99)
			MulBT(got, a, b, w)
			requireIdentical(t, tc.name, got, want)
		}
	}
}

func TestMulATBitExactAcrossWorkers(t *testing.T) {
	// MulAT reduces over rows, so its shard decomposition is fixed by
	// row count alone; include sizes around the shard-block boundary.
	cases := append(exactCases[:len(exactCases):len(exactCases)],
		struct {
			name    string
			m, k, n int
		}{"block-boundary", 64 * 3, 11, 7},
		struct {
			name    string
			m, k, n int
		}{"beyond-max-shards", 64*64 + 13, 5, 3},
	)
	for _, tc := range cases {
		r := rng.New(29)
		a := randMat(r, tc.m, tc.k)
		b := randMat(r, tc.m, tc.n) // dst = aᵀ * b is k x n
		want := New(tc.k, tc.n)
		MulAT(want, a, b, 1)
		for _, w := range workerSweep {
			got := New(tc.k, tc.n)
			got.Fill(99)
			MulAT(got, a, b, w)
			requireIdentical(t, tc.name, got, want)
		}
	}
}

// TestMulATMatchesReference pins MulAT's sharded arithmetic to the
// naive O(k·m·n) definition within round-off.
func TestMulATMatchesReference(t *testing.T) {
	r := rng.New(31)
	a := randMat(r, 203, 9)
	b := randMat(r, 203, 6)
	got := New(9, 6)
	MulAT(got, a, b, 8)
	ref := New(9, 6)
	for c := 0; c < 9; c++ {
		for j := 0; j < 6; j++ {
			s := 0.0
			for row := 0; row < 203; row++ {
				s += a.At(row, c) * b.At(row, j)
			}
			ref.Set(c, j, s)
		}
	}
	if d := got.MaxAbsDiff(ref); d > 1e-12 {
		t.Fatalf("MulAT deviates from reference by %g", d)
	}
}

func TestRowOpsBitExactAcrossWorkers(t *testing.T) {
	for _, rows := range []int{0, 1, 3, 7, 64, 251} {
		r := rng.New(41)
		a := randMat(r, rows, 13)
		b := randMat(r, rows, 11)
		cat := New(rows, 24)
		ConcatCols(cat, a, b)
		square := func(x float64) float64 { return x * x }
		for _, w := range workerSweep {
			catP := New(rows, 24)
			ConcatColsP(catP, a, b, w)
			requireIdentical(t, "ConcatColsP", catP, cat)

			sa, sb := New(rows, 13), New(rows, 11)
			SplitColsP(sa, sb, cat, w)
			requireIdentical(t, "SplitColsP/a", sa, a)
			requireIdentical(t, "SplitColsP/b", sb, b)

			app := New(rows, 13)
			Apply(app, a, square)
			appP := New(rows, 13)
			ApplyP(appP, a, square, w)
			requireIdentical(t, "ApplyP", appP, app)

			acc := randMat(rng.New(43), rows, 13)
			accP := acc.Clone()
			AddScaled(acc, a, 0.37)
			AddScaledP(accP, a, 0.37, w)
			requireIdentical(t, "AddScaledP", accP, acc)
		}
	}
}

// TestConcurrentMulCallers runs sharded matmuls from many goroutines
// against the shared worker pool at once; with -race this checks that
// concurrent kernel dispatch never crosses shard ownership.
func TestConcurrentMulCallers(t *testing.T) {
	r := rng.New(53)
	a := randMat(r, 61, 17)
	b := randMat(r, 17, 13)
	want := New(61, 13)
	Mul(want, a, b, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				got := New(61, 13)
				Mul(got, a, b, 8)
				dw := New(17, 13)
				MulAT(dw, randMat(rng.New(uint64(rep+1)), 61, 17), randMat(rng.New(uint64(rep+2)), 61, 13), 8)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Errorf("concurrent Mul diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestGatherRowsPBitExact(t *testing.T) {
	r := rng.New(47)
	src := randMat(r, 97, 7)
	for _, count := range []int{0, 1, 3, 97, 200} {
		idx := make([]int, count)
		for i := range idx {
			idx[i] = r.Intn(97)
		}
		want := New(count, 7)
		GatherRows(want, src, idx)
		for _, w := range workerSweep {
			got := New(count, 7)
			got.Fill(99)
			GatherRowsP(got, src, idx, w)
			requireIdentical(t, "GatherRowsP", got, want)
		}
	}
}
