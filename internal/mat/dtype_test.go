package mat

import (
	"math"
	"testing"
)

// dtypeTable builds a seeded deterministic table in (-1, 1).
func dtypeTable(rows, cols int) *Dense {
	m := New(rows, cols)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range m.Data {
		x = x*6364136223846793005 + 1442695040888963407
		m.Data[i] = float64(int64(x>>11))/float64(1<<52) - 1
	}
	return m
}

func TestDtypeNames(t *testing.T) {
	cases := []struct {
		d    Dtype
		name string
	}{{DtypeF64, "f64"}, {DtypeF32, "f32"}, {DtypeI8PQ, "i8pq"}}
	for _, c := range cases {
		if c.d.String() != c.name {
			t.Errorf("String(%d) = %q, want %q", c.d, c.d.String(), c.name)
		}
		got, err := ParseDtype(c.name)
		if err != nil || got != c.d {
			t.Errorf("ParseDtype(%q) = %v, %v", c.name, got, err)
		}
	}
	if got, err := ParseDtype(""); err != nil || got != DtypeF64 {
		t.Errorf("empty dtype should default to f64, got %v, %v", got, err)
	}
	if _, err := ParseDtype("f16"); err == nil {
		t.Error("unknown dtype accepted")
	}
}

// TestToF32DeviationBound pins the f32 conversion's accuracy contract:
// each element deviates from the source by at most one float32 ulp of
// relative error — the bound the exactness harness relies on when it
// argues f32 ANN scans stay close enough to feed the exact rerank.
func TestToF32DeviationBound(t *testing.T) {
	src := dtypeTable(200, 17)
	ft := ToF32(src, 3)
	if ft.NumRows() != 200 || ft.NumCols() != 17 || ft.Dtype() != DtypeF32 {
		t.Fatalf("shape/dtype: %dx%d %v", ft.NumRows(), ft.NumCols(), ft.Dtype())
	}
	const relUlp = 1.0 / (1 << 23)
	for i, v := range src.Data {
		got := float64(ft.Data[i])
		if math.Abs(got-v) > math.Abs(v)*relUlp {
			t.Fatalf("element %d: f32 %v deviates from %v beyond one ulp", i, got, v)
		}
	}
	if got, want := ft.ResidentBytes(), int64(200*17*4); got != want {
		t.Errorf("ResidentBytes = %d, want %d", got, want)
	}
}

// TestToF32WorkerInvariance: the conversion is elementwise, so any
// worker count produces the same bytes.
func TestToF32WorkerInvariance(t *testing.T) {
	src := dtypeTable(333, 9)
	ref := ToF32(src, 1)
	for _, w := range []int{2, 5, 16} {
		got := ToF32(src, w)
		for i := range ref.Data {
			if math.Float32bits(got.Data[i]) != math.Float32bits(ref.Data[i]) {
				t.Fatalf("workers=%d: element %d differs", w, i)
			}
		}
	}
}

func TestF32QueryScores(t *testing.T) {
	src := dtypeTable(50, 8)
	ft := ToF32(src, 2)
	q := src.Row(3)
	qq := ft.Query(q)
	out := make([]float64, 50)
	qq.Scores(0, 50, out)
	// Reference: the same float32 accumulation done by hand.
	q32 := make([]float32, 8)
	for j, v := range q {
		q32[j] = float32(v)
	}
	for r := 0; r < 50; r++ {
		var acc float32
		for j := 0; j < 8; j++ {
			acc += q32[j] * ft.Data[r*8+j]
		}
		if math.Float64bits(out[r]) != math.Float64bits(float64(acc)) {
			t.Fatalf("row %d: score %v, want %v", r, out[r], float64(acc))
		}
	}
}

// TestResolvePQShapes checks that the default configuration is always
// trainable: every resolved parameter set passes TrainPQ's own
// validation for the shape it was resolved for.
func TestResolvePQShapes(t *testing.T) {
	shapes := [][2]int{{1, 1}, {2, 3}, {10, 4}, {100, 16}, {295, 12}, {3000, 64}, {100000, 128}}
	for _, sh := range shapes {
		rows, dim := sh[0], sh[1]
		p := ResolvePQ(rows, dim)
		if p.M < 1 || p.M > dim {
			t.Errorf("shape %v: M=%d out of [1,%d]", sh, p.M, dim)
		}
		if p.K < 1 || p.K > 256 || p.K > rows {
			t.Errorf("shape %v: K=%d out of range", sh, p.K)
		}
		if p.Seed == 0 || p.Iters < 1 {
			t.Errorf("shape %v: degenerate params %+v", sh, p)
		}
	}
}

// TestTrainPQWorkerInvariance is the codebook determinism contract:
// training at any worker count yields bit-identical centroids and
// codes — the property that lets a server adopt index-time codebooks
// or retrain and get the same bytes.
func TestTrainPQWorkerInvariance(t *testing.T) {
	src := dtypeTable(400, 13)
	p := ResolvePQ(400, 13)
	ref := TrainPQ(src, p, 1)
	if err := ref.Validate(); err != nil {
		t.Fatalf("trained table invalid: %v", err)
	}
	for _, w := range []int{2, 3, 8} {
		got := TrainPQ(src, p, w)
		for i := range ref.Centroids {
			if math.Float64bits(got.Centroids[i]) != math.Float64bits(ref.Centroids[i]) {
				t.Fatalf("workers=%d: centroid element %d differs", w, i)
			}
		}
		for i := range ref.Codes {
			if got.Codes[i] != ref.Codes[i] {
				t.Fatalf("workers=%d: code %d differs", w, i)
			}
		}
	}
	if got, want := ref.ResidentBytes(), int64(len(ref.Codes))+int64(len(ref.Centroids))*8; got != want {
		t.Errorf("ResidentBytes = %d, want %d", got, want)
	}
}

// TestPQQueryMatchesReconstruction: the ADC table path must score each
// row exactly as dot(query, reconstructed row) — M per-subspace
// centroid dots, accumulated in subspace order.
func TestPQQueryMatchesReconstruction(t *testing.T) {
	src := dtypeTable(120, 10)
	p := ResolvePQ(120, 10)
	pt := TrainPQ(src, p, 2)
	q := src.Row(7)
	out := make([]float64, 120)
	pt.Query(q).Scores(0, 120, out)
	for r := 0; r < 120; r++ {
		acc := 0.0
		for s := 0; s < p.M; s++ {
			lo, hi := subSpan(10, p.M, s)
			w := hi - lo
			c := int(pt.Codes[r*p.M+s])
			cent := pt.Centroids[centOff(10, p.M, p.K, s)+c*w:]
			acc += dot(q[lo:hi], cent[:w])
		}
		if math.Float64bits(out[r]) != math.Float64bits(acc) {
			t.Fatalf("row %d: ADC score %v, reconstruction %v", r, out[r], acc)
		}
	}
}

// TestPQValidateRejectsCorruption drives Validate with the damage the
// artifact decoder must catch after a structurally valid parse.
func TestPQValidateRejectsCorruption(t *testing.T) {
	src := dtypeTable(64, 8)
	fresh := func() *PQTable { return TrainPQ(src, ResolvePQ(64, 8), 1) }

	pt := fresh()
	pt.Codes[5] = uint8(pt.Params.K) // one past the last centroid
	if err := pt.Validate(); err == nil {
		t.Error("out-of-range code accepted")
	}
	pt = fresh()
	pt.Centroids = pt.Centroids[:len(pt.Centroids)-1]
	if err := pt.Validate(); err == nil {
		t.Error("truncated codebook accepted")
	}
	pt = fresh()
	pt.Codes = pt.Codes[:len(pt.Codes)-1]
	if err := pt.Validate(); err == nil {
		t.Error("truncated codes accepted")
	}
	pt = fresh()
	pt.Params.M = 99
	if err := pt.Validate(); err == nil {
		t.Error("M beyond dim accepted")
	}
}

func TestGatherRowsSrc(t *testing.T) {
	src := dtypeTable(20, 6)
	dst := New(3, 6)
	GatherRowsSrc(dst, src, []int{19, 0, 7})
	for i, r := range []int{19, 0, 7} {
		for j := 0; j < 6; j++ {
			if dst.At(i, j) != src.At(r, j) {
				t.Fatalf("gathered row %d col %d mismatch", i, j)
			}
		}
	}
}
