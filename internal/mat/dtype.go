package mat

import (
	"fmt"

	"gsgcn/internal/perf"
)

// This file is the serving memory plane's dtype substrate: the
// RowSource abstraction that lets the serving and ANN layers read
// exact float64 rows without caring whether they live on the private
// heap or inside a memory-mapped artifact, plus the two lossy
// representations (float32 and int8 product quantization) the ANN
// hot path can scan instead of the full-precision table. Exactness
// is preserved by construction: quantized tables only ever generate
// candidates — every reported score is recomputed from a RowSource's
// float64 rows, so answers in exact mode are bit-identical across
// dtypes.

// Dtype names a resident representation of an embedding table.
type Dtype uint8

const (
	// DtypeF64 is the full-precision table: exact scans and exact
	// rerank read it; it is the zero value so untouched Options keep
	// their pre-dtype behavior.
	DtypeF64 Dtype = iota
	// DtypeF32 halves the table for ANN scans; exact answers still
	// read float64 rows.
	DtypeF32
	// DtypeI8PQ is int8 product quantization: ~1 byte per subspace
	// per row plus a small codebook, scanned via asymmetric distance
	// tables.
	DtypeI8PQ
)

// String returns the wire name used by flags, /healthz and metrics.
func (d Dtype) String() string {
	switch d {
	case DtypeF64:
		return "f64"
	case DtypeF32:
		return "f32"
	case DtypeI8PQ:
		return "i8pq"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// ParseDtype parses a wire name ("f64", "f32", "i8pq"); the empty
// string means f64 so callers can treat an unset flag as the default.
func ParseDtype(s string) (Dtype, error) {
	switch s {
	case "", "f64":
		return DtypeF64, nil
	case "f32":
		return DtypeF32, nil
	case "i8pq":
		return DtypeI8PQ, nil
	}
	return DtypeF64, fmt.Errorf("mat: unknown dtype %q (want f64, f32 or i8pq)", s)
}

// RowSource is a read-only row-major float64 table. Dense implements
// it on the heap; the artifact package implements it over a memory
// mapping. Row returns a view valid until the source is released;
// callers must not mutate it.
type RowSource interface {
	NumRows() int
	NumCols() int
	Row(i int) []float64
}

// NumRows returns the row count (RowSource).
func (m *Dense) NumRows() int { return m.Rows }

// NumCols returns the column count (RowSource).
func (m *Dense) NumCols() int { return m.Cols }

// GatherRowsSrc writes src rows idx[i] into dst row i — GatherRows
// generalized to any RowSource.
func GatherRowsSrc(dst *Dense, src RowSource, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != src.NumCols() {
		panic("mat: GatherRowsSrc shape mismatch")
	}
	for i, r := range idx {
		copy(dst.Row(i), src.Row(r))
	}
}

// Quantized is a lossy, compact row representation that can score
// rows against a query by approximate inner product. Implementations
// are immutable after construction, so any number of queries may be
// prepared and scored concurrently.
type Quantized interface {
	Dtype() Dtype
	NumRows() int
	NumCols() int
	// ResidentBytes is the size of the working set an ANN scan
	// touches (codes plus codebooks) — the number the serving layer
	// exports as its memory-plane gauge.
	ResidentBytes() int64
	// Query prepares per-query state (a converted vector or an
	// asymmetric distance table) amortized across all row scores.
	Query(q []float64) QuantQuery
}

// QuantQuery is prepared per-query scoring state. Scores writes the
// approximate dot(query, row r) for r in [lo, hi) into out[0:hi-lo].
// It is safe to call concurrently from row-sharded scans.
type QuantQuery interface {
	Scores(lo, hi int, out []float64)
}

// F32Table is an embedding table rounded to float32: half the bytes
// of the source, scanned with float32 arithmetic.
type F32Table struct {
	RowsN, ColsN int
	Data         []float32
}

// ToF32 rounds src to float32 row by row. The conversion is a pure
// elementwise rounding, so it is deterministic at any worker count.
func ToF32(src RowSource, workers int) *F32Table {
	rows, cols := src.NumRows(), src.NumCols()
	t := &F32Table{RowsN: rows, ColsN: cols, Data: make([]float32, rows*cols)}
	perf.ParallelMin(rows, copyRowGrain, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := src.Row(i)
			out := t.Data[i*cols : (i+1)*cols]
			for j, v := range row {
				out[j] = float32(v)
			}
		}
	})
	return t
}

// Dtype returns DtypeF32.
func (t *F32Table) Dtype() Dtype { return DtypeF32 }

// NumRows returns the row count.
func (t *F32Table) NumRows() int { return t.RowsN }

// NumCols returns the column count.
func (t *F32Table) NumCols() int { return t.ColsN }

// ResidentBytes returns the table size in bytes.
func (t *F32Table) ResidentBytes() int64 { return int64(len(t.Data)) * 4 }

// Query converts the query once; scoring is then a float32 dot per
// row.
func (t *F32Table) Query(q []float64) QuantQuery {
	q32 := make([]float32, len(q))
	for j, v := range q {
		q32[j] = float32(v)
	}
	return &f32Query{t: t, q: q32}
}

type f32Query struct {
	t *F32Table
	q []float32
}

func (s *f32Query) Scores(lo, hi int, out []float64) {
	cols := s.t.ColsN
	for i := lo; i < hi; i++ {
		row := s.t.Data[i*cols : (i+1)*cols]
		var acc float32
		for j, v := range row {
			acc += s.q[j] * v
		}
		out[i-lo] = float64(acc)
	}
}

// PQParams fixes a product-quantization configuration. Two trainings
// over the same table with equal params produce identical codebooks
// and codes — the property that lets a server adopt index-time
// codebooks from an artifact, or recompute them and get the same
// bytes.
type PQParams struct {
	// M is the subspace count; subspace s covers columns
	// [s*dim/M, (s+1)*dim/M).
	M int
	// K is the number of centroids per subspace (<= 256 so a code
	// fits one byte).
	K int
	// Iters is the fixed Lloyd iteration count.
	Iters int
	// Seed feeds centroid initialization.
	Seed uint64
}

// pqDefaultSeed seeds codebook training everywhere a caller does not
// choose one, so index-time and serve-time trainings agree.
const pqDefaultSeed = 0x9E3779B97F4A7C15

// ResolvePQ returns the default configuration for a table shape:
// ~2 columns per subspace (fine enough to keep the ef-wide candidate
// beam recall-safe on clustered embedding tables) and a centroid
// budget that keeps the codebook small relative to the rows it
// summarizes.
func ResolvePQ(rows, dim int) PQParams {
	m := (dim + 1) / 2
	if m < 1 {
		m = 1
	}
	if m > dim && dim > 0 {
		m = dim
	}
	k := rows / 8
	if k < 2 {
		k = 2
	}
	if k > 256 {
		k = 256
	}
	if k > rows && rows > 0 {
		k = rows
	}
	return PQParams{M: m, K: k, Iters: 8, Seed: pqDefaultSeed}
}

// PQTable is a product-quantized embedding table: one byte per
// subspace per row plus an M*K codebook of float64 centroids.
// Centroids[(s*K+c)*dim + j] holds centroid c of subspace s laid out
// over the full dim (columns outside the subspace are zero), which
// keeps ADC table construction a plain dot over the subspace span.
type PQTable struct {
	RowsN, ColsN int
	Params       PQParams
	// Centroids is packed per subspace: for subspace s with span
	// width w_s, centroid c occupies Centroids[off_s + c*w_s : ...].
	Centroids []float64
	// Codes[r*M+s] is row r's centroid id in subspace s.
	Codes []uint8
}

// subSpan returns the column range of subspace s for width dim split
// into m even spans.
func subSpan(dim, m, s int) (lo, hi int) {
	return s * dim / m, (s + 1) * dim / m
}

// centOff returns the offset of subspace s's centroid block within
// the packed Centroids slice.
func centOff(dim, m, k, s int) int {
	off := 0
	for t := 0; t < s; t++ {
		lo, hi := subSpan(dim, m, t)
		off += k * (hi - lo)
	}
	return off
}

// centroidsLen is the packed Centroids length for a configuration.
func centroidsLen(dim, m, k int) int { return centOff(dim, m, k, m) }

// PQCentroidsLen returns the packed centroid slice length for a
// configuration — the artifact codec's sizing rule for the codebook
// section.
func PQCentroidsLen(dim, m, k int) int { return centroidsLen(dim, m, k) }

// splitmix64 is the stateless seed expander used for deterministic
// centroid initialization.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// TrainPQ runs seeded Lloyd k-means independently per subspace and
// encodes every row. Determinism: centroid init is a pure function of
// (Seed, rows, K); assignment is row-owned (parallel workers write
// disjoint code ranges); centroid accumulation walks rows serially in
// id order; distance ties break toward the lower centroid id; empty
// clusters keep their previous centroid. The result is bit-identical
// at any worker count.
func TrainPQ(src RowSource, p PQParams, workers int) *PQTable {
	rows, dim := src.NumRows(), src.NumCols()
	if p.M < 1 || p.M > dim || p.K < 1 || p.K > 256 || p.K > rows || p.Iters < 0 {
		panic(fmt.Sprintf("mat: invalid PQ params M=%d K=%d iters=%d for %dx%d table", p.M, p.K, p.Iters, rows, dim))
	}
	t := &PQTable{
		RowsN:     rows,
		ColsN:     dim,
		Params:    p,
		Centroids: make([]float64, centroidsLen(dim, p.M, p.K)),
		Codes:     make([]uint8, rows*p.M),
	}
	for s := 0; s < p.M; s++ {
		lo, hi := subSpan(dim, p.M, s)
		w := hi - lo
		cents := t.Centroids[centOff(dim, p.M, p.K, s):centOff(dim, p.M, p.K, s+1)]
		// Stratified init jittered by the seed: centroid c starts at a
		// distinct row, spread across the table.
		for c := 0; c < p.K; c++ {
			stride := rows / p.K
			jitter := 0
			if stride > 1 {
				jitter = int(splitmix64(p.Seed+uint64(s)*977+uint64(c)) % uint64(stride))
			}
			r := c*stride + jitter
			if r >= rows {
				r = rows - 1
			}
			copy(cents[c*w:(c+1)*w], src.Row(r)[lo:hi])
		}
		assign := make([]uint8, rows)
		for it := 0; it <= p.Iters; it++ {
			// Assign each row's subvector to the nearest centroid
			// (squared L2, ties to the lower id). Row-owned, so the
			// parallel decomposition cannot affect the result.
			perf.ParallelMin(rows, copyRowGrain, workers, func(_, rlo, rhi int) {
				for r := rlo; r < rhi; r++ {
					sub := src.Row(r)[lo:hi]
					best, bestD := 0, pqDist(sub, cents[:w])
					for c := 1; c < p.K; c++ {
						if d := pqDist(sub, cents[c*w:(c+1)*w]); d < bestD {
							best, bestD = c, d
						}
					}
					assign[r] = uint8(best)
				}
			})
			if it == p.Iters {
				break
			}
			// Recompute means serially in row order; empty clusters
			// keep their previous centroid.
			sums := make([]float64, p.K*w)
			counts := make([]int, p.K)
			for r := 0; r < rows; r++ {
				c := int(assign[r])
				counts[c]++
				acc := sums[c*w : (c+1)*w]
				for j, v := range src.Row(r)[lo:hi] {
					acc[j] += v
				}
			}
			for c := 0; c < p.K; c++ {
				if counts[c] == 0 {
					continue
				}
				inv := 1 / float64(counts[c])
				for j := 0; j < w; j++ {
					cents[c*w+j] = sums[c*w+j] * inv
				}
			}
		}
		for r := 0; r < rows; r++ {
			t.Codes[r*p.M+s] = assign[r]
		}
	}
	return t
}

// pqDist is squared L2 between a subvector and a centroid.
func pqDist(x, c []float64) float64 {
	d := 0.0
	for j, v := range x {
		e := v - c[j]
		d += e * e
	}
	return d
}

// Validate checks structural consistency (shape, code range) — the
// artifact decoder's guard against corrupt sections.
func (t *PQTable) Validate() error {
	p := t.Params
	if t.RowsN < 0 || t.ColsN < 1 {
		return fmt.Errorf("mat: pq table shape %dx%d", t.RowsN, t.ColsN)
	}
	if p.M < 1 || p.M > t.ColsN {
		return fmt.Errorf("mat: pq M=%d out of range for dim %d", p.M, t.ColsN)
	}
	if p.K < 1 || p.K > 256 {
		return fmt.Errorf("mat: pq K=%d out of range", p.K)
	}
	if want := centroidsLen(t.ColsN, p.M, p.K); len(t.Centroids) != want {
		return fmt.Errorf("mat: pq centroids len %d, want %d", len(t.Centroids), want)
	}
	if want := t.RowsN * p.M; len(t.Codes) != want {
		return fmt.Errorf("mat: pq codes len %d, want %d", len(t.Codes), want)
	}
	for _, c := range t.Codes {
		if int(c) >= p.K {
			return fmt.Errorf("mat: pq code %d >= K=%d", c, p.K)
		}
	}
	return nil
}

// Dtype returns DtypeI8PQ.
func (t *PQTable) Dtype() Dtype { return DtypeI8PQ }

// NumRows returns the row count.
func (t *PQTable) NumRows() int { return t.RowsN }

// NumCols returns the column count.
func (t *PQTable) NumCols() int { return t.ColsN }

// ResidentBytes returns codes plus codebook size in bytes.
func (t *PQTable) ResidentBytes() int64 {
	return int64(len(t.Codes)) + int64(len(t.Centroids))*8
}

// Query builds the asymmetric distance table: tab[s*K+c] =
// dot(query_s, centroid_{s,c}), so a row scores in M table lookups.
func (t *PQTable) Query(q []float64) QuantQuery {
	p := t.Params
	tab := make([]float64, p.M*p.K)
	for s := 0; s < p.M; s++ {
		lo, hi := subSpan(t.ColsN, p.M, s)
		w := hi - lo
		qs := q[lo:hi]
		cents := t.Centroids[centOff(t.ColsN, p.M, p.K, s):]
		for c := 0; c < p.K; c++ {
			tab[s*p.K+c] = dot(qs, cents[c*w:(c+1)*w])
		}
	}
	return &pqQuery{t: t, tab: tab}
}

type pqQuery struct {
	t   *PQTable
	tab []float64
}

func (s *pqQuery) Scores(lo, hi int, out []float64) {
	m, k := s.t.Params.M, s.t.Params.K
	for r := lo; r < hi; r++ {
		codes := s.t.Codes[r*m : (r+1)*m]
		acc := 0.0
		for sub, c := range codes {
			acc += s.tab[sub*k+int(c)]
		}
		out[r-lo] = acc
	}
}
