// Package mat implements the dense linear-algebra substrate for GCN
// training: row-major float64 matrices with parallel, cache-blocked
// matrix multiplication and the elementwise kernels used by forward
// and backward propagation.
//
// It plays the role of Intel MKL in the paper's C++ implementation
// (the weight-application step, Section V-A, is a dense GEMM). The
// multiplication kernels use the i-k-j loop order so the innermost
// loop streams contiguous rows of both the source and destination,
// which the Go compiler turns into reasonably tight code, and they
// parallelize across row blocks via perf.Parallel.
package mat

import (
	"fmt"
	"math"

	"gsgcn/internal/perf"
)

// Dispatch grains for the cheap kernels: parallel dispatch is only
// worth it when each chunk amortizes the pool handoff. Both are pure
// constants, so the effective decomposition stays a function of shape
// and worker count alone (the determinism contract).
const (
	// elemGrain is the minimum elements per chunk for elementwise
	// kernels (one add or one function call per index).
	elemGrain = 4096
	// copyRowGrain is the minimum rows per chunk for row-copy kernels
	// (one memmove per index).
	copyRowGrain = 64
)

// Dense is a row-major matrix. Data[i*Cols+j] is element (i, j).
// The zero value is an empty matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed r x c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Reuse returns an r x c matrix backed by buf's storage when its
// capacity suffices, allocating a fresh matrix otherwise. Contents
// are unspecified — callers must fully overwrite (or Zero) the
// result. It exists so per-step scratch matrices in the training hot
// path keep their backing arrays across iterations instead of paying
// a New (allocation + GC) per kernel call.
func Reuse(buf *Dense, r, c int) *Dense {
	n := r * c
	if buf == nil || cap(buf.Data) < n {
		return New(r, c)
	}
	buf.Rows, buf.Cols = r, c
	buf.Data = buf.Data[:n]
	return buf
}

// FromData wraps the given backing slice (not copied) as an r x c
// matrix. It panics if the slice has the wrong length.
func FromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromData %dx%d needs %d elements, got %d", r, c, r*c, len(data)))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Equal reports whether m and n have identical shape and elements
// within tolerance tol.
func (m *Dense) Equal(n *Dense, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference.
func (m *Dense) MaxAbsDiff(n *Dense) float64 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return math.Inf(1)
	}
	max := 0.0
	for i, v := range m.Data {
		if d := math.Abs(v - n.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// Mul computes dst = a * b using workers goroutines. dst must be
// pre-shaped (a.Rows x b.Cols) and must not alias a or b. This is the
// weight-application GEMM of the paper's Section V-A.
func Mul(dst, a, b *Dense, workers int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Mul shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	perf.Parallel(a.Rows, workers, func(_, lo, hi int) {
		mulRange(dst, a, b, lo, hi)
	})
}

// MulRange computes rows [lo, hi) of dst = a*b serially. It is the
// unit of work one (simulated) core performs in a row-sharded GEMM;
// the scaling harness measures it shard by shard.
func MulRange(dst, a, b *Dense, lo, hi int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulRange shape mismatch")
	}
	mulRange(dst, a, b, lo, hi)
}

// MulBTRange computes rows [lo, hi) of dst = a * bᵀ serially.
func MulBTRange(dst, a, b *Dense, lo, hi int) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("mat: MulBTRange shape mismatch")
	}
	k := a.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Rows; j++ {
			drow[j] = dot(arow, b.Data[j*k:(j+1)*k])
		}
	}
}

// mulRange computes rows [lo, hi) of dst = a*b serially.
func mulRange(dst, a, b *Dense, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			axpy(drow, brow, av)
		}
	}
}

// MulShards computes dst = a * b decomposed into p row shards and
// executes the shards under the simulated multicore executor,
// returning its timing. It performs exactly the same arithmetic as
// Mul; it exists so the weight-application scaling of Fig. 3C can be
// measured on hosts with few physical cores.
func MulShards(dst, a, b *Dense, p int, cfg perf.SimConfig) perf.SimResult {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulShards shape mismatch")
	}
	return perf.SimRange(a.Rows, p, cfg, func(lo, hi int) {
		mulRange(dst, a, b, lo, hi)
	})
}

// MulAT computes dst = aᵀ * b (dst is a.Cols x b.Cols). Needed by the
// backward pass: dW = Hᵀ · dY.
//
// The row range of a is decomposed into a fixed number of shards that
// depends only on a.Rows — never on workers — each shard accumulates a
// private partial product, and the partials are reduced in shard
// order. Floating-point addition is not associative, so this fixed
// decomposition is what makes the result bit-identical at every worker
// count (the training engine's determinism contract: Workers=1 and
// Workers=8 must produce the same loss trace).
func MulAT(dst, a, b *Dense, workers int) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("mat: MulAT shape mismatch")
	}
	n := b.Cols
	k := a.Cols
	shards := mulATShards(a.Rows, k, n)
	if shards <= 1 {
		dst.Zero()
		accumATRange(dst.Data, a, b, 0, a.Rows)
		return
	}
	// shards > 1 always goes through per-shard partial buffers — even
	// at workers == 1, where perf.Parallel degrades to a serial loop —
	// so that every worker count performs the exact same additions in
	// the exact same grouping.
	partials := make([][]float64, shards)
	perf.Parallel(shards, workers, func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			lo := s * a.Rows / shards
			hi := (s + 1) * a.Rows / shards
			p := make([]float64, k*n)
			accumATRange(p, a, b, lo, hi)
			partials[s] = p
		}
	})
	// Reduce in fixed shard order; each output element is owned by
	// exactly one chunk, so the reduction parallelizes bit-exactly.
	perf.ParallelMin(len(dst.Data), elemGrain, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := 0.0
			for _, p := range partials {
				v += p[i]
			}
			dst.Data[i] = v
		}
	})
}

// mulATShards returns the fixed shard count for a MulAT of the given
// shape: at least 64 rows per shard so each partial amortizes its
// allocation, at most 64 shards (enough to occupy the paper's 40-core
// platform), and few enough that the k x n partial buffers stay
// within a fixed memory budget. The count is a function of the
// problem shape only — never of the worker count — which is what
// keeps the reduction order, and therefore the result, bit-identical
// at every Workers setting.
func mulATShards(rows, k, n int) int {
	const minBlock = 64
	const maxShards = 64
	const partialBudget = 16 << 20 // bytes across all partial buffers
	s := rows / minBlock
	if s > maxShards {
		s = maxShards
	}
	if bytes := k * n * 8; bytes > 0 {
		if byBudget := partialBudget / bytes; s > byBudget {
			s = byBudget
		}
	}
	if s < 1 {
		s = 1
	}
	return s
}

// accumATRange adds rows [lo, hi) of the product aᵀ·b into acc (a
// k x n buffer in row-major order).
func accumATRange(acc []float64, a, b *Dense, lo, hi int) {
	n := b.Cols
	k := a.Cols
	for r := lo; r < hi; r++ {
		arow := a.Data[r*k : (r+1)*k]
		brow := b.Data[r*n : (r+1)*n]
		for c, av := range arow {
			if av == 0 {
				continue
			}
			axpy(acc[c*n:(c+1)*n], brow, av)
		}
	}
}

// MulBT computes dst = a * bᵀ (dst is a.Rows x b.Rows). Needed by the
// backward pass: dH = dY · Wᵀ.
func MulBT(dst, a, b *Dense, workers int) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("mat: MulBT shape mismatch")
	}
	k := a.Cols
	perf.Parallel(a.Rows, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j := 0; j < b.Rows; j++ {
				brow := b.Data[j*k : (j+1)*k]
				drow[j] = dot(arow, brow)
			}
		}
	})
}

// axpy computes dst += alpha * src elementwise. The 4-way unroll gives
// the compiler independent chains to schedule.
func axpy(dst, src []float64, alpha float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// dot returns the inner product of x and y.
func dot(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < n; i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy exposes dst += alpha*src for other packages.
func Axpy(dst, src []float64, alpha float64) { axpy(dst, src, alpha) }

// Dot exposes the inner product for other packages.
func Dot(x, y []float64) float64 { return dot(x, y) }

// Add computes dst = a + b elementwise.
func Add(dst, a, b *Dense) {
	checkSameShape3(dst, a, b, "Add")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b elementwise.
func Sub(dst, a, b *Dense) {
	checkSameShape3(dst, a, b, "Sub")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// AddScaled computes dst += alpha * src.
func AddScaled(dst, src *Dense, alpha float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	axpy(dst.Data, src.Data, alpha)
}

// Scale multiplies every element by alpha in place.
func (m *Dense) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Apply sets dst[i] = f(a[i]) elementwise. dst may alias a.
func Apply(dst, a *Dense, f func(float64) float64) {
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("mat: Apply shape mismatch")
	}
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
}

// ApplyP is Apply sharded across workers goroutines. Each element is
// owned by exactly one chunk, so the result is identical to Apply at
// every worker count. dst may alias a.
func ApplyP(dst, a *Dense, f func(float64) float64, workers int) {
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("mat: ApplyP shape mismatch")
	}
	perf.ParallelMin(len(a.Data), elemGrain, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst.Data[i] = f(a.Data[i])
		}
	})
}

// AddScaledP is AddScaled sharded across workers goroutines;
// element-owned, hence bit-identical to AddScaled at every worker
// count.
func AddScaledP(dst, src *Dense, alpha float64, workers int) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("mat: AddScaledP shape mismatch")
	}
	perf.ParallelMin(len(dst.Data), elemGrain, workers, func(_, lo, hi int) {
		axpy(dst.Data[lo:hi], src.Data[lo:hi], alpha)
	})
}

// ConcatCols writes [a | b] into dst (dst is a.Rows x (a.Cols+b.Cols)).
// This implements the neighbor-self concatenation of Algorithm 1 line 9.
func ConcatCols(dst, a, b *Dense) {
	if a.Rows != b.Rows || dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic("mat: ConcatCols shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		drow := dst.Row(i)
		copy(drow[:a.Cols], a.Row(i))
		copy(drow[a.Cols:], b.Row(i))
	}
}

// ConcatColsP is ConcatCols sharded by contiguous row blocks; each
// output row is owned by exactly one worker, so the result matches
// ConcatCols bit-for-bit at every worker count.
func ConcatColsP(dst, a, b *Dense, workers int) {
	if a.Rows != b.Rows || dst.Rows != a.Rows || dst.Cols != a.Cols+b.Cols {
		panic("mat: ConcatColsP shape mismatch")
	}
	perf.ParallelMin(a.Rows, copyRowGrain, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst.Row(i)
			copy(drow[:a.Cols], a.Row(i))
			copy(drow[a.Cols:], b.Row(i))
		}
	})
}

// SplitCols is the inverse of ConcatCols: it copies the first a.Cols
// columns of src into a and the rest into b (used to route gradients
// back through the concatenation).
func SplitCols(a, b, src *Dense) {
	if a.Rows != src.Rows || b.Rows != src.Rows || src.Cols != a.Cols+b.Cols {
		panic("mat: SplitCols shape mismatch")
	}
	for i := 0; i < src.Rows; i++ {
		srow := src.Row(i)
		copy(a.Row(i), srow[:a.Cols])
		copy(b.Row(i), srow[a.Cols:])
	}
}

// SplitColsP is SplitCols sharded by contiguous row blocks
// (row-owned, bit-identical to SplitCols at every worker count).
func SplitColsP(a, b, src *Dense, workers int) {
	if a.Rows != src.Rows || b.Rows != src.Rows || src.Cols != a.Cols+b.Cols {
		panic("mat: SplitColsP shape mismatch")
	}
	perf.ParallelMin(src.Rows, copyRowGrain, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			srow := src.Row(i)
			copy(a.Row(i), srow[:a.Cols])
			copy(b.Row(i), srow[a.Cols:])
		}
	})
}

// GatherRows writes a[idx[i]] into dst row i. It implements
// H(0)[V_sub] of Algorithm 1 line 5.
func GatherRows(dst, a *Dense, idx []int) {
	if dst.Rows != len(idx) || dst.Cols != a.Cols {
		panic("mat: GatherRows shape mismatch")
	}
	for i, r := range idx {
		copy(dst.Row(i), a.Data[r*a.Cols:(r+1)*a.Cols])
	}
}

// GatherRowsP is GatherRows sharded by contiguous destination row
// blocks (row-owned, bit-identical to GatherRows at every worker
// count). It parallelizes the minibatch feature/label gather of
// Algorithm 1 line 5.
func GatherRowsP(dst, a *Dense, idx []int, workers int) {
	if dst.Rows != len(idx) || dst.Cols != a.Cols {
		panic("mat: GatherRowsP shape mismatch")
	}
	perf.ParallelMin(len(idx), copyRowGrain, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := idx[i]
			copy(dst.Row(i), a.Data[r*a.Cols:(r+1)*a.Cols])
		}
	})
}

// Transpose returns aᵀ as a new matrix.
func Transpose(a *Dense) *Dense {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.Data[j*a.Rows+i] = v
		}
	}
	return out
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

func checkSameShape3(a, b, c *Dense, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.Rows != c.Rows || a.Cols != c.Cols {
		panic("mat: " + op + " shape mismatch")
	}
}
