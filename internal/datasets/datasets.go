// Package datasets generates the synthetic attributed graphs that
// stand in for the paper's four evaluation datasets (PPI, Reddit,
// Yelp, Amazon — Table I). The originals are external downloads
// (SNAP, Yelp challenge); this module produces graphs with matched
// vertex/edge counts, attribute dimensionality, class counts and
// label regime (multi- vs single-label), plus the three structural
// properties that drive both GCN accuracy and sampling behaviour:
//
//  1. a heavy-tailed (power-law-like) degree distribution, generated
//     by a Chung-Lu edge process over Pareto vertex weights — this is
//     what stresses the Dashboard sampler's degree cap and cleanup;
//  2. community structure with tunable homophily — this is what
//     frontier sampling must preserve for accuracy (Section III-C);
//  3. class-correlated vertex attributes — class-mean vectors plus
//     Gaussian noise, so a GCN genuinely learns and F1 curves behave
//     like the paper's Figure 2.
//
// Every generator is deterministic in its seed.
package datasets

import (
	"fmt"
	"math"
	"sort"

	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/rng"
)

// Config describes one synthetic dataset.
type Config struct {
	Name        string
	Vertices    int
	TargetEdges int64 // undirected edge budget before dedup
	FeatureDim  int
	NumClasses  int
	MultiLabel  bool
	// Homophily is the probability that an edge endpoint is drawn
	// from the same community as its source (0..1).
	Homophily float64
	// PowerLawExp is the Pareto tail exponent of the vertex weight
	// distribution; 2.1-3.0 covers most real graphs.
	PowerLawExp float64
	// NoiseStd scales the Gaussian noise added to class-mean features.
	NoiseStd float64
	// TrainFrac/ValFrac control the vertex split; the remainder is test.
	TrainFrac, ValFrac float64
	Seed               uint64
}

// Dataset is an attributed, labeled graph with a fixed vertex split.
type Dataset struct {
	Name       string
	G          *graph.CSR
	Features   *mat.Dense // |V| x FeatureDim
	Labels     *mat.Dense // |V| x NumClasses, {0,1} multi-hot (one-hot when single-label)
	Community  []int32    // primary community of each vertex
	MultiLabel bool
	NumClasses int
	TrainIdx   []int32
	ValIdx     []int32
	TestIdx    []int32
}

// FeatureDim returns the attribute dimensionality.
func (d *Dataset) FeatureDim() int { return d.Features.Cols }

// Validate checks internal consistency; tests call it after generation.
func (d *Dataset) Validate() error {
	n := d.G.NumVertices()
	if d.Features.Rows != n {
		return fmt.Errorf("datasets: features rows %d != vertices %d", d.Features.Rows, n)
	}
	if d.Labels.Rows != n || d.Labels.Cols != d.NumClasses {
		return fmt.Errorf("datasets: labels shape %dx%d, want %dx%d", d.Labels.Rows, d.Labels.Cols, n, d.NumClasses)
	}
	if len(d.TrainIdx)+len(d.ValIdx)+len(d.TestIdx) != n {
		return fmt.Errorf("datasets: split sizes %d+%d+%d != %d",
			len(d.TrainIdx), len(d.ValIdx), len(d.TestIdx), n)
	}
	seen := make([]bool, n)
	for _, part := range [][]int32{d.TrainIdx, d.ValIdx, d.TestIdx} {
		for _, v := range part {
			if v < 0 || int(v) >= n || seen[v] {
				return fmt.Errorf("datasets: split vertex %d invalid or duplicated", v)
			}
			seen[v] = true
		}
	}
	for i := 0; i < n; i++ {
		row := d.Labels.Row(i)
		any := false
		for _, v := range row {
			if v != 0 && v != 1 {
				return fmt.Errorf("datasets: non-binary label %v at vertex %d", v, i)
			}
			if v == 1 {
				any = true
			}
		}
		if !any {
			return fmt.Errorf("datasets: vertex %d has no label", i)
		}
		if !d.MultiLabel {
			sum := 0.0
			for _, v := range row {
				sum += v
			}
			if sum != 1 {
				return fmt.Errorf("datasets: single-label vertex %d has %v labels", i, sum)
			}
		}
	}
	return nil
}

// Generate builds a dataset from cfg. It panics on nonsensical
// configurations (zero vertices, classes > vertices, etc.) since
// configs are authored by code, not users.
func Generate(cfg Config) *Dataset {
	if cfg.Vertices <= 0 || cfg.NumClasses <= 0 || cfg.FeatureDim <= 0 {
		panic("datasets: Vertices, NumClasses and FeatureDim must be positive")
	}
	if cfg.Homophily == 0 {
		cfg.Homophily = 0.75
	}
	if cfg.PowerLawExp == 0 {
		cfg.PowerLawExp = 2.3
	}
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.6
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.66
	}
	if cfg.ValFrac == 0 {
		cfg.ValFrac = 0.12
	}
	r := rng.New(cfg.Seed)

	n := cfg.Vertices
	k := cfg.NumClasses

	// Primary communities: roughly balanced random assignment.
	comm := make([]int32, n)
	for i := range comm {
		comm[i] = int32(r.Intn(k))
	}

	g := generateChungLu(r, n, cfg.TargetEdges, cfg.PowerLawExp, cfg.Homophily, comm, k)
	labels := generateLabels(r, comm, k, cfg.MultiLabel)
	features := generateFeatures(r, labels, cfg.FeatureDim, cfg.NoiseStd)
	train, val, test := split(r, n, cfg.TrainFrac, cfg.ValFrac)

	return &Dataset{
		Name:       cfg.Name,
		G:          g,
		Features:   features,
		Labels:     labels,
		Community:  comm,
		MultiLabel: cfg.MultiLabel,
		NumClasses: k,
		TrainIdx:   train,
		ValIdx:     val,
		TestIdx:    test,
	}
}

// generateChungLu draws TargetEdges edges where both endpoints are
// chosen proportionally to Pareto weights, with probability homophily
// the second endpoint is restricted to the first endpoint's community.
func generateChungLu(r *rng.RNG, n int, targetEdges int64, alpha, homophily float64, comm []int32, k int) *graph.CSR {
	if targetEdges <= 0 {
		targetEdges = int64(n) * 8
	}
	// Pareto weights with tail exponent alpha; clamp to avoid a
	// single vertex absorbing the edge budget.
	w := make([]float64, n)
	maxW := math.Pow(float64(n), 1/(alpha-1))
	for i := range w {
		u := r.Float64()
		w[i] = math.Min(math.Pow(1-u, -1/(alpha-1)), maxW)
	}
	// Global cumulative weights for O(log n) weighted picks, plus
	// per-community vertex lists with their own cumulatives.
	cum := make([]float64, n+1)
	for i, wi := range w {
		cum[i+1] = cum[i] + wi
	}
	commVerts := make([][]int32, k)
	for v, c := range comm {
		commVerts[c] = append(commVerts[c], int32(v))
	}
	commCum := make([][]float64, k)
	for c, vs := range commVerts {
		cc := make([]float64, len(vs)+1)
		for i, v := range vs {
			cc[i+1] = cc[i] + w[v]
		}
		commCum[c] = cc
	}
	pickGlobal := func() int32 {
		x := r.Float64() * cum[n]
		return int32(sort.SearchFloat64s(cum[1:], x))
	}
	pickInComm := func(c int32) int32 {
		cc := commCum[c]
		vs := commVerts[c]
		if len(vs) == 0 {
			return pickGlobal()
		}
		x := r.Float64() * cc[len(vs)]
		return vs[sort.SearchFloat64s(cc[1:], x)]
	}

	edges := make([]graph.Edge, 0, targetEdges)
	for int64(len(edges)) < targetEdges {
		u := pickGlobal()
		var v int32
		if r.Float64() < homophily {
			v = pickInComm(comm[u])
		} else {
			v = pickGlobal()
		}
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		panic(err) // unreachable: endpoints generated in range
	}
	return g
}

// generateLabels builds the multi-hot label matrix. The primary
// community always contributes a label; multi-label datasets add a
// geometric number of secondary labels (matching the dense label sets
// of PPI/Yelp/Amazon).
func generateLabels(r *rng.RNG, comm []int32, k int, multi bool) *mat.Dense {
	n := len(comm)
	labels := mat.New(n, k)
	for v := 0; v < n; v++ {
		labels.Set(v, int(comm[v]), 1)
		if !multi {
			continue
		}
		extra := r.Geometric(0.45)
		if extra > k-1 {
			extra = k - 1
		}
		for e := 0; e < extra; e++ {
			labels.Set(v, r.Intn(k), 1)
		}
	}
	return labels
}

// generateFeatures emits class-mean + noise attributes. Mean vectors
// are unit-scaled Gaussian draws; a vertex's attribute vector is the
// average of its active classes' means plus N(0, noiseStd²) noise.
func generateFeatures(r *rng.RNG, labels *mat.Dense, f int, noiseStd float64) *mat.Dense {
	k := labels.Cols
	means := mat.New(k, f)
	scale := 1 / math.Sqrt(float64(f))
	for i := range means.Data {
		means.Data[i] = r.NormFloat64() * scale
	}
	n := labels.Rows
	features := mat.New(n, f)
	for v := 0; v < n; v++ {
		row := features.Row(v)
		lab := labels.Row(v)
		active := 0.0
		for c, on := range lab {
			if on == 1 {
				mat.Axpy(row, means.Row(c), 1)
				active++
			}
		}
		if active > 1 {
			for j := range row {
				row[j] /= active
			}
		}
		for j := range row {
			row[j] += r.NormFloat64() * noiseStd * scale
		}
	}
	return features
}

// split partitions [0, n) into train/val/test index sets.
func split(r *rng.RNG, n int, trainFrac, valFrac float64) (train, val, test []int32) {
	p := r.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	train = make([]int32, 0, nTrain)
	val = make([]int32, 0, nVal)
	test = make([]int32, 0, n-nTrain-nVal)
	for i, v := range p {
		switch {
		case i < nTrain:
			train = append(train, int32(v))
		case i < nTrain+nVal:
			val = append(val, int32(v))
		default:
			test = append(test, int32(v))
		}
	}
	sortInt32(train)
	sortInt32(val)
	sortInt32(test)
	return
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
