package datasets

import (
	"fmt"
	"strings"
)

// Table I of the paper:
//
//	Dataset  Vertices   Edges        Attr  Classes
//	PPI      14,755     225,270      50    121 (multi)
//	Reddit   232,965    11,606,919   602   41  (single)
//	Yelp     716,847    6,977,410    300   100 (multi)
//	Amazon   1,598,960  132,169,734  200   107 (multi)
//
// Preset returns a Config whose vertex and edge budgets are the Table I
// numbers multiplied by scale (attribute and class counts are kept at
// their full values so the compute kernels see the paper's shapes).
// scale = 1 reproduces the full sizes; the default used by tests and
// benches is much smaller so runs complete on modest hosts.
func Preset(name string, scale float64) (Config, error) {
	if scale <= 0 {
		return Config{}, fmt.Errorf("datasets: scale must be positive, got %v", scale)
	}
	var cfg Config
	switch strings.ToLower(name) {
	case "ppi":
		cfg = Config{
			Name: "ppi", Vertices: 14755, TargetEdges: 225270,
			FeatureDim: 50, NumClasses: 121, MultiLabel: true,
			Homophily: 0.7, PowerLawExp: 2.5, NoiseStd: 0.35, Seed: 101,
		}
	case "reddit":
		cfg = Config{
			Name: "reddit", Vertices: 232965, TargetEdges: 11606919,
			FeatureDim: 602, NumClasses: 41, MultiLabel: false,
			Homophily: 0.8, PowerLawExp: 2.2, NoiseStd: 2.4, Seed: 102,
		}
	case "yelp":
		cfg = Config{
			Name: "yelp", Vertices: 716847, TargetEdges: 6977410,
			FeatureDim: 300, NumClasses: 100, MultiLabel: true,
			Homophily: 0.75, PowerLawExp: 2.4, NoiseStd: 0.45, Seed: 103,
		}
	case "amazon":
		cfg = Config{
			Name: "amazon", Vertices: 1598960, TargetEdges: 132169734,
			FeatureDim: 200, NumClasses: 107, MultiLabel: true,
			// The paper singles Amazon out as highly skewed (degree
			// cap discussion, Section VI-C2); use a heavier tail.
			Homophily: 0.7, PowerLawExp: 2.05, NoiseStd: 0.45, Seed: 104,
		}
	default:
		return Config{}, fmt.Errorf("datasets: unknown preset %q (want ppi|reddit|yelp|amazon)", name)
	}
	if scale != 1 {
		cfg.Vertices = max(int(float64(cfg.Vertices)*scale), cfg.NumClasses*4)
		cfg.TargetEdges = int64(float64(cfg.TargetEdges) * scale)
		minEdges := int64(cfg.Vertices) * 4
		if cfg.TargetEdges < minEdges {
			cfg.TargetEdges = minEdges
		}
	}
	return cfg, nil
}

// PresetNames lists the available presets in Table I order.
func PresetNames() []string { return []string{"ppi", "reddit", "yelp", "amazon"} }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
