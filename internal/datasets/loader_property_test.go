package datasets

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestLoaderRoundTripProperty: for arbitrary generator configurations,
// Write followed by Read reproduces the dataset exactly (graph
// adjacency, features, labels, splits).
func TestLoaderRoundTripProperty(t *testing.T) {
	f := func(seed uint16, multi bool) bool {
		cfg := Config{
			Name:        "prop",
			Vertices:    int(seed)%150 + 20,
			TargetEdges: int64(int(seed)%400 + 50),
			FeatureDim:  int(seed)%7 + 2,
			NumClasses:  int(seed)%5 + 2,
			MultiLabel:  multi,
			Seed:        uint64(seed) + 1,
		}
		orig := Generate(cfg)
		var buf bytes.Buffer
		if err := Write(orig, &buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.G.NumVertices() != orig.G.NumVertices() || got.G.NumEdges() != orig.G.NumEdges() {
			return false
		}
		if got.Features.MaxAbsDiff(orig.Features) != 0 {
			return false
		}
		if got.Labels.MaxAbsDiff(orig.Labels) != 0 {
			return false
		}
		if len(got.TrainIdx) != len(orig.TrainIdx) ||
			len(got.ValIdx) != len(orig.ValIdx) ||
			len(got.TestIdx) != len(orig.TestIdx) {
			return false
		}
		for i := range orig.TrainIdx {
			if got.TrainIdx[i] != orig.TrainIdx[i] {
				return false
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLoaderAdjacencyProperty: round-tripped graphs answer HasEdge
// identically to the original on random vertex pairs.
func TestLoaderAdjacencyProperty(t *testing.T) {
	orig := Generate(smallCfg())
	var buf bytes.Buffer
	if err := Write(orig, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := int32(orig.G.NumVertices())
	f := func(a, b uint16) bool {
		u := int32(a) % n
		v := int32(b) % n
		return orig.G.HasEdge(u, v) == got.G.HasEdge(u, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
