package datasets

import (
	"math"
	"testing"

	"gsgcn/internal/rng"
)

func smallCfg() Config {
	return Config{
		Name: "test", Vertices: 500, TargetEdges: 3000,
		FeatureDim: 16, NumClasses: 5, MultiLabel: false, Seed: 1,
	}
}

func TestGenerateValid(t *testing.T) {
	d := Generate(smallCfg())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.G.NumVertices() != 500 {
		t.Errorf("vertices = %d", d.G.NumVertices())
	}
	// Dedup and self-loop removal shrink the edge count, but it
	// should be in the right ballpark.
	if e := d.G.NumEdges(); e < 2000 || e > 3000 {
		t.Errorf("edges = %d, want ~3000", e)
	}
}

func TestGenerateMultiLabelValid(t *testing.T) {
	cfg := smallCfg()
	cfg.MultiLabel = true
	d := Generate(cfg)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Multi-label data should have more than one label on a healthy
	// fraction of vertices.
	multi := 0
	for v := 0; v < d.Labels.Rows; v++ {
		sum := 0.0
		for _, x := range d.Labels.Row(v) {
			sum += x
		}
		if sum > 1 {
			multi++
		}
	}
	if multi < d.Labels.Rows/10 {
		t.Errorf("only %d/%d vertices have multiple labels", multi, d.Labels.Rows)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallCfg())
	b := Generate(smallCfg())
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	if a.Features.MaxAbsDiff(b.Features) != 0 {
		t.Fatal("same seed produced different features")
	}
	for i := range a.TrainIdx {
		if a.TrainIdx[i] != b.TrainIdx[i] {
			t.Fatal("same seed produced different splits")
		}
	}
	cfg := smallCfg()
	cfg.Seed = 2
	c := Generate(cfg)
	if a.Features.MaxAbsDiff(c.Features) == 0 {
		t.Fatal("different seeds produced identical features")
	}
}

func TestHomophilyEffect(t *testing.T) {
	// Higher homophily must increase the fraction of intra-community
	// edges.
	frac := func(h float64) float64 {
		cfg := smallCfg()
		cfg.Homophily = h
		d := Generate(cfg)
		intra, total := 0, 0
		for v := int32(0); v < int32(d.G.NumVertices()); v++ {
			for _, w := range d.G.Neighbors(v) {
				total++
				if d.Community[v] == d.Community[w] {
					intra++
				}
			}
		}
		return float64(intra) / float64(total)
	}
	low, high := frac(0.1), frac(0.9)
	if high < low+0.2 {
		t.Errorf("homophily 0.9 gives intra-frac %.3f vs %.3f at 0.1; want clearly higher", high, low)
	}
}

func TestPowerLawSkew(t *testing.T) {
	// A heavier tail (smaller exponent) should raise the max degree.
	maxDeg := func(alpha float64) int {
		cfg := smallCfg()
		cfg.Vertices = 2000
		cfg.TargetEdges = 20000
		cfg.PowerLawExp = alpha
		return Generate(cfg).G.MaxDegree()
	}
	heavy, light := maxDeg(2.05), maxDeg(3.5)
	if heavy <= light {
		t.Errorf("max degree heavy-tail %d <= light-tail %d", heavy, light)
	}
}

func TestFeaturesClassSeparated(t *testing.T) {
	// Mean intra-class feature distance must be smaller than
	// inter-class distance, otherwise no model can learn.
	d := Generate(smallCfg())
	k := d.NumClasses
	f := d.FeatureDim()
	centroids := make([][]float64, k)
	counts := make([]int, k)
	for c := range centroids {
		centroids[c] = make([]float64, f)
	}
	for v := 0; v < d.G.NumVertices(); v++ {
		c := int(d.Community[v])
		counts[c]++
		row := d.Features.Row(v)
		for j, x := range row {
			centroids[c][j] += x
		}
	}
	for c := range centroids {
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	dist := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(s)
	}
	var inter float64
	var pairs int
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			inter += dist(centroids[a], centroids[b])
			pairs++
		}
	}
	inter /= float64(pairs)
	if inter < 0.1 {
		t.Errorf("class centroids nearly coincide (mean inter-class distance %.4f)", inter)
	}
}

func TestSplitDisjointAndStratified(t *testing.T) {
	d := Generate(smallCfg())
	if len(d.TrainIdx) < 300 {
		t.Errorf("train split too small: %d", len(d.TrainIdx))
	}
	if len(d.ValIdx) == 0 || len(d.TestIdx) == 0 {
		t.Error("empty val or test split")
	}
}

func TestPresetTable1(t *testing.T) {
	want := []struct {
		name  string
		v     int
		e     int64
		f, c  int
		multi bool
	}{
		{"ppi", 14755, 225270, 50, 121, true},
		{"reddit", 232965, 11606919, 602, 41, false},
		{"yelp", 716847, 6977410, 300, 100, true},
		{"amazon", 1598960, 132169734, 200, 107, true},
	}
	for _, w := range want {
		cfg, err := Preset(w.name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Vertices != w.v || cfg.TargetEdges != w.e ||
			cfg.FeatureDim != w.f || cfg.NumClasses != w.c || cfg.MultiLabel != w.multi {
			t.Errorf("preset %s = %+v, want Table I row %+v", w.name, cfg, w)
		}
	}
}

func TestPresetScale(t *testing.T) {
	full, _ := Preset("reddit", 1)
	half, err := Preset("reddit", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.Vertices != full.Vertices/2 {
		t.Errorf("scaled vertices = %d, want %d", half.Vertices, full.Vertices/2)
	}
	if half.FeatureDim != full.FeatureDim || half.NumClasses != full.NumClasses {
		t.Error("scaling must not change feature/class dimensions")
	}
	// Tiny scales keep a floor so the dataset stays trainable.
	tiny, err := Preset("ppi", 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Vertices < tiny.NumClasses {
		t.Errorf("tiny preset has %d vertices < %d classes", tiny.Vertices, tiny.NumClasses)
	}
}

func TestPresetErrors(t *testing.T) {
	if _, err := Preset("imagenet", 1); err == nil {
		t.Error("unknown preset should error")
	}
	if _, err := Preset("ppi", 0); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := Preset("ppi", -1); err == nil {
		t.Error("negative scale should error")
	}
}

func TestPresetNamesGenerateTiny(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name, 0.002)
		if err != nil {
			t.Fatal(err)
		}
		d := Generate(cfg)
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with zero vertices did not panic")
		}
	}()
	Generate(Config{Vertices: 0, NumClasses: 2, FeatureDim: 2})
}

func TestChungLuDegreeWeighting(t *testing.T) {
	// High-weight vertices should end up with higher degree: check
	// that degree distribution is skewed (max >> mean).
	cfg := smallCfg()
	cfg.Vertices = 3000
	cfg.TargetEdges = 30000
	cfg.PowerLawExp = 2.1
	d := Generate(cfg)
	if float64(d.G.MaxDegree()) < 3*d.G.AvgDegree() {
		t.Errorf("degree distribution not skewed: max %d vs avg %.1f", d.G.MaxDegree(), d.G.AvgDegree())
	}
}

func TestLabelNoiseBounded(t *testing.T) {
	r := rng.New(9)
	_ = r
	cfg := smallCfg()
	cfg.NoiseStd = 10 // extreme noise still yields a valid dataset
	d := Generate(cfg)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGeneratePPITiny(b *testing.B) {
	cfg, _ := Preset("ppi", 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
