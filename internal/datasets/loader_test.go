package datasets

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := Generate(smallCfg())
	var buf bytes.Buffer
	if err := Write(orig, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.MultiLabel != orig.MultiLabel || got.NumClasses != orig.NumClasses {
		t.Errorf("metadata mismatch: %s/%v/%d", got.Name, got.MultiLabel, got.NumClasses)
	}
	if got.G.NumVertices() != orig.G.NumVertices() || got.G.NumEdges() != orig.G.NumEdges() {
		t.Errorf("graph mismatch: V %d->%d E %d->%d",
			orig.G.NumVertices(), got.G.NumVertices(), orig.G.NumEdges(), got.G.NumEdges())
	}
	// Adjacency identical.
	for v := int32(0); v < int32(orig.G.NumVertices()); v++ {
		a, b := orig.G.Neighbors(v), got.G.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree %d -> %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
	// Features equal within text round-trip precision (%g is exact
	// for float64).
	if d := got.Features.MaxAbsDiff(orig.Features); d != 0 {
		t.Errorf("features differ by %g after round trip", d)
	}
	if d := got.Labels.MaxAbsDiff(orig.Labels); d != 0 {
		t.Errorf("labels differ after round trip")
	}
	for i := range orig.TrainIdx {
		if got.TrainIdx[i] != orig.TrainIdx[i] {
			t.Fatal("train split differs")
		}
	}
	if len(got.ValIdx) != len(orig.ValIdx) || len(got.TestIdx) != len(orig.TestIdx) {
		t.Error("split sizes differ")
	}
}

func TestWriteReadMultiLabel(t *testing.T) {
	cfg := smallCfg()
	cfg.MultiLabel = true
	orig := Generate(cfg)
	var buf bytes.Buffer
	if err := Write(orig, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Labels.MaxAbsDiff(orig.Labels); d != 0 {
		t.Error("multi-labels differ after round trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not-a-dataset foo\n",
		"bad field":   "gsgcn-dataset x vertices=abc edges=0 features=1 classes=1 multi=false\n",
		"no edges":    "gsgcn-dataset x vertices=1 edges=0 features=1 classes=1 multi=false\n[wrong]\n",
		"bad edge":    "gsgcn-dataset x vertices=2 edges=1 features=1 classes=1 multi=false\n[edges]\nzap\n",
		"short feats": "gsgcn-dataset x vertices=2 edges=0 features=2 classes=1 multi=false\n[edges]\n[features]\n1.0\n",
		"bad label":   "gsgcn-dataset x vertices=1 edges=0 features=1 classes=2 multi=false\n[edges]\n[features]\n1.0\n[labels]\n9\n",
		"no splits":   "gsgcn-dataset x vertices=1 edges=0 features=1 classes=1 multi=false\n[edges]\n[features]\n1.0\n[labels]\n0\n",
		"bad split":   "gsgcn-dataset x vertices=1 edges=0 features=1 classes=1 multi=false\n[edges]\n[features]\n1.0\n[labels]\n0\n[train]\nxyz\n[val]\n[test]\n",
		"weird split": "gsgcn-dataset x vertices=1 edges=0 features=1 classes=1 multi=false\n[edges]\n[features]\n1.0\n[labels]\n0\n[bogus]\n",
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	ds := Generate(smallCfg())
	path := filepath.Join(t.TempDir(), "ds.gsg")
	if err := WriteFile(ds, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.G.NumEdges() != ds.G.NumEdges() {
		t.Error("file round trip lost edges")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.gsg")); err == nil {
		t.Error("missing file should error")
	}
}
