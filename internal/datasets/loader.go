package datasets

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
)

// The .gsg container is a line-oriented text format:
//
//	gsgcn-dataset <name> vertices=V edges=E features=F classes=C multi=BOOL
//	[edges]     one "u v" pair per line, each undirected edge once
//	[features]  V lines of F space-separated floats
//	[labels]    V lines of space-separated active class ids
//	[train] / [val] / [test]   one vertex id per line
//
// Write writes a dataset in this format; Read parses it back. The
// format exists so generated datasets can be inspected, diffed and
// consumed by external tooling.

// Write serializes ds to w.
func Write(ds *Dataset, w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := ds.G.NumVertices()
	fmt.Fprintf(bw, "gsgcn-dataset %s vertices=%d edges=%d features=%d classes=%d multi=%v\n",
		ds.Name, n, ds.G.NumEdges(), ds.FeatureDim(), ds.NumClasses, ds.MultiLabel)
	fmt.Fprintln(bw, "[edges]")
	for v := int32(0); v < int32(n); v++ {
		for _, u := range ds.G.Neighbors(v) {
			if v < u {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	fmt.Fprintln(bw, "[features]")
	for v := 0; v < n; v++ {
		for j, x := range ds.Features.Row(v) {
			if j > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%g", x)
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "[labels]")
	for v := 0; v < n; v++ {
		first := true
		for c, x := range ds.Labels.Row(v) {
			if x == 1 {
				if !first {
					bw.WriteByte(' ')
				}
				fmt.Fprintf(bw, "%d", c)
				first = false
			}
		}
		bw.WriteByte('\n')
	}
	for _, part := range []struct {
		name string
		idx  []int32
	}{{"train", ds.TrainIdx}, {"val", ds.ValIdx}, {"test", ds.TestIdx}} {
		fmt.Fprintf(bw, "[%s]\n", part.name)
		for _, v := range part.idx {
			fmt.Fprintf(bw, "%d\n", v)
		}
	}
	return bw.Flush()
}

// Read parses a dataset previously serialized by Write.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("datasets: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) < 2 || header[0] != "gsgcn-dataset" {
		return nil, fmt.Errorf("datasets: bad header %q", sc.Text())
	}
	name := header[1]
	meta := map[string]string{}
	for _, kv := range header[2:] {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) == 2 {
			meta[parts[0]] = parts[1]
		}
	}
	atoi := func(key string) (int, error) {
		v, err := strconv.Atoi(meta[key])
		if err != nil {
			return 0, fmt.Errorf("datasets: header field %s=%q: %w", key, meta[key], err)
		}
		return v, nil
	}
	n, err := atoi("vertices")
	if err != nil {
		return nil, err
	}
	f, err := atoi("features")
	if err != nil {
		return nil, err
	}
	k, err := atoi("classes")
	if err != nil {
		return nil, err
	}
	multi := meta["multi"] == "true"

	expect := func(section string) error {
		if !sc.Scan() || sc.Text() != "["+section+"]" {
			return fmt.Errorf("datasets: expected [%s], got %q", section, sc.Text())
		}
		return nil
	}

	if err := expect("edges"); err != nil {
		return nil, err
	}
	var edges []graph.Edge
	for sc.Scan() {
		line := sc.Text()
		if line == "[features]" {
			break
		}
		var u, v int32
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("datasets: bad edge line %q: %w", line, err)
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, err
	}

	features := mat.New(n, f)
	for v := 0; v < n; v++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("datasets: truncated features at row %d", v)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != f {
			return nil, fmt.Errorf("datasets: feature row %d has %d values, want %d", v, len(fields), f)
		}
		row := features.Row(v)
		for j, s := range fields {
			x, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("datasets: feature row %d col %d: %w", v, j, err)
			}
			row[j] = x
		}
	}

	if err := expect("labels"); err != nil {
		return nil, err
	}
	labels := mat.New(n, k)
	for v := 0; v < n; v++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("datasets: truncated labels at row %d", v)
		}
		for _, s := range strings.Fields(sc.Text()) {
			c, err := strconv.Atoi(s)
			if err != nil || c < 0 || c >= k {
				return nil, fmt.Errorf("datasets: label row %d has bad class %q", v, s)
			}
			labels.Set(v, c, 1)
		}
	}

	// Splits are the last three sections; parse them with lookahead.
	train, val, test, err := readThreeSplits(sc)
	if err != nil {
		return nil, err
	}

	ds := &Dataset{
		Name: name, G: g, Features: features, Labels: labels,
		Community: make([]int32, n), MultiLabel: multi, NumClasses: k,
		TrainIdx: train, ValIdx: val, TestIdx: test,
	}
	return ds, nil
}

// readThreeSplits consumes the [train]/[val]/[test] sections.
func readThreeSplits(sc *bufio.Scanner) (train, val, test []int32, err error) {
	sections := map[string]*[]int32{"train": &train, "val": &val, "test": &test}
	var current *[]int32
	seen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]") {
			name := line[1 : len(line)-1]
			tgt, ok := sections[name]
			if !ok {
				return nil, nil, nil, fmt.Errorf("datasets: unexpected section %q", line)
			}
			current = tgt
			seen++
			continue
		}
		if current == nil {
			return nil, nil, nil, fmt.Errorf("datasets: split data before section header: %q", line)
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("datasets: bad split entry %q", line)
		}
		*current = append(*current, int32(v))
	}
	if seen != 3 {
		return nil, nil, nil, fmt.Errorf("datasets: found %d split sections, want 3", seen)
	}
	return train, val, test, nil
}

// WriteFile serializes ds to path.
func WriteFile(ds *Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(ds, f)
}

// ReadFile parses a dataset from path.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
