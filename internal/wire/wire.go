// Package wire implements the serving plane's deterministic binary
// protocol: length-prefixed frames carrying embed/predict/topk
// requests and responses with little-endian float64 rows, so a client
// can decode answers that are bit-identical to the JSON API without
// paying float formatting/parsing on either side.
//
// Frame layout (fixed framing, no varints), all integers
// little-endian:
//
//	[0:4]    magic "GSGW"
//	[4]      u8 protocol version (1)
//	[5]      u8 frame type
//	[6:10]   u32 payload length N
//	[10:10+N] payload
//	trailer: u32 CRC-32 (IEEE) of every preceding byte
//
// Payload encodings are fixed-layout per frame type: strings are
// u16-length-prefixed UTF-8, vertex ids are u64, floats are
// math.Float64bits. Decoding validates the magic, version, declared
// length (capped at MaxPayload) and CRC trailer, and cross-checks
// every element count against the bytes actually present before
// allocating, so a truncated, corrupted or hostile frame fails with a
// clean error — never a panic, short read or unbounded allocation
// (FuzzDecode, mirroring the artifact/checkpoint loaders).
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// Magic opens every frame.
	Magic = "GSGW"
	// Version is the protocol version carried in byte 4.
	Version = 1
	// MaxPayload caps the payload length a decoder will accept or an
	// encoder will produce (64 MiB — far above any real response, low
	// enough that four hostile header bytes cannot demand gigabytes).
	MaxPayload = 1 << 26
	// headerLen and trailerLen bracket the payload.
	headerLen  = 10
	trailerLen = 4

	// ContentType is the HTTP media type that selects this protocol
	// via content negotiation (Accept / Content-Type headers).
	ContentType = "application/x-gsgcn-wire"
)

// Type identifies what a frame carries.
type Type byte

// Frame types. Requests have the high bit clear, responses set;
// TError answers any request that failed.
const (
	TEmbedReq    Type = 0x01
	TPredictReq  Type = 0x02
	TTopKReq     Type = 0x03
	TEmbedResp   Type = 0x81
	TPredictResp Type = 0x82
	TTopKResp    Type = 0x83
	TError       Type = 0xEE
)

// Top-K mode bytes: the wire form of the API's mode strings.
const (
	ModeAuto  byte = 0
	ModeExact byte = 1
	ModeANN   byte = 2
)

// ModeByte maps an API mode string ("", "exact", "ann") to its wire
// byte. Unknown strings report ok=false.
func ModeByte(s string) (b byte, ok bool) {
	switch s {
	case "":
		return ModeAuto, true
	case "exact":
		return ModeExact, true
	case "ann":
		return ModeANN, true
	}
	return 0, false
}

// ModeString maps a wire mode byte back to the API string. Unknown
// bytes report ok=false.
func ModeString(b byte) (s string, ok bool) {
	switch b {
	case ModeAuto:
		return "", true
	case ModeExact:
		return "exact", true
	case ModeANN:
		return "ann", true
	}
	return "", false
}

// Message is any frame payload this package can encode and decode.
type Message interface {
	// FrameType reports the type byte the message travels under.
	FrameType() Type
	appendPayload(buf []byte) []byte
}

// EmbedRequest asks for embedding rows. An empty Model addresses the
// default model.
type EmbedRequest struct {
	Model string
	IDs   []int
}

// PredictRequest asks for label predictions. An empty Model addresses
// the default model.
type PredictRequest struct {
	Model string
	IDs   []int
}

// TopKRequest asks for the k nearest neighbors of one vertex. K == 0
// and Ef == 0 mean "unset" and take the API's defaults, exactly like
// omitting the query parameters on the HTTP surface.
type TopKRequest struct {
	Model string
	ID    int
	K     int
	Mode  byte
	Ef    int
}

// EmbedResponse mirrors the JSON embed result: Vectors[i] is the
// embedding row for IDs[i], Dim floats wide.
type EmbedResponse struct {
	Version      uint64
	ModelVersion uint64
	Dim          int
	IDs          []int
	Vectors      [][]float64
}

// PredictResponse mirrors the JSON predict result.
type PredictResponse struct {
	Version      uint64
	ModelVersion uint64
	Classes      int
	MultiLabel   bool
	IDs          []int
	Labels       [][]int
	Probs        [][]float64
}

// Neighbor is one scored top-K hit.
type Neighbor struct {
	ID    int
	Score float64
}

// TopKResponse mirrors the JSON topk result. Mode is the resolved
// mode byte (ModeExact or ModeANN); Ef is 0 unless the ANN path ran.
type TopKResponse struct {
	Version      uint64
	ModelVersion uint64
	ID           int
	K            int
	Mode         byte
	Ef           int
	Degraded     bool
	Neighbors    []Neighbor
}

// ErrorResponse carries a failed request's HTTP-equivalent status and
// the same error/reason strings the JSON envelope would hold, so both
// transports fail identically.
type ErrorResponse struct {
	Status  int
	Reason  string
	Message string
}

// FrameType implements Message.
func (*EmbedRequest) FrameType() Type { return TEmbedReq }

// FrameType implements Message.
func (*PredictRequest) FrameType() Type { return TPredictReq }

// FrameType implements Message.
func (*TopKRequest) FrameType() Type { return TTopKReq }

// FrameType implements Message.
func (*EmbedResponse) FrameType() Type { return TEmbedResp }

// FrameType implements Message.
func (*PredictResponse) FrameType() Type { return TPredictResp }

// FrameType implements Message.
func (*TopKResponse) FrameType() Type { return TTopKResp }

// FrameType implements Message.
func (*ErrorResponse) FrameType() Type { return TError }

func appendStr(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendIDs(buf []byte, ids []int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

func (m *EmbedRequest) appendPayload(buf []byte) []byte {
	buf = appendStr(buf, m.Model)
	return appendIDs(buf, m.IDs)
}

func (m *PredictRequest) appendPayload(buf []byte) []byte {
	buf = appendStr(buf, m.Model)
	return appendIDs(buf, m.IDs)
}

func (m *TopKRequest) appendPayload(buf []byte) []byte {
	buf = appendStr(buf, m.Model)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.K))
	buf = append(buf, m.Mode)
	return binary.LittleEndian.AppendUint32(buf, uint32(m.Ef))
}

func (m *EmbedResponse) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, m.Version)
	buf = binary.LittleEndian.AppendUint64(buf, m.ModelVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Dim))
	buf = appendIDs(buf, m.IDs)
	for _, row := range m.Vectors {
		for _, x := range row {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	return buf
}

func (m *PredictResponse) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, m.Version)
	buf = binary.LittleEndian.AppendUint64(buf, m.ModelVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Classes))
	var multi byte
	if m.MultiLabel {
		multi = 1
	}
	buf = append(buf, multi)
	buf = appendIDs(buf, m.IDs)
	for _, labels := range m.Labels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(labels)))
		for _, l := range labels {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
		}
	}
	for _, probs := range m.Probs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(probs)))
		for _, p := range probs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p))
		}
	}
	return buf
}

func (m *TopKResponse) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, m.Version)
	buf = binary.LittleEndian.AppendUint64(buf, m.ModelVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.K))
	buf = append(buf, m.Mode)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Ef))
	var degraded byte
	if m.Degraded {
		degraded = 1
	}
	buf = append(buf, degraded)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Neighbors)))
	for _, n := range m.Neighbors {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(n.ID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.Score))
	}
	return buf
}

func (m *ErrorResponse) appendPayload(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Status))
	buf = appendStr(buf, m.Reason)
	return appendStr(buf, m.Message)
}

// Encode serializes a message as one complete frame. Deterministic:
// equal messages encode to equal bytes. It fails if a string exceeds
// the u16 length field or the payload exceeds MaxPayload.
func Encode(m Message) ([]byte, error) {
	if err := checkEncodable(m); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, headerLen+64)
	buf = append(buf, Magic...)
	buf = append(buf, Version, byte(m.FrameType()))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // payload length, patched below
	buf = m.appendPayload(buf)
	n := len(buf) - headerLen
	if n > MaxPayload {
		return nil, fmt.Errorf("wire: payload is %d bytes, cap %d", n, MaxPayload)
	}
	binary.LittleEndian.PutUint32(buf[6:10], uint32(n))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// checkEncodable rejects messages whose variable-length fields do not
// fit their wire length prefixes, before any bytes are produced.
func checkEncodable(m Message) error {
	str := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("wire: string field is %d bytes, cap %d", len(s), math.MaxUint16)
		}
		return nil
	}
	switch m := m.(type) {
	case *EmbedRequest:
		return str(m.Model)
	case *PredictRequest:
		return str(m.Model)
	case *TopKRequest:
		return str(m.Model)
	case *ErrorResponse:
		if err := str(m.Reason); err != nil {
			return err
		}
		return str(m.Message)
	}
	return nil
}

// reader is a bounds-checked cursor over a frame payload. The first
// out-of-bounds read latches err; every later read returns zero
// values, so parse code can run straight-line and check once.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated payload (%d bytes)", len(r.b))
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u16() int {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return int(v)
}

func (r *reader) u32() int {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return int(v)
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := r.u16()
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// remaining reports the unread payload bytes: the allocation bound
// every declared count is cross-checked against.
func (r *reader) remaining() int { return len(r.b) - r.off }

// count reads a u32 element count and verifies the payload actually
// carries count elements of elemSize bytes before the caller
// allocates for them.
func (r *reader) count(elemSize int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(r.remaining()) {
		r.err = fmt.Errorf("wire: count %d needs %d bytes, %d remain", n, int64(n)*int64(elemSize), r.remaining())
		return 0
	}
	return n
}

func (r *reader) ids() []int {
	n := r.count(8)
	if r.err != nil {
		return nil
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = int(r.u64())
	}
	return ids
}

// done fails the parse if an error latched or payload bytes remain
// unconsumed (a trailing-garbage frame is corrupt, not extensible).
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing payload bytes", len(r.b)-r.off)
	}
	return nil
}

func parsePayload(t Type, payload []byte) (Message, error) {
	r := &reader{b: payload}
	var m Message
	switch t {
	case TEmbedReq:
		m = &EmbedRequest{Model: r.str(), IDs: r.ids()}
	case TPredictReq:
		m = &PredictRequest{Model: r.str(), IDs: r.ids()}
	case TTopKReq:
		m = &TopKRequest{
			Model: r.str(),
			ID:    int(r.u64()),
			K:     r.u32(),
			Mode:  r.u8(),
			Ef:    r.u32(),
		}
	case TEmbedResp:
		resp := &EmbedResponse{
			Version:      r.u64(),
			ModelVersion: r.u64(),
			Dim:          r.u32(),
			IDs:          r.ids(),
		}
		if r.err == nil {
			n := len(resp.IDs)
			if resp.Dim < 0 || int64(n)*int64(resp.Dim)*8 > int64(r.remaining()) {
				r.err = fmt.Errorf("wire: %dx%d vector block exceeds the %d remaining bytes", n, resp.Dim, r.remaining())
			} else {
				resp.Vectors = make([][]float64, n)
				for i := range resp.Vectors {
					row := make([]float64, resp.Dim)
					for j := range row {
						row[j] = r.f64()
					}
					resp.Vectors[i] = row
				}
			}
		}
		m = resp
	case TPredictResp:
		resp := &PredictResponse{
			Version:      r.u64(),
			ModelVersion: r.u64(),
			Classes:      r.u32(),
			MultiLabel:   r.u8() != 0,
			IDs:          r.ids(),
		}
		if r.err == nil {
			n := len(resp.IDs)
			resp.Labels = make([][]int, n)
			for i := range resp.Labels {
				cnt := r.count(4)
				if r.err != nil {
					break
				}
				labels := make([]int, cnt)
				for j := range labels {
					labels[j] = int(int32(r.u32()))
				}
				resp.Labels[i] = labels
			}
			if r.err == nil {
				resp.Probs = make([][]float64, n)
				for i := range resp.Probs {
					cnt := r.count(8)
					if r.err != nil {
						break
					}
					probs := make([]float64, cnt)
					for j := range probs {
						probs[j] = r.f64()
					}
					resp.Probs[i] = probs
				}
			}
		}
		m = resp
	case TTopKResp:
		resp := &TopKResponse{
			Version:      r.u64(),
			ModelVersion: r.u64(),
			ID:           int(r.u64()),
			K:            r.u32(),
			Mode:         r.u8(),
			Ef:           r.u32(),
			Degraded:     r.u8() != 0,
		}
		cnt := r.count(16)
		if r.err == nil {
			resp.Neighbors = make([]Neighbor, cnt)
			for i := range resp.Neighbors {
				resp.Neighbors[i] = Neighbor{ID: int(r.u64()), Score: r.f64()}
			}
		}
		m = resp
	case TError:
		m = &ErrorResponse{Status: r.u32(), Reason: r.str(), Message: r.str()}
	default:
		return nil, fmt.Errorf("wire: unknown frame type 0x%02x", byte(t))
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// checkHeader validates a complete 10-byte frame header and returns
// the declared payload length.
func checkHeader(hdr []byte) (int, error) {
	if string(hdr[:4]) != Magic {
		return 0, fmt.Errorf("wire: bad magic %q", hdr[:4])
	}
	if hdr[4] != Version {
		return 0, fmt.Errorf("wire: protocol version %d, want %d", hdr[4], Version)
	}
	n := binary.LittleEndian.Uint32(hdr[6:10])
	if n > MaxPayload {
		return 0, fmt.Errorf("wire: payload declares %d bytes, cap %d", n, MaxPayload)
	}
	return int(n), nil
}

// Decode parses one complete frame from the front of data and returns
// the message plus the frame's total size in bytes. Extra bytes after
// the frame are left for the caller (pipelined streams).
func Decode(data []byte) (Message, int, error) {
	if len(data) < headerLen+trailerLen {
		return nil, 0, fmt.Errorf("wire: %d bytes is too short for a frame", len(data))
	}
	n, err := checkHeader(data[:headerLen])
	if err != nil {
		return nil, 0, err
	}
	total := headerLen + n + trailerLen
	if len(data) < total {
		return nil, 0, fmt.Errorf("wire: frame declares %d bytes, %d available", total, len(data))
	}
	body := data[:headerLen+n]
	stored := binary.LittleEndian.Uint32(data[headerLen+n : total])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return nil, 0, fmt.Errorf("wire: checksum mismatch (stored %08x, computed %08x) — frame corrupt", stored, got)
	}
	m, err := parsePayload(Type(data[5]), data[headerLen:headerLen+n])
	if err != nil {
		return nil, 0, err
	}
	return m, total, nil
}

// ReadMessage reads exactly one frame from r. The payload buffer it
// allocates is bounded by the validated header, never by a hostile
// length alone (MaxPayload cap). io.EOF before any byte means a clean
// end of stream; a partial frame surfaces as io.ErrUnexpectedEOF.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n, err := checkHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	rest := make([]byte, n+trailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: reading %d-byte payload: %w", n, err)
	}
	body := append(hdr[:], rest[:n]...)
	stored := binary.LittleEndian.Uint32(rest[n:])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return nil, fmt.Errorf("wire: checksum mismatch (stored %08x, computed %08x) — frame corrupt", stored, got)
	}
	return parsePayload(Type(hdr[5]), body[headerLen:])
}

// WriteMessage encodes m and writes the complete frame to w.
func WriteMessage(w io.Writer, m Message) error {
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}
