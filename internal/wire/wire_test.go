package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// testMessages is one of every frame type with representative values,
// including negative-zero/NaN-free float edge bits, empty and
// non-empty variable sections.
func testMessages() []Message {
	return []Message{
		&EmbedRequest{IDs: []int{0, 1, 7}},
		&EmbedRequest{Model: "canary", IDs: []int{42}},
		&PredictRequest{Model: "prod", IDs: []int{3, 1, 4, 1, 5}},
		&TopKRequest{ID: 9, K: 10, Mode: ModeANN, Ef: 64},
		&TopKRequest{Model: "m", ID: 0}, // K/Ef unset, auto mode
		&EmbedResponse{
			Version: 3, ModelVersion: 120, Dim: 2,
			IDs:     []int{5, 6},
			Vectors: [][]float64{{1.5, -0.25}, {math.Copysign(0, -1), 1e-300}},
		},
		&EmbedResponse{Version: 1, ModelVersion: 1, Dim: 0, IDs: []int{}, Vectors: [][]float64{}},
		&PredictResponse{
			Version: 2, ModelVersion: 40, Classes: 3, MultiLabel: true,
			IDs:    []int{8, 9},
			Labels: [][]int{{0, 2}, {}},
			Probs:  [][]float64{{0.25, 0.5, 0.25}, {0.125, 0.125, 0.75}},
		},
		&TopKResponse{
			Version: 7, ModelVersion: 200, ID: 4, K: 2, Mode: ModeExact,
			Degraded:  true,
			Neighbors: []Neighbor{{ID: 1, Score: 0.875}, {ID: 2, Score: -0.5}},
		},
		&TopKResponse{Version: 1, ModelVersion: 1, ID: 0, K: 1, Mode: ModeANN, Ef: 32, Neighbors: []Neighbor{}},
		&ErrorResponse{Status: 429, Reason: "shed", Message: "serve: overloaded, request shed"},
		&ErrorResponse{Status: 400, Message: "serve: no ids given"},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, m := range testMessages() {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", m, err)
		}
		got, n, err := Decode(frame)
		if err != nil {
			t.Fatalf("Decode(%#v frame): %v", m, err)
		}
		if n != len(frame) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(frame))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip:\n got %#v\nwant %#v", got, m)
		}
		// Determinism: equal messages encode to equal bytes.
		again, _ := Encode(got)
		if !bytes.Equal(frame, again) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", again, frame)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	msgs := testMessages()
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage #%d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stream #%d:\n got %#v\nwant %#v", i, got, want)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestDecodeLeavesTail pins pipelining: Decode consumes exactly one
// frame and reports its size so the caller can resume at the next.
func TestDecodeLeavesTail(t *testing.T) {
	a, _ := Encode(&EmbedRequest{IDs: []int{1}})
	b, _ := Encode(&TopKRequest{ID: 2, K: 3})
	stream := append(append([]byte(nil), a...), b...)
	m1, n1, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != len(a) {
		t.Fatalf("first frame consumed %d bytes, want %d", n1, len(a))
	}
	m2, n2, err := Decode(stream[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(stream) {
		t.Fatalf("frames consumed %d bytes, want %d", n1+n2, len(stream))
	}
	if _, ok := m1.(*EmbedRequest); !ok {
		t.Fatalf("first message is %T", m1)
	}
	if _, ok := m2.(*TopKRequest); !ok {
		t.Fatalf("second message is %T", m2)
	}
}

// reseal recomputes the CRC trailer after a deliberate mutation, so
// tests exercise the structural checks rather than the checksum.
func reseal(frame []byte) []byte {
	body := frame[:len(frame)-trailerLen]
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	good, _ := Encode(&EmbedResponse{
		Version: 1, ModelVersion: 1, Dim: 2,
		IDs: []int{1, 2}, Vectors: [][]float64{{1, 2}, {3, 4}},
	})

	flipBody := append([]byte(nil), good...)
	flipBody[headerLen+3] ^= 0x40 // payload bit flip → checksum mismatch

	flipTrailer := append([]byte(nil), good...)
	flipTrailer[len(flipTrailer)-1] ^= 0x01

	badMagic := reseal(append([]byte("NOPE"), good[4:]...))

	badVersion := append([]byte(nil), good...)
	badVersion[4] = 99
	badVersion = reseal(badVersion)

	badType := append([]byte(nil), good...)
	badType[5] = 0x7F
	badType = reseal(badType)

	// Declared payload length larger than the bytes present.
	overLong := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(overLong[6:10], uint32(len(good)))

	// Declared length over the hard cap.
	overCap := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(overCap[6:10], MaxPayload+1)

	// A tiny resealed embed-response frame declaring 2^31 ids: the
	// count cross-check must reject it before allocating anything.
	absurd := []byte(Magic)
	absurd = append(absurd, Version, byte(TEmbedResp))
	absurd = binary.LittleEndian.AppendUint32(absurd, 24)
	absurd = binary.LittleEndian.AppendUint64(absurd, 1)       // version
	absurd = binary.LittleEndian.AppendUint64(absurd, 1)       // model version
	absurd = binary.LittleEndian.AppendUint32(absurd, 4)       // dim
	absurd = binary.LittleEndian.AppendUint32(absurd, 1<<31-1) // id count
	absurd = binary.LittleEndian.AppendUint32(absurd, crc32.ChecksumIEEE(absurd))

	// Trailing garbage inside a resealed payload.
	trailing := append([]byte(nil), good[:len(good)-trailerLen]...)
	trailing = append(trailing, 0xAB)
	binary.LittleEndian.PutUint32(trailing[6:10], uint32(len(trailing)-headerLen))
	trailing = binary.LittleEndian.AppendUint32(trailing, crc32.ChecksumIEEE(trailing))

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "too short"},
		{"header only", good[:headerLen], "too short"},
		{"truncated payload", good[:len(good)-8], "available"},
		{"payload bit flip", flipBody, "checksum mismatch"},
		{"trailer bit flip", flipTrailer, "checksum mismatch"},
		{"bad magic", badMagic, "bad magic"},
		{"bad version", badVersion, "protocol version"},
		{"unknown type", badType, "unknown frame type"},
		{"declared length over data", overLong, "available"},
		{"declared length over cap", overCap, "cap"},
		{"absurd id count", absurd, "remain"},
		{"trailing payload bytes", trailing, "trailing"},
	}
	for _, tc := range cases {
		m, _, err := Decode(tc.data)
		if err == nil {
			t.Fatalf("%s: Decode accepted %#v", tc.name, m)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err %q does not mention %q", tc.name, err, tc.want)
		}
		// The streaming path must reject the same bytes.
		if _, err := ReadMessage(bytes.NewReader(tc.data)); err == nil {
			t.Fatalf("%s: ReadMessage accepted the frame", tc.name)
		}
	}
}

func TestReadMessagePartialFrame(t *testing.T) {
	frame, _ := Encode(&EmbedRequest{IDs: []int{1, 2, 3}})
	if _, err := ReadMessage(bytes.NewReader(frame[:len(frame)-2])); err == nil {
		t.Fatal("ReadMessage accepted a partial frame")
	}
	// A clean EOF between frames is io.EOF exactly, so connection
	// loops can distinguish shutdown from corruption.
	if _, err := ReadMessage(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestEncodeRejectsOversizeStrings(t *testing.T) {
	m := &ErrorResponse{Status: 400, Message: strings.Repeat("x", math.MaxUint16+1)}
	if _, err := Encode(m); err == nil {
		t.Fatal("Encode accepted a string over the u16 length field")
	}
}

func TestModeMapping(t *testing.T) {
	for _, s := range []string{"", "exact", "ann"} {
		b, ok := ModeByte(s)
		if !ok {
			t.Fatalf("ModeByte(%q) not ok", s)
		}
		back, ok := ModeString(b)
		if !ok || back != s {
			t.Fatalf("mode %q -> %d -> %q", s, b, back)
		}
	}
	if _, ok := ModeByte("fuzzy"); ok {
		t.Fatal("ModeByte accepted an unknown mode")
	}
	if _, ok := ModeString(99); ok {
		t.Fatal("ModeString accepted an unknown byte")
	}
}
