package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzDecode drives the frame decoder with truncated, bit-flipped,
// resealed-after-mutation and synthetic inputs — the same contract as
// the artifact/checkpoint loaders: Decode either returns a coherent
// message or an error, never panics, and never lets a small input
// demand a huge allocation (header cap plus the bytes-actually-present
// cross-checks on every declared count).
func FuzzDecode(f *testing.F) {
	for _, m := range testMessages() {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)/2]) // truncated mid-payload
	}
	f.Add([]byte{})
	f.Add([]byte("not a wire frame"))

	// Resealed corruption: valid trailer, mutated payload byte.
	good, _ := Encode(&EmbedResponse{
		Version: 1, ModelVersion: 1, Dim: 1,
		IDs: []int{3}, Vectors: [][]float64{{0.5}},
	})
	flipped := append([]byte(nil), good[:len(good)-trailerLen]...)
	flipped[headerLen] ^= 0xFF
	f.Add(binary.LittleEndian.AppendUint32(flipped, crc32.ChecksumIEEE(flipped)))

	// A resealed header declaring an absurd neighbor count.
	absurd := []byte(Magic)
	absurd = append(absurd, Version, byte(TTopKResp))
	absurd = binary.LittleEndian.AppendUint32(absurd, 38)
	absurd = append(absurd, make([]byte, 34)...)
	absurd = binary.LittleEndian.AppendUint32(absurd, 1<<30)
	f.Add(binary.LittleEndian.AppendUint32(absurd, crc32.ChecksumIEEE(absurd)))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside a message", err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil message with nil error")
		}
		if n < headerLen+trailerLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// An accepted message must re-encode to the exact accepted
		// frame: the format has one canonical encoding per message.
		again, err := Encode(m)
		if err != nil {
			t.Fatalf("re-encoding accepted message: %v", err)
		}
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", again, data[:n])
		}
		// The streaming decoder must agree with the in-memory one.
		sm, err := ReadMessage(bytes.NewReader(data[:n]))
		if err != nil {
			t.Fatalf("ReadMessage rejects what Decode accepted: %v", err)
		}
		if se, _ := Encode(sm); !bytes.Equal(se, again) {
			t.Fatal("ReadMessage and Decode disagree")
		}
	})
}
