package partition

// Vertex sharding for the serving tier: the same partitioning idea the
// paper applies to training-time feature propagation (Section V),
// lifted to the serving fleet — a graph's vertex set is split across N
// shard engines, each owning an exclusive subset of the vertices.
// Ownership must be a pure function of (seed, vertex id) so that every
// component — the offline artifact builder, each shard engine, and the
// scatter-gather router — derives the identical assignment
// independently, across processes and across rebuilds, with nothing to
// distribute but the (Shards, Seed) pair.

// ShardMap deterministically assigns vertex ids to one of Shards
// serving shards. The zero Shards value means "unsharded"; callers
// treat Assign as owning everything in that case.
type ShardMap struct {
	// Shards is the shard count N (>= 1 for a sharded deployment).
	Shards int
	// Seed keys the assignment hash. Two maps with equal (Shards,
	// Seed) agree on every vertex; changing Seed reshuffles ownership
	// wholesale.
	Seed uint64
}

// mix is the SplitMix64 finalizer: a full-avalanche bijection on 64
// bits, so consecutive vertex ids land on uncorrelated shards and the
// assignment is balanced to within sampling noise at any seed.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Assign returns the shard owning vertex v, in [0, Shards). A map
// with Shards <= 1 owns everything on shard 0.
func (s ShardMap) Assign(v int32) int {
	if s.Shards <= 1 {
		return 0
	}
	return int(mix(s.Seed^uint64(uint32(v))) % uint64(s.Shards))
}

// Owned returns, in ascending order, the vertex ids of [0, n) that
// shard owns. The ascending order is load-bearing: shard engines
// store their rows in this order, so local row r of shard i is the
// r-th smallest owned id — a deterministic global↔local mapping every
// component reconstructs identically.
func (s ShardMap) Owned(n, shard int) []int32 {
	out := make([]int32, 0, ownedCap(n, s.Shards))
	for v := 0; v < n; v++ {
		if s.Assign(int32(v)) == shard {
			out = append(out, int32(v))
		}
	}
	return out
}

// ownedCap sizes the Owned allocation: the expected share plus slack.
func ownedCap(n, shards int) int {
	if shards <= 1 {
		return n
	}
	return n/shards + n/(8*shards) + 8
}

// Counts returns how many of the vertices [0, n) each shard owns.
func (s ShardMap) Counts(n int) []int {
	shards := s.Shards
	if shards < 1 {
		shards = 1
	}
	counts := make([]int, shards)
	for v := 0; v < n; v++ {
		counts[s.Assign(int32(v))]++
	}
	return counts
}
