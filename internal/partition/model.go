package partition

import "gsgcn/internal/graph"

// The communication model of Section V-B, Equation (3):
//
//	gcomm(P, Q) = 2·Q·n·d  +  8·P·n·f·γP   (bytes)
//
// The first term streams the CSR neighbor lists (INT16 vertex ids, 2
// bytes) once per feature partition; the second loads the feature
// blocks H^(i,j) (DOUBLE values, 8 bytes) once per vertex partition,
// inflated by γP = |V_src^(i)|/|V|, the replication factor of the
// vertex partitioning.

// CommModel carries the problem parameters of the partitioning
// optimization (4).
type CommModel struct {
	N          int     // subgraph vertices n
	AvgDeg     float64 // subgraph average degree d
	F          int     // feature length f
	Cores      int     // available processors C
	CacheBytes int     // per-core fast memory S_cache
}

// Volume returns gcomm(P, Q) in bytes under replication factor gamma.
func (m CommModel) Volume(p, q int, gamma float64) float64 {
	return 2*float64(q)*float64(m.N)*m.AvgDeg + 8*float64(p)*float64(m.N)*float64(m.F)*gamma
}

// LowerBound returns the partition-independent lower bound 8·n·f
// derived in the proof of Theorem 2 (every feature byte must cross
// the slow-to-fast boundary at least once).
func (m CommModel) LowerBound() float64 {
	return 8 * float64(m.N) * float64(m.F)
}

// OptimalQ returns the Theorem 2 feature-partition count
// Q = max(C, ceil(8·n·f / S_cache)) used with P = 1.
func (m CommModel) OptimalQ() int {
	q := m.Cores
	if m.CacheBytes > 0 {
		byCache := (8*m.N*m.F + m.CacheBytes - 1) / m.CacheBytes
		if byCache > q {
			q = byCache
		}
	}
	if q < 1 {
		q = 1
	}
	if q > m.F {
		// More partitions than features is meaningless; the cache
		// constraint is then unsatisfiable and Q=f is the finest cut.
		q = m.F
	}
	return q
}

// FeasibleTheorem2 reports whether the preconditions of Theorem 2
// hold: C <= 4f/d and 2·n·d <= S_cache.
func (m CommModel) FeasibleTheorem2() bool {
	if m.AvgDeg <= 0 {
		return true
	}
	if float64(m.Cores) > 4*float64(m.F)/m.AvgDeg {
		return false
	}
	return 2*float64(m.N)*m.AvgDeg <= float64(m.CacheBytes)
}

// ApproxRatio returns gcomm(1, OptimalQ) / LowerBound; Theorem 2
// guarantees this is at most 2 whenever FeasibleTheorem2 holds.
func (m CommModel) ApproxRatio() float64 {
	lb := m.LowerBound()
	if lb == 0 {
		return 1
	}
	return m.Volume(1, m.OptimalQ(), 1) / lb
}

// GammaP measures the replication factor γP of partitioning g's
// vertices into p contiguous ranges: the mean over partitions of
// |V_src^(i)| / |V|, where V_src^(i) is the set of vertices sending
// features into partition i (including its own members, because of
// the self-connection noted in Section V-B).
func GammaP(g *graph.CSR, p int) float64 {
	if g.N == 0 || p < 1 {
		return 0
	}
	if p > g.N {
		p = g.N
	}
	mark := make([]int, g.N) // last partition that counted vertex v, minus one
	for i := range mark {
		mark[i] = -1
	}
	var total float64
	for i := 0; i < p; i++ {
		vlo := i * g.N / p
		vhi := (i + 1) * g.N / p
		count := 0
		for v := vlo; v < vhi; v++ {
			if mark[v] != i {
				mark[v] = i
				count++ // self-connection: v in V_src
			}
			for _, u := range g.Neighbors(int32(v)) {
				if mark[u] != i {
					mark[u] = i
					count++
				}
			}
		}
		total += float64(count)
	}
	return total / (float64(p) * float64(g.N))
}

// BestVolume exhaustively minimizes gcomm over P·Q >= Cores with the
// cache constraint, measuring γP on the given graph. It is used by
// the Theorem 2 ablation to compare the feature-only solution against
// the true optimum. Complexity O(maxP · E), so call on subgraphs.
func (m CommModel) BestVolume(g *graph.CSR, maxP int) (bestP, bestQ int, best float64) {
	if maxP < 1 {
		maxP = 1
	}
	best = -1
	for p := 1; p <= maxP; p++ {
		gamma := GammaP(g, p)
		// Smallest Q satisfying both constraints.
		q := (m.Cores + p - 1) / p
		if m.CacheBytes > 0 {
			bytesPerPart := 8 * float64(m.N) * gamma * float64(m.F)
			byCache := int(bytesPerPart/float64(m.CacheBytes)) + 1
			if byCache > q {
				q = byCache
			}
		}
		if q < 1 {
			q = 1
		}
		if q > m.F {
			continue
		}
		v := m.Volume(p, q, gamma)
		if best < 0 || v < best {
			best, bestP, bestQ = v, p, q
		}
	}
	return bestP, bestQ, best
}
