package partition

import (
	"math"
	"testing"
	"testing/quick"

	"gsgcn/internal/datasets"
	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
	"gsgcn/internal/testutil"
)

func smallGraph(tb testing.TB) *graph.CSR {
	tb.Helper()
	g, err := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0}})
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func randomFeatures(r *rng.RNG, n, f int) *mat.Dense {
	m := mat.New(n, f)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

// refPropagate is the obvious O(E*f) reference.
func refPropagate(src *mat.Dense, g *graph.CSR, norm Norm) *mat.Dense {
	dst := mat.New(src.Rows, src.Cols)
	for v := 0; v < g.N; v++ {
		nb := g.Neighbors(int32(v))
		if len(nb) == 0 {
			continue
		}
		for _, u := range nb {
			w := 1.0
			if norm == NormDst {
				w = 1 / float64(len(nb))
			} else {
				w = 1 / float64(g.Degree(u))
			}
			for j := 0; j < src.Cols; j++ {
				dst.Data[v*src.Cols+j] += w * src.At(int(u), j)
			}
		}
	}
	return dst
}

func TestPropagateMatchesReference(t *testing.T) {
	cfg := datasets.Config{Name: "t", Vertices: 300, TargetEdges: 2400, FeatureDim: 4, NumClasses: 4, Seed: 3}
	g := datasets.Generate(cfg).G
	r := rng.New(1)
	src := randomFeatures(r, g.N, 24)
	for _, norm := range []Norm{NormDst, NormSrc} {
		want := refPropagate(src, g, norm)
		for _, q := range []int{1, 3, 8, 24, 100} {
			for _, workers := range []int{1, 4} {
				dst := mat.New(g.N, 24)
				Propagate(dst, src, g, norm, q, workers)
				if d := dst.MaxAbsDiff(want); d > 1e-12 {
					t.Errorf("norm=%v q=%d workers=%d: max diff %g", norm, q, workers, d)
				}
			}
		}
	}
}

func TestPropagateMeanSemantics(t *testing.T) {
	g := smallGraph(t) // 5-cycle: every vertex has exactly 2 neighbors
	src := mat.New(5, 2)
	for v := 0; v < 5; v++ {
		src.Set(v, 0, float64(v))
		src.Set(v, 1, 1)
	}
	dst := mat.New(5, 2)
	Propagate(dst, src, g, NormDst, 2, 1)
	// Vertex 0's neighbors are 1 and 4: mean of col0 = 2.5, col1 = 1.
	if got := dst.At(0, 0); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("dst[0,0] = %v, want 2.5", got)
	}
	if got := dst.At(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("dst[0,1] = %v, want 1", got)
	}
}

func TestPropagateIsolatedVertexZero(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	src := mat.New(3, 2)
	src.Fill(7)
	dst := mat.New(3, 2)
	dst.Fill(99) // stale values must be overwritten
	Propagate(dst, src, g, NormDst, 1, 1)
	if dst.At(2, 0) != 0 || dst.At(2, 1) != 0 {
		t.Errorf("isolated vertex aggregated to %v, want 0", dst.Row(2))
	}
	if dst.At(0, 0) != 7 {
		t.Errorf("vertex 0 should aggregate neighbor value 7, got %v", dst.At(0, 0))
	}
}

func TestNormSrcIsTransposeOfNormDst(t *testing.T) {
	// <y, NormDst(x)> == <NormSrc(y), x> for all x, y — the adjoint
	// identity the backward pass relies on.
	cfg := datasets.Config{Name: "t", Vertices: 120, TargetEdges: 900, FeatureDim: 4, NumClasses: 4, Seed: 5}
	g := datasets.Generate(cfg).G
	r := rng.New(2)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		_ = rr
		x := randomFeatures(r, g.N, 3)
		y := randomFeatures(r, g.N, 3)
		ax := mat.New(g.N, 3)
		Propagate(ax, x, g, NormDst, 2, 1)
		aty := mat.New(g.N, 3)
		Propagate(aty, y, g, NormSrc, 2, 1)
		var left, right float64
		for i := range ax.Data {
			left += y.Data[i] * ax.Data[i]
			right += aty.Data[i] * x.Data[i]
		}
		return math.Abs(left-right) <= 1e-9*(1+math.Abs(left))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropagate2DMatches(t *testing.T) {
	cfg := datasets.Config{Name: "t", Vertices: 200, TargetEdges: 1500, FeatureDim: 4, NumClasses: 4, Seed: 7}
	g := datasets.Generate(cfg).G
	src := randomFeatures(rng.New(3), g.N, 16)
	want := refPropagate(src, g, NormDst)
	for _, pv := range []int{1, 2, 5, 200} {
		for _, q := range []int{1, 4, 16} {
			dst := mat.New(g.N, 16)
			Propagate2D(dst, src, g, NormDst, pv, q, 3)
			if d := dst.MaxAbsDiff(want); d > 1e-12 {
				t.Errorf("pv=%d q=%d: max diff %g", pv, q, d)
			}
		}
	}
}

func TestSimPropagateMatchesAndTimes(t *testing.T) {
	cfg := datasets.Config{Name: "t", Vertices: 400, TargetEdges: 3000, FeatureDim: 4, NumClasses: 4, Seed: 9}
	g := datasets.Generate(cfg).G
	src := randomFeatures(rng.New(4), g.N, 64)
	want := mat.New(g.N, 64)
	Propagate(want, src, g, NormDst, 64, 1)
	dst := mat.New(g.N, 64)
	res := SimPropagate(dst, src, g, NormDst, 64, 8, perf.SimConfig{})
	if d := dst.MaxAbsDiff(want); d != 0 {
		t.Errorf("SimPropagate differs: %g", d)
	}
	if res.Shards != 8 {
		t.Errorf("shards = %d, want 8", res.Shards)
	}
	// The shard times behind Speedup are microsecond-scale wall-clock
	// measurements; a descheduled shard on a busy CI host can inflate
	// one of them, so accept the best of three attempts.
	if s, ok := testutil.BestOf(3, func() (float64, bool) {
		r := SimPropagate(dst, src, g, NormDst, 64, 8, perf.SimConfig{})
		return r.Speedup(), r.Speedup() >= 3
	}); !ok {
		t.Errorf("feature-partitioned propagation sim speedup %.2f at p=8, want > 3 (balanced chunks)", s)
	}
}

func TestOptimalQ(t *testing.T) {
	// Case 1 of Theorem 2: cores dominate.
	m := CommModel{N: 1000, AvgDeg: 10, F: 512, Cores: 40, CacheBytes: 1 << 20}
	// 8nf = 8*1000*512 = 4,096,000 bytes; /1MiB -> 4 partitions; C=40 wins.
	if q := m.OptimalQ(); q != 40 {
		t.Errorf("OptimalQ = %d, want 40", q)
	}
	// Case 2: cache dominates.
	m.CacheBytes = 64 << 10
	// ceil(4096000 / 65536) = 63 > 40.
	if q := m.OptimalQ(); q != 63 {
		t.Errorf("OptimalQ = %d, want 63", q)
	}
	// Q never exceeds f.
	m.F = 16
	m.Cores = 100
	if q := m.OptimalQ(); q != 16 {
		t.Errorf("OptimalQ = %d, want clamped 16", q)
	}
}

func TestTheorem2ApproxRatio(t *testing.T) {
	// Paper's typical values: n <= 8000, f = 512, d = 15, C <= 136,
	// S_cache = 256KB. The feature-only solution must be within 2x of
	// the lower bound.
	m := CommModel{N: 8000, AvgDeg: 15, F: 512, Cores: 40, CacheBytes: 256 << 10}
	if !m.FeasibleTheorem2() {
		t.Fatal("paper's parameters should satisfy Theorem 2 preconditions")
	}
	if r := m.ApproxRatio(); r > 2 {
		t.Errorf("approximation ratio %.3f exceeds 2", r)
	}
}

func TestTheorem2RatioQuick(t *testing.T) {
	// Property: for any feasible configuration, ApproxRatio <= 2.
	f := func(nSeed, fSeed, cSeed uint16) bool {
		n := int(nSeed)%8000 + 100
		feat := int(fSeed)%1024 + 64
		cores := int(cSeed)%64 + 1
		m := CommModel{N: n, AvgDeg: 15, F: feat, Cores: cores, CacheBytes: 256 << 10}
		if !m.FeasibleTheorem2() {
			return true // precondition violated; theorem silent
		}
		return m.ApproxRatio() <= 2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGammaPBounds(t *testing.T) {
	cfg := datasets.Config{Name: "t", Vertices: 500, TargetEdges: 4000, FeatureDim: 4, NumClasses: 4, Seed: 11}
	g := datasets.Generate(cfg).G
	prev := -1.0
	for _, p := range []int{1, 2, 4, 8, 16} {
		gamma := GammaP(g, p)
		if gamma < 1.0/float64(p)-1e-9 || gamma > 1+1e-9 {
			t.Errorf("gamma(%d) = %.4f outside [1/p, 1]", p, gamma)
		}
		_ = prev
		prev = gamma
	}
	if g1 := GammaP(g, 1); math.Abs(g1-1) > 1e-9 {
		t.Errorf("gamma(1) = %v, want 1", g1)
	}
}

func TestBestVolumeNeverBeatsLowerBoundHalf(t *testing.T) {
	// The exhaustive optimum can be at most 2x better than the
	// feature-only solution under Theorem 2 conditions.
	cfg := datasets.Config{Name: "t", Vertices: 2000, TargetEdges: 15000, FeatureDim: 4, NumClasses: 4, Seed: 13}
	g := datasets.Generate(cfg).G
	m := CommModel{N: g.N, AvgDeg: g.AvgDegree(), F: 512, Cores: 40, CacheBytes: 256 << 10}
	_, _, best := m.BestVolume(g, 16)
	featureOnly := m.Volume(1, m.OptimalQ(), 1)
	if best <= 0 {
		t.Fatal("BestVolume found no feasible solution")
	}
	if featureOnly > 2*best+1e-6 {
		t.Errorf("feature-only volume %.0f exceeds 2x optimum %.0f", featureOnly, best)
	}
}

func TestPropagateShapePanics(t *testing.T) {
	g := smallGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Propagate(mat.New(4, 2), mat.New(5, 2), g, NormDst, 1, 1)
}

func BenchmarkPropagateQ1(b *testing.B) { benchPropagate(b, 1) }
func BenchmarkPropagateQ8(b *testing.B) { benchPropagate(b, 8) }

func benchPropagate(b *testing.B, q int) {
	cfg := datasets.Config{Name: "b", Vertices: 2000, TargetEdges: 20000, FeatureDim: 4, NumClasses: 4, Seed: 1}
	g := datasets.Generate(cfg).G
	src := randomFeatures(rng.New(1), g.N, 256)
	dst := mat.New(g.N, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Propagate(dst, src, g, NormDst, q, perf.NumWorkers())
	}
}
