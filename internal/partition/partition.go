// Package partition implements the paper's Section V: parallel
// feature propagation within the sampled subgraph, partitioned along
// the feature dimension (Algorithm 6), together with the
// communication-cost model of Equation (3) and the Theorem 2 solver
// that justifies feature-only partitioning (P = 1) as a
// 2-approximation of the communication-minimal schedule.
//
// Propagation semantics: every vertex aggregates the mean of its
// neighbors' feature vectors (the feature-aggregation step of Section
// II-A). The backward pass of the same operator distributes gradient
// mass to neighbors scaled by the *source* degree, which on an
// undirected graph is the transpose operator; both directions share
// one kernel parameterized by the normalization mode.
package partition

import (
	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/perf"
)

// Norm selects the normalization of the aggregation operator.
type Norm int

const (
	// NormDst computes dst[v] = (1/deg(v)) * sum_{u in N(v)} src[u]
	// — the forward mean aggregator.
	NormDst Norm = iota
	// NormSrc computes dst[v] = sum_{u in N(v)} src[u]/deg(u)
	// — the transpose (backward) of the mean aggregator.
	NormSrc
)

// PropagateRange aggregates columns [colLo, colHi) of src into dst
// for every vertex of g. dst and src are |V| x f matrices; rows of
// dst outside the column range are left untouched. This is the unit
// of work one processor performs on one feature partition H^(i,j).
func PropagateRange(dst, src *mat.Dense, g *graph.CSR, norm Norm, colLo, colHi int) {
	f := src.Cols
	for v := 0; v < g.N; v++ {
		drow := dst.Data[v*f+colLo : v*f+colHi]
		for j := range drow {
			drow[j] = 0
		}
		nb := g.Neighbors(int32(v))
		if len(nb) == 0 {
			continue
		}
		switch norm {
		case NormDst:
			for _, u := range nb {
				srow := src.Data[int(u)*f+colLo : int(u)*f+colHi]
				for j, x := range srow {
					drow[j] += x
				}
			}
			inv := 1 / float64(len(nb))
			for j := range drow {
				drow[j] *= inv
			}
		case NormSrc:
			for _, u := range nb {
				inv := 1 / float64(g.Degree(u))
				srow := src.Data[int(u)*f+colLo : int(u)*f+colHi]
				for j, x := range srow {
					drow[j] += inv * x
				}
			}
		}
	}
}

// Propagate runs the full feature propagation with feature-dimension
// partitioning (Algorithm 6): the feature dimension is split into q
// chunks and chunks are processed by `workers` real goroutines. dst
// must not alias src.
func Propagate(dst, src *mat.Dense, g *graph.CSR, norm Norm, q, workers int) {
	if dst.Rows != g.N || src.Rows != g.N || dst.Cols != src.Cols {
		panic("partition: Propagate shape mismatch")
	}
	f := src.Cols
	if q < 1 {
		q = 1
	}
	if q > f {
		q = f
	}
	perf.Parallel(q, workers, func(_, qlo, qhi int) {
		for i := qlo; i < qhi; i++ {
			lo := i * f / q
			hi := (i + 1) * f / q
			if lo < hi {
				PropagateRange(dst, src, g, norm, lo, hi)
			}
		}
	})
}

// SimPropagate executes the same partitioned propagation under the
// simulated multicore executor with p cores (each simulated core
// processes q/p feature chunks), returning the simulated timing used
// by the Fig. 3B harness.
func SimPropagate(dst, src *mat.Dense, g *graph.CSR, norm Norm, q, p int, cfg perf.SimConfig) perf.SimResult {
	f := src.Cols
	if q < 1 {
		q = 1
	}
	if q > f {
		q = f
	}
	if p > q {
		p = q
	}
	return perf.SimRange(q, p, cfg, func(qlo, qhi int) {
		for i := qlo; i < qhi; i++ {
			lo := i * f / q
			hi := (i + 1) * f / q
			if lo < hi {
				PropagateRange(dst, src, g, norm, lo, hi)
			}
		}
	})
}

// Propagate2D is the ablation comparator: it additionally partitions
// the vertex set into pv contiguous ranges (graph partitioning) and
// the features into q chunks, processing the pv*q blocks in parallel.
// The paper argues this brings no benefit for small subgraphs and
// harms load balance; BenchmarkPartitionAblation quantifies it.
func Propagate2D(dst, src *mat.Dense, g *graph.CSR, norm Norm, pv, q, workers int) {
	if dst.Rows != g.N || src.Rows != g.N || dst.Cols != src.Cols {
		panic("partition: Propagate2D shape mismatch")
	}
	f := src.Cols
	if q < 1 {
		q = 1
	}
	if q > f {
		q = f
	}
	if pv < 1 {
		pv = 1
	}
	if pv > g.N {
		pv = g.N
	}
	blocks := pv * q
	perf.Parallel(blocks, workers, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			vi, qi := b/q, b%q
			vlo := vi * g.N / pv
			vhi := (vi + 1) * g.N / pv
			clo := qi * f / q
			chi := (qi + 1) * f / q
			if vlo >= vhi || clo >= chi {
				continue
			}
			propagateBlock(dst, src, g, norm, vlo, vhi, clo, chi)
		}
	})
}

// propagateBlock aggregates the column range for vertices [vlo, vhi).
func propagateBlock(dst, src *mat.Dense, g *graph.CSR, norm Norm, vlo, vhi, colLo, colHi int) {
	f := src.Cols
	for v := vlo; v < vhi; v++ {
		drow := dst.Data[v*f+colLo : v*f+colHi]
		for j := range drow {
			drow[j] = 0
		}
		nb := g.Neighbors(int32(v))
		if len(nb) == 0 {
			continue
		}
		switch norm {
		case NormDst:
			for _, u := range nb {
				srow := src.Data[int(u)*f+colLo : int(u)*f+colHi]
				for j, x := range srow {
					drow[j] += x
				}
			}
			inv := 1 / float64(len(nb))
			for j := range drow {
				drow[j] *= inv
			}
		case NormSrc:
			for _, u := range nb {
				inv := 1 / float64(g.Degree(u))
				srow := src.Data[int(u)*f+colLo : int(u)*f+colHi]
				for j, x := range srow {
					drow[j] += inv * x
				}
			}
		}
	}
}
