package partition

import "testing"

// TestShardMapPartitions pins the partition property: every vertex is
// owned by exactly one shard, and Owned/Assign/Counts agree.
func TestShardMapPartitions(t *testing.T) {
	const n = 5000
	for _, shards := range []int{1, 2, 3, 4, 7, 16} {
		sm := ShardMap{Shards: shards, Seed: 42}
		counts := sm.Counts(n)
		total := 0
		seen := make(map[int32]int)
		for i := 0; i < shards; i++ {
			owned := sm.Owned(n, i)
			if len(owned) != counts[i] {
				t.Errorf("shards=%d: Owned(%d) has %d ids, Counts says %d", shards, i, len(owned), counts[i])
			}
			prev := int32(-1)
			for _, v := range owned {
				if v <= prev {
					t.Fatalf("shards=%d shard=%d: Owned not strictly ascending at %d", shards, i, v)
				}
				prev = v
				if got := sm.Assign(v); got != i {
					t.Fatalf("shards=%d: Owned(%d) lists %d but Assign says %d", shards, i, v, got)
				}
				seen[v]++
			}
			total += len(owned)
		}
		if total != n {
			t.Errorf("shards=%d: shards own %d vertices, want %d", shards, total, n)
		}
		for v, c := range seen {
			if c != 1 {
				t.Errorf("shards=%d: vertex %d owned by %d shards", shards, v, c)
			}
		}
	}
}

// TestShardMapDeterministic pins stability: the assignment is a pure
// function of (Shards, Seed) — identical across calls and value
// copies — and changing the seed actually moves vertices.
func TestShardMapDeterministic(t *testing.T) {
	a := ShardMap{Shards: 4, Seed: 7}
	b := ShardMap{Shards: 4, Seed: 7}
	moved := 0
	c := ShardMap{Shards: 4, Seed: 8}
	for v := int32(0); v < 4096; v++ {
		if a.Assign(v) != b.Assign(v) {
			t.Fatalf("equal maps disagree on vertex %d", v)
		}
		if a.Assign(v) != c.Assign(v) {
			moved++
		}
	}
	if moved == 0 {
		t.Error("changing the seed moved no vertices")
	}
}

// TestShardMapBalance asserts the hash spreads load: no shard owns
// more than twice (or less than half) its fair share on a large id
// range — far looser than the actual SplitMix64 deviation, tight
// enough to catch a broken mix.
func TestShardMapBalance(t *testing.T) {
	const n = 20000
	for _, shards := range []int{2, 4, 8} {
		sm := ShardMap{Shards: shards, Seed: 1}
		fair := n / shards
		for i, c := range sm.Counts(n) {
			if c < fair/2 || c > 2*fair {
				t.Errorf("shards=%d: shard %d owns %d vertices, fair share %d", shards, i, c, fair)
			}
		}
	}
}

// TestShardMapUnsharded pins the degenerate forms: 0 or 1 shards own
// everything on shard 0.
func TestShardMapUnsharded(t *testing.T) {
	for _, shards := range []int{0, 1} {
		sm := ShardMap{Shards: shards}
		if got := sm.Assign(123); got != 0 {
			t.Errorf("Shards=%d: Assign = %d, want 0", shards, got)
		}
		if got := len(sm.Owned(100, 0)); got != 100 {
			t.Errorf("Shards=%d: shard 0 owns %d of 100", shards, got)
		}
	}
}
