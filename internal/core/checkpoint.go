package core

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc64"
	"io"
	"os"
)

// checkpoint is the serialized form of a model's trainable state plus
// enough architecture metadata (format v2) to reconstruct the model
// without the dataset it was trained on — what an inference server
// needs to come up from a checkpoint file alone.
type checkpoint struct {
	Version int

	// Architecture metadata, present since format v2.
	ModelVersion uint64 // trained-weights generation tag (e.g. optimizer steps)
	InDim        int    // input feature dimensionality
	Classes      int    // classifier output width
	MultiLabel   bool   // sigmoid-BCE (true) vs softmax-CE head
	Aggregator   string // neighbor aggregation operator name

	Layers     int
	Hidden     int
	Names      []string
	Rows, Cols []int
	Data       [][]float64
}

// checkpointVersion is the current on-disk format. Version 1 lacked
// the architecture metadata; Load still accepts it (the metadata
// fields decode as zero values), LoadModel does not.
const checkpointVersion = 2

// ArchMeta is the architecture fingerprint of a model plus its
// trained-weights generation: the fields a serving artifact must match
// before its precomputed tables may stand in for a fresh forward pass.
// Two models with equal ArchMeta loaded from the same checkpoint
// produce bit-identical embeddings over the same graph.
type ArchMeta struct {
	ModelVersion uint64 `json:"model_version"`
	InDim        int    `json:"in_dim"`
	Classes      int    `json:"classes"`
	MultiLabel   bool   `json:"multi_label"`
	Aggregator   string `json:"aggregator"`
	Layers       int    `json:"layers"`
	Hidden       int    `json:"hidden"`
}

// ArchMeta returns the model's architecture fingerprint — the same
// metadata Save embeds in a v2 checkpoint.
func (m *Model) ArchMeta() ArchMeta {
	return ArchMeta{
		ModelVersion: m.ModelVersion,
		InDim:        m.Layers[0].InDim,
		Classes:      m.Head.OutDim,
		MultiLabel:   m.Loss.Name() == "sigmoid-bce",
		Aggregator:   m.Layers[0].Agg.String(),
		Layers:       len(m.Layers),
		Hidden:       m.cfg.Hidden,
	}
}

// EmbeddingDim returns the width of the final-layer embedding table a
// full-graph forward pass of this model produces.
func (m *Model) EmbeddingDim() int {
	return m.Layers[len(m.Layers)-1].OutWidth()
}

// weightsCRCTable is the CRC-64/ECMA table for WeightsChecksum.
var weightsCRCTable = crc64.MakeTable(crc64.ECMA)

// WeightsChecksum fingerprints the model's trainable parameters:
// CRC-64/ECMA over every tensor's name, shape and raw float64 bits in
// Params() order. Serving-artifact validation needs it because
// ModelVersion is an optimizer step count, not a content hash — two
// trainings with different seeds or data can land on the same step
// count, and only the weight bits tell their embeddings apart.
func (m *Model) WeightsChecksum() uint64 {
	h := crc64.New(weightsCRCTable)
	var b [8]byte
	for _, p := range m.Params() {
		h.Write([]byte(p.Name))
		binary.LittleEndian.PutUint64(b[:], uint64(p.W.Rows))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], uint64(p.W.Cols))
		h.Write(b[:])
		// Batched, but byte-identical to the original per-element
		// writes: checksums persisted in existing artifacts stay valid.
		hashFloat64s(h, p.W.Data)
	}
	return h.Sum64()
}

// Sanity caps on checkpoint-declared architecture, enforced by
// LoadModel before any allocation sized by the metadata. They bound a
// reload's memory exposure to corrupted (or hostile) checkpoint files
// without constraining any realistic model.
const (
	maxCheckpointDim    = 1 << 20 // per-dimension cap (features, hidden, classes)
	maxCheckpointLayers = 1 << 10
	maxCheckpointParams = 1 << 28 // ~2 GiB of float64 weights
)

// Save writes the model's trainable parameters and architecture
// metadata to w in gob format. Optimizer state is not saved; resumed
// training restarts Adam's moment estimates.
func (m *Model) Save(w io.Writer) error {
	ps := m.Params()
	arch := m.ArchMeta()
	ck := checkpoint{
		Version:      checkpointVersion,
		ModelVersion: arch.ModelVersion,
		InDim:        arch.InDim,
		Classes:      arch.Classes,
		MultiLabel:   arch.MultiLabel,
		Aggregator:   arch.Aggregator,
		Layers:       arch.Layers,
		Hidden:       arch.Hidden,
	}
	for _, p := range ps {
		ck.Names = append(ck.Names, p.Name)
		ck.Rows = append(ck.Rows, p.W.Rows)
		ck.Cols = append(ck.Cols, p.W.Cols)
		data := make([]float64, len(p.W.Data))
		copy(data, p.W.Data)
		ck.Data = append(ck.Data, data)
	}
	return gob.NewEncoder(w).Encode(ck)
}

// Load restores trainable parameters previously written by Save into
// a model of identical architecture. It fails loudly on any shape or
// ordering mismatch rather than silently mis-assigning weights.
func (m *Model) Load(r io.Reader) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if ck.Version < 1 || ck.Version > checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want 1..%d", ck.Version, checkpointVersion)
	}
	if err := m.restore(&ck); err != nil {
		return err
	}
	return nil
}

// restore copies checkpoint tensors into m after verifying shapes.
// Every length is checked before any index: a corrupted or truncated
// checkpoint must fail with an error, never panic or silently
// short-copy weights.
func (m *Model) restore(ck *checkpoint) error {
	ps := m.Params()
	if len(ps) != len(ck.Names) {
		return fmt.Errorf("core: checkpoint has %d tensors, model has %d", len(ck.Names), len(ps))
	}
	if len(ck.Rows) != len(ck.Names) || len(ck.Cols) != len(ck.Names) || len(ck.Data) != len(ck.Names) {
		return fmt.Errorf("core: checkpoint metadata inconsistent: %d names, %d rows, %d cols, %d tensors",
			len(ck.Names), len(ck.Rows), len(ck.Cols), len(ck.Data))
	}
	for i, p := range ps {
		if p.Name != ck.Names[i] {
			return fmt.Errorf("core: tensor %d is %q in checkpoint, %q in model", i, ck.Names[i], p.Name)
		}
		if p.W.Rows != ck.Rows[i] || p.W.Cols != ck.Cols[i] {
			return fmt.Errorf("core: tensor %q shape %dx%d in checkpoint, %dx%d in model",
				p.Name, ck.Rows[i], ck.Cols[i], p.W.Rows, p.W.Cols)
		}
		if len(ck.Data[i]) != ck.Rows[i]*ck.Cols[i] {
			return fmt.Errorf("core: tensor %q carries %d values for a %dx%d shape",
				p.Name, len(ck.Data[i]), ck.Rows[i], ck.Cols[i])
		}
	}
	for i, p := range ps {
		copy(p.W.Data, ck.Data[i])
	}
	m.ModelVersion = ck.ModelVersion
	return nil
}

// LoadModel reconstructs a model purely from a format-v2 checkpoint —
// architecture metadata plus weights — so that a serving process does
// not need the training-time dataset object to shape the network.
func LoadModel(r io.Reader) (*Model, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if ck.Version < 2 {
		return nil, fmt.Errorf("core: checkpoint version %d has no architecture metadata (need >= 2)", ck.Version)
	}
	if ck.InDim <= 0 || ck.Classes <= 0 || ck.Layers <= 0 || ck.Hidden <= 0 {
		return nil, fmt.Errorf("core: checkpoint metadata invalid (in=%d classes=%d layers=%d hidden=%d)",
			ck.InDim, ck.Classes, ck.Layers, ck.Hidden)
	}
	// Bound the architecture before allocating it: a corrupted or
	// hostile checkpoint that decodes cleanly must not be able to make
	// newModelArch allocate unbounded weight matrices. The caps are far
	// above any model this repository trains.
	if ck.InDim > maxCheckpointDim || ck.Classes > maxCheckpointDim ||
		ck.Hidden > maxCheckpointDim || ck.Layers > maxCheckpointLayers {
		return nil, fmt.Errorf("core: checkpoint metadata out of bounds (in=%d classes=%d layers=%d hidden=%d, caps %d/%d)",
			ck.InDim, ck.Classes, ck.Layers, ck.Hidden, maxCheckpointDim, maxCheckpointLayers)
	}
	if total := (int64(ck.InDim) + int64(ck.Hidden)*2*int64(ck.Layers) + int64(ck.Classes)) * 2 * int64(ck.Hidden); total > maxCheckpointParams {
		return nil, fmt.Errorf("core: checkpoint declares ~%d parameters, cap %d", total, int64(maxCheckpointParams))
	}
	switch ck.Aggregator {
	case "", "mean", "sym", "sum":
	default:
		// Validate here rather than panicking inside newModelArch: a
		// corrupt checkpoint must fail a hot reload with an error, not
		// take the serving process down.
		return nil, fmt.Errorf("core: checkpoint has unknown aggregator %q", ck.Aggregator)
	}
	cfg := Config{
		Layers:     ck.Layers,
		Hidden:     ck.Hidden,
		Aggregator: ck.Aggregator,
		Seed:       1,
	}
	m := newModelArch(ck.InDim, ck.Classes, ck.MultiLabel, cfg)
	if err := m.restore(&ck); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadModelFile is LoadModel over a checkpoint file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

// SaveFile writes a checkpoint to path (created or truncated).
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// LoadFile restores a checkpoint from path.
func (m *Model) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Load(f)
}
