package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// checkpoint is the serialized form of a model's trainable state.
type checkpoint struct {
	Version    int
	Layers     int
	Hidden     int
	Names      []string
	Rows, Cols []int
	Data       [][]float64
}

const checkpointVersion = 1

// Save writes the model's trainable parameters to w in gob format.
// Optimizer state is not saved; resumed training restarts Adam's
// moment estimates.
func (m *Model) Save(w io.Writer) error {
	ps := m.Params()
	ck := checkpoint{
		Version: checkpointVersion,
		Layers:  len(m.Layers),
		Hidden:  m.cfg.Hidden,
	}
	for _, p := range ps {
		ck.Names = append(ck.Names, p.Name)
		ck.Rows = append(ck.Rows, p.W.Rows)
		ck.Cols = append(ck.Cols, p.W.Cols)
		data := make([]float64, len(p.W.Data))
		copy(data, p.W.Data)
		ck.Data = append(ck.Data, data)
	}
	return gob.NewEncoder(w).Encode(ck)
}

// Load restores trainable parameters previously written by Save into
// a model of identical architecture. It fails loudly on any shape or
// ordering mismatch rather than silently mis-assigning weights.
func (m *Model) Load(r io.Reader) error {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return fmt.Errorf("core: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	ps := m.Params()
	if len(ps) != len(ck.Names) {
		return fmt.Errorf("core: checkpoint has %d tensors, model has %d", len(ck.Names), len(ps))
	}
	for i, p := range ps {
		if p.Name != ck.Names[i] {
			return fmt.Errorf("core: tensor %d is %q in checkpoint, %q in model", i, ck.Names[i], p.Name)
		}
		if p.W.Rows != ck.Rows[i] || p.W.Cols != ck.Cols[i] {
			return fmt.Errorf("core: tensor %q shape %dx%d in checkpoint, %dx%d in model",
				p.Name, ck.Rows[i], ck.Cols[i], p.W.Rows, p.W.Cols)
		}
	}
	for i, p := range ps {
		copy(p.W.Data, ck.Data[i])
	}
	return nil
}

// SaveFile writes a checkpoint to path (created or truncated).
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// LoadFile restores a checkpoint from path.
func (m *Model) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Load(f)
}
