package core

import (
	"testing"

	"gsgcn/internal/datasets"
)

// TestDataFingerprint pins the content-addressing contract behind
// multi-model graph sharing: regenerating the same dataset yields the
// same fingerprint, and any content change — seed, a feature bit, an
// edge, the label regime — changes it.
func TestDataFingerprint(t *testing.T) {
	cfg := datasets.Config{
		Name: "fp", Vertices: 150, TargetEdges: 700,
		FeatureDim: 5, NumClasses: 3, Seed: 9,
	}
	a := datasets.Generate(cfg)
	b := datasets.Generate(cfg)
	if DataFingerprint(a) != DataFingerprint(b) {
		t.Fatal("identical generations fingerprint differently")
	}

	cfg.Seed = 10
	if DataFingerprint(a) == DataFingerprint(datasets.Generate(cfg)) {
		t.Error("different seeds collide")
	}

	// One flipped feature bit must change the hash.
	cfg.Seed = 9
	c := datasets.Generate(cfg)
	c.Features.Data[7] += 1e-12
	if DataFingerprint(a) == DataFingerprint(c) {
		t.Error("feature perturbation not detected")
	}

	// Label content is part of the identity even when the graph and
	// features agree.
	f := datasets.Generate(cfg)
	row := f.Labels.Row(3)
	for j := range row {
		row[j] = 1 - row[j] // move vertex 3 to a different class
	}
	if DataFingerprint(a) == DataFingerprint(f) {
		t.Error("label change not detected")
	}

	// The label regime is part of the identity even when the graph and
	// features agree.
	d := datasets.Generate(cfg)
	d.NumClasses++
	if DataFingerprint(a) == DataFingerprint(d) {
		t.Error("class-count change not detected")
	}
	e := datasets.Generate(cfg)
	e.MultiLabel = !e.MultiLabel
	if DataFingerprint(a) == DataFingerprint(e) {
		t.Error("multi-label flip not detected")
	}
}
