package core

import (
	"encoding/binary"
	"hash/crc64"
	"io"
	"math"

	"gsgcn/internal/datasets"
)

// hashChunk is the staging-buffer size (in 8-byte words) for the
// batched hash helpers: large enough that per-Write call overhead
// vanishes against Table-I-scale matrices, small enough to live on
// the stack.
const hashChunk = 512

// hashFloat64s writes the IEEE-754 bit patterns of xs to h in order,
// batched through a fixed buffer. The byte stream is identical to
// writing each value individually.
func hashFloat64s(h io.Writer, xs []float64) {
	var buf [hashChunk * 8]byte
	for len(xs) > 0 {
		n := len(xs)
		if n > hashChunk {
			n = hashChunk
		}
		for i, x := range xs[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
		}
		h.Write(buf[:n*8])
		xs = xs[n:]
	}
}

// hashInt64s is hashFloat64s for int64 slices.
func hashInt64s(h io.Writer, xs []int64) {
	var buf [hashChunk * 8]byte
	for len(xs) > 0 {
		n := len(xs)
		if n > hashChunk {
			n = hashChunk
		}
		for i, x := range xs[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(x))
		}
		h.Write(buf[:n*8])
		xs = xs[n:]
	}
}

// DataFingerprint identifies a dataset by content: CRC-64/ECMA over
// the graph structure (vertex count, CSR row offsets and adjacency),
// the feature matrix bits, the label matrix bits and the label
// regime (class count, multi-label flag). Two datasets with equal
// fingerprints produce bit-identical full-graph embeddings for the
// same model, so a serving process holding several models trained on
// the same data can share one in-memory graph between them
// (serve.Registry does exactly that). The hash is content-addressed,
// not name-addressed: the same .gsg file read twice — or the same
// preset regenerated from the same seed — fingerprints identically.
// The Name field and the train/val/test split are deliberately
// excluded: they affect neither embeddings nor any serving answer.
func DataFingerprint(ds *datasets.Dataset) uint64 {
	h := crc64.New(weightsCRCTable)
	var b [8]byte
	putInt := func(x int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		h.Write(b[:])
	}
	putInt(int64(ds.G.N))
	hashInt64s(h, ds.G.RowPtr)
	// Adjacency ids are int32; hash them in pairs so the byte stream
	// stays 8-byte aligned with the rest.
	for i := 0; i+1 < len(ds.G.ColIdx); i += 2 {
		binary.LittleEndian.PutUint32(b[:4], uint32(ds.G.ColIdx[i]))
		binary.LittleEndian.PutUint32(b[4:], uint32(ds.G.ColIdx[i+1]))
		h.Write(b[:])
	}
	if len(ds.G.ColIdx)%2 == 1 {
		putInt(int64(ds.G.ColIdx[len(ds.G.ColIdx)-1]))
	}
	putInt(int64(ds.Features.Rows))
	putInt(int64(ds.Features.Cols))
	hashFloat64s(h, ds.Features.Data)
	putInt(int64(ds.Labels.Rows))
	putInt(int64(ds.Labels.Cols))
	hashFloat64s(h, ds.Labels.Data)
	putInt(int64(ds.NumClasses))
	if ds.MultiLabel {
		putInt(1)
	} else {
		putInt(0)
	}
	return h.Sum64()
}
