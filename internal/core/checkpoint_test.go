package core

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	for i := 0; i < 5; i++ {
		tr.Step()
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m2 := NewModel(ds, tinyConfig())
	// Fresh model differs from trained one.
	if m.Params()[0].W.Equal(m2.Params()[0].W, 0) {
		t.Fatal("trained and fresh weights identical; training did nothing")
	}
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Params() {
		if !p.W.Equal(m2.Params()[i].W, 0) {
			t.Fatalf("tensor %q differs after load", p.Name)
		}
	}
	// Loaded model produces identical inference (evaluation runs on
	// the full graph and does not involve the sampler).
	tr2 := NewTrainer(ds, m2)
	a := tr.Evaluate(ds.ValIdx)
	b := tr2.Evaluate(ds.ValIdx)
	if a != b {
		t.Errorf("evaluation differs after checkpoint load: %v vs %v", a, b)
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Hidden = 8 // different architecture
	m2 := NewModel(ds, cfg)
	if err := m2.Load(&buf); err == nil {
		t.Fatal("loading into mismatched architecture should fail")
	}
}

func TestCheckpointLayerCountMismatch(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Layers = 3
	m2 := NewModel(ds, cfg)
	if err := m2.Load(&buf); err == nil {
		t.Fatal("loading into deeper model should fail")
	}
}

func TestCheckpointGarbage(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	if err := m.Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage input should fail to decode")
	}
}

// TestCheckpointModelVersionRoundTrip checks that the v2 metadata —
// in particular the trained-weights generation tag — survives a
// save/load cycle, both into an existing model and through the
// dataset-free LoadModel reconstruction.
func TestCheckpointModelVersionRoundTrip(t *testing.T) {
	ds := tinyDataset(t, true)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	for i := 0; i < 3; i++ {
		tr.Step()
	}
	m.ModelVersion = uint64(tr.Steps())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m2 := NewModel(ds, tinyConfig())
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if m2.ModelVersion != m.ModelVersion {
		t.Errorf("ModelVersion after Load = %d, want %d", m2.ModelVersion, m.ModelVersion)
	}

	m3, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m3.ModelVersion != m.ModelVersion {
		t.Errorf("ModelVersion after LoadModel = %d, want %d", m3.ModelVersion, m.ModelVersion)
	}
}

// TestLoadModelReconstructsArchitecture checks that LoadModel rebuilds
// the exact architecture (depth, widths, aggregator, loss) and weights
// from checkpoint metadata alone, producing bit-identical inference.
func TestLoadModelReconstructsArchitecture(t *testing.T) {
	ds := tinyDataset(t, false)
	cfg := tinyConfig()
	cfg.Aggregator = "sym"
	m := NewModel(ds, cfg)
	tr := NewTrainer(ds, m)
	for i := 0; i < 3; i++ {
		tr.Step()
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Layers) != len(m.Layers) {
		t.Fatalf("layers = %d, want %d", len(m2.Layers), len(m.Layers))
	}
	if m2.Layers[0].InDim != ds.FeatureDim() || m2.Head.OutDim != ds.NumClasses {
		t.Fatalf("dims %d->%d, want %d->%d",
			m2.Layers[0].InDim, m2.Head.OutDim, ds.FeatureDim(), ds.NumClasses)
	}
	if m2.Layers[0].Agg.String() != "sym" {
		t.Errorf("aggregator = %q, want sym", m2.Layers[0].Agg.String())
	}
	if m2.Loss.Name() != m.Loss.Name() {
		t.Errorf("loss = %q, want %q", m2.Loss.Name(), m.Loss.Name())
	}
	for i, p := range m.Params() {
		if !p.W.Equal(m2.Params()[i].W, 0) {
			t.Fatalf("tensor %q differs after LoadModel", p.Name)
		}
	}
	ctx := m.CtxForGraph(ds.G, ds.FeatureDim(), nil)
	a := m.Forward(ctx, ds.Features)
	ctx2 := m2.CtxForGraph(ds.G, ds.FeatureDim(), nil)
	b := m2.Forward(ctx2, ds.Features)
	if !a.Equal(b, 0) {
		t.Error("reconstructed model inference differs from original")
	}
}

// TestLoadModelRejectsBadAggregator checks that a corrupt aggregator
// string fails LoadModel with an error rather than panicking — a
// hot-reloading server must survive a bad checkpoint file.
func TestLoadModelRejectsBadAggregator(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var ck checkpoint
	if err := gob.NewDecoder(&buf).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	ck.Aggregator = "bogus"
	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf2); err == nil {
		t.Fatal("LoadModel accepted an unknown aggregator")
	}
}

func TestCheckpointFile(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2 := NewModel(ds, tinyConfig())
	if err := m2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing file should error")
	}
}
