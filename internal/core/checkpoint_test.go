package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	for i := 0; i < 5; i++ {
		tr.Step()
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m2 := NewModel(ds, tinyConfig())
	// Fresh model differs from trained one.
	if m.Params()[0].W.Equal(m2.Params()[0].W, 0) {
		t.Fatal("trained and fresh weights identical; training did nothing")
	}
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Params() {
		if !p.W.Equal(m2.Params()[i].W, 0) {
			t.Fatalf("tensor %q differs after load", p.Name)
		}
	}
	// Loaded model produces identical inference (evaluation runs on
	// the full graph and does not involve the sampler).
	tr2 := NewTrainer(ds, m2)
	a := tr.Evaluate(ds.ValIdx)
	b := tr2.Evaluate(ds.ValIdx)
	if a != b {
		t.Errorf("evaluation differs after checkpoint load: %v vs %v", a, b)
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Hidden = 8 // different architecture
	m2 := NewModel(ds, cfg)
	if err := m2.Load(&buf); err == nil {
		t.Fatal("loading into mismatched architecture should fail")
	}
}

func TestCheckpointLayerCountMismatch(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Layers = 3
	m2 := NewModel(ds, cfg)
	if err := m2.Load(&buf); err == nil {
		t.Fatal("loading into deeper model should fail")
	}
}

func TestCheckpointGarbage(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	if err := m.Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage input should fail to decode")
	}
}

func TestCheckpointFile(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2 := NewModel(ds, tinyConfig())
	if err := m2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing file should error")
	}
}
