package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"gsgcn/internal/datasets"
)

// fuzzCheckpointBytes serializes a small trained-shape model — the
// honest corpus seed every mutation starts from.
func fuzzCheckpointBytes(tb interface{ Fatal(...any) }) []byte {
	ds := datasets.Generate(datasets.Config{
		Name: "fuzz", Vertices: 60, TargetEdges: 240,
		FeatureDim: 5, NumClasses: 3, Seed: 13,
	})
	m := NewModel(ds, Config{Layers: 2, Hidden: 4, Workers: 1, Seed: 3})
	m.ModelVersion = 7
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadModel drives the v2 checkpoint loader with truncated,
// bit-flipped, metadata-corrupted and wrong-magic inputs. The
// contract under fuzzing: LoadModel either returns a usable model or
// an error — it never panics, and it never allocates unboundedly from
// attacker-controlled metadata (the dim caps in LoadModel are what
// keep a 50-byte input from declaring a 2^60-weight architecture).
func FuzzLoadModel(f *testing.F) {
	valid := fuzzCheckpointBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])       // truncated mid-stream
	f.Add(valid[:10])                 // truncated inside the header
	f.Add([]byte{})                   // empty
	f.Add([]byte("not a gob stream")) // wrong magic entirely

	// Flipped version field and metadata-inconsistent variants.
	corrupt := append([]byte(nil), valid...)
	for i := 20; i < 40 && i < len(corrupt); i++ {
		corrupt[i] ^= 0xFF
	}
	f.Add(corrupt)

	// A structurally valid gob whose declared dims are absurd.
	var absurd bytes.Buffer
	_ = gob.NewEncoder(&absurd).Encode(checkpoint{
		Version: 2, InDim: 1 << 19, Classes: 1 << 19,
		Hidden: 1 << 19, Layers: 1 << 9,
	})
	f.Add(absurd.Bytes())

	// Mismatched tensor metadata lengths (Names longer than Rows).
	var mismatch bytes.Buffer
	_ = gob.NewEncoder(&mismatch).Encode(checkpoint{
		Version: 2, InDim: 5, Classes: 3, Hidden: 4, Layers: 2,
		Names: []string{"a", "b", "c"}, Rows: []int{1}, Cols: []int{1},
		Data: [][]float64{{1}},
	})
	f.Add(mismatch.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatalf("error %v returned alongside a model", err)
			}
			return
		}
		// A nil-error load must hand back a coherent, usable model.
		if m == nil {
			t.Fatal("nil model with nil error")
		}
		if len(m.Layers) == 0 || m.Head == nil || m.Loss == nil {
			t.Fatalf("loaded model incomplete: %+v", m)
		}
		if m.NumParams() <= 0 {
			t.Fatal("loaded model has no parameters")
		}
		// Round-trip: a loadable model must save and reload cleanly.
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("re-save failed: %v", err)
		}
		if _, err := LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-load of re-saved model failed: %v", err)
		}
	})
}

// TestLoadModelRejectsCorruptMetadata pins the loader's hardening as
// plain unit tests (the fuzz seeds above, asserted explicitly) so the
// guarantees hold in ordinary `go test` runs too.
func TestLoadModelRejectsCorruptMetadata(t *testing.T) {
	valid := fuzzCheckpointBytes(t)
	if _, err := LoadModel(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}

	encode := func(ck checkpoint) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-header", valid[:10]},
		{"truncated-body", valid[:len(valid)-30]},
		{"not-gob", []byte("definitely not a checkpoint")},
		{"v1-no-metadata", encode(checkpoint{Version: 1})},
		{"future-version", encode(checkpoint{Version: 99, InDim: 5, Classes: 3, Hidden: 4, Layers: 2})},
		{"zero-dims", encode(checkpoint{Version: 2})},
		{"negative-dims", encode(checkpoint{Version: 2, InDim: -5, Classes: 3, Hidden: 4, Layers: 2})},
		{"absurd-dims", encode(checkpoint{Version: 2, InDim: 1 << 30, Classes: 3, Hidden: 4, Layers: 2})},
		{"absurd-total", encode(checkpoint{Version: 2, InDim: 1 << 19, Classes: 1 << 19, Hidden: 1 << 19, Layers: 1 << 9})},
		{"bad-aggregator", encode(checkpoint{Version: 2, InDim: 5, Classes: 3, Hidden: 4, Layers: 2, Aggregator: "median"})},
		{"tensor-length-mismatch", encode(checkpoint{
			Version: 2, InDim: 5, Classes: 3, Hidden: 4, Layers: 2,
			Names: []string{"a", "b"}, Rows: []int{1}, Cols: []int{1}, Data: [][]float64{{1}},
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := LoadModel(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("corrupt checkpoint accepted: %+v", m)
			}
			if m != nil {
				t.Fatalf("model returned alongside error %v", err)
			}
		})
	}
}

// TestLoadModelRejectsShortTensorData covers the silent-short-copy
// hazard: a checkpoint whose declared shapes match the model but
// whose data slices are shorter must be rejected, not half-applied.
func TestLoadModelRejectsShortTensorData(t *testing.T) {
	valid := fuzzCheckpointBytes(t)
	var ck checkpoint
	if err := gob.NewDecoder(bytes.NewReader(valid)).Decode(&ck); err != nil {
		t.Fatal(err)
	}
	ck.Data[0] = ck.Data[0][:1]
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("short tensor data accepted")
	}
}
