package core

import (
	"math"
	"time"

	"gsgcn/internal/datasets"
	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/nn"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
	"gsgcn/internal/sampler"
)

// Trainer drives minibatch training with the subgraph pool scheduler
// (Algorithm 5): pre-sampled subgraphs are consumed one per weight
// update; when the pool drains, PInter sampler instances refill it in
// parallel.
type Trainer struct {
	DS    *datasets.Dataset
	Model *Model
	Pool  *sampler.Pool
	Opt   *nn.Adam
	// Timer accumulates the "sampling", "featprop" and "weight"
	// segments that make up Fig. 3D's execution-time breakdown.
	Timer *perf.Timer

	trainMask []bool
	steps     int
	dropRng   *rng.RNG

	// Per-step gather scratch, reused across Step calls (fully
	// overwritten each step) to cut allocation churn on the hot path.
	bufH0, bufLabels, bufDLogits *mat.Dense
	bufIdx                       []int
	bufMask                      []int
}

// NewTrainer wires a trainer with a Dashboard frontier sampler pool.
func NewTrainer(ds *datasets.Dataset, m *Model) *Trainer {
	cfg := m.cfg
	fr := &sampler.Frontier{
		G: ds.G, M: cfg.FrontierM, N: cfg.Budget,
		Eta: cfg.Eta, DegCap: cfg.DegCap,
	}
	return NewTrainerWithSampler(ds, m, fr)
}

// NewTrainerWithSampler wires a trainer around any vertex sampler —
// the hook for the paper's future-work study of alternative sampling
// algorithms.
func NewTrainerWithSampler(ds *datasets.Dataset, m *Model, s sampler.VertexSampler) *Trainer {
	cfg := m.cfg
	mask := make([]bool, ds.G.NumVertices())
	for _, v := range ds.TrainIdx {
		mask[v] = true
	}
	pool := sampler.NewPool(ds.G, s, cfg.PInter, cfg.Seed)
	pool.Workers = cfg.Workers
	pool.Prefetch = cfg.Prefetch
	return &Trainer{
		DS:        ds,
		Model:     m,
		Pool:      pool,
		Opt:       nn.NewAdam(cfg.LR),
		Timer:     perf.NewTimer(),
		trainMask: mask,
		dropRng:   rng.NewStream(cfg.Seed, 0xD409),
	}
}

// Steps returns the number of weight updates performed.
func (t *Trainer) Steps() int { return t.steps }

// Step performs one training iteration (Algorithm 1 lines 2-13):
// draw a subgraph, gather its features and labels, run forward and
// backward propagation, and apply an Adam update. It returns the
// minibatch loss. Subgraphs whose vertex set contains no training
// vertices are skipped with zero loss (possible on tiny datasets).
func (t *Trainer) Step() float64 {
	sub := t.nextSubgraph()

	n := sub.N
	feat := t.DS.FeatureDim()
	t.bufH0 = mat.Reuse(t.bufH0, n, feat)
	t.bufLabels = mat.Reuse(t.bufLabels, n, t.DS.NumClasses)
	h0 := t.bufH0
	labels := t.bufLabels
	workers := t.Model.cfg.Workers
	if cap(t.bufIdx) < n {
		t.bufIdx = make([]int, n)
	}
	idx := t.bufIdx[:n]
	mask := t.bufMask[:0]
	for i, v := range sub.Orig {
		idx[i] = int(v)
		if t.trainMask[v] {
			mask = append(mask, i)
		}
	}
	t.bufMask = mask[:0]
	if len(mask) == 0 {
		return 0
	}
	mat.GatherRowsP(h0, t.DS.Features, idx, workers)
	mat.GatherRowsP(labels, t.DS.Labels, idx, workers)

	ctx := t.Model.ctxFor(sub.CSR, feat, t.Timer)
	cfg := t.Model.cfg
	if cfg.DropRate > 0 {
		ctx.Train = true
		ctx.DropRate = cfg.DropRate
		ctx.Rng = t.dropRng
	}
	logits := t.Model.Forward(ctx, h0)
	t.bufDLogits = mat.Reuse(t.bufDLogits, n, t.DS.NumClasses)
	dLogits := t.bufDLogits
	loss := t.Model.Loss.Eval(logits, labels, mask, dLogits)
	t.Model.ZeroGrad()
	t.Model.Backward(ctx, dLogits)
	params := t.Model.Params()
	if cfg.WeightDecay > 0 {
		for _, p := range params {
			mat.AddScaled(p.Grad, p.W, cfg.WeightDecay)
		}
	}
	if cfg.GradClip > 0 {
		clipGradients(params, cfg.GradClip)
	}
	t.Opt.Step(params)
	t.steps++
	return loss
}

// clipGradients rescales all gradients when their global L2 norm
// exceeds max.
func clipGradients(params []*nn.Param, max float64) {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= max || norm == 0 {
		return
	}
	scale := max / norm
	for _, p := range params {
		p.Grad.Scale(scale)
	}
}

func (t *Trainer) nextSubgraph() *graph.Subgraph {
	start := time.Now()
	s := t.Pool.Next()
	t.Timer.Add("sampling", time.Since(start))
	return s
}

// Epoch runs ceil(|V| / Budget) steps — one full traversal of the
// training vertex budget as defined in Section III-B — and returns
// the mean minibatch loss.
func (t *Trainer) Epoch() float64 {
	b := t.Model.cfg.Budget
	if b <= 0 {
		b = 1
	}
	iters := (t.DS.G.NumVertices() + b - 1) / b
	if iters < 1 {
		iters = 1
	}
	total := 0.0
	for i := 0; i < iters; i++ {
		total += t.Step()
	}
	if d := t.Model.cfg.LRDecay; d > 0 && d != 1 {
		t.Opt.LR *= d
	}
	return total / float64(iters)
}

// TrainUntil runs epochs until validation micro-F1 reaches target or
// maxEpochs elapse, returning the epochs used, the wall time spent in
// training (excluding evaluation), and the final F1. This is the
// measurement behind the paper's "training time to reach an accuracy
// threshold" speedups (Section VI-B).
func (t *Trainer) TrainUntil(target float64, maxEpochs int) (epochs int, trainTime time.Duration, f1 float64) {
	for epochs < maxEpochs {
		start := time.Now()
		t.Epoch()
		trainTime += time.Since(start)
		epochs++
		f1 = t.Evaluate(t.DS.ValIdx)
		if f1 >= target {
			return epochs, trainTime, f1
		}
	}
	return epochs, trainTime, f1
}

// Evaluate runs full-graph inference and returns micro-F1 over the
// given vertex subset (e.g. the validation split).
func (t *Trainer) Evaluate(idx []int32) float64 {
	logits := t.Infer()
	var pred *mat.Dense
	if t.DS.MultiLabel {
		pred = nn.PredictMulti(logits)
	} else {
		pred = nn.PredictSingle(logits)
	}
	rows := make([]int, len(idx))
	for i, v := range idx {
		rows[i] = int(v)
	}
	return nn.F1Micro(pred, t.DS.Labels, rows)
}

// Infer runs the model over the entire training graph and returns
// logits for every vertex.
func (t *Trainer) Infer() *mat.Dense {
	ctx := t.Model.ctxFor(t.DS.G, t.DS.FeatureDim(), nil)
	return t.Model.Forward(ctx, t.DS.Features)
}
