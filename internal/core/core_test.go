package core

import (
	"math"
	"strings"
	"testing"

	"gsgcn/internal/datasets"
	"gsgcn/internal/nn"
	"gsgcn/internal/sampler"
)

func tinyDataset(tb testing.TB, multi bool) *datasets.Dataset {
	tb.Helper()
	cfg := datasets.Config{
		Name: "tiny", Vertices: 600, TargetEdges: 6000,
		FeatureDim: 16, NumClasses: 5, MultiLabel: multi,
		Homophily: 0.85, NoiseStd: 0.4, Seed: 3,
	}
	return datasets.Generate(cfg)
}

func tinyConfig() Config {
	return Config{
		Layers: 2, Hidden: 16, LR: 0.01,
		FrontierM: 40, Budget: 200, PInter: 2, Workers: 1, Seed: 5,
	}
}

func TestModelShapes(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	if len(m.Layers) != 2 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	if m.Layers[0].InDim != 16 || m.Layers[0].OutDim != 16 {
		t.Errorf("layer0 dims %d->%d", m.Layers[0].InDim, m.Layers[0].OutDim)
	}
	// Layer 1 input = 2*hidden from concat.
	if m.Layers[1].InDim != 32 {
		t.Errorf("layer1 InDim = %d, want 32", m.Layers[1].InDim)
	}
	if m.Head.OutDim != 5 {
		t.Errorf("head OutDim = %d", m.Head.OutDim)
	}
	if m.NumParams() == 0 {
		t.Error("no parameters")
	}
	if !strings.Contains(m.String(), "L=2") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestLossSelection(t *testing.T) {
	if m := NewModel(tinyDataset(t, false), tinyConfig()); m.Loss.Name() != "softmax-ce" {
		t.Errorf("single-label model uses %s", m.Loss.Name())
	}
	if m := NewModel(tinyDataset(t, true), tinyConfig()); m.Loss.Name() != "sigmoid-bce" {
		t.Errorf("multi-label model uses %s", m.Loss.Name())
	}
}

func TestConfigDefaults(t *testing.T) {
	ds := tinyDataset(t, false)
	cfg := Config{}.withDefaults(ds)
	if cfg.Layers != 2 || cfg.Hidden != 128 || cfg.LR != 0.01 {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Budget > ds.G.NumVertices() {
		t.Errorf("budget %d exceeds graph size", cfg.Budget)
	}
	if cfg.FrontierM > ds.G.NumVertices() {
		t.Errorf("frontier %d exceeds graph size", cfg.FrontierM)
	}
}

func TestTrainerLearnsSingleLabel(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	before := tr.Evaluate(ds.ValIdx)
	for e := 0; e < 10; e++ {
		tr.Epoch()
	}
	after := tr.Evaluate(ds.ValIdx)
	// Random chance on 5 balanced classes is 0.2.
	if after < 0.5 {
		t.Errorf("val F1 after training = %.3f (before %.3f); model failed to learn", after, before)
	}
	if after <= before {
		t.Errorf("val F1 did not improve: %.3f -> %.3f", before, after)
	}
}

func TestTrainerLearnsMultiLabel(t *testing.T) {
	ds := tinyDataset(t, true)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	for e := 0; e < 10; e++ {
		tr.Epoch()
	}
	after := tr.Evaluate(ds.ValIdx)
	if after < 0.4 {
		t.Errorf("multi-label val F1 = %.3f; model failed to learn", after)
	}
}

func TestTrainingLossDecreases(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	first := tr.Epoch()
	var last float64
	for e := 0; e < 8; e++ {
		last = tr.Epoch()
	}
	if last >= first {
		t.Errorf("epoch loss did not decrease: %.4f -> %.4f", first, last)
	}
}

func TestEpochStepCount(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	tr.Epoch()
	want := (600 + 199) / 200
	if tr.Steps() != want {
		t.Errorf("steps per epoch = %d, want %d", tr.Steps(), want)
	}
}

func TestTrainerTimerSegments(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	tr.Step()
	seg := tr.Timer.Segments()
	for _, name := range []string{"sampling", "featprop", "weight"} {
		if seg[name] <= 0 {
			t.Errorf("timer segment %q not charged: %v", name, seg)
		}
	}
}

func TestTrainerDeterministic(t *testing.T) {
	ds := tinyDataset(t, false)
	run := func() []float64 {
		m := NewModel(ds, tinyConfig())
		tr := NewTrainer(ds, m)
		var losses []float64
		for i := 0; i < 5; i++ {
			losses = append(losses, tr.Step())
		}
		return losses
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss sequences diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTrainerWithAlternativeSamplers(t *testing.T) {
	ds := tinyDataset(t, false)
	for _, s := range []sampler.VertexSampler{
		&sampler.RandomNode{G: ds.G, Budget: 200},
		&sampler.RandomWalk{G: ds.G, Walkers: 20, Depth: 10},
		&sampler.ForestFire{G: ds.G, Budget: 200},
	} {
		m := NewModel(ds, tinyConfig())
		tr := NewTrainerWithSampler(ds, m, s)
		loss := tr.Step()
		if loss <= 0 {
			t.Errorf("%s: first-step loss = %v, want positive", s.Name(), loss)
		}
	}
}

func TestEvaluateBounds(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	f1 := tr.Evaluate(ds.TestIdx)
	if f1 < 0 || f1 > 1 {
		t.Fatalf("F1 = %v outside [0,1]", f1)
	}
}

func TestInferShape(t *testing.T) {
	ds := tinyDataset(t, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	logits := tr.Infer()
	if logits.Rows != ds.G.NumVertices() || logits.Cols != ds.NumClasses {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestDeeperModelTrains(t *testing.T) {
	ds := tinyDataset(t, false)
	cfg := tinyConfig()
	cfg.Layers = 3
	m := NewModel(ds, cfg)
	tr := NewTrainer(ds, m)
	first := tr.Step()
	var last float64
	for i := 0; i < 20; i++ {
		last = tr.Step()
	}
	if last >= first {
		t.Errorf("3-layer loss did not decrease: %.4f -> %.4f", first, last)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	ds := tinyDataset(b, false)
	m := NewModel(ds, tinyConfig())
	tr := NewTrainer(ds, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step()
	}
}

func TestAggregatorVariantsTrain(t *testing.T) {
	ds := tinyDataset(t, false)
	for _, agg := range []string{"mean", "sym", "sum"} {
		cfg := tinyConfig()
		cfg.Aggregator = agg
		m := NewModel(ds, cfg)
		tr := NewTrainer(ds, m)
		for e := 0; e < 8; e++ {
			tr.Epoch()
		}
		if f1 := tr.Evaluate(ds.ValIdx); f1 < 0.4 {
			t.Errorf("aggregator %s: val F1 %.3f, failed to learn", agg, f1)
		}
	}
}

func TestUnknownAggregatorPanics(t *testing.T) {
	ds := tinyDataset(t, false)
	cfg := tinyConfig()
	cfg.Aggregator = "median"
	defer func() {
		if recover() == nil {
			t.Fatal("unknown aggregator did not panic")
		}
	}()
	NewModel(ds, cfg)
}

func TestRegularizedTraining(t *testing.T) {
	ds := tinyDataset(t, false)
	cfg := tinyConfig()
	cfg.DropRate = 0.2
	cfg.WeightDecay = 1e-4
	cfg.GradClip = 5
	cfg.LRDecay = 0.95
	m := NewModel(ds, cfg)
	tr := NewTrainer(ds, m)
	lr0 := tr.Opt.LR
	for e := 0; e < 10; e++ {
		tr.Epoch()
	}
	if tr.Opt.LR >= lr0 {
		t.Errorf("LR did not decay: %v -> %v", lr0, tr.Opt.LR)
	}
	if f1 := tr.Evaluate(ds.ValIdx); f1 < 0.4 {
		t.Errorf("regularized training F1 %.3f, failed to learn", f1)
	}
}

func TestGradClipBehaviour(t *testing.T) {
	p := nn.NewParam("x", 1, 3)
	p.Grad.Data[0], p.Grad.Data[1], p.Grad.Data[2] = 3, 4, 0 // norm 5
	clipGradients([]*nn.Param{p}, 1)
	norm := math.Sqrt(p.Grad.Data[0]*p.Grad.Data[0] + p.Grad.Data[1]*p.Grad.Data[1])
	if math.Abs(norm-1) > 1e-12 {
		t.Errorf("clipped norm = %v, want 1", norm)
	}
	// Below-threshold gradients untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.1, 0.1
	clipGradients([]*nn.Param{p}, 1)
	if p.Grad.Data[0] != 0.1 {
		t.Error("clip modified a small gradient")
	}
	// Zero gradient is a no-op.
	p.Grad.Zero()
	clipGradients([]*nn.Param{p}, 1)
}
