package core

// End-to-end determinism suite for the parallel training engine
// (ISSUE 1): with a fixed seed, training at Workers=1 and Workers=8
// must produce bit-identical per-step loss traces — the composition of
// the pool's deterministic subgraph sequence, the worker-invariant
// sharded dense kernels, and the serial optimizer. Table-driven over
// the frontier and node2vec sampler families.

import (
	"testing"

	"gsgcn/internal/datasets"
	"gsgcn/internal/sampler"
)

func lossTrace(ds *datasets.Dataset, s func(*datasets.Dataset, Config) *Trainer, cfg Config, steps int) []float64 {
	tr := s(ds, cfg)
	out := make([]float64, steps)
	for i := range out {
		out[i] = tr.Step()
	}
	return out
}

func TestLossTraceIdenticalAcrossWorkers(t *testing.T) {
	ds := tinyDataset(t, false)
	makeTrainer := map[string]func(ds *datasets.Dataset, cfg Config) *Trainer{
		"frontier": func(ds *datasets.Dataset, cfg Config) *Trainer {
			return NewTrainer(ds, NewModel(ds, cfg))
		},
		"node2vec": func(ds *datasets.Dataset, cfg Config) *Trainer {
			s := &sampler.Node2VecWalk{G: ds.G, Walkers: 25, Depth: 7, P: 1, Q: 0.5}
			return NewTrainerWithSampler(ds, NewModel(ds, cfg), s)
		},
	}
	const steps = 10
	for name, mk := range makeTrainer {
		for _, dropRate := range []float64{0, 0.2} {
			t.Run(name, func(t *testing.T) {
				base := tinyConfig()
				base.PInter = 3
				base.DropRate = dropRate
				base.WeightDecay = 1e-4
				base.GradClip = 5

				serial := base
				serial.Workers = 1
				ref := lossTrace(ds, mk, serial, steps)

				parallel := base
				parallel.Workers = 8
				got := lossTrace(ds, mk, parallel, steps)

				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("drop=%.1f step %d: loss %v (Workers=1) != %v (Workers=8)",
							dropRate, i, ref[i], got[i])
					}
				}
				if ref[0] == 0 {
					t.Fatal("degenerate trace: first step loss is 0")
				}
			})
		}
	}
}

// TestPoolSequenceIdenticalAcrossWorkers verifies at the trainer level
// that the pool hands both configurations the same subgraph stream.
func TestPoolSequenceIdenticalAcrossWorkers(t *testing.T) {
	ds := tinyDataset(t, false)
	draw := func(workers int) [][]int32 {
		cfg := tinyConfig()
		cfg.PInter = 3
		cfg.Workers = workers
		tr := NewTrainer(ds, NewModel(ds, cfg))
		var out [][]int32
		for i := 0; i < 9; i++ {
			out = append(out, tr.Pool.Next().Orig)
		}
		return out
	}
	a, b := draw(1), draw(8)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("subgraph %d: sizes differ (%d vs %d)", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("subgraph %d: vertex %d differs", i, j)
			}
		}
	}
}
