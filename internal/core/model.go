// Package core implements the paper's primary contribution: the
// graph-sampling-based GCN training algorithm (Algorithms 1 and 5).
// Every minibatch is an induced subgraph drawn by a graph sampler
// (frontier sampling by default); a complete L-layer GCN is built on
// that subgraph, so no layer ever holds more nodes than the subgraph
// itself — eliminating the layer-sampling "neighbor explosion" and
// making per-epoch work O(L · |V| · f · (f + d_GS)) (Section III-B).
package core

import (
	"fmt"
	"math"

	"gsgcn/internal/datasets"
	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/nn"
	"gsgcn/internal/partition"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
)

// Config parameterizes model construction and training.
type Config struct {
	// Layers is the GCN depth L.
	Layers int
	// Hidden is the per-layer output dimension f^(l); the effective
	// layer width is 2*Hidden after neighbor-self concatenation.
	Hidden int
	// LR is the Adam learning rate.
	LR float64

	// FrontierM is the frontier size m (paper default 1000).
	FrontierM int
	// Budget is the subgraph vertex budget n.
	Budget int
	// Eta is the Dashboard enlargement factor.
	Eta float64
	// DegCap caps Dashboard entries per vertex (0 = uncapped; the
	// paper uses 30 on the skewed Amazon graph).
	DegCap int
	// PInter is the number of sampler instances per pool refill.
	PInter int
	// Prefetch is the sampler pipeline depth in waves of PInter
	// subgraphs (0 = the pool default of 2). Raise it when sampling
	// is bursty relative to training; it never changes results.
	Prefetch int

	// Workers is the real goroutine budget for all parallel kernels
	// (0 = GOMAXPROCS).
	Workers int
	// Q is the feature-partition count for propagation; 0 derives it
	// from the Theorem 2 solver with CacheBytes.
	Q int
	// CacheBytes is the per-core fast-memory size used by the
	// Theorem 2 solver (default 256 KiB, the paper's L2 size).
	CacheBytes int

	// Aggregator selects the neighbor-pooling operator: "mean" (the
	// paper's choice, default), "sym" (Kipf-Welling symmetric
	// normalization) or "sum".
	Aggregator string
	// DropRate applies inverted dropout to each layer input during
	// training (0 disables).
	DropRate float64
	// WeightDecay adds L2 regularization: grad += WeightDecay * W.
	WeightDecay float64
	// GradClip rescales gradients when their global L2 norm exceeds
	// this value (0 disables).
	GradClip float64
	// LRDecay multiplies the learning rate after every epoch
	// (0 or 1 disables).
	LRDecay float64

	Seed uint64
}

// withDefaults fills unset fields.
func (c Config) withDefaults(ds *datasets.Dataset) Config {
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 128
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	n := ds.G.NumVertices()
	if c.FrontierM == 0 {
		// The paper's m = 1000 assumes Table-I-sized graphs; scale it
		// down on small graphs so an epoch still contains several
		// weight updates.
		c.FrontierM = n / 20
		if c.FrontierM > 1000 {
			c.FrontierM = 1000
		}
		if c.FrontierM < 25 {
			c.FrontierM = 25
		}
	}
	if c.FrontierM > n/2 && n > 1 {
		c.FrontierM = n/2 + 1
	}
	if c.Budget == 0 {
		c.Budget = 8 * c.FrontierM
		if c.Budget > n/2 && n > 1 {
			c.Budget = n/2 + 1
		}
	}
	if c.Eta == 0 {
		c.Eta = 2
	}
	if c.PInter == 0 {
		c.PInter = perf.NumWorkers()
	}
	if c.Workers == 0 {
		c.Workers = perf.NumWorkers()
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model is an L-layer graph-sampling GCN with a dense classifier head.
type Model struct {
	Layers []*nn.GCNLayer
	Head   *nn.Dense
	Loss   nn.Loss
	// ModelVersion tags the trained-weights generation (e.g. the
	// optimizer step count at save time). It rides along in
	// checkpoints so a serving process can report and cache-key the
	// weights it answers from.
	ModelVersion uint64
	cfg          Config
}

// NewModel constructs a model shaped for the dataset under cfg.
func NewModel(ds *datasets.Dataset, cfg Config) *Model {
	cfg = cfg.withDefaults(ds)
	m := newModelArch(ds.FeatureDim(), ds.NumClasses, ds.MultiLabel, cfg)
	if ds.MultiLabel {
		// Initialize the output bias at the per-class base-rate logit
		// so sigmoid-BCE starts from the marginal solution instead of
		// spending early updates learning label sparsity (121 classes
		// with ~2 positives per vertex on PPI).
		initBiasToBaseRate(m.Head, ds)
	}
	return m
}

// newModelArch constructs a model from architecture dimensions alone
// — the dataset-free path used when reconstructing a model from a
// checkpoint's metadata. cfg.Layers and cfg.Hidden must be resolved.
func newModelArch(in, classes int, multiLabel bool, cfg Config) *Model {
	r := rng.NewStream(cfg.Seed, 0xC0DE)
	m := &Model{cfg: cfg}
	agg := nn.AggMean
	switch cfg.Aggregator {
	case "", "mean":
	case "sym":
		agg = nn.AggSym
	case "sum":
		agg = nn.AggSum
	default:
		panic(fmt.Sprintf("core: unknown aggregator %q (want mean|sym|sum)", cfg.Aggregator))
	}
	for l := 0; l < cfg.Layers; l++ {
		layer := nn.NewGCNLayer(in, cfg.Hidden, r)
		layer.Agg = agg
		m.Layers = append(m.Layers, layer)
		in = layer.OutWidth()
	}
	m.Head = nn.NewDense(in, classes, r)
	if multiLabel {
		m.Loss = nn.SigmoidBCE{}
	} else {
		m.Loss = nn.SoftmaxCE{}
	}
	return m
}

// initBiasToBaseRate sets head bias c to log(p_c/(1-p_c)) where p_c
// is the empirical positive rate of class c on the training split.
func initBiasToBaseRate(head *nn.Dense, ds *datasets.Dataset) {
	k := ds.NumClasses
	counts := make([]float64, k)
	for _, v := range ds.TrainIdx {
		row := ds.Labels.Row(int(v))
		for c, x := range row {
			counts[c] += x
		}
	}
	n := float64(len(ds.TrainIdx))
	if n == 0 {
		return
	}
	for c := 0; c < k; c++ {
		p := (counts[c] + 0.5) / (n + 1) // smoothed
		head.B.W.Data[c] = math.Log(p / (1 - p))
	}
}

// Config returns the resolved configuration.
func (m *Model) Config() Config { return m.cfg }

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	ps = append(ps, m.Head.Params()...)
	return ps
}

// NumParams returns the total trainable scalar count.
func (m *Model) NumParams() int {
	total := 0
	for _, p := range m.Params() {
		total += len(p.W.Data)
	}
	return total
}

// ctxFor builds the execution context for a given (sub)graph,
// deriving Q from the Theorem 2 solver when unset.
func (m *Model) ctxFor(g *graph.CSR, feat int, timer *perf.Timer) *nn.Ctx {
	q := m.cfg.Q
	if q == 0 {
		cm := partition.CommModel{
			N: g.N, AvgDeg: g.AvgDegree(), F: feat,
			Cores: m.cfg.Workers, CacheBytes: m.cfg.CacheBytes,
		}
		q = cm.OptimalQ()
	}
	return &nn.Ctx{G: g, Q: q, Workers: m.cfg.Workers, Timer: timer}
}

// CtxForGraph exposes execution-context construction (including the
// Theorem 2 Q derivation) to external trainers such as the
// full-batch baseline.
func (m *Model) CtxForGraph(g *graph.CSR, feat int, timer *perf.Timer) *nn.Ctx {
	return m.ctxFor(g, feat, timer)
}

// Forward runs the full model on graph g with input features h and
// returns the logits.
func (m *Model) Forward(ctx *nn.Ctx, h *mat.Dense) *mat.Dense {
	x := h
	for _, l := range m.Layers {
		x = l.Forward(ctx, x)
	}
	return m.Head.Forward(ctx, x)
}

// Backward propagates dLogits through head and layers, accumulating
// parameter gradients.
func (m *Model) Backward(ctx *nn.Ctx, dLogits *mat.Dense) {
	d := m.Head.Backward(ctx, dLogits)
	for i := len(m.Layers) - 1; i >= 0; i-- {
		d = m.Layers[i].Backward(ctx, d)
	}
}

// ZeroGrad clears all parameter gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// String summarizes the architecture.
func (m *Model) String() string {
	return fmt.Sprintf("GCN(L=%d, hidden=%d, params=%d, loss=%s)",
		len(m.Layers), m.cfg.Hidden, m.NumParams(), m.Loss.Name())
}
