package ann

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"

	"gsgcn/internal/mat"
)

// Binary index format (version 1), all integers little-endian:
//
//	[0:8]   magic "GSGANNIX"
//	[8:12]  u32 format version
//	[12:16] u32 M
//	[16:20] u32 EfConstruction
//	[20:24] u32 EfSearch
//	[24:32] u64 Seed
//	[32:36] u32 n (vertex count)
//	[36:40] i32 entry (-1 when empty)
//	then per vertex, in id order:
//	        u8 level, then per layer 0..level:
//	        u32 link count, count * i32 neighbor ids
//
// The encoding is a pure function of the index structure, and HNSW
// construction is deterministic (package doc), so two indexes built
// over the same table with the same Params encode to identical bytes —
// the property that makes persistence a zero-risk fast path: a loaded
// index can be asserted byte-equal to a freshly built one.

const (
	indexMagic   = "GSGANNIX"
	indexVersion = 1

	// maxIndexM bounds the connectivity a decoded header may declare,
	// keeping per-layer link-count validation meaningful on corrupted
	// or hostile inputs.
	maxIndexM = 1 << 16
)

// crcTable is the ECMA polynomial table shared by checksum helpers.
var crcTable = crc64.MakeTable(crc64.ECMA)

// EncodeBinary serializes the index structure (links only — the
// embedding table lives with its owner and is re-attached by
// DecodeIndex). The output is deterministic: identical structures
// encode to identical bytes.
func (ix *Index) EncodeBinary() []byte {
	size := 40
	for i := range ix.nodes {
		size += 1 + 4*len(ix.nodes[i].links)
		for _, ls := range ix.nodes[i].links {
			size += 4 * len(ls)
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, indexMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, indexVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.params.M))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.params.EfConstruction))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.params.EfSearch))
	buf = binary.LittleEndian.AppendUint64(buf, ix.params.Seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ix.nodes)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.entry))
	for i := range ix.nodes {
		nd := &ix.nodes[i]
		buf = append(buf, byte(nd.level))
		for _, ls := range nd.links {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ls)))
			for _, u := range ls {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(u))
			}
		}
	}
	return buf
}

// Checksum is a structural fingerprint of the index: the CRC-64/ECMA
// of its binary encoding. Because the encoding is deterministic, equal
// checksums over the same table mean interchangeable indexes.
func (ix *Index) Checksum() uint64 {
	return crc64.Checksum(ix.EncodeBinary(), crcTable)
}

// DecodeIndex reconstructs an index from EncodeBinary output,
// re-attaching the embedding table and norms the structure was built
// over (norms nil recomputes them — see Build). Every length and id is
// validated before use: corrupted or truncated input yields an error,
// never a panic or an unboundedly large allocation. Trailing bytes
// after the encoded structure are an error.
func DecodeIndex(data []byte, emb mat.RowSource, norms []float64) (*Index, error) {
	if len(data) < 40 {
		return nil, fmt.Errorf("ann: index blob truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != indexMagic {
		return nil, fmt.Errorf("ann: bad index magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != indexVersion {
		return nil, fmt.Errorf("ann: index format version %d, want %d", v, indexVersion)
	}
	p := Params{
		M:              int(binary.LittleEndian.Uint32(data[12:16])),
		EfConstruction: int(binary.LittleEndian.Uint32(data[16:20])),
		EfSearch:       int(binary.LittleEndian.Uint32(data[20:24])),
		Seed:           binary.LittleEndian.Uint64(data[24:32]),
	}
	if p.M < 1 || p.M > maxIndexM {
		return nil, fmt.Errorf("ann: index declares M=%d, want 1..%d", p.M, maxIndexM)
	}
	n := int(binary.LittleEndian.Uint32(data[32:36]))
	entry := int32(binary.LittleEndian.Uint32(data[36:40]))
	if n != emb.NumRows() {
		return nil, fmt.Errorf("ann: index covers %d vertices, table has %d", n, emb.NumRows())
	}
	if norms != nil && len(norms) != n {
		return nil, fmt.Errorf("ann: %d norms for %d vertices", len(norms), n)
	}
	if entry < -1 || int(entry) >= n || (entry == -1) != (n == 0) {
		return nil, fmt.Errorf("ann: index entry %d invalid for %d vertices", entry, n)
	}
	ix := &Index{params: p, emb: emb, norms: norms, entry: entry, nodes: make([]node, n)}
	off := 40
	for v := 0; v < n; v++ {
		if off >= len(data) {
			return nil, fmt.Errorf("ann: index blob truncated at vertex %d", v)
		}
		lvl := int32(data[off])
		off++
		if lvl >= maxLevel {
			return nil, fmt.Errorf("ann: vertex %d declares level %d, cap %d", v, lvl, maxLevel-1)
		}
		nd := node{level: lvl, links: make([][]int32, lvl+1)}
		for l := int32(0); l <= lvl; l++ {
			if off+4 > len(data) {
				return nil, fmt.Errorf("ann: index blob truncated at vertex %d layer %d", v, l)
			}
			cnt := int(binary.LittleEndian.Uint32(data[off : off+4]))
			off += 4
			// The builder never leaves more than capAt(l) links — 2M on
			// the base layer, M above; a larger count is corruption, and
			// the bound keeps the allocation below attacker control.
			capL := p.M
			if l == 0 {
				capL = 2 * p.M
			}
			if cnt > capL {
				return nil, fmt.Errorf("ann: vertex %d layer %d declares %d links, cap %d", v, l, cnt, capL)
			}
			if off+4*cnt > len(data) {
				return nil, fmt.Errorf("ann: index blob truncated in vertex %d links", v)
			}
			ls := make([]int32, cnt)
			for i := 0; i < cnt; i++ {
				u := int32(binary.LittleEndian.Uint32(data[off : off+4]))
				off += 4
				if u < 0 || int(u) >= n || u == int32(v) {
					return nil, fmt.Errorf("ann: vertex %d links to invalid vertex %d", v, u)
				}
				ls[i] = u
			}
			nd.links[l] = ls
		}
		ix.nodes[v] = nd
	}
	if off != len(data) {
		return nil, fmt.Errorf("ann: %d trailing bytes after index", len(data)-off)
	}
	// The entry vertex must sit on the highest occupied layer, or the
	// descent in Search would start below existing layers.
	if n > 0 {
		top := int32(0)
		for v := range ix.nodes {
			if ix.nodes[v].level > top {
				top = ix.nodes[v].level
			}
		}
		if ix.nodes[entry].level != top {
			return nil, fmt.Errorf("ann: entry %d at level %d, index max level is %d", entry, ix.nodes[entry].level, top)
		}
	}
	if norms == nil {
		ns := make([]float64, n)
		for v := 0; v < n; v++ {
			row := emb.Row(v)
			ns[v] = math.Sqrt(mat.Dot(row, row))
		}
		ix.norms = ns
	}
	return ix, nil
}
