package ann

import (
	"math"
	"sort"
	"testing"

	"gsgcn/internal/mat"
	"gsgcn/internal/rng"
)

// randTable builds a seeded embedding table: a Gaussian mixture of
// clusters (the shape trained GCN embeddings take) with per-vertex
// noise, plus its norms.
func randTable(n, dim, clusters int, seed uint64) (*mat.Dense, []float64) {
	r := rng.New(seed)
	centers := mat.New(clusters, dim)
	for i := range centers.Data {
		centers.Data[i] = r.NormFloat64() * 2
	}
	emb := mat.New(n, dim)
	for v := 0; v < n; v++ {
		c := centers.Row(v % clusters)
		row := emb.Row(v)
		for j := range row {
			row[j] = c[j] + r.NormFloat64()*0.5
		}
	}
	norms := make([]float64, n)
	for v := 0; v < n; v++ {
		row := emb.Row(v)
		norms[v] = math.Sqrt(mat.Dot(row, row))
	}
	return emb, norms
}

// uniformTable builds a seeded table with no cluster structure —
// i.i.d. Gaussian rows — the adversarial case for a navigable small
// world graph (nothing is much closer than anything else).
func uniformTable(n, dim int, seed uint64) (*mat.Dense, []float64) {
	r := rng.New(seed)
	emb := mat.New(n, dim)
	for i := range emb.Data {
		emb.Data[i] = r.NormFloat64()
	}
	norms := make([]float64, n)
	for v := 0; v < n; v++ {
		row := emb.Row(v)
		norms[v] = math.Sqrt(mat.Dot(row, row))
	}
	return emb, norms
}

func buildTest(tb testing.TB, n, dim int, p Params, workers int) *Index {
	tb.Helper()
	emb, norms := randTable(n, dim, 16, 42)
	return Build(emb, norms, p, workers)
}

// TestLevelForDistribution checks the LCG layer assignment: pure in
// (seed, id), geometric-ish with p = 1/4, bounded by maxLevel.
func TestLevelForDistribution(t *testing.T) {
	counts := make([]int, maxLevel)
	const n = 100000
	for v := int32(0); v < n; v++ {
		l := levelFor(7, v)
		if l != levelFor(7, v) {
			t.Fatalf("levelFor not a pure function at id %d", v)
		}
		if l < 0 || l >= maxLevel {
			t.Fatalf("level %d out of range", l)
		}
		counts[l]++
	}
	if counts[0] < n*6/10 || counts[0] > n*9/10 {
		t.Errorf("base-level fraction %d/%d far from 3/4", counts[0], n)
	}
	// Each level should hold roughly a quarter of the one below.
	if counts[1] == 0 || counts[2] == 0 {
		t.Errorf("upper levels unpopulated: %v", counts[:4])
	}
	if levelFor(7, 12345) == levelFor(8, 12345) &&
		levelFor(7, 54321) == levelFor(8, 54321) &&
		levelFor(7, 999) == levelFor(8, 999) &&
		levelFor(7, 31337) == levelFor(8, 31337) {
		t.Error("seed appears to have no effect on level assignment")
	}
}

// TestSearchProperties asserts the query-path invariants the serving
// layer depends on: every returned id is a valid vertex, the query
// vertex itself is excluded, results carry no duplicates, and the
// list is sorted by the Before total order.
func TestSearchProperties(t *testing.T) {
	const n = 600
	ix := buildTest(t, n, 16, Params{}, 3)
	for _, q := range []int32{0, 1, 77, 311, 599} {
		for _, k := range []int{1, 5, 20} {
			for _, ef := range []int{0, 8, 64} {
				got := ix.SearchVertex(q, k, ef)
				if len(got) == 0 || len(got) > k {
					t.Fatalf("q=%d k=%d ef=%d: %d results", q, k, ef, len(got))
				}
				seen := make(map[int32]bool)
				for i, c := range got {
					if c.ID < 0 || c.ID >= n {
						t.Fatalf("q=%d: invalid id %d", q, c.ID)
					}
					if c.ID == q {
						t.Fatalf("q=%d: query vertex in its own result", q)
					}
					if seen[c.ID] {
						t.Fatalf("q=%d: duplicate id %d", q, c.ID)
					}
					seen[c.ID] = true
					if i > 0 && !Before(got[i-1].Score, got[i-1].ID, c.Score, c.ID) {
						t.Fatalf("q=%d: results not sorted by the total order at rank %d", q, i)
					}
				}
			}
		}
	}
}

// TestSearchFullBeamMatchesExact sets ef = |V|: the beam then covers
// every reachable vertex, so the ANN answer must be a subset of — and
// with the index's connected base layer, equal to — the exact
// scanner's top-K.
func TestSearchFullBeamMatchesExact(t *testing.T) {
	const n = 500
	ix := buildTest(t, n, 12, Params{}, 2)
	for _, q := range []int32{0, 9, 250, 499} {
		for _, k := range []int{1, 10, 37} {
			got := ix.SearchVertex(q, k, n)
			want := ix.ExactTopKVertex(q, k)
			if len(got) != len(want) {
				t.Fatalf("q=%d k=%d: %d results, want %d", q, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("q=%d k=%d rank %d: got %+v, want %+v", q, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestExactTopKMatchesSort cross-checks the harness's own reference
// scanner against a plain sort.
func TestExactTopKMatchesSort(t *testing.T) {
	emb, norms := randTable(120, 8, 4, 9)
	q := emb.Row(5)
	qn := norms[5]
	got := ExactTopK(emb, norms, q, qn, 10, 5)
	var all []Candidate
	for v := 0; v < 120; v++ {
		if v == 5 {
			continue
		}
		s := 0.0
		if d := qn * norms[v]; d > 0 {
			s = mat.Dot(q, emb.Row(v)) / d
		}
		all = append(all, Candidate{ID: int32(v), Score: s})
	}
	sort.Slice(all, func(i, j int) bool {
		return Before(all[i].Score, all[i].ID, all[j].Score, all[j].ID)
	})
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], all[i])
		}
	}
}

// TestIndexStructure sanity-checks the built graph: the entry is the
// highest-level vertex with the lowest id, link capacities are
// respected, and all links point at valid vertices at valid levels.
func TestIndexStructure(t *testing.T) {
	const n = 400
	ix := buildTest(t, n, 16, Params{M: 8}, 4)
	st := ix.Stats()
	if st.N != n {
		t.Fatalf("N = %d", st.N)
	}
	wantEntry := int32(0)
	for v := int32(1); v < n; v++ {
		if ix.nodes[v].level > ix.nodes[wantEntry].level {
			wantEntry = v
		}
	}
	if ix.entry != wantEntry {
		t.Errorf("entry = %d (level %d), want %d (level %d)",
			ix.entry, ix.nodes[ix.entry].level, wantEntry, ix.nodes[wantEntry].level)
	}
	for v := int32(0); v < n; v++ {
		nd := ix.nodes[v]
		if int(nd.level) != len(nd.links)-1 {
			t.Fatalf("vertex %d: level %d but %d link layers", v, nd.level, len(nd.links))
		}
		for l, ls := range nd.links {
			if len(ls) > ix.capAt(int32(l)) {
				t.Fatalf("vertex %d layer %d: %d links exceeds cap %d", v, l, len(ls), ix.capAt(int32(l)))
			}
			for _, u := range ls {
				if u < 0 || u >= n || u == v {
					t.Fatalf("vertex %d layer %d: bad link %d", v, l, u)
				}
				if int(ix.nodes[u].level) < l {
					t.Fatalf("vertex %d layer %d links to %d whose level is %d", v, l, u, ix.nodes[u].level)
				}
			}
		}
	}
	// Base layer must keep every non-entry vertex attached.
	for v := int32(0); v < n; v++ {
		if v != ix.entry && len(ix.nodes[v].links[0]) == 0 {
			t.Fatalf("vertex %d has no base-layer links", v)
		}
	}
}

// TestHeapTotalOrder drives both heap orientations over a tie-heavy
// offer stream and checks pops agree with a reference sort.
func TestHeapTotalOrder(t *testing.T) {
	r := rng.New(3)
	var items []Candidate
	for i := 0; i < 200; i++ {
		items = append(items, Candidate{ID: int32(i), Score: float64(r.Intn(5))})
	}
	for _, best := range []bool{true, false} {
		h := newHeap(best)
		for _, c := range items {
			h.push(c)
		}
		ref := append([]Candidate(nil), items...)
		sort.Slice(ref, func(i, j int) bool {
			b := Before(ref[i].Score, ref[i].ID, ref[j].Score, ref[j].ID)
			if best {
				return b
			}
			return !b
		})
		for i := range ref {
			if got := h.pop(); got != ref[i] {
				t.Fatalf("best=%v pop %d: got %+v, want %+v", best, i, got, ref[i])
			}
		}
	}
}

// TestEmptyAndTiny covers degenerate tables.
func TestEmptyAndTiny(t *testing.T) {
	empty := Build(mat.New(0, 4), nil, Params{}, 2)
	if got := empty.Search([]float64{1, 0, 0, 0}, 1, 5, 0, -1); got != nil {
		t.Errorf("empty index returned %v", got)
	}
	one := Build(mat.FromData(1, 2, []float64{1, 2}), nil, Params{}, 2)
	if got := one.SearchVertex(0, 3, 0); len(got) != 0 {
		t.Errorf("single-vertex self-query returned %v", got)
	}
	two := Build(mat.FromData(2, 2, []float64{1, 0, 0.9, 0.1}), nil, Params{}, 2)
	got := two.SearchVertex(0, 5, 0)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("two-vertex query = %v", got)
	}
}
