package ann

// heap is a small binary heap of Candidates ordered by the Before
// total order: with best==true the root is the best-ranked entry (the
// expansion frontier of a beam search), with best==false the root is
// the worst-ranked (the eviction point of a bounded result set).
// Because Before is total for distinct ids, two heaps fed the same
// offers in the same order always pop identical sequences — no
// tie-breaking ambiguity can leak into search results.
type heap struct {
	best bool
	v    []Candidate
}

func newHeap(best bool) *heap { return &heap{best: best} }

func (h *heap) len() int { return len(h.v) }

// above reports whether element i must sit above element j.
func (h *heap) above(i, j int) bool {
	b := Before(h.v[i].Score, h.v[i].ID, h.v[j].Score, h.v[j].ID)
	if h.best {
		return b
	}
	return !b
}

func (h *heap) push(c Candidate) {
	h.v = append(h.v, c)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.above(i, p) {
			break
		}
		h.v[i], h.v[p] = h.v[p], h.v[i]
		i = p
	}
}

// peek returns the root without removing it.
func (h *heap) peek() Candidate { return h.v[0] }

func (h *heap) pop() Candidate {
	root := h.v[0]
	last := len(h.v) - 1
	h.v[0] = h.v[last]
	h.v = h.v[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.above(l, m) {
			m = l
		}
		if r < last && h.above(r, m) {
			m = r
		}
		if m == i {
			return root
		}
		h.v[i], h.v[m] = h.v[m], h.v[i]
		i = m
	}
}

// drain removes and returns all entries in unspecified heap order;
// callers sort. The heap is empty afterwards.
func (h *heap) drain() []Candidate {
	out := h.v
	h.v = nil
	return out
}
