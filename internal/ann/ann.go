// Package ann provides an HNSW-style approximate nearest-neighbor
// index over dense embedding tables — the sub-linear answer to the
// serving path's top-K similarity queries, which would otherwise scan
// all |V| vertices per query (the one remaining linear-in-graph-size
// hot path at Table-I scale).
//
// The index is deterministic by construction, extending the repo-wide
// determinism contract (bit-identical results at every Workers
// setting) from training and exact serving into the approximate
// world:
//
//   - Layer heights are a pure function of (seed, vertex id), drawn
//     from a private LCG with P(level >= l+1 | level >= l) = 1/4 —
//     the same generator idiom as the serving skiplist's randLevel —
//     so the level assignment never depends on insertion order or
//     scheduling.
//   - Construction is wave-parallel: vertices are inserted in id
//     order in fixed-size waves. Within a wave every vertex searches
//     the frozen pre-wave graph for its candidate neighbors in
//     parallel (the distance-heavy part), then links are committed
//     serially in id order. The wave size is a constant, never a
//     function of the worker count, so the decomposition — and hence
//     the final link structure — is identical at every Workers
//     setting.
//   - Every comparison of two scored vertices goes through Before, a
//     total order (higher score first, lower id on ties), so heap
//     pops, neighbor selection and result ranking admit no
//     tie-breaking ambiguity.
//
// Similarity is cosine (higher is closer), computed exactly as the
// serving layer's exact scanner computes it, so an ANN result list is
// comparable element-for-element with the exact one.
package ann

import (
	"math"
	"sort"

	"gsgcn/internal/mat"
	"gsgcn/internal/perf"
)

// maxLevel caps layer heights; with p = 1/4 the expected top level of
// even a billion-vertex index is ~15.
const maxLevel = 16

// buildWave is the number of vertices inserted per construction wave.
// It is a constant — never derived from the worker count — because the
// wave decomposition determines which graph snapshot each vertex
// searches, and therefore the final link structure. Within a wave,
// committed wave-mates are offered to later members by brute force, so
// small graphs degrade gracefully toward sequential insertion quality.
const buildWave = 64

// Params configures index construction and the default query effort.
type Params struct {
	// M is the connectivity: each vertex keeps up to M links per
	// upper layer and 2M on the base layer (0 = 16).
	M int
	// EfConstruction is the candidate-beam width used while building
	// (0 = 128). Larger values build better graphs, slower.
	EfConstruction int
	// EfSearch is the default query-time beam width (0 = 64). Queries
	// may override it per call; recall rises with ef at the cost of
	// visiting more candidates.
	EfSearch int
	// Seed drives the layer-height LCG. Two indexes built over the
	// same table with the same Params are identical structures.
	Seed uint64
}

// Resolved returns the params with defaults filled in — the exact
// configuration Build would run with, which is what artifact
// validation compares against a persisted index's parameters.
func (p Params) Resolved() Params { return p.withDefaults() }

func (p Params) withDefaults() Params {
	if p.M <= 0 {
		p.M = 16
	}
	if p.EfConstruction <= 0 {
		p.EfConstruction = 128
	}
	if p.EfSearch <= 0 {
		p.EfSearch = 64
	}
	if p.Seed == 0 {
		p.Seed = 0x9E3779B97F4A7C15
	}
	return p
}

// Candidate is one scored vertex of a search answer.
type Candidate struct {
	ID    int32
	Score float64
}

// Before reports whether (s1, id1) ranks strictly ahead of (s2, id2):
// higher score first, lower id on ties. It is a total order for
// distinct ids — the property that makes every heap pop and neighbor
// selection in this package unambiguous, and ANN result lists
// mergeable with the exact scanner's.
func Before(s1 float64, id1 int32, s2 float64, id2 int32) bool {
	if s1 != s2 {
		return s1 > s2
	}
	return id1 < id2
}

// node is one indexed vertex: its layer height and, per layer
// 0..level, its out-links.
type node struct {
	level int32
	links [][]int32
}

// Index is an immutable-after-Build HNSW graph over an embedding
// table. Queries are read-only and safe for concurrent use.
type Index struct {
	params Params
	emb    mat.RowSource
	norms  []float64

	nodes []node
	entry int32 // highest-level vertex, lowest id on ties (-1 when empty)

	// distComps counts similarity evaluations during Build — exposed
	// through Stats for the recall/cost harness.
	buildDistComps uint64
}

// Stats reports structural facts about a built index.
type Stats struct {
	N              int
	MaxLevel       int
	Entry          int32
	Links          int // total directed links over all layers
	BuildDistComps uint64
}

// Stats summarizes the index structure.
func (ix *Index) Stats() Stats {
	s := Stats{N: len(ix.nodes), Entry: ix.entry, BuildDistComps: ix.buildDistComps}
	for _, nd := range ix.nodes {
		if int(nd.level) > s.MaxLevel {
			s.MaxLevel = int(nd.level)
		}
		for _, ls := range nd.links {
			s.Links += len(ls)
		}
	}
	return s
}

// Params returns the resolved construction parameters.
func (ix *Index) Params() Params { return ix.params }

// Len returns the number of indexed vertices.
func (ix *Index) Len() int { return len(ix.nodes) }

// levelFor draws vertex id's layer height from the seeded LCG: a pure
// function of (seed, id), so index shape is independent of insertion
// order, wave decomposition and worker count.
func levelFor(seed uint64, id int32) int32 {
	x := seed + uint64(id)*0x9E3779B97F4A7C15
	lvl := int32(0)
	for lvl < maxLevel-1 {
		x = x*6364136223846793005 + 1442695040888963407
		if (x>>33)&3 != 0 {
			break
		}
		lvl++
	}
	return lvl
}

// sim returns the cosine similarity between query (with norm qn) and
// indexed vertex v — the same arithmetic as the exact serving scanner:
// zero when either norm is zero.
func (ix *Index) sim(q []float64, qn float64, v int32) float64 {
	if d := qn * ix.norms[v]; d > 0 {
		return mat.Dot(q, ix.emb.Row(int(v))) / d
	}
	return 0
}

// Build constructs the index over emb. norms[v] must be ||emb[v]||₂
// (pass nil to have Build compute them). workers bounds the goroutine
// budget for the distance-heavy candidate searches (<= 0 uses the
// shared pool default); the resulting structure is bit-identical at
// every setting.
func Build(emb mat.RowSource, norms []float64, p Params, workers int) *Index {
	p = p.withDefaults()
	n := emb.NumRows()
	if workers < 1 {
		workers = perf.NumWorkers()
	}
	if norms == nil {
		norms = make([]float64, n)
		perf.ParallelMin(n, 64, workers, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				row := emb.Row(v)
				norms[v] = math.Sqrt(mat.Dot(row, row))
			}
		})
	}
	ix := &Index{params: p, emb: emb, norms: norms, entry: -1, nodes: make([]node, n)}
	for v := 0; v < n; v++ {
		lvl := levelFor(p.Seed, int32(v))
		ix.nodes[v] = node{level: lvl, links: make([][]int32, lvl+1)}
	}

	// Per-wave scratch: candidate lists found against the frozen
	// pre-wave graph, one slot per wave member.
	cands := make([][][]Candidate, buildWave)
	var dist uint64
	for lo := 0; lo < n; lo += buildWave {
		hi := lo + buildWave
		if hi > n {
			hi = n
		}
		// Parallel phase: search the frozen graph. Each wave member's
		// candidate lists depend only on the pre-wave structure, so
		// scheduling cannot influence them.
		counts := make([]uint64, hi-lo)
		perf.Parallel(hi-lo, workers, func(_, wlo, whi int) {
			for w := wlo; w < whi; w++ {
				v := int32(lo + w)
				cands[w], counts[w] = ix.buildCandidates(v)
			}
		})
		for _, c := range counts {
			dist += c
		}
		// Serial phase: commit links in id order. Brute-force offers
		// from already-committed wave-mates patch in the connectivity
		// the frozen search could not see.
		for w := 0; lo+w < hi; w++ {
			dist += ix.commit(int32(lo+w), int32(lo), cands[w])
		}
	}
	ix.buildDistComps = dist
	return ix
}

// buildCandidates runs the insertion-time search for vertex v against
// the current (frozen) graph: greedy descent above v's level, then an
// EfConstruction-wide beam at each level v occupies. Levels above the
// current entry's level yield empty lists. Returns the per-level
// candidate lists (index = level) and the number of similarity
// evaluations spent.
func (ix *Index) buildCandidates(v int32) ([][]Candidate, uint64) {
	lvl := ix.nodes[v].level
	out := make([][]Candidate, lvl+1)
	if ix.entry < 0 {
		return out, 0
	}
	q := ix.emb.Row(int(v))
	qn := ix.norms[v]
	var dist uint64
	ep := ix.entry
	epSim := ix.sim(q, qn, ep)
	dist++
	for l := ix.nodes[ep].level; l > lvl; l-- {
		var d uint64
		ep, epSim, d = ix.greedyAt(q, qn, ep, epSim, l)
		dist += d
	}
	visited := make([]uint64, (len(ix.nodes)+63)/64)
	top := lvl
	if el := ix.nodes[ix.entry].level; el < top {
		top = el
	}
	for l := top; l >= 0; l-- {
		res, d := ix.searchLayer(q, qn, ep, epSim, l, ix.params.EfConstruction, -1, visited)
		dist += d
		out[l] = res
		if len(res) > 0 {
			ep, epSim = res[0].ID, res[0].Score
		}
		// Reset the visited set between layers: each layer's beam is
		// an independent search (links differ per layer).
		for i := range visited {
			visited[i] = 0
		}
	}
	return out, dist
}

// commit links vertex v into the graph: merge brute-force offers from
// committed wave-mates (ids in [waveLo, v)) into the frozen-graph
// candidates, select neighbors per level, and add the reverse links,
// pruning any over-full list. Serial, in id order. Returns similarity
// evaluations spent.
func (ix *Index) commit(v, waveLo int32, cands [][]Candidate) uint64 {
	if ix.entry < 0 {
		ix.entry = v
		return 0
	}
	q := ix.emb.Row(int(v))
	qn := ix.norms[v]
	lvl := ix.nodes[v].level
	var dist uint64
	// Wave-mate patch: candidates the frozen search could not see.
	for u := waveLo; u < v; u++ {
		s := ix.sim(q, qn, u)
		dist++
		top := lvl
		if ul := ix.nodes[u].level; ul < top {
			top = ul
		}
		for l := int32(0); l <= top; l++ {
			cands[l] = append(cands[l], Candidate{ID: u, Score: s})
		}
	}
	for l := int32(0); l <= lvl; l++ {
		cs := cands[l]
		sort.Slice(cs, func(i, j int) bool {
			return Before(cs[i].Score, cs[i].ID, cs[j].Score, cs[j].ID)
		})
		sel, d := ix.selectNeighbors(cs, ix.params.M)
		dist += d
		ix.nodes[v].links[l] = sel
		capL := ix.capAt(l)
		for _, u := range sel {
			ul := append(ix.nodes[u].links[l], v)
			if len(ul) > capL {
				ul, d = ix.pruneLinks(u, l, ul, capL)
				dist += d
			}
			ix.nodes[u].links[l] = ul
		}
	}
	if lvl > ix.nodes[ix.entry].level {
		ix.entry = v
	}
	return dist
}

// capAt returns the per-vertex link capacity at layer l: 2M on the
// base layer, M above.
func (ix *Index) capAt(l int32) int {
	if l == 0 {
		return 2 * ix.params.M
	}
	return ix.params.M
}

// selectNeighbors applies the HNSW diversity heuristic to a
// best-first-sorted candidate list: a candidate is kept only if it is
// closer to the query than to every already-kept neighbor, which
// spreads links across directions instead of bunching them in one
// cluster. Skipped candidates backfill remaining slots (the paper's
// keepPrunedConnections), preserving connectivity on clustered data.
// All comparisons go through the Before total order on exact scores,
// so the selection is deterministic.
func (ix *Index) selectNeighbors(cands []Candidate, m int) ([]int32, uint64) {
	var dist uint64
	sel := make([]int32, 0, m)
	var skipped []Candidate
	for _, c := range cands {
		if len(sel) == m {
			break
		}
		crow := ix.emb.Row(int(c.ID))
		cn := ix.norms[c.ID]
		diverse := true
		for _, s := range sel {
			dist++
			if toSel := ix.sim(crow, cn, s); toSel > c.Score {
				diverse = false
				break
			}
		}
		if diverse {
			sel = append(sel, c.ID)
		} else {
			skipped = append(skipped, c)
		}
	}
	for _, c := range skipped {
		if len(sel) == m {
			break
		}
		sel = append(sel, c.ID)
	}
	return sel, dist
}

// pruneLinks re-selects vertex u's layer-l neighbor list down to capL
// entries with the same diversity heuristic used at insertion, scored
// against u itself.
func (ix *Index) pruneLinks(u int32, l int32, links []int32, capL int) ([]int32, uint64) {
	urow := ix.emb.Row(int(u))
	un := ix.norms[u]
	cs := make([]Candidate, len(links))
	var dist uint64
	for i, w := range links {
		cs[i] = Candidate{ID: w, Score: ix.sim(urow, un, w)}
		dist++
	}
	sort.Slice(cs, func(i, j int) bool {
		return Before(cs[i].Score, cs[i].ID, cs[j].Score, cs[j].ID)
	})
	sel, d := ix.selectNeighbors(cs, capL)
	return sel, dist + d
}

// greedyAt walks layer l greedily from ep toward the query, moving to
// a neighbor only on strict improvement under the Before order, so the
// walk terminates and is deterministic.
func (ix *Index) greedyAt(q []float64, qn float64, ep int32, epSim float64, l int32) (int32, float64, uint64) {
	var dist uint64
	for {
		improved := false
		for _, u := range ix.nodes[ep].links[l] {
			s := ix.sim(q, qn, u)
			dist++
			if Before(s, u, epSim, ep) {
				ep, epSim = u, s
				improved = true
			}
		}
		if !improved {
			return ep, epSim, dist
		}
	}
}

// searchLayer is the ef-bounded best-first beam search at one layer:
// expand the best unexpanded candidate until it cannot improve the
// worst of the ef best found. exclude (when >= 0) is traversable but
// never enters the result set — the serving layer's own-vertex
// exclusion. visited must be a zeroed bitset of >= ceil(n/64) words.
// Results come back sorted best-first under the Before order.
func (ix *Index) searchLayer(q []float64, qn float64, ep int32, epSim float64, l int32, ef int, exclude int32, visited []uint64) ([]Candidate, uint64) {
	var dist uint64
	cand := newHeap(true) // best-first expansion frontier
	res := newHeap(false) // worst-first bounded result set
	visited[ep>>6] |= 1 << (uint(ep) & 63)
	cand.push(Candidate{ID: ep, Score: epSim})
	if ep != exclude {
		res.push(Candidate{ID: ep, Score: epSim})
	}
	for cand.len() > 0 {
		c := cand.pop()
		if res.len() >= ef {
			if w := res.peek(); Before(w.Score, w.ID, c.Score, c.ID) {
				break
			}
		}
		for _, u := range ix.nodes[c.ID].links[l] {
			if visited[u>>6]&(1<<(uint(u)&63)) != 0 {
				continue
			}
			visited[u>>6] |= 1 << (uint(u) & 63)
			s := ix.sim(q, qn, u)
			dist++
			if res.len() >= ef {
				if w := res.peek(); !Before(s, u, w.Score, w.ID) {
					continue
				}
			}
			cand.push(Candidate{ID: u, Score: s})
			if u != exclude {
				res.push(Candidate{ID: u, Score: s})
				if res.len() > ef {
					res.pop()
				}
			}
		}
	}
	out := res.drain()
	sort.Slice(out, func(i, j int) bool {
		return Before(out[i].Score, out[i].ID, out[j].Score, out[j].ID)
	})
	return out, dist
}

// Search returns the k indexed vertices most cosine-similar to the
// query vector (with precomputed norm qn), beam width ef (raised to k
// when smaller; Params.EfSearch when <= 0). exclude (>= 0) removes
// one vertex — typically the query's own id — from the answer.
// Results are ranked by the Before total order; the call is read-only
// and deterministic.
func (ix *Index) Search(query []float64, qn float64, k, ef int, exclude int32) []Candidate {
	if len(ix.nodes) == 0 || k < 1 {
		return nil
	}
	if ef <= 0 {
		ef = ix.params.EfSearch
	}
	if ef < k {
		ef = k
	}
	ep := ix.entry
	epSim := ix.sim(query, qn, ep)
	for l := ix.nodes[ep].level; l > 0; l-- {
		ep, epSim, _ = ix.greedyAt(query, qn, ep, epSim, l)
	}
	visited := make([]uint64, (len(ix.nodes)+63)/64)
	res, _ := ix.searchLayer(query, qn, ep, epSim, 0, ef, exclude, visited)
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// SearchVertex is Search for an indexed vertex id: the query vector
// and norm come from the table and the vertex itself is excluded.
func (ix *Index) SearchVertex(v int32, k, ef int) []Candidate {
	return ix.Search(ix.emb.Row(int(v)), ix.norms[v], k, ef, v)
}
