package ann

import (
	"bytes"
	"testing"
)

// TestEncodeDecodeRoundTrip pins the persistence contract end to end:
// a decoded index is byte-equal to the one that was encoded, a rebuild
// over the same table encodes to the same bytes, and decoded indexes
// answer every query identically to the original.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	emb, _ := randTable(500, 16, 8, 11)
	built := Build(emb, nil, Params{M: 8, EfConstruction: 48}, 4)

	blob := built.EncodeBinary()
	if rebuilt := Build(emb, nil, Params{M: 8, EfConstruction: 48}, 1); !bytes.Equal(blob, rebuilt.EncodeBinary()) {
		t.Fatal("rebuild over the same table encodes to different bytes")
	}

	loaded, err := DecodeIndex(blob, emb, nil)
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if !bytes.Equal(blob, loaded.EncodeBinary()) {
		t.Fatal("decoded index re-encodes to different bytes")
	}
	if built.Checksum() != loaded.Checksum() {
		t.Fatalf("checksum mismatch: built %x, loaded %x", built.Checksum(), loaded.Checksum())
	}
	if got, want := loaded.Params(), built.Params(); got != want {
		t.Fatalf("params round-trip: got %+v, want %+v", got, want)
	}

	for _, v := range []int32{0, 1, 250, 499} {
		want := built.SearchVertex(v, 10, 64)
		got := loaded.SearchVertex(v, 10, 64)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d results from loaded index, %d from built", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d result %d: loaded %+v, built %+v", v, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeIndexRejectsCorruption drives the decoder with damaged
// blobs: every case must fail with an error — no panic, no index over
// inconsistent structure.
func TestDecodeIndexRejectsCorruption(t *testing.T) {
	emb, _ := randTable(200, 8, 4, 5)
	ix := Build(emb, nil, Params{M: 6}, 2)
	blob := ix.EncodeBinary()
	if _, err := DecodeIndex(blob, emb, nil); err != nil {
		t.Fatalf("valid blob rejected: %v", err)
	}

	flip := func(off int) []byte {
		b := append([]byte(nil), blob...)
		b[off] ^= 0xFF
		return b
	}
	otherTable, _ := randTable(150, 8, 4, 5)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short-header", blob[:20]},
		{"bad-magic", flip(0)},
		{"bad-version", flip(8)},
		{"zero-m", append(append([]byte(nil), blob[:12]...), append(make([]byte, 4), blob[16:]...)...)},
		{"truncated-nodes", blob[:len(blob)-5]},
		{"trailing-garbage", append(append([]byte(nil), blob...), 1, 2, 3)},
		{"corrupt-entry", flip(36)},
		{"corrupt-body", flip(60)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if ix, err := DecodeIndex(tc.data, emb, nil); err == nil {
				// A body bit-flip can occasionally stay structurally
				// valid (e.g. reordering a link id to another in-range
				// id); the hard guarantee is byte-level: accept only if
				// it re-encodes to the input.
				if !bytes.Equal(tc.data, ix.EncodeBinary()) {
					t.Fatalf("corrupt blob %q accepted", tc.name)
				}
			}
		})
	}

	if _, err := DecodeIndex(blob, otherTable, nil); err == nil {
		t.Fatal("blob accepted against a table of the wrong size")
	}
}
