package ann

import "testing"

// TestRecallAtDefaultEf is the acceptance gate: on >= 2k-vertex
// seeded tables — clustered like trained GCN embeddings, and the
// harder structure-free uniform case — the index at its default ef
// must reach recall@10 >= 0.95 against the exact scanner.
// Deterministic — a fixed index and query set either pass or fail,
// never flake.
func TestRecallAtDefaultEf(t *testing.T) {
	const n = 2500
	run := func(t *testing.T, name string, build func() *Index) {
		t.Run(name, func(t *testing.T) {
			ix := build()
			queries := make([]int32, 0, 100)
			for q := int32(0); q < n; q += n / 100 {
				queries = append(queries, q)
			}
			rep := ix.RecallAtK(queries, 10, 0)
			t.Logf("recall@10 over %d queries at default ef=%d: mean %.4f worst %.4f (build dist comps %d)",
				rep.Queries, ix.params.EfSearch, rep.Recall, rep.Worst, ix.Stats().BuildDistComps)
			if rep.Recall < 0.95 {
				t.Fatalf("recall@10 = %.4f at default ef, want >= 0.95", rep.Recall)
			}
		})
	}
	run(t, "clustered", func() *Index {
		emb, norms := randTable(n, 32, 20, 1234)
		return Build(emb, norms, Params{}, 4)
	})
	run(t, "uniform", func() *Index {
		emb, norms := uniformTable(n, 32, 4321)
		return Build(emb, norms, Params{}, 4)
	})
}

// TestRecallRisesWithEf checks the ef knob's monotone trade-off in
// the large on a structure-free table (where narrow beams genuinely
// miss): a much wider beam must not lose recall, and ef = n must
// reach recall 1 exactly.
func TestRecallRisesWithEf(t *testing.T) {
	const n = 1500
	emb, norms := uniformTable(n, 48, 99)
	ix := Build(emb, norms, Params{M: 6, EfConstruction: 24}, 3)
	queries := make([]int32, 0, 50)
	for q := int32(0); q < n; q += n / 50 {
		queries = append(queries, q)
	}

	narrow := ix.RecallAtK(queries, 10, 10)
	wide := ix.RecallAtK(queries, 10, 400)
	full := ix.RecallAtK(queries, 10, n)
	t.Logf("recall@10: ef=10 %.3f, ef=400 %.3f, ef=n %.3f", narrow.Recall, wide.Recall, full.Recall)
	if wide.Recall < narrow.Recall {
		t.Errorf("recall fell from %.3f to %.3f as ef grew 10 -> 400", narrow.Recall, wide.Recall)
	}
	if wide.Recall <= narrow.Recall {
		t.Logf("note: ef=10 already saturates recall on this table")
	}
	if full.Recall != 1 || full.Worst != 1 {
		t.Errorf("ef=n recall = %.3f (worst %.3f), want exactly 1", full.Recall, full.Worst)
	}
}
