package ann

import (
	"sort"

	"gsgcn/internal/mat"
)

// This file is the recall harness: the exact reference scanner and
// the recall@K measurement that certifies an index against it. The
// serving layer's acceptance bar (recall@10 >= 0.95 at the default
// ef on Table-I-shaped graphs) is enforced by tests built on these.

// ExactTopK is the brute-force reference scanner: it scores every
// vertex of the table against the query and returns the k best under
// the Before total order — the same arithmetic and the same order as
// the serving layer's exact skiplist scan, so ANN answers are
// comparable element-for-element.
func ExactTopK(emb mat.RowSource, norms []float64, query []float64, qn float64, k int, exclude int32) []Candidate {
	n := emb.NumRows()
	if k < 1 || n == 0 {
		return nil
	}
	all := make([]Candidate, 0, n)
	for v := 0; v < n; v++ {
		if int32(v) == exclude {
			continue
		}
		score := 0.0
		if d := qn * norms[v]; d > 0 {
			score = mat.Dot(query, emb.Row(v)) / d
		}
		all = append(all, Candidate{ID: int32(v), Score: score})
	}
	sort.Slice(all, func(i, j int) bool {
		return Before(all[i].Score, all[i].ID, all[j].Score, all[j].ID)
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// ExactTopKVertex is ExactTopK for an indexed vertex id, excluding
// the vertex itself — the ground truth for SearchVertex.
func (ix *Index) ExactTopKVertex(v int32, k int) []Candidate {
	return ExactTopK(ix.emb, ix.norms, ix.emb.Row(int(v)), ix.norms[v], k, v)
}

// RecallReport is the outcome of one recall measurement.
type RecallReport struct {
	K, Ef   int
	Queries int
	// Recall is mean(|ann ∩ exact| / |exact|) over the query set —
	// recall@K against the brute-force scanner.
	Recall float64
	// Worst is the lowest per-query recall observed.
	Worst float64
}

// RecallAtK measures recall@K over the given query vertex ids: for
// each, the index's top-K (beam width ef) is compared as a set
// against the exact scanner's top-K, both excluding the query vertex
// itself. Deterministic for a fixed index and query list.
func (ix *Index) RecallAtK(queries []int32, k, ef int) RecallReport {
	rep := RecallReport{K: k, Ef: ef, Queries: len(queries), Worst: 1}
	if len(queries) == 0 {
		return rep
	}
	sum := 0.0
	for _, q := range queries {
		exact := ix.ExactTopKVertex(q, k)
		if len(exact) == 0 {
			continue
		}
		want := make(map[int32]bool, len(exact))
		for _, c := range exact {
			want[c.ID] = true
		}
		got := ix.SearchVertex(q, k, ef)
		hits := 0
		for _, c := range got {
			if want[c.ID] {
				hits++
			}
		}
		r := float64(hits) / float64(len(exact))
		sum += r
		if r < rep.Worst {
			rep.Worst = r
		}
	}
	rep.Recall = sum / float64(len(queries))
	return rep
}
