package ann

import (
	"sort"

	"gsgcn/internal/mat"
	"gsgcn/internal/perf"
)

// This file is the quantized ANN path: a flat scan over a compact
// table (float32 or int8-PQ codes) that produces a candidate beam,
// and the exact rerank that rescores the beam from float64 rows. The
// two compose into the serving layer's ANN mode for non-f64 dtypes:
// recall is bounded by the beam width exactly as with HNSW, while
// every reported score is bit-identical to the exact scanner's score
// for that row — quantization can change *which* rows are answered,
// never what score a row is answered with.

// quantChunk is the row block a scan worker scores per Scores call —
// large enough to amortize the interface dispatch, small enough to
// stay in cache.
const quantChunk = 1024

// ScanQuant scans the quantized table and returns the ef best rows
// by approximate cosine (approximate dot over qn*norms[r], the same
// normalization as the exact scan), excluding row id exclude (-1 =
// none). Candidates are returned best-first under the Before total
// order; because top-ef selection under a total order is independent
// of the scan decomposition, the beam is bit-identical at every
// workers setting.
func ScanQuant(qt mat.Quantized, norms []float64, q []float64, qn float64, ef int, exclude int32, workers int) []Candidate {
	n := qt.NumRows()
	if ef < 1 || n == 0 {
		return nil
	}
	shards := workers
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	qq := qt.Query(q)
	heaps := make([]*heap, shards)
	perf.Parallel(shards, workers, func(_, slo, shi int) {
		var buf [quantChunk]float64
		for s := slo; s < shi; s++ {
			lo := s * n / shards
			hi := (s + 1) * n / shards
			h := newHeap(false) // worst-ranked at root: the eviction point
			for blk := lo; blk < hi; blk += quantChunk {
				end := blk + quantChunk
				if end > hi {
					end = hi
				}
				qq.Scores(blk, end, buf[:end-blk])
				for r := blk; r < end; r++ {
					if int32(r) == exclude {
						continue
					}
					score := 0.0
					if d := qn * norms[r]; d > 0 {
						score = buf[r-blk] / d
					}
					offerBounded(h, Candidate{ID: int32(r), Score: score}, ef)
				}
			}
			heaps[s] = h
		}
	})
	final := newHeap(false)
	for _, h := range heaps {
		for _, c := range h.drain() {
			offerBounded(final, c, ef)
		}
	}
	beam := final.drain()
	sort.Slice(beam, func(i, j int) bool {
		return Before(beam[i].Score, beam[i].ID, beam[j].Score, beam[j].ID)
	})
	return beam
}

// offerBounded keeps h bounded to the cap best candidates under the
// Before order (h must be a worst-at-root heap).
func offerBounded(h *heap, c Candidate, cap int) {
	if h.len() < cap {
		h.push(c)
		return
	}
	w := h.peek()
	if Before(c.Score, c.ID, w.Score, w.ID) {
		h.pop()
		h.push(c)
	}
}

// RerankExact rescores a candidate beam with the exact float64
// cosine — the very arithmetic of the exact scanner, so each returned
// score is bit-identical to what an exact scan would report for that
// row — and returns the k best under the Before order.
func RerankExact(emb mat.RowSource, norms []float64, q []float64, qn float64, beam []Candidate, k int) []Candidate {
	if k < 1 || len(beam) == 0 {
		return nil
	}
	out := make([]Candidate, len(beam))
	for i, c := range beam {
		score := 0.0
		if d := qn * norms[c.ID]; d > 0 {
			score = mat.Dot(q, emb.Row(int(c.ID))) / d
		}
		out[i] = Candidate{ID: c.ID, Score: score}
	}
	sort.Slice(out, func(i, j int) bool {
		return Before(out[i].Score, out[i].ID, out[j].Score, out[j].ID)
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}
