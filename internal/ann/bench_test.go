package ann

import (
	"testing"

	"gsgcn/internal/mat"
)

// BenchmarkAnnScanDtype prices one ANN candidate scan per resident
// representation on a Table-I-shaped table: f64 is the exact flat
// scan (the no-index baseline the quantized paths substitute), f32 and
// i8pq run the quantized scan plus the exact rerank of the ef-wide
// beam — the full work the serving layer does per query at that dtype.
// Each quantized case reports its recall@10 against the exact scanner
// so the speedup is never read without its accuracy.
func BenchmarkAnnScanDtype(b *testing.B) {
	const (
		n, dim = 8192, 32
		k, ef  = 10, 64
	)
	emb, norms := randTable(n, dim, 16, 5)

	recallOf := func(qt mat.Quantized) float64 {
		sum, queries := 0.0, 0
		for v := 0; v < n; v += n / 50 {
			q, qn := emb.Row(v), norms[v]
			exact := ExactTopK(emb, norms, q, qn, k, int32(v))
			want := make(map[int32]bool, len(exact))
			for _, c := range exact {
				want[c.ID] = true
			}
			hits := 0
			beam := ScanQuant(qt, norms, q, qn, ef, int32(v), 4)
			for _, c := range RerankExact(emb, norms, q, qn, beam, k) {
				if want[c.ID] {
					hits++
				}
			}
			sum += float64(hits) / float64(len(exact))
			queries++
		}
		return sum / float64(queries)
	}

	b.Run("f64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v := i % n
			ExactTopK(emb, norms, emb.Row(v), norms[v], k, int32(v))
		}
	})
	for name, qt := range quantizers(emb) {
		qt := qt
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := i % n
				q, qn := emb.Row(v), norms[v]
				beam := ScanQuant(qt, norms, q, qn, ef, int32(v), 4)
				RerankExact(emb, norms, q, qn, beam, k)
			}
			b.StopTimer()
			b.ReportMetric(recallOf(qt), "recall@10")
			b.ReportMetric(float64(qt.ResidentBytes()), "resident_bytes")
		})
	}
}
