package ann

import (
	"math"
	"testing"

	"gsgcn/internal/mat"
)

// quantizers builds both lossy representations over a table.
func quantizers(emb *mat.Dense) map[string]mat.Quantized {
	return map[string]mat.Quantized{
		"f32":  mat.ToF32(emb, 2),
		"i8pq": mat.TrainPQ(emb, mat.ResolvePQ(emb.Rows, emb.Cols), 2),
	}
}

// TestScanQuantWorkerInvariance: the beam is a top-ef selection under
// the Before total order, so it must be bit-identical at every worker
// count, for both quantized representations.
func TestScanQuantWorkerInvariance(t *testing.T) {
	emb, norms := randTable(500, 16, 8, 3)
	for name, qt := range quantizers(emb) {
		q := emb.Row(42)
		qn := norms[42]
		ref := ScanQuant(qt, norms, q, qn, 64, 42, 1)
		if len(ref) != 64 {
			t.Fatalf("%s: beam has %d candidates, want 64", name, len(ref))
		}
		for _, w := range []int{2, 3, 7, 16} {
			got := ScanQuant(qt, norms, q, qn, 64, 42, w)
			if len(got) != len(ref) {
				t.Fatalf("%s workers=%d: beam size %d vs %d", name, w, len(got), len(ref))
			}
			for i := range ref {
				if got[i].ID != ref[i].ID || math.Float64bits(got[i].Score) != math.Float64bits(ref[i].Score) {
					t.Fatalf("%s workers=%d: beam[%d] = %+v, want %+v", name, w, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestScanQuantEdgeCases: empty tables, tiny ef, no exclusion.
func TestScanQuantEdgeCases(t *testing.T) {
	emb, norms := randTable(10, 4, 2, 1)
	qt := mat.ToF32(emb, 1)
	if got := ScanQuant(qt, norms, emb.Row(0), norms[0], 0, -1, 2); got != nil {
		t.Errorf("ef=0 returned %d candidates", len(got))
	}
	beam := ScanQuant(qt, norms, emb.Row(0), norms[0], 100, -1, 2)
	if len(beam) != 10 {
		t.Errorf("ef beyond n returned %d candidates, want all 10", len(beam))
	}
	beam = ScanQuant(qt, norms, emb.Row(0), norms[0], 100, 0, 2)
	for _, c := range beam {
		if c.ID == 0 {
			t.Error("excluded row returned")
		}
	}
}

// TestRerankExactBitIdentity is the exactness half of the quantized
// ANN contract: every score RerankExact reports must be bit-identical
// to the exact scanner's score for that row — quantization may change
// which rows are answered, never the score a row is answered with.
func TestRerankExactBitIdentity(t *testing.T) {
	emb, norms := randTable(800, 24, 12, 9)
	exactBits := make(map[int32]uint64)
	for name, qt := range quantizers(emb) {
		for _, v := range []int{0, 17, 400, 799} {
			q := emb.Row(v)
			qn := norms[v]
			for _, c := range ExactTopK(emb, norms, q, qn, 800, int32(v)) {
				exactBits[c.ID] = math.Float64bits(c.Score)
			}
			beam := ScanQuant(qt, norms, q, qn, 64, int32(v), 3)
			got := RerankExact(emb, norms, q, qn, beam, 10)
			if len(got) != 10 {
				t.Fatalf("%s v=%d: rerank returned %d, want 10", name, v, len(got))
			}
			for i, c := range got {
				if math.Float64bits(c.Score) != exactBits[c.ID] {
					t.Fatalf("%s v=%d rank %d: reranked score %v for id %d is not the exact scanner's score",
						name, v, i, c.Score, c.ID)
				}
				if i > 0 && !Before(got[i-1].Score, got[i-1].ID, c.Score, c.ID) {
					t.Fatalf("%s v=%d: rerank output not in Before order at rank %d", name, v, i)
				}
			}
		}
	}
}

// TestQuantRecallAtK enforces the memory plane's recall floor on a
// >= 2k-row table: scanning the quantized representation with the
// serving default beam (ef=64) and exact-reranking to k=10 must reach
// recall@10 >= 0.95 for int8-PQ; f32 is a rounding of the exact table
// and must do at least as well.
func TestQuantRecallAtK(t *testing.T) {
	const (
		n, dim = 2048, 32
		k, ef  = 10, 64
	)
	emb, norms := randTable(n, dim, 16, 21)
	floors := map[string]float64{"f32": 0.99, "i8pq": 0.95}
	for name, qt := range quantizers(emb) {
		sum, worst := 0.0, 1.0
		queries := 0
		for v := 0; v < n; v += 31 {
			q := emb.Row(v)
			qn := norms[v]
			exact := ExactTopK(emb, norms, q, qn, k, int32(v))
			want := make(map[int32]bool, len(exact))
			for _, c := range exact {
				want[c.ID] = true
			}
			beam := ScanQuant(qt, norms, q, qn, ef, int32(v), 4)
			hits := 0
			for _, c := range RerankExact(emb, norms, q, qn, beam, k) {
				if want[c.ID] {
					hits++
				}
			}
			r := float64(hits) / float64(len(exact))
			sum += r
			if r < worst {
				worst = r
			}
			queries++
		}
		recall := sum / float64(queries)
		t.Logf("%s: recall@%d = %.4f over %d queries (worst %.2f) at ef=%d", name, k, recall, queries, worst, ef)
		if recall < floors[name] {
			t.Errorf("%s: recall@%d = %.4f below the %.2f floor", name, k, recall, floors[name])
		}
	}
}
