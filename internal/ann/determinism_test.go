package ann

import (
	"reflect"
	"testing"
)

// indexEqual reports structural identity: same levels, same links in
// the same order, same entry — the strongest form of build
// determinism (bit-identical queries follow from it).
func indexEqual(a, b *Index) bool {
	if a.entry != b.entry || len(a.nodes) != len(b.nodes) {
		return false
	}
	for v := range a.nodes {
		if a.nodes[v].level != b.nodes[v].level {
			return false
		}
		if !reflect.DeepEqual(a.nodes[v].links, b.nodes[v].links) {
			return false
		}
	}
	return true
}

// TestBuildDeterministicAcrossWorkers builds the same table at many
// worker counts: the wave decomposition is a constant, searches read
// only frozen state, and commits are serial in id order, so the link
// structure must be identical everywhere.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	emb, norms := randTable(900, 16, 12, 5)
	ref := Build(emb, norms, Params{M: 12}, 1)
	for _, workers := range []int{2, 3, 5, 8} {
		got := Build(emb, norms, Params{M: 12}, workers)
		if !indexEqual(ref, got) {
			t.Fatalf("index built with workers=%d differs from workers=1", workers)
		}
	}
}

// TestBuildDeterministicAcrossRebuilds rebuilds with identical inputs
// and asserts structural identity — the /reload reproducibility
// contract.
func TestBuildDeterministicAcrossRebuilds(t *testing.T) {
	emb, norms := randTable(700, 12, 8, 21)
	a := Build(emb, norms, Params{}, 4)
	b := Build(emb, norms, Params{}, 4)
	if !indexEqual(a, b) {
		t.Fatal("two builds over identical inputs produced different indexes")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ across rebuilds: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestQueriesBitIdenticalAcrossWorkers compares full result lists —
// ids and float scores — from indexes built at different worker
// counts. This is the end-to-end determinism contract the serving
// layer advertises for mode=ann.
func TestQueriesBitIdenticalAcrossWorkers(t *testing.T) {
	emb, norms := randTable(1100, 16, 10, 77)
	ref := Build(emb, norms, Params{}, 1)
	for _, workers := range []int{3, 7} {
		got := Build(emb, norms, Params{}, workers)
		for _, q := range []int32{0, 13, 550, 1099} {
			for _, ef := range []int{0, 16, 200} {
				a := ref.SearchVertex(q, 10, ef)
				b := got.SearchVertex(q, 10, ef)
				if len(a) != len(b) {
					t.Fatalf("workers=%d q=%d ef=%d: %d vs %d results", workers, q, ef, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("workers=%d q=%d ef=%d rank %d: %+v vs %+v",
							workers, q, ef, i, a[i], b[i])
					}
				}
			}
		}
	}
}

// TestSeedChangesStructure guards against the seed being ignored: a
// different seed must reassign at least some layer heights.
func TestSeedChangesStructure(t *testing.T) {
	emb, norms := randTable(400, 8, 4, 3)
	a := Build(emb, norms, Params{Seed: 1}, 2)
	b := Build(emb, norms, Params{Seed: 2}, 2)
	same := true
	for v := range a.nodes {
		if a.nodes[v].level != b.nodes[v].level {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical level assignments")
	}
}
