// Package artifact implements the serving snapshot artifact: a
// versioned, checksummed binary file persisting the full-graph
// embedding table, its cosine norms and (optionally) the serialized
// deterministic HNSW index next to a v2 checkpoint. Producing one
// offline (cmd/gsgcn-index) converts a serving cold start from the
// O(|V|·f) layer-wise recompute plus a from-scratch index build into a
// disk read: because both the forward pass and the HNSW construction
// are bit-deterministic (packages serve and ann), a loaded artifact is
// byte-equal to what the server would have computed, making the warm
// path a zero-risk shortcut.
//
// Binary format (version 2), all integers little-endian:
//
//	[0:8]    magic "GSGCNART"
//	[8:12]   u32 format version
//	[12:16]  u32 header length H
//	[16:16+H]JSON headerV2: {meta, dtype, pq?, sections[]}
//	pad:     zero bytes to the next 8-byte boundary (the data base)
//	then:    the sections, each at its declared 8-aligned offset from
//	         the data base, zero-padded between as needed
//	trailer: u64 CRC-64/ECMA of every preceding byte
//
// Sections by name: "emb.f64" (rows*dim float64, row-major) and
// "norms.f64" (rows float64) are always present; "emb.f32" (rows*dim
// float32) rides with dtype f32; "pq.centroids" (packed float64
// codebook) and "pq.codes" (rows*M uint8) ride with dtype i8pq;
// "index" (ann.EncodeBinary output) is optional. Every section
// carries its own CRC-64 in the header, so a memory-mapped reader can
// validate lazily, section by section, without touching the rest of
// the file. The 8-byte alignment is what lets the mmap path cast
// float sections in place instead of copying them.
//
// Version 1 artifacts (the PR 4–9 format: Meta header, then the f64
// tables, a u32-prefixed index blob and the trailer) still decode;
// Encode always writes version 2.
//
// Decode validates the trailer checksum, every declared length against
// the actual data, and caps all metadata-driven allocations, so a
// corrupted, truncated or hostile artifact fails with a clean error —
// never a panic, short read or unbounded allocation (FuzzDecode).
package artifact

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"

	"gsgcn/internal/ann"
	"gsgcn/internal/core"
	"gsgcn/internal/mat"
)

const (
	magic = "GSGCNART"
	// formatVersion is what Encode writes; legacyVersion still decodes.
	formatVersion = 2
	legacyVersion = 1

	// maxHeaderLen caps the JSON header a decoder will buffer.
	maxHeaderLen = 1 << 20
	// maxSections caps the section table a v2 header may declare (the
	// format defines six names; headroom for one future addition).
	maxSections = 8
	// maxPQIters caps the iteration count a header may claim — pure
	// metadata, but an insane value marks a corrupt header.
	maxPQIters = 1 << 20
	// maxVertices and maxDim cap the table shape a header may declare,
	// mirroring core's checkpoint caps: far above any real deployment,
	// low enough that a handful of header bytes cannot demand
	// gigabytes. The true allocation bound is the blob length itself —
	// both row count and width are cross-checked against the bytes
	// actually present before anything is allocated.
	maxVertices = 1 << 28
	maxDim      = 1 << 20
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta identifies what an artifact was computed from. An artifact may
// only stand in for a fresh compute when every field matches the
// serving process's checkpoint (Arch, including ModelVersion) and
// dataset (Vertices, Edges, FeatureDim): embeddings are a pure
// function of (weights, graph, features), so any mismatch means the
// tables could be stale.
type Meta struct {
	Arch core.ArchMeta `json:"arch"`
	// WeightsSum is core.Model.WeightsChecksum() of the producing
	// model: the content hash that catches retrained weights whose
	// step count (Arch.ModelVersion) happens to collide.
	WeightsSum uint64 `json:"weights_sum"`
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
	FeatureDim int    `json:"feature_dim"`
	Dim        int    `json:"dim"`

	// Shards/Shard/ShardSeed identify a vertex-sharded artifact: this
	// file carries only the embedding rows owned by shard Shard of a
	// Shards-way split under ShardSeed (partition.ShardMap), stored in
	// ascending owned-id order. ShardRows is the owned-row count — the
	// actual table height of this file; Vertices stays the full graph's
	// vertex count. Zero Shards means an unsharded full table (the PR 4
	// format, byte-identical: the fields marshal away under omitempty).
	Shards    int    `json:"shards,omitempty"`
	Shard     int    `json:"shard,omitempty"`
	ShardSeed uint64 `json:"shard_seed,omitempty"`
	ShardRows int    `json:"shard_rows,omitempty"`
}

// rows returns the embedding-table height this meta declares: the
// owned-row count for a shard artifact, the full vertex count
// otherwise.
func (m Meta) rows() int {
	if m.Shards > 0 {
		return m.ShardRows
	}
	return m.Vertices
}

// validateShard checks the shard fields' internal consistency.
func (m Meta) validateShard() error {
	if m.Shards == 0 {
		if m.Shard != 0 || m.ShardSeed != 0 || m.ShardRows != 0 {
			return fmt.Errorf("artifact: unsharded meta carries shard fields %d/%d/%d", m.Shard, m.ShardSeed, m.ShardRows)
		}
		return nil
	}
	if m.Shards < 0 || m.Shard < 0 || m.Shard >= m.Shards {
		return fmt.Errorf("artifact: shard %d of %d is out of range", m.Shard, m.Shards)
	}
	if m.ShardRows < 0 || m.ShardRows > m.Vertices {
		return fmt.Errorf("artifact: shard declares %d rows of %d vertices", m.ShardRows, m.Vertices)
	}
	return nil
}

// Snapshot is a decoded artifact: the precomputed serving tables plus
// the metadata to validate them against a checkpoint and dataset.
// Index is nil when the artifact was written without one.
type Snapshot struct {
	Meta  Meta
	Emb   *mat.Dense
	Norms []float64
	Index *ann.Index

	// Dtype is the resident representation this artifact was built
	// for. The f64 tables above are always present — exact answers
	// read them regardless of dtype — while F32 or PQ carry the
	// quantized scan payload matching Dtype (nil otherwise).
	Dtype mat.Dtype
	F32   *mat.F32Table
	PQ    *mat.PQTable
}

// Section names of the version-2 format.
const (
	secEmb     = "emb.f64"
	secNorms   = "norms.f64"
	secF32     = "emb.f32"
	secPQCent  = "pq.centroids"
	secPQCodes = "pq.codes"
	secIndex   = "index"
)

// headerV2 is the JSON header of a version-2 artifact. Field order is
// fixed by the struct, so encoding stays deterministic.
type headerV2 struct {
	Meta     Meta            `json:"meta"`
	Dtype    string          `json:"dtype"`
	PQ       *pqHeader       `json:"pq,omitempty"`
	Sections []sectionHeader `json:"sections"`
}

// pqHeader records the codebook configuration so a server can decide
// whether index-time codes match its own training parameters.
type pqHeader struct {
	M     int    `json:"m"`
	K     int    `json:"k"`
	Iters int    `json:"iters"`
	Seed  uint64 `json:"seed"`
}

// sectionHeader locates one section. Off is relative to the data base
// (the 8-aligned end of the JSON header) and itself 8-aligned; CRC is
// CRC-64/ECMA over exactly the section's Len bytes.
type sectionHeader struct {
	Name string `json:"name"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
	CRC  uint64 `json:"crc"`
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// Encode serializes a snapshot. Deterministic: equal snapshots encode
// to equal bytes (Meta marshals with fixed field order, the tables and
// index are fixed-layout binary).
func Encode(s *Snapshot) ([]byte, error) {
	if err := s.Meta.validateShard(); err != nil {
		return nil, err
	}
	rows := s.Meta.rows()
	if s.Emb.Rows != rows || s.Emb.Cols != s.Meta.Dim {
		return nil, fmt.Errorf("artifact: table is %dx%d, meta declares %dx%d",
			s.Emb.Rows, s.Emb.Cols, rows, s.Meta.Dim)
	}
	if len(s.Norms) != rows {
		return nil, fmt.Errorf("artifact: %d norms for %d rows", len(s.Norms), rows)
	}
	// Assemble the section payloads in canonical order, then the
	// header that locates them.
	var secs []sectionHeader
	var blobs [][]byte
	addSec := func(name string, blob []byte) {
		off := 0
		if n := len(secs); n > 0 {
			off = align8(int(secs[n-1].Off + secs[n-1].Len))
		}
		secs = append(secs, sectionHeader{
			Name: name,
			Off:  int64(off),
			Len:  int64(len(blob)),
			CRC:  crc64.Checksum(blob, crcTable),
		})
		blobs = append(blobs, blob)
	}
	addSec(secEmb, f64Bytes(s.Emb.Data))
	addSec(secNorms, f64Bytes(s.Norms))
	var pq *pqHeader
	switch s.Dtype {
	case mat.DtypeF64:
		if s.F32 != nil || s.PQ != nil {
			return nil, fmt.Errorf("artifact: dtype f64 with quantized payload")
		}
	case mat.DtypeF32:
		if s.PQ != nil {
			return nil, fmt.Errorf("artifact: dtype f32 with pq payload")
		}
		if s.F32 == nil || s.F32.RowsN != rows || s.F32.ColsN != s.Meta.Dim {
			return nil, fmt.Errorf("artifact: dtype f32 needs a %dx%d f32 table", rows, s.Meta.Dim)
		}
		blob := make([]byte, 0, 4*len(s.F32.Data))
		for _, x := range s.F32.Data {
			blob = binary.LittleEndian.AppendUint32(blob, math.Float32bits(x))
		}
		addSec(secF32, blob)
	case mat.DtypeI8PQ:
		if s.F32 != nil {
			return nil, fmt.Errorf("artifact: dtype i8pq with f32 payload")
		}
		if s.PQ == nil || s.PQ.RowsN != rows || s.PQ.ColsN != s.Meta.Dim {
			return nil, fmt.Errorf("artifact: dtype i8pq needs a %dx%d pq table", rows, s.Meta.Dim)
		}
		if err := s.PQ.Validate(); err != nil {
			return nil, err
		}
		p := s.PQ.Params
		pq = &pqHeader{M: p.M, K: p.K, Iters: p.Iters, Seed: p.Seed}
		addSec(secPQCent, f64Bytes(s.PQ.Centroids))
		addSec(secPQCodes, s.PQ.Codes)
	default:
		return nil, fmt.Errorf("artifact: unknown dtype %v", s.Dtype)
	}
	if s.Index != nil {
		if s.Index.Len() != rows {
			return nil, fmt.Errorf("artifact: index covers %d rows, meta declares %d", s.Index.Len(), rows)
		}
		addSec(secIndex, s.Index.EncodeBinary())
	}
	header, err := json.Marshal(headerV2{
		Meta:     s.Meta,
		Dtype:    s.Dtype.String(),
		PQ:       pq,
		Sections: secs,
	})
	if err != nil {
		return nil, fmt.Errorf("artifact: encoding header: %w", err)
	}
	if len(header) > maxHeaderLen {
		return nil, fmt.Errorf("artifact: header is %d bytes, cap %d", len(header), maxHeaderLen)
	}
	base := align8(16 + len(header))
	last := secs[len(secs)-1]
	size := base + int(last.Off+last.Len) + 8
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(header)))
	buf = append(buf, header...)
	for i, sec := range secs {
		for len(buf) < base+int(sec.Off) {
			buf = append(buf, 0)
		}
		buf = append(buf, blobs[i]...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
	return buf, nil
}

// f64Bytes serializes a float64 slice little-endian.
func f64Bytes(xs []float64) []byte {
	out := make([]byte, 0, 8*len(xs))
	for _, x := range xs {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
	}
	return out
}

// Checksum returns the artifact's integrity fingerprint: the
// CRC-64/ECMA every valid artifact carries as its trailer. Two reads
// of an unchanged artifact file yield the same checksum, which is how
// a reload detects it can reuse in-memory tables without re-decoding.
func Checksum(data []byte) (uint64, error) {
	if len(data) < 8 {
		return 0, fmt.Errorf("artifact: %d bytes is too short to carry a checksum", len(data))
	}
	body, trailer := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(body, crcTable); got != trailer {
		return 0, fmt.Errorf("artifact: checksum mismatch (stored %016x, computed %016x) — file corrupt or truncated", trailer, got)
	}
	return trailer, nil
}

// Decode parses and validates an artifact blob, checksum included.
// The returned snapshot's tables are freshly allocated (independent
// of data).
func Decode(data []byte) (*Snapshot, error) {
	if _, err := Checksum(data); err != nil {
		return nil, err
	}
	return DecodeVerified(data)
}

// DecodeVerified parses an artifact blob whose trailer the caller has
// already verified with Checksum, skipping the second full-file CRC
// pass — the warm path reads multi-gigabyte artifacts, and hashing
// them twice per install is pure wasted latency. All structural
// validation still runs; only the integrity re-check is elided.
func DecodeVerified(data []byte) (*Snapshot, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("artifact: %d bytes is too short to carry a checksum", len(data))
	}
	body := data[:len(data)-8]
	if len(body) < 16 {
		return nil, fmt.Errorf("artifact: truncated header (%d bytes)", len(body))
	}
	if string(body[:8]) != magic {
		return nil, fmt.Errorf("artifact: bad magic %q", body[:8])
	}
	switch v := binary.LittleEndian.Uint32(body[8:12]); v {
	case legacyVersion:
		return decodeV1(body)
	case formatVersion:
		return decodeV2(body)
	default:
		return nil, fmt.Errorf("artifact: format version %d, want %d or %d", v, legacyVersion, formatVersion)
	}
}

// decodeV1 parses the legacy single-blob layout (body excludes the
// trailer, magic and version already checked).
func decodeV1(body []byte) (*Snapshot, error) {
	hlen := int(binary.LittleEndian.Uint32(body[12:16]))
	if hlen > maxHeaderLen || 16+hlen > len(body) {
		return nil, fmt.Errorf("artifact: header declares %d bytes, %d available", hlen, len(body)-16)
	}
	var meta Meta
	if err := json.Unmarshal(body[16:16+hlen], &meta); err != nil {
		return nil, fmt.Errorf("artifact: decoding header: %w", err)
	}
	if meta.Vertices < 0 || meta.Vertices > maxVertices || meta.Dim < 0 || meta.Dim > maxDim {
		return nil, fmt.Errorf("artifact: header declares a %dx%d table, caps %d/%d",
			meta.Vertices, meta.Dim, maxVertices, maxDim)
	}
	if err := meta.validateShard(); err != nil {
		return nil, err
	}
	rows := meta.rows()
	off := 16 + hlen
	// Size arithmetic in int64: the dim caps alone do not keep
	// rows*Dim inside a 32-bit int, and a wrapped product here
	// would defeat the bytes-actually-present check below. The tables
	// are allocated only after the blob is known to carry them.
	need := 8 * (int64(rows)*int64(meta.Dim) + int64(rows))
	if int64(off)+need+4 > int64(len(body)) {
		return nil, fmt.Errorf("artifact: tables need %d bytes, blob carries %d", need+4, len(body)-off)
	}
	emb := mat.New(rows, meta.Dim)
	for i := range emb.Data {
		emb.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
		off += 8
	}
	norms := make([]float64, rows)
	for i := range norms {
		norms[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
		off += 8
	}
	ilen := int(binary.LittleEndian.Uint32(body[off : off+4]))
	off += 4
	if off+ilen != len(body) {
		return nil, fmt.Errorf("artifact: index declares %d bytes, %d remain", ilen, len(body)-off)
	}
	snap := &Snapshot{Meta: meta, Emb: emb, Norms: norms}
	if ilen > 0 {
		idx, err := ann.DecodeIndex(body[off:], emb, norms)
		if err != nil {
			return nil, err
		}
		snap.Index = idx
	}
	return snap, nil
}

// parsedV2 is a validated v2 header: the metadata plus the located
// sections, lengths already cross-checked against the declared shape
// and the bytes actually present. Section CRCs are NOT yet verified —
// the in-memory decoder checks them all, the mmap loader checks them
// lazily.
type parsedV2 struct {
	meta  Meta
	dtype mat.Dtype
	pq    *pqHeader
	secs  map[string]sectionHeader
	// base is the absolute offset of the data area within the body.
	base int
}

// sec returns the named section's bytes within body.
func (p *parsedV2) sec(body []byte, name string) []byte {
	s := p.secs[name]
	off := p.base + int(s.Off)
	return body[off : off+int(s.Len)]
}

// parseV2 validates a v2 header against body (trailer stripped, magic
// and version already checked): meta caps, dtype coherence, and a
// section table whose every entry is named, unique, 8-aligned, sized
// exactly for the declared shape and fully contained in the data
// area. Nothing is allocated proportional to header claims.
func parseV2(body []byte) (*parsedV2, error) {
	hlen := int(binary.LittleEndian.Uint32(body[12:16]))
	if hlen > maxHeaderLen || 16+hlen > len(body) {
		return nil, fmt.Errorf("artifact: header declares %d bytes, %d available", hlen, len(body)-16)
	}
	var hdr headerV2
	if err := json.Unmarshal(body[16:16+hlen], &hdr); err != nil {
		return nil, fmt.Errorf("artifact: decoding header: %w", err)
	}
	meta := hdr.Meta
	if meta.Vertices < 0 || meta.Vertices > maxVertices || meta.Dim < 0 || meta.Dim > maxDim {
		return nil, fmt.Errorf("artifact: header declares a %dx%d table, caps %d/%d",
			meta.Vertices, meta.Dim, maxVertices, maxDim)
	}
	if err := meta.validateShard(); err != nil {
		return nil, err
	}
	dtype, err := mat.ParseDtype(hdr.Dtype)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	rows := meta.rows()
	base := align8(16 + hlen)
	dataLen := int64(len(body) - base)
	if dataLen < 0 {
		return nil, fmt.Errorf("artifact: header overruns the blob")
	}
	// The lengths each section must have, given the declared shape.
	want := map[string]int64{
		secEmb:   8 * int64(rows) * int64(meta.Dim),
		secNorms: 8 * int64(rows),
	}
	switch dtype {
	case mat.DtypeF32:
		if hdr.PQ != nil {
			return nil, fmt.Errorf("artifact: dtype f32 with pq header")
		}
		want[secF32] = 4 * int64(rows) * int64(meta.Dim)
	case mat.DtypeI8PQ:
		pq := hdr.PQ
		if pq == nil {
			return nil, fmt.Errorf("artifact: dtype i8pq without pq header")
		}
		if pq.M < 1 || pq.M > meta.Dim || pq.K < 1 || pq.K > 256 || pq.Iters < 0 || pq.Iters > maxPQIters {
			return nil, fmt.Errorf("artifact: pq header M=%d K=%d iters=%d invalid for dim %d", pq.M, pq.K, pq.Iters, meta.Dim)
		}
		want[secPQCent] = 8 * int64(mat.PQCentroidsLen(meta.Dim, pq.M, pq.K))
		want[secPQCodes] = int64(rows) * int64(pq.M)
	default:
		if hdr.PQ != nil {
			return nil, fmt.Errorf("artifact: dtype f64 with pq header")
		}
	}
	if len(hdr.Sections) > maxSections {
		return nil, fmt.Errorf("artifact: %d sections, cap %d", len(hdr.Sections), maxSections)
	}
	secs := make(map[string]sectionHeader, len(hdr.Sections))
	var end int64
	for _, s := range hdr.Sections {
		if _, dup := secs[s.Name]; dup {
			return nil, fmt.Errorf("artifact: duplicate section %q", s.Name)
		}
		if s.Off < 0 || s.Len < 0 || s.Off%8 != 0 || s.Len > dataLen-s.Off {
			return nil, fmt.Errorf("artifact: section %q spans [%d,%d) of %d data bytes", s.Name, s.Off, s.Off+s.Len, dataLen)
		}
		switch s.Name {
		case secIndex:
			// Variable length; DecodeIndex validates the blob itself.
		default:
			w, ok := want[s.Name]
			if !ok {
				return nil, fmt.Errorf("artifact: unexpected section %q for dtype %s", s.Name, dtype)
			}
			if s.Len != w {
				return nil, fmt.Errorf("artifact: section %q is %d bytes, shape demands %d", s.Name, s.Len, w)
			}
		}
		if s.Off+s.Len > end {
			end = s.Off + s.Len
		}
		secs[s.Name] = s
	}
	for name := range want {
		if _, ok := secs[name]; !ok {
			return nil, fmt.Errorf("artifact: missing section %q", name)
		}
	}
	if end != dataLen {
		return nil, fmt.Errorf("artifact: sections end at %d, data area is %d bytes", end, dataLen)
	}
	return &parsedV2{meta: meta, dtype: dtype, pq: hdr.PQ, secs: secs, base: base}, nil
}

// decodeV2 parses the section layout into freshly allocated tables,
// verifying every section CRC (the trailer may already be verified,
// but per-section CRCs are the integrity statement of the v2 format —
// a header claiming a wrong CRC is corrupt even if the file hashes
// consistently).
func decodeV2(body []byte) (*Snapshot, error) {
	p, err := parseV2(body)
	if err != nil {
		return nil, err
	}
	for name, s := range p.secs {
		if got := crc64.Checksum(p.sec(body, name), crcTable); got != s.CRC {
			return nil, fmt.Errorf("artifact: section %q CRC mismatch (stored %016x, computed %016x)", name, s.CRC, got)
		}
	}
	rows := p.meta.rows()
	emb := mat.New(rows, p.meta.Dim)
	f64Decode(p.sec(body, secEmb), emb.Data)
	norms := make([]float64, rows)
	f64Decode(p.sec(body, secNorms), norms)
	snap := &Snapshot{Meta: p.meta, Emb: emb, Norms: norms, Dtype: p.dtype}
	switch p.dtype {
	case mat.DtypeF32:
		t := &mat.F32Table{RowsN: rows, ColsN: p.meta.Dim, Data: make([]float32, rows*p.meta.Dim)}
		raw := p.sec(body, secF32)
		for i := range t.Data {
			t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
		snap.F32 = t
	case mat.DtypeI8PQ:
		t := &mat.PQTable{
			RowsN:     rows,
			ColsN:     p.meta.Dim,
			Params:    mat.PQParams{M: p.pq.M, K: p.pq.K, Iters: p.pq.Iters, Seed: p.pq.Seed},
			Centroids: make([]float64, mat.PQCentroidsLen(p.meta.Dim, p.pq.M, p.pq.K)),
			Codes:     append([]uint8(nil), p.sec(body, secPQCodes)...),
		}
		f64Decode(p.sec(body, secPQCent), t.Centroids)
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("artifact: %w", err)
		}
		snap.PQ = t
	}
	if s, ok := p.secs[secIndex]; ok && s.Len > 0 {
		idx, err := ann.DecodeIndex(p.sec(body, secIndex), emb, norms)
		if err != nil {
			return nil, err
		}
		snap.Index = idx
	}
	return snap, nil
}

// f64Decode fills out from little-endian float64 bytes (len(raw) must
// be 8*len(out), which parseV2 guarantees).
func f64Decode(raw []byte, out []float64) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
}

// ShardPath derives the conventional per-shard artifact filename from
// an unsharded base path: shard 2 of 4 over base "m.ckpt.art" lives at
// "m.ckpt.art.s2of4". The producer (cmd/gsgcn-index -shards) and every
// consumer (shard engines resolving their warm-start source) share
// this one naming rule, so a fleet needs to agree only on the base.
func ShardPath(base string, shard, shards int) string {
	return fmt.Sprintf("%s.s%dof%d", base, shard, shards)
}

// WriteFile atomically writes the snapshot as an artifact file: encode
// to a temp file in the destination directory, fsync, rename. A
// half-written artifact can therefore never be observed at path.
func WriteFile(path string, s *Snapshot) (uint64, error) {
	data, err := Encode(s)
	if err != nil {
		return 0, err
	}
	sum := binary.LittleEndian.Uint64(data[len(data)-8:])
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	// CreateTemp defaults to 0600; match the checkpoint and manifest
	// permissions so a server running as a different user than the
	// indexer can actually read the artifact.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return sum, nil
}

// ReadFile loads and validates the artifact at path.
func ReadFile(path string) (*Snapshot, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	sum, err := Checksum(data)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	snap, err := DecodeVerified(data)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return snap, sum, nil
}

// Manifest is the human-readable sidecar written next to an artifact
// (<artifact>.json): what the artifact contains and the checksums to
// verify it out-of-band, without parsing the binary format.
type Manifest struct {
	Artifact      string `json:"artifact"`
	Checkpoint    string `json:"checkpoint,omitempty"`
	Checksum      string `json:"checksum"` // CRC-64/ECMA trailer, hex
	Meta          Meta   `json:"meta"`
	Dtype         string `json:"dtype,omitempty"`
	IndexChecksum string `json:"index_checksum,omitempty"`
	IndexLinks    int    `json:"index_links,omitempty"`
}

// WriteManifest writes the manifest for a just-written artifact next
// to it and returns the manifest path.
func WriteManifest(artifactPath, checkpointPath string, s *Snapshot, sum uint64) (string, error) {
	mf := Manifest{
		Artifact:   filepath.Base(artifactPath),
		Checkpoint: checkpointPath,
		Checksum:   fmt.Sprintf("%016x", sum),
		Meta:       s.Meta,
		Dtype:      s.Dtype.String(),
	}
	if s.Index != nil {
		mf.IndexChecksum = fmt.Sprintf("%016x", s.Index.Checksum())
		mf.IndexLinks = s.Index.Stats().Links
	}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return "", err
	}
	path := artifactPath + ".json"
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
