// Package artifact implements the serving snapshot artifact: a
// versioned, checksummed binary file persisting the full-graph
// embedding table, its cosine norms and (optionally) the serialized
// deterministic HNSW index next to a v2 checkpoint. Producing one
// offline (cmd/gsgcn-index) converts a serving cold start from the
// O(|V|·f) layer-wise recompute plus a from-scratch index build into a
// disk read: because both the forward pass and the HNSW construction
// are bit-deterministic (packages serve and ann), a loaded artifact is
// byte-equal to what the server would have computed, making the warm
// path a zero-risk shortcut.
//
// Binary format (version 1), all integers little-endian:
//
//	[0:8]    magic "GSGCNART"
//	[8:12]   u32 format version
//	[12:16]  u32 header length H
//	[16:16+H]JSON-encoded Meta
//	then:    Vertices*Dim float64 (embedding rows, row-major)
//	         Vertices float64 (L2 norms)
//	         u32 index blob length L (0 = no index)
//	         L bytes: ann.EncodeBinary output
//	trailer: u64 CRC-64/ECMA of every preceding byte
//
// Decode validates the trailer checksum, every declared length against
// the actual data, and caps all metadata-driven allocations, so a
// corrupted, truncated or hostile artifact fails with a clean error —
// never a panic, short read or unbounded allocation (FuzzDecode).
package artifact

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"

	"gsgcn/internal/ann"
	"gsgcn/internal/core"
	"gsgcn/internal/mat"
)

const (
	magic         = "GSGCNART"
	formatVersion = 1

	// maxHeaderLen caps the JSON header a decoder will buffer.
	maxHeaderLen = 1 << 20
	// maxVertices and maxDim cap the table shape a header may declare,
	// mirroring core's checkpoint caps: far above any real deployment,
	// low enough that a handful of header bytes cannot demand
	// gigabytes. The true allocation bound is the blob length itself —
	// both row count and width are cross-checked against the bytes
	// actually present before anything is allocated.
	maxVertices = 1 << 28
	maxDim      = 1 << 20
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta identifies what an artifact was computed from. An artifact may
// only stand in for a fresh compute when every field matches the
// serving process's checkpoint (Arch, including ModelVersion) and
// dataset (Vertices, Edges, FeatureDim): embeddings are a pure
// function of (weights, graph, features), so any mismatch means the
// tables could be stale.
type Meta struct {
	Arch core.ArchMeta `json:"arch"`
	// WeightsSum is core.Model.WeightsChecksum() of the producing
	// model: the content hash that catches retrained weights whose
	// step count (Arch.ModelVersion) happens to collide.
	WeightsSum uint64 `json:"weights_sum"`
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
	FeatureDim int    `json:"feature_dim"`
	Dim        int    `json:"dim"`

	// Shards/Shard/ShardSeed identify a vertex-sharded artifact: this
	// file carries only the embedding rows owned by shard Shard of a
	// Shards-way split under ShardSeed (partition.ShardMap), stored in
	// ascending owned-id order. ShardRows is the owned-row count — the
	// actual table height of this file; Vertices stays the full graph's
	// vertex count. Zero Shards means an unsharded full table (the PR 4
	// format, byte-identical: the fields marshal away under omitempty).
	Shards    int    `json:"shards,omitempty"`
	Shard     int    `json:"shard,omitempty"`
	ShardSeed uint64 `json:"shard_seed,omitempty"`
	ShardRows int    `json:"shard_rows,omitempty"`
}

// rows returns the embedding-table height this meta declares: the
// owned-row count for a shard artifact, the full vertex count
// otherwise.
func (m Meta) rows() int {
	if m.Shards > 0 {
		return m.ShardRows
	}
	return m.Vertices
}

// validateShard checks the shard fields' internal consistency.
func (m Meta) validateShard() error {
	if m.Shards == 0 {
		if m.Shard != 0 || m.ShardSeed != 0 || m.ShardRows != 0 {
			return fmt.Errorf("artifact: unsharded meta carries shard fields %d/%d/%d", m.Shard, m.ShardSeed, m.ShardRows)
		}
		return nil
	}
	if m.Shards < 0 || m.Shard < 0 || m.Shard >= m.Shards {
		return fmt.Errorf("artifact: shard %d of %d is out of range", m.Shard, m.Shards)
	}
	if m.ShardRows < 0 || m.ShardRows > m.Vertices {
		return fmt.Errorf("artifact: shard declares %d rows of %d vertices", m.ShardRows, m.Vertices)
	}
	return nil
}

// Snapshot is a decoded artifact: the precomputed serving tables plus
// the metadata to validate them against a checkpoint and dataset.
// Index is nil when the artifact was written without one.
type Snapshot struct {
	Meta  Meta
	Emb   *mat.Dense
	Norms []float64
	Index *ann.Index
}

// Encode serializes a snapshot. Deterministic: equal snapshots encode
// to equal bytes (Meta marshals with fixed field order, the tables and
// index are fixed-layout binary).
func Encode(s *Snapshot) ([]byte, error) {
	if err := s.Meta.validateShard(); err != nil {
		return nil, err
	}
	rows := s.Meta.rows()
	if s.Emb.Rows != rows || s.Emb.Cols != s.Meta.Dim {
		return nil, fmt.Errorf("artifact: table is %dx%d, meta declares %dx%d",
			s.Emb.Rows, s.Emb.Cols, rows, s.Meta.Dim)
	}
	if len(s.Norms) != rows {
		return nil, fmt.Errorf("artifact: %d norms for %d rows", len(s.Norms), rows)
	}
	header, err := json.Marshal(s.Meta)
	if err != nil {
		return nil, fmt.Errorf("artifact: encoding header: %w", err)
	}
	if len(header) > maxHeaderLen {
		return nil, fmt.Errorf("artifact: header is %d bytes, cap %d", len(header), maxHeaderLen)
	}
	var idxBlob []byte
	if s.Index != nil {
		if s.Index.Len() != rows {
			return nil, fmt.Errorf("artifact: index covers %d rows, meta declares %d", s.Index.Len(), rows)
		}
		idxBlob = s.Index.EncodeBinary()
		// The on-disk length prefix is u32; silently wrapping it would
		// seal a checksum-valid but undecodable artifact.
		if int64(len(idxBlob)) > math.MaxUint32 {
			return nil, fmt.Errorf("artifact: index blob is %d bytes, exceeds the u32 length field", len(idxBlob))
		}
	}
	size := 16 + len(header) + 8*len(s.Emb.Data) + 8*len(s.Norms) + 4 + len(idxBlob) + 8
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(header)))
	buf = append(buf, header...)
	for _, x := range s.Emb.Data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	for _, x := range s.Norms {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(idxBlob)))
	buf = append(buf, idxBlob...)
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
	return buf, nil
}

// Checksum returns the artifact's integrity fingerprint: the
// CRC-64/ECMA every valid artifact carries as its trailer. Two reads
// of an unchanged artifact file yield the same checksum, which is how
// a reload detects it can reuse in-memory tables without re-decoding.
func Checksum(data []byte) (uint64, error) {
	if len(data) < 8 {
		return 0, fmt.Errorf("artifact: %d bytes is too short to carry a checksum", len(data))
	}
	body, trailer := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if got := crc64.Checksum(body, crcTable); got != trailer {
		return 0, fmt.Errorf("artifact: checksum mismatch (stored %016x, computed %016x) — file corrupt or truncated", trailer, got)
	}
	return trailer, nil
}

// Decode parses and validates an artifact blob, checksum included.
// The returned snapshot's tables are freshly allocated (independent
// of data).
func Decode(data []byte) (*Snapshot, error) {
	if _, err := Checksum(data); err != nil {
		return nil, err
	}
	return DecodeVerified(data)
}

// DecodeVerified parses an artifact blob whose trailer the caller has
// already verified with Checksum, skipping the second full-file CRC
// pass — the warm path reads multi-gigabyte artifacts, and hashing
// them twice per install is pure wasted latency. All structural
// validation still runs; only the integrity re-check is elided.
func DecodeVerified(data []byte) (*Snapshot, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("artifact: %d bytes is too short to carry a checksum", len(data))
	}
	body := data[:len(data)-8]
	if len(body) < 16 {
		return nil, fmt.Errorf("artifact: truncated header (%d bytes)", len(body))
	}
	if string(body[:8]) != magic {
		return nil, fmt.Errorf("artifact: bad magic %q", body[:8])
	}
	if v := binary.LittleEndian.Uint32(body[8:12]); v != formatVersion {
		return nil, fmt.Errorf("artifact: format version %d, want %d", v, formatVersion)
	}
	hlen := int(binary.LittleEndian.Uint32(body[12:16]))
	if hlen > maxHeaderLen || 16+hlen > len(body) {
		return nil, fmt.Errorf("artifact: header declares %d bytes, %d available", hlen, len(body)-16)
	}
	var meta Meta
	if err := json.Unmarshal(body[16:16+hlen], &meta); err != nil {
		return nil, fmt.Errorf("artifact: decoding header: %w", err)
	}
	if meta.Vertices < 0 || meta.Vertices > maxVertices || meta.Dim < 0 || meta.Dim > maxDim {
		return nil, fmt.Errorf("artifact: header declares a %dx%d table, caps %d/%d",
			meta.Vertices, meta.Dim, maxVertices, maxDim)
	}
	if err := meta.validateShard(); err != nil {
		return nil, err
	}
	rows := meta.rows()
	off := 16 + hlen
	// Size arithmetic in int64: the dim caps alone do not keep
	// rows*Dim inside a 32-bit int, and a wrapped product here
	// would defeat the bytes-actually-present check below. The tables
	// are allocated only after the blob is known to carry them.
	need := 8 * (int64(rows)*int64(meta.Dim) + int64(rows))
	if int64(off)+need+4 > int64(len(body)) {
		return nil, fmt.Errorf("artifact: tables need %d bytes, blob carries %d", need+4, len(body)-off)
	}
	emb := mat.New(rows, meta.Dim)
	for i := range emb.Data {
		emb.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
		off += 8
	}
	norms := make([]float64, rows)
	for i := range norms {
		norms[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
		off += 8
	}
	ilen := int(binary.LittleEndian.Uint32(body[off : off+4]))
	off += 4
	if off+ilen != len(body) {
		return nil, fmt.Errorf("artifact: index declares %d bytes, %d remain", ilen, len(body)-off)
	}
	snap := &Snapshot{Meta: meta, Emb: emb, Norms: norms}
	if ilen > 0 {
		idx, err := ann.DecodeIndex(body[off:], emb, norms)
		if err != nil {
			return nil, err
		}
		snap.Index = idx
	}
	return snap, nil
}

// ShardPath derives the conventional per-shard artifact filename from
// an unsharded base path: shard 2 of 4 over base "m.ckpt.art" lives at
// "m.ckpt.art.s2of4". The producer (cmd/gsgcn-index -shards) and every
// consumer (shard engines resolving their warm-start source) share
// this one naming rule, so a fleet needs to agree only on the base.
func ShardPath(base string, shard, shards int) string {
	return fmt.Sprintf("%s.s%dof%d", base, shard, shards)
}

// WriteFile atomically writes the snapshot as an artifact file: encode
// to a temp file in the destination directory, fsync, rename. A
// half-written artifact can therefore never be observed at path.
func WriteFile(path string, s *Snapshot) (uint64, error) {
	data, err := Encode(s)
	if err != nil {
		return 0, err
	}
	sum := binary.LittleEndian.Uint64(data[len(data)-8:])
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	// CreateTemp defaults to 0600; match the checkpoint and manifest
	// permissions so a server running as a different user than the
	// indexer can actually read the artifact.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return sum, nil
}

// ReadFile loads and validates the artifact at path.
func ReadFile(path string) (*Snapshot, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	sum, err := Checksum(data)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	snap, err := DecodeVerified(data)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return snap, sum, nil
}

// Manifest is the human-readable sidecar written next to an artifact
// (<artifact>.json): what the artifact contains and the checksums to
// verify it out-of-band, without parsing the binary format.
type Manifest struct {
	Artifact      string `json:"artifact"`
	Checkpoint    string `json:"checkpoint,omitempty"`
	Checksum      string `json:"checksum"` // CRC-64/ECMA trailer, hex
	Meta          Meta   `json:"meta"`
	IndexChecksum string `json:"index_checksum,omitempty"`
	IndexLinks    int    `json:"index_links,omitempty"`
}

// WriteManifest writes the manifest for a just-written artifact next
// to it and returns the manifest path.
func WriteManifest(artifactPath, checkpointPath string, s *Snapshot, sum uint64) (string, error) {
	mf := Manifest{
		Artifact:   filepath.Base(artifactPath),
		Checkpoint: checkpointPath,
		Checksum:   fmt.Sprintf("%016x", sum),
		Meta:       s.Meta,
	}
	if s.Index != nil {
		mf.IndexChecksum = fmt.Sprintf("%016x", s.Index.Checksum())
		mf.IndexLinks = s.Index.Stats().Links
	}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return "", err
	}
	path := artifactPath + ".json"
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
