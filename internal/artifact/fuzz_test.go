package artifact

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"

	"gsgcn/internal/mat"
)

// FuzzDecode drives the artifact loader with truncated, bit-flipped,
// resealed-after-mutation and synthetic inputs — the same contract as
// core.FuzzLoadModel: Decode either returns a coherent snapshot or an
// error, never panics, and never lets a small input demand a huge
// allocation (the header caps plus the bytes-actually-present checks).
func FuzzDecode(f *testing.F) {
	withIdx, _ := Encode(testSnapshot(80, 8, true))
	bare, _ := Encode(testSnapshot(40, 4, false))
	f.Add(withIdx)
	f.Add(bare)
	f.Add(withIdx[:len(withIdx)/2]) // truncated mid-table
	f.Add(withIdx[:10])             // truncated inside the fixed header
	f.Add([]byte{})
	f.Add([]byte("not an artifact at all"))

	// Structurally resealed corruptions: valid trailer, broken body.
	reseal := func(b []byte) []byte {
		return binary.LittleEndian.AppendUint64(b, crcChecksum(b))
	}
	flipped := append([]byte(nil), withIdx[:len(withIdx)-8]...)
	flipped[30] ^= 0xFF
	f.Add(reseal(flipped))

	// A resealed header declaring an absurd table over 50 bytes.
	hdr, _ := json.Marshal(Meta{Vertices: 1 << 27, Dim: 1 << 19})
	absurd := append([]byte(magic), 1, 0, 0, 0)
	absurd = binary.LittleEndian.AppendUint32(absurd, uint32(len(hdr)))
	absurd = append(absurd, hdr...)
	f.Add(reseal(absurd))

	// The quantized payload sections, valid and damaged: every dtype's
	// canonical encoding, a truncated codebook (sections no longer tile
	// the data area), a dim the section lengths no longer match, and a
	// section whose declared CRC disagrees with its bytes — all under a
	// valid trailer, so the per-section validation does the rejecting.
	f32Blob, _ := Encode(quantSnapshot(60, 8, mat.DtypeF32, true))
	pqBlob, _ := Encode(quantSnapshot(60, 8, mat.DtypeI8PQ, false))
	f.Add(f32Blob)
	f.Add(pqBlob)
	f.Add(reseal(pqBlob[:len(pqBlob)-8-16])) // truncated codebook/codes tail
	dimSkew := append([]byte(nil), f32Blob[:len(f32Blob)-8]...)
	dimSkew = bytes.Replace(dimSkew, []byte(`"dim":8`), []byte(`"dim":9`), 1)
	f.Add(reseal(dimSkew))
	crcSkew := append([]byte(nil), pqBlob[:len(pqBlob)-8]...)
	crcSkew[len(crcSkew)-3] ^= 0x08 // inside pq.codes, the last section
	f.Add(reseal(crcSkew))
	// A legacy v1 file: must decode and upgrade-re-encode cleanly.
	v1 := append([]byte(magic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(v1[8:12], legacyVersion)
	s1 := testSnapshot(20, 4, false)
	mhdr, _ := json.Marshal(s1.Meta)
	v1 = binary.LittleEndian.AppendUint32(v1, uint32(len(mhdr)))
	v1 = append(v1, mhdr...)
	v1 = append(v1, f64Bytes(s1.Emb.Data)...)
	v1 = append(v1, f64Bytes(s1.Norms)...)
	v1 = binary.LittleEndian.AppendUint32(v1, 0)
	f.Add(reseal(v1))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatalf("error %v returned alongside a snapshot", err)
			}
			return
		}
		if snap == nil {
			t.Fatal("nil snapshot with nil error")
		}
		// A nil-error decode must hand back a self-consistent snapshot
		// that re-encodes to exactly the accepted bytes.
		rows := snap.Meta.rows()
		if snap.Emb.Rows != rows || snap.Emb.Cols != snap.Meta.Dim ||
			len(snap.Norms) != rows {
			t.Fatalf("inconsistent snapshot accepted: %+v", snap.Meta)
		}
		// Dtype/payload coherence: exactly the payload the dtype names,
		// shaped for the table.
		switch snap.Dtype {
		case mat.DtypeF64:
			if snap.F32 != nil || snap.PQ != nil {
				t.Fatal("f64 snapshot carries a quantized payload")
			}
		case mat.DtypeF32:
			if snap.PQ != nil || snap.F32 == nil || snap.F32.RowsN != rows || snap.F32.ColsN != snap.Meta.Dim {
				t.Fatalf("incoherent f32 payload accepted: %+v", snap.Meta)
			}
		case mat.DtypeI8PQ:
			if snap.F32 != nil || snap.PQ == nil || snap.PQ.Validate() != nil ||
				snap.PQ.RowsN != rows || snap.PQ.ColsN != snap.Meta.Dim {
				t.Fatalf("incoherent pq payload accepted: %+v", snap.Meta)
			}
		default:
			t.Fatalf("unknown dtype %v accepted", snap.Dtype)
		}
		// Round-trip: an accepted snapshot must re-encode and re-decode
		// cleanly (byte-for-byte stability over canonical encodings is
		// pinned separately in TestRoundTrip — a fuzzed header may use
		// non-canonical JSON).
		re, err := Encode(snap)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		snap2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		re2, err := Encode(snap2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if snap2.Meta != snap.Meta || !bytes.Equal(re2, re) {
			t.Fatal("re-encode is not stable")
		}
	})
}
