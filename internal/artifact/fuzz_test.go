package artifact

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// FuzzDecode drives the artifact loader with truncated, bit-flipped,
// resealed-after-mutation and synthetic inputs — the same contract as
// core.FuzzLoadModel: Decode either returns a coherent snapshot or an
// error, never panics, and never lets a small input demand a huge
// allocation (the header caps plus the bytes-actually-present checks).
func FuzzDecode(f *testing.F) {
	withIdx, _ := Encode(testSnapshot(80, 8, true))
	bare, _ := Encode(testSnapshot(40, 4, false))
	f.Add(withIdx)
	f.Add(bare)
	f.Add(withIdx[:len(withIdx)/2]) // truncated mid-table
	f.Add(withIdx[:10])             // truncated inside the fixed header
	f.Add([]byte{})
	f.Add([]byte("not an artifact at all"))

	// Structurally resealed corruptions: valid trailer, broken body.
	reseal := func(b []byte) []byte {
		return binary.LittleEndian.AppendUint64(b, crcChecksum(b))
	}
	flipped := append([]byte(nil), withIdx[:len(withIdx)-8]...)
	flipped[30] ^= 0xFF
	f.Add(reseal(flipped))

	// A resealed header declaring an absurd table over 50 bytes.
	hdr, _ := json.Marshal(Meta{Vertices: 1 << 27, Dim: 1 << 19})
	absurd := append([]byte(magic), 1, 0, 0, 0)
	absurd = binary.LittleEndian.AppendUint32(absurd, uint32(len(hdr)))
	absurd = append(absurd, hdr...)
	f.Add(reseal(absurd))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatalf("error %v returned alongside a snapshot", err)
			}
			return
		}
		if snap == nil {
			t.Fatal("nil snapshot with nil error")
		}
		// A nil-error decode must hand back a self-consistent snapshot
		// that re-encodes to exactly the accepted bytes.
		if snap.Emb.Rows != snap.Meta.Vertices || snap.Emb.Cols != snap.Meta.Dim ||
			len(snap.Norms) != snap.Meta.Vertices {
			t.Fatalf("inconsistent snapshot accepted: %+v", snap.Meta)
		}
		// Round-trip: an accepted snapshot must re-encode and re-decode
		// cleanly (byte-for-byte stability over canonical encodings is
		// pinned separately in TestRoundTrip — a fuzzed header may use
		// non-canonical JSON).
		re, err := Encode(snap)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		snap2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		re2, err := Encode(snap2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if snap2.Meta != snap.Meta || !bytes.Equal(re2, re) {
			t.Fatal("re-encode is not stable")
		}
	})
}
