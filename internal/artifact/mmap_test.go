package artifact

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gsgcn/internal/mat"
)

// quantSnapshot derives a dtype-carrying snapshot from testSnapshot,
// training the quantized payload exactly as the serving layer would.
func quantSnapshot(n, dim int, dtype mat.Dtype, withIndex bool) *Snapshot {
	s := testSnapshot(n, dim, withIndex)
	s.Dtype = dtype
	switch dtype {
	case mat.DtypeF32:
		s.F32 = mat.ToF32(s.Emb, 2)
	case mat.DtypeI8PQ:
		s.PQ = mat.TrainPQ(s.Emb, mat.ResolvePQ(n, dim), 2)
	}
	return s
}

// writeArt writes the snapshot to a temp artifact file.
func writeArt(t *testing.T, s *Snapshot) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.art")
	if _, err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	return path
}

// sectionSpan locates a section's absolute byte range within an
// encoded artifact by re-parsing the header — the test-side mirror of
// the decoder's own arithmetic.
func sectionSpan(t *testing.T, blob []byte, name string) (int, int) {
	t.Helper()
	hlen := int(binary.LittleEndian.Uint32(blob[12:16]))
	var hdr headerV2
	if err := json.Unmarshal(blob[16:16+hlen], &hdr); err != nil {
		t.Fatal(err)
	}
	base := align8(16 + hlen)
	for _, s := range hdr.Sections {
		if s.Name == name {
			return base + int(s.Off), base + int(s.Off+s.Len)
		}
	}
	t.Fatalf("no section %q", name)
	return 0, 0
}

// TestV2DtypeRoundTrip pins the quantized payloads through the
// copying decoder: bit-identical f32/centroid/code payloads, dtype
// preserved, and a canonical re-encode that reproduces the file.
func TestV2DtypeRoundTrip(t *testing.T) {
	for _, dtype := range []mat.Dtype{mat.DtypeF64, mat.DtypeF32, mat.DtypeI8PQ} {
		s := quantSnapshot(150, 12, dtype, true)
		blob, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dtype != dtype {
			t.Fatalf("dtype %v round-tripped as %v", dtype, got.Dtype)
		}
		switch dtype {
		case mat.DtypeF64:
			if got.F32 != nil || got.PQ != nil {
				t.Fatal("f64 artifact grew a quantized payload")
			}
		case mat.DtypeF32:
			for i := range s.F32.Data {
				if math.Float32bits(got.F32.Data[i]) != math.Float32bits(s.F32.Data[i]) {
					t.Fatalf("f32 element %d differs", i)
				}
			}
		case mat.DtypeI8PQ:
			if got.PQ.Params != s.PQ.Params {
				t.Fatalf("pq params %+v, want %+v", got.PQ.Params, s.PQ.Params)
			}
			for i := range s.PQ.Centroids {
				if math.Float64bits(got.PQ.Centroids[i]) != math.Float64bits(s.PQ.Centroids[i]) {
					t.Fatalf("centroid element %d differs", i)
				}
			}
			if !bytes.Equal(got.PQ.Codes, s.PQ.Codes) {
				t.Fatal("codes differ")
			}
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, blob) {
			t.Fatalf("dtype %v: decode+encode does not reproduce the bytes", dtype)
		}
	}
}

// encodeV1 writes the legacy single-blob layout — the bytes a PR 4–9
// binary would have produced — so compatibility is tested against the
// real old format, not against this release's writer.
func encodeV1(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	hdr, err := json.Marshal(s.Meta)
	if err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(magic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf[8:12], legacyVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = append(buf, f64Bytes(s.Emb.Data)...)
	buf = append(buf, f64Bytes(s.Norms)...)
	var idx []byte
	if s.Index != nil {
		idx = s.Index.EncodeBinary()
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(idx)))
	buf = append(buf, idx...)
	return binary.LittleEndian.AppendUint64(buf, crc64Sum(buf))
}

func crc64Sum(b []byte) uint64 { return crcChecksum(b) }

// TestV1StillDecodes is the backward-compatibility contract: artifacts
// written by the previous format version still load through the
// copying decoder (bit-identical tables), and re-encoding one produces
// a valid v2 file carrying the same data.
func TestV1StillDecodes(t *testing.T) {
	s := testSnapshot(90, 8, true)
	blob := encodeV1(t, s)
	got, err := Decode(blob)
	if err != nil {
		t.Fatalf("v1 artifact rejected: %v", err)
	}
	if got.Meta != s.Meta || got.Dtype != mat.DtypeF64 {
		t.Fatalf("v1 decode: meta %+v dtype %v", got.Meta, got.Dtype)
	}
	for i := range s.Emb.Data {
		if math.Float64bits(got.Emb.Data[i]) != math.Float64bits(s.Emb.Data[i]) {
			t.Fatalf("v1 embedding element %d differs", i)
		}
	}
	if got.Index == nil || !bytes.Equal(got.Index.EncodeBinary(), s.Index.EncodeBinary()) {
		t.Fatal("v1 index lost or mangled")
	}
	re, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(re[8:12]); v != formatVersion {
		t.Fatalf("re-encode of a v1 snapshot wrote version %d", v)
	}
	again, err := Decode(re)
	if err != nil || again.Meta != got.Meta {
		t.Fatalf("upgraded v1 artifact does not decode: %v", err)
	}

	// The mmap loader refuses v1 — callers fall back to ReadFile.
	path := filepath.Join(t.TempDir(), "v1.art")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err := OpenMapped(path); err == nil {
		m.Close()
		t.Fatal("OpenMapped accepted a v1 artifact")
	}
	if _, _, err := ReadFile(path); err != nil {
		t.Fatalf("ReadFile fallback failed on v1: %v", err)
	}
}

// TestMappedMatchesDecode is the mmap path's exactness contract: every
// accessor of a mapped artifact is bit-identical to the copying
// decoder's output — table rows, norms, quantized payloads, index
// encoding and checksum.
func TestMappedMatchesDecode(t *testing.T) {
	for _, dtype := range []mat.Dtype{mat.DtypeF64, mat.DtypeF32, mat.DtypeI8PQ} {
		s := quantSnapshot(130, 16, dtype, true)
		path := writeArt(t, s)
		snap, sum, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		if m.Meta() != snap.Meta || m.Dtype() != dtype {
			t.Fatalf("dtype %v: mapped meta %+v dtype %v", dtype, m.Meta(), m.Dtype())
		}
		if m.Sum() != sum {
			t.Fatalf("dtype %v: mapped sum %016x, file sum %016x", dtype, m.Sum(), sum)
		}
		tbl := m.Table()
		if tbl.NumRows() != snap.Emb.Rows || tbl.NumCols() != snap.Emb.Cols {
			t.Fatalf("dtype %v: mapped table %dx%d", dtype, tbl.NumRows(), tbl.NumCols())
		}
		for v := 0; v < snap.Emb.Rows; v++ {
			row, want := tbl.Row(v), snap.Emb.Row(v)
			for j := range want {
				if math.Float64bits(row[j]) != math.Float64bits(want[j]) {
					t.Fatalf("dtype %v: mapped row %d col %d differs", dtype, v, j)
				}
			}
		}
		for v := range snap.Norms {
			if math.Float64bits(m.Norms()[v]) != math.Float64bits(snap.Norms[v]) {
				t.Fatalf("dtype %v: mapped norm %d differs", dtype, v)
			}
		}
		switch dtype {
		case mat.DtypeF32:
			for i := range snap.F32.Data {
				if math.Float32bits(m.F32().Data[i]) != math.Float32bits(snap.F32.Data[i]) {
					t.Fatalf("mapped f32 element %d differs", i)
				}
			}
		case mat.DtypeI8PQ:
			if m.PQ().Params != snap.PQ.Params || !bytes.Equal(m.PQ().Codes, snap.PQ.Codes) {
				t.Fatal("mapped pq payload differs")
			}
			for i := range snap.PQ.Centroids {
				if math.Float64bits(m.PQ().Centroids[i]) != math.Float64bits(snap.PQ.Centroids[i]) {
					t.Fatalf("mapped centroid %d differs", i)
				}
			}
		}
		if m.Index() == nil || !bytes.Equal(m.Index().EncodeBinary(), snap.Index.EncodeBinary()) {
			t.Fatalf("dtype %v: mapped index differs from decoded", dtype)
		}
		if m.MappedBytes() <= 0 {
			t.Fatal("MappedBytes not positive")
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("second Close not idempotent: %v", err)
		}
	}
}

// TestMappedLazyEmbCRC pins the deferred-integrity design: a corrupt
// embedding section does NOT fail the open (its CRC is deferred so
// opening never touches the big section), ValidateSection reports the
// damage, and the first row read panics rather than serve wrong
// floats.
func TestMappedLazyEmbCRC(t *testing.T) {
	s := testSnapshot(60, 8, false)
	path := writeArt(t, s)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := sectionSpan(t, blob, secEmb)
	blob[lo+9] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("open should defer the emb CRC, got %v", err)
	}
	defer m.Close()
	if err := m.ValidateSection(secEmb); err == nil {
		t.Fatal("corrupt emb section validated")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reading a corrupt mapped row did not panic")
		}
	}()
	_ = m.Table().Row(0)
}

// TestMappedEagerSectionCRC: damage to any small section (norms,
// codebook, codes, index) must fail OpenMapped outright.
func TestMappedEagerSectionCRC(t *testing.T) {
	for _, name := range []string{secNorms, secPQCent, secPQCodes, secIndex} {
		s := quantSnapshot(80, 8, mat.DtypeI8PQ, true)
		path := writeArt(t, s)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := sectionSpan(t, blob, name)
		blob[lo+(hi-lo)/2] ^= 0x01
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := OpenMapped(path); err == nil {
			m.Close()
			t.Fatalf("corrupt %q section mapped cleanly", name)
		}
	}
}
