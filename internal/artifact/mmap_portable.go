//go:build !unix

package artifact

import (
	"io"
	"os"
)

// mapRO on platforms without a wired mmap syscall reads the file into
// a private buffer: the Mapped API keeps working (lazy section CRCs
// included), only the page-sharing win is absent.
func mapRO(f *os.File, size int) ([]byte, func([]byte) error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func([]byte) error { return nil }, nil
}
