package artifact

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"gsgcn/internal/ann"
	"gsgcn/internal/mat"
)

// This file is the mmap load path: a version-2 artifact opened
// read-only straight from the page cache, with the float sections
// cast in place instead of copied. Warm start becomes O(header) —
// table pages fault in on first touch and are shared by every process
// serving the same artifact. Integrity is per section: small sections
// (norms, codebooks, index) are CRC-checked eagerly at open, the big
// embedding section lazily on its first row access, so opening a
// multi-gigabyte artifact never reads the whole file.
//
// Lifetime: the mapping stays valid while the Mapped (or any snapshot
// built from it) is reachable; a finalizer unmaps after the last
// reference is collected, so a reload can drop an old snapshot
// without coordinating with in-flight readers. Truncating or
// rewriting the file in place under a live mapping is undefined
// (SIGBUS) — producers must follow WriteFile's write-temp-then-rename
// protocol, which leaves old mappings pointing at the old inode.

// hostLittleEndian reports whether float sections can be cast in
// place; on a big-endian host OpenMapped refuses and callers fall
// back to the copying decoder.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Mapped is an artifact whose sections alias a read-only memory
// mapping. Accessors return views into the mapping; they stay valid
// while the Mapped is reachable and must not be mutated.
type Mapped struct {
	data   []byte
	unmap  func([]byte) error
	closed atomic.Bool

	path  string
	sum   uint64
	parse *parsedV2

	table *mappedTable
	norms []float64
	f32   *mat.F32Table
	pq    *mat.PQTable
	index *ann.Index
}

// OpenMapped maps the version-2 artifact at path read-only and
// validates everything except the embedding section, whose CRC is
// deferred to first row access. Version-1 artifacts and big-endian
// hosts return an error — callers fall back to ReadFile.
func OpenMapped(path string) (*Mapped, error) {
	if !hostLittleEndian {
		return nil, fmt.Errorf("artifact: mmap load needs a little-endian host")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < 24 {
		return nil, fmt.Errorf("artifact: %s: %d bytes is too short to map", path, size)
	}
	if size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("artifact: %s: %d bytes exceeds the address space", path, size)
	}
	data, unmap, err := mapRO(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("artifact: mapping %s: %w", path, err)
	}
	m := &Mapped{data: data, unmap: unmap, path: path}
	if err := m.init(); err != nil {
		_ = m.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Unmap after the last reference (the Mapped or any view handed
	// out by it keeps m alive through the table's back-pointer).
	runtime.SetFinalizer(m, func(m *Mapped) { _ = m.Close() })
	return m, nil
}

// init parses and validates the mapped bytes.
func (m *Mapped) init() error {
	body := m.data[:len(m.data)-8]
	m.sum = binary.LittleEndian.Uint64(m.data[len(m.data)-8:])
	if len(body) < 16 {
		return fmt.Errorf("artifact: truncated header (%d bytes)", len(body))
	}
	if string(body[:8]) != magic {
		return fmt.Errorf("artifact: bad magic %q", body[:8])
	}
	if v := binary.LittleEndian.Uint32(body[8:12]); v != formatVersion {
		return fmt.Errorf("artifact: mmap load needs format version %d, file is version %d", formatVersion, v)
	}
	p, err := parseV2(body)
	if err != nil {
		return err
	}
	m.parse = p
	// Eager CRCs for everything but the embedding table.
	for name := range p.secs {
		if name == secEmb {
			continue
		}
		if err := m.ValidateSection(name); err != nil {
			return err
		}
	}
	rows := p.meta.rows()
	m.table = &mappedTable{
		m:    m,
		rows: rows,
		cols: p.meta.Dim,
		data: castF64(p.sec(body, secEmb)),
	}
	m.norms = castF64(p.sec(body, secNorms))
	switch p.dtype {
	case mat.DtypeF32:
		m.f32 = &mat.F32Table{RowsN: rows, ColsN: p.meta.Dim, Data: castF32(p.sec(body, secF32))}
	case mat.DtypeI8PQ:
		m.pq = &mat.PQTable{
			RowsN:     rows,
			ColsN:     p.meta.Dim,
			Params:    mat.PQParams{M: p.pq.M, K: p.pq.K, Iters: p.pq.Iters, Seed: p.pq.Seed},
			Centroids: castF64(p.sec(body, secPQCent)),
			Codes:     p.sec(body, secPQCodes),
		}
		if err := m.pq.Validate(); err != nil {
			return fmt.Errorf("artifact: %w", err)
		}
	}
	if s, ok := p.secs[secIndex]; ok && s.Len > 0 {
		idx, err := ann.DecodeIndex(p.sec(body, secIndex), m.table, m.norms)
		if err != nil {
			return err
		}
		m.index = idx
	}
	return nil
}

// castF64 reinterprets 8-aligned little-endian bytes as float64s.
// Section offsets are 8-aligned relative to the page-aligned mapping,
// so the cast is always legal here.
func castF64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// castF32 reinterprets aligned little-endian bytes as float32s.
func castF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// ValidateSection CRC-checks one section by name against its header
// entry. The embedding section check also runs implicitly (once) on
// the first Row access.
func (m *Mapped) ValidateSection(name string) error {
	s, ok := m.parse.secs[name]
	if !ok {
		return fmt.Errorf("artifact: no section %q", name)
	}
	body := m.data[:len(m.data)-8]
	if got := crc64.Checksum(m.parse.sec(body, name), crcTable); got != s.CRC {
		return fmt.Errorf("artifact: %s: section %q CRC mismatch (stored %016x, computed %016x)", m.path, name, s.CRC, got)
	}
	return nil
}

// Meta returns the artifact metadata.
func (m *Mapped) Meta() Meta { return m.parse.meta }

// Dtype returns the resident representation the artifact was built
// for.
func (m *Mapped) Dtype() mat.Dtype { return m.parse.dtype }

// Sum returns the stored trailer checksum. Unlike ReadFile's, it is
// read, not recomputed — the whole point of mapping is not touching
// every page — so it is an identity fingerprint (good for "has the
// file changed" reload comparisons), while integrity rests on the
// per-section CRCs.
func (m *Mapped) Sum() uint64 { return m.sum }

// Table returns the embedding table as a RowSource over the mapping.
func (m *Mapped) Table() mat.RowSource { return m.table }

// Norms returns the norm vector (aliasing the mapping).
func (m *Mapped) Norms() []float64 { return m.norms }

// F32 returns the float32 payload (nil unless dtype f32).
func (m *Mapped) F32() *mat.F32Table { return m.f32 }

// PQ returns the product-quantization payload (nil unless dtype
// i8pq). Its codes and centroids alias the mapping.
func (m *Mapped) PQ() *mat.PQTable { return m.pq }

// Index returns the decoded ANN index (nil when the artifact carries
// none). Node structure lives on the heap; vectors read the mapping.
func (m *Mapped) Index() *ann.Index { return m.index }

// MappedBytes returns the size of the mapping.
func (m *Mapped) MappedBytes() int64 { return int64(len(m.data)) }

// Close unmaps. Idempotent. Callers normally never call it — the
// finalizer unmaps after the last snapshot reference is collected —
// but an install path that rejects a freshly opened artifact may
// close it eagerly.
func (m *Mapped) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	runtime.SetFinalizer(m, nil)
	return m.unmap(m.data)
}

// mappedTable is the RowSource over the mapped embedding section. The
// sync.Once runs the deferred CRC on the first row read; a mismatch
// panics — by the time rows are being served, silently wrong floats
// are strictly worse than a crash, and the eager sections have
// already vouched for the header that declared the CRC.
type mappedTable struct {
	m     *Mapped
	rows  int
	cols  int
	data  []float64
	check sync.Once
}

// NumRows returns the row count.
func (t *mappedTable) NumRows() int { return t.rows }

// NumCols returns the column count.
func (t *mappedTable) NumCols() int { return t.cols }

// Row returns row i, validating the section CRC on first access.
func (t *mappedTable) Row(i int) []float64 {
	t.check.Do(func() {
		if err := t.m.ValidateSection(secEmb); err != nil {
			panic(err)
		}
	})
	return t.data[i*t.cols : (i+1)*t.cols]
}
