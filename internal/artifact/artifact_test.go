package artifact

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gsgcn/internal/ann"
	"gsgcn/internal/core"
	"gsgcn/internal/mat"
)

// testSnapshot builds a structurally honest snapshot: a seeded
// embedding table, exact norms and a real HNSW index over it.
func testSnapshot(n, dim int, withIndex bool) *Snapshot {
	emb := mat.New(n, dim)
	x := uint64(0x2545F4914F6CDD1D)
	for i := range emb.Data {
		x = x*6364136223846793005 + 1442695040888963407
		emb.Data[i] = float64(int64(x>>11))/float64(1<<52) - 1
	}
	norms := make([]float64, n)
	for v := 0; v < n; v++ {
		row := emb.Row(v)
		norms[v] = math.Sqrt(mat.Dot(row, row))
	}
	s := &Snapshot{
		Meta: Meta{
			Arch: core.ArchMeta{
				ModelVersion: 42, InDim: 7, Classes: 3,
				Aggregator: "mean", Layers: 2, Hidden: dim / 4,
			},
			Vertices: n, Edges: int64(4 * n), FeatureDim: 7, Dim: dim,
		},
		Emb:   emb,
		Norms: norms,
	}
	if withIndex {
		s.Index = ann.Build(emb, norms, ann.Params{M: 8}, 2)
	}
	return s
}

// TestRoundTrip pins the warm-start contract: a decoded artifact is
// bit-identical to what was encoded — embedding bytes, norms, meta and
// index encoding all equal — and re-encoding reproduces the file
// byte-for-byte.
func TestRoundTrip(t *testing.T) {
	for _, withIndex := range []bool{true, false} {
		s := testSnapshot(300, 16, withIndex)
		blob, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got.Meta != s.Meta {
			t.Fatalf("meta round-trip: got %+v, want %+v", got.Meta, s.Meta)
		}
		if got.Emb.Rows != s.Emb.Rows || got.Emb.Cols != s.Emb.Cols {
			t.Fatalf("table shape %dx%d, want %dx%d", got.Emb.Rows, got.Emb.Cols, s.Emb.Rows, s.Emb.Cols)
		}
		for i, x := range s.Emb.Data {
			if math.Float64bits(got.Emb.Data[i]) != math.Float64bits(x) {
				t.Fatalf("embedding element %d: %x, want %x", i, got.Emb.Data[i], x)
			}
		}
		for v, x := range s.Norms {
			if math.Float64bits(got.Norms[v]) != math.Float64bits(x) {
				t.Fatalf("norm %d: %x, want %x", v, got.Norms[v], x)
			}
		}
		if withIndex {
			if got.Index == nil {
				t.Fatal("index lost in round-trip")
			}
			if !bytes.Equal(got.Index.EncodeBinary(), s.Index.EncodeBinary()) {
				t.Fatal("decoded index is not byte-equal to the encoded one")
			}
		} else if got.Index != nil {
			t.Fatal("index materialized from an index-free artifact")
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, blob) {
			t.Fatal("decode+encode does not reproduce the artifact bytes")
		}
	}
}

// TestFileRoundTrip exercises the atomic file path plus the manifest
// sidecar.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.art")
	s := testSnapshot(120, 8, true)
	sum, err := WriteFile(path, s)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSum, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != sum {
		t.Fatalf("checksum %016x from read, %016x from write", gotSum, sum)
	}
	if got.Meta != s.Meta || got.Index == nil {
		t.Fatalf("file round-trip mangled the snapshot: %+v", got.Meta)
	}

	mfPath, err := WriteManifest(path, "m.ckpt", s, sum)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mfPath)
	if err != nil {
		t.Fatal(err)
	}
	var mf Manifest
	if err := json.Unmarshal(data, &mf); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if mf.Meta != s.Meta || mf.Checkpoint != "m.ckpt" || mf.IndexChecksum == "" {
		t.Fatalf("manifest incomplete: %+v", mf)
	}
}

// TestDecodeRejectsCorruption drives the decoder with damaged
// artifacts: every case must fail with a clean error.
func TestDecodeRejectsCorruption(t *testing.T) {
	s := testSnapshot(100, 8, true)
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}

	reseal := func(mutate func(b []byte) []byte) []byte {
		// Mutate the body, then restore a valid trailer so the case
		// tests structural validation, not just the checksum.
		b := mutate(append([]byte(nil), blob[:len(blob)-8]...))
		return binary.LittleEndian.AppendUint64(b, crcChecksum(b))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"too-short", blob[:4]},
		{"truncated", blob[:len(blob)/2]},
		{"bit-flip", func() []byte {
			b := append([]byte(nil), blob...)
			b[len(b)/2] ^= 1
			return b
		}()},
		{"trailer-flip", func() []byte {
			b := append([]byte(nil), blob...)
			b[len(b)-1] ^= 1
			return b
		}()},
		{"bad-magic", reseal(func(b []byte) []byte { b[0] ^= 0xFF; return b })},
		{"future-version", reseal(func(b []byte) []byte { b[8] = 99; return b })},
		{"header-overrun", reseal(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:16], 1<<24)
			return b
		})},
		{"header-not-json", reseal(func(b []byte) []byte { b[16] = '!'; return b })},
		{"body-truncated-resealed", reseal(func(b []byte) []byte { return b[:len(b)-64] })},
		{"absurd-vertices", func() []byte {
			abs := *s
			abs.Meta.Vertices = maxVertices + 1
			b, _ := json.Marshal(abs.Meta)
			out := append([]byte(nil), blob[:12]...)
			out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
			out = append(out, b...)
			return binary.LittleEndian.AppendUint64(out, crcChecksum(out))
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if snap, err := Decode(tc.data); err == nil {
				t.Fatalf("corrupt artifact accepted: %+v", snap.Meta)
			}
		})
	}
}

// TestEncodeRejectsInconsistentSnapshot covers the writer-side guards.
func TestEncodeRejectsInconsistentSnapshot(t *testing.T) {
	s := testSnapshot(50, 8, false)
	s.Meta.Vertices = 51
	if _, err := Encode(s); err == nil {
		t.Fatal("vertex-count mismatch accepted")
	}
	s = testSnapshot(50, 8, false)
	s.Norms = s.Norms[:10]
	if _, err := Encode(s); err == nil {
		t.Fatal("short norms accepted")
	}
}

func crcChecksum(b []byte) uint64 {
	return crc64.Checksum(b, crcTable)
}

// shardSnapshot derives a structurally honest sharded snapshot from a
// testSnapshot: rows rows of the table, labeled as one shard of a
// vertices-vertex fleet.
func shardSnapshot(rows, vertices, dim, shard, shards int, seed uint64) *Snapshot {
	s := testSnapshot(rows, dim, false)
	s.Meta.Vertices = vertices
	s.Meta.Shards = shards
	s.Meta.Shard = shard
	s.Meta.ShardSeed = seed
	s.Meta.ShardRows = rows
	return s
}

// TestShardMetaRoundTrip pins the sharded artifact format: the shard
// identity fields survive Encode/Decode exactly, and DecodeVerified
// accepts a well-formed shard file.
func TestShardMetaRoundTrip(t *testing.T) {
	s := shardSnapshot(40, 100, 8, 2, 4, 77)
	blob, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeVerified(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != s.Meta {
		t.Fatalf("shard meta round-trip: got %+v, want %+v", got.Meta, s.Meta)
	}
	if got.Meta.Shards != 4 || got.Meta.Shard != 2 || got.Meta.ShardSeed != 77 || got.Meta.ShardRows != 40 {
		t.Fatalf("shard fields mangled: %+v", got.Meta)
	}
	if got.Emb.Rows != 40 {
		t.Fatalf("shard table has %d rows, want the owned 40, not the global 100", got.Emb.Rows)
	}
}

// TestShardMetaValidation drives validateShard through Encode: every
// internally inconsistent shard labeling must be rejected on the
// write side, before a bad file can exist.
func TestShardMetaValidation(t *testing.T) {
	cases := []struct {
		name string
		snap *Snapshot
	}{
		{"shard-out-of-range", shardSnapshot(40, 100, 8, 4, 4, 1)},
		{"negative-shard", shardSnapshot(40, 100, 8, -1, 4, 1)},
		{"negative-shards", func() *Snapshot {
			s := shardSnapshot(40, 100, 8, 0, 4, 1)
			s.Meta.Shards = -4
			return s
		}()},
		{"rows-exceed-vertices", shardSnapshot(101, 100, 8, 0, 4, 1)},
		{"rows-mismatch-table", func() *Snapshot {
			s := shardSnapshot(40, 100, 8, 0, 4, 1)
			s.Meta.ShardRows = 39
			return s
		}()},
		{"unsharded-with-shard-fields", func() *Snapshot {
			s := testSnapshot(40, 8, false)
			s.Meta.ShardSeed = 9
			return s
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Encode(tc.snap); err == nil {
				t.Fatalf("inconsistent shard meta accepted: %+v", tc.snap.Meta)
			}
		})
	}
}

// TestShardPathFormat pins the per-shard naming convention shared by
// gsgcn-index (writer) and the serving router (reader): the two sides
// only meet on disk, so the format is part of the artifact contract.
func TestShardPathFormat(t *testing.T) {
	if got, want := ShardPath("m.ckpt.art", 0, 4), "m.ckpt.art.s0of4"; got != want {
		t.Errorf("ShardPath = %q, want %q", got, want)
	}
	if got, want := ShardPath("/models/prod.art", 11, 16), "/models/prod.art.s11of16"; got != want {
		t.Errorf("ShardPath = %q, want %q", got, want)
	}
}

// TestUnshardedHeaderByteCompat pins backward compatibility: an
// unsharded snapshot's encoded header carries no shard keys at all
// (they are omitempty), so PR 4 artifacts and the files this release
// writes for unsharded models are byte-identical.
func TestUnshardedHeaderByteCompat(t *testing.T) {
	s := testSnapshot(50, 8, false)
	hdr, err := json.Marshal(s.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(hdr, []byte("shard")) {
		t.Fatalf("unsharded meta header mentions shards: %s", hdr)
	}
}
