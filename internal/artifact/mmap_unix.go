//go:build unix

package artifact

import (
	"os"
	"syscall"
)

// mapRO maps size bytes of f read-only and shared (fleet processes
// serving the same artifact share its page-cache pages).
func mapRO(f *os.File, size int) ([]byte, func([]byte) error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, syscall.Munmap, nil
}
