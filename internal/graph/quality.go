package graph

import "math"

// DegreeKS returns the Kolmogorov-Smirnov distance between the degree
// distributions of g and h — one of the "connectivity measures" a
// good graph sampler should preserve (Section III-C; Ribeiro &
// Towsley evaluate frontier sampling with exactly this family of
// statistics). 0 means identical distributions, 1 maximal divergence.
func DegreeKS(g, h *CSR) float64 {
	if g.N == 0 || h.N == 0 {
		return 1
	}
	maxDeg := g.MaxDegree()
	if hd := h.MaxDegree(); hd > maxDeg {
		maxDeg = hd
	}
	cdf := func(x *CSR) []float64 {
		counts := make([]float64, maxDeg+2)
		for v := int32(0); v < int32(x.N); v++ {
			counts[x.Degree(v)]++
		}
		run := 0.0
		for i := range counts {
			run += counts[i]
			counts[i] = run / float64(x.N)
		}
		return counts
	}
	cg, ch := cdf(g), cdf(h)
	ks := 0.0
	for i := range cg {
		if d := math.Abs(cg[i] - ch[i]); d > ks {
			ks = d
		}
	}
	return ks
}

// SubgraphQuality summarizes how faithfully a sampled subgraph
// preserves the parent graph's structure.
type SubgraphQuality struct {
	Vertices    int
	Edges       int64
	AvgDegree   float64
	LCCFraction float64
	DegreeKS    float64
}

// Quality computes the preservation statistics of sub against its
// parent graph.
func Quality(parent *CSR, sub *Subgraph) SubgraphQuality {
	return SubgraphQuality{
		Vertices:    sub.N,
		Edges:       sub.NumEdges(),
		AvgDegree:   sub.AvgDegree(),
		LCCFraction: sub.LargestComponentFraction(),
		DegreeKS:    DegreeKS(parent, sub.CSR),
	}
}
