// Package graph provides the compressed-sparse-row graph substrate for
// graph-sampling GCN training: construction from edge lists, degree
// queries, induced-subgraph extraction (the SAMPLE_G output of
// Algorithm 2 line 8), connectivity statistics and BFS components.
//
// Graphs are undirected and stored symmetrically: every edge {u, v}
// appears in both adjacency lists. Vertex ids are int32 internally so
// that graphs at the paper's Amazon scale (1.6M vertices, 132M edges,
// both directions materialized) remain addressable in a few gigabytes.
package graph

import (
	"fmt"
	"sort"
)

// CSR is an undirected graph in compressed sparse row form.
// Neighbors of vertex v occupy ColIdx[RowPtr[v]:RowPtr[v+1]], sorted
// ascending with no duplicates.
type CSR struct {
	N      int
	RowPtr []int64
	ColIdx []int32
}

// NumVertices returns |V|.
func (g *CSR) NumVertices() int { return g.N }

// NumEdges returns the number of undirected edges |E| (each stored
// twice internally).
func (g *CSR) NumEdges() int64 { return int64(len(g.ColIdx)) / 2 }

// NumDirectedEdges returns the number of stored directed arcs, 2|E|.
func (g *CSR) NumDirectedEdges() int64 { return int64(len(g.ColIdx)) }

// Degree returns deg(v).
func (g *CSR) Degree(v int32) int {
	return int(g.RowPtr[v+1] - g.RowPtr[v])
}

// Neighbors returns the sorted neighbor list of v, aliasing internal
// storage; callers must not modify it.
func (g *CSR) Neighbors(v int32) []int32 {
	return g.ColIdx[g.RowPtr[v]:g.RowPtr[v+1]]
}

// Neighbor returns the i-th neighbor of v.
func (g *CSR) Neighbor(v int32, i int) int32 {
	return g.ColIdx[g.RowPtr[v]+int64(i)]
}

// AvgDegree returns the mean vertex degree 2|E|/|V| (the d used to
// size the Dashboard in Algorithm 3 line 1).
func (g *CSR) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.ColIdx)) / float64(g.N)
}

// MaxDegree returns the largest vertex degree.
func (g *CSR) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.N); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether {u, v} is an edge, by binary search.
func (g *CSR) HasEdge(u, v int32) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// Edge is an undirected edge; by convention U <= V after
// normalization inside FromEdges.
type Edge struct{ U, V int32 }

// FromEdges builds a CSR over n vertices from an undirected edge
// list. Self-loops and duplicate edges are discarded (the mean
// aggregator adds the self term separately, mirroring the paper's
// W_self path). It returns an error for out-of-range endpoints.
func FromEdges(n int, edges []Edge) (*CSR, error) {
	deg := make([]int64, n+1)
	valid := 0
	for _, e := range edges {
		if e.U < 0 || e.V < 0 || int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		valid++
	}
	// First pass: count both directions (duplicates removed after
	// sorting each adjacency list).
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	rowPtr := make([]int64, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + deg[i+1]
	}
	col := make([]int32, rowPtr[n])
	fill := make([]int64, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		col[rowPtr[e.U]+fill[e.U]] = e.V
		fill[e.U]++
		col[rowPtr[e.V]+fill[e.V]] = e.U
		fill[e.V]++
	}
	// Sort and deduplicate each adjacency list, then compact.
	newCol := col[:0]
	newRowPtr := make([]int64, n+1)
	for v := 0; v < n; v++ {
		lo, hi := rowPtr[v], rowPtr[v]+fill[int32(v)]
		nb := col[lo:hi]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		prev := int32(-1)
		for _, w := range nb {
			if w != prev {
				newCol = append(newCol, w)
				prev = w
			}
		}
		newRowPtr[v+1] = int64(len(newCol))
	}
	out := make([]int32, len(newCol))
	copy(out, newCol)
	_ = valid
	return &CSR{N: n, RowPtr: newRowPtr, ColIdx: out}, nil
}

// Subgraph is a vertex-induced subgraph with local ids 0..N-1 and the
// mapping back to the parent graph's vertex ids.
type Subgraph struct {
	*CSR
	// Orig[i] is the parent-graph id of local vertex i; strictly
	// increasing.
	Orig []int32
}

// Induce extracts the subgraph induced by the given vertex set
// (duplicates tolerated, order irrelevant). The result's Orig mapping
// is sorted ascending. Cost is O(|vs| log |vs| + Σ deg(v)).
func (g *CSR) Induce(vs []int32) *Subgraph {
	uniq := make([]int32, len(vs))
	copy(uniq, vs)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	// Deduplicate in place.
	n := 0
	for i, v := range uniq {
		if i == 0 || v != uniq[n-1] {
			uniq[n] = v
			n++
		}
	}
	uniq = uniq[:n]

	local := make(map[int32]int32, n)
	for i, v := range uniq {
		local[v] = int32(i)
	}
	rowPtr := make([]int64, n+1)
	var col []int32
	for i, v := range uniq {
		for _, w := range g.Neighbors(v) {
			if lw, ok := local[w]; ok {
				col = append(col, lw)
			}
		}
		rowPtr[i+1] = int64(len(col))
	}
	return &Subgraph{
		CSR:  &CSR{N: n, RowPtr: rowPtr, ColIdx: col},
		Orig: uniq,
	}
}

// DegreeHistogram returns counts[d] = number of vertices with degree
// d, up to the maximum degree.
func (g *CSR) DegreeHistogram() []int64 {
	h := make([]int64, g.MaxDegree()+1)
	for v := int32(0); v < int32(g.N); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// ConnectedComponents labels each vertex with a component id in
// [0, k) and returns the labels and k. BFS-based, O(V+E).
func (g *CSR) ConnectedComponents() (labels []int32, k int) {
	labels = make([]int32, g.N)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := int32(0); s < int32(g.N); s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = int32(k)
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = int32(k)
					queue = append(queue, w)
				}
			}
		}
		k++
	}
	return labels, k
}

// LargestComponentFraction returns the fraction of vertices inside the
// largest connected component — one of the connectivity measures used
// to check that sampled subgraphs preserve the training graph's
// structure (Section III-C).
func (g *CSR) LargestComponentFraction() float64 {
	if g.N == 0 {
		return 0
	}
	labels, k := g.ConnectedComponents()
	counts := make([]int64, k)
	for _, l := range labels {
		counts[l]++
	}
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(g.N)
}

// Stats bundles summary statistics of a graph (Table I columns plus
// connectivity measures).
type Stats struct {
	Vertices   int
	Edges      int64
	AvgDegree  float64
	MaxDegree  int
	Components int
	LCCFrac    float64
}

// ComputeStats returns summary statistics; Components/LCCFrac require
// a BFS pass and are skipped when full is false.
func (g *CSR) ComputeStats(full bool) Stats {
	s := Stats{
		Vertices:  g.N,
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	if full {
		labels, k := g.ConnectedComponents()
		s.Components = k
		counts := make([]int64, k)
		for _, l := range labels {
			counts[l]++
		}
		var max int64
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if g.N > 0 {
			s.LCCFrac = float64(max) / float64(g.N)
		}
	}
	return s
}
