package graph

import (
	"testing"
	"testing/quick"

	"gsgcn/internal/rng"
)

// path5 is the path graph 0-1-2-3-4.
func path5(t *testing.T) *CSR {
	t.Helper()
	g, err := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := path5(t)
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("got V=%d E=%d, want 5,4", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Errorf("degrees wrong: deg(0)=%d deg(2)=%d", g.Degree(0), g.Degree(2))
	}
	nb := g.Neighbors(2)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Errorf("Neighbors(2) = %v", nb)
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 (dups and self-loops removed)", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Errorf("deg(2) = %d, want 0", g.Degree(2))
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("expected error for out-of-range endpoint")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("expected error for negative endpoint")
	}
}

func TestHasEdge(t *testing.T) {
	g := path5(t)
	cases := []struct {
		u, v int32
		want bool
	}{{0, 1, true}, {1, 0, true}, {0, 2, false}, {3, 4, true}, {4, 0, false}}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestSymmetry(t *testing.T) {
	g := randomGraph(t, 200, 800, 42)
	for v := int32(0); v < int32(g.N); v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(w, v) {
				t.Fatalf("edge (%d,%d) present but (%d,%d) missing", v, w, w, v)
			}
		}
	}
}

func TestAvgAndMaxDegree(t *testing.T) {
	g := path5(t)
	if got := g.AvgDegree(); got != 8.0/5.0 {
		t.Errorf("AvgDegree = %v, want 1.6", got)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Errorf("MaxDegree = %d, want 2", got)
	}
}

func TestInduceBasic(t *testing.T) {
	g := path5(t)
	sub := g.Induce([]int32{1, 2, 4})
	if sub.N != 3 {
		t.Fatalf("induced N = %d, want 3", sub.N)
	}
	// Local ids: 0->1, 1->2, 2->4. Edge (1,2) survives; 4 isolated.
	if !sub.HasEdge(0, 1) {
		t.Error("edge between local 0 and 1 missing")
	}
	if sub.Degree(2) != 0 {
		t.Error("vertex 4 should be isolated in the induced subgraph")
	}
	want := []int32{1, 2, 4}
	for i, v := range want {
		if sub.Orig[i] != v {
			t.Fatalf("Orig = %v, want %v", sub.Orig, want)
		}
	}
}

func TestInduceDuplicatesIgnored(t *testing.T) {
	g := path5(t)
	sub := g.Induce([]int32{2, 2, 3, 3, 3})
	if sub.N != 2 {
		t.Fatalf("induced N = %d, want 2", sub.N)
	}
	if !sub.HasEdge(0, 1) {
		t.Error("edge (2,3) missing from induced subgraph")
	}
}

func TestInduceWholeGraph(t *testing.T) {
	g := randomGraph(t, 50, 120, 7)
	all := make([]int32, g.N)
	for i := range all {
		all[i] = int32(i)
	}
	sub := g.Induce(all)
	if sub.NumEdges() != g.NumEdges() {
		t.Errorf("whole-graph induce lost edges: %d vs %d", sub.NumEdges(), g.NumEdges())
	}
}

func TestInduceEdgeSubsetProperty(t *testing.T) {
	// Property: every induced edge maps to an original edge, and every
	// original edge with both endpoints sampled appears induced.
	g := randomGraph(t, 120, 500, 99)
	r := rng.New(123)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		k := rr.Intn(60) + 2
		vs := make([]int32, k)
		for i := range vs {
			vs[i] = int32(r.Intn(g.N))
		}
		sub := g.Induce(vs)
		for li := int32(0); li < int32(sub.N); li++ {
			for _, lj := range sub.Neighbors(li) {
				if !g.HasEdge(sub.Orig[li], sub.Orig[lj]) {
					return false
				}
			}
		}
		inSet := map[int32]int32{}
		for i, v := range sub.Orig {
			inSet[v] = int32(i)
		}
		for _, v := range sub.Orig {
			for _, w := range g.Neighbors(v) {
				if lw, ok := inSet[w]; ok {
					if !sub.HasEdge(inSet[v], lw) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles plus an isolated vertex.
	g, err := FromEdges(7, []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	labels, k := g.ConnectedComponents()
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[0] != labels[2] {
		t.Error("triangle 0-1-2 split across components")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Error("triangle 3-4-5 mislabeled")
	}
	if labels[6] == labels[0] || labels[6] == labels[3] {
		t.Error("isolated vertex joined a triangle")
	}
}

func TestLargestComponentFraction(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.LargestComponentFraction(); got != 0.75 {
		t.Errorf("LCC fraction = %v, want 0.75", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path5(t)
	h := g.DegreeHistogram()
	// Path: two degree-1 endpoints, three degree-2 internal vertices.
	if h[1] != 2 || h[2] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestComputeStats(t *testing.T) {
	g := path5(t)
	s := g.ComputeStats(true)
	if s.Vertices != 5 || s.Edges != 4 || s.Components != 1 || s.LCCFrac != 1 {
		t.Errorf("stats = %+v", s)
	}
	s2 := g.ComputeStats(false)
	if s2.Components != 0 {
		t.Errorf("partial stats should skip components, got %+v", s2)
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph stats wrong")
	}
	if g.LargestComponentFraction() != 0 {
		t.Error("empty graph LCC should be 0")
	}
}

// randomGraph builds an Erdos-Renyi-ish multigraph for tests.
func randomGraph(t *testing.T, n, m int, seed uint64) *CSR {
	t.Helper()
	r := rng.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{int32(r.Intn(n)), int32(r.Intn(n))}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func BenchmarkInduce(b *testing.B) {
	r := rng.New(5)
	edges := make([]Edge, 50000)
	for i := range edges {
		edges[i] = Edge{int32(r.Intn(10000)), int32(r.Intn(10000))}
	}
	g, err := FromEdges(10000, edges)
	if err != nil {
		b.Fatal(err)
	}
	vs := make([]int32, 1000)
	for i := range vs {
		vs[i] = int32(r.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Induce(vs)
	}
}

func TestDegreeKSIdentical(t *testing.T) {
	g := randomGraph(t, 100, 400, 5)
	if ks := DegreeKS(g, g); ks != 0 {
		t.Errorf("KS(g,g) = %v, want 0", ks)
	}
}

func TestDegreeKSDiscriminates(t *testing.T) {
	// A star and a cycle of the same size have very different degree
	// distributions.
	star := starLike(t, 50)
	var ring []Edge
	for i := 0; i < 51; i++ {
		ring = append(ring, Edge{U: int32(i), V: int32((i + 1) % 51)})
	}
	cyc, err := FromEdges(51, ring)
	if err != nil {
		t.Fatal(err)
	}
	if ks := DegreeKS(star, cyc); ks < 0.5 {
		t.Errorf("KS(star, cycle) = %v, want large", ks)
	}
	if ks := DegreeKS(star, cyc); ks > 1 {
		t.Errorf("KS > 1: %v", ks)
	}
}

func TestDegreeKSEmpty(t *testing.T) {
	g := randomGraph(t, 10, 20, 7)
	empty, _ := FromEdges(0, nil)
	if ks := DegreeKS(g, empty); ks != 1 {
		t.Errorf("KS vs empty = %v, want 1", ks)
	}
}

func TestQualityReport(t *testing.T) {
	g := randomGraph(t, 200, 1000, 9)
	all := make([]int32, g.N)
	for i := range all {
		all[i] = int32(i)
	}
	q := Quality(g, g.Induce(all))
	if q.DegreeKS != 0 || q.Vertices != g.N || q.Edges != g.NumEdges() {
		t.Errorf("whole-graph quality wrong: %+v", q)
	}
}

// starLike builds a star graph with n leaves.
func starLike(t *testing.T, n int) *CSR {
	t.Helper()
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{U: 0, V: int32(i + 1)}
	}
	g, err := FromEdges(n+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
