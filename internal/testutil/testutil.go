// Package testutil holds small helpers shared by tests across
// packages.
package testutil

// BestOf runs a wall-clock-sensitive measurement up to attempts
// times, stopping early once the predicate holds. It returns the last
// measured value and whether any attempt satisfied the predicate.
// Tests that assert on real timing (simulated-speedup bounds) use it
// so a single descheduled shard on a busy CI host does not fail the
// suite.
func BestOf(attempts int, measure func() (value float64, ok bool)) (float64, bool) {
	var last float64
	for i := 0; i < attempts; i++ {
		v, ok := measure()
		last = v
		if ok {
			return last, true
		}
	}
	return last, false
}
