package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing count. All methods are
// lock-free and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are lock-free
// and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observation counts per
// bucket, a total count and a running sum. Bucket bounds are fixed at
// construction — deterministic across processes and scrapes — and an
// overflow (+Inf) bucket is implicit. Observe is a binary search over
// the bounds plus three atomic adds; no locks, no allocation.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram over ascending bucket upper bounds.
func newHistogram(bounds []float64) *Histogram {
	cp := append([]float64(nil), bounds...)
	return &Histogram{bounds: cp, buckets: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v; len(bounds) is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// sum returns the running sum of observed values.
func (h *Histogram) sum() float64 { return math.Float64frombits(h.sumBits.Load()) }
