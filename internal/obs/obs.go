// Package obs is the fleet's observability plane: a dependency-free
// metrics core (atomic counters, gauges, fixed-bucket histograms, a
// Registry rendering Prometheus text exposition format) plus a
// structured JSON-line logger with monotonic request ids.
//
// Design rules, in order:
//
//   - Observation only. Nothing in this package is ever read back by
//     a serving or training code path, so instrumentation can never
//     alter an answer — the determinism contract
//     (docs/ARCHITECTURE.md) holds with metrics on or off.
//   - Lock-free hot path. Counters and histogram observations are a
//     handful of atomic adds on pre-registered handles; no map lookup,
//     no allocation, no mutex. The registry mutex guards only handle
//     registration and scrape-time iteration.
//   - Non-blocking scrapes. Func-backed gauges (GaugeFunc/CounterFunc)
//     read atomics or channel lengths at scrape time; a scrape must
//     never wait on a serving lock, however slow the reload it races.
//   - Bounded cardinality. Label values come from fixed sets —
//     endpoint patterns, model names, shard indices, status classes —
//     never from request payloads (no per-vertex labels). Tests
//     enforce the bound.
//   - Deterministic rendering. Families sort by name, series by label
//     signature, and histogram bucket bounds are fixed at
//     registration, so two scrapes of identical state are
//     byte-identical.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// TextContentType is the Content-Type of the Prometheus text
// exposition format rendered by Registry.WriteText.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// LatencyBuckets are the deterministic bucket bounds (seconds) for
// request-latency histograms: 100µs to 10s, roughly ×2.5 per step.
var LatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10}

// DurationBuckets are the deterministic bucket bounds (seconds) for
// coarse wall-time histograms (training epochs, artifact builds).
var DurationBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 600}

// SizeBuckets are the deterministic bucket bounds for count-valued
// histograms (batch sizes, fan-out widths): powers of two through the
// per-request id limit.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// kind is a metric family's exposition type.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one labeled time series of a family. Exactly one of the
// value fields is set, matching the family kind (fn may back either a
// gauge or a counter).
type series struct {
	sig     string // rendered label signature, e.g. {a="b",c="d"}
	labels  map[string]string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is all series sharing one metric name, help and type.
type family struct {
	name, help string
	kind       kind
	series     map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Handle registration is idempotent: asking for an
// existing (name, labels) pair returns the already-registered handle,
// so wiring code can re-derive handles without double counting.
// Registration with a conflicting type panics — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// signature renders labels as a deterministic {k="v",…} block (keys
// sorted; empty labels render as the empty string).
func signature(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register resolves (name, labels) to its series, creating family and
// series on first use. Type conflicts panic.
func (r *Registry) register(name, help string, k kind, labels map[string]string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	sig := signature(labels)
	s, ok := f.series[sig]
	if !ok {
		cp := make(map[string]string, len(labels))
		for lk, lv := range labels {
			cp[lk] = lv
		}
		s = &series{sig: sig, labels: cp}
		f.series[sig] = s
	}
	return s
}

// Counter returns the counter named name with the given labels,
// registering it on first use.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge named name with the given labels,
// registering it on first use.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers (or replaces) a function-backed gauge: fn is
// called at scrape time and must be non-blocking — read atomics or
// channel lengths, never take serving locks.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
}

// CounterFunc registers (or replaces) a function-backed counter — for
// monotonic values a subsystem already tracks in its own atomics
// (e.g. the micro-batcher's dispatch counts), exposed without double
// accounting. fn must be non-blocking and monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, labels map[string]string, fn func() float64) {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
}

// Histogram returns the fixed-bucket histogram named name with the
// given labels, registering it on first use with the given bucket
// upper bounds (ascending; a +Inf bucket is implicit). Later calls for
// the same series return the existing handle; buckets are fixed at
// first registration.
func (r *Registry) Histogram(name, help string, labels map[string]string, buckets []float64) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// WriteText renders every family in Prometheus text exposition format:
// families sorted by name, series by label signature — two scrapes of
// identical state are byte-identical.
func (r *Registry) WriteText(w io.Writer) error {
	return r.WriteFiltered(w, nil)
}

// WriteFiltered renders the families, keeping only series whose labels
// keep accepts (nil keeps everything). Families left with no series
// are omitted entirely.
func (r *Registry) WriteFiltered(w io.Writer, keep func(labels map[string]string) bool) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.fams[n]
		sigs := make([]string, 0, len(f.series))
		for sig, s := range f.series {
			if keep == nil || keep(s.labels) {
				sigs = append(sigs, sig)
			}
		}
		if len(sigs) == 0 {
			continue
		}
		sort.Strings(sigs)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, sig := range sigs {
			writeSeries(&b, f, f.series[sig])
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries renders one series (registry mutex held by the caller).
func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.hist != nil:
		cum := uint64(0)
		for i, bound := range s.hist.bounds {
			cum += s.hist.buckets[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketSig(s.labels, formatFloat(bound)), cum)
		}
		cum += s.hist.buckets[len(s.hist.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketSig(s.labels, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, s.sig, formatFloat(s.hist.sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, s.sig, s.hist.count.Load())
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.sig, formatFloat(s.fn()))
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %d\n", f.name, s.sig, s.counter.Value())
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.sig, formatFloat(s.gauge.Value()))
	}
}

// bucketSig renders a series' label signature with the le bucket bound
// appended (le sorts into place like any other label).
func bucketSig(labels map[string]string, le string) string {
	cp := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		cp[k] = v
	}
	cp["le"] = le
	return signature(cp)
}

// formatFloat renders a float64 the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
