package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact rendered bytes of a registry
// holding one of each metric kind: family ordering (by name), series
// ordering (by label signature), HELP/TYPE lines, cumulative histogram
// buckets with the implicit +Inf, and label escaping. Any format drift
// breaks real Prometheus scrapers, so this is byte-exact on purpose.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Total requests.", map[string]string{"endpoint": "/embed", "model": "prod"}).Add(3)
	r.Counter("app_requests_total", "Total requests.", map[string]string{"endpoint": "/embed", "model": "canary"}).Inc()
	r.Gauge("app_up", "Serving state.", map[string]string{"model": "prod"}).Set(1)
	r.GaugeFunc("app_queue_depth", "Queued requests.", map[string]string{"model": "prod"}, func() float64 { return 7 })
	h := r.Histogram("app_latency_seconds", "Request latency.", map[string]string{"model": "prod"}, []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le=0.01
	h.Observe(0.05)  // le=0.1
	h.Observe(0.1)   // le=0.1 (boundary is inclusive)
	h.Observe(5)     // +Inf

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01",model="prod"} 1
app_latency_seconds_bucket{le="0.1",model="prod"} 3
app_latency_seconds_bucket{le="1",model="prod"} 3
app_latency_seconds_bucket{le="+Inf",model="prod"} 4
app_latency_seconds_sum{model="prod"} 5.155
app_latency_seconds_count{model="prod"} 4
# HELP app_queue_depth Queued requests.
# TYPE app_queue_depth gauge
app_queue_depth{model="prod"} 7
# HELP app_requests_total Total requests.
# TYPE app_requests_total counter
app_requests_total{endpoint="/embed",model="canary"} 1
app_requests_total{endpoint="/embed",model="prod"} 3
# HELP app_up Serving state.
# TYPE app_up gauge
app_up{model="prod"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition drift:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteFiltered checks the model-scoped render: series failing the
// predicate vanish, and families left empty are omitted entirely
// (no dangling HELP/TYPE headers).
func TestWriteFiltered(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", map[string]string{"model": "x"}).Inc()
	r.Counter("a_total", "A.", map[string]string{"model": "y"}).Inc()
	r.Gauge("b", "B.", map[string]string{"model": "y"}).Set(2)
	var b strings.Builder
	if err := r.WriteFiltered(&b, func(l map[string]string) bool { return l["model"] == "x" }); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, `a_total{model="x"} 1`) {
		t.Errorf("filtered render lost the kept series:\n%s", got)
	}
	if strings.Contains(got, `model="y"`) || strings.Contains(got, "# HELP b") {
		t.Errorf("filtered render leaked excluded series or empty family headers:\n%s", got)
	}
}

// TestHandleIdempotent: re-registering the same (name, labels) returns
// the same handle — wiring code may re-derive handles freely without
// forking the series.
func TestHandleIdempotent(t *testing.T) {
	r := NewRegistry()
	l := map[string]string{"model": "m"}
	c1 := r.Counter("c_total", "C.", l)
	c2 := r.Counter("c_total", "C.", l)
	if c1 != c2 {
		t.Error("Counter re-registration returned a different handle")
	}
	c1.Inc()
	c2.Inc()
	if c1.Value() != 2 {
		t.Errorf("split counter: got %d, want 2", c1.Value())
	}
	h1 := r.Histogram("h_seconds", "H.", l, LatencyBuckets)
	h2 := r.Histogram("h_seconds", "H.", l, nil) // buckets fixed at first registration
	if h1 != h2 {
		t.Error("Histogram re-registration returned a different handle")
	}
}

// TestTypeConflictPanics: one name cannot be two kinds.
func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "X.", nil)
}

// TestConcurrentObservations hammers one counter and one histogram
// from many goroutines; totals must be exact (run under -race in CI).
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.", nil)
	h := r.Histogram("v", "V.", nil, []float64{1, 2})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*per)
	}
	if got := h.sum(); got != 1.5*workers*per {
		t.Errorf("histogram sum %g, want %g", got, 1.5*workers*per)
	}
}

// TestLoggerGolden pins the JSON-line format with the clock pinned:
// ts/event prefix, fields in call order, typed rendering (string,
// int, bool, duration-as-ms, error).
func TestLoggerGolden(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Event("request",
		F("id", l.NextID()),
		F("model", "prod"),
		F("endpoint", "/embed"),
		F("status", 200),
		F("dur_ms", 1500*time.Microsecond),
		F("ok", true),
	)
	want := `{"ts":"2026-08-08T12:00:00Z","event":"request","id":1,"model":"prod","endpoint":"/embed","status":200,"dur_ms":1.5,"ok":true}` + "\n"
	if got := b.String(); got != want {
		t.Errorf("log line drift:\n got %q\nwant %q", got, want)
	}
}

// TestNilLoggerSafe: a nil *Logger is a no-op sink, so call sites need
// no guards.
func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Event("anything", F("k", "v"))
	if id := l.NextID(); id != 0 {
		t.Errorf("nil logger NextID = %d, want 0", id)
	}
}

// TestLoggerIDsMonotonic: ids from concurrent callers are unique and
// dense.
func TestLoggerIDsMonotonic(t *testing.T) {
	l := NewLogger(&strings.Builder{})
	seen := make([]uint64, 100)
	var wg sync.WaitGroup
	for i := range seen {
		wg.Add(1)
		go func(i int) { defer wg.Done(); seen[i] = l.NextID() }(i)
	}
	wg.Wait()
	uniq := make(map[uint64]bool)
	for _, id := range seen {
		if id < 1 || id > 100 {
			t.Errorf("id %d out of the dense range [1,100]", id)
		}
		uniq[id] = true
	}
	if len(uniq) != 100 {
		t.Errorf("ids collided: %d unique of 100", len(uniq))
	}
}
