package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Field is one key/value pair of a structured log line.
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Logger emits structured JSON lines: one object per line, fields in
// call order after the fixed ts/event prefix, keys and rendering
// deterministic. It also owns the process's monotonic request-id
// sequence (NextID), so every subsystem logging through one Logger
// shares one id space.
//
// Lines are small and built into a per-call buffer, then written under
// one mutex-guarded Write so concurrent events never interleave
// bytes. The zero Logger is not usable; a nil *Logger is: every
// method is a no-op, so call sites need no guards.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	seq atomic.Uint64

	// now is the clock; tests pin it for golden output.
	now func() time.Time
}

// NewLogger returns a Logger writing JSON lines to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, now: time.Now}
}

// NextID returns the next monotonic request id (1, 2, 3, …).
func (l *Logger) NextID() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Add(1)
}

// Event writes one line: {"ts":"…","event":event,fields…}.
func (l *Logger) Event(event string, fields ...Field) {
	if l == nil {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	buf = strconv.AppendQuote(buf, l.now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"event":`...)
	buf = strconv.AppendQuote(buf, event)
	for _, f := range fields {
		buf = append(buf, ',')
		buf = strconv.AppendQuote(buf, f.Key)
		buf = append(buf, ':')
		buf = appendValue(buf, f.Val)
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}

// appendValue renders a field value as JSON. Durations render as
// fractional milliseconds (duration_ms convention); unknown types fall
// back to their quoted Go formatting so a line can never be invalid
// JSON.
func appendValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return strconv.AppendQuote(buf, x)
	case bool:
		return strconv.AppendBool(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int32:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case uint:
		return strconv.AppendUint(buf, uint64(x), 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case time.Duration:
		return strconv.AppendFloat(buf, float64(x)/float64(time.Millisecond), 'g', -1, 64)
	case error:
		return strconv.AppendQuote(buf, x.Error())
	default:
		return strconv.AppendQuote(buf, anyString(x))
	}
}

// anyString formats a value of unanticipated type.
func anyString(v any) string { return fmt.Sprintf("%v", v) }
