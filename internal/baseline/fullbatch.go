package baseline

import (
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/mat"
	"gsgcn/internal/nn"
)

// FullBatch is the Kipf-Welling-style "Batched GCN" baseline of
// Fig. 2: every weight update runs forward and backward propagation
// over the *entire* training graph. Convergence per update is good
// but each update costs a full-graph pass, so wall-clock convergence
// is slow on large graphs — exactly the trade-off the paper plots.
//
// It reuses the core model (same layers, loss and optimizer); only
// the batching policy differs.
type FullBatch struct {
	DS    *datasets.Dataset
	Model *core.Model
	opt   *nn.Adam

	trainRows []int
	steps     int
}

// NewFullBatch builds the full-batch trainer; cfg's sampler fields
// are ignored.
func NewFullBatch(ds *datasets.Dataset, cfg core.Config) *FullBatch {
	m := core.NewModel(ds, cfg)
	rows := make([]int, len(ds.TrainIdx))
	for i, v := range ds.TrainIdx {
		rows[i] = int(v)
	}
	return &FullBatch{
		DS: ds, Model: m,
		opt:       nn.NewAdam(m.Config().LR),
		trainRows: rows,
	}
}

// Steps returns the number of updates performed.
func (f *FullBatch) Steps() int { return f.steps }

// Step performs one full-graph weight update and returns the loss.
func (f *FullBatch) Step() float64 {
	ctx := f.Model.CtxForGraph(f.DS.G, f.DS.FeatureDim(), nil)
	logits := f.Model.Forward(ctx, f.DS.Features)
	dLogits := mat.New(logits.Rows, logits.Cols)
	loss := f.Model.Loss.Eval(logits, f.DS.Labels, f.trainRows, dLogits)
	f.Model.ZeroGrad()
	f.Model.Backward(ctx, dLogits)
	f.opt.Step(f.Model.Params())
	f.steps++
	return loss
}

// Evaluate returns micro-F1 over idx using full-graph inference.
func (f *FullBatch) Evaluate(idx []int32) float64 {
	ctx := f.Model.CtxForGraph(f.DS.G, f.DS.FeatureDim(), nil)
	logits := f.Model.Forward(ctx, f.DS.Features)
	var pred *mat.Dense
	if f.DS.MultiLabel {
		pred = nn.PredictMulti(logits)
	} else {
		pred = nn.PredictSingle(logits)
	}
	rows := make([]int, len(idx))
	for i, v := range idx {
		rows[i] = int(v)
	}
	return nn.F1Micro(pred, f.DS.Labels, rows)
}
