// Package baseline implements the layer-sampling GCN comparators of
// the paper's evaluation:
//
//   - GraphSAGE-style edge layer sampling [Hamilton et al., NIPS'17]:
//     every node of layer l draws DLS neighbors from layer l-1, so the
//     node population multiplies by (DLS+1) per layer — the "neighbor
//     explosion" whose cost Section III-B derives as
//     O(d_LS^L · |V| · f · (f + d_LS)) for small batches.
//   - Full-batch GCN [Kipf & Welling, ICLR'17]: one weight update per
//     pass over the entire graph ("Batched GCN" in Fig. 2).
//   - FastGCN-style independent node sampling per layer
//     [Chen et al., ICLR'18] with degree-proportional importance
//     sampling.
//
// The trainers share the nn kernels with the core package so that
// Fig. 2's time-accuracy comparison isolates the *algorithmic*
// difference, not implementation quality.
package baseline

import (
	"time"

	"gsgcn/internal/datasets"
	"gsgcn/internal/mat"
	"gsgcn/internal/nn"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
)

// SAGEConfig parameterizes the layer-sampling trainer.
type SAGEConfig struct {
	Layers int // GCN depth L
	Hidden int // per-layer output dim (width doubles via concat)
	DLS    int // neighbors sampled per node per layer (paper: d_LS)
	Batch  int // minibatch size of target vertices
	LR     float64
	Seed   uint64
	// Workers bounds goroutines inside dense kernels.
	Workers int
}

func (c SAGEConfig) withDefaults() SAGEConfig {
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 128
	}
	if c.DLS == 0 {
		c.DLS = 25
	}
	if c.Batch == 0 {
		c.Batch = 512
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// SAGE is the GraphSAGE-style layer-sampling trainer.
type SAGE struct {
	DS  *datasets.Dataset
	Cfg SAGEConfig
	// Timer, when set, accumulates "sample", "gather" and "gemm"
	// segments per step; the Table II harness uses the gather/gemm
	// split to model the baseline's parallel scaling (gathers are
	// memory-bound, GEMMs compute-bound).
	Timer *perf.Timer

	wSelf, wNeigh []*nn.Param // per layer
	head          *nn.Dense
	loss          nn.Loss
	opt           *nn.Adam
	r             *rng.RNG
	steps         int

	// LastBatchNodes reports the total node count across all layers
	// of the most recent minibatch — the direct measurement of
	// neighbor explosion.
	LastBatchNodes int
}

// NewSAGE builds the baseline trainer for the dataset.
func NewSAGE(ds *datasets.Dataset, cfg SAGEConfig) *SAGE {
	cfg = cfg.withDefaults()
	r := rng.NewStream(cfg.Seed, 0x5A6E)
	s := &SAGE{DS: ds, Cfg: cfg, r: r, opt: nn.NewAdam(cfg.LR)}
	in := ds.FeatureDim()
	for l := 0; l < cfg.Layers; l++ {
		ws := nn.NewParam("sage_w_self", in, cfg.Hidden)
		wn := nn.NewParam("sage_w_neigh", in, cfg.Hidden)
		ws.GlorotInit(r)
		wn.GlorotInit(r)
		s.wSelf = append(s.wSelf, ws)
		s.wNeigh = append(s.wNeigh, wn)
		in = 2 * cfg.Hidden
	}
	s.head = nn.NewDense(in, ds.NumClasses, r)
	if ds.MultiLabel {
		s.loss = nn.SigmoidBCE{}
	} else {
		s.loss = nn.SoftmaxCE{}
	}
	return s
}

// Params returns all trainable parameters.
func (s *SAGE) Params() []*nn.Param {
	var ps []*nn.Param
	for l := range s.wSelf {
		ps = append(ps, s.wSelf[l], s.wNeigh[l])
	}
	ps = append(ps, s.head.Params()...)
	return ps
}

// Steps returns the number of updates performed.
func (s *SAGE) Steps() int { return s.steps }

// layerPlan holds the sampled computation tree of one minibatch.
// nodes[L] are the batch targets; going down, nodes[l-1] holds, for
// each node of nodes[l], first the node itself then DLS sampled
// neighbors — length |nodes[l]| * (1 + DLS). No deduplication is
// performed, faithfully reproducing the redundant computation of
// small-batch layer sampling.
type layerPlan struct {
	nodes [][]int32
}

// sampleBatch draws B training targets and expands the layer tree.
func (s *SAGE) sampleBatch() *layerPlan {
	cfg := s.Cfg
	train := s.DS.TrainIdx
	b := cfg.Batch
	if b > len(train) {
		b = len(train)
	}
	targets := make([]int32, b)
	for i := range targets {
		targets[i] = train[s.r.Intn(len(train))]
	}
	plan := &layerPlan{nodes: make([][]int32, cfg.Layers+1)}
	plan.nodes[cfg.Layers] = targets
	g := s.DS.G
	for l := cfg.Layers; l >= 1; l-- {
		upper := plan.nodes[l]
		lower := make([]int32, 0, len(upper)*(1+cfg.DLS))
		for _, v := range upper {
			lower = append(lower, v) // self
			deg := g.Degree(v)
			for k := 0; k < cfg.DLS; k++ {
				if deg == 0 {
					lower = append(lower, v) // degenerate: self-fill
					continue
				}
				lower = append(lower, g.Neighbor(v, s.r.Intn(deg)))
			}
		}
		plan.nodes[l-1] = lower
	}
	return plan
}

// charge adds elapsed time to the named timer segment when a timer
// is attached.
func (s *SAGE) charge(name string, start time.Time) {
	if s.Timer != nil {
		s.Timer.Add(name, time.Since(start))
	}
}

// Step performs one layer-sampled minibatch update and returns the
// loss.
func (s *SAGE) Step() float64 {
	cfg := s.Cfg
	tSample := time.Now()
	plan := s.sampleBatch()
	s.charge("sample", tSample)
	total := 0
	for _, ns := range plan.nodes {
		total += len(ns)
	}
	s.LastBatchNodes = total

	// Forward. acts[l] is the feature matrix of plan.nodes[l];
	// preacts cache pre-ReLU values for the backward pass.
	acts := make([]*mat.Dense, cfg.Layers+1)
	preacts := make([]*mat.Dense, cfg.Layers+1)
	aggs := make([]*mat.Dense, cfg.Layers+1)
	h := mat.New(len(plan.nodes[0]), s.DS.FeatureDim())
	for i, v := range plan.nodes[0] {
		copy(h.Row(i), s.DS.Features.Row(int(v)))
	}
	acts[0] = h
	for l := 1; l <= cfg.Layers; l++ {
		hPrev := acts[l-1]
		nUp := len(plan.nodes[l])
		fin := hPrev.Cols
		// Split previous layer rows into self rows and neighbor
		// groups: row i*(1+DLS) is self, the next DLS rows are its
		// sampled neighbors.
		tGather := time.Now()
		self := mat.New(nUp, fin)
		neighMean := mat.New(nUp, fin)
		stride := 1 + cfg.DLS
		inv := 1 / float64(cfg.DLS)
		for i := 0; i < nUp; i++ {
			base := i * stride
			copy(self.Row(i), hPrev.Row(base))
			nrow := neighMean.Row(i)
			for k := 1; k <= cfg.DLS; k++ {
				mat.Axpy(nrow, hPrev.Row(base+k), inv)
			}
		}
		s.charge("gather", tGather)
		tGemm := time.Now()
		zs := mat.New(nUp, cfg.Hidden)
		zn := mat.New(nUp, cfg.Hidden)
		mat.Mul(zs, self, s.wSelf[l-1].W, cfg.Workers)
		mat.Mul(zn, neighMean, s.wNeigh[l-1].W, cfg.Workers)
		s.charge("gemm", tGemm)
		z := mat.New(nUp, 2*cfg.Hidden)
		mat.ConcatCols(z, zs, zn)
		preacts[l] = z
		aggs[l] = neighMean
		out := mat.New(nUp, 2*cfg.Hidden)
		mat.Apply(out, z, func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		})
		acts[l] = out
	}

	// Head + loss over the batch targets (all are training vertices).
	ctx := &nn.Ctx{G: nil, Q: 1, Workers: cfg.Workers}
	logits := s.head.Forward(ctx, acts[cfg.Layers])
	labels := mat.New(logits.Rows, s.DS.NumClasses)
	for i, v := range plan.nodes[cfg.Layers] {
		copy(labels.Row(i), s.DS.Labels.Row(int(v)))
	}
	dLogits := mat.New(logits.Rows, logits.Cols)
	loss := s.loss.Eval(logits, labels, nil, dLogits)

	for _, p := range s.Params() {
		p.ZeroGrad()
	}
	d := s.head.Backward(ctx, dLogits)

	// Backward through the layer tree.
	for l := cfg.Layers; l >= 1; l-- {
		nUp := len(plan.nodes[l])
		z := preacts[l]
		dZ := mat.New(nUp, 2*cfg.Hidden)
		for i, zv := range z.Data {
			if zv > 0 {
				dZ.Data[i] = d.Data[i]
			}
		}
		dZs := mat.New(nUp, cfg.Hidden)
		dZn := mat.New(nUp, cfg.Hidden)
		mat.SplitCols(dZs, dZn, dZ)

		hPrev := acts[l-1]
		fin := hPrev.Cols
		stride := 1 + cfg.DLS
		// Recompute self/neighbor views for weight gradients.
		tGather := time.Now()
		self := mat.New(nUp, fin)
		for i := 0; i < nUp; i++ {
			copy(self.Row(i), hPrev.Row(i*stride))
		}
		s.charge("gather", tGather)
		tGemm := time.Now()
		dw := mat.New(fin, cfg.Hidden)
		mat.MulAT(dw, self, dZs, cfg.Workers)
		mat.AddScaled(s.wSelf[l-1].Grad, dw, 1)
		mat.MulAT(dw, aggs[l], dZn, cfg.Workers)
		mat.AddScaled(s.wNeigh[l-1].Grad, dw, 1)

		// Gradient to the previous layer's rows.
		dSelf := mat.New(nUp, fin)
		dNeigh := mat.New(nUp, fin)
		mat.MulBT(dSelf, dZs, s.wSelf[l-1].W, cfg.Workers)
		mat.MulBT(dNeigh, dZn, s.wNeigh[l-1].W, cfg.Workers)
		s.charge("gemm", tGemm)
		tGather = time.Now()
		dPrev := mat.New(len(plan.nodes[l-1]), fin)
		inv := 1 / float64(cfg.DLS)
		for i := 0; i < nUp; i++ {
			base := i * stride
			copy(dPrev.Row(base), dSelf.Row(i))
			for k := 1; k <= cfg.DLS; k++ {
				mat.Axpy(dPrev.Row(base+k), dNeigh.Row(i), inv)
			}
		}
		s.charge("gather", tGather)
		d = dPrev
	}

	s.opt.Step(s.Params())
	s.steps++
	return loss
}

// Evaluate runs full-graph inference with expectation-exact
// aggregation (every neighbor, not a sample) and returns micro-F1
// over idx. This mirrors how GraphSAGE is evaluated in practice.
func (s *SAGE) Evaluate(idx []int32) float64 {
	logits := s.Infer()
	var pred *mat.Dense
	if s.DS.MultiLabel {
		pred = nn.PredictMulti(logits)
	} else {
		pred = nn.PredictSingle(logits)
	}
	rows := make([]int, len(idx))
	for i, v := range idx {
		rows[i] = int(v)
	}
	return nn.F1Micro(pred, s.DS.Labels, rows)
}

// Infer computes full-graph logits using exact mean aggregation.
func (s *SAGE) Infer() *mat.Dense {
	g := s.DS.G
	cfg := s.Cfg
	h := s.DS.Features.Clone()
	for l := 0; l < cfg.Layers; l++ {
		n := g.NumVertices()
		fin := h.Cols
		neigh := mat.New(n, fin)
		for v := 0; v < n; v++ {
			nb := g.Neighbors(int32(v))
			if len(nb) == 0 {
				continue
			}
			nrow := neigh.Row(v)
			inv := 1 / float64(len(nb))
			for _, u := range nb {
				mat.Axpy(nrow, h.Row(int(u)), inv)
			}
		}
		zs := mat.New(n, cfg.Hidden)
		zn := mat.New(n, cfg.Hidden)
		mat.Mul(zs, h, s.wSelf[l].W, cfg.Workers)
		mat.Mul(zn, neigh, s.wNeigh[l].W, cfg.Workers)
		z := mat.New(n, 2*cfg.Hidden)
		mat.ConcatCols(z, zs, zn)
		mat.Apply(z, z, func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		})
		h = z
	}
	ctx := &nn.Ctx{G: nil, Q: 1, Workers: cfg.Workers}
	return s.head.Forward(ctx, h)
}
