package baseline

import (
	"testing"

	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
)

func tinyDataset(tb testing.TB, multi bool) *datasets.Dataset {
	tb.Helper()
	cfg := datasets.Config{
		Name: "tiny", Vertices: 600, TargetEdges: 6000,
		FeatureDim: 16, NumClasses: 5, MultiLabel: multi,
		Homophily: 0.85, NoiseStd: 0.4, Seed: 3,
	}
	return datasets.Generate(cfg)
}

func sageCfg() SAGEConfig {
	return SAGEConfig{Layers: 2, Hidden: 16, DLS: 5, Batch: 64, LR: 0.01, Seed: 7, Workers: 1}
}

func TestSAGENeighborExplosion(t *testing.T) {
	ds := tinyDataset(t, false)
	s := NewSAGE(ds, sageCfg())
	s.Step()
	// L=2, B=64, d=5: layer2=64, layer1=64*6, layer0=64*36.
	want := 64 + 64*6 + 64*36
	if s.LastBatchNodes != want {
		t.Fatalf("batch nodes = %d, want %d (neighbor explosion)", s.LastBatchNodes, want)
	}
}

func TestSAGEExplosionGrowsWithDepth(t *testing.T) {
	ds := tinyDataset(t, false)
	cfg := sageCfg()
	nodes := func(layers int) int {
		c := cfg
		c.Layers = layers
		s := NewSAGE(ds, c)
		s.Step()
		return s.LastBatchNodes
	}
	n1, n2, n3 := nodes(1), nodes(2), nodes(3)
	if !(n3 > 4*n2 && n2 > 4*n1) {
		t.Errorf("explosion missing: L1=%d L2=%d L3=%d", n1, n2, n3)
	}
}

func TestSAGELearns(t *testing.T) {
	ds := tinyDataset(t, false)
	s := NewSAGE(ds, sageCfg())
	first := s.Step()
	var last float64
	for i := 0; i < 40; i++ {
		last = s.Step()
	}
	if last >= first {
		t.Errorf("SAGE loss did not decrease: %.4f -> %.4f", first, last)
	}
	f1 := s.Evaluate(ds.ValIdx)
	if f1 < 0.4 {
		t.Errorf("SAGE val F1 = %.3f after 41 steps; failed to learn", f1)
	}
}

func TestSAGEMultiLabel(t *testing.T) {
	ds := tinyDataset(t, true)
	s := NewSAGE(ds, sageCfg())
	for i := 0; i < 30; i++ {
		s.Step()
	}
	if f1 := s.Evaluate(ds.ValIdx); f1 < 0.3 {
		t.Errorf("SAGE multi-label F1 = %.3f", f1)
	}
	if s.Steps() != 30 {
		t.Errorf("Steps = %d", s.Steps())
	}
}

func TestSAGEInferShape(t *testing.T) {
	ds := tinyDataset(t, false)
	s := NewSAGE(ds, sageCfg())
	logits := s.Infer()
	if logits.Rows != ds.G.NumVertices() || logits.Cols != ds.NumClasses {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestFullBatchLearns(t *testing.T) {
	ds := tinyDataset(t, false)
	fb := NewFullBatch(ds, core.Config{Layers: 2, Hidden: 16, LR: 0.02, Workers: 1, Seed: 9})
	first := fb.Step()
	var last float64
	for i := 0; i < 25; i++ {
		last = fb.Step()
	}
	if last >= first {
		t.Errorf("full-batch loss did not decrease: %.4f -> %.4f", first, last)
	}
	if f1 := fb.Evaluate(ds.ValIdx); f1 < 0.5 {
		t.Errorf("full-batch val F1 = %.3f", f1)
	}
	if fb.Steps() != 26 {
		t.Errorf("Steps = %d", fb.Steps())
	}
}

func TestFastGCNRunsAndImproves(t *testing.T) {
	ds := tinyDataset(t, false)
	f := NewFastGCN(ds, sageCfg(), 200)
	first := f.Step()
	var last float64
	for i := 0; i < 40; i++ {
		last = f.Step()
	}
	if last >= first {
		t.Errorf("FastGCN loss did not decrease: %.4f -> %.4f", first, last)
	}
	if f1 := f.Evaluate(ds.ValIdx); f1 < 0.3 {
		t.Errorf("FastGCN val F1 = %.3f", f1)
	}
	if f.Steps() != 41 {
		t.Errorf("Steps = %d", f.Steps())
	}
}

func TestFastGCNLayerSizeClamped(t *testing.T) {
	ds := tinyDataset(t, false)
	f := NewFastGCN(ds, sageCfg(), 10_000_000)
	if f.LayerSize != ds.G.NumVertices() {
		t.Errorf("LayerSize = %d, want clamped %d", f.LayerSize, ds.G.NumVertices())
	}
	f2 := NewFastGCN(ds, sageCfg(), 0)
	if f2.LayerSize <= 0 {
		t.Error("default LayerSize not set")
	}
}

func TestFastGCNPreprocessingDistribution(t *testing.T) {
	ds := tinyDataset(t, false)
	f := NewFastGCN(ds, sageCfg(), 100)
	sum := 0.0
	for _, p := range f.probs {
		if p < 0 {
			t.Fatal("negative probability")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestSAGEDeterministic(t *testing.T) {
	ds := tinyDataset(t, false)
	run := func() []float64 {
		s := NewSAGE(ds, sageCfg())
		var out []float64
		for i := 0; i < 3; i++ {
			out = append(out, s.Step())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SAGE not deterministic at step %d", i)
		}
	}
}

func BenchmarkSAGEStep(b *testing.B) {
	ds := tinyDataset(b, false)
	s := NewSAGE(ds, sageCfg())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
