package baseline

import (
	"sort"

	"gsgcn/internal/datasets"
	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/nn"
	"gsgcn/internal/rng"
)

// FastGCN is the node-based layer-sampling comparator (Chen et al.,
// ICLR'18): each layer independently samples a fixed set of nodes
// from a degree-proportional importance distribution computed once in
// a preprocessing pass; inter-layer edges are then reconstructed
// between consecutive sampled sets with importance-weight
// normalization. This mitigates neighbor explosion (layer sizes are
// constant) at the cost of sparse inter-layer connectivity — the
// accuracy trade-off the paper describes in Section II-A.
type FastGCN struct {
	DS  *datasets.Dataset
	Cfg SAGEConfig // reuses Layers/Hidden/Batch/LR/Seed/Workers
	// LayerSize is the number of nodes sampled per hidden layer.
	LayerSize int

	wSelf, wNeigh []*nn.Param
	head          *nn.Dense
	loss          nn.Loss
	opt           *nn.Adam
	r             *rng.RNG
	probs         []float64 // degree-proportional sampling distribution (preprocessing)
	cum           []float64
	steps         int
}

// NewFastGCN builds the trainer, running the preprocessing pass that
// computes the importance distribution.
func NewFastGCN(ds *datasets.Dataset, cfg SAGEConfig, layerSize int) *FastGCN {
	cfg = cfg.withDefaults()
	if layerSize <= 0 {
		layerSize = 2 * cfg.Batch
	}
	if layerSize > ds.G.NumVertices() {
		layerSize = ds.G.NumVertices()
	}
	r := rng.NewStream(cfg.Seed, 0xFA57)
	f := &FastGCN{DS: ds, Cfg: cfg, LayerSize: layerSize, r: r, opt: nn.NewAdam(cfg.LR)}
	in := ds.FeatureDim()
	for l := 0; l < cfg.Layers; l++ {
		ws := nn.NewParam("fast_w_self", in, cfg.Hidden)
		wn := nn.NewParam("fast_w_neigh", in, cfg.Hidden)
		ws.GlorotInit(r)
		wn.GlorotInit(r)
		f.wSelf = append(f.wSelf, ws)
		f.wNeigh = append(f.wNeigh, wn)
		in = 2 * cfg.Hidden
	}
	f.head = nn.NewDense(in, ds.NumClasses, r)
	if ds.MultiLabel {
		f.loss = nn.SigmoidBCE{}
	} else {
		f.loss = nn.SoftmaxCE{}
	}
	// Preprocessing: q(v) ∝ deg(v)+1 (the +1 keeps isolated vertices
	// reachable), normalized.
	n := ds.G.NumVertices()
	f.probs = make([]float64, n)
	f.cum = make([]float64, n+1)
	total := 0.0
	for v := 0; v < n; v++ {
		f.probs[v] = float64(ds.G.Degree(int32(v)) + 1)
		total += f.probs[v]
	}
	for v := 0; v < n; v++ {
		f.probs[v] /= total
		f.cum[v+1] = f.cum[v] + f.probs[v]
	}
	return f
}

// Params returns all trainable parameters.
func (f *FastGCN) Params() []*nn.Param {
	var ps []*nn.Param
	for l := range f.wSelf {
		ps = append(ps, f.wSelf[l], f.wNeigh[l])
	}
	ps = append(ps, f.head.Params()...)
	return ps
}

// Steps returns the number of updates performed.
func (f *FastGCN) Steps() int { return f.steps }

func (f *FastGCN) sampleLayer() []int32 {
	out := make([]int32, f.LayerSize)
	for i := range out {
		x := f.r.Float64()
		out[i] = int32(sort.SearchFloat64s(f.cum[1:], x))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Step performs one FastGCN minibatch update and returns the loss.
// The forward pass runs over the L sampled layers plus the batch
// targets at the top; aggregation between consecutive layers uses the
// subgraph of original edges between the two sampled sets, normalized
// by the number of connected sampled neighbors (falling back to the
// self feature when a node has none — the sparse-connectivity
// failure mode).
func (f *FastGCN) Step() float64 {
	cfg := f.Cfg
	train := f.DS.TrainIdx
	b := cfg.Batch
	if b > len(train) {
		b = len(train)
	}
	layers := make([][]int32, cfg.Layers+1)
	layers[cfg.Layers] = make([]int32, b)
	for i := range layers[cfg.Layers] {
		layers[cfg.Layers][i] = train[f.r.Intn(len(train))]
	}
	for l := 0; l < cfg.Layers; l++ {
		layers[l] = f.sampleLayer()
	}

	g := f.DS.G
	// adj[l][i] lists indices (into layers[l-1]) of sampled lower
	// neighbors of layers[l][i].
	type lvl struct {
		h, z, agg *mat.Dense
		adj       [][]int32
	}
	lv := make([]lvl, cfg.Layers+1)
	h0 := mat.New(len(layers[0]), f.DS.FeatureDim())
	for i, v := range layers[0] {
		copy(h0.Row(i), f.DS.Features.Row(int(v)))
	}
	lv[0].h = h0
	for l := 1; l <= cfg.Layers; l++ {
		lower := layers[l-1]
		pos := make(map[int32][]int32, len(lower))
		for i, v := range lower {
			pos[v] = append(pos[v], int32(i))
		}
		upper := layers[l]
		adj := make([][]int32, len(upper))
		for i, v := range upper {
			for _, u := range g.Neighbors(v) {
				adj[i] = append(adj[i], pos[u]...)
			}
			// Self connection: if v itself was sampled below, link it.
			adj[i] = append(adj[i], pos[v]...)
		}
		lv[l].adj = adj

		hPrev := lv[l-1].h
		fin := hPrev.Cols
		nUp := len(upper)
		agg := mat.New(nUp, fin)
		self := mat.New(nUp, fin)
		for i, v := range upper {
			// Self features come from the full feature store for the
			// top layer and from sampled positions otherwise; using
			// the full store keeps the estimator unbiased for selves.
			if l == 1 {
				copy(self.Row(i), f.DS.Features.Row(int(v)))
			} else {
				// Mean of matching sampled rows, or zeros.
				if ps := pos[v]; len(ps) > 0 {
					inv := 1 / float64(len(ps))
					for _, p := range ps {
						mat.Axpy(self.Row(i), hPrev.Row(int(p)), inv)
					}
				}
			}
			if len(adj[i]) > 0 {
				inv := 1 / float64(len(adj[i]))
				for _, p := range adj[i] {
					mat.Axpy(agg.Row(i), hPrev.Row(int(p)), inv)
				}
			}
		}
		zs := mat.New(nUp, cfg.Hidden)
		zn := mat.New(nUp, cfg.Hidden)
		mat.Mul(zs, self, f.wSelf[l-1].W, cfg.Workers)
		mat.Mul(zn, agg, f.wNeigh[l-1].W, cfg.Workers)
		z := mat.New(nUp, 2*cfg.Hidden)
		mat.ConcatCols(z, zs, zn)
		lv[l].z = z
		lv[l].agg = agg
		out := mat.New(nUp, 2*cfg.Hidden)
		mat.Apply(out, z, func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		})
		lv[l].h = out
		_ = self
	}

	ctx := &nn.Ctx{Q: 1, Workers: cfg.Workers}
	logits := f.head.Forward(ctx, lv[cfg.Layers].h)
	labels := mat.New(logits.Rows, f.DS.NumClasses)
	for i, v := range layers[cfg.Layers] {
		copy(labels.Row(i), f.DS.Labels.Row(int(v)))
	}
	dLogits := mat.New(logits.Rows, logits.Cols)
	loss := f.loss.Eval(logits, labels, nil, dLogits)

	for _, p := range f.Params() {
		p.ZeroGrad()
	}
	// Truncated backward: weight gradients at every layer via the
	// cached activations, input gradients propagated through the
	// sampled adjacency (FastGCN's estimator).
	d := f.head.Backward(ctx, dLogits)
	for l := cfg.Layers; l >= 1; l-- {
		z := lv[l].z
		nUp := z.Rows
		dZ := mat.New(nUp, 2*cfg.Hidden)
		for i, zv := range z.Data {
			if zv > 0 {
				dZ.Data[i] = d.Data[i]
			}
		}
		dZs := mat.New(nUp, cfg.Hidden)
		dZn := mat.New(nUp, cfg.Hidden)
		mat.SplitCols(dZs, dZn, dZ)
		hPrev := lv[l-1].h
		fin := hPrev.Cols
		// Weight grads; the self matrix is recomputed cheaply for l=1
		// only (feature gather), otherwise approximated by agg like
		// FastGCN's simplified estimator.
		dw := mat.New(fin, cfg.Hidden)
		mat.MulAT(dw, lv[l].agg, dZn, cfg.Workers)
		mat.AddScaled(f.wNeigh[l-1].Grad, dw, 1)
		mat.MulAT(dw, lv[l].agg, dZs, cfg.Workers)
		mat.AddScaled(f.wSelf[l-1].Grad, dw, 1)
		// Input grads through the sampled adjacency.
		dAgg := mat.New(nUp, fin)
		mat.MulBT(dAgg, dZn, f.wNeigh[l-1].W, cfg.Workers)
		dPrev := mat.New(hPrev.Rows, fin)
		for i, nb := range lv[l].adj {
			if len(nb) == 0 {
				continue
			}
			inv := 1 / float64(len(nb))
			for _, p := range nb {
				mat.Axpy(dPrev.Row(int(p)), dAgg.Row(i), inv)
			}
		}
		d = dPrev
	}
	f.opt.Step(f.Params())
	f.steps++
	return loss
}

// Evaluate returns micro-F1 over idx using exact full-graph
// inference (no sampling), like the SAGE baseline.
func (f *FastGCN) Evaluate(idx []int32) float64 {
	logits := f.Infer()
	var pred *mat.Dense
	if f.DS.MultiLabel {
		pred = nn.PredictMulti(logits)
	} else {
		pred = nn.PredictSingle(logits)
	}
	rows := make([]int, len(idx))
	for i, v := range idx {
		rows[i] = int(v)
	}
	return nn.F1Micro(pred, f.DS.Labels, rows)
}

// Infer computes full-graph logits with exact aggregation.
func (f *FastGCN) Infer() *mat.Dense {
	g := f.DS.G
	cfg := f.Cfg
	h := f.DS.Features.Clone()
	for l := 0; l < cfg.Layers; l++ {
		n := g.NumVertices()
		fin := h.Cols
		neigh := mat.New(n, fin)
		aggregateExact(neigh, h, g)
		zs := mat.New(n, cfg.Hidden)
		zn := mat.New(n, cfg.Hidden)
		mat.Mul(zs, h, f.wSelf[l].W, cfg.Workers)
		mat.Mul(zn, neigh, f.wNeigh[l].W, cfg.Workers)
		z := mat.New(n, 2*cfg.Hidden)
		mat.ConcatCols(z, zs, zn)
		mat.Apply(z, z, func(x float64) float64 {
			if x > 0 {
				return x
			}
			return 0
		})
		h = z
	}
	ctx := &nn.Ctx{Q: 1, Workers: cfg.Workers}
	return f.head.Forward(ctx, h)
}

// aggregateExact computes the exact mean aggregation used by
// inference paths in this package.
func aggregateExact(dst, src *mat.Dense, g *graph.CSR) {
	for v := 0; v < g.N; v++ {
		nb := g.Neighbors(int32(v))
		if len(nb) == 0 {
			continue
		}
		drow := dst.Row(v)
		inv := 1 / float64(len(nb))
		for _, u := range nb {
			mat.Axpy(drow, src.Row(int(u)), inv)
		}
	}
}
