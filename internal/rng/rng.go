// Package rng provides fast, deterministic pseudo-random number
// generation for the sampling and data-generation subsystems.
//
// The generators are xoshiro256++ instances seeded via splitmix64,
// following the reference constructions by Blackman and Vigna. Each
// worker goroutine owns a private *RNG, so no locking is required on
// the hot sampling path (the paper's Dashboard sampler issues one
// random probe per popped vertex and cannot afford a shared lock).
//
// All generators in this repository are seeded explicitly so that
// experiments and tests are reproducible run-to-run.
package rng

import "math"

// splitmix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is used only for seeding xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256++ pseudo-random generator. The zero value is not
// usable; construct instances with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator deterministically derived from seed. Two
// generators created with the same seed produce identical sequences.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A xoshiro state of all zeros is invalid (the sequence would be
	// constant zero). splitmix64 cannot produce four zeros from any
	// seed, but guard anyway so the invariant is local.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// NewStream returns the id-th independent stream derived from seed.
// Streams with distinct ids are statistically independent; the
// derivation is stable so (seed, id) always yields the same stream.
func NewStream(seed uint64, id int) *RNG {
	sm := seed
	base := splitmix64(&sm)
	return New(base ^ (0x9e3779b97f4a7c15 * (uint64(id) + 1)))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids the modulo bias of
// the naive construction while issuing (almost always) one multiply.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of
// precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method. The method needs no tables and its branch
// behaviour is friendly to the data-generation loops that call it.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct integers drawn uniformly from [0, n)
// without replacement. It panics if k > n or k < 0. For small k
// relative to n it uses Floyd's algorithm (O(k) expected) and falls
// back to a partial Fisher-Yates otherwise.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	if k == 0 {
		return nil
	}
	if k*4 <= n {
		// Floyd's algorithm.
		chosen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for j := n - k; j < n; j++ {
			t := r.Intn(j + 1)
			if _, dup := chosen[t]; dup {
				t = j
			}
			chosen[t] = struct{}{}
			out = append(out, t)
		}
		return out
	}
	p := r.Perm(n)
	return p[:k]
}

// Exponential returns an exponentially distributed variate with the
// given rate parameter lambda (> 0).
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exponential with non-positive lambda")
	}
	return -math.Log(1-r.Float64()) / lambda
}

// Geometric returns a geometrically distributed count of failures
// before the first success with success probability p in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric with p out of (0,1]")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}
