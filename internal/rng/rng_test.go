package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a, b := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 produced %d/100 identical outputs", same)
	}
}

func TestStreamStable(t *testing.T) {
	a, b := NewStream(7, 3), NewStream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("stream (7,3) not reproducible at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const trials = 200000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(17)
	for _, tc := range []struct{ n, k int }{
		{10, 0}, {10, 1}, {10, 3}, {10, 10}, {1000, 5}, {1000, 900},
	} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d items", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid: %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleCoverage(t *testing.T) {
	// Every element of [0,n) must be reachable by Sample.
	r := New(19)
	const n, k = 20, 5
	hit := make([]bool, n)
	for i := 0; i < 2000; i++ {
		for _, v := range r.Sample(n, k) {
			hit[v] = true
		}
	}
	for i, h := range hit {
		if !h {
			t.Errorf("element %d never sampled", i)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(23)
	const p, trials = 0.25, 100000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / trials
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(29)
	const lambda, trials = 2.0, 100000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += r.Exponential(lambda)
	}
	mean := sum / trials
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Errorf("exponential mean = %v, want ~%v", mean, 1/lambda)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(31)
	f := func(n uint16) bool {
		m := int(n)%1000 + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickPermProperty(t *testing.T) {
	r := New(37)
	f := func(n uint8) bool {
		m := int(n) % 64
		p := r.Perm(m)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == m*(m-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
