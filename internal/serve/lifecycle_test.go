package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestBatcherCloseSubmitRace is the close-race regression test: any
// number of goroutines hammering Embed/Predict while close() fires —
// repeatedly, from several goroutines at once — must end with every
// in-flight request answered (a result or errClosed, never a hang)
// and no panic on double close. Run under -race this also proves the
// closed-flag/done-channel handoff is properly ordered.
func TestBatcherCloseSubmitRace(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")

	for round := 0; round < 8; round++ {
		eng := NewEngine(ds, Options{Workers: 2})
		if _, err := eng.Install(m); err != nil {
			t.Fatal(err)
		}
		b := newBatcher(eng, 8)

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					var err error
					if g%2 == 0 {
						_, _, err = b.Embed(context.Background(), []int{(g + i) % 300})
					} else {
						_, _, err = b.Predict(context.Background(), []int{(g + i) % 300})
					}
					if err != nil && err != errClosed {
						t.Errorf("submit during close: %v", err)
						return
					}
					if err == errClosed {
						return
					}
				}
			}(g)
		}
		// Two goroutines race the close itself: it must be idempotent.
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				b.close()
			}()
		}
		close(start)
		wg.Wait()

		// After close, every submit fails fast with errClosed.
		if _, _, err := b.Embed(context.Background(), []int{0}); err != errClosed {
			t.Fatalf("post-close Embed err = %v, want errClosed", err)
		}
		if _, _, err := b.Predict(context.Background(), []int{0}); err != errClosed {
			t.Fatalf("post-close Predict err = %v, want errClosed", err)
		}
	}
}

// TestStrictVertexIDParsing pins the one-parser contract: every
// surface form strconv.Atoi would have quietly accepted (signs,
// spaces, huge tokens) is a 400 with the same error body on /embed,
// /predict and /topk — and identically on a single-process server and
// a sharded router, so malformed requests cannot distinguish the two
// deployments.
func TestStrictVertexIDParsing(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	srv := NewServer(ds, Options{Workers: 1})
	defer srv.Close()
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	rt := newTestRouter(t, Options{Workers: 1}, 2, 5, ckpt)
	defer rt.Close()
	srvTS := httptest.NewServer(srv)
	defer srvTS.Close()
	rtTS := httptest.NewServer(rt)
	defer rtTS.Close()

	// Each id token below is pre-escaped for a URL query: %2B is "+",
	// %20 a space. wantTok is the token as the parser sees it after
	// query decoding, named in the uniform error body.
	rejected := []struct{ raw, wantTok string }{
		{"%2B3", "+3"},                 // explicit plus sign (Atoi accepts this)
		{"-1", "-1"},                   // sign, even for a "valid" number
		{"%203", " 3"},                 // leading space
		{"3%20", "3 "},                 // trailing space
		{"", ""},                       // empty token (ids=5,,7 style)
		{"0x1f", "0x1f"},               // hex
		{"1e2", "1e2"},                 // scientific notation
		{"12345678901", "12345678901"}, // longer than any valid id
		{"nope", "nope"},
	}
	endpoints := []struct{ name, path string }{
		{"embed", "/embed?ids="},
		{"predict", "/predict?ids="},
		{"topk", "/topk?k=3&id="},
	}
	for _, tok := range rejected {
		raw, err := json.Marshal(errorBody{
			Error: fmt.Sprintf("serve: bad vertex id %q (want plain decimal digits)", tok.wantTok),
		})
		if err != nil {
			t.Fatal(err)
		}
		wantBody := string(raw)
		for _, ep := range endpoints {
			for _, deploy := range []struct {
				name string
				url  string
			}{{"server", srvTS.URL}, {"router", rtTS.URL}} {
				t.Run(fmt.Sprintf("%s-%s-%q", deploy.name, ep.name, tok.wantTok), func(t *testing.T) {
					code, body := get(t, deploy.url+ep.path+tok.raw)
					// A fully empty parameter reads as missing — a
					// different (also uniform) message per endpoint.
					if tok.wantTok == "" {
						if code != 400 || !strings.Contains(string(body), "missing id") {
							t.Fatalf("= %d %s", code, body)
						}
						return
					}
					if code != 400 {
						t.Fatalf("status = %d, want 400 (body %s)", code, body)
					}
					if strings.TrimSpace(string(body)) != wantBody {
						t.Fatalf("body = %s, want %s", body, wantBody)
					}
				})
			}
		}
	}

	// Digits-only forms stay accepted, leading zeros included.
	for _, ok := range []string{"3", "003", "0"} {
		for _, base := range []string{srvTS.URL, rtTS.URL} {
			if code, body := get(t, base+"/embed?ids="+ok); code != 200 {
				t.Errorf("ids=%s = %d %s, want 200", ok, code, body)
			}
		}
	}
}
