package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/obs"
)

// Registry serves N independent models from one process. Each model
// is a full single-model Server — its own Engine, checkpoint,
// optional warm-start artifact, ANN configuration, micro-batcher and
// snapshot/reload lifecycle — keyed by name and reached as
// /models/{name}/embed|predict|topk|healthz|reload. The unprefixed
// PR 2–4 routes keep working against a configured default model and
// are byte-compatible with a single-model process: the registry
// dispatches them to the default model's own handlers untouched.
//
// Isolation is per model by construction: nothing is shared between
// engines except (read-only) datasets, so one model's reload —
// successful or failing — can neither block nor alter another
// model's answers, and every single-model guarantee (bit-determinism
// of answers, atomic hot reload that never drops in-flight requests)
// carries over unchanged. The registry concurrency suite enforces
// this.
//
// Memory is shared where it provably cannot affect answers: Add
// fingerprints each dataset's content (core.DataFingerprint — graph
// structure, feature bits, label regime) and models registered over
// identical data serve from one in-memory graph and feature table.
type Registry struct {
	mu     sync.RWMutex
	models map[string]ModelServer
	order  []string // registration order, for stable listings
	def    string

	// data dedupes registered datasets by content fingerprint;
	// dataFP memoizes the fingerprint per already-seen instance so
	// registering N models over the same *Dataset pointer hashes its
	// content once, not N times.
	data   map[uint64]*datasets.Dataset
	dataFP map[*datasets.Dataset]uint64

	// obs is the shared metrics registry every registered model
	// reports into, each under its own model label; the registry's
	// own endpoints report under model="". /metrics renders the whole
	// thing, /models/{name}/metrics one model's rows.
	obs       *obs.Registry
	accessLog *obs.Logger
	inst      *modelMetrics
}

// ModelServer is what the registry requires of one registered model:
// the full HTTP surface plus the lifecycle and status hooks. Both the
// single-engine Server and the sharded Router implement it, so a
// registry can mix unsharded and sharded models freely — the
// dispatch, health listing and fleet reload code never distinguish
// them.
type ModelServer interface {
	http.Handler
	Load(path string) (uint64, error)
	Reload() (uint64, error)
	CheckpointPath() string
	Close()
	health() healthBody
	modelInfo() modelInfo
	instruments() *modelMetrics

	// The wire-native query paths (see wire.go): the binary transport
	// dispatches straight to these, bypassing HTTP parsing but running
	// the same admission gate, deadline bound and micro-batcher.
	wireEmbed(ctx context.Context, ids []int) (*EmbedResult, error)
	wirePredict(ctx context.Context, ids []int) (*PredictResult, error)
	wireTopK(q topkQuery, kSet bool) (*TopKResult, error)
}

// modelInfo is the configuration summary a ModelServer reports for
// the registry's status surface (everything health() doesn't cover).
type modelInfo struct {
	artifact   string
	annDefault bool
	index      string // "built" | "lazy" | "none"
	shards     int    // 0 = unsharded
}

// NewRegistry returns an empty registry. Add at least one model and
// set (or default) a default before serving legacy routes.
func NewRegistry() *Registry {
	r := &Registry{
		models: make(map[string]ModelServer),
		data:   make(map[uint64]*datasets.Dataset),
		dataFP: make(map[*datasets.Dataset]uint64),
		obs:    obs.NewRegistry(),
	}
	r.inst = newModelMetrics(r.obs, "", nil, []string{"/models", "/metrics"})
	return r
}

// Metrics returns the shared metrics registry every registered model
// reports into (rendered by GET /metrics).
func (r *Registry) Metrics() *obs.Registry { return r.obs }

// SetAccessLog wires a structured request logger: every model added
// afterwards (and the registry's own endpoints) emits one JSON line
// per request through it, sharing one monotonic request-id space.
// Call before Add/AddSharded and before serving traffic.
func (r *Registry) SetAccessLog(l *obs.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.accessLog = l
	r.inst.log = l
}

// observe points a model's options at the registry's shared metrics
// registry and access logger, labeling its series by model name.
func (r *Registry) observe(name string, opts Options) Options {
	opts.Obs = r.obs
	opts.ModelName = name
	r.mu.RLock()
	opts.AccessLog = r.accessLog
	r.mu.RUnlock()
	return opts
}

// validModelName reports whether name can appear as a path segment:
// nonempty, no slashes, none of the reserved spellings.
func validModelName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, "/\\ \t\n?#%")
}

// Add registers a model: a fresh single-model Server over ds with its
// own options. The first model added becomes the default until
// SetDefault says otherwise. When ds has the same content fingerprint
// as an earlier model's dataset, the earlier (identical) in-memory
// dataset is shared instead — embeddings are a pure function of
// (weights, graph, features), so sharing bit-equal data can never
// change an answer, and a fleet of models trained on one graph costs
// one graph's memory. No checkpoint is loaded yet; call Load on the
// returned server.
func (r *Registry) Add(name string, ds *datasets.Dataset, opts Options) (*Server, error) {
	opts = r.observe(name, opts)
	var srv *Server
	err := r.register(name, ds, func(ds *datasets.Dataset) (ModelServer, error) {
		srv = NewServer(ds, opts)
		return srv, nil
	})
	if err != nil {
		return nil, err
	}
	return srv, nil
}

// AddSharded registers a sharded model: a Router scatter-gathering
// over `shards` shard engines whose vertex ownership is keyed by
// seed. Everything Add does — name validation, dataset dedup, default
// election — applies identically; the registered model additionally
// serves the /shards operations (see Router).
func (r *Registry) AddSharded(name string, ds *datasets.Dataset, opts Options, shards int, seed uint64) (*Router, error) {
	opts = r.observe(name, opts)
	var rt *Router
	err := r.register(name, ds, func(ds *datasets.Dataset) (ModelServer, error) {
		var err error
		rt, err = NewRouter(ds, opts, shards, seed)
		return rt, err
	})
	if err != nil {
		return nil, err
	}
	return rt, nil
}

// register is the shared Add/AddSharded body: validate the name,
// dedupe the dataset by content fingerprint, build the model server
// over the (possibly shared) dataset, and wire it into the listings.
func (r *Registry) register(name string, ds *datasets.Dataset, build func(*datasets.Dataset) (ModelServer, error)) error {
	if !validModelName(name) {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	fp, seen := r.dataFP[ds]
	if !seen {
		fp = core.DataFingerprint(ds)
		r.dataFP[ds] = fp
	}
	if shared, ok := r.data[fp]; ok {
		ds = shared
	} else {
		r.data[fp] = ds
	}
	srv, err := build(ds)
	if err != nil {
		return err
	}
	r.models[name] = srv
	r.order = append(r.order, name)
	if r.def == "" {
		r.def = name
	}
	return nil
}

// SetDefault names the model behind the unprefixed legacy routes.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	r.def = name
	return nil
}

// Default returns the name of the model behind the legacy routes
// (empty while the registry is empty).
func (r *Registry) Default() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Get returns the named model's server.
func (r *Registry) Get(name string) (ModelServer, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	srv, ok := r.models[name]
	return srv, ok
}

// Names returns the registered model names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Close stops every model's micro-batch dispatcher.
func (r *Registry) Close() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, srv := range r.models {
		srv.Close()
	}
}

// ReloadAll reloads every registered model from its last loaded
// checkpoint, sequentially in registration order, and keeps going
// past failures: one model's unreadable or corrupt checkpoint must
// not leave the rest of the fleet serving stale weights. The returned
// map carries one entry per failed model (empty means the whole fleet
// advanced); a failing model's serving snapshot stays exactly as it
// was — the single-model reload guarantee, aggregated.
func (r *Registry) ReloadAll() map[string]error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	servers := make([]ModelServer, len(names))
	for i, n := range names {
		servers[i] = r.models[n]
	}
	r.mu.RUnlock()
	failures := make(map[string]error)
	for i, n := range names {
		if _, err := servers[i].Reload(); err != nil {
			failures[n] = err
		}
	}
	return failures
}

// modelStatus is one model's entry in the /models listing and the
// body of /models/{name}/healthz: the per-model health surface. It
// embeds the legacy healthBody — assembled by the same Server.health
// the unprefixed /healthz serves — so the extended body is a field
// superset of the legacy one by construction, and adds what only the
// registry knows: the name, default flag, configured sources, and
// index residency. Every field is read from the model's current
// serving snapshot at request time, so it reflects the most recent
// successful reload, not the initial load.
type modelStatus struct {
	Name       string `json:"name"`
	Default    bool   `json:"default"`
	Checkpoint string `json:"checkpoint,omitempty"`
	Artifact   string `json:"artifact,omitempty"`
	healthBody
	ANNDefault bool   `json:"ann_default"`
	Index      string `json:"index"` // "built" | "lazy" | "none"
	// Shards is the model's shard count; absent for unsharded models,
	// so pre-sharding listings are byte-identical.
	Shards int `json:"shards,omitempty"`
}

// statusFor assembles the live status of one registered model.
func (r *Registry) statusFor(name string, srv ModelServer) modelStatus {
	info := srv.modelInfo()
	return modelStatus{
		Name:       name,
		Default:    name == r.Default(),
		Checkpoint: srv.CheckpointPath(),
		Artifact:   info.artifact,
		healthBody: srv.health(),
		ANNDefault: info.annDefault,
		Index:      info.index,
		Shards:     info.shards,
	}
}

// listBody is the GET /models response.
type listBody struct {
	Default string        `json:"default"`
	Models  []modelStatus `json:"models"`
}

// handleList answers GET /models with every model's live status.
func (r *Registry) handleList(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeErr(w, fmt.Errorf("%w: %s", errMethod, req.Method))
		return
	}
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	servers := make([]ModelServer, len(names))
	for i, n := range names {
		servers[i] = r.models[n]
	}
	r.mu.RUnlock()
	body := listBody{Default: r.Default(), Models: make([]modelStatus, 0, len(names))}
	for i, n := range names {
		body.Models = append(body.Models, r.statusFor(n, servers[i]))
	}
	sort.SliceStable(body.Models, func(i, j int) bool { return body.Models[i].Name < body.Models[j].Name })
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the global scrape: every family and series in
// the shared registry, across all models and the registry itself.
func (r *Registry) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeErr(w, fmt.Errorf("%w: %s", errMethod, req.Method))
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	_ = r.obs.WriteText(w)
}

// ServeHTTP routes requests: /models lists, /metrics is the global
// scrape (all models' rows — the per-model view is
// /models/{name}/metrics), /models/{name}/… hits the named model, and
// anything else is the legacy single-model surface and goes to the
// default model's own mux byte-for-byte. Every branch runs under an
// obs middleware: model-addressed requests under the model's own
// instruments, registry-level ones (listing, global scrape, unknown
// names) under the registry's.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	// The /v1 prefix is a spelling, not a route: fold it away once and
	// dispatch the canonical path (model muxes fold their own copy, so
	// the legacy fallthrough passes the request untouched).
	path := stripV1(req.URL.Path)
	if path == "/models" || path == "/models/" {
		r.inst.serve("/models", http.HandlerFunc(r.handleList), w, req)
		return
	}
	if path == "/metrics" {
		r.inst.serve("/metrics", http.HandlerFunc(r.handleMetrics), w, req)
		return
	}
	if rest, ok := strings.CutPrefix(path, "/models/"); ok {
		name, sub, _ := strings.Cut(rest, "/")
		srv, found := r.Get(name)
		if !found {
			r.inst.serve(epOther, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("serve: unknown model %q", name)})
			}), w, req)
			return
		}
		if sub == "" || sub == "healthz" {
			// Per-model health: the extended status body (a superset of
			// the legacy /healthz fields, plus index residency), also
			// served at the bare /models/{name}. Billed to the model's
			// /healthz endpoint — it is that model's health surface.
			srv.instruments().serve("/healthz", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if req.Method != http.MethodGet {
					writeErr(w, fmt.Errorf("%w: %s", errMethod, req.Method))
					return
				}
				writeJSON(w, http.StatusOK, r.statusFor(name, srv))
			}), w, req)
			return
		}
		for _, e := range perModelEndpoints {
			if e.Pattern == "/"+sub {
				// Hand the request to the model's own mux under the
				// unprefixed spelling; a shallow copy keeps the caller's
				// request (and its URL) untouched.
				req2 := new(http.Request)
				*req2 = *req
				u2 := *req.URL
				u2.Path = e.Pattern
				req2.URL = &u2
				srv.ServeHTTP(w, req2)
				return
			}
		}
		if sub == "shards" || strings.HasPrefix(sub, "shards/") {
			// Shard operations exist only on sharded models; the Router
			// hand-routes the exact sub-path itself.
			if _, sharded := srv.(*Router); !sharded {
				srv.instruments().serve(epOther, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
					writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("serve: model %q is not sharded", name)})
				}), w, req)
				return
			}
			req2 := new(http.Request)
			*req2 = *req
			u2 := *req.URL
			u2.Path = "/" + sub
			req2.URL = &u2
			srv.ServeHTTP(w, req2)
			return
		}
		r.inst.serve(epOther, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("serve: unknown endpoint %q for model %q", sub, name)})
		}), w, req)
		return
	}
	def := r.Default()
	if def == "" {
		r.inst.serve(epOther, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "serve: no models registered"})
		}), w, req)
		return
	}
	srv, _ := r.Get(def)
	srv.ServeHTTP(w, req)
}
