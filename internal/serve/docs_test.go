package serve

import (
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestAPIDocCoversRegisteredRoutes enforces the documentation
// contract both ways: every route the serving process registers must
// appear (in backticks) in docs/API.md, and every route named in an
// API.md section heading must still be registered — so the reference
// can neither lag behind the code nor describe endpoints that no
// longer exist.
func TestAPIDocCoversRegisteredRoutes(t *testing.T) {
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist: %v", err)
	}
	doc := string(raw)

	registered := make(map[string]bool)
	for _, r := range RegisteredRoutes() {
		registered[r.Pattern] = true
		if !strings.Contains(doc, "`"+r.Pattern+"`") {
			t.Errorf("registered route %s %s is not documented in docs/API.md", r.Methods, r.Pattern)
		}
		// The accepted methods must be stated somewhere in the doc for
		// this route's section; a plain mention suffices (e.g. "GET,
		// POST." or a "GET only" note).
		for _, m := range strings.Split(r.Methods, ", ") {
			if !strings.Contains(doc, m) {
				t.Errorf("method %s of route %s never appears in docs/API.md", m, r.Pattern)
			}
		}
	}

	// Reverse direction: routes named in section headings must exist.
	headingRoute := regexp.MustCompile("`(/[^`]*)`")
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, "## ") {
			continue
		}
		for _, m := range headingRoute.FindAllStringSubmatch(line, -1) {
			if !registered[m[1]] {
				t.Errorf("docs/API.md documents %q, which is not a registered route", m[1])
			}
		}
	}
}

// TestRegisteredRoutesComplete cross-checks the route table against
// the live muxes: every per-model endpoint in the table must be
// routable on a Server, and the registry must answer (or cleanly
// reject) both spellings — so the table RegisteredRoutes derives from
// cannot drift from what is actually served.
func TestRegisteredRoutesComplete(t *testing.T) {
	ds := testDataset(t, false)
	srv := NewServer(ds, Options{Workers: 1})
	defer srv.Close()
	for _, e := range perModelEndpoints {
		if srv.handlerFor(e.Pattern) == nil {
			t.Errorf("endpoint %s has no handler", e.Pattern)
		}
		// The mux must route the pattern to our handler, not a 404:
		// http.ServeMux.Handler reports the registered pattern.
		req, err := http.NewRequest("GET", e.Pattern, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, got := srv.mux.Handler(req); got != e.Pattern {
			t.Errorf("mux routes %s to pattern %q", e.Pattern, got)
		}
	}
	// /models + the bare /models/{name} alias + both spellings of
	// every per-model endpoint and every shard operation — then the
	// whole surface again under the /v1 prefix.
	want := 2 * (2 + 2*(len(perModelEndpoints)+len(shardEndpoints)))
	if got := len(RegisteredRoutes()); got != want {
		t.Errorf("RegisteredRoutes lists %d routes, want %d", got, want)
	}
	seen := make(map[string]bool)
	for _, r := range RegisteredRoutes() {
		if seen[r.Pattern] {
			t.Errorf("duplicate route pattern %s", r.Pattern)
		}
		seen[r.Pattern] = true
		if r.Methods == "" {
			t.Errorf("route %s declares no methods", r.Pattern)
		}
	}
	// Every route must come in exactly the two spellings: /v1 canonical
	// and the unprefixed legacy alias.
	for _, r := range RegisteredRoutes() {
		if v1, ok := strings.CutPrefix(r.Pattern, "/v1/"); ok {
			if !seen["/"+v1] {
				t.Errorf("v1 route %s has no legacy alias", r.Pattern)
			}
		} else if !seen["/v1"+r.Pattern] {
			t.Errorf("route %s has no /v1 spelling", r.Pattern)
		}
	}
}
