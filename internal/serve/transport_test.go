package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"gsgcn/internal/wire"
)

// transportFixture is one registry with an unsharded default model
// "a" and a sharded model "s", both loaded — enough surface to reach
// every route class (legacy, /v1, per-model, shard ops).
func transportFixture(t *testing.T) *httptest.Server {
	t.Helper()
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)
	reg := NewRegistry()
	t.Cleanup(reg.Close)
	a, err := reg.Add("a", ds, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := reg.AddSharded("s", ds, Options{Workers: 2}, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	t.Cleanup(ts.Close)
	return ts
}

// fetch issues method url and returns (status, content type, body).
func fetch(tb testing.TB, method, url string, hdr map[string]string) (int, string, []byte) {
	tb.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		tb.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), raw
}

// TestV1RoutesByteIdenticalToLegacy pins the versioning contract from
// docs/API.md: for every route class, the /v1 spelling and the legacy
// alias answer with the same status, content type and body bytes —
// across the registry, its default-model Server and a sharded Router.
// Each pair is issued back-to-back so stateful health counters cannot
// drift between the two spellings.
func TestV1RoutesByteIdenticalToLegacy(t *testing.T) {
	ts := transportFixture(t)
	cases := []struct {
		method, path string
	}{
		{"GET", "/embed?ids=0,1,2"},
		{"GET", "/predict?ids=0,3"},
		{"GET", "/topk?id=1&k=3"},
		{"GET", "/healthz"},
		{"GET", "/models"},
		{"GET", "/models/a"},
		{"GET", "/models/a/embed?ids=0,1"},
		{"GET", "/models/s/embed?ids=0,1"},
		{"GET", "/models/s/topk?id=2&k=2"},
		{"GET", "/models/s/shards"},
		{"GET", "/shards"},                  // 404: default model unsharded
		{"GET", "/models/zzz/embed?ids=0"},  // 404: unknown model
		{"GET", "/embed?ids=abc"},           // 400: bad id
		{"GET", "/nope"},                    // 404: unknown endpoint
		{"GET", "/models/a/nope"},           // 404: unknown sub-endpoint
		{"POST", "/models/s/shards/9/stop"}, // 400: shard index out of range
		{"POST", "/models/s/shards/0/frob"}, // 404: unknown shard op
		{"DELETE", "/embed?ids=0"},          // 405
	}
	for _, c := range cases {
		st1, ct1, b1 := fetch(t, c.method, ts.URL+c.path, nil)
		st2, ct2, b2 := fetch(t, c.method, ts.URL+"/v1"+c.path, nil)
		if st1 != st2 || ct1 != ct2 || !bytes.Equal(b1, b2) {
			t.Errorf("%s %s: legacy (%d %s %q) != /v1 (%d %s %q)",
				c.method, c.path, st1, ct1, b1, st2, ct2, b2)
		}
	}
}

// TestErrorEnvelopeEverywhere sweeps every error-producing layer —
// Server handlers, Router shard ops, Registry dispatch, and the
// mux-level catch-all — asserting the one error contract: a JSON body
// with a non-empty "error" field, served as application/json, with
// the expected status. No plain-text 404s or bare strings anywhere.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	ts := transportFixture(t)
	cases := []struct {
		method, path string
		status       int
	}{
		{"GET", "/nope", 404},
		{"GET", "/v1/nope", 404},
		{"GET", "/nope/deeply/nested", 404},
		{"GET", "/models/zzz", 404},
		{"GET", "/models/zzz/embed?ids=0", 404},
		{"GET", "/models/a/nope", 404},
		{"GET", "/shards", 404},
		{"POST", "/models/s/shards/9/stop", 400},
		{"POST", "/models/s/shards/0/frob", 404},
		{"GET", "/embed", 400},
		{"GET", "/embed?ids=abc", 400},
		{"GET", "/embed?ids=99999", 400},
		{"GET", "/topk?id=1&k=0", 400},
		{"GET", "/topk?id=1&mode=warp", 400},
		{"GET", "/topk?id=1&mode=exact&ef=8", 400},
		{"GET", "/models/s/embed?ids=abc", 400},
		{"DELETE", "/embed?ids=0", 405},
		{"POST", "/topk?id=1", 405},
		{"GET", "/reload", 405},
		{"GET", "/models/s/shards/0/stop", 405},
	}
	for _, c := range cases {
		status, ct, raw := fetch(t, c.method, ts.URL+c.path, nil)
		if status != c.status {
			t.Errorf("%s %s: status %d, want %d (body %q)", c.method, c.path, status, c.status, raw)
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s %s: Content-Type %q, want application/json", c.method, c.path, ct)
		}
		var eb errorBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s %s: body %q is not the error envelope", c.method, c.path, raw)
		}
	}
}

// wireAccept asks for the binary encoding by content negotiation.
var wireAccept = map[string]string{"Accept": wire.ContentType}

// bitsEqual compares float64 matrices by exact IEEE-754 bits — the
// transport-equivalence currency; == would paper over -0 vs 0.
func bitsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestWireNegotiation drives the three query endpoints twice — once
// as JSON, once negotiated to the binary encoding — and asserts the
// decoded wire answer is bit-identical to the JSON one, on both an
// unsharded model and a sharded router behind the registry.
func TestWireNegotiation(t *testing.T) {
	ts := transportFixture(t)
	for _, base := range []string{"", "/models/s"} {
		st, ct, raw := fetch(t, "GET", ts.URL+base+"/embed?ids=0,1,2", wireAccept)
		if st != 200 || ct != wire.ContentType {
			t.Fatalf("%s/embed wire: status %d type %q", base, st, ct)
		}
		msg, _, err := wire.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		we, ok := msg.(*wire.EmbedResponse)
		if !ok {
			t.Fatalf("%s/embed wire: got frame %T", base, msg)
		}
		var je EmbedResult
		if _, _, jraw := fetch(t, "GET", ts.URL+base+"/embed?ids=0,1,2", nil); json.Unmarshal(jraw, &je) != nil {
			t.Fatal("bad JSON embed body")
		}
		if we.Version != je.Version || we.Dim != je.Dim || !reflect.DeepEqual(we.IDs, je.IDs) || !bitsEqual(we.Vectors, je.Vectors) {
			t.Errorf("%s/embed: wire answer differs from JSON", base)
		}

		st, ct, raw = fetch(t, "GET", ts.URL+base+"/predict?ids=0,3", wireAccept)
		if st != 200 || ct != wire.ContentType {
			t.Fatalf("%s/predict wire: status %d type %q", base, st, ct)
		}
		msg, _, err = wire.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		wp, ok := msg.(*wire.PredictResponse)
		if !ok {
			t.Fatalf("%s/predict wire: got frame %T", base, msg)
		}
		var jp PredictResult
		if _, _, jraw := fetch(t, "GET", ts.URL+base+"/predict?ids=0,3", nil); json.Unmarshal(jraw, &jp) != nil {
			t.Fatal("bad JSON predict body")
		}
		if wp.Classes != jp.Classes || wp.MultiLabel != jp.MultiLabel ||
			!reflect.DeepEqual(wp.Labels, jp.Labels) || !bitsEqual(wp.Probs, jp.Probs) {
			t.Errorf("%s/predict: wire answer differs from JSON", base)
		}

		st, ct, raw = fetch(t, "GET", ts.URL+base+"/topk?id=1&k=3", wireAccept)
		if st != 200 || ct != wire.ContentType {
			t.Fatalf("%s/topk wire: status %d type %q", base, st, ct)
		}
		msg, _, err = wire.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		wt, ok := msg.(*wire.TopKResponse)
		if !ok {
			t.Fatalf("%s/topk wire: got frame %T", base, msg)
		}
		var jt TopKResult
		if _, _, jraw := fetch(t, "GET", ts.URL+base+"/topk?id=1&k=3", nil); json.Unmarshal(jraw, &jt) != nil {
			t.Fatal("bad JSON topk body")
		}
		ms, _ := wire.ModeString(wt.Mode)
		if ms != jt.Mode || wt.K != jt.K || len(wt.Neighbors) != len(jt.Neighbors) {
			t.Fatalf("%s/topk: wire shape differs from JSON", base)
		}
		for i, n := range wt.Neighbors {
			if n.ID != jt.Neighbors[i].ID || math.Float64bits(n.Score) != math.Float64bits(jt.Neighbors[i].Score) {
				t.Errorf("%s/topk neighbor %d: wire %v != json %v", base, i, n, jt.Neighbors[i])
			}
		}
	}

	// Errors negotiate too: same status, and the frame carries the
	// exact message and reason the JSON envelope would.
	st, ct, raw := fetch(t, "GET", ts.URL+"/embed?ids=abc", wireAccept)
	if st != 400 || ct != wire.ContentType {
		t.Fatalf("wire error: status %d type %q", st, ct)
	}
	msg, _, err := wire.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	we, ok := msg.(*wire.ErrorResponse)
	if !ok {
		t.Fatalf("wire error: got frame %T", msg)
	}
	var jb errorBody
	if _, _, jraw := fetch(t, "GET", ts.URL+"/embed?ids=abc", nil); json.Unmarshal(jraw, &jb) != nil {
		t.Fatal("bad JSON error body")
	}
	if we.Status != 400 || we.Message != jb.Error || we.Reason != jb.Reason {
		t.Errorf("wire error frame %+v != JSON envelope %+v", we, jb)
	}

	// Control-plane endpoints do not negotiate: /healthz stays JSON
	// even when the client asks for the wire encoding.
	if _, ct, _ := fetch(t, "GET", ts.URL+"/healthz", wireAccept); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/healthz negotiated to %q; control plane must stay JSON", ct)
	}
}
