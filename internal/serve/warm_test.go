package serve

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gsgcn/internal/artifact"
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/mat"
)

// writeTestArtifact builds and persists a snapshot for (ds, m) with
// the engine-default options, returning the artifact path.
func writeTestArtifact(tb testing.TB, ds *datasets.Dataset, m *core.Model, withIndex bool) string {
	tb.Helper()
	snap, err := BuildSnapshot(ds, m, Options{Workers: 2}, withIndex)
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(tb.TempDir(), "m.art")
	if _, err := artifact.WriteFile(path, snap); err != nil {
		tb.Fatal(err)
	}
	return path
}

// TestWarmStartBitIdentical is the tentpole's acceptance test: a
// warm-started snapshot — embedding table, norms and HNSW index loaded
// from a persisted artifact — is bit-identical to a cold-started one
// (same float bytes, same index encoding, same query answers), on a
// >= 2k-vertex graph with trained weights.
func TestWarmStartBitIdentical(t *testing.T) {
	ds := annDataset(t)
	m := core.NewModel(ds, core.Config{
		Layers: 2, Hidden: 16, Workers: 1, Seed: 7,
		FrontierM: 50, Budget: 400, PInter: 1,
	})
	tr := core.NewTrainer(ds, m)
	for i := 0; i < 5; i++ {
		tr.Step()
	}
	path := writeTestArtifact(t, ds, m, true)

	cold := NewEngine(ds, Options{Workers: 2, ANN: true})
	if _, err := cold.Install(m); err != nil {
		t.Fatal(err)
	}
	warm := NewEngine(ds, Options{Workers: 3, ANN: true, ArtifactPath: path})
	if _, err := warm.Install(m); err != nil {
		t.Fatal(err)
	}

	stc, _ := cold.Snapshot()
	stw, _ := warm.Snapshot()
	if stw.WarmStart != true || stw.WarmNote != "" {
		t.Fatalf("warm engine did not warm-start: warm=%v note=%q", stw.WarmStart, stw.WarmNote)
	}
	if stc.WarmStart {
		t.Fatal("cold engine claims a warm start")
	}
	embC, embW := stc.Emb.(*mat.Dense), stw.Emb.(*mat.Dense)
	if embC.Rows != embW.Rows || embC.Cols != embW.Cols {
		t.Fatalf("table shapes differ: %dx%d vs %dx%d", embC.Rows, embC.Cols, embW.Rows, embW.Cols)
	}
	for i := range embC.Data {
		if math.Float64bits(embC.Data[i]) != math.Float64bits(embW.Data[i]) {
			t.Fatalf("embedding element %d differs between cold and warm", i)
		}
	}
	for v := range stc.norms {
		if math.Float64bits(stc.norms[v]) != math.Float64bits(stw.norms[v]) {
			t.Fatalf("norm %d differs between cold and warm", v)
		}
	}

	// The artifact's index must be installed eagerly and be byte-equal
	// to the index the cold engine builds lazily.
	if stw.annIdx.Load() == nil {
		t.Fatal("warm snapshot has no eager index")
	}
	coldIdx := cold.annIndex(stc)
	if !bytes.Equal(coldIdx.EncodeBinary(), stw.annIdx.Load().EncodeBinary()) {
		t.Fatal("loaded index is not byte-equal to a freshly built one")
	}

	// Query answers — both modes — must agree exactly.
	for _, q := range []int{0, 500, 2199} {
		for _, mode := range []string{ModeExact, ModeANN} {
			a, err := cold.TopKWith(q, 10, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, err := warm.TopKWith(q, 10, mode, 0)
			if err != nil {
				t.Fatal(err)
			}
			if a.Mode != b.Mode || len(a.Neighbors) != len(b.Neighbors) {
				t.Fatalf("q=%d mode=%s: shape mismatch", q, mode)
			}
			for i := range a.Neighbors {
				if a.Neighbors[i] != b.Neighbors[i] {
					t.Fatalf("q=%d mode=%s rank %d: cold %+v warm %+v", q, mode, i, a.Neighbors[i], b.Neighbors[i])
				}
			}
		}
		ea, _ := cold.Embed([]int{q})
		eb, _ := warm.Embed([]int{q})
		for j := range ea.Vectors[0] {
			if math.Float64bits(ea.Vectors[0][j]) != math.Float64bits(eb.Vectors[0][j]) {
				t.Fatalf("q=%d: /embed differs at dim %d", q, j)
			}
		}
	}
}

// TestWarmStartFallsBack pins the safety half of the contract: a
// missing, corrupt or mismatched artifact must never change what the
// engine serves — it computes cold, records why, and the result is
// identical to an artifact-free engine.
func TestWarmStartFallsBack(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")
	good := writeTestArtifact(t, ds, m, true)

	check := func(name, path string) {
		t.Helper()
		eng := NewEngine(ds, Options{Workers: 2, ArtifactPath: path})
		if _, err := eng.Install(m); err != nil {
			t.Fatalf("%s: install failed outright: %v", name, err)
		}
		st, _ := eng.Snapshot()
		if st.WarmStart {
			t.Fatalf("%s: engine warm-started from a bad artifact", name)
		}
		if st.WarmNote == "" {
			t.Fatalf("%s: fallback left no note", name)
		}
		if _, err := eng.TopK(0, 5); err != nil {
			t.Fatalf("%s: queries broken after fallback: %v", name, err)
		}
	}

	check("missing", filepath.Join(t.TempDir(), "absent.art"))

	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(t.TempDir(), "trunc.art")
	if err := os.WriteFile(truncated, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	check("truncated", truncated)

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/3] ^= 0x10
	flippedPath := filepath.Join(t.TempDir(), "flip.art")
	if err := os.WriteFile(flippedPath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	check("bit-flipped", flippedPath)

	// Version skew: the artifact was built for an older weights
	// generation than the model being installed.
	m.ModelVersion++
	check("model-version-skew", good)
	m.ModelVersion--

	// Retrained weights whose step count collides: ModelVersion and
	// architecture match the artifact exactly, only the weight bits
	// differ — the WeightsSum fingerprint must catch it.
	w := &m.Params()[0].W.Data[0]
	*w += 0.125
	check("same-version-different-weights", good)
	*w -= 0.125

	// Wrong graph: an artifact computed over a different dataset.
	other := datasets.Generate(datasets.Config{
		Name: "other", Vertices: 180, TargetEdges: 720,
		FeatureDim: ds.FeatureDim(), NumClasses: ds.NumClasses, Seed: 99,
	})
	mo := testModel(t, other, 2, "mean")
	check("wrong-graph", writeTestArtifact(t, other, mo, false))
}

// TestWarmReloadReusesUnchangedArtifact checks the reload fast path:
// when the artifact file is unchanged, a reload reuses the in-memory
// tables and index outright (pointer-equal), and a changed-on-disk
// artifact that no longer validates drops back to the cold compute.
func TestWarmReloadReusesUnchangedArtifact(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")
	path := writeTestArtifact(t, ds, m, true)

	eng := NewEngine(ds, Options{Workers: 2, ANN: true, ArtifactPath: path})
	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	st1, _ := eng.Snapshot()
	if !st1.WarmStart || st1.annIdx.Load() == nil {
		t.Fatal("first install did not warm-start with an eager index")
	}

	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	st2, _ := eng.Snapshot()
	if st2 == st1 {
		t.Fatal("reload did not publish a new snapshot")
	}
	if !st2.WarmStart {
		t.Fatal("reload lost the warm start")
	}
	if &st2.Emb.(*mat.Dense).Data[0] != &st1.Emb.(*mat.Dense).Data[0] || st2.annIdx.Load() != st1.annIdx.Load() {
		t.Fatal("reload against an unchanged artifact re-decoded instead of reusing tables")
	}
	if st2.Version <= st1.Version {
		t.Fatalf("reload version %d not beyond %d", st2.Version, st1.Version)
	}

	// Invalidate the artifact on disk: the next reload must notice and
	// fall back to the cold compute (the file no longer matches m).
	other := datasets.Generate(datasets.Config{
		Name: "other", Vertices: ds.G.NumVertices(), TargetEdges: 900,
		FeatureDim: ds.FeatureDim(), NumClasses: ds.NumClasses, Seed: 5,
	})
	mo := testModel(t, other, 2, "mean")
	mo.ModelVersion = 12345
	snap, err := BuildSnapshot(other, mo, Options{Workers: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	st3, _ := eng.Snapshot()
	if st3.WarmStart {
		t.Fatal("reload warm-started from an artifact for the wrong model")
	}
	if st3.WarmNote == "" {
		t.Fatal("mismatch fallback left no note")
	}
}
