package serve

import (
	"fmt"
	"math"

	"gsgcn/internal/ann"
	"gsgcn/internal/artifact"
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/mat"
	"gsgcn/internal/perf"
)

// artifactMetaFor returns the Meta an artifact must carry to stand in
// for a fresh compute over (m, ds): the model's architecture
// fingerprint, a content hash of its trained weights (ModelVersion
// alone is a step count — two trainings can collide on it), and the
// dataset's graph shape. Embeddings are a pure function of (weights,
// graph, features), so equality of this struct is the precondition
// for serving persisted tables.
func artifactMetaFor(m *core.Model, ds *datasets.Dataset) artifact.Meta {
	return artifact.Meta{
		Arch:       m.ArchMeta(),
		WeightsSum: m.WeightsChecksum(),
		Vertices:   ds.G.NumVertices(),
		Edges:      ds.G.NumEdges(),
		FeatureDim: ds.FeatureDim(),
		Dim:        m.EmbeddingDim(),
	}
}

// computeTables runs the cold-start table computation for (m, ds):
// the full-graph embedding pass plus per-vertex cosine norms. It is
// the single implementation behind both Engine.buildState (online
// cold start) and BuildSnapshot (offline artifact production) — the
// warm-start contract that artifacts are bit-identical to a fresh
// compute holds only while both call exactly this code.
func computeTables(m *core.Model, ds *datasets.Dataset, opts Options) (*mat.Dense, []float64) {
	emb := FullEmbeddings(m, ds.G, ds.Features, opts.Workers, opts.BlockSize)
	norms := make([]float64, emb.Rows)
	perf.ParallelMin(emb.Rows, 64, opts.Workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := emb.Row(v)
			norms[v] = math.Sqrt(mat.Dot(row, row))
		}
	})
	return emb, norms
}

// BuildSnapshot computes the serving tables offline — exactly the
// arithmetic Engine.Install runs on a cold start — and packages them
// as an artifact snapshot: the full-graph embedding table, its cosine
// norms and, when withIndex is set, the deterministic HNSW index
// built with the same parameters the engine's lazy path would use.
// Both computations are bit-deterministic, so a snapshot written by
// cmd/gsgcn-index and loaded by a server is byte-equal to what that
// server would have computed itself.
func BuildSnapshot(ds *datasets.Dataset, m *core.Model, opts Options, withIndex bool) (*artifact.Snapshot, error) {
	opts = opts.withDefaults()
	if got, want := m.Layers[0].InDim, ds.FeatureDim(); got != want {
		return nil, fmt.Errorf("serve: model expects %d input features, dataset has %d", got, want)
	}
	if got, want := m.Head.OutDim, ds.NumClasses; got != want {
		return nil, fmt.Errorf("serve: model predicts %d classes, dataset has %d", got, want)
	}
	emb, norms := computeTables(m, ds, opts)
	snap := &artifact.Snapshot{Meta: artifactMetaFor(m, ds), Emb: emb, Norms: norms}
	if withIndex {
		snap.Index = ann.Build(emb, norms, opts.annParams(), opts.Workers)
	}
	return snap, nil
}
