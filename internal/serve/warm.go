package serve

import (
	"fmt"
	"math"

	"gsgcn/internal/ann"
	"gsgcn/internal/artifact"
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/mat"
	"gsgcn/internal/partition"
	"gsgcn/internal/perf"
)

// artifactMetaFor returns the Meta an artifact must carry to stand in
// for a fresh compute over (m, ds): the model's architecture
// fingerprint, a content hash of its trained weights (ModelVersion
// alone is a step count — two trainings can collide on it), and the
// dataset's graph shape. Embeddings are a pure function of (weights,
// graph, features), so equality of this struct is the precondition
// for serving persisted tables.
func artifactMetaFor(m *core.Model, ds *datasets.Dataset) artifact.Meta {
	return artifact.Meta{
		Arch:       m.ArchMeta(),
		WeightsSum: m.WeightsChecksum(),
		Vertices:   ds.G.NumVertices(),
		Edges:      ds.G.NumEdges(),
		FeatureDim: ds.FeatureDim(),
		Dim:        m.EmbeddingDim(),
	}
}

// wantMeta returns the Meta an artifact must carry to warm this
// engine: the whole-graph meta, extended with the shard identity and
// owned-row count when the engine serves one shard of a fleet — a
// shard engine only ever adopts the artifact built for exactly its
// shard under exactly its seed.
func (e *Engine) wantMeta(m *core.Model) artifact.Meta {
	want := artifactMetaFor(m, e.ds)
	if e.opts.sharded() {
		want.Shards = e.opts.ShardCount
		want.Shard = e.opts.ShardIndex
		want.ShardSeed = e.opts.ShardSeed
		want.ShardRows = len(e.owned)
	}
	return want
}

// computeTables runs the cold-start table computation for (m, ds):
// the full-graph embedding pass plus per-vertex cosine norms. It is
// the single implementation behind both Engine.buildState (online
// cold start) and BuildSnapshot (offline artifact production) — the
// warm-start contract that artifacts are bit-identical to a fresh
// compute holds only while both call exactly this code.
func computeTables(m *core.Model, ds *datasets.Dataset, opts Options) (*mat.Dense, []float64) {
	emb := FullEmbeddings(m, ds.G, ds.Features, opts.Workers, opts.BlockSize)
	norms := make([]float64, emb.Rows)
	perf.ParallelMin(emb.Rows, 64, opts.Workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := emb.Row(v)
			norms[v] = math.Sqrt(mat.Dot(row, row))
		}
	})
	return emb, norms
}

// BuildSnapshot computes the serving tables offline — exactly the
// arithmetic Engine.Install runs on a cold start — and packages them
// as an artifact snapshot: the full-graph embedding table, its cosine
// norms and, when withIndex is set, the deterministic HNSW index
// built with the same parameters the engine's lazy path would use.
// Both computations are bit-deterministic, so a snapshot written by
// cmd/gsgcn-index and loaded by a server is byte-equal to what that
// server would have computed itself.
func BuildSnapshot(ds *datasets.Dataset, m *core.Model, opts Options, withIndex bool) (*artifact.Snapshot, error) {
	opts = opts.withDefaults()
	if got, want := m.Layers[0].InDim, ds.FeatureDim(); got != want {
		return nil, fmt.Errorf("serve: model expects %d input features, dataset has %d", got, want)
	}
	if got, want := m.Head.OutDim, ds.NumClasses; got != want {
		return nil, fmt.Errorf("serve: model predicts %d classes, dataset has %d", got, want)
	}
	emb, norms := computeTables(m, ds, opts)
	snap := &artifact.Snapshot{Meta: artifactMetaFor(m, ds), Emb: emb, Norms: norms}
	if withIndex {
		snap.Index = ann.Build(emb, norms, opts.annParams(), opts.Workers)
	}
	quantizeSnapshot(snap, opts)
	return snap, nil
}

// quantizeSnapshot attaches the dtype payload the options select to a
// freshly built artifact snapshot: the f32 table or the PQ codebook
// and codes, trained with exactly the parameters a serving engine
// resolves for the same shape — which is what lets the engine adopt
// the persisted payload instead of re-deriving it.
func quantizeSnapshot(snap *artifact.Snapshot, opts Options) {
	snap.Dtype = opts.Dtype
	rows, cols := snap.Emb.Rows, snap.Emb.Cols
	if rows == 0 || cols == 0 {
		snap.Dtype = mat.DtypeF64
		return
	}
	switch opts.Dtype {
	case mat.DtypeF32:
		snap.F32 = mat.ToF32(snap.Emb, opts.Workers)
	case mat.DtypeI8PQ:
		snap.PQ = mat.TrainPQ(snap.Emb, mat.ResolvePQ(rows, cols), opts.Workers)
	}
}

// BuildShardSnapshots computes the per-shard serving artifacts of a
// sharded fleet: one whole-graph table pass (the expensive part runs
// once, not once per shard), compacted to each shard's owned rows in
// ascending owned-id order — exactly the compaction a shard engine's
// cold start performs, so every shard artifact is byte-equal to what
// that shard would have computed itself. With withIndex, each shard
// additionally gets the deterministic HNSW index over its own rows
// (the index a shard engine's lazy ann path would build). shards == 1
// degenerates to one whole-graph snapshot identical to BuildSnapshot.
func BuildShardSnapshots(ds *datasets.Dataset, m *core.Model, opts Options, withIndex bool, shards int, shardSeed uint64) ([]*artifact.Snapshot, error) {
	if shards < 1 {
		return nil, fmt.Errorf("serve: shard count must be >= 1, got %d", shards)
	}
	if shards == 1 {
		snap, err := BuildSnapshot(ds, m, opts, withIndex)
		if err != nil {
			return nil, err
		}
		return []*artifact.Snapshot{snap}, nil
	}
	opts = opts.withDefaults()
	if got, want := m.Layers[0].InDim, ds.FeatureDim(); got != want {
		return nil, fmt.Errorf("serve: model expects %d input features, dataset has %d", got, want)
	}
	if got, want := m.Head.OutDim, ds.NumClasses; got != want {
		return nil, fmt.Errorf("serve: model predicts %d classes, dataset has %d", got, want)
	}
	emb, norms := computeTables(m, ds, opts)
	sm := partition.ShardMap{Shards: shards, Seed: shardSeed}
	meta := artifactMetaFor(m, ds)
	out := make([]*artifact.Snapshot, shards)
	for i := 0; i < shards; i++ {
		owned := sm.Owned(ds.G.NumVertices(), i)
		sub, subNorms := compactRows(emb, norms, owned)
		sMeta := meta
		sMeta.Shards = shards
		sMeta.Shard = i
		sMeta.ShardSeed = shardSeed
		sMeta.ShardRows = len(owned)
		snap := &artifact.Snapshot{Meta: sMeta, Emb: sub, Norms: subNorms}
		if withIndex {
			snap.Index = ann.Build(sub, subNorms, opts.annParams(), opts.Workers)
		}
		// Each shard trains its own codebook over its own rows — the
		// same per-shard quantization a shard engine derives in
		// process, so the payload is adoptable shard by shard.
		quantizeSnapshot(snap, opts)
		out[i] = snap
	}
	return out, nil
}
