package serve

import (
	"bufio"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gsgcn/internal/wire"
)

// wireFixture is the TCP twin of transportFixture: one registry with
// an unsharded default model "a" and a sharded model "s", serving both
// the HTTP surface and the persistent wire listener, so answers can be
// compared across transports on the same snapshots.
func wireFixture(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	ds := testDataset(t, false)
	ckpt := trainAndSave(t, ds, 1, t.TempDir())
	reg := NewRegistry()
	t.Cleanup(reg.Close)
	a, err := reg.Add("a", ds, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := reg.AddSharded("s", ds, Options{Workers: 2}, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	t.Cleanup(ts.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go reg.ServeWire(ln)
	return ts, ln.Addr().String()
}

// wireConn dials the listener and returns framed read/write helpers.
type wireConn struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

func dialWire(t *testing.T, addr string) *wireConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &wireConn{t: t, conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

func (c *wireConn) send(m wire.Message) {
	c.t.Helper()
	if err := wire.WriteMessage(c.bw, m); err != nil {
		c.t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

func (c *wireConn) recv() wire.Message {
	c.t.Helper()
	m, err := wire.ReadMessage(c.br)
	if err != nil {
		c.t.Fatal(err)
	}
	return m
}

// TestServeWireAnswersAllRequestTypes drives every request frame type
// through the TCP listener — against the unsharded default model and
// the sharded one — and requires the embed answer to be bit-identical
// to the JSON answer for the same ids.
func TestServeWireAnswersAllRequestTypes(t *testing.T) {
	ts, addr := wireFixture(t)
	c := dialWire(t, addr)

	c.send(&wire.EmbedRequest{IDs: []int{0, 1}})
	em, ok := c.recv().(*wire.EmbedResponse)
	if !ok || len(em.Vectors) != 2 || em.Dim <= 0 {
		t.Fatalf("embed over TCP = %#v", em)
	}
	status, _, body := fetch(t, "GET", ts.URL+"/embed?ids=0,1", nil)
	if status != http.StatusOK {
		t.Fatalf("JSON embed = %d: %s", status, body)
	}
	var jr EmbedResult
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	for i := range jr.Vectors {
		for j := range jr.Vectors[i] {
			if math.Float64bits(jr.Vectors[i][j]) != math.Float64bits(em.Vectors[i][j]) {
				t.Fatalf("vector [%d][%d] differs across transports: %v vs %v",
					i, j, jr.Vectors[i][j], em.Vectors[i][j])
			}
		}
	}

	c.send(&wire.PredictRequest{Model: "s", IDs: []int{2}})
	pr, ok := c.recv().(*wire.PredictResponse)
	if !ok || len(pr.Labels) != 1 {
		t.Fatalf("predict over TCP = %#v", pr)
	}

	// K=0 means "not set": the server must apply its default k exactly
	// as the HTTP parser does for a missing k parameter.
	c.send(&wire.TopKRequest{Model: "s", ID: 0, K: 0, Mode: wire.ModeExact})
	tk, ok := c.recv().(*wire.TopKResponse)
	if !ok || tk.K <= 0 || len(tk.Neighbors) == 0 {
		t.Fatalf("topk (default k) over TCP = %#v", tk)
	}
	c.send(&wire.TopKRequest{ID: 1, K: 3, Mode: wire.ModeAuto})
	tk, ok = c.recv().(*wire.TopKResponse)
	if !ok || tk.K != 3 || len(tk.Neighbors) != 3 {
		t.Fatalf("topk k=3 over TCP = %#v", tk)
	}
}

// TestServeWireErrorFrames pins the error-frame contract: rejections
// come back as ErrorResponse frames with the HTTP status and message
// text of the JSON envelope, and — unlike framing errors — they leave
// the connection usable.
func TestServeWireErrorFrames(t *testing.T) {
	_, addr := wireFixture(t)
	c := dialWire(t, addr)
	cases := []struct {
		label   string
		req     wire.Message
		status  int
		message string
	}{
		{"unknown model", &wire.EmbedRequest{Model: "nope", IDs: []int{0}},
			http.StatusNotFound, `serve: unknown model "nope"`},
		{"no ids", &wire.PredictRequest{IDs: nil},
			http.StatusBadRequest, "serve: no ids given"},
		{"bad mode byte", &wire.TopKRequest{ID: 0, K: 3, Mode: 0x7f},
			http.StatusBadRequest, "serve: bad mode parameter"},
		{"id out of range", &wire.TopKRequest{ID: 1 << 30, K: 3},
			http.StatusBadRequest, "out of range"},
		{"not a request", &wire.ErrorResponse{Status: 200},
			http.StatusBadRequest, "serve: frame type 0xee is not a request"},
	}
	for _, tc := range cases {
		c.send(tc.req)
		er, ok := c.recv().(*wire.ErrorResponse)
		if !ok {
			t.Fatalf("%s: got %#v, want an error frame", tc.label, er)
		}
		if er.Status != tc.status || !strings.Contains(er.Message, tc.message) {
			t.Errorf("%s = %d %q, want %d containing %q",
				tc.label, er.Status, er.Message, tc.status, tc.message)
		}
	}
	// The connection survived five rejections: a real query still works.
	c.send(&wire.EmbedRequest{IDs: []int{0}})
	if em, ok := c.recv().(*wire.EmbedResponse); !ok || len(em.Vectors) != 1 {
		t.Fatalf("query after error frames = %#v", em)
	}
}

// TestServeWirePipelinedOrder sends a burst of requests without
// waiting for answers; responses must come back strictly in request
// order even though they dispatch concurrently into the batcher.
func TestServeWirePipelinedOrder(t *testing.T) {
	_, addr := wireFixture(t)
	c := dialWire(t, addr)
	const n = 24
	for i := 0; i < n; i++ {
		c.send(&wire.EmbedRequest{IDs: []int{i % 8}})
	}
	for i := 0; i < n; i++ {
		em, ok := c.recv().(*wire.EmbedResponse)
		if !ok {
			t.Fatalf("response %d: %#v", i, em)
		}
		if len(em.IDs) != 1 || em.IDs[0] != i%8 {
			t.Fatalf("response %d carries ids %v, want [%d] — pipeline out of order", i, em.IDs, i%8)
		}
	}
}

// TestServeWireMalformedFrameClosesConn: once the stream is off by a
// byte, framing is unrecoverable — the server answers one error frame
// and hangs up.
func TestServeWireMalformedFrameClosesConn(t *testing.T) {
	_, addr := wireFixture(t)
	c := dialWire(t, addr)
	if _, err := c.conn.Write([]byte("this is not a GSGW frame......")); err != nil {
		t.Fatal(err)
	}
	er, ok := c.recv().(*wire.ErrorResponse)
	if !ok || er.Status != http.StatusBadRequest {
		t.Fatalf("malformed frame answer = %#v", er)
	}
	if _, err := wire.ReadMessage(c.br); err == nil {
		t.Fatal("connection stayed open after a framing error")
	}
}

// TestServeWireEmptyRegistry: a frame addressed to the default model
// of an empty registry fails 503 like the HTTP surface does.
func TestServeWireEmptyRegistry(t *testing.T) {
	reg := NewRegistry()
	t.Cleanup(reg.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go reg.ServeWire(ln)
	c := dialWire(t, ln.Addr().String())
	c.send(&wire.EmbedRequest{IDs: []int{0}})
	er, ok := c.recv().(*wire.ErrorResponse)
	if !ok || er.Status != http.StatusServiceUnavailable || er.Message != "serve: no models registered" {
		t.Fatalf("empty registry answer = %#v", er)
	}
}
