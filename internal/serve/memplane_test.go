package serve

import (
	"math"
	"net/http/httptest"
	"testing"

	"gsgcn/internal/artifact"
	"gsgcn/internal/mat"
)

// memPlaneDtypes are the non-default resident representations the
// exactness matrix sweeps.
var memPlaneDtypes = []mat.Dtype{mat.DtypeF32, mat.DtypeI8PQ}

// TestMemPlaneExactByteIdentity is the memory plane's acceptance bar:
// in exact mode, /embed, /predict and /topk answers are byte-identical
// to the f64 baseline at every dtype × Workers × shard-count
// combination — changing the resident representation can never change
// an exact answer, because exact reads always go to float64 rows.
func TestMemPlaneExactByteIdentity(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	ref := NewServer(ds, Options{Workers: 2})
	defer ref.Close()
	if _, err := ref.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref)
	defer refTS.Close()

	paths := []string{
		"/embed?ids=0,7,42,299",
		"/predict?ids=0,7,42,299",
		"/predict?ids=123",
		"/topk?id=7&k=10&mode=exact",
		"/topk?id=0&k=25&mode=exact",
		"/topk?id=299&k=1&mode=exact",
		"/topk?id=nope", // error surfaces must match too
	}
	want := make(map[string]string)
	wantCode := make(map[string]int)
	for _, p := range paths {
		code, body := get(t, refTS.URL+p)
		want[p] = string(body)
		wantCode[p] = code
	}

	for _, dtype := range memPlaneDtypes {
		for _, shards := range []int{1, 2} {
			for _, workers := range []int{1, 3} {
				rt := newTestRouter(t, Options{Workers: workers, Dtype: dtype}, shards, 99, ckpt)
				ts := httptest.NewServer(rt)
				for _, p := range paths {
					code, body := get(t, ts.URL+p)
					if code != wantCode[p] {
						t.Errorf("dtype=%s shards=%d workers=%d %s: status %d, f64 baseline %d",
							dtype, shards, workers, p, code, wantCode[p])
					}
					if string(body) != want[p] {
						t.Errorf("dtype=%s shards=%d workers=%d %s:\n got  %s\n want %s",
							dtype, shards, workers, p, body, want[p])
					}
				}
				ts.Close()
				rt.Close()
			}
		}
	}
}

// TestMemPlaneAnnScoresAreExact pins the rerank contract over the
// serving surface: in ann mode on a quantized dtype, every reported
// neighbor score is bit-identical to the exact scanner's score for
// that row — quantization bounds recall, never score fidelity.
func TestMemPlaneAnnScoresAreExact(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")

	exact := NewEngine(ds, Options{Workers: 2})
	if _, err := exact.Install(m); err != nil {
		t.Fatal(err)
	}
	for _, dtype := range memPlaneDtypes {
		eng := NewEngine(ds, Options{Workers: 2, Dtype: dtype})
		if _, err := eng.Install(m); err != nil {
			t.Fatal(err)
		}
		st, _ := eng.Snapshot()
		if st.quant == nil || st.quant.Dtype() != dtype {
			t.Fatalf("dtype=%s: no quantized plane resident", dtype)
		}
		for _, q := range []int{0, 42, 299} {
			full, err := exact.TopKWith(q, ds.G.NumVertices()-1, ModeExact, 0)
			if err != nil {
				t.Fatal(err)
			}
			bits := make(map[int]uint64, len(full.Neighbors))
			for _, nb := range full.Neighbors {
				bits[nb.ID] = math.Float64bits(nb.Score)
			}
			res, err := eng.TopKWith(q, 10, ModeANN, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Mode != ModeANN || len(res.Neighbors) != 10 {
				t.Fatalf("dtype=%s q=%d: mode %q with %d neighbors", dtype, q, res.Mode, len(res.Neighbors))
			}
			for i, nb := range res.Neighbors {
				wantBits, ok := bits[nb.ID]
				if !ok || math.Float64bits(nb.Score) != wantBits {
					t.Fatalf("dtype=%s q=%d rank %d: score %v for id %d is not the exact scanner's",
						dtype, q, i, nb.Score, nb.ID)
				}
			}
		}
	}
}

// TestMemPlaneHealthzAndResident checks the observability surface: the
// dtype shows up in /healthz, resident accounting is positive, and the
// mmap-backed int8-PQ plane shrinks the private working set at least
// 3x against the decoded f64 table (decoded quantized servers keep the
// exact f64 rows on the heap by design, so the memory win requires the
// mapping).
func TestMemPlaneHealthzAndResident(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")

	scrape := func(opts Options) healthBody {
		t.Helper()
		srv := NewServer(ds, opts)
		defer srv.Close()
		if _, err := srv.eng.Install(m); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		var health healthBody
		if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
			t.Fatalf("healthz = %d", code)
		}
		return health
	}

	// Decoded-heap servers: dtype reported, resident positive, nothing
	// mapped; the quantized payload rides on top of the f64 table.
	resident := map[mat.Dtype]int64{}
	for _, dtype := range []mat.Dtype{mat.DtypeF64, mat.DtypeF32, mat.DtypeI8PQ} {
		health := scrape(Options{Workers: 2, Dtype: dtype})
		if health.Dtype != dtype.String() {
			t.Errorf("healthz dtype = %q, want %q", health.Dtype, dtype)
		}
		if health.ResidentB <= 0 {
			t.Errorf("dtype=%s: resident_bytes = %d", dtype, health.ResidentB)
		}
		if health.MappedB != 0 {
			t.Errorf("dtype=%s: decoded-heap server reports mapped_bytes = %d", dtype, health.MappedB)
		}
		resident[dtype] = health.ResidentB
	}
	if resident[mat.DtypeI8PQ] <= resident[mat.DtypeF64] {
		t.Errorf("decoded i8pq resident %d should exceed the bare f64 %d (table plus codes)",
			resident[mat.DtypeI8PQ], resident[mat.DtypeF64])
	}

	// The mmap-backed i8pq server: the f64 table lives in the mapping,
	// so the private working set drops at least 3x under the f64
	// baseline.
	snap, err := BuildSnapshot(ds, m, Options{Workers: 2, Dtype: mat.DtypeI8PQ}, false)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.art"
	if _, err := artifact.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	health := scrape(Options{Workers: 2, Dtype: mat.DtypeI8PQ, ArtifactPath: path, Mmap: true})
	if !health.WarmStart || health.Dtype != "i8pq" {
		t.Fatalf("mmap server did not warm-start as i8pq: %+v", health)
	}
	if health.MappedB <= 0 {
		t.Errorf("mmap server reports mapped_bytes = %d", health.MappedB)
	}
	if 3*health.ResidentB > resident[mat.DtypeF64] {
		t.Errorf("mmap i8pq resident %d bytes is not 3x under the f64 baseline %d",
			health.ResidentB, resident[mat.DtypeF64])
	}
}

// TestMemPlaneWarmMmapServesIdentically is the mmap half of the
// tentpole: a server warm-started from a memory-mapped i8pq artifact
// adopts the mapping (mapped bytes reported, f64 table not duplicated
// on the heap) and serves exact answers bit-identical to a cold
// f64 engine.
func TestMemPlaneWarmMmapServesIdentically(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")

	cold := NewEngine(ds, Options{Workers: 2, ANN: true})
	if _, err := cold.Install(m); err != nil {
		t.Fatal(err)
	}

	for _, dtype := range []mat.Dtype{mat.DtypeF64, mat.DtypeI8PQ} {
		opts := Options{Workers: 2, ANN: true, Dtype: dtype}
		snap, err := BuildSnapshot(ds, m, opts, true)
		if err != nil {
			t.Fatal(err)
		}
		path := t.TempDir() + "/m.art"
		if _, err := artifact.WriteFile(path, snap); err != nil {
			t.Fatal(err)
		}
		opts.ArtifactPath = path
		opts.Mmap = true
		warm := NewEngine(ds, opts)
		if _, err := warm.Install(m); err != nil {
			t.Fatal(err)
		}
		st, _ := warm.Snapshot()
		if !st.WarmStart || st.WarmNote != "" {
			t.Fatalf("dtype=%s: mmap warm start failed: warm=%v note=%q", dtype, st.WarmStart, st.WarmNote)
		}
		if st.MappedBytes() <= 0 || st.mapped == nil {
			t.Fatalf("dtype=%s: snapshot does not hold the mapping", dtype)
		}
		if _, heap := st.Emb.(*mat.Dense); heap {
			t.Fatalf("dtype=%s: mmap warm start decoded the table to the heap anyway", dtype)
		}
		if st.Dtype() != dtype {
			t.Fatalf("dtype=%s: snapshot reports %s", dtype, st.Dtype())
		}
		if dtype == mat.DtypeI8PQ && st.quant == nil {
			t.Fatal("i8pq mapping did not adopt the persisted codebook")
		}

		for _, q := range []int{0, 150, 299} {
			a, err := cold.TopKWith(q, 10, ModeExact, 0)
			if err != nil {
				t.Fatal(err)
			}
			b, err := warm.TopKWith(q, 10, ModeExact, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Neighbors {
				if a.Neighbors[i] != b.Neighbors[i] {
					t.Fatalf("dtype=%s q=%d rank %d: cold %+v mmap %+v", dtype, q, i, a.Neighbors[i], b.Neighbors[i])
				}
			}
			ea, _ := cold.Embed([]int{q})
			eb, _ := warm.Embed([]int{q})
			for j := range ea.Vectors[0] {
				if math.Float64bits(ea.Vectors[0][j]) != math.Float64bits(eb.Vectors[0][j]) {
					t.Fatalf("dtype=%s q=%d: /embed differs at dim %d", dtype, q, j)
				}
			}
			pa, _ := cold.Predict([]int{q})
			pb, _ := warm.Predict([]int{q})
			for j := range pa.Probs[0] {
				if math.Float64bits(pa.Probs[0][j]) != math.Float64bits(pb.Probs[0][j]) {
					t.Fatalf("dtype=%s q=%d: /predict differs at class %d", dtype, q, j)
				}
			}
		}

		// Reload against the unchanged file must reuse the mapping.
		if _, err := warm.Install(m); err != nil {
			t.Fatal(err)
		}
		st2, _ := warm.Snapshot()
		if st2.mapped != st.mapped {
			t.Fatalf("dtype=%s: reload remapped an unchanged artifact", dtype)
		}
	}
}
