package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gsgcn/internal/obs"
)

// defaultModelName labels the metrics of a server built without an
// explicit model name (the single-model deployments of PR 2–4).
const defaultModelName = "default"

// epOther is the catch-all endpoint label for unrecognized paths.
// Folding every unknown path into one value means request paths can
// never mint new label values — the cardinality bound the obs package
// promises.
const epOther = "other"

// statusClasses are the bounded status-code label values: one per
// HTTP status family rather than one per code.
var statusClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// endpointMetrics holds one endpoint's pre-registered handles so the
// request path is an array index plus atomic adds — no registry
// lookup, no lock, no allocation.
type endpointMetrics struct {
	byClass [4]*obs.Counter
	latency *obs.Histogram
}

// modelMetrics instruments one model server's HTTP surface: the
// shared middleware every layer (Server, Router, Registry) routes
// requests through. It owns the per-endpoint request/latency/error
// handles and, when an access logger is wired, emits one structured
// JSON line per request.
type modelMetrics struct {
	reg       *obs.Registry
	model     string
	log       *obs.Logger
	endpoints map[string]*endpointMetrics

	// reqHTTP/reqWire split gsgcn_requests_total by transport: every
	// request through the HTTP surface (JSON or negotiated binary
	// body) versus every frame on the persistent TCP listener.
	reqHTTP *obs.Counter
	reqWire *obs.Counter
}

// newModelMetrics pre-registers handles for the given endpoint
// patterns (plus the catch-all) under the model label. Eager
// registration keeps the hot path lock-free and makes every series —
// including never-hit endpoints — visible to scrapers from the first
// request.
func newModelMetrics(reg *obs.Registry, model string, log *obs.Logger, endpoints []string) *modelMetrics {
	mm := &modelMetrics{
		reg:       reg,
		model:     model,
		log:       log,
		endpoints: make(map[string]*endpointMetrics, len(endpoints)+1),
	}
	for _, ep := range endpoints {
		mm.endpoints[ep] = newEndpointMetrics(reg, model, ep)
	}
	mm.endpoints[epOther] = newEndpointMetrics(reg, model, epOther)
	const reqHelp = "Requests served, by model and transport (http = the HTTP surface, wire = the persistent TCP listener)."
	mm.reqHTTP = reg.Counter("gsgcn_requests_total", reqHelp,
		map[string]string{"model": model, "transport": "http"})
	mm.reqWire = reg.Counter("gsgcn_requests_total", reqHelp,
		map[string]string{"model": model, "transport": "wire"})
	return mm
}

// countWire bills one wire-transport frame. Nil-safe like serve, so
// hand-wired servers without instruments keep working.
func (mm *modelMetrics) countWire() {
	if mm != nil {
		mm.reqWire.Inc()
	}
}

func newEndpointMetrics(reg *obs.Registry, model, ep string) *endpointMetrics {
	em := &endpointMetrics{}
	for i, class := range statusClasses {
		em.byClass[i] = reg.Counter("gsgcn_http_requests_total",
			"HTTP requests served, by model, endpoint and status class.",
			map[string]string{"model": model, "endpoint": ep, "code": class})
	}
	em.latency = reg.Histogram("gsgcn_http_request_duration_seconds",
		"HTTP request latency in seconds, by model and endpoint.",
		map[string]string{"model": model, "endpoint": ep}, obs.LatencyBuckets)
	return em
}

// endpointPatterns flattens route tables into the endpoint label
// values to pre-register.
func endpointPatterns(tables ...[]RouteDoc) []string {
	var out []string
	for _, t := range tables {
		for _, e := range t {
			out = append(out, e.Pattern)
		}
	}
	return out
}

// statusWriter records the status code a handler wrote (200 when it
// wrote a body without an explicit WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// annotKey keys the per-request annotation in the request context.
type annotKey struct{}

// reqAnnot carries observability facts a handler learns mid-flight —
// scatter fan-out width, micro-batch id — back to the middleware for
// the request log line. It is written and read on the one goroutine
// serving the request.
type reqAnnot struct {
	fanout int
	batch  uint64
}

// annotFanout records how many shards a request scattered to.
func annotFanout(ctx context.Context, n int) {
	if a, ok := ctx.Value(annotKey{}).(*reqAnnot); ok {
		a.fanout = n
	}
}

// annotBatch records the micro-batch id that answered a request.
func annotBatch(ctx context.Context, id uint64) {
	if a, ok := ctx.Value(annotKey{}).(*reqAnnot); ok {
		a.batch = id
	}
}

// serve runs h under the shared middleware: a status-class counter
// bump, one latency observation, and (when an access logger is wired)
// one JSON request line carrying the process-wide monotonic request
// id. endpoint must be one of the pre-registered patterns; anything
// else folds into the catch-all. A nil receiver (a hand-wired server
// with no instruments) serves h directly — observation is optional
// everywhere by construction.
func (mm *modelMetrics) serve(endpoint string, h http.Handler, w http.ResponseWriter, r *http.Request) {
	if mm == nil {
		h.ServeHTTP(w, r)
		return
	}
	em := mm.endpoints[endpoint]
	if em == nil {
		endpoint, em = epOther, mm.endpoints[epOther]
	}
	mm.reqHTTP.Inc()
	var (
		id uint64
		an *reqAnnot
	)
	if mm.log != nil {
		id = mm.log.NextID()
		an = &reqAnnot{}
		r = r.WithContext(context.WithValue(r.Context(), annotKey{}, an))
	}
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	h.ServeHTTP(sw, r)
	dur := time.Since(start)
	code := sw.code
	if code == 0 {
		code = http.StatusOK
	}
	class := code/100 - 2
	if class < 0 {
		class = 0
	}
	if class > 3 {
		class = 3
	}
	em.byClass[class].Inc()
	em.latency.Observe(dur.Seconds())
	if mm.log != nil {
		fields := make([]obs.Field, 0, 8)
		fields = append(fields,
			obs.F("id", id),
			obs.F("model", mm.model),
			obs.F("endpoint", endpoint),
			obs.F("method", r.Method),
			obs.F("status", code),
			obs.F("dur_ms", dur),
		)
		if an.fanout > 0 {
			fields = append(fields, obs.F("fanout", an.fanout))
		}
		if an.batch > 0 {
			fields = append(fields, obs.F("batch", an.batch))
		}
		mm.log.Event("request", fields...)
	}
}

// handleMetrics renders the model-scoped scrape: only series labeled
// with this model's name. The registry's bare /metrics renders the
// whole shared registry instead.
func (mm *modelMetrics) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, fmt.Errorf("%w: %s", errMethod, r.Method))
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	_ = mm.reg.WriteFiltered(w, func(l map[string]string) bool { return l["model"] == mm.model })
}

// registerMetrics exports the engine's snapshot gauges: every reader
// loads the atomic state pointer, so a scrape can never wait on
// reloadMu however slow a concurrent snapshot build is.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	labels := map[string]string{"model": e.opts.ModelName}
	if e.opts.sharded() {
		labels["shard"] = strconv.Itoa(e.opts.ShardIndex)
	}
	reg.GaugeFunc("gsgcn_snapshot_version",
		"Swap generation of the serving snapshot (0 = no model loaded).",
		labels, func() float64 {
			if st := e.state.Load(); st != nil {
				return float64(st.Version)
			}
			return 0
		})
	reg.GaugeFunc("gsgcn_snapshot_warm_start",
		"1 when the serving snapshot warm-started from a persisted artifact.",
		labels, func() float64 {
			if st := e.state.Load(); st != nil && st.WarmStart {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("gsgcn_index_resident",
		"1 when the snapshot's ANN index is built and resident.",
		labels, func() float64 {
			if st := e.state.Load(); st != nil && st.IndexReady() {
				return 1
			}
			return 0
		})
	// The memory-plane gauges carry the dtype label (a per-engine
	// constant, so cardinality stays bounded): resident is the private
	// working set of the table representation, mapped the size of the
	// artifact mapping behind it (0 when decoded to heap).
	dlabels := map[string]string{"model": e.opts.ModelName, "dtype": e.opts.Dtype.String()}
	if e.opts.sharded() {
		dlabels["shard"] = strconv.Itoa(e.opts.ShardIndex)
	}
	reg.GaugeFunc("gsgcn_resident_bytes",
		"Bytes of the serving table working set held privately: the f64 table when decoded to heap, the norms, and quantized codes plus codebooks.",
		dlabels, func() float64 {
			if st := e.state.Load(); st != nil {
				return float64(st.ResidentBytes())
			}
			return 0
		})
	reg.GaugeFunc("gsgcn_mapped_bytes",
		"Bytes of the memory-mapped artifact backing the snapshot (0 when decoded to heap).",
		dlabels, func() float64 {
			if st := e.state.Load(); st != nil {
				return float64(st.MappedBytes())
			}
			return 0
		})
}

// batcherInst holds the micro-batcher's histogram handles (nil on an
// unobserved batcher, e.g. one built directly in a benchmark).
type batcherInst struct {
	batchSize *obs.Histogram
	flush     *obs.Histogram
}

// instrument exports the batcher's queue and dispatch metrics. The
// counts the batcher already tracks in its own atomics surface as
// func-backed series — no double accounting — and queue depth reads
// the channel length at scrape time. Call before the batcher takes
// traffic.
func (b *batcher) instrument(reg *obs.Registry, labels map[string]string) {
	reg.GaugeFunc("gsgcn_batcher_queue_depth",
		"Requests queued in the micro-batcher awaiting dispatch.",
		labels, func() float64 { return float64(len(b.reqs)) })
	reg.CounterFunc("gsgcn_batcher_batches_total",
		"Micro-batches dispatched.",
		labels, func() float64 { return float64(b.batches.Load()) })
	reg.CounterFunc("gsgcn_batcher_queries_total",
		"Queries carried by dispatched micro-batches.",
		labels, func() float64 { return float64(b.queries.Load()) })
	b.inst = &batcherInst{
		batchSize: reg.Histogram("gsgcn_batcher_batch_size",
			"Vertex ids per dispatched micro-batch.",
			labels, obs.SizeBuckets),
		flush: reg.Histogram("gsgcn_batcher_flush_duration_seconds",
			"Wall time to answer one dispatched micro-batch.",
			labels, obs.LatencyBuckets),
	}
}
