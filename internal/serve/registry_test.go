package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"gsgcn/internal/artifact"
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
)

// getBody fetches url and returns (status, raw body bytes).
func getBody(tb testing.TB, url string) (int, []byte) {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestRegistryBitIdenticalToSingleModelServers is the tentpole's
// acceptance test: two models served from one registry answer every
// endpoint byte-for-byte identically to two dedicated single-model
// processes over the same checkpoints — and the registry's legacy
// unprefixed routes are byte-compatible with the plain single-model
// Server (they are the default model's own handlers).
func TestRegistryBitIdenticalToSingleModelServers(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckptA := trainAndSave(t, ds, 1, dir)
	ckptB := trainAndSave(t, ds, 2, dir)
	optsA := Options{Workers: 2}
	optsB := Options{Workers: 2, ANN: true, ANNEf: 16}

	// Two dedicated single-model servers: the PR 2–4 deployment.
	soloA := NewServer(ds, optsA)
	defer soloA.Close()
	soloB := NewServer(ds, optsB)
	defer soloB.Close()
	tsA := httptest.NewServer(soloA)
	defer tsA.Close()
	tsB := httptest.NewServer(soloB)
	defer tsB.Close()
	if _, err := soloA.Load(ckptA); err != nil {
		t.Fatal(err)
	}
	if _, err := soloB.Load(ckptB); err != nil {
		t.Fatal(err)
	}

	// The same two checkpoints behind one registry.
	reg := NewRegistry()
	defer reg.Close()
	regA, err := reg.Add("a", ds, optsA)
	if err != nil {
		t.Fatal(err)
	}
	regB, err := reg.Add("b", ds, optsB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Load(ckptA); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Load(ckptB); err != nil {
		t.Fatal(err)
	}
	tsReg := httptest.NewServer(reg)
	defer tsReg.Close()

	queries := []string{
		"/embed?ids=0,1,7",
		"/predict?ids=0,3",
		"/topk?id=0&k=5",
		"/topk?id=4&k=3&mode=exact",
		"/topk?id=2&k=4&mode=ann&ef=24",
		"/healthz",
	}
	compare := func(wantURL, gotURL, label string) {
		t.Helper()
		wc, want := getBody(t, wantURL)
		gc, got := getBody(t, gotURL)
		if wc != 200 || gc != 200 {
			t.Fatalf("%s: status %d vs %d", label, wc, gc)
		}
		if string(want) != string(got) {
			t.Errorf("%s: registry answer differs from single-model server:\n solo: %s\n reg:  %s",
				label, want, got)
		}
	}
	for _, q := range queries {
		if strings.HasPrefix(q, "/healthz") {
			// Health bodies carry batcher stats that depend on query
			// counts; compare them last, after identical query loads.
			continue
		}
		compare(tsA.URL+q, tsReg.URL+"/models/a"+q, "model a "+q)
		compare(tsB.URL+q, tsReg.URL+"/models/b"+q, "model b "+q)
		// Legacy unprefixed routes answer from the default model (a).
		compare(tsA.URL+q, tsReg.URL+q, "legacy "+q)
	}
	// The loop above sent every query twice to solo A (once per
	// compare) and twice to registry model a (prefixed + legacy), so
	// even the batcher stats in the legacy /healthz body must agree
	// byte-for-byte.
	compare(tsA.URL+"/healthz", tsReg.URL+"/healthz", "legacy /healthz")
}

// TestRegistryRouting pins the multi-model HTTP surface: the /models
// listing, per-model status, per-model reload isolation, and clean
// JSON 404s for unknown names and endpoints.
func TestRegistryRouting(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckptA := trainAndSave(t, ds, 1, dir)
	ckptB := trainAndSave(t, ds, 2, dir)

	reg := NewRegistry()
	defer reg.Close()
	srvA, err := reg.Add("prod", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := reg.Add("canary", ds, Options{Workers: 1, ANN: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Load(ckptA); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Load(ckptB); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	if names := reg.Names(); len(names) != 2 || names[0] != "prod" || names[1] != "canary" {
		t.Errorf("Names() = %v, want registration order [prod canary]", names)
	}
	if opts := srvB.Engine().Options(); !opts.ANN || opts.Workers != 1 {
		t.Errorf("canary options = %+v, want resolved ANN config", opts)
	}

	// Invalid registrations are rejected.
	if _, err := reg.Add("prod", ds, Options{}); err == nil {
		t.Error("duplicate model name registered")
	}
	for _, bad := range []string{"", "a/b", "with space", ".."} {
		if _, err := reg.Add(bad, ds, Options{}); err == nil {
			t.Errorf("invalid model name %q registered", bad)
		}
	}

	// /models lists both, sorted, with the default marked.
	var list listBody
	if code := getJSON(t, ts.URL+"/models", &list); code != 200 {
		t.Fatalf("/models = %d", code)
	}
	if list.Default != "prod" {
		t.Errorf("default = %q, want prod (first registered)", list.Default)
	}
	if len(list.Models) != 2 || list.Models[0].Name != "canary" || list.Models[1].Name != "prod" {
		t.Fatalf("listing = %+v, want canary,prod", list.Models)
	}
	for _, ms := range list.Models {
		if ms.Status != "ok" || ms.Version != 1 {
			t.Errorf("model %s status %q version %d, want ok/1", ms.Name, ms.Status, ms.Version)
		}
		if ms.Index != "lazy" {
			t.Errorf("model %s index %q before any ANN query, want lazy", ms.Name, ms.Index)
		}
	}
	if !list.Models[1].Default || list.Models[0].Default {
		t.Errorf("default flags wrong: %+v", list.Models)
	}
	if list.Models[1].Checkpoint != ckptA {
		t.Errorf("prod checkpoint = %q, want %q", list.Models[1].Checkpoint, ckptA)
	}

	// An ANN query makes canary's index resident; /models must see it.
	if code, _ := getBody(t, ts.URL+"/models/canary/topk?id=0&k=3&mode=ann"); code != 200 {
		t.Fatalf("canary ann topk = %d", code)
	}
	var st modelStatus
	if code := getJSON(t, ts.URL+"/models/canary/healthz", &st); code != 200 {
		t.Fatalf("canary healthz = %d", code)
	}
	if st.Index != "built" {
		t.Errorf("canary index after ANN query = %q, want built", st.Index)
	}
	if st.Name != "canary" || st.Default {
		t.Errorf("canary status = %+v", st)
	}

	// SetDefault retargets the legacy routes.
	if err := reg.SetDefault("canary"); err != nil {
		t.Fatal(err)
	}
	var health healthBody
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatal("legacy healthz after SetDefault")
	}
	stB, _ := srvB.Engine().Snapshot()
	if health.ModelVersion != stB.ModelVersion {
		t.Errorf("legacy healthz model_version = %d, want canary's %d", health.ModelVersion, stB.ModelVersion)
	}
	if err := reg.SetDefault("nope"); err == nil {
		t.Error("SetDefault accepted an unknown model")
	}

	// Per-model reload bumps only that model's version.
	status, _, _ := doReq(t, "POST", ts.URL+"/models/prod/reload", "")
	if status != 200 {
		t.Fatalf("prod reload = %d", status)
	}
	stA, _ := srvA.Engine().Snapshot()
	stB, _ = srvB.Engine().Snapshot()
	if stA.Version != 2 || stB.Version != 1 {
		t.Errorf("versions after prod reload = %d/%d, want 2/1", stA.Version, stB.Version)
	}

	// Unknown names and endpoints: clean JSON 404s.
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/models/nope/embed?ids=0", http.StatusNotFound},
		{"POST", "/models/nope/reload", http.StatusNotFound},
		{"GET", "/models/prod/nope", http.StatusNotFound},
		{"GET", "/models/prod/healthz/extra", http.StatusNotFound},
		{"POST", "/models", http.StatusMethodNotAllowed},
		{"POST", "/models/prod/healthz", http.StatusMethodNotAllowed},
		{"DELETE", "/models/prod", http.StatusMethodNotAllowed},
	} {
		status, msg, isJSON := doReq(t, tc.method, ts.URL+tc.path, "")
		if status != tc.want || !isJSON || msg == "" {
			t.Errorf("%s %s = %d json=%v msg=%q, want %d with JSON error",
				tc.method, tc.path, status, isJSON, msg, tc.want)
		}
	}

	// Bare /models/{name} serves the same status body as …/healthz.
	c1, b1 := getBody(t, ts.URL+"/models/prod")
	c2, b2 := getBody(t, ts.URL+"/models/prod/healthz")
	if c1 != 200 || c2 != 200 || string(b1) != string(b2) {
		t.Errorf("/models/prod (%d) and /models/prod/healthz (%d) disagree: %s vs %s", c1, c2, b1, b2)
	}

	// A registered-but-unloaded model: status "loading", index "none",
	// queries 503, reload-without-path a clean 500.
	if _, err := reg.Add("empty", ds, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var est modelStatus
	if code := getJSON(t, ts.URL+"/models/empty", &est); code != 200 {
		t.Fatalf("unloaded model status = %d", code)
	}
	if est.Status != "loading" || est.Index != "none" || est.Version != 0 {
		t.Errorf("unloaded model status = %+v, want loading/none/v0", est)
	}
	if status, _, _ := doReq(t, "GET", ts.URL+"/models/empty/embed?ids=0", ""); status != http.StatusServiceUnavailable {
		t.Errorf("query against unloaded model = %d, want 503", status)
	}
	if status, msg, isJSON := doReq(t, "POST", ts.URL+"/models/empty/reload", ""); status != http.StatusInternalServerError || !isJSON || msg == "" {
		t.Errorf("pathless reload of unloaded model = %d %q (json %v), want 500", status, msg, isJSON)
	}
}

// TestRegistryEmptyAndDatasetSharing covers the registry edges: no
// models yet (legacy routes 503 with a JSON error) and content-equal
// datasets deduped to one in-memory instance, while different data
// stays separate.
func TestRegistryEmptyAndDatasetSharing(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	ts := httptest.NewServer(reg)
	defer ts.Close()
	status, msg, isJSON := doReq(t, "GET", ts.URL+"/embed?ids=0", "")
	if status != http.StatusServiceUnavailable || !isJSON || msg == "" {
		t.Errorf("empty registry legacy route = %d json=%v %q, want 503", status, isJSON, msg)
	}
	var list listBody
	if code := getJSON(t, ts.URL+"/models", &list); code != 200 || len(list.Models) != 0 || list.Default != "" {
		t.Errorf("empty listing = %d %+v", code, list)
	}

	// Same generator config twice: distinct pointers, equal content.
	cfg := datasets.Config{
		Name: "shared", Vertices: 120, TargetEdges: 600,
		FeatureDim: 6, NumClasses: 3, Seed: 11,
	}
	ds1 := datasets.Generate(cfg)
	ds2 := datasets.Generate(cfg)
	if ds1 == ds2 {
		t.Fatal("generator returned the same pointer twice")
	}
	cfg.Seed = 12
	other := datasets.Generate(cfg)

	s1, err := reg.Add("m1", ds1, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := reg.Add("m2", ds2, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := reg.Add("m3", other, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Engine().Dataset() != s2.Engine().Dataset() {
		t.Error("content-identical datasets were not shared")
	}
	if s1.Engine().Dataset() != ds1 {
		t.Error("first registration does not serve the dataset it brought")
	}
	if s3.Engine().Dataset() == s1.Engine().Dataset() {
		t.Error("different datasets were wrongly shared")
	}
	if core.DataFingerprint(ds1) != core.DataFingerprint(ds2) {
		t.Error("equal-content fingerprints differ")
	}
	if core.DataFingerprint(ds1) == core.DataFingerprint(other) {
		t.Error("different-content fingerprints collide")
	}
}

// TestHealthzReflectsLatestReload pins the fix for the stale
// warm-start report: /healthz (and the /reload response itself) must
// describe the snapshot installed by the most recent reload — a
// reload that gains an artifact flips warm_start on, and one that
// drops it flips it back off.
func TestHealthzReflectsLatestReload(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)
	m, err := core.LoadModelFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := BuildSnapshot(ds, m, Options{Workers: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	artPath := filepath.Join(dir, "m.art")
	if _, err := artifact.WriteFile(artPath, snap); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	defer reg.Close()
	srv, err := reg.Add("m", ds, Options{Workers: 2}) // no artifact configured
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	warmOf := func() (bool, string, uint64) {
		t.Helper()
		var st modelStatus
		if code := getJSON(t, ts.URL+"/models/m/healthz", &st); code != 200 {
			t.Fatalf("healthz = %d", code)
		}
		return st.WarmStart, st.Index, st.Version
	}
	if warm, _, v := warmOf(); warm || v != 1 {
		t.Fatalf("initial load: warm=%v version=%d, want cold v1", warm, v)
	}

	// Reload retargeting the warm source: healthz must flip to warm
	// and the artifact's index must be resident without any ANN query.
	post := func(body string) reloadBody {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/models/m/reload", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("reload %s = %d: %s", body, resp.StatusCode, raw)
		}
		var rb reloadBody
		if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
			t.Fatal(err)
		}
		return rb
	}
	rb := post(fmt.Sprintf(`{"artifact": %q}`, artPath))
	if !rb.WarmStart || rb.WarmNote != "" {
		t.Fatalf("reload-with-artifact response = %+v, want warm", rb)
	}
	if warm, index, v := warmOf(); !warm || index != "built" || v != 2 {
		t.Fatalf("after artifact reload: warm=%v index=%q version=%d, want warm/built/2", warm, index, v)
	}

	// A plain reload keeps the retargeted source (unchanged artifact →
	// still warm, tables reused).
	if rb := post(""); !rb.WarmStart {
		t.Fatalf("plain reload after retarget = %+v, want still warm", rb)
	}
	if warm, _, v := warmOf(); !warm || v != 3 {
		t.Fatalf("after plain reload: warm=%v version=%d", warm, v)
	}

	// A failed reload must roll the artifact retarget back: the 500
	// leaves snapshot, checkpoint path and warm-start source all
	// untouched.
	status, _, _ := doReq(t, "POST", ts.URL+"/models/m/reload",
		`{"path": "/nope.ckpt", "artifact": "/nope.art"}`)
	if status != http.StatusInternalServerError {
		t.Fatalf("failing reload = %d, want 500", status)
	}
	if got := srv.Engine().ArtifactPath(); got != artPath {
		t.Errorf("failed reload retargeted the artifact: %q, want %q", got, artPath)
	}
	if rb := post(""); !rb.WarmStart {
		t.Fatalf("plain reload after failed retarget = %+v, want still warm", rb)
	}
	if warm, _, v := warmOf(); !warm || v != 4 {
		t.Fatalf("after failed retarget + plain reload: warm=%v version=%d", warm, v)
	}

	// Dropping the artifact must flip healthz back to cold — the old
	// staleness bug was reporting the initial load's warm state
	// forever.
	if rb := post(`{"artifact": ""}`); rb.WarmStart {
		t.Fatalf("reload dropping the artifact = %+v, want cold", rb)
	}
	if warm, _, v := warmOf(); warm || v != 5 {
		t.Fatalf("after dropping artifact: warm=%v version=%d, want cold v5", warm, v)
	}
}
