package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
)

// trainAndSave trains a few steps and writes a checkpoint, returning
// its path.
func trainAndSave(tb testing.TB, ds *datasets.Dataset, seed uint64, dir string) string {
	tb.Helper()
	m := core.NewModel(ds, core.Config{
		Layers: 2, Hidden: 8, Workers: 1, Seed: seed,
		FrontierM: 30, Budget: 120, PInter: 1,
	})
	tr := core.NewTrainer(ds, m)
	for i := 0; i < 3; i++ {
		tr.Step()
	}
	m.ModelVersion = uint64(tr.Steps())
	path := filepath.Join(dir, fmt.Sprintf("model-%d.ckpt", seed))
	if err := m.SaveFile(path); err != nil {
		tb.Fatal(err)
	}
	return path
}

func getJSON(tb testing.TB, url string, out any) int {
	tb.Helper()
	resp, err := http.Get(url)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			tb.Fatalf("bad JSON %q: %v", body, err)
		}
	}
	return resp.StatusCode
}

func TestServerEndpoints(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	srv := NewServer(ds, Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Before any checkpoint: healthz reports loading, queries 503.
	var health healthBody
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "loading" {
		t.Errorf("pre-load status = %q", health.Status)
	}
	if code := getJSON(t, ts.URL+"/embed?ids=0", nil); code != http.StatusServiceUnavailable {
		t.Errorf("pre-load embed = %d, want 503", code)
	}

	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}

	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "ok" || health.Version != 1 || health.ModelVersion != 3 {
		t.Errorf("healthz = %+v", health)
	}
	if health.Vertices != ds.G.NumVertices() || health.Classes != ds.NumClasses {
		t.Errorf("healthz graph stats = %+v", health)
	}

	// GET /embed.
	var emb EmbedResult
	if code := getJSON(t, ts.URL+"/embed?ids=0,5,7", &emb); code != 200 {
		t.Fatalf("embed = %d", code)
	}
	if len(emb.Vectors) != 3 || len(emb.Vectors[0]) != emb.Dim || emb.Version != 1 {
		t.Errorf("embed result shape: %d vectors, dim %d, version %d", len(emb.Vectors), emb.Dim, emb.Version)
	}

	// POST /embed with a JSON body answers identically.
	body, _ := json.Marshal(map[string][]int{"ids": {0, 5, 7}})
	resp, err := http.Post(ts.URL+"/embed", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var emb2 EmbedResult
	if err := json.NewDecoder(resp.Body).Decode(&emb2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(emb2.Vectors) != 3 || emb2.Vectors[1][0] != emb.Vectors[1][0] {
		t.Error("POST /embed differs from GET /embed")
	}

	// /predict.
	var pred PredictResult
	if code := getJSON(t, ts.URL+"/predict?ids=1,2", &pred); code != 200 {
		t.Fatalf("predict = %d", code)
	}
	if pred.Classes != ds.NumClasses || len(pred.Labels) != 2 || len(pred.Probs[0]) != ds.NumClasses {
		t.Errorf("predict result = %+v", pred)
	}

	// /topk.
	var tk TopKResult
	if code := getJSON(t, ts.URL+"/topk?id=3&k=5", &tk); code != 200 {
		t.Fatalf("topk = %d", code)
	}
	if len(tk.Neighbors) != 5 || tk.ID != 3 || tk.K != 5 {
		t.Errorf("topk result = %+v", tk)
	}

	// Error paths.
	if code := getJSON(t, ts.URL+"/embed?ids=99999", nil); code != http.StatusBadRequest {
		t.Errorf("out-of-range id = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/embed?ids=abc", nil); code != http.StatusBadRequest {
		t.Errorf("garbage id = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/embed", nil); code != http.StatusBadRequest {
		t.Errorf("missing ids = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/topk?id=0&k=-2", nil); code != http.StatusBadRequest {
		t.Errorf("bad k = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/reload", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /reload = %d, want 405", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/embed?ids=0", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /embed = %d, want 405", resp.StatusCode)
	}

	// After Close, queries are a retryable server-side condition.
	srv.Close()
	if code := getJSON(t, ts.URL+"/embed?ids=0", nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-Close embed = %d, want 503", code)
	}
}

func TestServerReloadSwapsVersion(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt1 := trainAndSave(t, ds, 1, dir)
	ckpt2 := trainAndSave(t, ds, 2, dir)

	srv := NewServer(ds, Options{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, err := srv.Load(ckpt1); err != nil {
		t.Fatal(err)
	}

	// POST /reload with an explicit path swaps to the new checkpoint.
	body, _ := json.Marshal(map[string]string{"path": ckpt2})
	resp, err := http.Post(ts.URL+"/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rl reloadBody
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || rl.Version != 2 {
		t.Fatalf("reload = %d %+v", resp.StatusCode, rl)
	}
	if rl.WarmStart {
		t.Errorf("artifact-less reload reports warm_start: %+v", rl)
	}

	// Bodyless POST /reload re-reads the last path (now ckpt2).
	resp, err = http.Post(ts.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("bodyless reload = %d", resp.StatusCode)
	}
	var health healthBody
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Version != 3 {
		t.Errorf("version after two reloads = %d, want 3", health.Version)
	}
}

// TestHotReloadUnderLoad hammers /embed and /topk from many
// goroutines while the checkpoint is hot-swapped repeatedly: every
// response must succeed, and each must be internally consistent with
// whichever snapshot answered it.
func TestHotReloadUnderLoad(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpts := []string{
		trainAndSave(t, ds, 1, dir),
		trainAndSave(t, ds, 2, dir),
		trainAndSave(t, ds, 3, dir),
	}

	srv := NewServer(ds, Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, err := srv.Load(ckpts[0]); err != nil {
		t.Fatal(err)
	}

	const reloads = 6
	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := fmt.Sprintf("%s/embed?ids=%d,%d", ts.URL, i%300, (i+7)%300)
				if g%2 == 1 {
					url = fmt.Sprintf("%s/topk?id=%d&k=3", ts.URL, i%300)
				}
				resp, err := client.Get(url)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				var versioned struct {
					Version uint64 `json:"version"`
				}
				if err := json.Unmarshal(body, &versioned); err != nil {
					errs <- fmt.Errorf("bad body %q: %v", body, err)
					return
				}
				if versioned.Version < 1 || versioned.Version > reloads+1 {
					errs <- fmt.Errorf("impossible version %d", versioned.Version)
					return
				}
			}
		}(g)
	}

	for i := 0; i < reloads; i++ {
		if _, err := srv.Load(ckpts[(i+1)%len(ckpts)]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var health healthBody
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Version != reloads+1 {
		t.Errorf("final version = %d, want %d", health.Version, reloads+1)
	}
}

// TestBatcherCoalesces pre-queues requests before the dispatcher
// starts, so the first dispatch must drain them all into one batch —
// a deterministic check that micro-batching actually coalesces.
func TestBatcherCoalesces(t *testing.T) {
	ds := testDataset(t, false)
	eng := NewEngine(ds, Options{Workers: 1})
	m := testModel(t, ds, 2, "mean")
	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	b := &batcher{
		eng:      eng,
		maxBatch: 64,
		reqs:     make(chan *batchReq, 64),
		done:     make(chan struct{}),
	}
	defer b.close()

	const n = 5
	outs := make([]*batchReq, n)
	for i := 0; i < n; i++ {
		r := &batchReq{ids: []int{i}, predict: i%2 == 1, out: make(chan batchResp, 1)}
		outs[i] = r
		b.reqs <- r
	}
	go b.loop()
	for i, r := range outs {
		resp := <-r.out
		if resp.err != nil {
			t.Fatalf("request %d: %v", i, resp.err)
		}
		if i%2 == 1 {
			if resp.pred == nil || len(resp.pred.Labels) != 1 {
				t.Fatalf("request %d: bad predict response %+v", i, resp.pred)
			}
		} else {
			if resp.embed == nil || len(resp.embed.Vectors) != 1 {
				t.Fatalf("request %d: bad embed response %+v", i, resp.embed)
			}
			// Batched answers must equal direct single-query answers.
			direct, err := eng.Embed([]int{i})
			if err != nil {
				t.Fatal(err)
			}
			for j, x := range resp.embed.Vectors[0] {
				if x != direct.Vectors[0][j] {
					t.Fatalf("request %d: batched vector differs from direct", i)
				}
			}
		}
	}
	batches, queries := b.Stats()
	if batches != 1 || queries != n {
		t.Errorf("stats: %d batches / %d queries, want 1 / %d", batches, queries, n)
	}

	// A mixed batch with one invalid request fails only that request.
	bad := &batchReq{ids: []int{-5}, out: make(chan batchResp, 1)}
	good := &batchReq{ids: []int{1}, out: make(chan batchResp, 1)}
	b.reqs <- bad
	b.reqs <- good
	if resp := <-bad.out; resp.err == nil {
		t.Error("invalid request succeeded")
	}
	if resp := <-good.out; resp.err != nil {
		t.Errorf("valid request poisoned by batchmate: %v", resp.err)
	}
}
