package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gsgcn/internal/mat"
)

// errClosed is returned for queries submitted after Close.
var errClosed = errors.New("serve: server closed")

// batcher coalesces concurrent point queries into one gather (and,
// for predictions, one head GEMM). Requests queue on a channel; the
// dispatcher takes whatever is queued when it becomes free — up to
// MaxBatch ids — and answers the whole batch against a single
// snapshot with a single pass over the embedding table. Under light
// load a request is dispatched alone with no added latency (there is
// no artificial batching window); under heavy concurrency batches
// fill up and per-query overhead amortizes away.
type batcher struct {
	eng      *Engine
	maxBatch int
	reqs     chan *batchReq
	done     chan struct{}
	closing  sync.Once
	closed   atomic.Bool

	// batches/queries count dispatched batches and the queries they
	// carried; queries/batches is the observed coalescing factor
	// (reported by /healthz and asserted by tests). The batches count
	// doubles as the batch-id sequence: every dispatched batch gets
	// the post-increment value as its id, carried on responses so
	// request logs can show which queries coalesced together. Only
	// batches that actually gather rows count — a drain whose every
	// request failed validation or was abandoned dispatches nothing,
	// so it must not burn an id or skew the coalescing factor.
	batches atomic.Uint64
	queries atomic.Uint64

	// inst is wired by instrument (nil on an unobserved batcher).
	inst *batcherInst
}

type batchReq struct {
	// ctx is the submitting request's context. The dispatcher checks
	// it at gather time: a row whose submitter has already given up
	// (client disconnect, deadline) is dead weight and is skipped.
	// nil means background (requests built directly in tests).
	ctx     context.Context
	ids     []int
	predict bool
	out     chan batchResp

	// abandoned flips when the submitter stops waiting on out — its
	// done-select fired or its context ended while queued. The
	// dispatcher skips abandoned rows instead of gathering (and, for
	// predictions, GEMMing) them into a response nobody will read.
	abandoned atomic.Bool
}

// dead reports whether the request's submitter is known to have given
// up already. It may race the submitter's final select — a request
// answered right at its deadline can land either way — but that only
// changes whether this request is answered, never the bytes of any
// answered response.
func (r *batchReq) dead() bool {
	return r.abandoned.Load() || (r.ctx != nil && r.ctx.Err() != nil)
}

type batchResp struct {
	embed *EmbedResult
	pred  *PredictResult
	batch uint64 // id of the dispatched batch that answered (0 on error)
	err   error
}

// newBatcher starts the dispatcher goroutine.
func newBatcher(eng *Engine, maxBatch int) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	b := &batcher{
		eng:      eng,
		maxBatch: maxBatch,
		reqs:     make(chan *batchReq, 4*maxBatch),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// close stops the dispatcher. It is idempotent and safe to race with
// submit from any number of goroutines: the closed flag flips before
// the done channel closes, so a submit that observed the flag gets
// errClosed immediately and one that already enqueued is unblocked
// either by the dispatcher's final drain or by its own done-select.
func (b *batcher) close() {
	b.closing.Do(func() {
		b.closed.Store(true)
		close(b.done)
	})
}

func (b *batcher) loop() {
	for {
		select {
		case <-b.done:
			// Final drain: answer anything that squeezed into the queue
			// while close was in flight. Each out channel is buffered, so
			// the sends cannot block even if the submitter already gave
			// up via its own done-select.
			for {
				select {
				case r := <-b.reqs:
					r.out <- batchResp{err: errClosed}
				default:
					return
				}
			}
		case r := <-b.reqs:
			batch := append(make([]*batchReq, 0, 8), r)
			n := len(r.ids)
		drain:
			for n < b.maxBatch {
				select {
				case r2 := <-b.reqs:
					batch = append(batch, r2)
					n += len(r2.ids)
				default:
					break drain
				}
			}
			b.run(batch)
		}
	}
}

// Embed answers an embedding query through the micro-batching path,
// also reporting the id of the batch that carried it. The context
// bounds the whole wait: enqueueing on a full queue and waiting for
// the dispatched answer both give up when ctx ends.
func (b *batcher) Embed(ctx context.Context, ids []int) (*EmbedResult, uint64, error) {
	resp := b.submit(ctx, ids, false)
	return resp.embed, resp.batch, resp.err
}

// Predict answers a prediction query through the micro-batching path,
// also reporting the id of the batch that carried it.
func (b *batcher) Predict(ctx context.Context, ids []int) (*PredictResult, uint64, error) {
	resp := b.submit(ctx, ids, true)
	return resp.pred, resp.batch, resp.err
}

func (b *batcher) submit(ctx context.Context, ids []int, predict bool) batchResp {
	if b.closed.Load() {
		return batchResp{err: errClosed}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return batchResp{err: fmt.Errorf("serve: %w before enqueue", err)}
	}
	r := &batchReq{ctx: ctx, ids: ids, predict: predict, out: make(chan batchResp, 1)}
	select {
	case b.reqs <- r:
	case <-b.done:
		return batchResp{err: errClosed}
	case <-ctx.Done():
		// The queue stayed full past the caller's deadline (or the
		// client hung up): give the slot up without ever occupying one.
		return batchResp{err: fmt.Errorf("serve: %w before enqueue", ctx.Err())}
	}
	select {
	case resp := <-r.out:
		return resp
	case <-b.done:
		r.abandoned.Store(true)
		return batchResp{err: errClosed}
	case <-ctx.Done():
		// Mark the queued row dead so the dispatcher drops it instead
		// of gathering into a buffered channel nobody reads.
		r.abandoned.Store(true)
		return batchResp{err: fmt.Errorf("serve: %w while queued", ctx.Err())}
	}
}

// run answers one batch against a single snapshot: one validation
// pass, one row gather for every queried id, and — when any request
// wants predictions — one head GEMM over the union.
func (b *batcher) run(batch []*batchReq) {
	var start time.Time
	if b.inst != nil {
		start = time.Now()
	}
	st, err := b.eng.Snapshot()
	if err != nil {
		for _, r := range batch {
			r.out <- batchResp{err: err}
		}
		return
	}
	// Validate per request; an invalid request fails alone without
	// poisoning the rest of the batch, and an abandoned request — its
	// submitter stopped waiting — contributes no rows at all.
	live := batch[:0:0]
	var all []int
	anyPredict := false
	for _, r := range batch {
		if r.dead() {
			continue
		}
		rows, err := localRows(st, r.ids)
		if err != nil {
			r.out <- batchResp{err: err}
			continue
		}
		live = append(live, r)
		all = append(all, rows...)
		anyPredict = anyPredict || r.predict
	}
	if len(live) == 0 {
		// Nothing dispatches: no batch id, no stats, no observations —
		// an all-invalid (or all-abandoned) drain must not inflate the
		// coalescing factor or record a 0-size batch in the histograms.
		return
	}
	id := b.batches.Add(1)
	b.queries.Add(uint64(len(live)))
	if b.inst != nil {
		b.inst.batchSize.Observe(float64(len(all)))
		defer func() { b.inst.flush.Observe(time.Since(start).Seconds()) }()
	}

	h := mat.New(len(all), st.Dim())
	mat.GatherRowsSrc(h, st.Emb, all)
	var logits *mat.Dense
	if anyPredict {
		logits = headLogits(st, h)
	}

	off := 0
	for _, r := range live {
		if r.predict {
			r.out <- batchResp{pred: predictionsFromLogits(st, r.ids, logits, off), batch: id}
		} else {
			res := &EmbedResult{
				Version:      st.Version,
				ModelVersion: st.ModelVersion,
				Dim:          st.Dim(),
				IDs:          r.ids,
				Vectors:      make([][]float64, len(r.ids)),
			}
			for i := range r.ids {
				v := make([]float64, st.Dim())
				copy(v, h.Row(off+i))
				res.Vectors[i] = v
			}
			r.out <- batchResp{embed: res, batch: id}
		}
		off += len(r.ids)
	}
}

// Stats reports dispatched batch and query counts.
func (b *batcher) Stats() (batches, queries uint64) {
	return b.batches.Load(), b.queries.Load()
}
