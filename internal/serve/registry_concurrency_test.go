package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
)

// TestRegistryIsolationUnderFailingReload is the registry concurrency
// suite (the multi-model extension of PR 3's reload-under-load
// harness): clients hammer model A's endpoints — prefixed and legacy
// — while model B suffers a storm of reloads, half of them failing on
// a missing checkpoint. Per-model isolation demands that A sees zero
// errors and byte-for-byte unchanged answers throughout, that B's bad
// reloads come back as clean 500s, and that both models are fully
// live afterwards with A's snapshot version untouched.
func TestRegistryIsolationUnderFailingReload(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckptA := trainAndSave(t, ds, 1, dir)
	ckptB := trainAndSave(t, ds, 2, dir)

	reg := NewRegistry()
	defer reg.Close()
	srvA, err := reg.Add("a", ds, Options{Workers: 2, ANNEf: 16})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := reg.Add("b", ds, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Load(ckptA); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Load(ckptB); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	// Baseline answers for model A, captured before any reload storm.
	queries := []string{
		"/models/a/embed?ids=0,5",
		"/models/a/predict?ids=1,2",
		"/models/a/topk?id=0&k=4",
		"/models/a/topk?id=3&k=3&mode=ann&ef=16",
		"/topk?id=0&k=4", // legacy route, also model A
	}
	baseline := make(map[string]string, len(queries))
	for _, q := range queries {
		code, body := getBody(t, ts.URL+q)
		if code != 200 {
			t.Fatalf("baseline %s = %d", q, code)
		}
		baseline[q] = string(body)
	}

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+g)%len(queries)]
				resp, err := http.Get(ts.URL + q)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("model A during B's reloads: %s = %d %s", q, resp.StatusCode, body)
					return
				}
				if string(body) != baseline[q] {
					errs <- fmt.Errorf("model A answer changed during B's reloads: %s\n was: %s\n now: %s",
						q, baseline[q], body)
					return
				}
			}
		}(g)
	}

	// The reload storm against model B: good, then failing, repeatedly.
	for i := 0; i < 6; i++ {
		status, _, _ := doReq(t, "POST", ts.URL+"/models/b/reload", "")
		if status != 200 {
			t.Fatalf("good reload of b #%d = %d", i, status)
		}
		status, msg, isJSON := doReq(t, "POST", ts.URL+"/models/b/reload", `{"path": "/nope.ckpt"}`)
		if status != http.StatusInternalServerError || !isJSON || msg == "" {
			t.Fatalf("bad reload of b #%d = %d %q (json %v)", i, status, msg, isJSON)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// A's snapshot never moved; B advanced by the 6 good reloads plus
	// 6 failed Loads that must not have bumped its version.
	stA, _ := srvA.Engine().Snapshot()
	stB, _ := srvB.Engine().Snapshot()
	if stA.Version != 1 {
		t.Errorf("model A version after B's reload storm = %d, want 1", stA.Version)
	}
	if stB.Version != 7 {
		t.Errorf("model B version = %d, want 7 (1 load + 6 good reloads)", stB.Version)
	}
	// Note: a failing /reload with an explicit path leaves B's
	// remembered checkpoint untouched only if Load rejects before
	// remembering — pin that too.
	if got := srvB.CheckpointPath(); got != ckptB {
		t.Errorf("model B checkpoint path after failed reloads = %q, want %q", got, ckptB)
	}
	for _, q := range append(queries, "/models/b/topk?id=0&k=3") {
		if code, _ := getBody(t, ts.URL+q); code != 200 {
			t.Errorf("post-storm %s = %d", q, code)
		}
	}
}

// TestRegistryReloadAllIsolation pins the SIGHUP fleet-reload
// semantics ReloadAll implements: every model is attempted, failures
// come back per model instead of aborting the sweep, and a model
// whose checkpoint is corrupt keeps serving its previous snapshot at
// its previous version while the healthy models all advance.
func TestRegistryReloadAllIsolation(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckptA := trainAndSave(t, ds, 1, dir)
	ckptB := trainAndSave(t, ds, 2, dir)
	ckptC := trainAndSave(t, ds, 3, dir)

	reg := NewRegistry()
	defer reg.Close()
	srvA, err := reg.Add("a", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := reg.Add("b", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A sharded model participates in the same fleet reload.
	rtC, err := reg.AddSharded("c", ds, Options{Workers: 1}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range []struct {
		srv  ModelServer
		path string
	}{{srvA, ckptA}, {srvB, ckptB}, {rtC, ckptC}} {
		if _, err := load.srv.Load(load.path); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(reg)
	defer ts.Close()
	_, beforeB := getBody(t, ts.URL+"/models/b/embed?ids=0,1,2")

	// All healthy: the sweep reports zero failures and every model —
	// including each shard of the sharded one — advances by one.
	if failures := reg.ReloadAll(); len(failures) != 0 {
		t.Fatalf("healthy ReloadAll failures = %v", failures)
	}
	stA, _ := srvA.Engine().Snapshot()
	if stA.Version != 2 {
		t.Errorf("model a version after fleet reload = %d, want 2", stA.Version)
	}
	for i := 0; i < rtC.Shards(); i++ {
		if st, _ := rtC.Engine(i).Snapshot(); st.Version != 2 {
			t.Errorf("model c shard %d version = %d, want 2", i, st.Version)
		}
	}

	// Corrupt model b's checkpoint on disk, then sweep again: only b
	// fails, a and c still advance, b keeps serving the old snapshot.
	if err := os.WriteFile(ckptB, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	failures := reg.ReloadAll()
	if len(failures) != 1 || failures["b"] == nil {
		t.Fatalf("failures after corrupting b = %v, want exactly {b: …}", failures)
	}
	stA, _ = srvA.Engine().Snapshot()
	stB, _ := srvB.Engine().Snapshot()
	stC, _ := rtC.Engine(0).Snapshot()
	if stA.Version != 3 || stC.Version != 3 {
		t.Errorf("healthy models after partial failure: a=%d c=%d, want 3", stA.Version, stC.Version)
	}
	if stB.Version != 2 {
		t.Errorf("failed model b version = %d, want 2 (previous snapshot untouched)", stB.Version)
	}
	code, afterB := getBody(t, ts.URL+"/models/b/embed?ids=0,1,2")
	if code != 200 {
		t.Fatalf("model b after failed reload = %d", code)
	}
	var before, after EmbedResult
	if err := json.Unmarshal(beforeB, &before); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(afterB, &after); err != nil {
		t.Fatal(err)
	}
	// Same model weights (the failed reload changed nothing but the
	// version counter, which moved only on the earlier healthy sweep).
	if fmt.Sprint(before.Vectors) != fmt.Sprint(after.Vectors) {
		t.Error("model b's answers changed after a failed reload")
	}
}
