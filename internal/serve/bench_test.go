package serve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"gsgcn/internal/artifact"
	"gsgcn/internal/datasets"
	"gsgcn/internal/mat"
)

// BenchmarkServeEmbed measures single-node embedding query
// throughput through the request layer, batched (micro-batching
// dispatcher coalescing concurrent queries) vs unbatched (every
// query dispatched alone). Run with -cpu to vary client concurrency.
func BenchmarkServeEmbed(b *testing.B) {
	ds := datasets.Generate(datasets.Config{
		Name: "serve-bench", Vertices: 2000, TargetEdges: 16000,
		FeatureDim: 32, NumClasses: 8, Seed: 7,
	})
	m := testModel(b, ds, 2, "mean")
	eng := NewEngine(ds, Options{})
	if _, err := eng.Install(m); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, maxBatch int) {
		bat := newBatcher(eng, maxBatch)
		defer bat.close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, _, err := bat.Embed(context.Background(), []int{i % 2000}); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		b.StopTimer()
		batches, queries := bat.Stats()
		if batches > 0 {
			b.ReportMetric(float64(queries)/float64(batches), "queries/batch")
		}
	}
	b.Run("unbatched", func(b *testing.B) { run(b, 1) })
	b.Run("batched", func(b *testing.B) { run(b, 64) })
}

// BenchmarkTopKAnnVsExact tracks the speedup of the HNSW index over
// the exact sharded scan on a Table-I-shaped graph: the exact path is
// O(|V|) dot products per query, the ANN path visits only the beam's
// neighborhood. Both sub-benchmarks bypass the memo cache (they call
// the compute paths directly) so the numbers are per-scan, and the
// ann case reports its recall@10 against the exact scanner so the
// speedup is never read without its accuracy.
func BenchmarkTopKAnnVsExact(b *testing.B) {
	ds := datasets.Generate(datasets.Config{
		Name: "topk-bench", Vertices: 6000, TargetEdges: 48000,
		FeatureDim: 32, NumClasses: 8, Seed: 7,
	})
	m := testModel(b, ds, 2, "mean")
	eng := NewEngine(ds, Options{})
	if _, err := eng.Install(m); err != nil {
		b.Fatal(err)
	}
	st, err := eng.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	const k = 10
	n := st.Emb.NumRows()

	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topkScan(st, i%n, k, eng.opts.Workers)
		}
	})
	b.Run("ann", func(b *testing.B) {
		idx := eng.annIndex(st) // build outside the timed region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.topkANN(st, i%n, k, eng.opts.ANNEf)
		}
		b.StopTimer()
		queries := make([]int32, 0, 50)
		for q := 0; q < n; q += n / 50 {
			queries = append(queries, int32(q))
		}
		rep := idx.RecallAtK(queries, k, 0)
		b.ReportMetric(rep.Recall, "recall@10")
	})
}

// BenchmarkWarmVsColdStart prices the artifact fast path on a
// >= 2k-vertex graph: cold is what a freshly launched server pays
// today — the full layer-wise embedding recompute plus an HNSW build —
// while warm reads, checksums and decodes a persisted artifact
// (cmd/gsgcn-index output) through the engine's real install path.
// Each iteration uses a fresh engine, so the warm case never hits the
// reload reuse shortcut: it measures a true process cold boot.
func BenchmarkWarmVsColdStart(b *testing.B) {
	ds := datasets.Generate(datasets.Config{
		Name: "warm-bench", Vertices: 2000, TargetEdges: 16000,
		FeatureDim: 32, NumClasses: 8, Seed: 7,
	})
	m := testModel(b, ds, 2, "mean")
	snap, err := BuildSnapshot(ds, m, Options{}, true)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "m.art")
	if _, err := artifact.WriteFile(path, snap); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(ds, Options{ANN: true})
			if _, err := eng.Install(m); err != nil {
				b.Fatal(err)
			}
			st, _ := eng.Snapshot()
			if eng.annIndex(st) == nil {
				b.Fatal("no index")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := NewEngine(ds, Options{ANN: true, ArtifactPath: path})
			if _, err := eng.Install(m); err != nil {
				b.Fatal(err)
			}
			st, _ := eng.Snapshot()
			if !st.WarmStart || st.annIdx.Load() == nil {
				b.Fatal("warm start did not engage")
			}
		}
	})
}

// BenchmarkWarmStartMmap prices the two warm-start transports on a
// >= 2k-vertex i8pq artifact: "decode" reads, checksums and copies the
// whole file into heap tables; "mmap" maps it, validates the small
// sections eagerly and lets the embedding pages fault in on demand.
// Both go through the engine's real install path with a fresh engine
// per iteration; each case reports the private working set it ends up
// holding, so the latency win is read next to the memory win.
func BenchmarkWarmStartMmap(b *testing.B) {
	ds := datasets.Generate(datasets.Config{
		Name: "warm-bench", Vertices: 2000, TargetEdges: 16000,
		FeatureDim: 32, NumClasses: 8, Seed: 7,
	})
	m := testModel(b, ds, 2, "mean")
	snap, err := BuildSnapshot(ds, m, Options{Dtype: mat.DtypeI8PQ}, true)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "m.art")
	if _, err := artifact.WriteFile(path, snap); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, mmap bool) {
		var resident int64
		for i := 0; i < b.N; i++ {
			eng := NewEngine(ds, Options{ANN: true, ArtifactPath: path, Dtype: mat.DtypeI8PQ, Mmap: mmap})
			if _, err := eng.Install(m); err != nil {
				b.Fatal(err)
			}
			st, _ := eng.Snapshot()
			if !st.WarmStart || (st.MappedBytes() > 0) != mmap {
				b.Fatalf("warm start: warm=%v mapped=%d", st.WarmStart, st.MappedBytes())
			}
			resident = st.ResidentBytes()
		}
		b.ReportMetric(float64(resident), "resident_bytes")
	}
	b.Run("decode", func(b *testing.B) { run(b, false) })
	b.Run("mmap", func(b *testing.B) { run(b, true) })
}

// BenchmarkObsOverhead prices the observability middleware on the
// /embed hot path: "instrumented" goes through Server.ServeHTTP (the
// metrics middleware wrapping the mux), "bare" dispatches on the mux
// directly. The gap between the two is the whole cost of /metrics
// instrumentation per request — the acceptance bar is under 3%.
func BenchmarkObsOverhead(b *testing.B) {
	ds := datasets.Generate(datasets.Config{
		Name: "obs-bench", Vertices: 2000, TargetEdges: 16000,
		FeatureDim: 32, NumClasses: 8, Seed: 7,
	})
	m := testModel(b, ds, 2, "mean")
	srv := NewServer(ds, Options{})
	defer srv.Close()
	if _, err := srv.Engine().Install(m); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, instrumented bool) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				req := httptest.NewRequest("GET", fmt.Sprintf("/embed?ids=%d", i%2000), nil)
				rec := httptest.NewRecorder()
				if instrumented {
					srv.ServeHTTP(rec, req)
				} else {
					srv.mux.ServeHTTP(rec, req)
				}
				if rec.Code != 200 {
					b.Errorf("status %d: %s", rec.Code, rec.Body)
					return
				}
				i++
			}
		})
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

// BenchmarkFullEmbeddings tracks the cost of one full-graph
// layer-wise inference pass — the price of a hot reload.
func BenchmarkFullEmbeddings(b *testing.B) {
	ds := datasets.Generate(datasets.Config{
		Name: "serve-bench", Vertices: 2000, TargetEdges: 16000,
		FeatureDim: 32, NumClasses: 8, Seed: 7,
	})
	m := testModel(b, ds, 2, "mean")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FullEmbeddings(m, ds.G, ds.Features, 0, 256)
	}
}
