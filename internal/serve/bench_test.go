package serve

import (
	"testing"

	"gsgcn/internal/datasets"
)

// BenchmarkServeEmbed measures single-node embedding query
// throughput through the request layer, batched (micro-batching
// dispatcher coalescing concurrent queries) vs unbatched (every
// query dispatched alone). Run with -cpu to vary client concurrency.
func BenchmarkServeEmbed(b *testing.B) {
	ds := datasets.Generate(datasets.Config{
		Name: "serve-bench", Vertices: 2000, TargetEdges: 16000,
		FeatureDim: 32, NumClasses: 8, Seed: 7,
	})
	m := testModel(b, ds, 2, "mean")
	eng := NewEngine(ds, Options{})
	if _, err := eng.Install(m); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, maxBatch int) {
		bat := newBatcher(eng, maxBatch)
		defer bat.close()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := bat.Embed([]int{i % 2000}); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		b.StopTimer()
		batches, queries := bat.Stats()
		if batches > 0 {
			b.ReportMetric(float64(queries)/float64(batches), "queries/batch")
		}
	}
	b.Run("unbatched", func(b *testing.B) { run(b, 1) })
	b.Run("batched", func(b *testing.B) { run(b, 64) })
}

// BenchmarkFullEmbeddings tracks the cost of one full-graph
// layer-wise inference pass — the price of a hot reload.
func BenchmarkFullEmbeddings(b *testing.B) {
	ds := datasets.Generate(datasets.Config{
		Name: "serve-bench", Vertices: 2000, TargetEdges: 16000,
		FeatureDim: 32, NumClasses: 8, Seed: 7,
	})
	m := testModel(b, ds, 2, "mean")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FullEmbeddings(m, ds.G, ds.Features, 0, 256)
	}
}
