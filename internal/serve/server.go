package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gsgcn/internal/datasets"
	"gsgcn/internal/obs"
)

// errMethod marks requests using an unsupported HTTP method.
var errMethod = errors.New("serve: method not allowed")

// errNotOwned marks a query for a vertex a shard engine does not own.
// The router never surfaces it — partition-aware routing sends every
// id to its owner — so seeing it means a shard engine was addressed
// directly with a foreign id.
var errNotOwned = errors.New("serve: vertex not owned by this shard")

// errShardDown marks a query whose owning shard is stopped; the
// router returns it so clients can distinguish "this id is
// temporarily unanswerable" (503, retryable) from a caller mistake.
var errShardDown = errors.New("serve: owning shard is down")

// maxQueryIDs bounds one request's id list; larger lookups should
// page. It protects the micro-batcher from one request monopolizing
// a batch.
const maxQueryIDs = 4096

// Server is the HTTP/JSON request layer over an inference Engine.
//
// Endpoints:
//
//	GET|POST /embed    ?ids=0,1,2     → embedding vectors
//	GET|POST /predict  ?ids=0,1,2     → class labels + probabilities
//	GET      /topk     ?id=7&k=10     → most cosine-similar vertices
//	                   &mode=exact|ann&ef=64 (ann: HNSW beam search)
//	GET      /healthz                 → liveness + serving stats
//	GET      /metrics                 → Prometheus text exposition
//	POST     /reload   {"path": "…"}  → hot-swap a new checkpoint
//
// POST bodies are JSON ({"ids":[…]}). Point queries arriving
// concurrently are coalesced by the micro-batcher; every response
// carries the snapshot version it was answered from. Every request
// passes through the shared obs middleware (request/latency/error
// metrics, optional structured access log) — observation-only, so
// answers are bit-identical with instrumentation on or off.
type Server struct {
	eng  *Engine
	bat  *batcher
	gate *admitGate
	mux  *http.ServeMux
	inst *modelMetrics

	mu       sync.Mutex
	ckptPath string

	// swapMu serializes whole /reload sequences (artifact retarget →
	// load → rollback on failure) so concurrent reloads cannot
	// interleave their retargets and restores. It is never taken on
	// the query or health paths.
	swapMu sync.Mutex
}

// RouteDoc names one registered HTTP route: the methods it accepts
// and its path pattern ({name} marks the model-name segment of
// registry routes).
type RouteDoc struct {
	Methods string
	Pattern string
}

// perModelEndpoints enumerates the per-model endpoints. Each is
// served twice: unprefixed against the default model (the PR 2–4
// single-model surface, byte-compatible) and as /models/{name}/…
// through a Registry. NewServer registers handlers from this table
// and RegisteredRoutes derives the documented route list from it, so
// an endpoint cannot be added without showing up in docs/API.md (the
// coverage test in docs_test.go enforces the link).
var perModelEndpoints = []RouteDoc{
	{"GET, POST", "/embed"},
	{"GET, POST", "/predict"},
	{"GET", "/topk"},
	{"GET", "/healthz"},
	{"GET", "/metrics"},
	{"POST", "/reload"},
}

// RegisteredRoutes returns every HTTP route a Registry-fronted
// process serves: the registry's own endpoints plus both spellings of
// each per-model endpoint and of each shard operation (served when
// the model is sharded), each additionally registered under the
// versioned /v1 prefix (the canonical spelling; the unprefixed routes
// are byte-compatible legacy aliases). docs/API.md must document all
// of them.
func RegisteredRoutes() []RouteDoc {
	routes := []RouteDoc{
		{"GET", "/models"},
		// The bare model path is an alias for …/healthz (the extended
		// per-model status body).
		{"GET", "/models/{name}"},
	}
	for _, e := range perModelEndpoints {
		routes = append(routes, RouteDoc{e.Methods, "/models/{name}" + e.Pattern})
	}
	for _, e := range shardEndpoints {
		routes = append(routes, RouteDoc{e.Methods, "/models/{name}" + e.Pattern})
	}
	for _, e := range perModelEndpoints {
		routes = append(routes, e)
	}
	for _, e := range shardEndpoints {
		routes = append(routes, e)
	}
	for _, e := range append([]RouteDoc(nil), routes...) {
		routes = append(routes, RouteDoc{e.Methods, "/v1" + e.Pattern})
	}
	return routes
}

// stripV1 folds the versioned /v1 spelling of a path onto its
// unprefixed alias, so both spellings share one dispatch table and
// one pre-registered endpoint metric label (the cardinality bound:
// the version prefix must not mint new label values).
func stripV1(path string) string {
	if rest, ok := strings.CutPrefix(path, "/v1/"); ok {
		return "/" + rest
	}
	return path
}

// notFoundHandler answers unroutable paths with the JSON error
// envelope — the one error shape every endpoint speaks (the net/http
// default would emit a plain-text 404). The /v1 prefix is folded
// away so an unknown path 404s byte-identically under both
// spellings, like every other answer.
func notFoundHandler(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("serve: unknown endpoint %q", stripV1(r.URL.Path))})
}

// handlerFor maps an endpoint pattern to its handler on s.
func (s *Server) handlerFor(pattern string) http.HandlerFunc {
	switch pattern {
	case "/embed":
		return s.handleEmbed
	case "/predict":
		return s.handlePredict
	case "/topk":
		return s.handleTopK
	case "/healthz":
		return s.handleHealthz
	case "/metrics":
		return s.handleMetrics
	case "/reload":
		return s.handleReload
	}
	panic("serve: endpoint " + pattern + " has no handler")
}

// NewServer builds a server over ds. No checkpoint is loaded yet;
// call Load (or POST /reload with a path) before serving queries.
func NewServer(ds *datasets.Dataset, opts Options) *Server {
	opts = opts.withDefaults()
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	eng := NewEngine(ds, opts)
	s := &Server{eng: eng, bat: newBatcher(eng, eng.opts.MaxBatch)}
	s.gate = newAdmitGate(eng.opts, func() int { return len(s.bat.reqs) })
	s.gate.instrument(opts.Obs, map[string]string{"model": opts.ModelName})
	s.bat.instrument(opts.Obs, map[string]string{"model": opts.ModelName})
	s.inst = newModelMetrics(opts.Obs, opts.ModelName, opts.AccessLog, endpointPatterns(perModelEndpoints))
	mux := http.NewServeMux()
	for _, e := range perModelEndpoints {
		h := s.handlerFor(e.Pattern)
		mux.HandleFunc(e.Pattern, h)
		mux.HandleFunc("/v1"+e.Pattern, h)
	}
	mux.HandleFunc("/", notFoundHandler)
	s.mux = mux
	return s
}

// Engine exposes the underlying inference engine.
func (s *Server) Engine() *Engine { return s.eng }

// Load installs the checkpoint at path and remembers it as the
// default for subsequent Reload calls.
func (s *Server) Load(path string) (uint64, error) {
	v, err := s.eng.LoadCheckpoint(path)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.ckptPath = path
	s.mu.Unlock()
	return v, nil
}

// Reload re-reads the last loaded checkpoint path and swaps the new
// snapshot in without interrupting in-flight requests.
func (s *Server) Reload() (uint64, error) {
	s.mu.Lock()
	path := s.ckptPath
	s.mu.Unlock()
	if path == "" {
		return 0, fmt.Errorf("serve: no checkpoint path to reload")
	}
	return s.eng.LoadCheckpoint(path)
}

// CheckpointPath returns the checkpoint the server last loaded
// (empty before the first Load).
func (s *Server) CheckpointPath() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptPath
}

// Close stops the micro-batch dispatcher.
func (s *Server) Close() { s.bat.close() }

// ServeHTTP implements http.Handler. Every request — known endpoint
// or not — runs under the obs middleware; unknown paths fold into the
// catch-all endpoint label, and /v1 spellings share their alias's
// label.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inst.serve(stripV1(r.URL.Path), s.mux, w, r)
}

// instruments exposes the server's obs middleware to the registry,
// which bills its own per-model status route to the model it serves.
func (s *Server) instruments() *modelMetrics { return s.inst }

// handleMetrics serves the model-scoped Prometheus rows. Behind a
// Registry the same handler backs /models/{name}/metrics, while the
// registry's bare /metrics renders every model's rows.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.inst.handleMetrics(w, r)
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// Reason classifies overload-protection rejections machine-readably
	// — "shed" (queue high-water mark), "quota" (QPS limit), "deadline"
	// (per-request deadline expired), "canceled" (client went away).
	// Absent on every other error, so pre-existing error bodies are
	// byte-identical.
	Reason string `json:"reason,omitempty"`
}

// statusFor maps engine errors onto HTTP statuses: server-side
// conditions (no model loaded yet, server closing) are 503 so
// retry policies keyed on 4xx-vs-5xx treat them as retryable,
// shed requests are 429 (back off and retry), expired deadlines are
// 504, unsupported methods are 405, and everything else surfaced
// here is a caller mistake.
func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, errShed), errors.Is(err, errQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client disconnected; the status is for the log line, not
		// the (gone) client. 503 keeps it in the retryable class.
		return http.StatusServiceUnavailable
	case errors.Is(err, errClosed), errors.Is(err, errShardDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, errNotOwned):
		return http.StatusNotFound
	case errors.Is(err, errMethod):
		return http.StatusMethodNotAllowed
	case strings.Contains(err.Error(), "no model loaded"):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// reasonFor classifies overload-protection errors for the structured
// error body ("" for everything else).
func reasonFor(err error) string {
	switch {
	case errors.Is(err, errShed):
		return "shed"
	case errors.Is(err, errQuota):
		return "quota"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return ""
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), errorBody{Error: err.Error(), Reason: reasonFor(err)})
}

// boundCtx bounds a query context by the configured per-model
// deadline when one is set. It backs both transports: HTTP handlers
// pass the request context (canceled by net/http on disconnect), the
// wire listener its per-connection context.
func boundCtx(ctx context.Context, deadline time.Duration) (context.Context, context.CancelFunc) {
	if deadline <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, deadline)
}

// queryCtx derives the context an HTTP query runs under.
func queryCtx(r *http.Request, deadline time.Duration) (context.Context, context.CancelFunc) {
	return boundCtx(r.Context(), deadline)
}

// parseVertexID is the one vertex-id parser for every query
// endpoint: plain base-10 digits, nothing else. strconv.Atoi is
// deliberately not used directly — it accepts "+3" and "-0", and
// ad-hoc trimming made "%203" valid on one endpoint and a 400 on
// another. Every endpoint rejecting the same surface forms with the
// same error text is what makes the router's scatter paths
// byte-identical to a single process on malformed input too.
func parseVertexID(tok string) (int, error) {
	bad := func() (int, error) {
		return 0, fmt.Errorf("serve: bad vertex id %q (want plain decimal digits)", tok)
	}
	if tok == "" || len(tok) > 10 {
		return bad()
	}
	for i := 0; i < len(tok); i++ {
		if tok[i] < '0' || tok[i] > '9' {
			return bad()
		}
	}
	id, err := strconv.Atoi(tok)
	if err != nil {
		return bad()
	}
	return id, nil
}

// parseIDs extracts the queried vertex ids from ?ids=… or a JSON
// body {"ids":[…]}.
func parseIDs(r *http.Request) ([]int, error) {
	var ids []int
	switch r.Method {
	case http.MethodGet:
		raw := r.URL.Query().Get("ids")
		if raw == "" {
			return nil, fmt.Errorf("serve: missing ids parameter")
		}
		for _, tok := range strings.Split(raw, ",") {
			id, err := parseVertexID(tok)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
	case http.MethodPost:
		var body struct {
			IDs []int `json:"ids"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			return nil, fmt.Errorf("serve: bad JSON body: %w", err)
		}
		ids = body.IDs
	default:
		return nil, fmt.Errorf("%w: %s", errMethod, r.Method)
	}
	if err := checkQueryIDs(ids); err != nil {
		return nil, err
	}
	return ids, nil
}

// checkQueryIDs enforces the id-list bounds every transport shares:
// HTTP and wire requests reject empty and oversized lists with
// identical error text (the cross-transport equivalence contract).
func checkQueryIDs(ids []int) error {
	if len(ids) == 0 {
		return fmt.Errorf("serve: no ids given")
	}
	if len(ids) > maxQueryIDs {
		return fmt.Errorf("serve: %d ids exceeds the per-request limit of %d", len(ids), maxQueryIDs)
	}
	return nil
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	release, err := s.gate.admit()
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	defer release()
	ids, err := parseIDs(r)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	ctx, cancel := queryCtx(r, s.eng.opts.Deadline)
	defer cancel()
	res, batch, err := s.bat.Embed(ctx, ids)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	annotBatch(r.Context(), batch)
	writeEmbedRes(w, r, res)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	release, err := s.gate.admit()
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	defer release()
	ids, err := parseIDs(r)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	ctx, cancel := queryCtx(r, s.eng.opts.Deadline)
	defer cancel()
	res, batch, err := s.bat.Predict(ctx, ids)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	annotBatch(r.Context(), batch)
	writePredictRes(w, r, res)
}

// topkQuery is a parsed /topk request.
type topkQuery struct {
	id, k int
	mode  string
	ef    int
}

// parseTopKQuery validates a /topk request for a graph of the given
// vertex count. It is shared by the single-engine handler and the
// scatter-gather router so both reject exactly the same surface forms
// with the same bodies.
func parseTopKQuery(r *http.Request, vertices int, annEnabled bool) (topkQuery, error) {
	if r.Method != http.MethodGet {
		return topkQuery{}, fmt.Errorf("%w: %s", errMethod, r.Method)
	}
	q := r.URL.Query()
	if q.Get("id") == "" {
		return topkQuery{}, fmt.Errorf("serve: missing id parameter")
	}
	id, err := parseVertexID(q.Get("id"))
	if err != nil {
		return topkQuery{}, err
	}
	k, kSet := 0, false
	if raw := q.Get("k"); raw != "" {
		kSet = true
		if k, err = strconv.Atoi(raw); err != nil {
			return topkQuery{}, fmt.Errorf("serve: bad k parameter %q", raw)
		}
	}
	// Validate the mode string before parsing ef so a doubly-invalid
	// request reports the bad mode first, as it always has.
	mode := q.Get("mode")
	if _, err := resolveTopK(topkQuery{mode: mode}, true, vertices, annEnabled); err != nil {
		return topkQuery{}, err
	}
	ef := 0
	if raw := q.Get("ef"); raw != "" {
		if ef, err = strconv.Atoi(raw); err != nil || ef < 1 {
			return topkQuery{}, fmt.Errorf("serve: bad ef parameter %q (want a positive integer)", raw)
		}
	}
	return resolveTopK(topkQuery{id: id, k: k, mode: mode, ef: ef}, kSet, vertices, annEnabled)
}

// resolveTopK applies the semantic top-K rules both transports share
// once their surface forms are parsed: the unset-k default clamped to
// the graph, mode-string validation, and the ef-requires-ann rule.
// Keeping them in one resolver is what makes a wire request and its
// HTTP twin succeed or fail with identical error text.
func resolveTopK(q topkQuery, kSet bool, vertices int, annEnabled bool) (topkQuery, error) {
	if !kSet {
		// The client sent no k: clamp the server-side default to the
		// graph rather than rejecting it for exceeding |V|-1 (an
		// explicit out-of-range k is still an error).
		q.k = 10
		if q.k > vertices-1 {
			q.k = vertices - 1
		}
	}
	switch q.mode {
	case ModeAuto, ModeExact, ModeANN:
	default:
		return topkQuery{}, fmt.Errorf("serve: bad mode parameter %q (want exact or ann)", q.mode)
	}
	if q.ef != 0 && (q.mode == ModeExact || (q.mode == ModeAuto && !annEnabled)) {
		return topkQuery{}, fmt.Errorf("serve: ef applies only to mode=ann")
	}
	return q, nil
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	release, err := s.gate.admit()
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	defer release()
	tq, err := parseTopKQuery(r, s.eng.ds.G.NumVertices(), s.eng.opts.ANN)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	res, err := s.eng.TopKWith(tq.id, tq.k, tq.mode, tq.ef)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	writeTopKRes(w, r, res)
}

type healthBody struct {
	Status       string  `json:"status"`
	Version      uint64  `json:"version"`
	ModelVersion uint64  `json:"model_version"`
	Vertices     int     `json:"vertices"`
	Edges        int64   `json:"edges"`
	Dim          int     `json:"dim"`
	Classes      int     `json:"classes"`
	WarmStart    bool    `json:"warm_start"`
	WarmNote     string  `json:"warm_note,omitempty"`
	Dtype        string  `json:"dtype"`
	ResidentB    int64   `json:"resident_bytes"`
	MappedB      int64   `json:"mapped_bytes,omitempty"`
	Batches      uint64  `json:"batches"`
	Queries      uint64  `json:"queries"`
	Coalescing   float64 `json:"coalescing"`
}

// health assembles the single-model health body. It is the one
// source of truth for both the legacy /healthz response and the
// per-model extended status (modelStatus embeds healthBody), so the
// documented "per-model healthz is a superset of legacy /healthz"
// invariant holds by construction.
func (s *Server) health() healthBody {
	body := healthBody{
		Status:   "loading",
		Vertices: s.eng.ds.G.NumVertices(),
		Edges:    s.eng.ds.G.NumEdges(),
		Classes:  s.eng.ds.NumClasses,
		Dtype:    s.eng.opts.Dtype.String(),
	}
	if st, err := s.eng.Snapshot(); err == nil {
		body.Status = "ok"
		body.Version = st.Version
		body.ModelVersion = st.ModelVersion
		body.Dim = st.Dim()
		body.WarmStart = st.WarmStart
		body.WarmNote = st.WarmNote
		body.Dtype = st.Dtype().String()
		body.ResidentB = st.ResidentBytes()
		body.MappedB = st.MappedBytes()
	}
	body.Batches, body.Queries = s.bat.Stats()
	if body.Batches > 0 {
		body.Coalescing = float64(body.Queries) / float64(body.Batches)
	}
	return body
}

// modelInfo reports the registry-facing configuration summary of an
// unsharded model.
func (s *Server) modelInfo() modelInfo {
	info := modelInfo{
		artifact:   s.eng.ArtifactPath(),
		annDefault: s.eng.opts.ANN,
		index:      "none",
	}
	if st, err := s.eng.Snapshot(); err == nil {
		if st.IndexReady() {
			info.index = "built"
		} else {
			info.index = "lazy"
		}
	}
	return info
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "serve: reload requires POST"})
		return
	}
	var body struct {
		Path string `json:"path"`
		// Artifact retargets the warm-start source for this and all
		// subsequent reloads before the new snapshot is built: a string
		// points at a new artifact file, "" disables the warm path. When
		// the field is absent the configured source is kept, so a plain
		// {"path": …} reload behaves exactly as before.
		Artifact *string `json:"artifact"`
	}
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, fmt.Errorf("serve: bad JSON body: %w", err))
			return
		}
	}
	// Retarget the warm-start source before building the new snapshot
	// (the retarget is what the load should warm from), but restore it
	// if the load fails: a 500 reload must leave every piece of
	// serving state — snapshot, checkpoint path, artifact source —
	// exactly as it was. swapMu makes the retarget+load+rollback
	// sequence atomic against other /reload requests, so a failing
	// reload's rollback can never clobber a concurrent reload's
	// freshly set source.
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	restoreArtifact := func() {}
	if body.Artifact != nil {
		prev := s.eng.ArtifactPath()
		s.eng.SetArtifactPath(*body.Artifact)
		restoreArtifact = func() { s.eng.SetArtifactPath(prev) }
	}
	var (
		v   uint64
		err error
	)
	if body.Path != "" {
		v, err = s.Load(body.Path)
	} else {
		v, err = s.Reload()
	}
	if err != nil {
		restoreArtifact()
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	// Answer from the snapshot the reload just installed — including
	// its warm-start outcome, so a reload that switched artifacts (or
	// lost one) reports the state /healthz will now show.
	st, _ := s.eng.Snapshot()
	writeJSON(w, http.StatusOK, reloadBody{
		Version:      v,
		ModelVersion: st.ModelVersion,
		WarmStart:    st.WarmStart,
		WarmNote:     st.WarmNote,
	})
}

// reloadBody is the successful /reload response.
type reloadBody struct {
	Version      uint64 `json:"version"`
	ModelVersion uint64 `json:"model_version"`
	WarmStart    bool   `json:"warm_start"`
	WarmNote     string `json:"warm_note,omitempty"`
}
