package serve

import "math"

// topKList is a bounded skiplist holding the K best (score, id)
// pairs seen so far, ordered by descending score with ties broken by
// ascending id — the ordered in-memory index idiom of redis-style
// zskiplists, sized to the paper's serving workload (K is small, the
// candidate stream is |V| long, and most candidates are rejected by
// one comparison against the current tail).
//
// Levels are drawn from a private LCG (p = 1/4), so a list built
// from a given offer sequence has a deterministic shape and the
// structure is safe to build inside sharded scans without any global
// randomness source.

const tkMaxLevel = 12

type tkNode struct {
	id    int32
	score float64
	next  []*tkNode
}

type topKList struct {
	k      int
	head   *tkNode
	tail   *tkNode
	length int
	level  int
	seed   uint64
}

// newTopKList returns an empty list bounded to the k best entries.
func newTopKList(k int) *topKList {
	return &topKList{
		k:     k,
		head:  &tkNode{next: make([]*tkNode, tkMaxLevel)},
		level: 1,
		seed:  0x9E3779B97F4A7C15,
	}
}

// tkBefore reports whether (s1, id1) ranks strictly ahead of
// (s2, id2): higher score first, lower id on ties. It is a total
// order for distinct ids, which is what makes sharded scans merge
// deterministically.
func tkBefore(s1 float64, id1 int32, s2 float64, id2 int32) bool {
	if s1 != s2 {
		return s1 > s2
	}
	return id1 < id2
}

// randLevel draws a node height with P(level >= l+1 | level >= l) = 1/4.
func (t *topKList) randLevel() int {
	lvl := 1
	for lvl < tkMaxLevel {
		t.seed = t.seed*6364136223846793005 + 1442695040888963407
		if (t.seed>>33)&3 != 0 {
			break
		}
		lvl++
	}
	return lvl
}

// Len returns the number of held entries.
func (t *topKList) Len() int { return t.length }

// front returns the best-ranked node (nil when empty).
func (t *topKList) front() *tkNode { return t.head.next[0] }

// Offer considers (id, score) for membership: when the list is full
// and the candidate does not beat the current worst entry it is
// rejected with a single comparison; otherwise it is inserted and the
// worst entry evicted. ids must be unique across the offer stream.
//
// NaN scores are rejected outright: tkBefore is not a total order in
// their presence (every comparison against NaN answers false, which
// would park a NaN entry at the front of the list ahead of every real
// score), and a similarity that is not a number ranks nothing.
func (t *topKList) Offer(id int32, score float64) {
	if t.k <= 0 || math.IsNaN(score) {
		return
	}
	if t.length == t.k {
		w := t.tail
		if !tkBefore(score, id, w.score, w.id) {
			return
		}
		t.remove(w)
	}
	t.insert(id, score)
}

// insert links a new node at its ranked position.
func (t *topKList) insert(id int32, score float64) {
	var update [tkMaxLevel]*tkNode
	x := t.head
	for i := t.level - 1; i >= 0; i-- {
		for x.next[i] != nil && tkBefore(x.next[i].score, x.next[i].id, score, id) {
			x = x.next[i]
		}
		update[i] = x
	}
	lvl := t.randLevel()
	if lvl > t.level {
		for i := t.level; i < lvl; i++ {
			update[i] = t.head
		}
		t.level = lvl
	}
	n := &tkNode{id: id, score: score, next: make([]*tkNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	if n.next[0] == nil {
		t.tail = n
	}
	t.length++
}

// remove unlinks node w (which must be a member).
func (t *topKList) remove(w *tkNode) {
	var update [tkMaxLevel]*tkNode
	x := t.head
	for i := t.level - 1; i >= 0; i-- {
		for x.next[i] != nil && tkBefore(x.next[i].score, x.next[i].id, w.score, w.id) {
			x = x.next[i]
		}
		update[i] = x
	}
	for i := 0; i < t.level; i++ {
		if update[i].next[i] == w {
			update[i].next[i] = w.next[i]
		}
	}
	for t.level > 1 && t.head.next[t.level-1] == nil {
		t.level--
	}
	if t.tail == w {
		if update[0] == t.head {
			t.tail = nil
		} else {
			t.tail = update[0]
		}
	}
	t.length--
}

// items returns the ranked contents, best first.
func (t *topKList) items() []Neighbor {
	out := make([]Neighbor, 0, t.length)
	for x := t.front(); x != nil; x = x.next[0] {
		out = append(out, Neighbor{ID: int(x.id), Score: x.score})
	}
	return out
}
