// Overload protection: the admission gate every query endpoint passes
// before any work is queued. The gate sheds early — before parsing,
// before the micro-batch queue — when the batcher's queue depth is at
// its high-water mark or a per-model QPS quota is exhausted, so an
// overloaded model answers cheap 429s instead of stacking requests it
// will answer late or never. Shedding is observation-equivalent by
// construction: it only decides *whether* a request is admitted, never
// touches how an admitted request is answered, so answered responses
// are byte-identical with shedding enabled or disabled (test-enforced).
// (The package doc comment lives in engine.go.)

package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gsgcn/internal/obs"
)

// errShed marks a query rejected because the micro-batch queue is at
// its high-water mark. 429: the client should back off and retry.
var errShed = errors.New("serve: overloaded, request shed")

// errQuota marks a query rejected by the per-model QPS quota. Also
// 429, distinguished in the error body and the shed metrics.
var errQuota = errors.New("serve: rate quota exceeded")

// admitGate is one model's admission control: a queue-depth high-water
// check, an optional token-bucket QPS quota, and the in-flight count
// behind gsgcn_inflight. A gate with both limits disabled admits
// unconditionally (and reads no clock), so a server built without
// shedding options behaves exactly as before the gate existed.
type admitGate struct {
	// hw is the queue-depth high-water mark; 0 disables the check.
	hw int
	// depth reads the live micro-batch queue depth (max across shards
	// on a router). Consulted only when hw > 0.
	depth func() int

	// limit is the QPS quota (0 = unlimited), enforced by a token
	// bucket with burst = max(limit, 1) so a quota of q admits at most
	// ~q queries in any second, while short pauses bank a second of
	// credit.
	limit float64
	burst float64
	mu    sync.Mutex
	tok   float64
	last  time.Time
	now   func() time.Time // injectable for deterministic quota tests

	inflight atomic.Int64

	// shedQueue/shedQuota are the gsgcn_shed_total counters, one per
	// rejection reason (nil on an unobserved gate).
	shedQueue *obs.Counter
	shedQuota *obs.Counter
}

// newAdmitGate builds a gate from resolved options. depth sources the
// live queue measurement; it is only called when ShedQueueHW is set.
func newAdmitGate(opts Options, depth func() int) *admitGate {
	g := &admitGate{hw: opts.ShedQueueHW, depth: depth, limit: opts.QPSLimit, now: time.Now}
	if g.limit > 0 {
		g.burst = g.limit
		if g.burst < 1 {
			g.burst = 1
		}
		g.tok = g.burst
		g.last = g.now()
	}
	return g
}

// admit decides whether one query may enter the serving path. On
// success it returns a release func the caller must run when the
// request finishes (it keeps the in-flight gauge honest). On
// rejection the error is errShed or errQuota — both 429.
func (g *admitGate) admit() (release func(), err error) {
	if g == nil {
		// Servers assembled by hand (tests) have no gate; admit freely.
		return func() {}, nil
	}
	if g.hw > 0 && g.depth() >= g.hw {
		if g.shedQueue != nil {
			g.shedQueue.Inc()
		}
		return nil, fmt.Errorf("%w (queue depth at high-water mark %d)", errShed, g.hw)
	}
	if g.limit > 0 {
		g.mu.Lock()
		now := g.now()
		g.tok += now.Sub(g.last).Seconds() * g.limit
		if g.tok > g.burst {
			g.tok = g.burst
		}
		g.last = now
		if g.tok < 1 {
			g.mu.Unlock()
			if g.shedQuota != nil {
				g.shedQuota.Inc()
			}
			return nil, fmt.Errorf("%w (%g queries/sec)", errQuota, g.limit)
		}
		g.tok--
		g.mu.Unlock()
	}
	g.inflight.Add(1)
	return func() { g.inflight.Add(-1) }, nil
}

// Inflight reports the number of admitted queries currently being
// served.
func (g *admitGate) Inflight() int64 { return g.inflight.Load() }

// instrument exports the gate's shed counters and in-flight gauge.
// Observation-only, like every other metric: nothing on the admission
// path reads them back.
func (g *admitGate) instrument(reg *obs.Registry, labels map[string]string) {
	withReason := func(reason string) map[string]string {
		l := make(map[string]string, len(labels)+1)
		for k, v := range labels {
			l[k] = v
		}
		l["reason"] = reason
		return l
	}
	g.shedQueue = reg.Counter("gsgcn_shed_total",
		"Queries rejected with 429 by admission control, by reason (queue = depth high-water mark, quota = QPS limit).",
		withReason("queue"))
	g.shedQuota = reg.Counter("gsgcn_shed_total",
		"Queries rejected with 429 by admission control, by reason (queue = depth high-water mark, quota = QPS limit).",
		withReason("quota"))
	reg.GaugeFunc("gsgcn_inflight",
		"Admitted queries currently in flight (between admission and response).",
		labels, func() float64 { return float64(g.inflight.Load()) })
}
