package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"

	"gsgcn/internal/wire"
)

// This file is the serving plane's binary-transport integration: the
// HTTP content negotiation that lets any query endpoint answer with a
// wire frame instead of JSON, the wire-native query paths on Server
// and Router (same admission gate, deadline bound and micro-batcher as
// the HTTP handlers), and the registry's persistent-connection TCP
// listener. Both transports answer from identical result structs, so
// a decoded wire answer is bit-identical to the JSON answer
// (test-enforced in pkg/client).

// wantsWire reports whether the request negotiated the binary wire
// encoding for its response body.
func wantsWire(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

// writeWire emits one wire frame as the HTTP response body. Encode can
// only fail on a string field overflowing its u16 length prefix, which
// wireError already truncates away, so the fallback is unreachable in
// practice.
func writeWire(w http.ResponseWriter, status int, m wire.Message) {
	frame, err := wire.Encode(m)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(status)
	_, _ = w.Write(frame)
}

// wireError builds an error frame, truncating the message to the u16
// string cap so encoding cannot fail.
func wireError(status int, reason, msg string) *wire.ErrorResponse {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	return &wire.ErrorResponse{Status: status, Reason: reason, Message: msg}
}

// wireErrFor maps a handler error to its wire frame: the same status,
// reason and message the JSON envelope carries, so both transports
// fail identically.
func wireErrFor(err error) *wire.ErrorResponse {
	return wireError(statusFor(err), reasonFor(err), err.Error())
}

// writeQueryErr writes a query error in the negotiated encoding.
func writeQueryErr(w http.ResponseWriter, r *http.Request, err error) {
	if wantsWire(r) {
		writeWire(w, statusFor(err), wireErrFor(err))
		return
	}
	writeErr(w, err)
}

func wireEmbedResp(res *EmbedResult) *wire.EmbedResponse {
	return &wire.EmbedResponse{
		Version:      res.Version,
		ModelVersion: res.ModelVersion,
		Dim:          res.Dim,
		IDs:          res.IDs,
		Vectors:      res.Vectors,
	}
}

func wirePredictResp(res *PredictResult) *wire.PredictResponse {
	return &wire.PredictResponse{
		Version:      res.Version,
		ModelVersion: res.ModelVersion,
		Classes:      res.Classes,
		MultiLabel:   res.MultiLabel,
		IDs:          res.IDs,
		Labels:       res.Labels,
		Probs:        res.Probs,
	}
}

func wireTopKResp(res *TopKResult) *wire.TopKResponse {
	mode, _ := wire.ModeByte(res.Mode)
	nbs := make([]wire.Neighbor, len(res.Neighbors))
	for i, n := range res.Neighbors {
		nbs[i] = wire.Neighbor{ID: n.ID, Score: n.Score}
	}
	return &wire.TopKResponse{
		Version:      res.Version,
		ModelVersion: res.ModelVersion,
		ID:           res.ID,
		K:            res.K,
		Mode:         mode,
		Ef:           res.Ef,
		Degraded:     res.Degraded,
		Neighbors:    nbs,
	}
}

// writeEmbedRes / writePredictRes / writeTopKRes write a successful
// query answer in the negotiated encoding. Only the query endpoints
// negotiate — control-plane bodies (health, reload, listings) stay
// JSON-only.
func writeEmbedRes(w http.ResponseWriter, r *http.Request, res *EmbedResult) {
	if wantsWire(r) {
		writeWire(w, http.StatusOK, wireEmbedResp(res))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func writePredictRes(w http.ResponseWriter, r *http.Request, res *PredictResult) {
	if wantsWire(r) {
		writeWire(w, http.StatusOK, wirePredictResp(res))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func writeTopKRes(w http.ResponseWriter, r *http.Request, res *TopKResult) {
	if wantsWire(r) {
		writeWire(w, http.StatusOK, wireTopKResp(res))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// wireEmbed answers an embed request arriving over the binary
// transport: the same admission gate, id-count validation, deadline
// bound and micro-batcher the HTTP handler uses, minus the HTTP
// surface parsing. Concurrent wire requests coalesce into micro-
// batches exactly like concurrent HTTP requests.
func (s *Server) wireEmbed(ctx context.Context, ids []int) (*EmbedResult, error) {
	release, err := s.gate.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	if err := checkQueryIDs(ids); err != nil {
		return nil, err
	}
	ctx, cancel := boundCtx(ctx, s.eng.opts.Deadline)
	defer cancel()
	res, _, err := s.bat.Embed(ctx, ids)
	return res, err
}

// wirePredict is wireEmbed for predictions.
func (s *Server) wirePredict(ctx context.Context, ids []int) (*PredictResult, error) {
	release, err := s.gate.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	if err := checkQueryIDs(ids); err != nil {
		return nil, err
	}
	ctx, cancel := boundCtx(ctx, s.eng.opts.Deadline)
	defer cancel()
	res, _, err := s.bat.Predict(ctx, ids)
	return res, err
}

// wireTopK answers a top-K request arriving over the binary transport,
// applying the same defaulting/validation rules as the HTTP query
// parser (resolveTopK) so both transports reject identical requests
// with identical error text.
func (s *Server) wireTopK(q topkQuery, kSet bool) (*TopKResult, error) {
	release, err := s.gate.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	tq, err := resolveTopK(q, kSet, s.eng.ds.G.NumVertices(), s.eng.opts.ANN)
	if err != nil {
		return nil, err
	}
	return s.eng.TopKWith(tq.id, tq.k, tq.mode, tq.ef)
}

// wireEmbed scatters a wire embed request across the shard fleet —
// the Router-side twin of Server.wireEmbed.
func (rt *Router) wireEmbed(ctx context.Context, ids []int) (*EmbedResult, error) {
	release, err := rt.gate.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	if err := checkQueryIDs(ids); err != nil {
		return nil, err
	}
	ctx, cancel := boundCtx(ctx, rt.opts.Deadline)
	defer cancel()
	res, _, err := rt.embed(ctx, ids)
	return res, err
}

// wirePredict is the Router-side twin of Server.wirePredict.
func (rt *Router) wirePredict(ctx context.Context, ids []int) (*PredictResult, error) {
	release, err := rt.gate.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	if err := checkQueryIDs(ids); err != nil {
		return nil, err
	}
	ctx, cancel := boundCtx(ctx, rt.opts.Deadline)
	defer cancel()
	res, _, err := rt.predict(ctx, ids)
	return res, err
}

// wireTopK is the Router-side twin of Server.wireTopK.
func (rt *Router) wireTopK(q topkQuery, kSet bool) (*TopKResult, error) {
	release, err := rt.gate.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	tq, err := resolveTopK(q, kSet, rt.ds.G.NumVertices(), rt.opts.ANN)
	if err != nil {
		return nil, err
	}
	return rt.TopKWith(tq.id, tq.k, tq.mode, tq.ef)
}

// ServeWire accepts persistent wire-protocol connections on l and
// serves framed requests until the listener closes (its error is
// returned). Each connection carries pipelined frames: requests
// dispatch concurrently into the same admission/deadline/batching
// machinery as HTTP, responses return in request order.
func (r *Registry) ServeWire(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go r.serveWireConn(conn)
	}
}

// serveWireConn runs one persistent connection. The reader loop
// enqueues one response slot per decoded frame and answers each frame
// on its own goroutine — so pipelined requests coalesce in the
// micro-batcher — while the writer goroutine drains slots strictly in
// request order, flushing when the pipeline runs dry. A malformed
// frame answers with an error frame and closes the connection: framing
// is unrecoverable once the stream is off by a byte.
func (r *Registry) serveWireConn(conn net.Conn) {
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	slots := make(chan chan wire.Message, 128)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var werr error
		for slot := range slots {
			m := <-slot
			if werr != nil {
				continue // peer gone; keep draining so answerers never block
			}
			if werr = wire.WriteMessage(bw, m); werr == nil && len(slots) == 0 {
				werr = bw.Flush()
			}
		}
		if werr == nil {
			_ = bw.Flush()
		}
	}()
	for {
		msg, err := wire.ReadMessage(br)
		if err != nil {
			if err != io.EOF {
				slot := make(chan wire.Message, 1)
				slot <- wireError(http.StatusBadRequest, "", err.Error())
				slots <- slot
			}
			break
		}
		slot := make(chan wire.Message, 1)
		slots <- slot
		go func(msg wire.Message) { slot <- r.answerWire(ctx, msg) }(msg)
	}
	close(slots)
	<-done
}

// answerWire dispatches one decoded request frame to its model and
// converts the answer (or error) back to a frame. Every frame counts
// toward gsgcn_requests_total{transport="wire"} under the model it
// addressed (the registry's own label for unresolvable frames).
func (r *Registry) answerWire(ctx context.Context, msg wire.Message) wire.Message {
	var model string
	switch m := msg.(type) {
	case *wire.EmbedRequest:
		model = m.Model
	case *wire.PredictRequest:
		model = m.Model
	case *wire.TopKRequest:
		model = m.Model
	default:
		r.inst.countWire()
		return wireError(http.StatusBadRequest, "",
			fmt.Sprintf("serve: frame type 0x%02x is not a request", byte(msg.FrameType())))
	}
	srv, errResp := r.wireModel(model)
	if errResp != nil {
		r.inst.countWire()
		return errResp
	}
	srv.instruments().countWire()
	switch m := msg.(type) {
	case *wire.EmbedRequest:
		res, err := srv.wireEmbed(ctx, m.IDs)
		if err != nil {
			return wireErrFor(err)
		}
		return wireEmbedResp(res)
	case *wire.PredictRequest:
		res, err := srv.wirePredict(ctx, m.IDs)
		if err != nil {
			return wireErrFor(err)
		}
		return wirePredictResp(res)
	case *wire.TopKRequest:
		mode, ok := wire.ModeString(m.Mode)
		if !ok {
			// Surface the unknown byte through the same bad-mode error
			// the HTTP parser emits for an unknown mode string.
			mode = fmt.Sprintf("0x%02x", m.Mode)
		}
		res, err := srv.wireTopK(topkQuery{id: m.ID, k: m.K, mode: mode, ef: m.Ef}, m.K != 0)
		if err != nil {
			return wireErrFor(err)
		}
		return wireTopKResp(res)
	}
	return nil // unreachable: the first switch rejected non-requests
}

// wireModel resolves a request frame's model name exactly as HTTP
// dispatch does: empty addresses the default model, with the same
// error statuses and messages for unknown names and an empty registry.
func (r *Registry) wireModel(name string) (ModelServer, *wire.ErrorResponse) {
	if name == "" {
		def := r.Default()
		if def == "" {
			return nil, wireError(http.StatusServiceUnavailable, "", "serve: no models registered")
		}
		srv, _ := r.Get(def)
		return srv, nil
	}
	srv, ok := r.Get(name)
	if !ok {
		return nil, wireError(http.StatusNotFound, "", fmt.Sprintf("serve: unknown model %q", name))
	}
	return srv, nil
}
