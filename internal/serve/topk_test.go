package serve

import (
	"math"
	"sort"
	"testing"

	"gsgcn/internal/rng"
)

// refTopK mirrors topKList semantics with a plain sort.
func refTopK(items []Neighbor, k int) []Neighbor {
	s := append([]Neighbor(nil), items...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ID < s[j].ID
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

func TestTopKListRandomStreams(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(400)
		k := 1 + r.Intn(20)
		items := make([]Neighbor, n)
		for i := range items {
			// Coarse scores force plenty of ties to exercise the
			// id tiebreak.
			items[i] = Neighbor{ID: i, Score: float64(r.Intn(10)) / 10}
		}
		tk := newTopKList(k)
		for _, it := range items {
			tk.Offer(int32(it.ID), it.Score)
		}
		got := tk.items()
		want := refTopK(items, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
		if tk.Len() != len(want) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, tk.Len(), len(want))
		}
	}
}

func TestTopKListBounds(t *testing.T) {
	tk := newTopKList(3)
	for i := 0; i < 100; i++ {
		tk.Offer(int32(i), float64(i))
	}
	got := tk.items()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []int{99, 98, 97} {
		if got[i].ID != want {
			t.Errorf("rank %d = %d, want %d", i, got[i].ID, want)
		}
	}
	// Degenerate capacities.
	zero := newTopKList(0)
	zero.Offer(1, 1)
	if zero.Len() != 0 {
		t.Error("k=0 list accepted an entry")
	}
	one := newTopKList(1)
	one.Offer(5, 0.5)
	one.Offer(6, 0.9)
	one.Offer(7, 0.1)
	if items := one.items(); len(items) != 1 || items[0].ID != 6 {
		t.Errorf("k=1 list = %+v, want [{6 0.9}]", one.items())
	}
}

// TestTopKListCapacityExceedsStream covers k >= |V|: fewer offers
// than capacity must all be held, ranked, with the tail tracked
// correctly through partial fills.
func TestTopKListCapacityExceedsStream(t *testing.T) {
	tk := newTopKList(50)
	for i := 0; i < 7; i++ {
		tk.Offer(int32(i), float64(i%3))
	}
	items := tk.items()
	if len(items) != 7 || tk.Len() != 7 {
		t.Fatalf("held %d of 7 offers (Len %d)", len(items), tk.Len())
	}
	want := refTopK(items, 7)
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("rank %d: %+v, want %+v", i, items[i], want[i])
		}
	}
	// Exactly-full boundary: k == stream length.
	exact := newTopKList(7)
	for i := 0; i < 7; i++ {
		exact.Offer(int32(i), float64(i))
	}
	if exact.Len() != 7 {
		t.Fatalf("k==n list held %d", exact.Len())
	}
	// One more offer forces the first eviction at the boundary.
	exact.Offer(99, 100)
	if items := exact.items(); len(items) != 7 || items[0].ID != 99 {
		t.Fatalf("post-eviction items: %+v", items)
	}
}

// TestTopKListAllEqualScores forces every comparison through the id
// tiebreak: with one shared score the list must hold the k lowest
// ids, in ascending order, regardless of offer order.
func TestTopKListAllEqualScores(t *testing.T) {
	offer := []int32{9, 3, 11, 0, 7, 5, 1, 8, 2, 10, 6, 4}
	tk := newTopKList(5)
	for _, id := range offer {
		tk.Offer(id, 0.25)
	}
	items := tk.items()
	if len(items) != 5 {
		t.Fatalf("len = %d", len(items))
	}
	for i, want := range []int{0, 1, 2, 3, 4} {
		if items[i].ID != want || items[i].Score != 0.25 {
			t.Errorf("rank %d = %+v, want id %d", i, items[i], want)
		}
	}
}

// TestTopKListRejectsNaN pins the documented NaN contract: offers
// with NaN scores are dropped — they never enter the list, never
// evict a real entry, and never wedge the ordering (tkBefore is not a
// total order in NaN's presence, so admission would corrupt ranking).
func TestTopKListRejectsNaN(t *testing.T) {
	nan := math.NaN()
	tk := newTopKList(3)
	tk.Offer(1, nan) // NaN into an empty list
	if tk.Len() != 0 {
		t.Fatalf("empty list accepted NaN: %+v", tk.items())
	}
	tk.Offer(2, 0.5)
	tk.Offer(3, nan) // NaN into a partially-filled list
	tk.Offer(4, 0.9)
	tk.Offer(5, 0.1)
	tk.Offer(6, nan) // NaN into a full list
	items := tk.items()
	if len(items) != 3 {
		t.Fatalf("len = %d, want 3", len(items))
	}
	for i, want := range []Neighbor{{ID: 4, Score: 0.9}, {ID: 2, Score: 0.5}, {ID: 5, Score: 0.1}} {
		if items[i] != want {
			t.Fatalf("rank %d = %+v, want %+v", i, items[i], want)
		}
	}
	// Real offers after NaN rejections still rank correctly.
	tk.Offer(7, 0.7)
	if items := tk.items(); items[1].ID != 7 {
		t.Fatalf("post-NaN offer misplaced: %+v", items)
	}
}

// TestTopKListAscendingDescending exercises tail eviction from both
// directions: strictly improving offers evict on every insert,
// strictly worsening offers reject on every insert.
func TestTopKListAscendingDescending(t *testing.T) {
	up := newTopKList(5)
	for i := 0; i < 50; i++ {
		up.Offer(int32(i), float64(i))
	}
	if items := up.items(); items[0].ID != 49 || items[4].ID != 45 {
		t.Errorf("ascending stream: %+v", items)
	}
	down := newTopKList(5)
	for i := 0; i < 50; i++ {
		down.Offer(int32(i), float64(-i))
	}
	if items := down.items(); items[0].ID != 0 || items[4].ID != 4 {
		t.Errorf("descending stream: %+v", items)
	}
}
