package serve

import (
	"sort"
	"testing"

	"gsgcn/internal/rng"
)

// refTopK mirrors topKList semantics with a plain sort.
func refTopK(items []Neighbor, k int) []Neighbor {
	s := append([]Neighbor(nil), items...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].ID < s[j].ID
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

func TestTopKListRandomStreams(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(400)
		k := 1 + r.Intn(20)
		items := make([]Neighbor, n)
		for i := range items {
			// Coarse scores force plenty of ties to exercise the
			// id tiebreak.
			items[i] = Neighbor{ID: i, Score: float64(r.Intn(10)) / 10}
		}
		tk := newTopKList(k)
		for _, it := range items {
			tk.Offer(int32(it.ID), it.Score)
		}
		got := tk.items()
		want := refTopK(items, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: got %+v, want %+v", trial, i, got[i], want[i])
			}
		}
		if tk.Len() != len(want) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, tk.Len(), len(want))
		}
	}
}

func TestTopKListBounds(t *testing.T) {
	tk := newTopKList(3)
	for i := 0; i < 100; i++ {
		tk.Offer(int32(i), float64(i))
	}
	got := tk.items()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []int{99, 98, 97} {
		if got[i].ID != want {
			t.Errorf("rank %d = %d, want %d", i, got[i].ID, want)
		}
	}
	// Degenerate capacities.
	zero := newTopKList(0)
	zero.Offer(1, 1)
	if zero.Len() != 0 {
		t.Error("k=0 list accepted an entry")
	}
	one := newTopKList(1)
	one.Offer(5, 0.5)
	one.Offer(6, 0.9)
	one.Offer(7, 0.1)
	if items := one.items(); len(items) != 1 || items[0].ID != 6 {
		t.Errorf("k=1 list = %+v, want [{6 0.9}]", one.items())
	}
}

// TestTopKListAscendingDescending exercises tail eviction from both
// directions: strictly improving offers evict on every insert,
// strictly worsening offers reject on every insert.
func TestTopKListAscendingDescending(t *testing.T) {
	up := newTopKList(5)
	for i := 0; i < 50; i++ {
		up.Offer(int32(i), float64(i))
	}
	if items := up.items(); items[0].ID != 49 || items[4].ID != 45 {
		t.Errorf("ascending stream: %+v", items)
	}
	down := newTopKList(5)
	for i := 0; i < 50; i++ {
		down.Offer(int32(i), float64(-i))
	}
	if items := down.items(); items[0].ID != 0 || items[4].ID != 4 {
		t.Errorf("descending stream: %+v", items)
	}
}
