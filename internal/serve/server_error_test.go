package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
)

// doReq issues one request and returns status, the decoded error body
// (if any), and whether the response was well-formed JSON.
func doReq(tb testing.TB, method, url string, body string) (int, string, bool) {
	tb.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	var eb errorBody
	if json.Unmarshal(raw, &eb) != nil {
		return resp.StatusCode, string(raw), false
	}
	return resp.StatusCode, eb.Error, true
}

// TestServerErrorPaths sweeps every malformed-request class through
// the live handlers: each must come back as a clean 4xx/5xx with a
// JSON error body — no panics, no empty bodies, no 200s.
func TestServerErrorPaths(t *testing.T) {
	ds := testDataset(t, false) // 300 vertices
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)
	srv := NewServer(ds, Options{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"embed-malformed-json", "POST", "/embed", `{"ids": [1, 2`, http.StatusBadRequest},
		{"embed-wrong-json-shape", "POST", "/embed", `{"ids": "zero"}`, http.StatusBadRequest},
		{"embed-unknown-id", "GET", "/embed?ids=300", "", http.StatusBadRequest},
		{"embed-negative-id", "GET", "/embed?ids=-1", "", http.StatusBadRequest},
		{"embed-garbage-id", "GET", "/embed?ids=one,two", "", http.StatusBadRequest},
		{"embed-empty-ids", "POST", "/embed", `{"ids": []}`, http.StatusBadRequest},
		{"embed-wrong-method", "PUT", "/embed?ids=0", "", http.StatusMethodNotAllowed},
		{"predict-malformed-json", "POST", "/predict", `ids=1`, http.StatusBadRequest},
		{"predict-unknown-id", "GET", "/predict?ids=9999", "", http.StatusBadRequest},
		{"predict-wrong-method", "DELETE", "/predict?ids=0", "", http.StatusMethodNotAllowed},
		{"topk-missing-id", "GET", "/topk", "", http.StatusBadRequest},
		{"topk-unknown-id", "GET", "/topk?id=300&k=3", "", http.StatusBadRequest},
		{"topk-k-zero", "GET", "/topk?id=0&k=0", "", http.StatusBadRequest},
		{"topk-k-negative", "GET", "/topk?id=0&k=-4", "", http.StatusBadRequest},
		{"topk-k-over-v", "GET", "/topk?id=0&k=300", "", http.StatusBadRequest},
		{"topk-bad-k", "GET", "/topk?id=0&k=ten", "", http.StatusBadRequest},
		{"topk-bad-mode", "GET", "/topk?id=0&k=3&mode=fuzzy", "", http.StatusBadRequest},
		{"topk-bad-ef", "GET", "/topk?id=0&k=3&mode=ann&ef=zero", "", http.StatusBadRequest},
		{"topk-ef-nonpositive", "GET", "/topk?id=0&k=3&mode=ann&ef=0", "", http.StatusBadRequest},
		{"topk-ef-without-ann", "GET", "/topk?id=0&k=3&mode=exact&ef=32", "", http.StatusBadRequest},
		{"topk-wrong-method", "POST", "/topk?id=0&k=3", "", http.StatusMethodNotAllowed},
		{"reload-wrong-method", "GET", "/reload", "", http.StatusMethodNotAllowed},
		{"reload-malformed-json", "POST", "/reload", `{"path": 3`, http.StatusBadRequest},
		{"reload-missing-file", "POST", "/reload", `{"path": "/nonexistent/m.ckpt"}`, http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, msg, isJSON := doReq(t, tc.method, ts.URL+tc.path, tc.body)
			if status != tc.wantStatus {
				t.Errorf("status = %d, want %d (body %q)", status, tc.wantStatus, msg)
			}
			if !isJSON {
				t.Errorf("response body is not JSON: %q", msg)
			}
			if msg == "" {
				t.Error("error body carries no message")
			}
		})
	}

	// The sweep must not have wedged the server.
	if code := getJSON(t, ts.URL+"/embed?ids=0", nil); code != 200 {
		t.Fatalf("healthy request after error sweep = %d", code)
	}
}

// TestTopKDefaultKClampedToTinyGraph pins the default-k contract on
// graphs smaller than the server's k=10 default: a request that sends
// no k must be answered with |V|-1 neighbors, while an explicit
// out-of-range k stays an error.
func TestTopKDefaultKClampedToTinyGraph(t *testing.T) {
	ds := datasets.Generate(datasets.Config{
		Name: "tiny", Vertices: 8, TargetEdges: 20,
		FeatureDim: 4, NumClasses: 2, Seed: 3,
	})
	eng := NewEngine(ds, Options{Workers: 1})
	m := core.NewModel(ds, core.Config{Layers: 2, Hidden: 4, Workers: 1, Seed: 17})
	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	srv := &Server{eng: eng, bat: newBatcher(eng, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", srv.handleTopK)
	srv.mux = mux
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var res TopKResult
	if code := getJSON(t, ts.URL+"/topk?id=0", &res); code != 200 {
		t.Fatalf("default-k on 8-vertex graph = %d", code)
	}
	if len(res.Neighbors) != 7 || res.K != 7 {
		t.Fatalf("default-k answer = k=%d with %d neighbors, want 7", res.K, len(res.Neighbors))
	}
	if status, _, _ := doReq(t, "GET", ts.URL+"/topk?id=0&k=10", ""); status != http.StatusBadRequest {
		t.Fatalf("explicit k=10 on 8-vertex graph = %d, want 400", status)
	}
}

// TestReloadDuringQueries exercises the reload error path under
// concurrent load: queries hammer /topk (both modes) while reloads —
// half of them failing on a missing file — swap snapshots. Every
// query must answer 200 and every bad reload a clean 500, with the
// server fully live afterwards.
func TestReloadDuringQueries(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpts := []string{trainAndSave(t, ds, 1, dir), trainAndSave(t, ds, 2, dir)}
	srv := NewServer(ds, Options{Workers: 2, ANNEf: 16})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, err := srv.Load(ckpts[0]); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mode := ModeExact
				if g%2 == 1 {
					mode = ModeANN
				}
				url := fmt.Sprintf("%s/topk?id=%d&k=3&mode=%s", ts.URL, i%300, mode)
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- fmt.Errorf("query during reload: %d %s", resp.StatusCode, body)
					return
				}
			}
		}(g)
	}

	for i := 0; i < 4; i++ {
		// Good reload, then a failing one against a missing path.
		if _, err := srv.Load(ckpts[i%2]); err != nil {
			t.Fatal(err)
		}
		status, msg, isJSON := doReq(t, "POST", ts.URL+"/reload", `{"path": "/nope.ckpt"}`)
		if status != http.StatusInternalServerError || !isJSON || msg == "" {
			t.Fatalf("bad reload = %d %q (json %v)", status, msg, isJSON)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var health healthBody
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health.Status != "ok" {
		t.Fatalf("post-test health = %d %+v", code, health)
	}
	// A failed reload must not have disturbed the serving snapshot.
	if health.Version != 5 {
		t.Errorf("version after 1 load + 4 reloads = %d, want 5", health.Version)
	}
}
