// Package serve implements the online inference subsystem: the
// serving half of the paper's pipeline. Training (Algorithms 1/5)
// samples subgraphs because backpropagation over the full graph is
// intractable; inference has no such constraint — the exact
// embeddings the paper evaluates (Section VI) come from one
// full-graph forward pass. This package computes that pass
// layer-by-layer over the CSR graph, streaming vertex blocks so peak
// memory stays O(|V|·f) (two layer activations plus per-worker block
// scratch), sharded over the shared perf worker pool.
//
// The computed embedding table, the model that produced it, and a
// top-K similarity index form one immutable State published through
// an atomic pointer: hot reload builds the next State off to the side
// and swaps it in, so in-flight requests finish against the snapshot
// they started with and nothing is ever locked on the query path.
//
// Determinism: every output row is produced by serial per-row
// arithmetic in a fixed order (neighbor aggregation in adjacency
// order, GEMM accumulation in k order — the same orders the training
// kernels use), and rows are assigned to exactly one vertex block, so
// the embedding table is bit-identical at every Workers and BlockSize
// setting and bit-identical to the training-side full-graph forward
// pass.
package serve

import (
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gsgcn/internal/ann"
	"gsgcn/internal/artifact"
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/nn"
	"gsgcn/internal/obs"
	"gsgcn/internal/partition"
	"gsgcn/internal/perf"
)

// Options parameterizes an inference engine.
type Options struct {
	// Workers is the goroutine budget for embedding computation and
	// top-K scans (0 = GOMAXPROCS). Results are identical at every
	// setting.
	Workers int
	// BlockSize is the number of vertices per streamed block of the
	// layer-wise forward pass (0 = 256). Affects scratch memory and
	// scheduling granularity only, never results.
	BlockSize int
	// MaxBatch caps how many queued queries the request layer
	// coalesces into one gather (0 = 64; 1 disables micro-batching).
	MaxBatch int
	// TopKCache bounds the number of memoized top-K query results
	// (0 = 1024). Entries are keyed by snapshot version, so a model
	// reload invalidates them wholesale.
	TopKCache int
	// ANN makes the HNSW index the default /topk mode (requests may
	// still pick mode=exact per call). The index is built lazily on
	// the first ANN query against a snapshot and memoized until the
	// next reload.
	ANN bool
	// ANNM is the HNSW connectivity: links per vertex per upper
	// layer, twice that on the base layer (0 = 16).
	ANNM int
	// ANNEf is the default ANN query beam width (0 = 64). Requests
	// may override it per call with the ef parameter; recall rises
	// with ef at the cost of visiting more candidates.
	ANNEf int
	// Dtype selects the resident representation of the serving table:
	// f64 (the zero value), f32 or i8pq. Exact-mode answers are
	// byte-identical across dtypes by construction — quantized
	// representations only generate ANN candidate beams, which are
	// reranked with exact float64 scores before anything is returned.
	Dtype mat.Dtype
	// Mmap makes warm starts memory-map the artifact instead of
	// decoding it to private heap: the float64 table then lives in
	// shared page cache and faults in on demand. Only version-2
	// artifacts map; anything else falls back to the decoding warm
	// path. Answers are byte-identical either way (the mapping holds
	// the same bytes the decoder would copy).
	Mmap bool
	// ArtifactPath names a snapshot artifact file (internal/artifact,
	// produced by cmd/gsgcn-index) to warm-start from. When set, every
	// install — initial load and hot reload alike — first tries to
	// load the precomputed embedding table and HNSW index from the
	// artifact, validated against the checkpoint's model_version plus
	// arch metadata and the dataset's graph fingerprint; any mismatch,
	// corruption or absence falls back to the lazy full compute (the
	// reason lands in State.WarmNote and /healthz). Empty disables the
	// warm path.
	ArtifactPath string
	// ShardCount makes this a shard engine: the engine holds and
	// serves only the embedding rows of the vertices that shard
	// ShardIndex owns under partition.ShardMap{ShardCount, ShardSeed}.
	// Queries for vertices owned by other shards fail with a
	// not-owned error — a Router in front is expected to scatter them
	// to their owners. 0 (or 1 with ShardIndex 0) is the ordinary
	// whole-graph engine. When sharded, ArtifactPath names the
	// per-shard artifact file (artifact.ShardPath output).
	ShardCount int
	// ShardIndex is this engine's shard number in [0, ShardCount).
	ShardIndex int
	// ShardSeed keys the deterministic vertex-shard assignment; every
	// engine of one fleet (and the artifact builder) must share it.
	ShardSeed uint64
	// Deadline bounds each query's time in the serving path (0 =
	// none). It covers the wait for a micro-batch slot and the wait
	// for the dispatched answer; an expired request frees its queue
	// slot, its rows are skipped at gather time, and the client gets a
	// 504. Client disconnects cancel the same way (503). Deadlines
	// change only *whether* a request is answered, never the bytes of
	// an answered response.
	Deadline time.Duration
	// ShedQueueHW is the admission gate's queue-depth high-water mark:
	// when the micro-batcher already has this many requests queued
	// (the deepest shard's queue, on a router), new queries are shed
	// with 429 before any work is queued. 0 disables shedding.
	ShedQueueHW int
	// QPSLimit is the per-model admission quota in queries/sec,
	// enforced by a token bucket with one second of burst credit.
	// Exhausted quota sheds with 429. 0 = unlimited.
	QPSLimit float64
	// Obs is the metrics registry this engine (and the request layer
	// above it) reports into. Nil makes NewServer/NewRouter create a
	// private one; a raw NewEngine with nil Obs is simply unobserved.
	// Metrics are observation-only: nothing on a query or reload path
	// ever reads them back, so answers are bit-identical with
	// instrumentation on or off.
	Obs *obs.Registry
	// ModelName labels this engine's metric series (and request log
	// lines). The registry sets it to the registered model name;
	// empty means "default".
	ModelName string
	// AccessLog, when set, makes the request layer emit one
	// structured JSON line per HTTP request (id, model, endpoint,
	// status, latency, fan-out, batch id).
	AccessLog *obs.Logger
}

// sharded reports whether the options describe a shard engine rather
// than a whole-graph one.
func (o Options) sharded() bool { return o.ShardCount > 1 }

// shardMap returns the vertex-shard assignment the options describe.
func (o Options) shardMap() partition.ShardMap {
	return partition.ShardMap{Shards: o.ShardCount, Seed: o.ShardSeed}
}

// annParams is the HNSW configuration the engine's lazy index build
// uses; BuildSnapshot uses the same so persisted indexes are
// byte-equal to lazily built ones.
func (o Options) annParams() ann.Params {
	return ann.Params{M: o.ANNM, EfSearch: o.ANNEf}
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = perf.NumWorkers()
	}
	if o.BlockSize == 0 {
		o.BlockSize = 256
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 64
	}
	if o.TopKCache == 0 {
		o.TopKCache = 1024
	}
	if o.ANNM == 0 {
		o.ANNM = 16
	}
	if o.ANNEf == 0 {
		o.ANNEf = 64
	}
	if o.ModelName == "" {
		o.ModelName = defaultModelName
	}
	return o
}

// State is one immutable serving snapshot: a model, its full-graph
// embedding table, and the cosine norms backing the top-K index.
// States are never mutated after publication — hot reload replaces
// the whole snapshot atomically.
type State struct {
	Model *core.Model
	// Version is the engine's swap generation (1 for the first loaded
	// model, incremented per reload). It tags every response and keys
	// the query caches.
	Version uint64
	// ModelVersion is the trained-weights tag carried by the
	// checkpoint (e.g. optimizer steps at save time).
	ModelVersion uint64
	// Emb is the final-layer embedding table: |V| x dim for a
	// whole-graph engine, |owned| x dim for a shard engine (rows in
	// ascending owned-id order). It is a RowSource: a heap matrix on
	// the cold path, a view into a memory-mapped artifact on the mmap
	// warm path. Either way the rows are exact float64 — every exact
	// answer reads this table, whatever the configured dtype.
	Emb mat.RowSource
	// norms[r] is ||Emb[r]||₂, precomputed for cosine similarity.
	norms []float64

	// quant is the compact scan table backing ANN mode for non-f64
	// dtypes (nil when dtype is f64 — HNSW serves ANN there). Its
	// beams are always exact-reranked before leaving the engine.
	quant mat.Quantized
	// dtype is the resident representation this snapshot serves with.
	dtype mat.Dtype
	// resident counts the bytes of the hot serving working set:
	// the f64 table when it is private heap (not mapped), the norms,
	// and the quantized codes plus codebooks.
	resident int64
	// mappedBytes is the size of the backing artifact mapping (0 when
	// the snapshot was decoded to heap).
	mappedBytes int64
	// mapped pins the artifact mapping for the snapshot's lifetime;
	// the unmap happens via finalizer after the last reference to a
	// swapped-out snapshot is collected, so in-flight readers of an
	// old State never race an munmap.
	mapped *artifact.Mapped

	// total is the graph's full vertex count — the id range queries
	// validate against, which for a shard engine exceeds Emb.Rows.
	total int
	// owned maps local row -> global vertex id for a shard snapshot
	// (ascending, from partition.ShardMap.Owned); nil means the
	// identity mapping of a whole-graph snapshot.
	owned []int32

	// WarmStart reports that Emb/norms (and possibly the index) came
	// from a persisted artifact instead of a fresh full-graph compute.
	WarmStart bool
	// WarmNote records why a configured artifact could not be used
	// (empty when WarmStart is true or no artifact is configured).
	WarmNote string

	// annOnce/annIdx memoize the snapshot's HNSW index: installed
	// eagerly from a warm-start artifact, or built lazily on the first
	// mode=ann query, shared by all subsequent ones, and discarded
	// with the snapshot on reload (the next State brings its own), so
	// a swap can never serve an index over stale embeddings. annIdx is
	// an atomic pointer so a reload can peek at a previous snapshot's
	// built index without racing its builder.
	annOnce sync.Once
	annIdx  atomic.Pointer[ann.Index]
}

// setIndex installs a prebuilt index as the snapshot's memoized one.
// Only meaningful before the first ANN query (the engine calls it
// during snapshot construction); later calls lose to the lazy build.
func (s *State) setIndex(idx *ann.Index) {
	s.annOnce.Do(func() { s.annIdx.Store(idx) })
}

// Dim returns the embedding dimensionality.
func (s *State) Dim() int { return s.Emb.NumCols() }

// Dtype returns the snapshot's resident representation.
func (s *State) Dtype() mat.Dtype { return s.dtype }

// ResidentBytes returns the private working-set size of the serving
// table representation (see the resident field).
func (s *State) ResidentBytes() int64 { return s.resident }

// MappedBytes returns the size of the artifact mapping backing this
// snapshot (0 when decoded to heap).
func (s *State) MappedBytes() int64 { return s.mappedBytes }

// rowOf maps a global vertex id to its local row, reporting false
// when the snapshot does not hold that vertex (a shard snapshot and a
// foreign id). The caller has already range-checked id against total.
func (s *State) rowOf(id int) (int, bool) {
	if s.owned == nil {
		return id, true
	}
	lo, hi := 0, len(s.owned)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(s.owned[mid]) < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.owned) && int(s.owned[lo]) == id {
		return lo, true
	}
	return 0, false
}

// globalID maps a local row back to its global vertex id.
func (s *State) globalID(row int) int {
	if s.owned == nil {
		return row
	}
	return int(s.owned[row])
}

// IndexReady reports whether the snapshot's HNSW index is resident —
// installed from a warm-start artifact or already built by a
// mode=ann query. False means the first ANN query against this
// snapshot will pay the lazy build.
func (s *State) IndexReady() bool { return s.annIdx.Load() != nil }

// Engine answers embedding, prediction and similarity queries from
// the latest published State.
type Engine struct {
	ds   *datasets.Dataset
	opts Options

	// owned is the ascending list of vertex ids this shard engine
	// holds (nil for a whole-graph engine). Fixed at construction: it
	// is a pure function of (ShardSeed, ShardCount, ShardIndex, |V|).
	owned []int32

	state atomic.Pointer[State]
	swaps atomic.Uint64

	reloadMu sync.Mutex // serializes snapshot construction

	// artMu guards artifactPath/artDirty — deliberately a separate
	// mutex from reloadMu so /healthz and /models can report the
	// warm-start source while a slow snapshot build holds reloadMu;
	// liveness probes must never stall behind a reload's full-graph
	// recompute.
	artMu sync.Mutex
	// artifactPath is the warm-start source consulted on every
	// install. It starts as Options.ArtifactPath and can be retargeted
	// between reloads with SetArtifactPath — e.g. a /reload that ships
	// a new checkpoint together with its freshly built artifact. Empty
	// disables the warm path.
	artifactPath string
	// artDirty marks a retarget since the last install, telling the
	// next buildState to forget the previous artifact's fingerprint.
	artDirty bool

	// artSum/artMeta fingerprint the artifact backing the current
	// warm-started snapshot (guarded by reloadMu; artSum 0 = none). A
	// reload whose artifact checksum and validation target both match
	// reuses the in-memory tables instead of re-decoding the file.
	artSum  uint64
	artMeta artifact.Meta

	cacheMu sync.Mutex
	cache   map[topkKey]*TopKResult
}

type topkKey struct {
	version uint64
	id, k   int
	ann     bool
	ef      int // 0 for exact mode
}

// NewEngine wires an engine over the dataset's graph and features.
// No model is loaded yet; queries fail until Install or
// LoadCheckpoint succeeds.
func NewEngine(ds *datasets.Dataset, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		ds:           ds,
		opts:         opts,
		artifactPath: opts.ArtifactPath,
		cache:        make(map[topkKey]*TopKResult),
	}
	if opts.sharded() {
		e.owned = opts.shardMap().Owned(ds.G.NumVertices(), opts.ShardIndex)
	}
	if opts.Obs != nil {
		e.registerMetrics(opts.Obs)
	}
	return e
}

// Options returns the resolved options as configured at construction.
// The live warm-start source may since have been retargeted; read it
// with ArtifactPath.
func (e *Engine) Options() Options { return e.opts }

// ArtifactPath returns the warm-start artifact path the next install
// will consult (empty = warm path disabled). It never touches
// reloadMu, so status endpoints can call it during a slow reload.
func (e *Engine) ArtifactPath() string {
	e.artMu.Lock()
	defer e.artMu.Unlock()
	return e.artifactPath
}

// SetArtifactPath retargets the warm-start source for subsequent
// installs and reloads. Changing the path also makes the next install
// forget the previous artifact's fingerprint, so it fully re-reads
// and re-validates the new file instead of short-circuiting into the
// unchanged-artifact reuse path. The current serving snapshot is
// untouched: /healthz keeps reporting the state it was built with
// until the next reload actually installs one.
func (e *Engine) SetArtifactPath(path string) {
	e.artMu.Lock()
	defer e.artMu.Unlock()
	if e.artifactPath == path {
		return
	}
	e.artifactPath = path
	e.artDirty = true
}

// Dataset returns the graph/features the engine serves over.
func (e *Engine) Dataset() *datasets.Dataset { return e.ds }

// Snapshot returns the current serving state, or an error when no
// model has been loaded yet.
func (e *Engine) Snapshot() (*State, error) {
	st := e.state.Load()
	if st == nil {
		return nil, fmt.Errorf("serve: no model loaded")
	}
	return st, nil
}

// Install computes the full-graph embedding table for m and publishes
// it as the new serving snapshot, returning the new version. In-flight
// queries keep reading the previous snapshot until they finish. The
// engine holds a live reference to m: callers must not keep training
// the installed model — hot reload should Install a fresh model or go
// through LoadCheckpoint, which reconstructs one from disk.
func (e *Engine) Install(m *core.Model) (uint64, error) {
	return e.InstallShared(m, nil)
}

// InstallShared is Install with an optional shared table source: when
// full is non-nil and the cold path runs, the whole-graph tables come
// from full() instead of a private computeTables call. A Router
// installing one model across N shard engines passes a memoized full
// so the expensive whole-graph pass happens once per fleet install,
// not once per shard; each engine still keeps only its owned rows.
func (e *Engine) InstallShared(m *core.Model, full func() (*mat.Dense, []float64)) (uint64, error) {
	if got, want := m.Layers[0].InDim, e.ds.FeatureDim(); got != want {
		return 0, fmt.Errorf("serve: model expects %d input features, dataset has %d", got, want)
	}
	if got, want := m.Head.OutDim, e.ds.NumClasses; got != want {
		return 0, fmt.Errorf("serve: model predicts %d classes, dataset has %d", got, want)
	}
	e.reloadMu.Lock()
	defer e.reloadMu.Unlock()
	st := e.buildState(m, full)
	st.Version = e.swaps.Add(1)
	e.state.Store(st)
	e.dropStaleCache(st.Version)
	return st.Version, nil
}

// buildState produces the next serving snapshot for m (reloadMu
// held): the artifact warm path when configured and valid, the full
// layer-wise compute otherwise. Version is left for the caller.
func (e *Engine) buildState(m *core.Model, full func() (*mat.Dense, []float64)) *State {
	e.artMu.Lock()
	artPath, dirty := e.artifactPath, e.artDirty
	e.artDirty = false
	e.artMu.Unlock()
	if dirty {
		// The source was retargeted since the last install: the cached
		// fingerprint describes a different file.
		e.artSum, e.artMeta = 0, artifact.Meta{}
	}
	var warmNote string
	if artPath != "" {
		st, note := e.warmState(m, artPath)
		if st != nil {
			return st
		}
		warmNote = note
	}
	var (
		emb   *mat.Dense
		norms []float64
	)
	if full != nil {
		emb, norms = full()
	} else {
		emb, norms = computeTables(m, e.ds, e.opts)
	}
	if e.opts.sharded() {
		emb, norms = compactRows(emb, norms, e.owned)
	}
	st := &State{
		Model:        m,
		ModelVersion: m.ModelVersion,
		Emb:          emb,
		norms:        norms,
		total:        e.ds.G.NumVertices(),
		owned:        e.owned,
		WarmNote:     warmNote,
	}
	e.attachPlane(st, nil, nil, nil)
	return st
}

// attachPlane fills a freshly built snapshot's memory-plane fields:
// the quantized scan table for non-f64 dtypes and the byte
// accounting. A payload decoded from an artifact (f32/pq) is adopted
// only when it is exactly what the engine would train itself — same
// shape, same resolved parameters — so quantization, like every other
// table, is a pure function of the embedding rows however it reaches
// the process.
func (e *Engine) attachPlane(st *State, f32 *mat.F32Table, pq *mat.PQTable, mapped *artifact.Mapped) {
	st.dtype = e.opts.Dtype
	rows, cols := st.Emb.NumRows(), st.Emb.NumCols()
	switch e.opts.Dtype {
	case mat.DtypeF32:
		if f32 != nil && f32.RowsN == rows && f32.ColsN == cols {
			st.quant = f32
		} else {
			st.quant = mat.ToF32(st.Emb, e.opts.Workers)
		}
	case mat.DtypeI8PQ:
		if rows == 0 || cols == 0 {
			break
		}
		want := mat.ResolvePQ(rows, cols)
		if pq != nil && pq.RowsN == rows && pq.ColsN == cols && pq.Params == want {
			st.quant = pq
		} else {
			st.quant = mat.TrainPQ(st.Emb, want, e.opts.Workers)
		}
	}
	st.mapped = mapped
	if mapped != nil {
		st.mappedBytes = mapped.MappedBytes()
	} else {
		st.resident += int64(rows) * int64(cols) * 8
	}
	st.resident += int64(len(st.norms)) * 8
	if st.quant != nil {
		st.resident += st.quant.ResidentBytes()
	}
}

// compactRows extracts the owned rows (and norms) of a whole-graph
// table into a fresh |owned| x dim table in ascending owned-id order.
func compactRows(emb *mat.Dense, norms []float64, owned []int32) (*mat.Dense, []float64) {
	sub := mat.New(len(owned), emb.Cols)
	subNorms := make([]float64, len(owned))
	for r, gid := range owned {
		copy(sub.Row(r), emb.Row(int(gid)))
		subNorms[r] = norms[gid]
	}
	return sub, subNorms
}

// warmState tries to satisfy an install from the configured artifact.
// It returns (nil, reason) on any failure — unreadable or corrupt
// file, or metadata that does not match the model being installed and
// the serving dataset — making the warm path strictly opt-in: a wrong
// artifact can never alter what the engine serves, only how fast it
// comes up. When the artifact file is unchanged since the previous
// warm snapshot (same checksum) and still matches m, the in-memory
// tables and any already-built index are reused outright, so a
// /reload against an unchanged artifact costs one file read and no
// decode. Because both the embedding compute and the HNSW build are
// bit-deterministic, a warm snapshot is byte-identical to the cold
// one it replaces (test-enforced in warm_test.go).
func (e *Engine) warmState(m *core.Model, artPath string) (*State, string) {
	want := e.wantMeta(m)
	if e.opts.Mmap {
		st, note := e.warmMapped(m, artPath, want)
		if st != nil {
			return st, ""
		}
		// Anything that cannot map (a v1 artifact, an exotic platform)
		// may still decode; remember why the fast path was skipped.
		st, note2 := e.warmDecoded(m, artPath, want)
		if st != nil {
			return st, ""
		}
		return nil, fmt.Sprintf("mmap: %s; decode: %s", note, note2)
	}
	return e.warmDecoded(m, artPath, want)
}

// reuseState clones the serving-table fields of an unchanged previous
// warm snapshot into a fresh State for m — the no-decode reload path.
func (e *Engine) reuseState(m *core.Model, prev *State) *State {
	st := &State{
		Model:        m,
		ModelVersion: m.ModelVersion,
		Emb:          prev.Emb,
		norms:        prev.norms,
		total:        e.ds.G.NumVertices(),
		owned:        e.owned,
		WarmStart:    true,
		quant:        prev.quant,
		dtype:        prev.dtype,
		resident:     prev.resident,
		mappedBytes:  prev.mappedBytes,
		mapped:       prev.mapped,
	}
	if idx := prev.annIdx.Load(); idx != nil {
		st.setIndex(idx)
	}
	return st
}

// adoptIndex installs a persisted index only when it is the index the
// lazy path would build (same structural parameters); otherwise the
// lazy build stays in place — the embeddings are still warm.
func (e *Engine) adoptIndex(st *State, idx *ann.Index) {
	if idx == nil {
		return
	}
	if got, want := idx.Params(), e.opts.annParams().Resolved(); got.M == want.M &&
		got.EfConstruction == want.EfConstruction && got.Seed == want.Seed {
		st.setIndex(idx)
	}
}

// warmMapped is the mmap warm path: open the artifact as a read-only
// mapping and serve straight out of it. Integrity is per section
// (eager for the small sections, first-row-access for the table);
// the stored trailer sum is the reuse fingerprint.
func (e *Engine) warmMapped(m *core.Model, artPath string, want artifact.Meta) (*State, string) {
	mp, err := artifact.OpenMapped(artPath)
	if err != nil {
		return nil, err.Error()
	}
	if mp.Meta() != want {
		got := mp.Meta()
		_ = mp.Close()
		return nil, fmt.Sprintf("artifact was built for %+v, serving %+v", got, want)
	}
	if prev := e.state.Load(); prev != nil && prev.WarmStart && prev.mapped != nil &&
		mp.Sum() == e.artSum && e.artMeta == want {
		_ = mp.Close()
		return e.reuseState(m, prev), ""
	}
	e.artSum, e.artMeta = mp.Sum(), want
	st := &State{
		Model:        m,
		ModelVersion: m.ModelVersion,
		Emb:          mp.Table(),
		norms:        mp.Norms(),
		total:        e.ds.G.NumVertices(),
		owned:        e.owned,
		WarmStart:    true,
	}
	e.adoptIndex(st, mp.Index())
	e.attachPlane(st, mp.F32(), mp.PQ(), mp)
	return st, ""
}

// warmDecoded is the copying warm path: read, checksum and decode the
// whole artifact into private heap.
func (e *Engine) warmDecoded(m *core.Model, artPath string, want artifact.Meta) (*State, string) {
	// Read and integrity-check the file before fingerprinting the
	// model: the common no-artifact miss should cost one failed open,
	// not a CRC pass over every weight tensor.
	data, err := os.ReadFile(artPath)
	if err != nil {
		return nil, err.Error()
	}
	sum, err := artifact.Checksum(data)
	if err != nil {
		return nil, err.Error()
	}
	if prev := e.state.Load(); prev != nil && prev.WarmStart && sum == e.artSum && e.artMeta == want {
		return e.reuseState(m, prev), ""
	}
	snap, err := artifact.DecodeVerified(data)
	if err != nil {
		return nil, err.Error()
	}
	if snap.Meta != want {
		return nil, fmt.Sprintf("artifact was built for %+v, serving %+v", snap.Meta, want)
	}
	e.artSum, e.artMeta = sum, snap.Meta
	st := &State{
		Model:        m,
		ModelVersion: m.ModelVersion,
		Emb:          snap.Emb,
		norms:        snap.Norms,
		total:        e.ds.G.NumVertices(),
		owned:        e.owned,
		WarmStart:    true,
	}
	e.adoptIndex(st, snap.Index)
	e.attachPlane(st, snap.F32, snap.PQ, nil)
	return st, ""
}

// LoadCheckpoint reconstructs a model from a v2 checkpoint file and
// installs it. This is the hot-reload entry point.
func (e *Engine) LoadCheckpoint(path string) (uint64, error) {
	m, err := core.LoadModelFile(path)
	if err != nil {
		return 0, err
	}
	return e.Install(m)
}

// dropStaleCache evicts memoized query results from older snapshots.
func (e *Engine) dropStaleCache(version uint64) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	for k := range e.cache {
		if k.version != version {
			delete(e.cache, k)
		}
	}
}

// FullEmbeddings runs the model's GCN stack (without the classifier
// head) over the entire graph and returns the |V| x OutWidth
// final-layer embedding table. The computation streams one layer at a
// time in vertex blocks of `block` rows: only the current and next
// layer activations are held in full, plus per-worker block scratch,
// so memory stays O(|V|·f). Output is bit-identical at every workers
// and block setting.
func FullEmbeddings(m *core.Model, g *graph.CSR, feats *mat.Dense, workers, block int) *mat.Dense {
	if feats.Rows != g.N {
		panic("serve: feature rows do not match graph vertices")
	}
	if workers < 1 {
		workers = perf.NumWorkers()
	}
	if block < 1 {
		block = 256
	}
	cur := feats
	for _, l := range m.Layers {
		next := mat.New(g.N, l.OutWidth())
		layerForwardBlocks(l, g, cur, next, workers, block)
		cur = next
	}
	return cur
}

// layerForwardBlocks computes next = GCNLayer(cur) in vertex blocks.
// Each block of rows is owned by exactly one worker; all arithmetic
// inside a block is serial and per-row, so block boundaries never
// change results.
func layerForwardBlocks(l *nn.GCNLayer, g *graph.CSR, cur, next *mat.Dense, workers, block int) {
	in, out := l.InDim, l.OutDim
	var invSqrt []float64
	if l.Agg == nn.AggSym {
		invSqrt = make([]float64, g.N)
		for v := 0; v < g.N; v++ {
			if d := g.Degree(int32(v)); d > 0 {
				invSqrt[v] = 1 / math.Sqrt(float64(d))
			}
		}
	}
	nBlocks := (g.N + block - 1) / block
	perf.Parallel(nBlocks, workers, func(_, blo, bhi int) {
		// Per-worker scratch, reused across this worker's blocks.
		hN := make([]float64, block*in)
		zS := make([]float64, block*out)
		zN := make([]float64, block*out)
		for b := blo; b < bhi; b++ {
			lo := b * block
			hi := lo + block
			if hi > g.N {
				hi = g.N
			}
			rows := hi - lo
			hNb := mat.FromData(rows, in, hN[:rows*in])
			aggregateRowRange(hNb, cur, g, l.Agg, invSqrt, lo, hi)
			hBlock := mat.FromData(rows, in, cur.Data[lo*in:hi*in])
			zSb := mat.FromData(rows, out, zS[:rows*out])
			zNb := mat.FromData(rows, out, zN[:rows*out])
			mat.Mul(zSb, hBlock, l.WSelf.W, 1)
			mat.Mul(zNb, hNb, l.WNeigh.W, 1)
			for i := 0; i < rows; i++ {
				drow := next.Row(lo + i)
				copy(drow[:out], zSb.Row(i))
				copy(drow[out:], zNb.Row(i))
				if l.Activate {
					// Mirror relu() exactly: keep only x > 0.
					for j, v := range drow {
						if !(v > 0) {
							drow[j] = 0
						}
					}
				}
			}
		}
	})
}

// aggregateRowRange fills dst row i with the aggregation of vertex
// lo+i's neighborhood, mirroring the training-side operators
// (partition.PropagateRange / nn.symPropagate / nn.sumPropagate)
// element-for-element: neighbors accumulate in adjacency order and
// the mean multiplies by 1/deg after summation.
func aggregateRowRange(dst, src *mat.Dense, g *graph.CSR, agg nn.Aggregator, invSqrt []float64, lo, hi int) {
	f := src.Cols
	for v := lo; v < hi; v++ {
		drow := dst.Row(v - lo)
		for j := range drow {
			drow[j] = 0
		}
		nb := g.Neighbors(int32(v))
		if len(nb) == 0 {
			continue
		}
		switch agg {
		case nn.AggMean:
			for _, u := range nb {
				srow := src.Data[int(u)*f : (int(u)+1)*f]
				for j, x := range srow {
					drow[j] += x
				}
			}
			inv := 1 / float64(len(nb))
			for j := range drow {
				drow[j] *= inv
			}
		case nn.AggSym:
			for _, u := range nb {
				w := invSqrt[v] * invSqrt[u]
				srow := src.Data[int(u)*f : (int(u)+1)*f]
				for j, x := range srow {
					drow[j] += w * x
				}
			}
		case nn.AggSum:
			for _, u := range nb {
				srow := src.Data[int(u)*f : (int(u)+1)*f]
				for j, x := range srow {
					drow[j] += x
				}
			}
		}
	}
}

// EmbedResult is the answer to an embedding query.
type EmbedResult struct {
	Version      uint64      `json:"version"`
	ModelVersion uint64      `json:"model_version"`
	Dim          int         `json:"dim"`
	IDs          []int       `json:"ids"`
	Vectors      [][]float64 `json:"embeddings"`
}

// PredictResult is the answer to a prediction query.
type PredictResult struct {
	Version      uint64      `json:"version"`
	ModelVersion uint64      `json:"model_version"`
	Classes      int         `json:"classes"`
	MultiLabel   bool        `json:"multi_label"`
	IDs          []int       `json:"ids"`
	Labels       [][]int     `json:"labels"`
	Probs        [][]float64 `json:"probs"`
}

// Neighbor is one entry of a top-K similarity answer.
type Neighbor struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// Top-K query modes. ModeAuto resolves to the engine's configured
// default (ann when Options.ANN is set, exact otherwise).
const (
	ModeAuto  = ""
	ModeExact = "exact"
	ModeANN   = "ann"
)

// TopKResult is the answer to a similar-nodes query. Mode reports how
// the answer was computed — "exact" (full scan) or "ann" (HNSW beam
// search); an ANN request that fell back to the exact scan reports
// "exact". Ef is the beam width used (ann mode only).
type TopKResult struct {
	Version      uint64 `json:"version"`
	ModelVersion uint64 `json:"model_version"`
	ID           int    `json:"id"`
	K            int    `json:"k"`
	Mode         string `json:"mode"`
	Ef           int    `json:"ef,omitempty"`
	// Degraded marks an answer a sharded router assembled while one or
	// more non-owning shards were down: the neighbors listed are exact
	// over the live shards' vertices but vertices of the dead shards
	// could not be considered. Never set on a healthy fleet or a
	// single-engine server, so healthy responses stay byte-identical.
	Degraded  bool       `json:"degraded,omitempty"`
	Neighbors []Neighbor `json:"neighbors"`
}

// checkIDs validates query vertex ids against the snapshot's global
// id range. Ownership (shard engines) is checked by localRows.
func checkIDs(st *State, ids []int) error {
	if len(ids) == 0 {
		return fmt.Errorf("serve: no ids given")
	}
	for _, id := range ids {
		if id < 0 || id >= st.total {
			return fmt.Errorf("serve: vertex id %d out of range [0,%d)", id, st.total)
		}
	}
	return nil
}

// localRows validates ids and maps them to the snapshot's local rows.
// On a whole-graph snapshot the mapping is the identity (ids is
// returned unchanged, not copied); on a shard snapshot a foreign id
// fails with errNotOwned — the router is expected to have routed it
// to its owner.
func localRows(st *State, ids []int) ([]int, error) {
	if err := checkIDs(st, ids); err != nil {
		return nil, err
	}
	if st.owned == nil {
		return ids, nil
	}
	rows := make([]int, len(ids))
	for i, id := range ids {
		r, ok := st.rowOf(id)
		if !ok {
			return nil, fmt.Errorf("%w: vertex id %d", errNotOwned, id)
		}
		rows[i] = r
	}
	return rows, nil
}

// embedOn answers an embedding query against a fixed snapshot.
func embedOn(st *State, ids []int) (*EmbedResult, error) {
	rows, err := localRows(st, ids)
	if err != nil {
		return nil, err
	}
	res := &EmbedResult{
		Version:      st.Version,
		ModelVersion: st.ModelVersion,
		Dim:          st.Dim(),
		IDs:          ids,
		Vectors:      make([][]float64, len(ids)),
	}
	for i, r := range rows {
		v := make([]float64, st.Dim())
		copy(v, st.Emb.Row(r))
		res.Vectors[i] = v
	}
	return res, nil
}

// headLogits computes the classifier head over gathered embedding
// rows: logits = h·W + b, the same per-row arithmetic as the
// training-side nn.Dense forward pass.
func headLogits(st *State, h *mat.Dense) *mat.Dense {
	head := st.Model.Head
	out := mat.New(h.Rows, head.OutDim)
	mat.Mul(out, h, head.W.W, 1)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += head.B.W.Data[j]
		}
	}
	return out
}

// predictOn answers a prediction query against a fixed snapshot.
func predictOn(st *State, ids []int) (*PredictResult, error) {
	rows, err := localRows(st, ids)
	if err != nil {
		return nil, err
	}
	h := mat.New(len(ids), st.Dim())
	mat.GatherRowsSrc(h, st.Emb, rows)
	logits := headLogits(st, h)
	return predictionsFromLogits(st, ids, logits, 0), nil
}

// predictionsFromLogits converts logits rows [off, off+len(ids)) into
// a PredictResult: thresholded labels plus calibrated probabilities
// (sigmoid per class when multi-label, softmax otherwise).
func predictionsFromLogits(st *State, ids []int, logits *mat.Dense, off int) *PredictResult {
	multi := st.Model.Loss.Name() == "sigmoid-bce"
	k := logits.Cols
	res := &PredictResult{
		Version:      st.Version,
		ModelVersion: st.ModelVersion,
		Classes:      k,
		MultiLabel:   multi,
		IDs:          ids,
		Labels:       make([][]int, len(ids)),
		Probs:        make([][]float64, len(ids)),
	}
	for i := range ids {
		zrow := logits.Row(off + i)
		probs := make([]float64, k)
		labels := make([]int, 0, 1) // non-nil: an empty label set serializes as []
		if multi {
			// Mirrors nn.PredictMulti: class on iff logit > 0.
			for j, z := range zrow {
				probs[j] = 1 / (1 + math.Exp(-z))
				if z > 0 {
					labels = append(labels, j)
				}
			}
		} else {
			// Mirrors nn.PredictSingle: argmax class, stable softmax.
			best := 0
			maxZ := zrow[0]
			for j, z := range zrow {
				if z > maxZ {
					maxZ = z
				}
				if z > zrow[best] {
					best = j
				}
			}
			sum := 0.0
			for j, z := range zrow {
				probs[j] = math.Exp(z - maxZ)
				sum += probs[j]
			}
			for j := range probs {
				probs[j] /= sum
			}
			labels = []int{best}
		}
		res.Probs[i] = probs
		res.Labels[i] = labels
	}
	return res
}

// Embed answers an embedding query against the latest snapshot.
func (e *Engine) Embed(ids []int) (*EmbedResult, error) {
	st, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	return embedOn(st, ids)
}

// Predict answers a prediction query against the latest snapshot.
func (e *Engine) Predict(ids []int) (*PredictResult, error) {
	st, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	return predictOn(st, ids)
}

// TopK returns the k vertices most cosine-similar to id (excluding id
// itself) in the engine's default mode — see TopKWith.
func (e *Engine) TopK(id, k int) (*TopKResult, error) {
	return e.TopKWith(id, k, ModeAuto, 0)
}

// TopKWith answers a similar-nodes query in the requested mode.
// ModeExact runs the sharded full scan: per-shard candidates
// accumulate in bounded skiplists that merge in shard order, so the
// answer is deterministic at every Workers setting. ModeANN searches
// the snapshot's HNSW index with beam width ef (<= 0 uses the
// configured default), built lazily on first use; when the beam would
// cover the whole table anyway (ef or k >= |V|-1) the query falls
// back to the exact scan, and the result reports mode "exact". Both
// modes rank by the same total order (descending score, ascending id
// on ties) and both are bit-identical across Workers settings,
// rebuilds and reloads. Results are memoized per (snapshot version,
// id, k, mode, ef); k must be in [1, |V|-1].
func (e *Engine) TopKWith(id, k int, mode string, ef int) (*TopKResult, error) {
	st, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	if err := checkIDs(st, []int{id}); err != nil {
		return nil, err
	}
	if _, ok := st.rowOf(id); !ok {
		return nil, fmt.Errorf("%w: vertex id %d", errNotOwned, id)
	}
	if k < 1 {
		return nil, fmt.Errorf("serve: k must be >= 1, got %d", k)
	}
	if max := st.total - 1; k > max {
		return nil, fmt.Errorf("serve: k=%d exceeds the %d other vertices", k, max)
	}
	useANN := false
	switch mode {
	case ModeAuto:
		useANN = e.opts.ANN
	case ModeExact:
	case ModeANN:
		useANN = true
	default:
		return nil, fmt.Errorf("serve: unknown topk mode %q (want exact or ann)", mode)
	}
	if useANN {
		if ef <= 0 {
			ef = e.opts.ANNEf
		}
		if ef < k {
			ef = k
		}
		// The beam covers (almost) the whole table: the exact scan is
		// both cheaper and, by definition, at least as accurate.
		if n := st.Emb.NumRows(); ef >= n-1 || k >= n-1 {
			useANN = false
		}
	}
	if !useANN {
		ef = 0
	}

	key := topkKey{version: st.Version, id: id, k: k, ann: useANN, ef: ef}
	e.cacheMu.Lock()
	if hit, ok := e.cache[key]; ok {
		e.cacheMu.Unlock()
		return hit, nil
	}
	e.cacheMu.Unlock()

	var res *TopKResult
	if useANN {
		res = e.topkANN(st, id, k, ef)
	} else {
		res = topkScan(st, id, k, e.opts.Workers)
	}

	e.cacheMu.Lock()
	if len(e.cache) < e.opts.TopKCache {
		e.cache[key] = res
	}
	e.cacheMu.Unlock()
	return res, nil
}

// annIndex returns the snapshot's HNSW index, building it on first
// use. The sync.Once makes concurrent first queries build exactly
// once; losers block until the winner publishes. Construction is
// deterministic (see package ann), so every rebuild of the same
// snapshot would yield an identical structure.
func (e *Engine) annIndex(st *State) *ann.Index {
	st.annOnce.Do(func() {
		st.annIdx.Store(ann.Build(st.Emb, st.norms, e.opts.annParams(), e.opts.Workers))
	})
	return st.annIdx.Load()
}

// topkANN answers a top-K query from the snapshot's HNSW index.
func (e *Engine) topkANN(st *State, id, k, ef int) *TopKResult {
	row, _ := st.rowOf(id)
	nbs := e.annVec(st, st.Emb.Row(row), st.norms[row], id, k, ef)
	return &TopKResult{
		Version:      st.Version,
		ModelVersion: st.ModelVersion,
		ID:           id,
		K:            k,
		Mode:         ModeANN,
		Ef:           ef,
		Neighbors:    nbs,
	}
}

// annVec runs the snapshot's ANN candidate search for an arbitrary
// query vector, excluding global vertex id exclude (-1 = none), and
// reports the candidates as global ids. On an f64 snapshot this is an
// HNSW beam search; on a quantized snapshot it is the flat scan of
// the compact table followed by an exact-f64 rerank of the ef-wide
// beam — so every score returned, whatever the dtype, is bit-equal to
// the exact scanner's score for that row. The search runs over local
// rows; exclusion and results map through the snapshot's owned list.
func (e *Engine) annVec(st *State, q []float64, qn float64, exclude, k, ef int) []Neighbor {
	ex := int32(-1)
	if exclude >= 0 {
		if r, ok := st.rowOf(exclude); ok {
			ex = int32(r)
		}
	}
	var cands []ann.Candidate
	if st.quant != nil {
		beam := ann.ScanQuant(st.quant, st.norms, q, qn, ef, ex, e.opts.Workers)
		cands = ann.RerankExact(st.Emb, st.norms, q, qn, beam, k)
	} else {
		cands = e.annIndex(st).Search(q, qn, k, ef, ex)
	}
	nbs := make([]Neighbor, len(cands))
	for i, c := range cands {
		nbs[i] = Neighbor{ID: st.globalID(int(c.ID)), Score: c.Score}
	}
	return nbs
}

// topkScan computes the exact top-K cosine neighbors of id.
func topkScan(st *State, id, k, workers int) *TopKResult {
	row, _ := st.rowOf(id)
	return &TopKResult{
		Version:      st.Version,
		ModelVersion: st.ModelVersion,
		ID:           id,
		K:            k,
		Mode:         ModeExact,
		Neighbors:    scanVec(st, st.Emb.Row(row), st.norms[row], id, k, workers),
	}
}

// scanVec runs the worker-sharded exact scan of the snapshot's table
// against an arbitrary query vector, excluding global vertex id
// exclude (-1 = none). Every comparison uses the tkBefore total
// order, so the merged list is bit-identical at every workers setting
// — and, because candidates carry global ids, a scatter over N shard
// engines merges into exactly the whole-graph answer.
func scanVec(st *State, q []float64, qn float64, exclude, k, workers int) []Neighbor {
	n := st.Emb.NumRows()
	// One bounded skiplist per contiguous row range.
	shards := workers
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	lists := make([]*topKList, shards)
	perf.Parallel(shards, workers, func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			lo := s * n / shards
			hi := (s + 1) * n / shards
			tk := newTopKList(k)
			for r := lo; r < hi; r++ {
				gid := st.globalID(r)
				if gid == exclude {
					continue
				}
				score := 0.0
				if d := qn * st.norms[r]; d > 0 {
					score = mat.Dot(q, st.Emb.Row(r)) / d
				}
				tk.Offer(int32(gid), score)
			}
			lists[s] = tk
		}
	})
	final := newTopKList(k)
	for _, tk := range lists {
		for x := tk.front(); x != nil; x = x.next[0] {
			final.Offer(x.id, x.score)
		}
	}
	return final.items()
}

// snapshotRow resolves the current snapshot and the embedding row and
// norm of an owned vertex — the router's way of fetching a query
// vector from the shard that owns it.
func (e *Engine) snapshotRow(id int) (*State, []float64, float64, error) {
	st, err := e.Snapshot()
	if err != nil {
		return nil, nil, 0, err
	}
	if err := checkIDs(st, []int{id}); err != nil {
		return nil, nil, 0, err
	}
	row, ok := st.rowOf(id)
	if !ok {
		return nil, nil, 0, fmt.Errorf("%w: vertex id %d", errNotOwned, id)
	}
	return st, st.Emb.Row(row), st.norms[row], nil
}

// shardTopK answers one scatter probe: the k best candidates of this
// engine's table for the supplied query vector, as global ids. In ANN
// mode the per-shard HNSW index is searched unless the beam would
// cover the local table anyway, in which case the exact local scan is
// both cheaper and complete — the same fallback rule the whole-graph
// engine applies.
func (e *Engine) shardTopK(q []float64, qn float64, exclude, k int, useANN bool, ef int) ([]Neighbor, *State, error) {
	st, err := e.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	if useANN && ef < st.Emb.NumRows()-1 && k < st.Emb.NumRows()-1 {
		return e.annVec(st, q, qn, exclude, k, ef), st, nil
	}
	return scanVec(st, q, qn, exclude, k, e.opts.Workers), st, nil
}
