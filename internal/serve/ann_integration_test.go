package serve

import (
	"testing"

	"gsgcn/internal/ann"
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
)

// annDataset is a >= 2k-vertex seeded graph — the scale the
// acceptance bar names for the recall gate.
func annDataset(tb testing.TB) *datasets.Dataset {
	tb.Helper()
	return datasets.Generate(datasets.Config{
		Name: "ann-test", Vertices: 2200, TargetEdges: 17600,
		FeatureDim: 24, NumClasses: 6,
		Homophily: 0.8, NoiseStd: 0.5, Seed: 31,
	})
}

// trainedEngine trains a model for a few steps (so the embedding
// table carries real learned structure, not initialization noise) and
// installs it.
func trainedEngine(tb testing.TB, ds *datasets.Dataset, opts Options) *Engine {
	tb.Helper()
	m := core.NewModel(ds, core.Config{
		Layers: 2, Hidden: 16, Workers: 1, Seed: 7,
		FrontierM: 50, Budget: 400, PInter: 1,
	})
	tr := core.NewTrainer(ds, m)
	for i := 0; i < 10; i++ {
		tr.Step()
	}
	eng := NewEngine(ds, opts)
	if _, err := eng.Install(m); err != nil {
		tb.Fatal(err)
	}
	return eng
}

// TestANNRecallOnTrainedEmbeddings is the serving-side half of the
// recall harness: on trained-checkpoint embeddings over a >= 2k-vertex
// seeded graph, mode=ann at the default ef must reach recall@10 >=
// 0.95 against the exact scanner.
func TestANNRecallOnTrainedEmbeddings(t *testing.T) {
	ds := annDataset(t)
	eng := trainedEngine(t, ds, Options{Workers: 3, ANN: true})
	st, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	idx := eng.annIndex(st)

	n := st.Emb.NumRows()
	queries := make([]int32, 0, 100)
	for q := 0; q < n; q += n / 100 {
		queries = append(queries, int32(q))
	}
	rep := idx.RecallAtK(queries, 10, 0)
	t.Logf("trained embeddings: recall@10 = %.4f (worst %.4f) over %d queries at default ef",
		rep.Recall, rep.Worst, rep.Queries)
	if rep.Recall < 0.95 {
		t.Fatalf("recall@10 = %.4f on trained embeddings, want >= 0.95", rep.Recall)
	}
}

// TestANNTopKProperties checks the serving-level invariants of
// mode=ann answers: valid ids, no self, no duplicates, sorted by the
// tkBefore total order, mode/ef reported, and — at ef=|V| — exact
// agreement with the mode=exact scanner (the ann ⊆ exact property at
// full beam width).
func TestANNTopKProperties(t *testing.T) {
	ds := annDataset(t)
	eng := trainedEngine(t, ds, Options{Workers: 2})
	n := ds.G.NumVertices()

	for _, q := range []int{0, 321, 1100, 2199} {
		res, err := eng.TopKWith(q, 10, ModeANN, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mode != ModeANN || res.Ef != eng.opts.ANNEf {
			t.Fatalf("q=%d: mode=%q ef=%d, want ann/%d", q, res.Mode, res.Ef, eng.opts.ANNEf)
		}
		if len(res.Neighbors) != 10 {
			t.Fatalf("q=%d: %d neighbors", q, len(res.Neighbors))
		}
		seen := make(map[int]bool)
		for i, nb := range res.Neighbors {
			if nb.ID < 0 || nb.ID >= n || nb.ID == q || seen[nb.ID] {
				t.Fatalf("q=%d rank %d: bad id %d", q, i, nb.ID)
			}
			seen[nb.ID] = true
			if i > 0 {
				prev := res.Neighbors[i-1]
				if !tkBefore(prev.Score, int32(prev.ID), nb.Score, int32(nb.ID)) {
					t.Fatalf("q=%d: neighbors not in tkBefore order at rank %d", q, i)
				}
			}
		}

		// Full beam: the ANN answer must equal the exact scan. (The
		// engine falls back to the scan at ef >= |V|-1, so probe the
		// index directly at ef = n for the search-path property, and
		// the engine for the fallback.)
		st, _ := eng.Snapshot()
		full := eng.annIndex(st).Search(st.Emb.Row(q), st.norms[q], 10, n, int32(q))
		exact, err := eng.TopKWith(q, 10, ModeExact, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(full) != len(exact.Neighbors) {
			t.Fatalf("q=%d: full-beam %d results vs exact %d", q, len(full), len(exact.Neighbors))
		}
		for i, c := range full {
			if int(c.ID) != exact.Neighbors[i].ID || c.Score != exact.Neighbors[i].Score {
				t.Fatalf("q=%d rank %d: full-beam %+v vs exact %+v", q, i, c, exact.Neighbors[i])
			}
		}
	}
}

// TestANNFallsBackToExact checks the fallback contract: an ANN
// request whose beam or k covers the whole table is answered by the
// exact scan and says so.
func TestANNFallsBackToExact(t *testing.T) {
	ds := testDataset(t, false) // 300 vertices
	eng := trainedSmall(t, ds, Options{Workers: 2})
	n := ds.G.NumVertices()

	res, err := eng.TopKWith(5, 10, ModeANN, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeExact || res.Ef != 0 {
		t.Errorf("ef=|V| answered in mode %q ef=%d, want exact fallback", res.Mode, res.Ef)
	}
	res, err = eng.TopKWith(5, n-1, ModeANN, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeExact {
		t.Errorf("k=|V|-1 answered in mode %q, want exact fallback", res.Mode)
	}
	if len(res.Neighbors) != n-1 {
		t.Errorf("k=|V|-1 returned %d neighbors", len(res.Neighbors))
	}
	// Past the last valid k: an error, not a clamp.
	if _, err := eng.TopKWith(5, n, ModeANN, 0); err == nil {
		t.Error("k=|V| should fail")
	}
	// Unknown mode: an error.
	if _, err := eng.TopKWith(5, 3, "fuzzy", 0); err == nil {
		t.Error("unknown mode should fail")
	}
}

func trainedSmall(tb testing.TB, ds *datasets.Dataset, opts Options) *Engine {
	tb.Helper()
	eng := NewEngine(ds, opts)
	if _, err := eng.Install(testModel(tb, ds, 2, "mean")); err != nil {
		tb.Fatal(err)
	}
	return eng
}

// TestANNDeterministicAcrossWorkersAndRebuilds asserts the acceptance
// bar's determinism clause at the serving layer: mode=ann result
// lists — ids and float scores — are bit-identical across Workers
// settings and across index rebuilds (fresh engines over the same
// model).
func TestANNDeterministicAcrossWorkersAndRebuilds(t *testing.T) {
	ds := annDataset(t)
	m := core.NewModel(ds, core.Config{
		Layers: 2, Hidden: 16, Workers: 1, Seed: 7,
		FrontierM: 50, Budget: 400, PInter: 1,
	})
	type answer struct {
		q   int
		nbs []Neighbor
	}
	collect := func(workers int) []answer {
		eng := NewEngine(ds, Options{Workers: workers, ANN: true})
		if _, err := eng.Install(m); err != nil {
			t.Fatal(err)
		}
		var out []answer
		for _, q := range []int{0, 99, 777, 2001} {
			for _, ef := range []int{0, 32, 200} {
				res, err := eng.TopKWith(q, 10, ModeANN, ef)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, answer{q: q, nbs: res.Neighbors})
			}
		}
		return out
	}
	ref := collect(1)
	for _, workers := range []int{2, 4, 8} {
		got := collect(workers)
		for i := range ref {
			if len(got[i].nbs) != len(ref[i].nbs) {
				t.Fatalf("workers=%d q=%d: %d vs %d neighbors", workers, got[i].q, len(got[i].nbs), len(ref[i].nbs))
			}
			for j := range ref[i].nbs {
				if got[i].nbs[j] != ref[i].nbs[j] {
					t.Fatalf("workers=%d q=%d rank %d: %+v vs %+v",
						workers, got[i].q, j, got[i].nbs[j], ref[i].nbs[j])
				}
			}
		}
	}
	// Rebuild with identical settings: identical answers.
	again := collect(1)
	for i := range ref {
		for j := range ref[i].nbs {
			if again[i].nbs[j] != ref[i].nbs[j] {
				t.Fatalf("rebuild q=%d rank %d: %+v vs %+v", ref[i].q, j, again[i].nbs[j], ref[i].nbs[j])
			}
		}
	}
}

// TestANNIndexLazyAndInvalidated checks the memoization contract: the
// index is built once per snapshot (concurrent first queries
// included) and a reload discards it with its snapshot.
func TestANNIndexLazyAndInvalidated(t *testing.T) {
	ds := testDataset(t, false)
	eng := trainedSmall(t, ds, Options{Workers: 2, ANN: true})
	st1, _ := eng.Snapshot()
	if st1.annIdx.Load() != nil {
		t.Fatal("index built before any ann query")
	}
	a := eng.annIndex(st1)
	if a == nil || eng.annIndex(st1) != a {
		t.Fatal("second annIndex call did not return the memoized index")
	}
	if a.Len() != ds.G.NumVertices() {
		t.Fatalf("index covers %d vertices, want %d", a.Len(), ds.G.NumVertices())
	}

	// New snapshot: fresh index over the new table.
	if _, err := eng.Install(testModel(t, ds, 2, "sym")); err != nil {
		t.Fatal(err)
	}
	st2, _ := eng.Snapshot()
	if st2 == st1 {
		t.Fatal("reload did not swap the snapshot")
	}
	if st2.annIdx.Load() != nil {
		t.Fatal("fresh snapshot carries a prebuilt index")
	}
	b := eng.annIndex(st2)
	if b == a {
		t.Fatal("reload served the stale index")
	}
}

// TestANNCacheKeyedByModeAndEf makes sure exact and ann answers for
// the same (id, k) never collide in the memo cache.
func TestANNCacheKeyedByModeAndEf(t *testing.T) {
	ds := testDataset(t, false)
	eng := trainedSmall(t, ds, Options{Workers: 2})
	exact1, err := eng.TopKWith(3, 5, ModeExact, 0)
	if err != nil {
		t.Fatal(err)
	}
	annRes, err := eng.TopKWith(3, 5, ModeANN, 16)
	if err != nil {
		t.Fatal(err)
	}
	if annRes == exact1 {
		t.Fatal("ann query served the cached exact result")
	}
	annRes2, err := eng.TopKWith(3, 5, ModeANN, 32)
	if err != nil {
		t.Fatal(err)
	}
	if annRes2 == annRes {
		t.Fatal("different ef served the same cached result")
	}
	exact2, err := eng.TopKWith(3, 5, ModeExact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact2 != exact1 {
		t.Fatal("exact result was not memoized")
	}
	// Sanity: ann/exact disagreement is allowed, shared ranks agree on
	// the total order.
	if exact1.Mode != ModeExact || annRes.Mode != ModeANN {
		t.Fatalf("modes: %q / %q", exact1.Mode, annRes.Mode)
	}
}

// TestAnnPackageAgreesWithServeScan pins the two exact scanners — the
// ann package's harness reference and serve's sharded skiplist scan —
// to each other, element for element, on served embeddings.
func TestAnnPackageAgreesWithServeScan(t *testing.T) {
	ds := testDataset(t, false)
	eng := trainedSmall(t, ds, Options{Workers: 3})
	st, _ := eng.Snapshot()
	for _, q := range []int{0, 42, 299} {
		want, err := eng.TopKWith(q, 7, ModeExact, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := ann.ExactTopK(st.Emb, st.norms, st.Emb.Row(q), st.norms[q], 7, int32(q))
		if len(got) != len(want.Neighbors) {
			t.Fatalf("q=%d: %d vs %d", q, len(got), len(want.Neighbors))
		}
		for i, c := range got {
			if int(c.ID) != want.Neighbors[i].ID || c.Score != want.Neighbors[i].Score {
				t.Fatalf("q=%d rank %d: ann %+v vs serve %+v", q, i, c, want.Neighbors[i])
			}
		}
	}
}
