package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// overloadServer builds a loaded single-model server with the given
// overload options.
func overloadServer(t *testing.T, opts Options) *Server {
	t.Helper()
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")
	srv := NewServer(ds, opts)
	t.Cleanup(srv.Close)
	if _, err := srv.eng.Install(m); err != nil {
		t.Fatal(err)
	}
	return srv
}

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestSubmitCancelMidQueue covers both places a context can end inside
// submit: before the request wins a queue slot, and while it sits
// queued waiting for the dispatcher. Both must free the caller with
// the context's error and, for the queued case, mark the row abandoned
// so the dispatcher never answers into a dead channel.
func TestSubmitCancelMidQueue(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")
	eng := NewEngine(ds, Options{Workers: 1})
	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	// No dispatcher goroutine: the queue can only drain through our
	// own reads, so queue states are fully deterministic.
	b := &batcher{eng: eng, maxBatch: 1, reqs: make(chan *batchReq, 1), done: make(chan struct{})}

	// Already-canceled context: rejected before taking a queue slot.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp := b.submit(ctx, []int{0}, false)
	if !errors.Is(resp.err, context.Canceled) || !strings.Contains(resp.err.Error(), "before enqueue") {
		t.Fatalf("pre-canceled submit err = %v", resp.err)
	}
	if len(b.reqs) != 0 {
		t.Fatalf("pre-canceled submit occupied a queue slot")
	}

	// Queued, then canceled: submit returns, the row is flagged dead.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan batchResp, 1)
	go func() { done <- b.submit(ctx2, []int{1}, false) }()
	var queued *batchReq
	select {
	case queued = <-b.reqs:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the queue")
	}
	cancel2()
	select {
	case resp = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled submit never returned")
	}
	if !errors.Is(resp.err, context.Canceled) || !strings.Contains(resp.err.Error(), "while queued") {
		t.Fatalf("canceled-while-queued err = %v", resp.err)
	}
	if !queued.dead() {
		t.Fatal("canceled request not marked dead for the dispatcher")
	}

	// A full queue past the deadline: the slot is never taken.
	b.reqs <- &batchReq{ids: []int{2}, out: make(chan batchResp, 1)}
	ctx3, cancel3 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel3()
	resp = b.submit(ctx3, []int{3}, false)
	if !errors.Is(resp.err, context.DeadlineExceeded) || !strings.Contains(resp.err.Error(), "before enqueue") {
		t.Fatalf("full-queue deadline err = %v", resp.err)
	}
}

// TestRunSkipsDeadRequests pins the bugfix sweep: a drain whose every
// request is abandoned or invalid dispatches nothing — no answer into
// the dead channel, no batch id burned, no stats or histogram skew —
// and the next real query still gets batch id 1.
func TestRunSkipsDeadRequests(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")
	eng := NewEngine(ds, Options{Workers: 1})
	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	b := newBatcher(eng, 8)
	defer b.close()

	// Abandoned row: skipped entirely.
	dead := &batchReq{ids: []int{0}, out: make(chan batchResp, 1)}
	dead.abandoned.Store(true)
	// Invalid row: answered with its own error, but not dispatched.
	bad := &batchReq{ids: []int{99999}, out: make(chan batchResp, 1)}
	b.run([]*batchReq{dead, bad})

	select {
	case resp := <-dead.out:
		t.Fatalf("abandoned request was answered: %+v", resp)
	default:
	}
	if resp := <-bad.out; resp.err == nil {
		t.Fatal("invalid request did not fail")
	}
	if batches, queries := b.Stats(); batches != 0 || queries != 0 {
		t.Fatalf("empty dispatch skewed stats: batches=%d queries=%d", batches, queries)
	}

	if _, batch, err := b.Embed(context.Background(), []int{1}); err != nil || batch != 1 {
		t.Fatalf("first real query: batch=%d err=%v, want batch 1", batch, err)
	}
	if batches, queries := b.Stats(); batches != 1 || queries != 1 {
		t.Fatalf("stats after one real query: batches=%d queries=%d", batches, queries)
	}
}

// TestDeadlineExpires covers the per-model deadline end to end: an
// un-meetable deadline answers 504 with reason "deadline", while a
// generous one answers 200.
func TestDeadlineExpires(t *testing.T) {
	expired := overloadServer(t, Options{Workers: 1, Deadline: time.Nanosecond})
	tsE := httptest.NewServer(expired)
	defer tsE.Close()

	code, body := getStatus(t, tsE.URL+"/embed?ids=0")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: code=%d body=%s", code, body)
	}
	if !strings.Contains(body, `"reason":"deadline"`) {
		t.Fatalf("504 body lacks reason: %s", body)
	}

	roomy := overloadServer(t, Options{Workers: 1, Deadline: time.Minute})
	tsR := httptest.NewServer(roomy)
	defer tsR.Close()
	if code, body = getStatus(t, tsR.URL+"/embed?ids=0"); code != http.StatusOK {
		t.Fatalf("roomy-deadline request: code=%d body=%s", code, body)
	}
}

// TestShedQueuePressure forces the queue-depth probe past the
// high-water mark on all three serving layers — Server, Router and
// Registry dispatch — and expects early 429s with reason "shed" plus
// a growing gsgcn_shed_total, then full recovery once pressure drops.
func TestShedQueuePressure(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")

	// pressure swaps a gate's depth probe for one pinned at the
	// high-water mark. Installed before the httptest server starts, so
	// the override is ordered before every handler goroutine.
	pressure := func(gate *admitGate) {
		gate.depth = func() int { return gate.hw }
	}
	check := func(t *testing.T, url, metrics string) {
		for _, ep := range []string{"/embed?ids=0", "/predict?ids=0", "/topk?id=0&k=3"} {
			code, body := getStatus(t, url+ep)
			if code != http.StatusTooManyRequests {
				t.Fatalf("%s under pressure: code=%d body=%s", ep, code, body)
			}
			if !strings.Contains(body, `"reason":"shed"`) {
				t.Fatalf("%s 429 body lacks reason: %s", ep, body)
			}
		}
		if _, body := getStatus(t, metrics); !strings.Contains(body, "gsgcn_shed_total") {
			t.Fatalf("shed metric family missing from scrape:\n%.400s", body)
		}
	}
	// recovered asserts a same-options instance with its real depth
	// probe (an idle queue) admits freely.
	recovered := func(t *testing.T, url string) {
		if code, body := getStatus(t, url+"/embed?ids=0"); code != http.StatusOK {
			t.Fatalf("idle-queue request: code=%d body=%s", code, body)
		}
	}

	t.Run("server", func(t *testing.T) {
		for _, pressured := range []bool{true, false} {
			srv := NewServer(ds, Options{Workers: 1, ShedQueueHW: 4})
			defer srv.Close()
			if _, err := srv.eng.Install(m); err != nil {
				t.Fatal(err)
			}
			if pressured {
				pressure(srv.gate)
			}
			ts := httptest.NewServer(srv)
			defer ts.Close()
			if pressured {
				check(t, ts.URL, ts.URL+"/metrics")
			} else {
				recovered(t, ts.URL)
			}
		}
	})

	t.Run("router", func(t *testing.T) {
		for _, pressured := range []bool{true, false} {
			rt, err := NewRouter(ds, Options{Workers: 1, ShedQueueHW: 4}, 2, 42)
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			if _, err := rt.Install(m); err != nil {
				t.Fatal(err)
			}
			if pressured {
				pressure(rt.gate)
			}
			ts := httptest.NewServer(rt)
			defer ts.Close()
			if pressured {
				check(t, ts.URL, ts.URL+"/metrics")
			} else {
				recovered(t, ts.URL)
			}
		}
	})

	t.Run("registry", func(t *testing.T) {
		for _, pressured := range []bool{true, false} {
			reg := NewRegistry()
			defer reg.Close()
			srv, err := reg.Add("prod", ds, Options{Workers: 1, ShedQueueHW: 4})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := srv.eng.Install(m); err != nil {
				t.Fatal(err)
			}
			if pressured {
				pressure(srv.gate)
			}
			ts := httptest.NewServer(reg)
			defer ts.Close()
			if pressured {
				check(t, ts.URL+"/models/prod", ts.URL+"/metrics")
			} else {
				recovered(t, ts.URL+"/models/prod")
			}
		}
	})
}

// TestQPSQuota pins the token bucket: with a quota of 1 qps and a
// frozen clock the first query spends the burst token and the second
// sheds; a one-second clock advance restores exactly one token.
func TestQPSQuota(t *testing.T) {
	g := newAdmitGate(Options{QPSLimit: 1}, nil)
	now := g.last
	g.now = func() time.Time { return now }

	release, err := g.admit()
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if g.Inflight() != 1 {
		t.Fatalf("inflight = %d, want 1", g.Inflight())
	}
	release()
	if g.Inflight() != 0 {
		t.Fatalf("inflight after release = %d, want 0", g.Inflight())
	}
	if _, err := g.admit(); !errors.Is(err, errQuota) {
		t.Fatalf("second admit err = %v, want errQuota", err)
	}
	now = now.Add(time.Second)
	if _, err := g.admit(); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	if _, err := g.admit(); !errors.Is(err, errQuota) {
		t.Fatalf("refill granted more than one token: %v", err)
	}
}

// TestQPSQuotaHTTP covers the quota over the wire: a near-zero limit
// leaves exactly the single burst token, so the first query answers
// and the second sheds with reason "quota".
func TestQPSQuotaHTTP(t *testing.T) {
	srv := overloadServer(t, Options{Workers: 1, QPSLimit: 0.0001})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, body := getStatus(t, ts.URL+"/embed?ids=0"); code != http.StatusOK {
		t.Fatalf("burst-token request: code=%d body=%s", code, body)
	}
	code, body := getStatus(t, ts.URL+"/embed?ids=0")
	if code != http.StatusTooManyRequests || !strings.Contains(body, `"reason":"quota"`) {
		t.Fatalf("over-quota request: code=%d body=%s", code, body)
	}
}

// TestSheddingPreservesAnswerBytes is the determinism pin for the
// whole overload layer: under serial load (queue depth 0, quota never
// hit) a server with deadlines, shedding and a QPS quota enabled must
// answer every query byte-identically to one with the layer disabled.
// Overload protection decides whether a request is answered — never
// what an answered response contains.
func TestSheddingPreservesAnswerBytes(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")

	build := func(opts Options) *httptest.Server {
		srv := NewServer(ds, opts)
		t.Cleanup(srv.Close)
		if _, err := srv.eng.Install(m); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts
	}
	plain := build(Options{Workers: 1})
	guarded := build(Options{Workers: 1, Deadline: time.Minute, ShedQueueHW: 64, QPSLimit: 1e6})

	for _, q := range []string{
		"/embed?ids=0,1,2", "/predict?ids=3,4", "/topk?id=5&k=4",
		"/embed?ids=299", "/predict?ids=0", "/topk?id=0&k=3&mode=exact",
	} {
		c1, b1 := getStatus(t, plain.URL+q)
		c2, b2 := getStatus(t, guarded.URL+q)
		if c1 != http.StatusOK || c2 != http.StatusOK {
			t.Fatalf("%s: codes %d vs %d", q, c1, c2)
		}
		if b1 != b2 {
			t.Fatalf("%s: guarded answer differs from plain:\n%s\nvs\n%s", q, b1, b2)
		}
	}
}

// TestRouterDeadlineAndCtxScatter exercises the context threading
// through the scatter-gather: an un-meetable router deadline answers
// 504, while a generous one on an identical fleet serves normally.
func TestRouterDeadlineAndCtxScatter(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")
	build := func(d time.Duration) *httptest.Server {
		rt, err := NewRouter(ds, Options{Workers: 1, Deadline: d}, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		if _, err := rt.Install(m); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(rt)
		t.Cleanup(ts.Close)
		return ts
	}

	code, body := getStatus(t, build(time.Nanosecond).URL+"/embed?ids=0,1,2")
	if code != http.StatusGatewayTimeout || !strings.Contains(body, `"reason":"deadline"`) {
		t.Fatalf("router expired deadline: code=%d body=%s", code, body)
	}
	if code, body = getStatus(t, build(time.Minute).URL+"/embed?ids=0,1,2"); code != http.StatusOK {
		t.Fatalf("router roomy-deadline request: code=%d body=%s", code, body)
	}
}
