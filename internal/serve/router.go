package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gsgcn/internal/artifact"
	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/mat"
	"gsgcn/internal/obs"
	"gsgcn/internal/partition"
)

// Router is the scatter-gather front end of a sharded serving fleet:
// N shard Engines, each holding only the embedding rows of the
// vertices it owns under a deterministic partition.ShardMap, behind
// the exact same HTTP surface as a single-engine Server.
//
// Routing is partition-aware. /embed and /predict group the queried
// ids by owning shard, scatter one sub-query per owner, and stitch
// the answers back in request order; every id touches exactly one
// shard. /topk first fetches the query vertex's embedding row from
// its owner, then scatters a vector probe to every live shard and
// merges the per-shard candidates through the same bounded-skiplist
// total order (descending score, ascending id) the single-engine scan
// uses — the order is insertion-order-insensitive, so in exact mode
// the merged answer is byte-identical to the single-process one at
// every shard count and Workers setting (test-enforced). In ann mode
// each shard searches its own HNSW index: deterministic at a fixed
// shard count, and byte-identical to the single process at shards=1,
// but not across shard counts (an index over a shard's rows is a
// different graph than one over all rows — see docs/API.md).
//
// Failure semantics are degraded-not-dead: a stopped shard removes
// only its vertices from service. /healthz always answers 200 and
// reports per-shard status (ok / degraded / loading); requests whose
// ids live on healthy shards keep answering bit-identically, requests
// owned by a down shard fail 503, and /topk answers assembled while a
// non-owning shard was down carry "degraded": true instead of
// silently passing off a partial scan as the full one.
type Router struct {
	ds      *datasets.Dataset
	opts    Options // resolved; ShardCount/ShardSeed describe the fleet
	sm      partition.ShardMap
	engines []*Engine
	// bats micro-batch each shard's scattered sub-queries, exactly as
	// a single-engine server batches whole queries: concurrent
	// requests whose ids land on one shard coalesce into one gather
	// there. Per-shard counts aggregate into the router's health body.
	bats []*batcher
	down []atomic.Bool

	// gate is the fleet's admission control; its depth probe reads the
	// deepest shard queue, because the scatter-gather answers at the
	// pace of its slowest shard.
	gate *admitGate

	closed atomic.Bool

	// inst is the shared obs middleware; degraded counts queries
	// refused because their owning shard was down plus top-K answers
	// assembled while any shard was down (observation-only).
	inst     *modelMetrics
	degraded *obs.Counter

	mu       sync.Mutex
	ckptPath string

	// artMu guards artBase, the fleet-wide artifact base path each
	// shard derives its own artifact.ShardPath from.
	artMu   sync.Mutex
	artBase string

	// swapMu serializes whole /reload sequences, exactly as Server's
	// does: retarget → load → rollback must be atomic against other
	// reloads, and is never taken on the query path.
	swapMu sync.Mutex

	// cache memoizes merged /topk answers per (version, query) — the
	// router-level mirror of the engine cache. Answers computed while
	// any shard was down are never cached: they are partial by
	// construction and must not outlive the outage.
	cacheMu sync.Mutex
	cache   map[topkKey]*TopKResult
}

// NewRouter builds a sharded serving fleet over ds: shards Engines
// whose vertex ownership is the deterministic ShardMap{shards, seed}.
// Options.ArtifactPath, when set, is the fleet-wide artifact base —
// shard i warm-starts from artifact.ShardPath(base, i, shards). With
// shards == 1 the single engine is an ordinary whole-graph engine
// (and the unmodified base artifact path), so a 1-shard router is
// byte-compatible with a plain Server in every mode. No checkpoint is
// loaded yet; call Load before serving queries.
func NewRouter(ds *datasets.Dataset, opts Options, shards int, seed uint64) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("serve: shard count must be >= 1, got %d", shards)
	}
	opts = opts.withDefaults()
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	opts.ShardCount = shards
	opts.ShardIndex = 0
	opts.ShardSeed = seed
	rt := &Router{
		ds:      ds,
		opts:    opts,
		sm:      partition.ShardMap{Shards: shards, Seed: seed},
		engines: make([]*Engine, shards),
		bats:    make([]*batcher, shards),
		down:    make([]atomic.Bool, shards),
		artBase: opts.ArtifactPath,
		cache:   make(map[topkKey]*TopKResult),
	}
	for i := range rt.engines {
		o := opts
		o.ShardIndex = i
		if o.ArtifactPath != "" && shards > 1 {
			o.ArtifactPath = artifact.ShardPath(o.ArtifactPath, i, shards)
		}
		rt.engines[i] = NewEngine(ds, o)
		rt.bats[i] = newBatcher(rt.engines[i], opts.MaxBatch)
		rt.bats[i].instrument(opts.Obs, map[string]string{"model": opts.ModelName, "shard": strconv.Itoa(i)})
	}
	rt.gate = newAdmitGate(opts, func() int {
		max := 0
		for _, b := range rt.bats {
			if d := len(b.reqs); d > max {
				max = d
			}
		}
		return max
	})
	rt.gate.instrument(opts.Obs, map[string]string{"model": opts.ModelName})
	rt.inst = newModelMetrics(opts.Obs, opts.ModelName, opts.AccessLog, endpointPatterns(perModelEndpoints, shardEndpoints))
	rt.degraded = opts.Obs.Counter("gsgcn_degraded_queries_total",
		"Queries refused because their owning shard was down, plus top-K answers assembled without a down shard's vertices.",
		map[string]string{"model": opts.ModelName})
	for i := range rt.engines {
		idx := i
		opts.Obs.GaugeFunc("gsgcn_shard_up", "1 when the shard is in service, 0 while stopped.",
			map[string]string{"model": opts.ModelName, "shard": strconv.Itoa(idx)},
			func() float64 {
				if rt.down[idx].Load() {
					return 0
				}
				return 1
			})
	}
	return rt, nil
}

// Shards returns the fleet's shard count.
func (rt *Router) Shards() int { return len(rt.engines) }

// ShardSeed returns the seed keying the vertex-shard assignment.
func (rt *Router) ShardSeed() uint64 { return rt.opts.ShardSeed }

// Engine returns shard i's engine (for tests and direct inspection).
func (rt *Router) Engine(i int) *Engine { return rt.engines[i] }

// Load reads the checkpoint at path once and installs the model
// across the whole fleet, returning the fleet's new version.
func (rt *Router) Load(path string) (uint64, error) {
	m, err := core.LoadModelFile(path)
	if err != nil {
		return 0, err
	}
	v, err := rt.installAll(m)
	if err != nil {
		return 0, err
	}
	rt.mu.Lock()
	rt.ckptPath = path
	rt.mu.Unlock()
	return v, nil
}

// Reload re-reads the last loaded checkpoint path and installs the
// fresh model across the fleet.
func (rt *Router) Reload() (uint64, error) {
	rt.mu.Lock()
	path := rt.ckptPath
	rt.mu.Unlock()
	if path == "" {
		return 0, fmt.Errorf("serve: no checkpoint path to reload")
	}
	m, err := core.LoadModelFile(path)
	if err != nil {
		return 0, err
	}
	return rt.installAll(m)
}

// CheckpointPath returns the checkpoint the router last loaded.
func (rt *Router) CheckpointPath() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ckptPath
}

// Install publishes an in-memory model across the whole fleet.
func (rt *Router) Install(m *core.Model) (uint64, error) {
	return rt.installAll(m)
}

// installAll installs one model on every shard engine in lockstep.
// The expensive whole-graph table compute is shared: the first shard
// that misses its warm-start artifact runs it, every other cold shard
// compacts from the same tables. Each engine bumps its version by
// exactly one per fleet install, and the only failure mode
// (model/dataset shape mismatch) is identical across shards, so shard
// versions can never diverge.
func (rt *Router) installAll(m *core.Model) (uint64, error) {
	var (
		once  sync.Once
		emb   *mat.Dense
		norms []float64
	)
	full := func() (*mat.Dense, []float64) {
		once.Do(func() { emb, norms = computeTables(m, rt.ds, rt.opts) })
		return emb, norms
	}
	var version uint64
	for i, e := range rt.engines {
		v, err := e.InstallShared(m, full)
		if err != nil {
			return 0, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		version = v
	}
	rt.cacheMu.Lock()
	for k := range rt.cache {
		if k.version != version {
			delete(rt.cache, k)
		}
	}
	rt.cacheMu.Unlock()
	return version, nil
}

// Close marks the router closed and stops every shard's micro-batch
// dispatcher; subsequent queries fail with the same retryable error a
// closed single-engine server returns.
func (rt *Router) Close() {
	rt.closed.Store(true)
	for _, b := range rt.bats {
		b.close()
	}
}

// StopShard takes shard i out of service: its vertices stop
// answering (503) and /healthz reports the fleet degraded. The
// shard's snapshot is kept, so StartShard restores service instantly.
func (rt *Router) StopShard(i int) error {
	if i < 0 || i >= len(rt.engines) {
		return fmt.Errorf("serve: shard %d out of range [0,%d)", i, len(rt.engines))
	}
	rt.down[i].Store(true)
	return nil
}

// StartShard returns shard i to service.
func (rt *Router) StartShard(i int) error {
	if i < 0 || i >= len(rt.engines) {
		return fmt.Errorf("serve: shard %d out of range [0,%d)", i, len(rt.engines))
	}
	rt.down[i].Store(false)
	return nil
}

// group assigns each queried id to its owning shard, failing with a
// retryable 503 when any owner is down — partial answers to point
// queries are never served. Range errors use the exact text a
// single-engine server produces, so malformed requests get identical
// bytes from both deployments.
func (rt *Router) group(ids []int) (groups [][]int, owners []int, err error) {
	if rt.closed.Load() {
		return nil, nil, errClosed
	}
	total := rt.ds.G.NumVertices()
	groups = make([][]int, len(rt.engines))
	owners = make([]int, len(ids))
	for i, id := range ids {
		if id < 0 || id >= total {
			return nil, nil, fmt.Errorf("serve: vertex id %d out of range [0,%d)", id, total)
		}
		o := rt.sm.Assign(int32(id))
		if rt.down[o].Load() {
			rt.degraded.Inc()
			return nil, nil, fmt.Errorf("%w: vertex id %d is owned by stopped shard %d", errShardDown, id, o)
		}
		owners[i] = o
		groups[o] = append(groups[o], id)
	}
	return groups, owners, nil
}

// scatter runs fn once per shard that owns any of the grouped ids,
// concurrently, and reports the first error.
func (rt *Router) scatter(groups [][]int, fn func(shard int, ids []int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	for s, ids := range groups {
		if len(ids) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, ids []int) {
			defer wg.Done()
			errs[s] = fn(s, ids)
		}(s, ids)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Embed answers an embedding query by scattering the ids to their
// owning shards and stitching the vectors back in request order. The
// response is byte-identical to a single-engine server's: vertices
// and their rows are the same bits wherever they live, and the
// version counters advance in lockstep.
func (rt *Router) Embed(ids []int) (*EmbedResult, error) {
	res, _, err := rt.embed(context.Background(), ids)
	return res, err
}

// embed is Embed plus the scatter fan-out width (shards that owned
// any queried id), which the HTTP layer records in the request log.
// ctx bounds every scattered sub-query: when it ends, each shard's
// submit gives up and the gather fails with the context's error.
func (rt *Router) embed(ctx context.Context, ids []int) (*EmbedResult, int, error) {
	groups, owners, err := rt.group(ids)
	if err != nil {
		return nil, 0, err
	}
	parts := make([]*EmbedResult, len(rt.engines))
	err = rt.scatter(groups, func(s int, sub []int) error {
		res, _, err := rt.bats[s].Embed(ctx, sub)
		parts[s] = res
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	first := parts[owners[0]]
	res := &EmbedResult{
		Version:      first.Version,
		ModelVersion: first.ModelVersion,
		Dim:          first.Dim,
		IDs:          ids,
		Vectors:      make([][]float64, len(ids)),
	}
	pos := make([]int, len(rt.engines))
	for i, o := range owners {
		res.Vectors[i] = parts[o].Vectors[pos[o]]
		pos[o]++
	}
	return res, fanout(groups), nil
}

// fanout counts the shards a grouped query actually scattered to.
func fanout(groups [][]int) int {
	n := 0
	for _, g := range groups {
		if len(g) > 0 {
			n++
		}
	}
	return n
}

// Predict answers a prediction query by the same scatter/stitch.
func (rt *Router) Predict(ids []int) (*PredictResult, error) {
	res, _, err := rt.predict(context.Background(), ids)
	return res, err
}

// predict is Predict plus the scatter fan-out width.
func (rt *Router) predict(ctx context.Context, ids []int) (*PredictResult, int, error) {
	groups, owners, err := rt.group(ids)
	if err != nil {
		return nil, 0, err
	}
	parts := make([]*PredictResult, len(rt.engines))
	err = rt.scatter(groups, func(s int, sub []int) error {
		res, _, err := rt.bats[s].Predict(ctx, sub)
		parts[s] = res
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	first := parts[owners[0]]
	res := &PredictResult{
		Version:      first.Version,
		ModelVersion: first.ModelVersion,
		Classes:      first.Classes,
		MultiLabel:   first.MultiLabel,
		IDs:          ids,
		Labels:       make([][]int, len(ids)),
		Probs:        make([][]float64, len(ids)),
	}
	pos := make([]int, len(rt.engines))
	for i, o := range owners {
		res.Labels[i] = parts[o].Labels[pos[o]]
		res.Probs[i] = parts[o].Probs[pos[o]]
		pos[o]++
	}
	return res, fanout(groups), nil
}

// TopK answers a similar-nodes query in the router's default mode.
func (rt *Router) TopK(id, k int) (*TopKResult, error) {
	return rt.TopKWith(id, k, ModeAuto, 0)
}

// TopKWith is the scatter-gather top-K: fetch the query vector from
// the owning shard, probe every live shard, merge under the tkBefore
// total order. Validation, mode resolution, ef defaulting and the
// exact-scan fallback replicate Engine.TopKWith bit-for-bit against
// the global vertex count, so the 1-shard router and the N-shard
// exact mode are byte-identical to a single process.
func (rt *Router) TopKWith(id, k int, mode string, ef int) (*TopKResult, error) {
	if rt.closed.Load() {
		return nil, errClosed
	}
	total := rt.ds.G.NumVertices()
	if id < 0 || id >= total {
		return nil, fmt.Errorf("serve: vertex id %d out of range [0,%d)", id, total)
	}
	owner := rt.sm.Assign(int32(id))
	if rt.down[owner].Load() {
		rt.degraded.Inc()
		return nil, fmt.Errorf("%w: vertex id %d is owned by stopped shard %d", errShardDown, id, owner)
	}
	st, q, qn, err := rt.engines[owner].snapshotRow(id)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("serve: k must be >= 1, got %d", k)
	}
	if max := total - 1; k > max {
		return nil, fmt.Errorf("serve: k=%d exceeds the %d other vertices", k, max)
	}
	useANN := false
	switch mode {
	case ModeAuto:
		useANN = rt.opts.ANN
	case ModeExact:
	case ModeANN:
		useANN = true
	default:
		return nil, fmt.Errorf("serve: unknown topk mode %q (want exact or ann)", mode)
	}
	if useANN {
		if ef <= 0 {
			ef = rt.opts.ANNEf
		}
		if ef < k {
			ef = k
		}
		if ef >= total-1 || k >= total-1 {
			useANN = false
		}
	}
	if !useANN {
		ef = 0
	}

	// Snapshot the down set once: the probe loop and the degraded flag
	// must agree on which shards were skipped.
	live := make([]bool, len(rt.engines))
	anyDown := false
	for i := range rt.engines {
		live[i] = !rt.down[i].Load()
		anyDown = anyDown || !live[i]
	}

	key := topkKey{version: st.Version, id: id, k: k, ann: useANN, ef: ef}
	if !anyDown {
		rt.cacheMu.Lock()
		if hit, ok := rt.cache[key]; ok {
			rt.cacheMu.Unlock()
			return hit, nil
		}
		rt.cacheMu.Unlock()
	}

	nbs := make([][]Neighbor, len(rt.engines))
	var wg sync.WaitGroup
	errs := make([]error, len(rt.engines))
	for s := range rt.engines {
		if !live[s] {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			nbs[s], _, errs[s] = rt.engines[s].shardTopK(q, qn, id, k, useANN, ef)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	final := newTopKList(k)
	for _, part := range nbs {
		for _, nb := range part {
			final.Offer(int32(nb.ID), nb.Score)
		}
	}
	modeStr := ModeExact
	if useANN {
		modeStr = ModeANN
	}
	if anyDown {
		rt.degraded.Inc()
	}
	res := &TopKResult{
		Version:      st.Version,
		ModelVersion: st.ModelVersion,
		ID:           id,
		K:            k,
		Mode:         modeStr,
		Ef:           ef,
		Degraded:     anyDown,
		Neighbors:    final.items(),
	}
	if !anyDown {
		rt.cacheMu.Lock()
		if len(rt.cache) < rt.opts.TopKCache {
			rt.cache[key] = res
		}
		rt.cacheMu.Unlock()
	}
	return res, nil
}

// shardEndpoints enumerates the shard-operations routes a Router adds
// on top of the per-model endpoints. Like perModelEndpoints, the
// table is the single source both the handlers and the documented
// route list derive from.
var shardEndpoints = []RouteDoc{
	{"GET", "/shards"},
	{"POST", "/shards/{i}/stop"},
	{"POST", "/shards/{i}/start"},
}

// ServeHTTP implements the single-server HTTP surface plus the shard
// operations. Paths are hand-routed (the module targets pre-1.22
// ServeMux, which has no wildcard patterns); every request runs under
// the obs middleware, with shard-operation paths normalized to their
// documented patterns so a shard index can never mint a label value.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	endpoint, h := rt.route(stripV1(r.URL.Path))
	rt.inst.serve(endpoint, h, w, r)
}

// route resolves a path to its handler and bounded endpoint label.
func (rt *Router) route(path string) (string, http.HandlerFunc) {
	switch path {
	case "/embed":
		return "/embed", rt.handleEmbed
	case "/predict":
		return "/predict", rt.handlePredict
	case "/topk":
		return "/topk", rt.handleTopK
	case "/healthz":
		return "/healthz", rt.handleHealthz
	case "/metrics":
		return "/metrics", rt.handleMetrics
	case "/reload":
		return "/reload", rt.handleReload
	case "/shards":
		return "/shards", rt.handleShards
	}
	if rest, ok := strings.CutPrefix(path, "/shards/"); ok {
		h := func(w http.ResponseWriter, r *http.Request) { rt.handleShardOp(w, r, rest) }
		if _, op, _ := strings.Cut(rest, "/"); op == "stop" || op == "start" {
			return "/shards/{i}/" + op, h
		}
		return epOther, h
	}
	return epOther, notFoundHandler
}

// instruments exposes the router's obs middleware to the registry.
func (rt *Router) instruments() *modelMetrics { return rt.inst }

// handleMetrics serves the model-scoped Prometheus rows (including
// the per-shard series, which carry this model's label).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.inst.handleMetrics(w, r)
}

func (rt *Router) handleEmbed(w http.ResponseWriter, r *http.Request) {
	release, err := rt.gate.admit()
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	defer release()
	ids, err := parseIDs(r)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	ctx, cancel := queryCtx(r, rt.opts.Deadline)
	defer cancel()
	res, n, err := rt.embed(ctx, ids)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	annotFanout(r.Context(), n)
	writeEmbedRes(w, r, res)
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	release, err := rt.gate.admit()
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	defer release()
	ids, err := parseIDs(r)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	ctx, cancel := queryCtx(r, rt.opts.Deadline)
	defer cancel()
	res, n, err := rt.predict(ctx, ids)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	annotFanout(r.Context(), n)
	writePredictRes(w, r, res)
}

func (rt *Router) handleTopK(w http.ResponseWriter, r *http.Request) {
	release, err := rt.gate.admit()
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	defer release()
	tq, err := parseTopKQuery(r, rt.ds.G.NumVertices(), rt.opts.ANN)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	res, err := rt.TopKWith(tq.id, tq.k, tq.mode, tq.ef)
	if err != nil {
		writeQueryErr(w, r, err)
		return
	}
	live := 0
	for i := range rt.down {
		if !rt.down[i].Load() {
			live++
		}
	}
	annotFanout(r.Context(), live)
	writeTopKRes(w, r, res)
}

// shardState is one shard's entry in GET /shards and the router's
// /healthz shard detail.
type shardState struct {
	Shard    int    `json:"shard"`
	Status   string `json:"status"` // "ok" | "down" | "loading"
	Vertices int    `json:"vertices"`
	Version  uint64 `json:"version,omitempty"`
	Warm     bool   `json:"warm_start,omitempty"`
}

// shardStates assembles the live per-shard status list.
func (rt *Router) shardStates() []shardState {
	out := make([]shardState, len(rt.engines))
	for i, e := range rt.engines {
		ss := shardState{Shard: i, Status: "loading", Vertices: rt.ds.G.NumVertices()}
		if e.owned != nil {
			ss.Vertices = len(e.owned)
		}
		if st, err := e.Snapshot(); err == nil {
			ss.Status = "ok"
			ss.Version = st.Version
			ss.Warm = st.WarmStart
		}
		if rt.down[i].Load() {
			ss.Status = "down"
		}
		out[i] = ss
	}
	return out
}

// routerHealth is the sharded /healthz body: the single-server health
// fields plus the fleet view. Status is "ok" (all shards serving),
// "degraded" (some shard down or still loading while others serve) or
// "loading" (nothing serving yet); the endpoint always answers HTTP
// 200 — a down shard degrades the fleet, it does not kill it.
type routerHealth struct {
	healthBody
	Shards      int          `json:"shards"`
	ShardSeed   uint64       `json:"shard_seed"`
	ShardsDown  int          `json:"shards_down"`
	ShardDetail []shardState `json:"shard_detail"`
}

// health assembles the fleet's aggregate health in the single-server
// body shape (the registry's /models listing embeds it verbatim).
func (rt *Router) health() healthBody {
	body := healthBody{
		Status:   "loading",
		Vertices: rt.ds.G.NumVertices(),
		Edges:    rt.ds.G.NumEdges(),
		Classes:  rt.ds.NumClasses,
		Dtype:    rt.opts.Dtype.String(),
	}
	loaded, downCount := 0, 0
	warmAll := true
	for i, e := range rt.engines {
		if rt.down[i].Load() {
			downCount++
		}
		st, err := e.Snapshot()
		if err != nil {
			warmAll = false
			continue
		}
		loaded++
		if body.Version == 0 {
			body.Version = st.Version
			body.ModelVersion = st.ModelVersion
			body.Dim = st.Dim()
			body.Dtype = st.Dtype().String()
			if body.WarmNote == "" {
				body.WarmNote = st.WarmNote
			}
		}
		// Memory-plane bytes sum across the fleet: the per-process
		// answer a capacity planner wants.
		body.ResidentB += st.ResidentBytes()
		body.MappedB += st.MappedBytes()
		warmAll = warmAll && st.WarmStart
	}
	switch {
	case loaded == 0:
		body.Status = "loading"
	case downCount > 0 || loaded < len(rt.engines):
		body.Status = "degraded"
	default:
		body.Status = "ok"
	}
	body.WarmStart = loaded > 0 && warmAll
	// Aggregate the per-shard micro-batcher counts so the sharded
	// health body reports the same batching fields a single-process
	// deployment does (parity is test-enforced).
	for _, b := range rt.bats {
		bb, qq := b.Stats()
		body.Batches += bb
		body.Queries += qq
	}
	if body.Batches > 0 {
		body.Coalescing = float64(body.Queries) / float64(body.Batches)
	}
	return body
}

// modelInfo reports the registry-facing configuration summary.
func (rt *Router) modelInfo() modelInfo {
	rt.artMu.Lock()
	base := rt.artBase
	rt.artMu.Unlock()
	info := modelInfo{
		artifact:   base,
		annDefault: rt.opts.ANN,
		index:      "none",
		shards:     len(rt.engines),
	}
	built := true
	loaded := 0
	for _, e := range rt.engines {
		st, err := e.Snapshot()
		if err != nil {
			continue
		}
		loaded++
		built = built && st.IndexReady()
	}
	if loaded > 0 {
		info.index = "lazy"
		if built && loaded == len(rt.engines) {
			info.index = "built"
		}
	}
	return info
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	detail := rt.shardStates()
	downCount := 0
	for _, ss := range detail {
		if ss.Status == "down" {
			downCount++
		}
	}
	writeJSON(w, http.StatusOK, routerHealth{
		healthBody:  rt.health(),
		Shards:      len(rt.engines),
		ShardSeed:   rt.opts.ShardSeed,
		ShardsDown:  downCount,
		ShardDetail: detail,
	})
}

// shardsBody is the GET /shards response.
type shardsBody struct {
	Shards    int          `json:"shards"`
	ShardSeed uint64       `json:"shard_seed"`
	Detail    []shardState `json:"detail"`
}

func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, fmt.Errorf("%w: %s", errMethod, r.Method))
		return
	}
	writeJSON(w, http.StatusOK, shardsBody{
		Shards:    len(rt.engines),
		ShardSeed: rt.opts.ShardSeed,
		Detail:    rt.shardStates(),
	})
}

// handleShardOp serves POST /shards/{i}/stop and /shards/{i}/start.
func (rt *Router) handleShardOp(w http.ResponseWriter, r *http.Request, rest string) {
	idxStr, op, _ := strings.Cut(rest, "/")
	i, err := strconv.Atoi(idxStr)
	if err != nil || op != "stop" && op != "start" {
		notFoundHandler(w, r)
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, fmt.Errorf("%w: %s", errMethod, r.Method))
		return
	}
	if op == "stop" {
		err = rt.StopShard(i)
	} else {
		err = rt.StartShard(i)
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rt.shardStates()[i])
}

// handleReload mirrors the single-server /reload contract on the
// fleet: {"path": …} loads a new checkpoint, {"artifact": base}
// retargets every shard's warm-start source to its ShardPath under
// the new base ("" disables warm starts fleet-wide) before the load,
// and a failed load rolls every retarget back — all-or-nothing, so
// shard warm sources can never point at mixed bases.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "serve: reload requires POST"})
		return
	}
	var body struct {
		Path     string  `json:"path"`
		Artifact *string `json:"artifact"`
	}
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, fmt.Errorf("serve: bad JSON body: %w", err))
			return
		}
	}
	rt.swapMu.Lock()
	defer rt.swapMu.Unlock()
	restoreArtifact := func() {}
	if body.Artifact != nil {
		prevBase := rt.artBase
		prev := make([]string, len(rt.engines))
		for i, e := range rt.engines {
			prev[i] = e.ArtifactPath()
		}
		rt.setArtifactBase(*body.Artifact)
		restoreArtifact = func() {
			rt.artMu.Lock()
			rt.artBase = prevBase
			rt.artMu.Unlock()
			for i, e := range rt.engines {
				e.SetArtifactPath(prev[i])
			}
		}
	}
	var (
		v   uint64
		err error
	)
	if body.Path != "" {
		v, err = rt.Load(body.Path)
	} else {
		v, err = rt.Reload()
	}
	if err != nil {
		restoreArtifact()
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	// Aggregate the fleet's warm outcome: warm only when every shard
	// warmed, with the first shard's note explaining a fallback.
	warm := true
	note := ""
	var mv uint64
	for _, e := range rt.engines {
		st, serr := e.Snapshot()
		if serr != nil {
			continue
		}
		mv = st.ModelVersion
		warm = warm && st.WarmStart
		if note == "" {
			note = st.WarmNote
		}
	}
	writeJSON(w, http.StatusOK, reloadBody{
		Version:      v,
		ModelVersion: mv,
		WarmStart:    warm,
		WarmNote:     note,
	})
}

// setArtifactBase retargets the fleet-wide artifact base: every shard
// engine's warm-start source becomes its ShardPath under base.
func (rt *Router) setArtifactBase(base string) {
	rt.artMu.Lock()
	rt.artBase = base
	rt.artMu.Unlock()
	for i, e := range rt.engines {
		p := base
		if p != "" && len(rt.engines) > 1 {
			p = artifact.ShardPath(p, i, len(rt.engines))
		}
		e.SetArtifactPath(p)
	}
}
