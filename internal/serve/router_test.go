package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gsgcn/internal/artifact"
	"gsgcn/internal/core"
	"gsgcn/internal/mat"
	"gsgcn/internal/partition"
)

// newTestRouter builds a loaded router over the standard test
// dataset/checkpoint.
func newTestRouter(t *testing.T, opts Options, shards int, seed uint64, ckpt string) *Router {
	t.Helper()
	ds := testDataset(t, false)
	rt, err := NewRouter(ds, opts, shards, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	return rt
}

// get fetches url and returns (status, body bytes).
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestRouterByteIdenticalExact is the sharding determinism property:
// for every shard count and Workers setting, the scatter-gather
// router's /embed, /predict and exact /topk answers are byte-equal to
// a single-process server's — same JSON, same status, bit for bit.
func TestRouterByteIdenticalExact(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	ref := NewServer(ds, Options{Workers: 2})
	defer ref.Close()
	if _, err := ref.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref)
	defer refTS.Close()

	paths := []string{
		"/embed?ids=0,7,42,299",
		"/embed?ids=5",
		"/predict?ids=0,7,42,299",
		"/predict?ids=123,124,125",
		"/topk?id=7&k=10",
		"/topk?id=0&k=25&mode=exact",
		"/topk?id=299&k=1",
		// Error surfaces must match too.
		"/embed?ids=300",
		"/embed?ids=+3",
		"/topk?id=7&k=0",
		"/topk?id=nope",
	}
	want := make(map[string]string)
	wantCode := make(map[string]int)
	for _, p := range paths {
		code, body := get(t, refTS.URL+p)
		want[p] = string(body)
		wantCode[p] = code
	}

	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2} {
			rt := newTestRouter(t, Options{Workers: workers}, shards, 99, ckpt)
			ts := httptest.NewServer(rt)
			for _, p := range paths {
				code, body := get(t, ts.URL+p)
				if code != wantCode[p] {
					t.Errorf("shards=%d workers=%d %s: status %d, single-process %d",
						shards, workers, p, code, wantCode[p])
				}
				if string(body) != want[p] {
					t.Errorf("shards=%d workers=%d %s:\n router %s\n single %s",
						shards, workers, p, body, want[p])
				}
			}
			ts.Close()
			rt.Close()
		}
	}

	// POST bodies route through the same scatter.
	for _, shards := range []int{2, 4} {
		rt := newTestRouter(t, Options{Workers: 2}, shards, 99, ckpt)
		ts := httptest.NewServer(rt)
		for _, ep := range []string{"/embed", "/predict"} {
			body := `{"ids":[3,1,250,77]}`
			refResp, err := http.Post(refTS.URL+ep, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var refBuf bytes.Buffer
			refBuf.ReadFrom(refResp.Body)
			refResp.Body.Close()
			rtResp, err := http.Post(ts.URL+ep, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var rtBuf bytes.Buffer
			rtBuf.ReadFrom(rtResp.Body)
			rtResp.Body.Close()
			if refBuf.String() != rtBuf.String() {
				t.Errorf("shards=%d POST %s: router %s, single %s", shards, ep, rtBuf.String(), refBuf.String())
			}
		}
		ts.Close()
		rt.Close()
	}
}

// TestRouterANNModes pins the ann-mode contract: at shards=1 the
// router's HNSW answers are byte-equal to the single process (same
// index over the same rows), and at any fixed shard count two
// independently built fleets answer identically (per-shard indexes
// are deterministic) even though the answer may differ from the
// single-process one.
func TestRouterANNModes(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)
	opts := Options{Workers: 2, ANN: true, ANNEf: 24}

	ref := NewServer(ds, opts)
	defer ref.Close()
	if _, err := ref.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref)
	defer refTS.Close()

	paths := []string{
		"/topk?id=7&k=5", // mode auto resolves to ann
		"/topk?id=42&k=8&mode=ann&ef=32",
		"/topk?id=0&k=299",          // beam covers the table: exact fallback
		"/topk?id=5&k=3&mode=exact", // per-request exact stays exact
	}

	rt1 := newTestRouter(t, opts, 1, 7, ckpt)
	defer rt1.Close()
	ts1 := httptest.NewServer(rt1)
	defer ts1.Close()
	for _, p := range paths {
		_, want := get(t, refTS.URL+p)
		_, got := get(t, ts1.URL+p)
		if string(got) != string(want) {
			t.Errorf("shards=1 %s:\n router %s\n single %s", p, got, want)
		}
	}

	rtA := newTestRouter(t, opts, 3, 7, ckpt)
	defer rtA.Close()
	rtB := newTestRouter(t, opts, 3, 7, ckpt)
	defer rtB.Close()
	tsA := httptest.NewServer(rtA)
	defer tsA.Close()
	tsB := httptest.NewServer(rtB)
	defer tsB.Close()
	for _, p := range paths {
		_, a := get(t, tsA.URL+p)
		_, b := get(t, tsB.URL+p)
		if string(a) != string(b) {
			t.Errorf("shards=3 %s: two identically configured fleets disagree:\n %s\n %s", p, a, b)
		}
	}
}

// TestScatterMergeTies drives the scatter merge directly over a
// synthetic table with heavy score ties (duplicated rows): at every
// shard count the merged per-shard exact scans must equal the
// whole-table scan entry for entry — the tkBefore total order breaks
// every tie by id, independent of which shard offered the candidate
// first.
func TestScatterMergeTies(t *testing.T) {
	const n, dim = 64, 4
	emb := mat.New(n, dim)
	norms := make([]float64, n)
	for v := 0; v < n; v++ {
		row := emb.Row(v)
		// Only 8 distinct directions: every score ties across ~8 ids.
		g := v % 8
		for j := 0; j < dim; j++ {
			row[j] = float64((g+j)%5) + 1
		}
		s := 0.0
		for _, x := range row {
			s += x * x
		}
		norms[v] = math.Sqrt(s)
	}
	whole := &State{Emb: emb, norms: norms, total: n}
	const id, k = 3, 12
	q, qn := emb.Row(id), norms[id]
	want := scanVec(whole, q, qn, id, k, 1)

	for _, shards := range []int{1, 2, 3, 4, 7} {
		sm := partition.ShardMap{Shards: shards, Seed: 5}
		for _, workers := range []int{1, 3} {
			final := newTopKList(k)
			for s := 0; s < shards; s++ {
				owned := sm.Owned(n, s)
				sub, subNorms := compactRows(emb, norms, owned)
				st := &State{Emb: sub, norms: subNorms, total: n, owned: owned}
				for _, nb := range scanVec(st, q, qn, id, k, workers) {
					final.Offer(int32(nb.ID), nb.Score)
				}
			}
			got := final.items()
			if len(got) != len(want) {
				t.Fatalf("shards=%d workers=%d: %d neighbors, want %d", shards, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("shards=%d workers=%d: neighbor %d = %+v, want %+v", shards, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRouterShardDownDegraded pins the degraded-not-dead contract:
// stopping one shard keeps /healthz at HTTP 200 (status "degraded",
// the down shard visible in the detail), leaves every other shard's
// vertices answering byte-identically, fails the down shard's
// vertices with a retryable 503, marks scatter /topk answers
// degraded, and restores everything — including byte-identical topk —
// when the shard returns.
func TestRouterShardDownDegraded(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)
	rt := newTestRouter(t, Options{Workers: 2}, 3, 42, ckpt)
	defer rt.Close()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	sm := partition.ShardMap{Shards: 3, Seed: 42}
	// Find one vertex per shard.
	byShard := make([]int, 3)
	for i := range byShard {
		byShard[i] = -1
	}
	for v := 0; v < ds.G.NumVertices(); v++ {
		if s := sm.Assign(int32(v)); byShard[s] == -1 {
			byShard[s] = v
		}
	}
	liveID, deadID := byShard[0], byShard[1]

	liveEmbed := fmt.Sprintf("/embed?ids=%d", liveID)
	liveTopk := fmt.Sprintf("/topk?id=%d&k=5", liveID)
	_, wantLive := get(t, ts.URL+liveEmbed)
	_, wantTopk := get(t, ts.URL+liveTopk)

	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthy healthz = %d", code)
	}

	// Kill shard 1 via the HTTP surface.
	resp, err := http.Post(ts.URL+"/shards/1/stop", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stop shard: %d", resp.StatusCode)
	}

	// healthz: still 200, degraded, shard 1 down.
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Errorf("degraded healthz = %d, want 200 (degraded-not-dead)", code)
	}
	var health routerHealth
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.ShardsDown != 1 {
		t.Errorf("degraded healthz = %+v", health)
	}
	if health.ShardDetail[1].Status != "down" || health.ShardDetail[0].Status != "ok" {
		t.Errorf("shard detail = %+v", health.ShardDetail)
	}

	// Unaffected vertex: still answers, byte-identical.
	code, body = get(t, ts.URL+liveEmbed)
	if code != 200 || string(body) != string(wantLive) {
		t.Errorf("live-shard embed during outage: %d %s, want 200 %s", code, body, wantLive)
	}

	// Dead shard's vertex: retryable 503, on every endpoint.
	for _, p := range []string{
		fmt.Sprintf("/embed?ids=%d", deadID),
		fmt.Sprintf("/predict?ids=%d", deadID),
		fmt.Sprintf("/topk?id=%d&k=5", deadID),
	} {
		if code, _ := get(t, ts.URL+p); code != http.StatusServiceUnavailable {
			t.Errorf("%s during owner outage = %d, want 503", p, code)
		}
	}

	// A mixed batch touching the dead shard fails whole: no partial
	// point-query answers.
	if code, _ := get(t, ts.URL+fmt.Sprintf("/embed?ids=%d,%d", liveID, deadID)); code != http.StatusServiceUnavailable {
		t.Errorf("mixed batch = %d, want 503", code)
	}

	// topk from a live vertex: answers 200 but flagged degraded.
	code, body = get(t, ts.URL+liveTopk)
	if code != 200 {
		t.Fatalf("live topk during outage = %d", code)
	}
	var tk TopKResult
	if err := json.Unmarshal(body, &tk); err != nil {
		t.Fatal(err)
	}
	if !tk.Degraded {
		t.Error("topk during outage not marked degraded")
	}

	// Restart: everything back, byte-identical (the degraded answer
	// must not have poisoned the cache).
	resp, err = http.Post(ts.URL+"/shards/1/start", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	code, body = get(t, ts.URL+"/healthz")
	var restored routerHealth
	if err := json.Unmarshal(body, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Status != "ok" || restored.ShardsDown != 0 {
		t.Errorf("restored healthz = %+v", restored)
	}
	_, body = get(t, ts.URL+liveTopk)
	if string(body) != string(wantTopk) {
		t.Errorf("restored topk = %s, want %s", body, wantTopk)
	}
	if code, _ := get(t, ts.URL+fmt.Sprintf("/embed?ids=%d", deadID)); code != 200 {
		t.Errorf("restored dead-shard embed = %d", code)
	}
}

// TestRouterWarmStart pins the sharded warm path: per-shard artifacts
// built offline by BuildShardSnapshots warm every shard (no full
// recompute) and answer byte-identically to a cold fleet.
func TestRouterWarmStart(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)
	m, err := core.LoadModelFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	const shards, seed = 3, 11
	opts := Options{Workers: 2, ANN: true, ANNEf: 16}
	snaps, err := BuildShardSnapshots(ds, m, opts, true, shards, seed)
	if err != nil {
		t.Fatal(err)
	}
	base := dir + "/model.art"
	for i, snap := range snaps {
		if snap.Meta.Shard != i || snap.Meta.Shards != shards || snap.Meta.ShardSeed != seed {
			t.Fatalf("shard %d meta = %+v", i, snap.Meta)
		}
		if _, err := artifact.WriteFile(artifact.ShardPath(base, i, shards), snap); err != nil {
			t.Fatal(err)
		}
	}

	cold := newTestRouter(t, opts, shards, seed, ckpt)
	defer cold.Close()
	warmOpts := opts
	warmOpts.ArtifactPath = base
	warm := newTestRouter(t, warmOpts, shards, seed, ckpt)
	defer warm.Close()

	for i := 0; i < shards; i++ {
		st, err := warm.Engine(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !st.WarmStart {
			t.Errorf("shard %d did not warm-start: %q", i, st.WarmNote)
		}
		if !st.IndexReady() {
			t.Errorf("shard %d did not adopt the persisted index", i)
		}
	}

	coldTS := httptest.NewServer(cold)
	defer coldTS.Close()
	warmTS := httptest.NewServer(warm)
	defer warmTS.Close()
	for _, p := range []string{
		"/embed?ids=0,99,299", "/predict?ids=5,250",
		"/topk?id=7&k=10&mode=exact", "/topk?id=7&k=5&mode=ann",
	} {
		_, want := get(t, coldTS.URL+p)
		_, got := get(t, warmTS.URL+p)
		if string(got) != string(want) {
			t.Errorf("%s: warm %s, cold %s", p, got, want)
		}
	}
}

// TestRouterShardArtifactMismatch pins artifact safety on the sharded
// path: a shard offered another shard's artifact (or one built under
// a different seed) must reject it and fall back to the full compute
// — wrong rows can never be served.
func TestRouterShardArtifactMismatch(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)
	m, err := core.LoadModelFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 2
	opts := Options{Workers: 1}
	snaps, err := BuildShardSnapshots(ds, m, opts, false, shards, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := dir + "/swap.art"
	// Swap the two shards' files.
	if _, err := artifact.WriteFile(artifact.ShardPath(base, 0, shards), snaps[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := artifact.WriteFile(artifact.ShardPath(base, 1, shards), snaps[0]); err != nil {
		t.Fatal(err)
	}
	swapOpts := opts
	swapOpts.ArtifactPath = base
	rt := newTestRouter(t, swapOpts, shards, 1, ckpt)
	defer rt.Close()
	for i := 0; i < shards; i++ {
		st, err := rt.Engine(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if st.WarmStart {
			t.Errorf("shard %d adopted a foreign shard's artifact", i)
		}
	}
	// Answers are still correct: cold compute took over.
	ref := NewServer(ds, Options{Workers: 1})
	defer ref.Close()
	if _, err := ref.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref)
	defer refTS.Close()
	ts := httptest.NewServer(rt)
	defer ts.Close()
	_, want := get(t, refTS.URL+"/embed?ids=0,1,2,3")
	_, got := get(t, ts.URL+"/embed?ids=0,1,2,3")
	if string(got) != string(want) {
		t.Errorf("post-fallback answers diverge: %s vs %s", got, want)
	}
}

// TestRouterReloadEndpoint exercises /reload on a fleet: a new
// checkpoint advances every shard in lockstep, and a reload that
// retargets the artifact base points every shard at its own ShardPath.
func TestRouterReloadEndpoint(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckptA := trainAndSave(t, ds, 1, dir)
	ckptB := trainAndSave(t, ds, 2, dir)
	rt := newTestRouter(t, Options{Workers: 1}, 2, 3, ckptA)
	defer rt.Close()
	ts := httptest.NewServer(rt)
	defer ts.Close()

	body := fmt.Sprintf(`{"path": %q}`, ckptB)
	resp, err := http.Post(ts.URL+"/reload", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rb reloadBody
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rb.Version != 2 {
		t.Errorf("reload version = %d, want 2", rb.Version)
	}
	for i := 0; i < rt.Shards(); i++ {
		st, err := rt.Engine(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if st.Version != 2 {
			t.Errorf("shard %d at version %d after fleet reload", i, st.Version)
		}
	}

	// Artifact retarget: every shard's source becomes its ShardPath.
	resp, err = http.Post(ts.URL+"/reload", "application/json",
		strings.NewReader(`{"artifact": "/tmp/nope.art"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; i < rt.Shards(); i++ {
		want := artifact.ShardPath("/tmp/nope.art", i, rt.Shards())
		if got := rt.Engine(i).ArtifactPath(); got != want {
			t.Errorf("shard %d artifact = %q, want %q", i, got, want)
		}
	}
}

// TestRegistrySharded pins registry integration: a sharded model
// answers through /models/{name}/…, exposes the shard operations,
// reports its shard count in the listing, and unsharded models reject
// /shards cleanly.
func TestRegistrySharded(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	reg := NewRegistry()
	defer reg.Close()
	plain, err := reg.Add("plain", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	rt, err := reg.AddSharded("fleet", ds, Options{Workers: 1}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	// The sharded model answers byte-identically to the plain one.
	_, want := get(t, ts.URL+"/models/plain/embed?ids=0,9,200")
	_, got := get(t, ts.URL+"/models/fleet/embed?ids=0,9,200")
	if string(got) != string(want) {
		t.Errorf("sharded model diverges: %s vs %s", got, want)
	}

	// Shard operations exist on the fleet…
	code, body := get(t, ts.URL+"/models/fleet/shards")
	if code != 200 {
		t.Fatalf("fleet /shards = %d", code)
	}
	var sb shardsBody
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Shards != 2 || sb.ShardSeed != 9 || len(sb.Detail) != 2 {
		t.Errorf("shards body = %+v", sb)
	}
	// …and 404 on the plain model.
	if code, _ := get(t, ts.URL+"/models/plain/shards"); code != http.StatusNotFound {
		t.Errorf("plain /shards = %d, want 404", code)
	}

	// The listing reports shard counts (and omits them when unsharded).
	var list listBody
	if code := getJSON(t, ts.URL+"/models", &list); code != 200 {
		t.Fatal("list failed")
	}
	for _, ms := range list.Models {
		switch ms.Name {
		case "fleet":
			if ms.Shards != 2 {
				t.Errorf("fleet listed with shards=%d", ms.Shards)
			}
		case "plain":
			if ms.Shards != 0 {
				t.Errorf("plain listed with shards=%d", ms.Shards)
			}
		}
	}

	// Stop a shard through the registry spelling; the fleet degrades,
	// the plain model is untouched.
	resp, err := http.Post(ts.URL+"/models/fleet/shards/0/stop", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var ms modelStatus
	if code := getJSON(t, ts.URL+"/models/fleet/healthz", &ms); code != 200 {
		t.Fatal("fleet healthz failed")
	}
	if ms.Status != "degraded" {
		t.Errorf("fleet status = %q, want degraded", ms.Status)
	}
	var plainStatus modelStatus
	getJSON(t, ts.URL+"/models/plain/healthz", &plainStatus)
	if plainStatus.Status != "ok" {
		t.Errorf("plain status = %q after fleet shard stop", plainStatus.Status)
	}
}
