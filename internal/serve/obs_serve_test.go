package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gsgcn/internal/obs"
)

// scrape fetches url and returns the exposition body, failing on a
// non-200 or a wrong content type.
func scrape(t *testing.T, url string) string {
	t.Helper()
	status, raw := getBody(t, url)
	if status != http.StatusOK {
		t.Fatalf("scrape %s: status %d: %s", url, status, raw)
	}
	return string(raw)
}

// TestMetricsExpositionAndScoping pins the fleet scrape surface: the
// registry's bare /metrics carries every expected family labeled by
// model, while /models/{name}/metrics holds exactly that model's
// series.
func TestMetricsExpositionAndScoping(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	reg := NewRegistry()
	defer reg.Close()
	srvA, err := reg.Add("prod", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddSharded("fleet", ds, Options{Workers: 1}, 2, 9); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	// Drive every metric family at least once.
	for _, q := range []string{"/models/prod/embed?ids=0,1", "/models/prod/topk?id=0&k=3", "/models/prod/nope"} {
		if status, _ := getBody(t, ts.URL+q); status == 0 {
			t.Fatal("unreachable")
		}
	}

	global := scrape(t, ts.URL+"/metrics")
	for _, family := range []string{
		"gsgcn_http_requests_total",
		"gsgcn_http_request_duration_seconds",
		"gsgcn_batcher_queue_depth",
		"gsgcn_batcher_batches_total",
		"gsgcn_batcher_queries_total",
		"gsgcn_batcher_batch_size",
		"gsgcn_batcher_flush_duration_seconds",
		"gsgcn_snapshot_version",
		"gsgcn_snapshot_warm_start",
		"gsgcn_index_resident",
		"gsgcn_shard_up",
		"gsgcn_degraded_queries_total",
	} {
		if !strings.Contains(global, "# TYPE "+family+" ") {
			t.Errorf("global /metrics is missing family %s", family)
		}
	}
	for _, series := range []string{
		`gsgcn_snapshot_version{model="prod"} 1`,
		`gsgcn_shard_up{model="fleet",shard="0"} 1`,
		`gsgcn_shard_up{model="fleet",shard="1"} 1`,
		`endpoint="/embed",model="prod"`,
		`endpoint="other",model="prod"`,
	} {
		if !strings.Contains(global, series) {
			t.Errorf("global /metrics is missing %s", series)
		}
	}

	scoped := scrape(t, ts.URL+"/models/prod/metrics")
	if !strings.Contains(scoped, `model="prod"`) {
		t.Error("scoped scrape has no prod series")
	}
	if strings.Contains(scoped, `model="fleet"`) {
		t.Error("scoped scrape for prod leaks fleet series")
	}

	// Scraping is a GET-only surface.
	resp, err := http.Post(ts.URL+"/models/prod/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("POST to a scrape endpoint succeeded")
	}
}

// TestEndpointLabelCardinalityBounded hammers the fleet with
// attacker-shaped paths and verifies no request can mint a new
// endpoint label value: everything folds into the pre-registered
// route patterns plus the catch-all.
func TestEndpointLabelCardinalityBounded(t *testing.T) {
	ds := testDataset(t, false)
	reg := NewRegistry()
	defer reg.Close()
	if _, err := reg.Add("m", ds, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddSharded("fleet", ds, Options{Workers: 1}, 2, 9); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	junk := []string{
		"/models/m/secret-123", "/models/m/embed/../../etc/passwd",
		"/models/fleet/shards/99/stop", "/models/fleet/shards/0/frob",
		"/models/nope/embed", "/favicon.ico", "/v9/api",
	}
	for i, q := range junk {
		if status, _ := getBody(t, ts.URL+q); status == 0 {
			t.Fatalf("junk request %d died", i)
		}
	}

	allowed := map[string]bool{epOther: true, "/models": true, "/metrics": true}
	for _, tbl := range [][]RouteDoc{perModelEndpoints, shardEndpoints} {
		for _, e := range tbl {
			allowed[e.Pattern] = true
		}
	}
	body := scrape(t, ts.URL+"/metrics")
	for _, line := range strings.Split(body, "\n") {
		i := strings.Index(line, `endpoint="`)
		if i < 0 {
			continue
		}
		val := line[i+len(`endpoint="`):]
		val = val[:strings.IndexByte(val, '"')]
		if !allowed[val] {
			t.Errorf("request minted endpoint label %q: %s", val, line)
		}
	}
}

// TestScrapeNeverBlocksOnReloadLocks holds the exact locks a slow
// reload holds — the engine's reloadMu and the router's swapMu — and
// proves a scrape still completes: every gauge reads atomics, never a
// mutex. Run under -race this also checks the reads are clean.
func TestScrapeNeverBlocksOnReloadLocks(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	reg := NewRegistry()
	defer reg.Close()
	srv, err := reg.Add("m", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	rt, err := reg.AddSharded("fleet", ds, Options{Workers: 1}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	srv.eng.reloadMu.Lock()
	defer srv.eng.reloadMu.Unlock()
	rt.swapMu.Lock()
	defer rt.swapMu.Unlock()

	done := make(chan string, 1)
	go func() { done <- scrape(t, ts.URL+"/metrics") }()
	select {
	case body := <-done:
		if !strings.Contains(body, `gsgcn_snapshot_version{model="m"} 1`) {
			t.Error("scrape under held locks lost the snapshot gauge")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scrape blocked on reload locks")
	}
}

// TestScrapeDuringReloadStorm scrapes continuously while both models
// hot-reload in tight loops. Under -race this proves scraping shares
// no unsynchronized state with the swap path.
func TestScrapeDuringReloadStorm(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	reg := NewRegistry()
	defer reg.Close()
	srv, err := reg.Add("m", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	var stop atomic.Bool
	reloaded := make(chan struct{})
	go func() {
		defer close(reloaded)
		for !stop.Load() {
			if _, err := srv.Load(ckpt); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 25; i++ {
		if body := scrape(t, ts.URL+"/metrics"); !strings.Contains(body, "gsgcn_snapshot_version") {
			t.Fatal("scrape lost the snapshot gauge mid-storm")
		}
	}
	stop.Store(true)
	<-reloaded
}

// TestShardedStatusReportsBatcherStats is the stats-parity check: the
// sharded router now runs a real micro-batcher per shard, and its
// health body must account for the query load the same way the
// single-process server's does. Counts are per coalesced client call,
// so the router's scatter amplifies them by at most the shard count —
// the sharded body must be nonzero (the old gap: it reported nothing)
// and bounded by solo × shards.
func TestShardedStatusReportsBatcherStats(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	reg := NewRegistry()
	defer reg.Close()
	solo, err := reg.Add("solo", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := reg.AddSharded("fleet", ds, Options{Workers: 1}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	for _, name := range []string{"solo", "fleet"} {
		for _, q := range []string{"/embed?ids=0,1,2,3", "/predict?ids=4,5"} {
			if status, raw := getBody(t, ts.URL+"/models/"+name+q); status != http.StatusOK {
				t.Fatalf("%s%s: status %d: %s", name, q, status, raw)
			}
		}
	}

	stats := func(name string) (batches, queries uint64) {
		var body struct {
			Batches uint64 `json:"batches"`
			Queries uint64 `json:"queries"`
		}
		_, raw := getBody(t, ts.URL+"/models/"+name+"/healthz")
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("%s healthz: %v", name, err)
		}
		return body.Batches, body.Queries
	}
	soloBatches, soloQueries := stats("solo")
	fleetBatches, fleetQueries := stats("fleet")
	if soloBatches == 0 || fleetBatches == 0 {
		t.Fatalf("batches not reported: solo %d, fleet %d", soloBatches, fleetBatches)
	}
	const shards = 2
	if fleetQueries < soloQueries || fleetQueries > soloQueries*shards {
		t.Errorf("query accounting diverged: solo served %d, sharded fleet %d (want within [%d, %d])",
			soloQueries, fleetQueries, soloQueries, soloQueries*shards)
	}

	// The same accounting must reach the /models listing (the old gap:
	// the sharded entry reported zero batches there).
	var list struct {
		Models []struct {
			Name    string `json:"name"`
			Batches uint64 `json:"batches"`
			Queries uint64 `json:"queries"`
		} `json:"models"`
	}
	_, raw := getBody(t, ts.URL+"/models")
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	for _, m := range list.Models {
		if m.Batches == 0 || m.Queries == 0 {
			t.Errorf("/models entry %q reports no batcher stats: %s", m.Name, raw)
		}
	}
}

// TestAccessLogRequestLine pins the structured request line: one JSON
// object per request carrying the monotonic id, model, endpoint,
// status, latency and the micro-batch id the answer rode in.
func TestAccessLogRequestLine(t *testing.T) {
	ds := testDataset(t, false)
	dir := t.TempDir()
	ckpt := trainAndSave(t, ds, 1, dir)

	var buf bytes.Buffer
	reg := NewRegistry()
	defer reg.Close()
	reg.SetAccessLog(obs.NewLogger(&buf))
	srv, err := reg.Add("m", ds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Load(ckpt); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg)
	defer ts.Close()

	if status, raw := getBody(t, ts.URL+"/models/m/embed?ids=0,1"); status != http.StatusOK {
		t.Fatalf("embed: status %d: %s", status, raw)
	}

	var line struct {
		Event    string  `json:"event"`
		ID       uint64  `json:"id"`
		Model    string  `json:"model"`
		Endpoint string  `json:"endpoint"`
		Method   string  `json:"method"`
		Status   int     `json:"status"`
		DurMS    float64 `json:"dur_ms"`
		Batch    uint64  `json:"batch"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON line: %v\n%s", err, buf.String())
	}
	if line.Event != "request" || line.ID == 0 || line.Model != "m" ||
		line.Endpoint != "/embed" || line.Method != http.MethodGet ||
		line.Status != http.StatusOK || line.DurMS < 0 || line.Batch == 0 {
		t.Errorf("request line missing fields: %s", buf.String())
	}
}
