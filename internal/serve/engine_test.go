package serve

import (
	"math"
	"sort"
	"testing"

	"gsgcn/internal/core"
	"gsgcn/internal/datasets"
	"gsgcn/internal/graph"
	"gsgcn/internal/mat"
	"gsgcn/internal/nn"
)

func testDataset(tb testing.TB, multi bool) *datasets.Dataset {
	tb.Helper()
	return datasets.Generate(datasets.Config{
		Name: "serve-test", Vertices: 300, TargetEdges: 2400,
		FeatureDim: 12, NumClasses: 4, MultiLabel: multi,
		Homophily: 0.8, NoiseStd: 0.5, Seed: 11,
	})
}

func testModel(tb testing.TB, ds *datasets.Dataset, layers int, agg string) *core.Model {
	tb.Helper()
	return core.NewModel(ds, core.Config{
		Layers: layers, Hidden: 8, Workers: 1, Seed: 17, Aggregator: agg,
	})
}

// naiveEmbeddings is the dense reference: plain per-vertex loops with
// the same accumulation orders as the training kernels (neighbors in
// adjacency order, GEMM terms in k order), no parallelism, no
// blocking.
func naiveEmbeddings(m *core.Model, g *graph.CSR, feats *mat.Dense) *mat.Dense {
	cur := feats
	for _, l := range m.Layers {
		in, out := l.InDim, l.OutDim
		var invSqrt []float64
		if l.Agg == nn.AggSym {
			invSqrt = make([]float64, g.N)
			for v := 0; v < g.N; v++ {
				if d := g.Degree(int32(v)); d > 0 {
					invSqrt[v] = 1 / math.Sqrt(float64(d))
				}
			}
		}
		next := mat.New(g.N, 2*out)
		agg := make([]float64, in)
		for v := 0; v < g.N; v++ {
			for j := range agg {
				agg[j] = 0
			}
			nb := g.Neighbors(int32(v))
			switch l.Agg {
			case nn.AggMean:
				for _, u := range nb {
					for j, x := range cur.Row(int(u)) {
						agg[j] += x
					}
				}
				if len(nb) > 0 {
					inv := 1 / float64(len(nb))
					for j := range agg {
						agg[j] *= inv
					}
				}
			case nn.AggSym:
				for _, u := range nb {
					w := invSqrt[v] * invSqrt[u]
					for j, x := range cur.Row(int(u)) {
						agg[j] += w * x
					}
				}
			case nn.AggSum:
				for _, u := range nb {
					for j, x := range cur.Row(int(u)) {
						agg[j] += x
					}
				}
			}
			drow := next.Row(v)
			hrow := cur.Row(v)
			// z_self then z_neigh, accumulating over k in order with
			// the same zero-skip as mat.Mul's axpy loop.
			for k := 0; k < in; k++ {
				if av := hrow[k]; av != 0 {
					wrow := l.WSelf.W.Row(k)
					for j := 0; j < out; j++ {
						drow[j] += av * wrow[j]
					}
				}
			}
			for k := 0; k < in; k++ {
				if av := agg[k]; av != 0 {
					wrow := l.WNeigh.W.Row(k)
					for j := 0; j < out; j++ {
						drow[out+j] += av * wrow[j]
					}
				}
			}
			if l.Activate {
				for j, x := range drow {
					if !(x > 0) {
						drow[j] = 0
					}
				}
			}
		}
		cur = next
	}
	return cur
}

// TestFullEmbeddingsMatchesNaive checks the engine's block-streamed
// layer-wise forward pass against the naive dense reference,
// bit-for-bit, at every Workers and BlockSize combination — and for
// every aggregator and a deeper stack.
func TestFullEmbeddingsMatchesNaive(t *testing.T) {
	ds := testDataset(t, false)
	cases := []struct {
		name   string
		layers int
		agg    string
	}{
		{"mean-2layer", 2, "mean"},
		{"sym-2layer", 2, "sym"},
		{"sum-2layer", 2, "sum"},
		{"mean-3layer", 3, "mean"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testModel(t, ds, tc.layers, tc.agg)
			want := naiveEmbeddings(m, ds.G, ds.Features)
			for _, workers := range []int{1, 2, 3, 8} {
				for _, block := range []int{1, 7, 64, 1000} {
					got := FullEmbeddings(m, ds.G, ds.Features, workers, block)
					if got.Rows != want.Rows || got.Cols != want.Cols {
						t.Fatalf("workers=%d block=%d: shape %dx%d, want %dx%d",
							workers, block, got.Rows, got.Cols, want.Rows, want.Cols)
					}
					if !got.Equal(want, 0) {
						t.Fatalf("workers=%d block=%d: embeddings differ from naive reference (max diff %g)",
							workers, block, got.MaxAbsDiff(want))
					}
				}
			}
		})
	}
}

// TestEngineMatchesTrainingForward checks that serving logits (engine
// embeddings + head) are bit-identical to the training engine's own
// full-graph forward pass.
func TestEngineMatchesTrainingForward(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")
	ctx := m.CtxForGraph(ds.G, ds.FeatureDim(), nil)
	want := m.Forward(ctx, ds.Features)

	eng := NewEngine(ds, Options{Workers: 3, BlockSize: 33})
	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	st, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got := headLogits(st, st.Emb.(*mat.Dense))
	if !got.Equal(want, 0) {
		t.Fatalf("serving logits differ from training forward pass (max diff %g)", got.MaxAbsDiff(want))
	}
}

func TestEngineEmbedAndPredict(t *testing.T) {
	for _, multi := range []bool{false, true} {
		ds := testDataset(t, multi)
		m := testModel(t, ds, 2, "mean")
		eng := NewEngine(ds, Options{Workers: 2})
		if _, err := eng.Install(m); err != nil {
			t.Fatal(err)
		}

		ids := []int{0, 5, 299}
		emb, err := eng.Embed(ids)
		if err != nil {
			t.Fatal(err)
		}
		if emb.Dim != m.Layers[len(m.Layers)-1].OutWidth() {
			t.Errorf("embed dim = %d, want %d", emb.Dim, m.Layers[1].OutWidth())
		}
		if len(emb.Vectors) != 3 || len(emb.Vectors[0]) != emb.Dim {
			t.Fatalf("embed shapes: %d vectors of %d", len(emb.Vectors), len(emb.Vectors[0]))
		}
		st, _ := eng.Snapshot()
		for i, id := range ids {
			for j, x := range emb.Vectors[i] {
				if x != st.Emb.Row(id)[j] {
					t.Fatalf("vector %d element %d differs from table", i, j)
				}
			}
		}

		pred, err := eng.Predict(ids)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Classes != ds.NumClasses || pred.MultiLabel != multi {
			t.Fatalf("predict meta = %+v", pred)
		}
		// Labels must match the training-side prediction rule applied
		// to the full-graph logits.
		logits := headLogits(st, st.Emb.(*mat.Dense))
		var ref *mat.Dense
		if multi {
			ref = nn.PredictMulti(logits)
		} else {
			ref = nn.PredictSingle(logits)
		}
		for i, id := range ids {
			want := []int{}
			for c := 0; c < ds.NumClasses; c++ {
				if ref.At(id, c) == 1 {
					want = append(want, c)
				}
			}
			got := pred.Labels[i]
			if len(got) != len(want) {
				t.Fatalf("vertex %d labels = %v, want %v", id, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("vertex %d labels = %v, want %v", id, got, want)
				}
			}
			if len(pred.Probs[i]) != ds.NumClasses {
				t.Fatalf("vertex %d has %d probs", id, len(pred.Probs[i]))
			}
			for _, p := range pred.Probs[i] {
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Fatalf("vertex %d prob %v out of range", id, p)
				}
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	ds := testDataset(t, false)
	eng := NewEngine(ds, Options{})
	if _, err := eng.Embed([]int{0}); err == nil {
		t.Error("Embed before Install should fail")
	}
	m := testModel(t, ds, 2, "mean")
	if _, err := eng.Install(m); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Embed([]int{-1}); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := eng.Embed([]int{300}); err == nil {
		t.Error("out-of-range id should fail")
	}
	if _, err := eng.Embed(nil); err == nil {
		t.Error("empty ids should fail")
	}
	if _, err := eng.TopK(0, 0); err == nil {
		t.Error("k=0 should fail")
	}

	// A model shaped for a different dataset must be rejected.
	other := datasets.Generate(datasets.Config{
		Name: "other", Vertices: 100, TargetEdges: 400,
		FeatureDim: 7, NumClasses: 3, Seed: 5,
	})
	if _, err := eng.Install(testModel(t, other, 2, "mean")); err == nil {
		t.Error("installing a mismatched model should fail")
	}
}

// TestTopKMatchesBruteForce verifies the skiplist-sharded scan
// against a full sort, at several worker counts, and checks that the
// query node itself is excluded.
func TestTopKMatchesBruteForce(t *testing.T) {
	ds := testDataset(t, false)
	m := testModel(t, ds, 2, "mean")
	for _, workers := range []int{1, 2, 5} {
		eng := NewEngine(ds, Options{Workers: workers})
		if _, err := eng.Install(m); err != nil {
			t.Fatal(err)
		}
		st, _ := eng.Snapshot()
		for _, q := range []int{0, 17, 299} {
			for _, k := range []int{1, 5, 50} {
				got, err := eng.TopK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteTopK(st, q, k)
				if len(got.Neighbors) != len(want) {
					t.Fatalf("workers=%d q=%d k=%d: %d neighbors, want %d",
						workers, q, k, len(got.Neighbors), len(want))
				}
				for i := range want {
					if got.Neighbors[i] != want[i] {
						t.Fatalf("workers=%d q=%d k=%d rank %d: got %+v, want %+v",
							workers, q, k, i, got.Neighbors[i], want[i])
					}
				}
				for _, nb := range got.Neighbors {
					if nb.ID == q {
						t.Fatalf("query vertex %d in its own neighbor list", q)
					}
				}
			}
		}
	}
}

func bruteTopK(st *State, q, k int) []Neighbor {
	var all []Neighbor
	qrow := st.Emb.Row(q)
	for v := 0; v < st.Emb.NumRows(); v++ {
		if v == q {
			continue
		}
		score := 0.0
		if d := st.norms[q] * st.norms[v]; d > 0 {
			score = mat.Dot(qrow, st.Emb.Row(v)) / d
		}
		all = append(all, Neighbor{ID: v, Score: score})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// TestTopKCacheVersioning checks that top-K answers are memoized per
// snapshot and invalidated when a new model is installed.
func TestTopKCacheVersioning(t *testing.T) {
	ds := testDataset(t, false)
	eng := NewEngine(ds, Options{Workers: 2})
	if _, err := eng.Install(testModel(t, ds, 2, "mean")); err != nil {
		t.Fatal(err)
	}
	a, err := eng.TopK(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.TopK(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second identical query did not hit the cache")
	}
	if a.Version != 1 {
		t.Errorf("first snapshot version = %d, want 1", a.Version)
	}

	// New snapshot: cache entries from version 1 must not be served.
	m2 := core.NewModel(ds, core.Config{Layers: 2, Hidden: 8, Workers: 1, Seed: 99})
	if _, err := eng.Install(m2); err != nil {
		t.Fatal(err)
	}
	c, err := eng.TopK(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("stale cached result served after reload")
	}
	if c.Version != 2 {
		t.Errorf("post-reload version = %d, want 2", c.Version)
	}
	eng.cacheMu.Lock()
	for key := range eng.cache {
		if key.version != 2 {
			t.Errorf("stale cache key %+v survived reload", key)
		}
	}
	eng.cacheMu.Unlock()
}
