package sampler

import (
	"testing"
	"time"

	"gsgcn/internal/graph"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
)

func TestRandomNodeBudgetAndRange(t *testing.T) {
	g := testGraph(t)
	s := &RandomNode{G: g, Budget: 300}
	vs := s.SampleVertices(rng.New(1))
	if len(vs) != 300 {
		t.Fatalf("got %d vertices, want 300", len(vs))
	}
	seen := map[int32]bool{}
	for _, v := range vs {
		if v < 0 || int(v) >= g.NumVertices() || seen[v] {
			t.Fatalf("invalid or duplicate vertex %d", v)
		}
		seen[v] = true
	}
}

func TestRandomNodeBudgetExceedsGraph(t *testing.T) {
	g, _ := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}})
	s := &RandomNode{G: g, Budget: 50}
	if got := len(s.SampleVertices(rng.New(2))); got != 5 {
		t.Fatalf("got %d, want clamped 5", got)
	}
}

func TestRandomEdgeEndpointsAreEdges(t *testing.T) {
	g := testGraph(t)
	s := &RandomEdge{G: g, Budget: 200}
	vs := s.SampleVertices(rng.New(3))
	if len(vs) != 200 {
		t.Fatalf("got %d vertices, want 200", len(vs))
	}
	// Consecutive pairs (2i, 2i+1) are edge endpoints.
	for i := 0; i+1 < len(vs); i += 2 {
		if !g.HasEdge(vs[i], vs[i+1]) {
			t.Fatalf("pair (%d,%d) is not an edge", vs[i], vs[i+1])
		}
	}
}

func TestRandomEdgeDegreeBias(t *testing.T) {
	// On a star graph, nearly half the sampled endpoints must be the hub.
	g := starGraph(t, 400)
	s := &RandomEdge{G: g, Budget: 1000}
	vs := s.SampleVertices(rng.New(4))
	hub := 0
	for _, v := range vs {
		if v == 0 {
			hub++
		}
	}
	if hub < 400 {
		t.Errorf("hub sampled %d/1000 times, want ~500", hub)
	}
}

func TestRandomEdgeEmptyGraphFallsBack(t *testing.T) {
	g, _ := graph.FromEdges(10, nil)
	s := &RandomEdge{G: g, Budget: 5}
	if got := len(s.SampleVertices(rng.New(5))); got != 5 {
		t.Fatalf("got %d vertices from edgeless graph, want 5 via fallback", got)
	}
}

func TestVertexOfArc(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < int(g.NumDirectedEdges()); a++ {
		u := vertexOfArc(g, a)
		if int64(a) < g.RowPtr[u] || int64(a) >= g.RowPtr[u+1] {
			t.Fatalf("arc %d attributed to vertex %d with range [%d,%d)", a, u, g.RowPtr[u], g.RowPtr[u+1])
		}
	}
}

func TestRandomWalkVisitsAreWalks(t *testing.T) {
	g := testGraph(t)
	s := &RandomWalk{G: g, Walkers: 10, Depth: 20}
	vs := s.SampleVertices(rng.New(6))
	if len(vs) == 0 || len(vs) > 10*21 {
		t.Fatalf("walk sample size %d out of range", len(vs))
	}
}

func TestRandomWalkStopsAtDeadEnd(t *testing.T) {
	// Two vertices, one edge, plus isolated vertex 2: walks from 2
	// terminate immediately.
	g, _ := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
	s := &RandomWalk{G: g, Walkers: 5, Depth: 10}
	vs := s.SampleVertices(rng.New(7))
	if len(vs) == 0 {
		t.Fatal("no vertices sampled")
	}
}

func TestForestFireBudget(t *testing.T) {
	g := testGraph(t)
	s := &ForestFire{G: g, Budget: 250, BurnProb: 0.4}
	vs := s.SampleVertices(rng.New(8))
	if len(vs) != 250 {
		t.Fatalf("burned %d vertices, want 250", len(vs))
	}
	seen := map[int32]bool{}
	for _, v := range vs {
		if seen[v] {
			t.Fatalf("vertex %d burned twice", v)
		}
		seen[v] = true
	}
}

func TestForestFireDefaultProb(t *testing.T) {
	g := testGraph(t)
	s := &ForestFire{G: g, Budget: 100} // zero prob -> default
	if got := len(s.SampleVertices(rng.New(9))); got != 100 {
		t.Fatalf("got %d, want 100", got)
	}
}

func TestSamplerNames(t *testing.T) {
	g := testGraph(t)
	for _, s := range []VertexSampler{
		&Frontier{G: g, M: 10, N: 20},
		&NaiveFrontier{G: g, M: 10, N: 20},
		&RandomNode{G: g, Budget: 10},
		&RandomEdge{G: g, Budget: 10},
		&RandomWalk{G: g, Walkers: 2, Depth: 3},
		&ForestFire{G: g, Budget: 10},
	} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}

func TestSampleSubgraphInduces(t *testing.T) {
	g := testGraph(t)
	sub := SampleSubgraph(g, &Frontier{G: g, M: 50, N: 400}, rng.New(10))
	if sub.N == 0 || sub.N > 400 {
		t.Fatalf("subgraph has %d vertices, want (0,400]", sub.N)
	}
	// Orig must map into the parent graph.
	for _, v := range sub.Orig {
		if v < 0 || int(v) >= g.NumVertices() {
			t.Fatalf("orig vertex %d out of range", v)
		}
	}
}

func TestPoolRefillAndNext(t *testing.T) {
	g := testGraph(t)
	p := NewPool(g, &Frontier{G: g, M: 30, N: 150}, 4, 99)
	if p.Pending() != 0 {
		t.Fatal("new pool should be empty before first Next")
	}
	// Draw several waves' worth; the async pipeline must keep
	// producing non-empty subgraphs while staying self-limiting.
	draws := 4 * p.PInter
	for i := 0; i < draws; i++ {
		sub := p.Next()
		if sub == nil || sub.N == 0 {
			t.Fatalf("Next %d returned empty subgraph", i)
		}
	}
	// Bounded-prefetch invariant, checked at the accounting level (a
	// full channel would mask over-launching from Pending): the work
	// ever launched may exceed the work consumed only by the pipeline
	// depth, and buffer credits can never go negative.
	p.mu.Lock()
	launched := p.nextWave * p.PInter
	credits := p.credits
	p.mu.Unlock()
	if bound := draws + p.depth()*p.PInter; launched > bound {
		t.Fatalf("launched %d subgraphs after consuming %d; pipeline bound is %d", launched, draws, bound)
	}
	if credits < 0 {
		t.Fatalf("buffer credits went negative: %d", credits)
	}
}

// TestPoolPrefetchOverlap checks that the pipeline works ahead: after
// the consumer drains one subgraph and sampling is given time to run,
// buffered subgraphs accumulate without further Next calls.
func TestPoolPrefetchOverlap(t *testing.T) {
	g := testGraph(t)
	p := NewPool(g, &Frontier{G: g, M: 30, N: 150}, 4, 99)
	p.Next()
	deadline := time.Now().Add(5 * time.Second)
	for p.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("prefetcher buffered nothing within 5s of first Next")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolDeterministicAcrossWorkerCounts(t *testing.T) {
	g := testGraph(t)
	collect := func(workers int) [][]int32 {
		p := NewPool(g, &Frontier{G: g, M: 30, N: 150}, 4, 7)
		p.Workers = workers
		var out [][]int32
		for i := 0; i < 8; i++ {
			out = append(out, p.Next().Orig)
		}
		return out
	}
	a, b := collect(1), collect(4)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("batch %d sizes differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("batch %d differs at %d", i, j)
			}
		}
	}
}

func TestPoolSubgraphsIndependent(t *testing.T) {
	g := testGraph(t)
	p := NewPool(g, &Frontier{G: g, M: 30, N: 150}, 4, 1)
	a, b := p.Next(), p.Next()
	same := a.N == b.N
	if same {
		for i := range a.Orig {
			if a.Orig[i] != b.Orig[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("two pooled subgraphs are identical; RNG streams not independent")
	}
}

func TestPoolSimulateRefill(t *testing.T) {
	g := testGraph(t)
	fr := &Frontier{G: g, M: 100, N: 1800}
	// Warm the caches so the first simulated instance is not charged
	// for faulting the graph in.
	fr.SampleVertices(rng.New(99))
	p := NewPool(g, fr, 8, 1)
	res := p.SimulateRefill(perf.SimConfig{})
	if res.Shards != 8 {
		t.Fatalf("shards = %d, want 8", res.Shards)
	}
	if s := res.Speedup(); s < 2 {
		t.Errorf("simulated inter-sampler speedup %.2f at p=8; want > 2 (independent instances)", s)
	}
}

func BenchmarkPoolRefill(b *testing.B) {
	g := testGraph(b)
	p := NewPool(g, &Frontier{G: g, M: 100, N: 500}, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One wave's worth of draws forces at least one background
		// wave to be sampled per iteration.
		for j := 0; j < p.PInter; j++ {
			p.Next()
		}
	}
}

func TestNode2VecWalkBudgetAndValidity(t *testing.T) {
	g := testGraph(t)
	s := &Node2VecWalk{G: g, Walkers: 10, Depth: 15, P: 0.5, Q: 2}
	vs := s.SampleVertices(rng.New(20))
	if len(vs) == 0 || len(vs) > 10*16 {
		t.Fatalf("sampled %d vertices", len(vs))
	}
	for _, v := range vs {
		if v < 0 || int(v) >= g.NumVertices() {
			t.Fatalf("vertex %d out of range", v)
		}
	}
}

func TestNode2VecBiasEffect(t *testing.T) {
	// Small Q (outward bias) should visit more distinct vertices than
	// small P (return bias) on the same budget.
	g := testGraph(t)
	distinct := func(p, q float64) int {
		s := &Node2VecWalk{G: g, Walkers: 30, Depth: 30, P: p, Q: q}
		seen := map[int32]bool{}
		for i := 0; i < 5; i++ {
			for _, v := range s.SampleVertices(rng.NewStream(21, i)) {
				seen[v] = true
			}
		}
		return len(seen)
	}
	outward := distinct(4, 0.25)
	returning := distinct(0.25, 4)
	if outward <= returning {
		t.Errorf("outward bias visited %d distinct vs %d for return bias", outward, returning)
	}
}

func TestNode2VecDefaultsUnbiased(t *testing.T) {
	g := testGraph(t)
	s := &Node2VecWalk{G: g, Walkers: 5, Depth: 10} // P=Q=0 -> 1
	if got := len(s.SampleVertices(rng.New(22))); got == 0 {
		t.Fatal("no vertices sampled")
	}
}

func TestEdgeInducedSampler(t *testing.T) {
	g := testGraph(t)
	s := &EdgeInduced{G: g, Edges: 100}
	vs := s.SampleVertices(rng.New(23))
	if len(vs) != 200 {
		t.Fatalf("sampled %d endpoints, want 200", len(vs))
	}
	for i := 0; i+1 < len(vs); i += 2 {
		if !g.HasEdge(vs[i], vs[i+1]) {
			t.Fatalf("pair (%d,%d) is not an edge", vs[i], vs[i+1])
		}
	}
}

func TestEdgeInducedEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdges(5, nil)
	s := &EdgeInduced{G: g, Edges: 3}
	if got := len(s.SampleVertices(rng.New(24))); got != 3 {
		t.Fatalf("fallback sampled %d, want 3", got)
	}
}

func TestFrontierPreservesDegreeDistribution(t *testing.T) {
	// Section III-C: frontier subgraphs should be closer to the
	// parent's degree distribution than uniform node samples.
	g := testGraph(t)
	r := rng.New(25)
	fr := graph.Quality(g, SampleSubgraph(g, &Frontier{G: g, M: 60, N: 600}, r))
	rn := graph.Quality(g, SampleSubgraph(g, &RandomNode{G: g, Budget: 600}, r))
	if fr.LCCFraction <= rn.LCCFraction {
		t.Errorf("frontier LCC %.3f <= random %.3f", fr.LCCFraction, rn.LCCFraction)
	}
	if fr.DegreeKS <= 0 || fr.DegreeKS >= 1 {
		t.Errorf("frontier KS %.3f out of (0,1)", fr.DegreeKS)
	}
}
