package sampler

import (
	"sync"

	"gsgcn/internal/graph"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
)

// Pool implements the training scheduler of Algorithm 5: it maintains
// a set {G_i} of pre-sampled subgraphs; when the set is empty it
// launches PInter sampler instances in parallel (inter-subgraph
// parallelism), each drawing one independent subgraph from the
// training graph. Next pops one subgraph per training iteration.
//
// Each parallel instance owns a private RNG stream derived from
// (Seed, batch, instance), so results are deterministic regardless of
// goroutine scheduling.
type Pool struct {
	G       *graph.CSR
	Sampler VertexSampler
	// PInter is the number of concurrent sampler instances
	// (p_inter in Section IV-C; 40 on the paper's platform).
	PInter int
	// Workers bounds the real goroutines used to run the instances;
	// zero means GOMAXPROCS. PInter instances are still sampled per
	// refill, matching the paper's schedule even on small hosts.
	Workers int
	Seed    uint64

	mu    sync.Mutex
	queue []*graph.Subgraph
	batch int
}

// NewPool returns a Pool with an empty subgraph set.
func NewPool(g *graph.CSR, s VertexSampler, pinter int, seed uint64) *Pool {
	if pinter < 1 {
		pinter = 1
	}
	return &Pool{G: g, Sampler: s, PInter: pinter, Seed: seed}
}

// Next returns the next pre-sampled subgraph, refilling the pool with
// PInter freshly sampled subgraphs when it is empty.
func (p *Pool) Next() *graph.Subgraph {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		p.refillLocked()
	}
	sub := p.queue[len(p.queue)-1]
	p.queue = p.queue[:len(p.queue)-1]
	return sub
}

// Pending returns the number of subgraphs currently pooled.
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

func (p *Pool) refillLocked() {
	out := make([]*graph.Subgraph, p.PInter)
	workers := p.Workers
	if workers <= 0 {
		workers = perf.NumWorkers()
	}
	batch := p.batch
	p.batch++
	perf.Parallel(p.PInter, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := rng.NewStream(p.Seed, batch*p.PInter+i)
			out[i] = SampleSubgraph(p.G, p.Sampler, r)
		}
	})
	p.queue = append(p.queue, out...)
}

// SimulateRefill measures one pool refill under the simulated
// multicore executor: PInter instances, one per simulated core. The
// returned SimResult's Speedup is the Fig. 4A series point for
// p_inter = PInter.
func (p *Pool) SimulateRefill(cfg perf.SimConfig) perf.SimResult {
	batch := p.batch
	p.batch++
	return perf.SimParallel(p.PInter, cfg, func(i int) {
		r := rng.NewStream(p.Seed, batch*p.PInter+i)
		_ = SampleSubgraph(p.G, p.Sampler, r)
	})
}
