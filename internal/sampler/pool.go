package sampler

import (
	"sync"

	"gsgcn/internal/graph"
	"gsgcn/internal/perf"
	"gsgcn/internal/rng"
)

// Pool implements the training scheduler of Algorithm 5 as an
// asynchronously prefetching pipeline: subgraphs are sampled in waves
// of PInter instances (inter-subgraph parallelism, Section IV-C) by
// background goroutines and buffered in a bounded channel, so Next
// overlaps sampling with training instead of stalling the training
// loop on synchronous refills.
//
// Determinism contract: instance i of wave b draws from the private
// RNG stream derived from (Seed, b*PInter+i), and waves deliver their
// subgraphs into the buffer in (wave, instance) order. The sequence of
// subgraphs returned by a single Next caller is therefore a pure
// function of (Seed, Sampler, PInter) — independent of Workers,
// Prefetch, GOMAXPROCS and goroutine scheduling.
//
// The pipeline is pull-driven and self-limiting: background waves are
// only launched from Next (and the initial priming), at most Prefetch
// waves are in flight or buffered at once, and an in-flight wave can
// always deposit its results without blocking (buffer space is
// reserved at launch). Abandoning a Pool therefore leaks nothing: any
// running waves finish, park their subgraphs in the buffer, and exit.
type Pool struct {
	G       *graph.CSR
	Sampler VertexSampler
	// PInter is the number of concurrent sampler instances per wave
	// (p_inter in Section IV-C; 40 on the paper's platform).
	PInter int
	// Workers bounds the real goroutines used to run one wave's
	// instances; zero means GOMAXPROCS. PInter instances are still
	// sampled per wave, matching the paper's schedule even on small
	// hosts, and the sampled subgraphs are identical at every Workers
	// setting.
	Workers int
	// Prefetch is the pipeline depth in waves: how many waves of
	// PInter subgraphs may be buffered or in flight ahead of the
	// consumer. Zero means 2 (one wave being trained on, one being
	// sampled). Raise it when sampling is bursty relative to training.
	Prefetch int
	Seed     uint64

	mu       sync.Mutex
	cond     *sync.Cond
	ch       chan *graph.Subgraph
	credits  int // buffer slots not owned by a buffered or in-flight subgraph
	nextWave int // next wave number to claim (also advanced by SimulateRefill)
	deliver  int // wave currently allowed to deposit into ch
}

// NewPool returns a Pool with an empty, unstarted pipeline.
func NewPool(g *graph.CSR, s VertexSampler, pinter int, seed uint64) *Pool {
	if pinter < 1 {
		pinter = 1
	}
	return &Pool{G: g, Sampler: s, PInter: pinter, Seed: seed}
}

// depth returns the pipeline depth in waves.
func (p *Pool) depth() int {
	if p.Prefetch > 0 {
		return p.Prefetch
	}
	return 2
}

// start lazily allocates the buffer and primes the pipeline. Callers
// hold p.mu.
func (p *Pool) startLocked() {
	if p.ch != nil {
		return
	}
	p.cond = sync.NewCond(&p.mu)
	p.ch = make(chan *graph.Subgraph, p.depth()*p.PInter)
	p.credits = p.depth() * p.PInter
	p.deliver = p.nextWave
	p.pumpLocked()
}

// pumpLocked launches sampler waves while buffer credit remains.
// Callers hold p.mu.
func (p *Pool) pumpLocked() {
	for p.credits >= p.PInter {
		p.credits -= p.PInter
		wave := p.nextWave
		p.nextWave++
		go p.runWave(wave)
	}
}

// runWave samples the PInter subgraphs of one wave in parallel and
// deposits them in wave order. The deposit cannot block: buffer space
// was reserved when the wave was claimed.
func (p *Pool) runWave(wave int) {
	out := make([]*graph.Subgraph, p.PInter)
	workers := p.Workers
	if workers <= 0 {
		workers = perf.NumWorkers()
	}
	perf.Parallel(p.PInter, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			r := rng.NewStream(p.Seed, wave*p.PInter+i)
			out[i] = SampleSubgraph(p.G, p.Sampler, r)
		}
	})
	p.mu.Lock()
	for p.deliver != wave {
		p.cond.Wait()
	}
	p.mu.Unlock()
	for _, sub := range out {
		p.ch <- sub
	}
	p.mu.Lock()
	p.deliver++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Next returns the next pre-sampled subgraph, starting the background
// prefetch pipeline on first use and topping it up as subgraphs are
// consumed. It blocks only when training outruns the samplers. Next is
// safe for concurrent callers; each subgraph is delivered exactly once.
func (p *Pool) Next() *graph.Subgraph {
	p.mu.Lock()
	p.startLocked()
	p.mu.Unlock()
	sub := <-p.ch
	p.mu.Lock()
	p.credits++
	p.pumpLocked()
	p.mu.Unlock()
	return sub
}

// Pending returns the number of sampled subgraphs currently buffered
// and ready for Next (not counting waves still being sampled).
func (p *Pool) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ch == nil {
		return 0
	}
	return len(p.ch)
}

// SimulateRefill measures one pool wave under the simulated multicore
// executor: PInter instances, one per simulated core. The returned
// SimResult's Speedup is the Fig. 4A series point for p_inter =
// PInter. It consumes the next wave number, so interleaving it with
// Next keeps RNG streams disjoint.
func (p *Pool) SimulateRefill(cfg perf.SimConfig) perf.SimResult {
	p.mu.Lock()
	wave := p.nextWave
	p.nextWave++
	if p.ch != nil {
		// Keep in-flight waves' delivery tickets consistent: the
		// simulated wave delivers nothing, so skip its turn once its
		// predecessors have delivered.
		go func() {
			p.mu.Lock()
			for p.deliver != wave {
				p.cond.Wait()
			}
			p.deliver++
			p.cond.Broadcast()
			p.mu.Unlock()
		}()
	}
	p.mu.Unlock()
	return perf.SimParallel(p.PInter, cfg, func(i int) {
		r := rng.NewStream(p.Seed, wave*p.PInter+i)
		_ = SampleSubgraph(p.G, p.Sampler, r)
	})
}
