package sampler

// White-box tests of the Dashboard data structure (Algorithms 3-4):
// block layout, invalidation, cleanup compaction and growth.

import (
	"testing"

	"gsgcn/internal/graph"
)

func TestDashboardAppendBlockLayout(t *testing.T) {
	db := newDashboard(32)
	db.appendBlock(7, 4)
	if db.used != 4 || db.live != 1 {
		t.Fatalf("used=%d live=%d", db.used, db.live)
	}
	// Block head stores -length; the rest store offsets.
	if db.offset[0] != -4 {
		t.Errorf("head offset = %d, want -4", db.offset[0])
	}
	for k := 1; k < 4; k++ {
		if db.offset[k] != int32(k) {
			t.Errorf("offset[%d] = %d, want %d", k, db.offset[k], k)
		}
		if db.vertex[k] != 7 {
			t.Errorf("vertex[%d] = %d, want 7", k, db.vertex[k])
		}
	}
	if db.iaStart[0] != 0 || !db.iaLive[0] || db.iaVert[0] != 7 {
		t.Errorf("IA record wrong: start=%d live=%v vert=%d", db.iaStart[0], db.iaLive[0], db.iaVert[0])
	}
}

func TestDashboardInvalidateFromAnyEntry(t *testing.T) {
	for probe := 0; probe < 3; probe++ {
		db := newDashboard(32)
		db.appendBlock(5, 3)
		v, blockLen := db.invalidate(probe)
		if v != 5 || blockLen != 3 {
			t.Fatalf("probe %d: invalidate returned v=%d len=%d", probe, v, blockLen)
		}
		for k := 0; k < 3; k++ {
			if db.vertex[k] != invalid {
				t.Errorf("probe %d: entry %d not invalidated", probe, k)
			}
		}
		if db.iaLive[0] {
			t.Error("IA record still live after invalidate")
		}
		if db.live != 0 {
			t.Errorf("live = %d, want 0", db.live)
		}
	}
}

func TestDashboardCleanupCompacts(t *testing.T) {
	db := newDashboard(64)
	db.appendBlock(1, 3)
	db.appendBlock(2, 4)
	db.appendBlock(3, 2)
	db.invalidate(0) // kill vertex 1's block
	usedBefore := db.used
	moved := db.cleanup()
	if moved != 6 {
		t.Errorf("moved = %d entries, want 6 (blocks of 4 and 2)", moved)
	}
	if db.used != 6 || db.used >= usedBefore {
		t.Errorf("used = %d after cleanup, want 6 < %d", db.used, usedBefore)
	}
	// Surviving blocks must be intact and addressable.
	if db.vertex[0] != 2 || db.offset[0] != -4 {
		t.Errorf("first surviving block corrupted: v=%d off=%d", db.vertex[0], db.offset[0])
	}
	if db.vertex[4] != 3 || db.offset[4] != -2 {
		t.Errorf("second surviving block corrupted: v=%d off=%d", db.vertex[4], db.offset[4])
	}
	// IA rebuilt with only live entries.
	if len(db.iaStart) != 2 || db.iaVert[0] != 2 || db.iaVert[1] != 3 {
		t.Errorf("IA after cleanup: starts=%v verts=%v", db.iaStart, db.iaVert)
	}
	// Invalidate through the compacted table still works.
	v, l := db.invalidate(5) // inside vertex 3's block
	if v != 3 || l != 2 {
		t.Errorf("post-cleanup invalidate: v=%d len=%d", v, l)
	}
}

func TestDashboardCleanupAllDead(t *testing.T) {
	db := newDashboard(16)
	db.appendBlock(1, 2)
	db.invalidate(0)
	if moved := db.cleanup(); moved != 0 {
		t.Errorf("moved = %d, want 0", moved)
	}
	if db.used != 0 || db.live != 0 {
		t.Errorf("used=%d live=%d after full cleanup", db.used, db.live)
	}
}

func TestGrowDashboardPreservesContent(t *testing.T) {
	db := newDashboard(8)
	db.appendBlock(4, 3)
	db.appendBlock(9, 5)
	grown := growDashboard(db, 100)
	if len(grown.vertex) < 100 {
		t.Fatalf("grown capacity %d < 100", len(grown.vertex))
	}
	if grown.used != db.used || grown.live != db.live {
		t.Fatalf("bookkeeping lost: used %d->%d live %d->%d", db.used, grown.used, db.live, grown.live)
	}
	for k := 0; k < db.used; k++ {
		if grown.vertex[k] != db.vertex[k] || grown.offset[k] != db.offset[k] || grown.iaIdx[k] != db.iaIdx[k] {
			t.Fatalf("entry %d corrupted by growth", k)
		}
	}
	// New tail must be invalid (unprobeable).
	for k := db.used; k < len(grown.vertex); k++ {
		if grown.vertex[k] != invalid {
			t.Fatalf("grown tail entry %d not invalid", k)
		}
	}
}

func TestFrontierEntriesClamp(t *testing.T) {
	g := starGraph(t, 100)
	f := &Frontier{G: g, M: 4, N: 10}
	if e := f.entries(0); e != 100 {
		t.Errorf("hub entries = %d, want 100", e)
	}
	f.DegCap = 30
	if e := f.entries(0); e != 30 {
		t.Errorf("capped hub entries = %d, want 30", e)
	}
	// Leaves have degree 1.
	if e := f.entries(5); e != 1 {
		t.Errorf("leaf entries = %d, want 1", e)
	}
}

func TestFrontierEntriesIsolated(t *testing.T) {
	g, err := newGraphWithIsolated()
	if err != nil {
		t.Fatal(err)
	}
	f := &Frontier{G: g, M: 2, N: 4}
	// Vertex 2 is isolated: still gets one entry so it stays poppable.
	if e := f.entries(2); e != 1 {
		t.Errorf("isolated entries = %d, want 1", e)
	}
}

// newGraphWithIsolated builds a 3-vertex graph where vertex 2 is
// isolated.
func newGraphWithIsolated() (*graph.CSR, error) {
	return graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}})
}
