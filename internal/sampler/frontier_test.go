package sampler

import (
	"math"
	"testing"

	"gsgcn/internal/datasets"
	"gsgcn/internal/graph"
	"gsgcn/internal/rng"
)

// testGraph returns a moderately sized power-law community graph.
func testGraph(tb testing.TB) *graph.CSR {
	tb.Helper()
	cfg := datasets.Config{
		Name: "sampler-test", Vertices: 2000, TargetEdges: 16000,
		FeatureDim: 4, NumClasses: 8, Seed: 7,
	}
	return datasets.Generate(cfg).G
}

// starGraph returns a star with n leaves: center 0, leaves 1..n.
func starGraph(tb testing.TB, n int) *graph.CSR {
	tb.Helper()
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: 0, V: int32(i + 1)}
	}
	g, err := graph.FromEdges(n+1, edges)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func TestFrontierBudgetRespected(t *testing.T) {
	g := testGraph(t)
	f := &Frontier{G: g, M: 100, N: 600}
	vs := f.SampleVertices(rng.New(1))
	if len(vs) != 600 {
		t.Fatalf("sampled %d vertices, want 600", len(vs))
	}
	for _, v := range vs {
		if v < 0 || int(v) >= g.NumVertices() {
			t.Fatalf("vertex %d out of range", v)
		}
	}
}

func TestFrontierInitialFrontierIncluded(t *testing.T) {
	g := testGraph(t)
	f := &Frontier{G: g, M: 50, N: 50} // budget == frontier: no pops
	vs, stats := f.SampleVerticesStats(rng.New(2))
	if len(vs) != 50 {
		t.Fatalf("got %d vertices, want 50", len(vs))
	}
	if stats.Pops != 0 {
		t.Errorf("expected 0 pops, got %d", stats.Pops)
	}
	seen := map[int32]bool{}
	for _, v := range vs {
		if seen[v] {
			t.Fatal("initial frontier contains duplicates")
		}
		seen[v] = true
	}
}

func TestFrontierDeterministic(t *testing.T) {
	g := testGraph(t)
	f := &Frontier{G: g, M: 100, N: 500}
	a := f.SampleVertices(rng.New(42))
	b := f.SampleVertices(rng.New(42))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences differ at %d", i)
		}
	}
}

func TestFrontierDegreeBiasedPop(t *testing.T) {
	// On a star graph the center has degree n while each leaf has
	// degree 1. With the frontier containing the center, pops should
	// overwhelmingly select it, and the sampled multiset should
	// contain the center many times.
	g := starGraph(t, 500)
	f := &Frontier{G: g, M: 50, N: 450}
	vs := f.SampleVertices(rng.New(3))
	center := 0
	for _, v := range vs {
		if v == 0 {
			center++
		}
	}
	// Whenever the center is in the frontier (which happens roughly
	// every other step: every popped leaf replaces itself with its
	// only neighbor, the center), it dominates the degree
	// distribution. Expect a large number of center pops.
	if center < 100 {
		t.Errorf("center popped only %d times out of 400; degree bias missing", center)
	}
}

func TestFrontierMatchesNaiveDistribution(t *testing.T) {
	// The Dashboard implementation must induce the same vertex
	// marginal distribution as the naive Algorithm 2 implementation.
	// Compare per-vertex inclusion frequencies over many runs.
	g := testGraph(t)
	const runs = 300
	count := func(s VertexSampler, seed uint64) []float64 {
		c := make([]float64, g.NumVertices())
		for i := 0; i < runs; i++ {
			for _, v := range s.SampleVertices(rng.NewStream(seed, i)) {
				c[v]++
			}
		}
		return c
	}
	fast := count(&Frontier{G: g, M: 60, N: 300}, 11)
	slow := count(&NaiveFrontier{G: g, M: 60, N: 300}, 12)
	// Compare aggregate statistics bucketed by vertex degree: the
	// marginal pop probability is degree-driven, so matching
	// per-degree-decile mass means matching distributions.
	var fastHi, slowHi, fastAll, slowAll float64
	avg := g.AvgDegree()
	for v := 0; v < g.NumVertices(); v++ {
		fastAll += fast[v]
		slowAll += slow[v]
		if float64(g.Degree(int32(v))) > 2*avg {
			fastHi += fast[v]
			slowHi += slow[v]
		}
	}
	fr := fastHi / fastAll
	sr := slowHi / slowAll
	if math.Abs(fr-sr) > 0.05 {
		t.Errorf("high-degree mass: dashboard %.3f vs naive %.3f", fr, sr)
	}
}

func TestFrontierDegCap(t *testing.T) {
	// With a degree cap, the hub of a star graph should be popped
	// far less often than without.
	g := starGraph(t, 1000)
	centerFrac := func(cap int) float64 {
		f := &Frontier{G: g, M: 100, N: 800, DegCap: cap}
		c, tot := 0, 0
		for i := 0; i < 20; i++ {
			for _, v := range f.SampleVertices(rng.NewStream(5, i)) {
				tot++
				if v == 0 {
					c++
				}
			}
		}
		return float64(c) / float64(tot)
	}
	uncapped, capped := centerFrac(0), centerFrac(5)
	if capped >= uncapped {
		t.Errorf("degree cap did not reduce hub dominance: %.4f vs %.4f", capped, uncapped)
	}
}

func TestFrontierCleanupTriggered(t *testing.T) {
	// A small eta forces frequent Dashboard cleanups; sampling must
	// still succeed and stats must record the compactions.
	g := testGraph(t)
	f := &Frontier{G: g, M: 50, N: 2000, Eta: 1.2}
	vs, stats := f.SampleVerticesStats(rng.New(6))
	if len(vs) != 2000 {
		t.Fatalf("sampled %d, want 2000", len(vs))
	}
	if stats.Cleanups == 0 {
		t.Error("expected at least one cleanup with eta=1.2")
	}
}

func TestFrontierLargeEtaFewCleanups(t *testing.T) {
	g := testGraph(t)
	few := func(eta float64) int {
		f := &Frontier{G: g, M: 50, N: 1500, Eta: eta}
		_, stats := f.SampleVerticesStats(rng.New(7))
		return stats.Cleanups
	}
	if few(4) > few(1.2) {
		t.Error("larger eta should not increase cleanup count")
	}
}

func TestFrontierIsolatedVertices(t *testing.T) {
	// Graph with isolated vertices: sampler must not loop forever.
	g, err := graph.FromEdges(10, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	f := &Frontier{G: g, M: 4, N: 30}
	vs := f.SampleVertices(rng.New(8))
	if len(vs) != 30 {
		t.Fatalf("sampled %d, want 30", len(vs))
	}
}

func TestFrontierMExceedsGraph(t *testing.T) {
	g, err := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	f := &Frontier{G: g, M: 100, N: 200}
	vs := f.SampleVertices(rng.New(9))
	if len(vs) != 200 {
		t.Fatalf("sampled %d, want 200", len(vs))
	}
}

func TestFrontierEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &Frontier{G: g, M: 10, N: 20}
	if vs := f.SampleVertices(rng.New(1)); len(vs) != 0 {
		t.Fatalf("empty graph sampled %d vertices", len(vs))
	}
}

func TestStatsProbeEfficiency(t *testing.T) {
	// Theorem 1's cost model: the expected probes per pop is about
	// used/valid <= eta (plus slack from degree variance). Check the
	// measured probe rate is sane for eta=2.
	g := testGraph(t)
	f := &Frontier{G: g, M: 100, N: 2000, Eta: 2}
	_, stats := f.SampleVerticesStats(rng.New(10))
	rate := float64(stats.Probes) / float64(stats.Pops)
	if rate > 6 {
		t.Errorf("probe rate %.2f per pop; expected O(eta)=~2-4", rate)
	}
	if rate < 1 {
		t.Errorf("probe rate %.2f impossible (<1)", rate)
	}
}

func TestLaneRoundsAndSpeedup(t *testing.T) {
	s := &Stats{BlockLens: map[int]int64{8: 10, 3: 10, 16: 5}}
	// Scalar rounds: 8*10 + 3*10 + 16*5 = 190.
	if got := s.LaneRounds(1); got != 190 {
		t.Errorf("LaneRounds(1) = %d, want 190", got)
	}
	// At p=8: ceil(8/8)*10 + ceil(3/8)*10 + ceil(16/8)*5 = 10+10+10 = 30.
	if got := s.LaneRounds(8); got != 30 {
		t.Errorf("LaneRounds(8) = %d, want 30", got)
	}
	sp := s.LaneSpeedup(8)
	if math.Abs(sp-190.0/30.0) > 1e-12 {
		t.Errorf("LaneSpeedup(8) = %v", sp)
	}
	if s.LaneSpeedup(1) != 1 {
		t.Error("LaneSpeedup(1) must be 1")
	}
}

func TestLaneSpeedupRealistic(t *testing.T) {
	// On a power-law graph with avg degree ~16, 8 lanes should give
	// a gain between 2x and 8x (the paper reports ~4x average).
	g := testGraph(t)
	f := &Frontier{G: g, M: 100, N: 2000}
	_, stats := f.SampleVerticesStats(rng.New(11))
	sp := stats.LaneSpeedup(8)
	if sp < 1.5 || sp > 8 {
		t.Errorf("lane speedup at 8 = %.2f, want in (1.5, 8]", sp)
	}
}

func TestTheoreticalSpeedupBound(t *testing.T) {
	// eps=0.5, eta=3: eps*d*(4 + 3/(eta-1)) - eta = 2.75*d - 3.
	// (The paper's prose states "2.25*d - 3" for these constants,
	// which is inconsistent with its own Theorem 1 formula; we
	// implement the formula.)
	got := TheoreticalSpeedupBound(0.5, 30, 3)
	want := 2.75*30 - 3
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("bound = %v, want %v", got, want)
	}
}

func TestTheoreticalSpeedupBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("eta <= 1 should panic")
		}
	}()
	TheoreticalSpeedupBound(0.5, 30, 1)
}

func TestNaiveFrontierBudget(t *testing.T) {
	g := testGraph(t)
	f := &NaiveFrontier{G: g, M: 50, N: 400}
	vs := f.SampleVertices(rng.New(12))
	if len(vs) != 400 {
		t.Fatalf("naive sampled %d, want 400", len(vs))
	}
}

func TestFrontierSubgraphConnectivity(t *testing.T) {
	// Section III-C: frontier-sampled subgraphs should preserve
	// connectivity far better than uniform random vertex samples.
	g := testGraph(t)
	r := rng.New(13)
	fs := SampleSubgraph(g, &Frontier{G: g, M: 50, N: 500}, r)
	rnd := SampleSubgraph(g, &RandomNode{G: g, Budget: 500}, r)
	fLCC := fs.LargestComponentFraction()
	rLCC := rnd.LargestComponentFraction()
	if fLCC <= rLCC {
		t.Errorf("frontier LCC %.3f <= random-node LCC %.3f; connectivity not preserved", fLCC, rLCC)
	}
	if fLCC < 0.5 {
		t.Errorf("frontier subgraph LCC only %.3f", fLCC)
	}
}

func TestDashboardGrowthUnderHubs(t *testing.T) {
	// Star graph: hub degree 3000 vastly exceeds eta*m*dbar; the
	// dashboard must grow instead of corrupting memory.
	g := starGraph(t, 3000)
	f := &Frontier{G: g, M: 10, N: 100, Eta: 1.5}
	vs := f.SampleVertices(rng.New(14))
	if len(vs) != 100 {
		t.Fatalf("sampled %d, want 100", len(vs))
	}
}

func BenchmarkFrontierDashboard(b *testing.B) {
	g := testGraph(b)
	f := &Frontier{G: g, M: 100, N: 1000}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SampleVertices(r)
	}
}

func BenchmarkFrontierNaive(b *testing.B) {
	g := testGraph(b)
	f := &NaiveFrontier{G: g, M: 100, N: 1000}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SampleVertices(r)
	}
}
